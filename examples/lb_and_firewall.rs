//! Load balancing and security — the paper's conclusion: with the
//! controller plumbing solved by the OS, "more focus can be put on
//! specific control-plane-centric topics such as load balancing,
//! congestion control, and security."
//!
//! Both apps here are file-configured: the balancer pool lives under
//! `/net/lb/web/`, the firewall rules in `/net/security/rules`, and both
//! write their state back as files an admin can `cat`.
//!
//! ```text
//! cargo run --example lb_and_firewall
//! ```

use yanc_apps::{define_pool, Backend, Firewall, LoadBalancer};
use yanc_coreutils::Shell;
use yanc_driver::Runtime;
use yanc_openflow::Version;

fn main() {
    let mut rt = Runtime::new();
    rt.add_switch_with_driver(0x1, 6, 1, vec![Version::V1_3], Version::V1_3);
    let client = rt.net.add_host("client", "10.0.0.1".parse().unwrap());
    let attacker = rt.net.add_host("attacker", "10.0.0.66".parse().unwrap());
    let s1 = rt.net.add_host("s1", "10.0.0.2".parse().unwrap());
    let s2 = rt.net.add_host("s2", "10.0.0.3".parse().unwrap());
    rt.net.attach_host(client, (0x1, 1), None);
    rt.net.attach_host(attacker, (0x1, 2), None);
    rt.net.attach_host(s1, (0x1, 3), None);
    rt.net.attach_host(s2, (0x1, 4), None);
    rt.pump().unwrap();

    // ---- the load balancer: a VIP over two backends --------------------
    let vip = "10.0.0.100".parse().unwrap();
    define_pool(
        &rt.yfs,
        "web",
        vip,
        &[
            Backend {
                ip: "10.0.0.2".parse().unwrap(),
                mac: rt.net.hosts[&s1].mac,
            },
            Backend {
                ip: "10.0.0.3".parse().unwrap(),
                mac: rt.net.hosts[&s2].mac,
            },
        ],
    )
    .unwrap();
    let mut lb = LoadBalancer::new(rt.yfs.clone()).unwrap();
    let mut fw = Firewall::new(rt.yfs.clone(), 4).unwrap();

    let settle = |rt: &mut Runtime, lb: &mut LoadBalancer, fw: &mut Firewall| loop {
        let a = rt.pump().unwrap();
        let b = lb.run_once();
        let c = fw.run_once();
        if a <= 1 && !b && !c {
            break;
        }
    };

    println!("four clients connect to the VIP {vip}:");
    for sport in [40001u16, 40002, 40003, 40004] {
        rt.net.host_send_tcp_syn(client, vip, sport, 80);
        settle(&mut rt, &mut lb, &mut fw);
    }
    let mut sh = Shell::new(rt.yfs.filesystem().clone());
    println!("$ ls /net/lb/web/stats && cat /net/lb/web/stats/*");
    for e in rt
        .yfs
        .filesystem()
        .readdir("/net/lb/web/stats", rt.yfs.creds())
        .unwrap()
    {
        let v = sh.run(&format!("cat /net/lb/web/stats/{}", e.name)).out;
        println!("  {} -> {v} connections", e.name);
    }
    println!(
        "backend s1 saw {} SYNs, s2 saw {} (round-robin)",
        rt.net.hosts[&s1].tcp_syns_received.len(),
        rt.net.hosts[&s2].tcp_syns_received.len()
    );

    // ---- the firewall: an attacker port-scans and gets auto-blocked ----
    println!("\nattacker scans 8 ports; the firewall threshold is 4:");
    let amac = rt.net.hosts[&attacker].mac;
    for port in 1..=8u16 {
        let syn = yanc_packet::build_tcp_syn(
            amac,
            yanc_packet::MacAddr::from_seed(0xeeee),
            "10.0.0.66".parse().unwrap(),
            "10.0.0.99".parse().unwrap(),
            50000 + port,
            port,
        );
        rt.net.inject(0x1, 2, syn);
        settle(&mut rt, &mut lb, &mut fw);
    }
    println!("$ ls /net/security/blocked");
    print!("{}", sh.run("ls /net/security/blocked").out);
    println!("$ cat /net/security/blocked/10.0.0.66");
    println!("{}", sh.run("cat /net/security/blocked/10.0.0.66").out);
    println!("blocked sources: {:?}", fw.blocked);
    assert_eq!(fw.blocked.len(), 1);

    // And an admin adds a static rule with echo, like any other config.
    sh.run("echo 'deny 10.9.0.0/16' > /net/security/rules");
    settle(&mut rt, &mut lb, &mut fw);
    println!("\nadmin ran: echo 'deny 10.9.0.0/16' > /net/security/rules");
    println!("active rules: {:?}", fw.active_rules);
}
