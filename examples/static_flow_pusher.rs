//! The paper's §8 "simple static flow pusher shell script": declarative
//! flow text compiled into `mkdir` + `echo` commands and executed through
//! the coreutils shell.
//!
//! ```text
//! cargo run --example static_flow_pusher
//! ```

use yanc_apps::flow_pusher::{parse_pusher_text, push, render_script};
use yanc_coreutils::Shell;
use yanc_driver::Runtime;
use yanc_openflow::Version;

const FLOWS: &str = "\
# ssh to the servers goes out port 2 at high priority
switch=sw1 flow=ssh priority=900 match.dl_type=0x0800 match.nw_proto=6 \\
    match.tp_dst=22 action.out=2
# ARP floods
switch=sw1 flow=arp priority=800 match.dl_type=0x0806 action.out=flood
# everything else to the controller
switch=sw1 flow=punt priority=1 action.out=controller
";

fn main() {
    let mut rt = Runtime::new();
    let sw = rt.add_switch_with_driver(0x1, 4, 1, vec![Version::V1_0], Version::V1_0);
    rt.pump().unwrap();
    assert_eq!(sw, "sw1");

    println!("flow description:\n{FLOWS}");
    let entries = parse_pusher_text(FLOWS).unwrap();
    println!("as shell commands:\n{}", render_script(&entries, "/net"));

    let mut sh = Shell::new(rt.yfs.filesystem().clone());
    let n = push(&mut sh, "/net", FLOWS).unwrap();
    rt.pump().unwrap();
    println!(
        "pushed {n} flows; switch hardware now has {} entries",
        rt.net.switches[&0x1].flow_count()
    );

    println!("\n$ ls /net/switches/sw1/flows");
    print!("{}", sh.run("ls /net/switches/sw1/flows").out);
    println!("\n$ find /net -name tp_dst -exec cat");
    let out = sh.run("find /net -name 'match.tp_dst' -exec cat");
    print!("{}", out.out);
    assert_eq!(rt.net.switches[&0x1].flow_count(), 3);
}
