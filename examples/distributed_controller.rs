//! The §6 proof of concept: "we mounted NFS on top of yanc and distributed
//! computational workload among multiple machines."
//!
//! Three controller nodes share one `/net` through the replication layer.
//! The switch is attached to node 0's runtime; an operator writes a flow on
//! node 2; the cluster propagates it; node 0's driver installs it in
//! hardware. Then the same workload is repeated over each DFS backend to
//! show their §6 "varying trade-offs".
//!
//! ```text
//! cargo run --example distributed_controller
//! ```

use yanc::FlowSpec;
use yanc_dfs::{Backend, Cluster};
use yanc_driver::Runtime;
use yanc_openflow::{port_no, Action, FlowMatch, Version};

fn run_backend(backend: Backend, label: &str) {
    // Three controller nodes, 200µs apart.
    let mut cluster = Cluster::new(3, backend, 200, "/net");
    // Node 0 is the node physically adjacent to the switch: give it a
    // runtime + driver over its replica.
    let mut rt = Runtime::with_fs(cluster.nodes[0].fs.clone());
    rt.add_switch_with_driver(0xd, 4, 1, vec![Version::V1_0], Version::V1_0);
    let h1 = rt.net.add_host("h1", "10.0.0.1".parse().unwrap());
    let h2 = rt.net.add_host("h2", "10.0.0.2".parse().unwrap());
    rt.net.attach_host(h1, (0xd, 1), None);
    rt.net.attach_host(h2, (0xd, 2), None);
    rt.pump().unwrap();
    cluster.pump(); // replicate the switch skeleton everywhere

    // Every node sees the switch the driver materialized on node 0.
    let visible = cluster
        .nodes
        .iter()
        .filter(|n| {
            n.fs.exists("/net/switches/swd/id", &yanc_vfs::Credentials::root())
        })
        .count();

    // An operator on node 2 writes a flow — plain file I/O on their node.
    let y2 = yanc::YancFs::new(cluster.nodes[2].fs.clone(), "/net");
    let spec = FlowSpec {
        m: FlowMatch::any(),
        actions: vec![Action::out(port_no::FLOOD)],
        priority: 10,
        ..Default::default()
    };
    y2.write_flow("swd", "flood", &spec).unwrap();
    let t = {
        let start = cluster.now_us();
        cluster.pump();
        cluster.now_us() - start
    };
    rt.pump().unwrap(); // node 0's driver reacts to the replicated commit

    // Traffic proves the flow reached hardware.
    rt.net.host_ping(h1, "10.0.0.2".parse().unwrap(), 1);
    rt.pump().unwrap();
    let ok = rt.net.hosts[&h1].ping_replies.len() == 1;

    println!(
        "{label:<28} switch visible on {visible}/3 nodes, commit visible after {t:>4}µs, \
         hw flows: {}, ping: {}",
        rt.net.switches[&0xd].flow_count(),
        if ok { "ok" } else { "FAILED" }
    );
    assert!(
        ok,
        "{label}: distributed flow write must program the switch"
    );
}

fn main() {
    println!("write-on-node-2, switch-on-node-0, 3 controller nodes, 200µs links\n");
    run_backend(Backend::Central { primary: 0 }, "central (NFS-like)");
    run_backend(Backend::Dht, "DHT (peer-to-peer)");
    run_backend(Backend::Policy, "policy (WheelFS-like)");
    println!("\neach backend has different propagation cost — the paper's \"varying trade-offs\"");
}
