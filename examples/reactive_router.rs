//! The paper's §8 prototype stack, end to end: LLDP topology discovery
//! builds `peer` symlinks, and the router daemon answers every table miss
//! with exact-match paths — on a fat-tree fabric.
//!
//! ```text
//! cargo run --example reactive_router
//! ```

use yanc_apps::{audit, RouterDaemon, TopologyDaemon};
use yanc_driver::Runtime;
use yanc_harness::{build_fat_tree, ping_all_pairs, settle, PumpApp, Scenario};
use yanc_openflow::Version;

fn main() {
    let mut rt = Runtime::new();
    let topo = build_fat_tree(&mut rt, 2, Version::V1_3);
    println!(
        "built {}: {} switches, {} hosts",
        topo.name,
        topo.switches.len(),
        topo.hosts.len()
    );

    // Topology discovery with real LLDP probes (no ground-truth cheating).
    let mut topod = TopologyDaemon::new(rt.yfs.clone()).unwrap();
    topod.probe().unwrap();
    settle(&mut rt, &mut [&mut topod as &mut dyn PumpApp]);
    let links = rt.yfs.topology().unwrap();
    println!(
        "LLDP discovery recorded {} directed links as peer symlinks",
        links.len()
    );
    for (sw, p, psw, pp) in links.iter().take(4) {
        println!("  /net/switches/{sw}/ports/p{p}/peer -> …/{psw}/ports/p{pp}");
    }
    println!("  …");

    // Reactive routing over the discovered topology.
    let mut router = RouterDaemon::new(rt.yfs.clone()).unwrap();
    let (sent, answered) = ping_all_pairs(
        &mut rt,
        &topo,
        &mut [
            &mut topod as &mut dyn PumpApp,
            &mut router as &mut dyn PumpApp,
        ],
    );
    println!("all-pairs ping: {answered}/{sent} answered");
    println!(
        "router installed {} exact-match paths ({} floods for unknown destinations)",
        router.paths_installed, router.floods
    );

    let total_flows: usize = topo
        .switches
        .iter()
        .map(|d| rt.net.switches[d].flow_count())
        .sum();
    println!("hardware flow entries across the fabric: {total_flows}");

    // The auditor (a "cron job" app) checks the tree we just built.
    let report = audit(&rt.yfs).unwrap();
    println!(
        "audit: {} switches, {} flows, {} links, {} findings",
        report.switches,
        report.flows,
        report.links,
        report.findings.len()
    );

    let scenario = Scenario::of(&topo, Version::V1_3, "all-pairs ping, reactive exact-match");
    println!("scenario: {scenario:?}");
    assert_eq!(sent, answered, "every ping must be answered");
}
