//! Quickstart: the file system *is* the controller.
//!
//! Boots a two-switch network with OpenFlow drivers, then administers it
//! exactly the way the paper's §3 and §5.4 describe — with `tree`, `ls`,
//! `cat`, `echo` and flow files:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use yanc::FlowSpec;
use yanc_coreutils::Shell;
use yanc_driver::Runtime;
use yanc_harness::record_topology;
use yanc_openflow::{port_no, Action, FlowMatch, Version};

fn main() {
    // --- boot: two switches, two hosts, one driver per switch -----------
    let mut rt = Runtime::new();
    rt.add_switch_with_driver(0x1, 4, 1, vec![Version::V1_0], Version::V1_0);
    rt.add_switch_with_driver(0x2, 4, 1, vec![Version::V1_3], Version::V1_3);
    rt.net.link_switches((0x1, 2), (0x2, 2), None);
    let h1 = rt.net.add_host("h1", "10.0.0.1".parse().unwrap());
    let h2 = rt.net.add_host("h2", "10.0.0.2".parse().unwrap());
    rt.net.attach_host(h1, (0x1, 1), None);
    rt.net.attach_host(h2, (0x2, 1), None);
    rt.pump().unwrap();
    record_topology(&mut rt);

    let mut sh = Shell::new(rt.yfs.filesystem().clone());

    // --- the network is a directory tree (paper Figure 2) ---------------
    println!("$ ls -l /net");
    print!("{}", sh.run("ls -l /net").out);
    println!();
    println!("$ tree /net/switches/sw1");
    print!("{}", sh.run("tree /net/switches/sw1").out);

    // --- install a flow by writing files (paper Figure 3) ---------------
    println!();
    println!("# install an ARP flood flow on each switch, via flow files");
    for sw in ["sw1", "sw2"] {
        let spec = FlowSpec {
            m: FlowMatch {
                dl_type: Some(0x0806),
                ..Default::default()
            },
            actions: vec![Action::out(port_no::FLOOD)],
            priority: 100,
            ..Default::default()
        };
        rt.yfs.write_flow(sw, "arp_flow", &spec).unwrap();
        // Plus a catch-all forwarder so pings cross the trunk.
        let fwd = FlowSpec {
            m: FlowMatch::any(),
            actions: vec![Action::out(port_no::FLOOD)],
            priority: 1,
            ..Default::default()
        };
        rt.yfs.write_flow(sw, "flood_all", &fwd).unwrap();
    }
    rt.pump().unwrap();
    println!("$ cat /net/switches/sw1/flows/arp_flow/match.dl_type");
    print!(
        "{}",
        sh.run("cat /net/switches/sw1/flows/arp_flow/match.dl_type")
            .out
    );
    println!();
    println!(
        "switch sw1 now has {} flow entries in hardware",
        rt.net.switches[&0x1].flow_count()
    );

    // --- real traffic runs over them -------------------------------------
    rt.net.host_ping(h1, "10.0.0.2".parse().unwrap(), 1);
    rt.pump().unwrap();
    println!(
        "h1 ping 10.0.0.2 -> {} reply(ies)",
        rt.net.hosts[&h1].ping_replies.len()
    );

    // --- bring a port down with echo (paper §3.1) ------------------------
    println!();
    println!("$ echo 1 > /net/switches/sw1/ports/p2/config.port_down");
    sh.run("echo 1 > /net/switches/sw1/ports/p2/config.port_down");
    rt.pump().unwrap();
    println!(
        "trunk port on sw1 is now administratively down: {}",
        rt.net.switches[&0x1].ports[&2].config_down
    );
    rt.net.host_ping(h1, "10.0.0.2".parse().unwrap(), 2);
    rt.pump().unwrap();
    println!(
        "second ping gets {} new replies (path severed through the fs)",
        rt.net.hosts[&h1].ping_replies.len() - 1
    );

    // --- the paper's one-liner -------------------------------------------
    println!();
    println!("$ find /net -name 'match.*' | wc -l");
    print!("{}", sh.run("find /net -name 'match.*' | wc -l").out);

    // --- syscall accounting (the §8.1 argument) --------------------------
    println!();
    println!(
        "total simulated file-system syscalls this session: {}",
        rt.yfs.filesystem().counters().total()
    );
}
