//! Middlebox state migration with coreutils (paper §7.2): scale a NAT out
//! by `mv`-ing half its connection state to a new instance, and keep a warm
//! standby with `cp -r` — no custom protocols.
//!
//! ```text
//! cargo run --example middlebox
//! ```

use std::net::Ipv4Addr;
use std::sync::Arc;

use yanc::YancFs;
use yanc_apps::{ConnState, MiddleboxInstance};
use yanc_coreutils::Shell;
use yanc_vfs::Filesystem;

fn main() {
    let fs = Arc::new(Filesystem::new());
    let yfs = YancFs::init(fs.clone(), "/net").unwrap();
    let mut sh = Shell::new(fs);

    // One overloaded NAT instance with six connections.
    let nat_a = MiddleboxInstance::new(yfs.clone(), "nat-a").unwrap();
    for i in 1..=6u16 {
        nat_a
            .add_conn(
                &format!("conn{i}"),
                &ConnState {
                    inside: (Ipv4Addr::new(192, 168, 1, 10 + i as u8 % 4), 5000 + i),
                    outside: (Ipv4Addr::new(93, 184, 216, 34), 443),
                    nat_port: 40000 + i,
                    hits: 0,
                },
            )
            .unwrap();
    }
    println!("nat-a state table (one directory per connection):");
    print!("{}", sh.run("ls /net/middleboxes/nat-a/state").out);
    print!("{}", sh.run("tree /net/middleboxes/nat-a/state/conn1").out);

    // Scale out: spin up nat-b and migrate half the connections with mv.
    let nat_b = MiddleboxInstance::new(yfs.clone(), "nat-b").unwrap();
    println!("\nscaling out: mv conn1..conn3 to nat-b");
    for i in 1..=3 {
        let out = sh.run(&format!(
            "mv /net/middleboxes/nat-a/state/conn{i} /net/middleboxes/nat-b/state/"
        ));
        assert!(out.success(), "{}", out.err);
    }
    println!("nat-a now owns: {:?}", nat_a.connections());
    println!("nat-b now owns: {:?}", nat_b.connections());

    // Both instances serve their shares immediately.
    assert_eq!(nat_b.process("conn1"), Some(40001));
    assert_eq!(nat_a.process("conn1"), None);
    assert_eq!(nat_a.process("conn5"), Some(40005));
    println!("nat-b serves conn1 (nat_port 40001); nat-a no longer does — migration complete");

    // Warm standby via cp -r.
    let _standby = MiddleboxInstance::new(yfs.clone(), "nat-standby").unwrap();
    let out = sh.run("cp -r /net/middleboxes/nat-a/state /net/middleboxes/nat-standby/");
    assert!(out.success(), "{}", out.err);
    let standby = MiddleboxInstance::new(yfs, "nat-standby").unwrap();
    println!(
        "\nstandby cloned with cp -r: owns {:?} (hits preserved: conn5 hits = {})",
        standby.connections(),
        standby.lookup("conn5").unwrap().hits
    );
}
