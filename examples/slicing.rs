//! Views: slicing and big-switch virtualization (paper §4.2), with tenant
//! isolation via mount namespaces (§5.3).
//!
//! ```text
//! cargo run --example slicing
//! ```

use yanc::{FlowSpec, ViewConfig, ViewKind, YancFs};
use yanc_apps::{BigSwitchDaemon, SliceDaemon, BIG_SWITCH};
use yanc_coreutils::Shell;
use yanc_driver::Runtime;
use yanc_harness::{build_line, record_topology};
use yanc_openflow::{Action, FlowMatch, Version};
use yanc_vfs::Namespace;

fn main() {
    let mut rt = Runtime::new();
    let topo = build_line(&mut rt, 4, Version::V1_3);
    record_topology(&mut rt);
    println!(
        "physical fabric: {} ({} switches)",
        topo.name,
        topo.switches.len()
    );

    // ---- an ssh slice over the whole fabric -----------------------------
    rt.yfs.create_view("ssh-slice").unwrap();
    rt.yfs
        .write_view_config(
            "ssh-slice",
            &ViewConfig {
                kind: ViewKind::Slice,
                switches: (1..=4).map(|d| format!("sw{d}")).collect(),
                filter: FlowMatch {
                    dl_type: Some(0x0800),
                    nw_proto: Some(6),
                    tp_dst: Some(22),
                    ..Default::default()
                },
            },
        )
        .unwrap();
    let mut slicer = SliceDaemon::new(rt.yfs.clone(), "ssh-slice").unwrap();
    println!("\ncreated view ssh-slice (filter: tcp dst port 22)");

    // The tenant is confined to the view with a mount namespace: it mounts
    // the view *as* /net and cannot name the physical tree at all.
    let tenant_ns =
        Namespace::new(rt.yfs.filesystem().clone()).bind("/net", "/net/views/ssh-slice");
    let mut tenant_sh = Shell::with_namespace(tenant_ns);
    println!("tenant's world (a namespace where the view is /net):");
    print!("{}", tenant_sh.run("ls /net/switches").out);

    // Tenant installs a wildcard flow inside its slice…
    let tenant_view = YancFs::new(rt.yfs.filesystem().clone(), "/net/views/ssh-slice");
    let spec = FlowSpec {
        actions: vec![Action::out(2)],
        priority: 500,
        ..Default::default()
    };
    tenant_view
        .write_flow("sw1", "fwd_everything", &spec)
        .unwrap();
    slicer.run_once();
    rt.pump().unwrap();
    // …which the slicer confines to the ssh header space.
    let phys = rt.yfs.read_flow("sw1", "ssh-slice.fwd_everything").unwrap();
    println!("\ntenant wrote a match-all flow; physically installed as:");
    println!(
        "  tp_dst={:?} nw_proto={:?} (intersected with the slice)",
        phys.m.tp_dst, phys.m.nw_proto
    );
    println!(
        "  hardware entries on sw1: {}",
        rt.net.switches[&1].flow_count()
    );

    // A flow that escapes the slice is rejected through the fs.
    let sneaky = FlowSpec {
        m: FlowMatch {
            dl_type: Some(0x0800),
            nw_proto: Some(6),
            tp_dst: Some(80),
            ..Default::default()
        },
        actions: vec![Action::out(2)],
        ..Default::default()
    };
    tenant_view.write_flow("sw1", "grab_http", &sneaky).unwrap();
    slicer.run_once();
    let err = rt
        .yfs
        .filesystem()
        .read_to_string(
            "/net/views/ssh-slice/switches/sw1/flows/grab_http/error",
            rt.yfs.creds(),
        )
        .unwrap();
    println!("\ntenant tried to grab HTTP; the slicer answered with an error file:");
    println!("  error: {err}");

    // ---- a big-switch view over the same fabric -------------------------
    rt.yfs.create_view("onebig").unwrap();
    rt.yfs
        .write_view_config(
            "onebig",
            &ViewConfig {
                kind: ViewKind::BigSwitch,
                switches: (1..=4).map(|d| format!("sw{d}")).collect(),
                filter: FlowMatch::any(),
            },
        )
        .unwrap();
    let mut big = BigSwitchDaemon::new(rt.yfs.clone(), "onebig").unwrap();
    println!(
        "\ncreated view onebig: 4 switches virtualized as {BIG_SWITCH} with {} ports",
        big.port_map.len()
    );

    let big_view = YancFs::new(rt.yfs.filesystem().clone(), "/net/views/onebig");
    // Forward virtual port 1 (sw1 edge) to the last virtual port (sw4 edge).
    let last = big.port_map.len() as u16;
    let cross = FlowSpec {
        m: FlowMatch {
            in_port: Some(1),
            ..Default::default()
        },
        actions: vec![Action::out(last)],
        priority: 300,
        ..Default::default()
    };
    big_view
        .write_flow(BIG_SWITCH, "cross_fabric", &cross)
        .unwrap();
    big.run_once();
    rt.pump().unwrap();
    println!("one virtual flow compiled into per-hop physical flows:");
    for d in 1..=4u64 {
        let flows = rt.yfs.list_flows(&format!("sw{d}")).unwrap();
        let ours: Vec<&String> = flows.iter().filter(|f| f.starts_with("onebig.")).collect();
        println!("  sw{d}: {ours:?}");
    }
    assert!(big.pushed >= 1);
}
