//! What-if staging over a live network (paper §3.4 generalised): an
//! operator stages flow edits in a private copy-on-write view of `/net`,
//! validates the merged result, and publishes everything in one atomic
//! journaled commit. The switch hardware only ever sees the old tree or
//! the new one — never a half-applied edit.
//!
//! ```text
//! cargo run --example whatif_staging
//! ```

use yanc_apps::WhatIf;
use yanc_driver::Runtime;
use yanc_openflow::Version;
use yanc_vfs::Credentials;

fn main() {
    let mut rt = Runtime::new();
    let sw = rt.add_switch_with_driver(0x1, 4, 1, vec![Version::V1_0], Version::V1_0);
    rt.pump().unwrap();
    assert_eq!(sw, "sw1");
    let fs = rt.yfs.filesystem().clone();
    fs.enable_journal();
    let root = Credentials::root();

    // Open a staging session: a copy-on-write overlay of the live tree.
    let session = WhatIf::begin(fs.clone(), "/net", "/staging/op", &root).unwrap();
    session
        .stage_flow(
            "sw1",
            "ssh",
            &[
                ("priority", "900"),
                ("match.dl_type", "0x0800"),
                ("match.nw_proto", "6"),
                ("match.tp_dst", "22"),
                ("action.out", "2"),
                // The driver's §3.4 commit protocol: a flow is installed
                // when its `version` file lands in the base tree.
                ("version", "1"),
            ],
        )
        .unwrap();
    session
        .stage_flow("sw1", "bad", &[("match.tp_dst", "not-a-port")])
        .unwrap();

    // Validation parses every flow the committed tree would contain and
    // catches the typo before anything reaches the network.
    let errors = session.validate().unwrap_err();
    println!("validation rejects the staged tree:");
    for e in &errors {
        println!("  {e}");
    }
    session.delete_flow("sw1", "bad").unwrap();
    let valid = session.validate().unwrap();
    println!("after dropping the bad flow: {valid} valid flow(s) in the merged view");

    // While staging, the hardware is untouched: the edits live in the
    // private upper layer only.
    rt.pump().unwrap();
    let before = rt.net.switches[&0x1].flow_count();
    println!("switch hardware during staging: {before} flow entries");
    assert_eq!(before, 0);

    // Commit publishes the whole view as one linearization point and one
    // journal frame; the driver then installs the new flow.
    let rep = session.commit().unwrap();
    rt.pump().unwrap();
    let after = rt.net.switches[&0x1].flow_count();
    println!(
        "committed {} records atomically; switch hardware now has {after} flow entries",
        rep.records
    );
    assert_eq!(after, 1);
    assert!(rep.records > 0);

    let js = fs.journal_stats();
    println!(
        "journal: {} records, {} bytes (the commit replays as a single frame)",
        js.records, js.bytes
    );
}
