//! Overlay/union views end to end: copy-on-write tenant mounts composed
//! with the rest of the kernel — namespaces, `/net/.proc/vfs/mounts`,
//! the dentry cache across an atomic commit, per-view notify routing,
//! rctl charging, and supervisor confinement (`overlay_confined`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use yanc::{YancApp, YancResult};
use yanc_driver::Runtime;
use yanc_harness::settle_supervised;
use yanc_init::{ProcessCtx, ProcessSpec, ProcessState, RestartPolicy, Supervisor};
use yanc_vfs::{
    AppLimits, Credentials, Errno, EventMask, Filesystem, Gid, Mode, Namespace, Overlay, Uid,
};

fn world() -> Arc<Filesystem> {
    let fs = Arc::new(Filesystem::builder().shards(4).build());
    let r = Credentials::root();
    fs.mkdir_all("/net/switches/sw1/flows", Mode::DIR_DEFAULT, &r)
        .unwrap();
    fs.write_file("/net/switches/sw1/id", b"0x1\n", &r).unwrap();
    fs.write_file("/net/switches/sw1/desc", b"edge switch\n", &r)
        .unwrap();
    fs.mkdir_all("/views", Mode::DIR_DEFAULT, &r).unwrap();
    fs
}

// ---------------------------------------------------------------------
// /net/.proc/vfs/mounts: every registered namespace renders its table
// ---------------------------------------------------------------------

#[test]
fn proc_mounts_lists_overlay_and_bind_rows_per_namespace() {
    let fs = world();
    let r = Credentials::root();
    fs.mount_proc("/net/.proc").unwrap();

    let ov1 = Overlay::new(fs.clone(), &["/net/switches"], "/views/t1");
    ov1.ensure_upper(&r).unwrap();
    let ns1 = Namespace::new(fs.clone())
        .readonly()
        .bind_ro("/audit", "/net")
        .overlay("/net/switches", &ov1);
    ns1.register_mounts("t1");

    let ov2 = Overlay::new(fs.clone(), &["/net/switches"], "/views/t2");
    ov2.ensure_upper(&r).unwrap();
    let ns2 = Namespace::new(fs.clone()).overlay("/net/switches", &ov2);
    ns2.register_mounts("t2");

    // One tenant does a copy-up; the counters are live in the table.
    ns1.write_file("/net/switches/sw1/desc", b"mine\n", &r)
        .unwrap();

    let table = fs.read_to_string("/net/.proc/vfs/mounts", &r).unwrap();
    assert!(
        table.contains("t1 /net/switches overlay /net/switches -> /views/t1"),
        "missing overlay row:\n{table}"
    );
    assert!(
        table.contains("copy_ups=1"),
        "live counters missing:\n{table}"
    );
    assert!(table.contains("t1 /audit bind_ro"), "bind row:\n{table}");
    assert!(table.contains("t2 /net/switches overlay"), "{table}");
    // Sorted by namespace name: t1's rows come before t2's.
    assert!(table.find("t1 ").unwrap() < table.find("t2 ").unwrap());
    // The write stayed in the view.
    assert_eq!(
        fs.read_to_string("/net/switches/sw1/desc", &r).unwrap(),
        "edge switch\n"
    );
}

// ---------------------------------------------------------------------
// dcache coherence: a commit invalidates exactly what it changed
// ---------------------------------------------------------------------

/// Warm the dentry cache on the base tree (positive *and* negative
/// entries), commit a staged view that overwrites, creates and deletes
/// those very names, and assert base readers observe the new tree
/// immediately — no stale positive, no stale negative, cache still live.
#[test]
fn commit_invalidates_warm_dcache_entries() {
    let fs = world();
    let r = Credentials::root();
    fs.write_file("/net/switches/sw1/doomed", b"bye\n", &r)
        .unwrap();
    let ov = Overlay::new(fs.clone(), &["/net/switches"], "/views/t1");
    ov.ensure_upper(&r).unwrap();

    // Warm: positive entries for desc/doomed, a negative one for "born".
    assert_eq!(
        fs.read_to_string("/net/switches/sw1/desc", &r).unwrap(),
        "edge switch\n"
    );
    assert!(fs.exists("/net/switches/sw1/doomed", &r));
    assert!(!fs.exists("/net/switches/sw1/born", &r));
    // And warm the same names through the merged view.
    assert!(ov.exists("/sw1/doomed", &r));
    assert!(!ov.exists("/sw1/born", &r));

    ov.write_file("/sw1/desc", b"rewritten\n", &r).unwrap();
    ov.write_file("/sw1/born", b"new\n", &r).unwrap();
    ov.unlink("/sw1/doomed", &r).unwrap();
    // Staging visible in the view, invisible in the base — through the
    // same warm cache.
    assert_eq!(ov.read_to_string("/sw1/desc", &r).unwrap(), "rewritten\n");
    assert!(!ov.exists("/sw1/doomed", &r));
    assert_eq!(
        fs.read_to_string("/net/switches/sw1/desc", &r).unwrap(),
        "edge switch\n"
    );

    ov.commit(&r).unwrap();

    // Base readers see the committed tree at once: the commit batch
    // bumped the real directories' generations under the table lock.
    assert_eq!(
        fs.read_to_string("/net/switches/sw1/desc", &r).unwrap(),
        "rewritten\n"
    );
    assert_eq!(
        fs.read_to_string("/net/switches/sw1/born", &r).unwrap(),
        "new\n"
    );
    let e = fs.read_file("/net/switches/sw1/doomed", &r).unwrap_err();
    assert_eq!(e.errno, Errno::ENOENT);
    // The view agrees (its upper is empty again, lowers show the commit).
    assert_eq!(ov.read_to_string("/sw1/desc", &r).unwrap(), "rewritten\n");
    assert!(!ov.exists("/sw1/doomed", &r));
    assert!(fs.dcache_stats().hits > 0, "cache never served a lookup");
}

// ---------------------------------------------------------------------
// notify: staged writes fire in the view; the base fires at commit
// ---------------------------------------------------------------------

#[test]
fn notify_routes_staged_writes_to_the_view_until_commit() {
    let fs = world();
    let r = Credentials::root();
    let ov = Overlay::new(fs.clone(), &["/net/switches"], "/views/t1");
    ov.ensure_upper(&r).unwrap();

    let base_watch = fs
        .watch("/net/switches")
        .subtree()
        .mask(EventMask::ALL)
        .register()
        .unwrap();
    let view_watch = ov
        .watch("/")
        .subtree()
        .mask(EventMask::ALL)
        .register()
        .unwrap();

    ov.write_file("/sw1/desc", b"draft\n", &r).unwrap();
    let view_events = view_watch.receiver().try_iter().count();
    assert!(view_events > 0, "the view watcher must see the copy-up");
    assert_eq!(
        base_watch.receiver().try_iter().count(),
        0,
        "staged writes must not leak events into the base tree"
    );

    ov.commit(&r).unwrap();
    let base_events: Vec<_> = base_watch.receiver().try_iter().collect();
    assert!(
        base_events
            .iter()
            .any(|e| e.name.as_deref() == Some("desc")),
        "commit must fire base events for the published names: {base_events:?}"
    );
}

// ---------------------------------------------------------------------
// rctl: copy-up bytes are charged to the tenant who wrote them
// ---------------------------------------------------------------------

#[test]
fn copy_up_through_a_namespace_is_charged_to_the_tenant() {
    let fs = world();
    let r = Credentials::root();
    // The tenant owns this base file (so plain POSIX lets them write it).
    fs.chown(
        "/net/switches/sw1/desc",
        Some(Uid(7001)),
        Some(Gid(7001)),
        &r,
    )
    .unwrap();
    let tenant = Credentials::user(7001, 7001);
    let ov = Overlay::new(fs.clone(), &["/net/switches"], "/views/t1");
    ov.ensure_upper(&tenant).unwrap();
    let ns = Namespace::new(fs.clone())
        .readonly()
        .overlay("/net/switches", &ov);

    fs.rctl().set_limits(
        7001,
        AppLimits {
            syscall_tokens: Some(100_000),
            ..Default::default()
        },
    );
    let before = fs.rctl().usage(7001).map(|u| u.charged).unwrap_or(0);
    ns.write_file("/net/switches/sw1/desc", b"tenant edit\n", &tenant)
        .unwrap();
    let after = fs.rctl().usage(7001).map(|u| u.charged).unwrap();
    assert!(
        after > before,
        "copy-up bytes must land on the tenant's rctl account"
    );
    assert_eq!(ov.stats().copy_ups, 1);
    // Root's base file is untouched.
    assert_eq!(
        fs.read_to_string("/net/switches/sw1/desc", &r).unwrap(),
        "edge switch\n"
    );
}

// ---------------------------------------------------------------------
// init: overlay_confined processes stage writes, the admin commits
// ---------------------------------------------------------------------

struct ViewWriter {
    ns: Namespace,
    creds: Credentials,
    writes: Arc<AtomicU64>,
}

impl YancApp for ViewWriter {
    fn name(&self) -> &str {
        "viewwriter"
    }

    fn run_once(&mut self) -> YancResult<bool> {
        if self.writes.load(Ordering::Relaxed) > 0 {
            return Ok(false);
        }
        self.ns
            .write_file("/net/apps/cfg/note", b"staged by app\n", &self.creds)?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }
}

#[test]
fn supervisor_confines_an_app_behind_an_overlay() {
    let mut rt = Runtime::new();
    rt.yfs.enable_introspection().unwrap();
    let fs = rt.yfs.filesystem().clone();
    let r = Credentials::root();
    fs.mkdir_all("/net/apps/cfg", Mode::DIR_DEFAULT, &r)
        .unwrap();
    fs.mkdir_all("/views", Mode::DIR_DEFAULT, &r).unwrap();

    let mut sup = Supervisor::new(rt.yfs.clone()).unwrap();
    let writes = Arc::new(AtomicU64::new(0));
    let writes2 = writes.clone();
    let pid = sup
        .spawn(
            ProcessSpec::new("viewwriter")
                .policy(RestartPolicy::never())
                .overlay_confined("/net", &["/net"], "/views/viewwriter"),
            move |ctx: &ProcessCtx| {
                let ns = ctx.namespace.clone().expect("overlay spec must confine");
                let app_uid = ctx.uid;
                Ok(Box::new(ViewWriter {
                    ns,
                    creds: Credentials::user(app_uid, app_uid),
                    writes: writes2.clone(),
                }) as Box<dyn YancApp>)
            },
        )
        .unwrap();
    // The app's own uid must be able to create under the merged dir.
    let uid = sup.uid_of(pid).unwrap();
    fs.chown("/net/apps/cfg", Some(Uid(uid)), Some(Gid(uid)), &r)
        .unwrap();
    settle_supervised(&mut rt, &mut sup);
    assert_eq!(sup.state(pid), Some(ProcessState::Running));
    assert_eq!(writes.load(Ordering::Relaxed), 1);

    // The write is staged in the app's private upper, not the base.
    assert_eq!(
        fs.read_to_string("/views/viewwriter/apps/cfg/note", &r)
            .unwrap(),
        "staged by app\n"
    );
    assert!(!fs.exists("/net/apps/cfg/note", &r));

    // Its mount is visible in /net/.proc/vfs/mounts under the spec name.
    let table = fs.read_to_string("/net/.proc/vfs/mounts", &r).unwrap();
    assert!(
        table.contains("viewwriter /net overlay /net -> /views/viewwriter"),
        "{table}"
    );

    // The app's credentials can commit their own staged view: every base
    // directory the commit touches is theirs.
    let ov = Overlay::new(fs.clone(), &["/net"], "/views/viewwriter");
    let app = Credentials::user(uid, uid);
    let report = ov.commit(&app).unwrap();
    assert!(report.records > 0);
    assert_eq!(
        fs.read_to_string("/net/apps/cfg/note", &r).unwrap(),
        "staged by app\n"
    );
    assert!(!fs.exists("/views/viewwriter/apps", &r), "staging cleared");
}
