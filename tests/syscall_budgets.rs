//! E4/E5 syscall budgets as regression tests: the tables printed by
//! `bench control_plane` and `bench packetin_and_notify` (and recorded in
//! EXPERIMENTS.md) are pinned here, with every count read back through
//! the `/net/.proc` introspection tree rather than the in-process
//! counters — so the test also proves the proc view is exact.

use std::sync::Arc;

use bytes::Bytes;

use yanc::{FlowSpec, PacketInRecord, YancFs};
use yanc_driver::Runtime;
use yanc_openflow::{Action, FlowMatch, Ipv4Prefix, Version};
use yanc_packet::MacAddr;
use yanc_vfs::{Credentials, Filesystem};

/// `cat`-equivalent: read a proc file and parse it as a number. Proc
/// paths are exempt from syscall accounting, so this never perturbs the
/// budgets being measured.
fn proc_u64(fs: &Arc<Filesystem>, path: &str) -> u64 {
    fs.read_to_string(path, &Credentials::root())
        .unwrap_or_else(|e| panic!("{path}: {e}"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("{path}: not a number: {e}"))
}

/// A spec with exactly `k` populated match fields (mirrors the E4 bench).
fn spec_with_fields(k: usize) -> FlowSpec {
    type FieldSetter = Box<dyn Fn(&mut FlowMatch)>;
    let mut m = FlowMatch::any();
    let setters: Vec<FieldSetter> = vec![
        Box::new(|m| m.in_port = Some(1)),
        Box::new(|m| m.dl_src = Some(MacAddr::from_seed(1))),
        Box::new(|m| m.dl_dst = Some(MacAddr::from_seed(2))),
        Box::new(|m| m.dl_type = Some(0x0800)),
        Box::new(|m| m.nw_tos = Some(0x20)),
        Box::new(|m| m.nw_proto = Some(6)),
        Box::new(|m| m.nw_src = Ipv4Prefix::parse("10.0.0.0/24")),
        Box::new(|m| m.nw_dst = Ipv4Prefix::parse("10.1.0.0/16")),
        Box::new(|m| m.tp_src = Some(1000)),
        Box::new(|m| m.tp_dst = Some(22)),
    ];
    for s in setters.iter().take(k) {
        s(&mut m);
    }
    FlowSpec {
        m,
        actions: vec![Action::out(2)],
        priority: 500,
        ..Default::default()
    }
}

#[test]
fn e4_commit_syscall_budget_via_proc() {
    // EXPERIMENTS.md E4: 20 fixed + 3 per match field.
    for (k, expected) in [(1usize, 23u64), (4, 32), (7, 41), (10, 50)] {
        let mut rt = Runtime::new();
        rt.add_switch_with_driver(1, 4, 1, vec![Version::V1_0], Version::V1_0);
        rt.pump().unwrap();
        rt.enable_introspection().unwrap();
        let fs = rt.yfs.filesystem();
        let before = proc_u64(fs, "/net/.proc/vfs/syscalls/total");
        rt.yfs.write_flow("sw1", "f", &spec_with_fields(k)).unwrap();
        let after = proc_u64(fs, "/net/.proc/vfs/syscalls/total");
        assert_eq!(
            after - before,
            expected,
            "flow commit with {k} match fields"
        );
    }
}

#[test]
fn e5_fanout_syscall_budget_via_proc() {
    // EXPERIMENTS.md E5: ~19 syscalls per subscriber, linear fan-out.
    for (n, expected) in [
        (1usize, 20u64),
        (2, 39),
        (4, 77),
        (8, 153),
        (16, 305),
        (32, 609),
    ] {
        let yfs = YancFs::init(Arc::new(Filesystem::new()), "/net").unwrap();
        yfs.enable_introspection().unwrap();
        let _subs: Vec<_> = (0..n)
            .map(|i| yfs.subscribe_events(&format!("app{i}")).unwrap())
            .collect();
        let rec = PacketInRecord {
            switch: "sw1".into(),
            in_port: 1,
            buffer_id: None,
            reason: "no_match".into(),
            data: Bytes::from(vec![0u8; 256]),
        };
        let fs = yfs.filesystem();
        let before = proc_u64(fs, "/net/.proc/vfs/syscalls/total");
        yfs.publish_packet_in(&rec).unwrap();
        let after = proc_u64(fs, "/net/.proc/vfs/syscalls/total");
        assert_eq!(after - before, expected, "publish to {n} subscribers");
    }
}

#[test]
fn e4_budget_is_unchanged_by_introspection() {
    // The proc mount must be an observer: the same workload costs the
    // same number of syscalls with and without it.
    let run = |introspect: bool| -> u64 {
        let mut rt = Runtime::new();
        rt.add_switch_with_driver(1, 4, 1, vec![Version::V1_0], Version::V1_0);
        rt.pump().unwrap();
        if introspect {
            rt.enable_introspection().unwrap();
        }
        let before = rt.yfs.filesystem().counters().snapshot();
        rt.yfs
            .write_flow("sw1", "f", &spec_with_fields(10))
            .unwrap();
        rt.yfs
            .filesystem()
            .counters()
            .snapshot()
            .since(&before)
            .total()
    };
    assert_eq!(run(false), run(true));
}
