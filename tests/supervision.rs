//! Process management end to end: the supervisor runs daemons as yanc
//! processes, faults are injected deterministically, and the network
//! reconverges to its pre-fault fixpoint — with the whole story readable
//! through `/net/.proc` and drivable with `ps`/`kill` one-liners.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use yanc::{YancApp, YancFs, YancResult};
use yanc_apps::{LearningSwitch, TopologyDaemon};
use yanc_coreutils::Shell;
use yanc_driver::Runtime;
use yanc_harness::{build_line, settle_supervised};
use yanc_init::{Fault, ProcessCtx, ProcessSpec, ProcessState, RestartPolicy, Supervisor};
use yanc_openflow::Version;
use yanc_vfs::{AppLimits, Credentials, EventMask, Uid};

fn topod_factory(ctx: &ProcessCtx) -> YancResult<Box<dyn YancApp>> {
    Ok(Box::new(TopologyDaemon::new(ctx.yfs.clone())?) as Box<dyn YancApp>)
}

/// Every inter-switch link the fs knows, as a sorted fingerprint string.
fn topology_fingerprint(yfs: &YancFs) -> String {
    let mut links = Vec::new();
    for sw in yfs.list_switches().unwrap() {
        for port in yfs.list_ports(&sw).unwrap() {
            if let Ok(Some((peer, pport))) = yfs.peer(&sw, port) {
                links.push(format!("{sw}:{port}->{peer}:{pport}"));
            }
        }
    }
    links.sort();
    links.join("\n")
}

/// Build a 3-switch line, supervise a topology daemon over it, optionally
/// script the fault scenario, settle, and report
/// `(topology, restarts, total syscalls)`.
fn run_line_scenario(faulted: bool) -> (String, u64, u64) {
    let mut rt = Runtime::new();
    build_line(&mut rt, 3, Version::V1_3);
    rt.yfs.enable_introspection().unwrap();
    let mut sup = Supervisor::new(rt.yfs.clone()).unwrap();
    let pid = sup
        .spawn(
            ProcessSpec::new("topod").policy(RestartPolicy {
                restart: true,
                backoff_base: 1,
                max_restarts: 4,
            }),
            topod_factory,
        )
        .unwrap();
    if faulted {
        // Damage discovery early (lost + reordered control frames), then
        // kill the daemon mid-event-loop. The restart must re-probe and
        // heal whatever the channel faults ate.
        sup.faults.at(1, Fault::DropControl { dpid: 2, frames: 2 });
        sup.faults.at(1, Fault::ReorderControl { dpid: 3 });
        sup.faults.at(6, Fault::KillApp { pid });
    }
    settle_supervised(&mut rt, &mut sup);
    let fs = rt.yfs.filesystem();
    let root = Credentials::root();
    let restarts: u64 = fs
        .read_to_string(&format!("/net/.proc/apps/{pid}/restarts"), &root)
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    let syscalls: u64 = fs
        .read_to_string("/net/.proc/scopes/net/total", &root)
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert_eq!(sup.state(pid), Some(ProcessState::Running));
    (topology_fingerprint(&rt.yfs), restarts, syscalls)
}

#[test]
fn killed_topod_plus_channel_faults_reconverge_to_prefault_fixpoint() {
    let (clean_topo, clean_restarts, _) = run_line_scenario(false);
    assert_eq!(clean_restarts, 0);
    // A 3-line has two links, each recorded from both ends.
    assert_eq!(clean_topo.lines().count(), 4, "{clean_topo}");

    let (topo_a, restarts_a, syscalls_a) = run_line_scenario(true);
    let (topo_b, restarts_b, syscalls_b) = run_line_scenario(true);
    // Reconverged to the exact pre-fault fixpoint...
    assert_eq!(topo_a, clean_topo);
    // ...after exactly one policy-driven restart, visible in .proc...
    assert_eq!(restarts_a, 1);
    // ...and the whole faulted run is deterministic, down to the virtual
    // kernel's syscall count.
    assert_eq!(topo_a, topo_b);
    assert_eq!(restarts_a, restarts_b);
    assert_eq!(syscalls_a, syscalls_b);
}

/// Scans the whole `/net` tree every slice — far more syscalls than its
/// token bucket allows.
struct GreedyScanner {
    yfs: YancFs,
    stats_done: Arc<AtomicU64>,
}

impl YancApp for GreedyScanner {
    fn name(&self) -> &str {
        "greedy"
    }

    fn run_once(&mut self) -> YancResult<bool> {
        let fs = self.yfs.filesystem();
        for _ in 0..64 {
            fs.stat(self.yfs.root().as_str(), self.yfs.creds())?;
            self.stats_done.fetch_add(1, Ordering::Relaxed);
        }
        Ok(false)
    }
}

#[test]
fn rate_limited_app_is_throttled_without_starving_the_rest() {
    let mut rt = Runtime::new();
    rt.add_switch_with_driver(0x1, 4, 1, vec![Version::V1_0], Version::V1_0);
    let h1 = rt.net.add_host("h1", "10.0.0.1".parse().unwrap());
    let h2 = rt.net.add_host("h2", "10.0.0.2".parse().unwrap());
    rt.net.attach_host(h1, (0x1, 1), None);
    rt.net.attach_host(h2, (0x1, 2), None);
    rt.pump().unwrap();
    rt.yfs.enable_introspection().unwrap();
    let mut sup = Supervisor::new(rt.yfs.clone()).unwrap();

    let stats_done = Arc::new(AtomicU64::new(0));
    let sd = stats_done.clone();
    let greedy = sup
        .spawn(
            ProcessSpec::new("greedy").limits(AppLimits {
                syscall_tokens: Some(8),
                ..Default::default()
            }),
            move |ctx: &ProcessCtx| {
                Ok(Box::new(GreedyScanner {
                    yfs: ctx.yfs.clone(),
                    stats_done: sd.clone(),
                }) as Box<dyn YancApp>)
            },
        )
        .unwrap();
    let l2 = sup
        .spawn(ProcessSpec::new("l2switch"), |ctx: &ProcessCtx| {
            Ok(Box::new(LearningSwitch::new(ctx.yfs.clone())?) as Box<dyn YancApp>)
        })
        .unwrap();

    rt.net.host_ping(h1, "10.0.0.2".parse().unwrap(), 1);
    for _ in 0..20 {
        sup.step(&mut rt);
    }

    // The greedy app ran out of tokens every single slice (EAGAIN), yet it
    // is alive, unrestarted, and still making bounded progress per tick.
    assert!(sup.throttles(greedy) >= 10, "{}", sup.throttles(greedy));
    assert_eq!(sup.state(greedy), Some(ProcessState::Running));
    assert_eq!(sup.restarts(greedy), 0);
    let done = stats_done.load(Ordering::Relaxed);
    assert!(done >= 8 * 10, "greedy starved: only {done} stats");
    // And it never starved the learning switch: the ping went through.
    assert_eq!(
        rt.net.hosts[&h1].ping_replies,
        vec![("10.0.0.2".parse().unwrap(), 1)]
    );
    assert_eq!(sup.state(l2), Some(ProcessState::Running));
    // The throttling shows up in the kernel-wide .proc counters too.
    let throttled: u64 = rt
        .yfs
        .filesystem()
        .read_to_string("/net/.proc/vfs/rctl/throttled", &Credentials::root())
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert!(throttled >= sup.throttles(greedy));
}

#[test]
fn failed_driver_is_detached_and_reattached_compatibly() {
    let mut rt = Runtime::new();
    // Switch speaks only 1.0; the first driver insists on 1.3 and dies.
    rt.add_switch_with_driver(0xc, 2, 1, vec![Version::V1_0], Version::V1_3);
    rt.yfs.enable_introspection().unwrap();
    rt.pump().unwrap();
    let fs = rt.yfs.filesystem().clone();
    let root = Credentials::root();
    // The terminal state is visible in the introspection tree (the driver
    // never learned a switch name, so it registers under its dpid).
    assert_eq!(
        fs.read_to_string("/net/.proc/drivers/dpidc/state", &root)
            .unwrap()
            .trim(),
        "failed"
    );
    assert!(rt.yfs.list_switches().unwrap().is_empty());

    let mut sup = Supervisor::new(rt.yfs.clone()).unwrap();
    assert_eq!(sup.supervise_drivers(&mut rt), 1);
    rt.pump().unwrap();
    // The replacement negotiated the best version the switch implements.
    assert_eq!(rt.yfs.list_switches().unwrap(), vec!["swc".to_string()]);
    assert_eq!(
        fs.read_to_string("/net/.proc/drivers/swc/protocol", &root)
            .unwrap()
            .trim(),
        "OpenFlow 1.0"
    );
    assert_eq!(sup.driver_reattaches(), 1);
    assert_eq!(
        fs.read_to_string("/net/.proc/init/driver_reattaches", &root)
            .unwrap()
            .trim(),
        "1"
    );
    // Idempotent: nothing left to heal.
    assert_eq!(sup.supervise_drivers(&mut rt), 0);
}

#[test]
fn ps_and_kill_drive_the_process_table_from_the_shell() {
    let mut rt = Runtime::new();
    build_line(&mut rt, 2, Version::V1_0);
    rt.yfs.enable_introspection().unwrap();
    let mut sup = Supervisor::new(rt.yfs.clone()).unwrap();
    let topod = sup.spawn(ProcessSpec::new("topod"), topod_factory).unwrap();
    let l2 = sup
        .spawn(ProcessSpec::new("l2switch"), |ctx: &ProcessCtx| {
            Ok(Box::new(LearningSwitch::new(ctx.yfs.clone())?) as Box<dyn YancApp>)
        })
        .unwrap();
    settle_supervised(&mut rt, &mut sup);

    let mut sh = Shell::new(rt.yfs.filesystem().clone());
    let ps = sh.run("ps").out;
    assert!(
        ps.contains(&format!("{topod} 1000 running 0 topod")),
        "{ps}"
    );
    assert!(
        ps.contains(&format!("{l2} 1001 running 0 l2switch")),
        "{ps}"
    );

    // `kill` is just an append to the ctl file; the supervisor's next
    // tick delivers it.
    assert!(sh.run(&format!("kill -TERM {topod}")).success());
    settle_supervised(&mut rt, &mut sup);
    assert_eq!(sup.state(topod), Some(ProcessState::Stopped));
    let ps = sh.run("ps").out;
    assert!(
        ps.contains(&format!("{topod} 1000 stopped 0 topod")),
        "{ps}"
    );
    assert!(ps.contains("running 0 l2switch"), "{ps}");
}

// ---------------------------------------------------------------------
// The reclamation law (proptest): killing a process leaves no orphaned
// kernel resources, and the `.proc` totals agree with the kernel.
// ---------------------------------------------------------------------

/// Holds `n_handles` open fds and `n_watches` watches, forever.
struct Hoarder;
impl YancApp for Hoarder {
    fn name(&self) -> &str {
        "hoarder"
    }
    fn run_once(&mut self) -> YancResult<bool> {
        Ok(false)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kill_reclaims_every_handle_and_watch(
        n_handles in 0usize..6,
        n_watches in 0usize..4,
        ticks_before_kill in 0u64..4,
    ) {
        let mut rt = Runtime::new();
        rt.add_switch_with_driver(0x1, 2, 1, vec![Version::V1_0], Version::V1_0);
        rt.pump().unwrap();
        rt.yfs.enable_introspection().unwrap();
        let fs = rt.yfs.filesystem().clone();
        let root = Credentials::root();
        let baseline_handles = fs.open_handle_count();

        let mut sup = Supervisor::new(rt.yfs.clone()).unwrap();
        let pid = sup
            .spawn(
                ProcessSpec::new("hoarder").policy(RestartPolicy::never()),
                move |ctx: &ProcessCtx| {
                    let fs = ctx.yfs.filesystem();
                    let creds = ctx.yfs.creds();
                    for i in 0..n_handles {
                        let p = format!("/net/views/hoard_{i}");
                        fs.write_file(&p, b"x", creds)?;
                        fs.open(&p, yanc_vfs::OpenFlags::read_only(), creds)?;
                    }
                    for _ in 0..n_watches {
                        // Leak the watch: the guard's drop-unwatch is
                        // disarmed, so only the uid reclaim can free it.
                        let g = fs
                            .watch("/net/views")
                            .mask(EventMask::ALL)
                            .as_creds(creds)
                            .register()?;
                        std::mem::forget(g.forget());
                    }
                    Ok(Box::new(Hoarder) as Box<dyn YancApp>)
                },
            )
            .unwrap();
        let uid = sup.uid_of(pid).unwrap();
        for _ in 0..ticks_before_kill {
            sup.step(&mut rt);
        }
        prop_assert_eq!(fs.handles_of(Uid(uid)), n_handles);

        sup.signal(pid, yanc_init::Signal::Kill);

        // No orphans: everything charged to the uid is gone...
        prop_assert_eq!(fs.handles_of(Uid(uid)), 0);
        prop_assert_eq!(fs.notify().watches_of(uid), 0);
        // ...the kernel is back to its pre-spawn handle count...
        prop_assert_eq!(fs.open_handle_count(), baseline_handles);
        // ...and the .proc totals tell the same story as the kernel. The
        // snapshot includes the fd doing the reading — the same observer
        // effect as `cat /proc/sys/fs/file-nr` counting its own handle —
        // which is gone again by the time we recount directly.
        let proc_handles: usize = fs
            .read_to_string("/net/.proc/vfs/handles", &root)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        prop_assert_eq!(proc_handles, fs.open_handle_count() + 1);
        // The supervisor accounted every force-closed handle, and the
        // cumulative tally is readable from .proc like everything else.
        prop_assert_eq!(sup.reclaimed_handles(), n_handles as u64);
        let proc_reclaimed: u64 = fs
            .read_to_string("/net/.proc/init/reclaimed_handles", &root)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        prop_assert_eq!(proc_reclaimed, n_handles as u64);
        // RestartPolicy::never(): the kill is terminal.
        prop_assert_eq!(sup.state(pid), Some(ProcessState::Failed));
    }
}
