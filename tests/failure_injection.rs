//! Failure injection across the stack: controller crashes, malformed
//! inputs, resource exhaustion, link flaps. The system must degrade
//! loudly-but-gracefully — errors surface as files or errno, never as
//! panics or silent corruption.

use yanc::FlowSpec;
use yanc_driver::{OpenFlowDriver, Runtime};
use yanc_openflow::{port_no, Action, FlowMatch, Version};
use yanc_vfs::{Credentials, Errno, Filesystem, Limits, Mode};

fn two_hosts() -> (Runtime, u64, u64) {
    let mut rt = Runtime::new();
    rt.add_switch_with_driver(0x1, 4, 1, vec![Version::V1_0], Version::V1_0);
    let h1 = rt.net.add_host("h1", "10.0.0.1".parse().unwrap());
    let h2 = rt.net.add_host("h2", "10.0.0.2".parse().unwrap());
    rt.net.attach_host(h1, (0x1, 1), None);
    rt.net.attach_host(h2, (0x1, 2), None);
    rt.pump().unwrap();
    rt.yfs
        .write_flow(
            "sw1",
            "flood",
            &FlowSpec {
                m: FlowMatch::any(),
                actions: vec![Action::out(port_no::FLOOD)],
                priority: 1,
                ..Default::default()
            },
        )
        .unwrap();
    rt.pump().unwrap();
    (rt, h1, h2)
}

#[test]
fn controller_crash_and_recovery() {
    let (mut rt, h1, _h2) = two_hosts();
    rt.net.host_ping(h1, "10.0.0.2".parse().unwrap(), 1);
    rt.pump().unwrap();
    assert_eq!(rt.net.hosts[&h1].ping_replies.len(), 1);

    // Controller dies: driver dropped, channel detached.
    rt.drivers.clear();
    rt.net.detach_controller(0x1);
    // Existing hardware flows keep forwarding (headless data plane).
    rt.net.host_ping(h1, "10.0.0.2".parse().unwrap(), 2);
    rt.pump().unwrap();
    assert_eq!(
        rt.net.hosts[&h1].ping_replies.len(),
        2,
        "data plane survives controller loss"
    );

    // A flow committed while the controller is dead reaches the fs only.
    rt.yfs
        .write_flow(
            "sw1",
            "ssh",
            &FlowSpec {
                m: FlowMatch {
                    tp_dst: Some(22),
                    ..Default::default()
                },
                actions: vec![Action::out(2)],
                priority: 77,
                ..Default::default()
            },
        )
        .unwrap();
    rt.pump().unwrap();
    assert_eq!(rt.net.switches[&0x1].flow_count(), 1);

    // New controller: re-handshake; the driver resyncs fs state into the
    // switch (including the flow written during the outage).
    let handle = rt.net.attach_controller(0x1);
    rt.drivers
        .push(OpenFlowDriver::new(Version::V1_0, rt.yfs.clone(), handle));
    rt.pump().unwrap();
    assert!(rt.drivers[0].ready());
    assert_eq!(
        rt.net.switches[&0x1].flow_count(),
        2,
        "fs flows resynced after recovery"
    );
    rt.net.host_ping(h1, "10.0.0.2".parse().unwrap(), 3);
    rt.pump().unwrap();
    assert_eq!(rt.net.hosts[&h1].ping_replies.len(), 3);
}

#[test]
fn malformed_committed_flow_reports_error_file() {
    let (mut rt, _h1, _h2) = two_hosts();
    let fs = rt.yfs.filesystem().clone();
    let creds = rt.yfs.creds().clone();
    fs.mkdir("/net/switches/sw1/flows/bad", Mode::DIR_DEFAULT, &creds)
        .unwrap();
    fs.write_file(
        "/net/switches/sw1/flows/bad/match.dl_src",
        b"not-a-mac",
        &creds,
    )
    .unwrap();
    fs.write_file("/net/switches/sw1/flows/bad/version", b"1", &creds)
        .unwrap();
    rt.pump().unwrap();
    // Not installed; the reason is in the directory.
    assert_eq!(rt.net.switches[&0x1].flow_count(), 1); // just the flood flow
    let err = fs
        .read_to_string("/net/switches/sw1/flows/bad/error", &creds)
        .unwrap();
    assert!(err.contains("dl_src"), "{err}");
}

#[test]
fn garbage_packet_out_lines_are_ignored() {
    let (mut rt, _h1, h2) = two_hosts();
    let fs = rt.yfs.filesystem().clone();
    let creds = rt.yfs.creds().clone();
    let delivered_before = rt.net.hosts[&h2].frames_received;
    fs.append_file(
        "/net/switches/sw1/packet_out",
        b"this is not a packet-out line\nbuffer=zzz in_port=bad\n",
        &creds,
    )
    .unwrap();
    rt.pump().unwrap(); // no panic, nothing sent
    assert_eq!(rt.net.hosts[&h2].frames_received, delivered_before);
}

#[test]
fn quota_exhaustion_surfaces_as_enospc() {
    let fs = std::sync::Arc::new(
        Filesystem::builder()
            .limits(Limits {
                max_file_size: 1 << 20,
                max_dir_entries: 12,
                max_open_files: 1 << 10,
            })
            .build(),
    );
    let yfs = yanc::YancFs::init(fs, "/net").unwrap();
    yfs.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
    // Filling the flows directory eventually hits EDQUOT, reported as a
    // typed error, not a panic or partial corruption.
    let mut hit_quota = false;
    for i in 0..16 {
        match yfs.write_flow("sw1", &format!("f{i}"), &FlowSpec::default()) {
            Ok(_) => {}
            Err(yanc::YancError::Vfs(e)) => {
                assert!(matches!(e.errno, Errno::EDQUOT | Errno::ENOSPC), "{e}");
                hit_quota = true;
                break;
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(hit_quota, "quota should have been reached");
}

#[test]
fn link_flap_is_reported_through_port_status_files() {
    let (mut rt, h1, _h2) = two_hosts();
    let status = |rt: &Runtime| -> String {
        rt.yfs
            .filesystem()
            .read_to_string(
                "/net/switches/sw1/ports/p2/config.port_status",
                rt.yfs.creds(),
            )
            .unwrap()
    };
    assert_eq!(status(&rt), "up");
    rt.net.set_link_up(
        yanc_dataplane::Endpoint::Switch { dpid: 0x1, port: 2 },
        false,
    );
    rt.pump().unwrap();
    assert_eq!(status(&rt), "down");
    // Traffic toward the dead link goes nowhere, quietly.
    rt.net.host_ping(h1, "10.0.0.2".parse().unwrap(), 9);
    rt.pump().unwrap();
    assert!(rt.net.hosts[&h1].ping_replies.is_empty());
    // Link heals.
    rt.net.set_link_up(
        yanc_dataplane::Endpoint::Switch { dpid: 0x1, port: 2 },
        true,
    );
    rt.pump().unwrap();
    assert_eq!(status(&rt), "up");
    rt.net.host_ping(h1, "10.0.0.2".parse().unwrap(), 10);
    rt.pump().unwrap();
    // Both pings complete: the one queued behind the unresolved ARP during
    // the outage flushes as soon as resolution succeeds, plus the new one.
    assert_eq!(rt.net.hosts[&h1].ping_replies.len(), 2);
}

#[test]
fn unwritable_flow_dir_denies_but_never_wedges_the_driver() {
    let (mut rt, h1, _h2) = two_hosts();
    let fs = rt.yfs.filesystem().clone();
    let admin = Credentials::root();
    // Lock the flows dir; an unprivileged app fails cleanly…
    fs.chmod("/net/switches/sw1/flows", Mode(0o500), &admin)
        .unwrap();
    let app = rt.yfs.with_creds(Credentials::user(4000, 4000));
    let err = app
        .write_flow("sw1", "nope", &FlowSpec::default())
        .unwrap_err();
    assert!(matches!(err, yanc::YancError::Vfs(e) if e.errno == Errno::EACCES));
    // …and the driver keeps serving traffic afterwards.
    rt.net.host_ping(h1, "10.0.0.2".parse().unwrap(), 1);
    rt.pump().unwrap();
    assert_eq!(rt.net.hosts[&h1].ping_replies.len(), 1);
}
