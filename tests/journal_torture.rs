//! Crash-at-every-record torture suite for the vfs write-ahead journal.
//!
//! The durability contract (DESIGN.md §10): at any byte-truncation point of
//! the journal — a crash can stop the log mid-frame, mid-snapshot, anywhere —
//! `restore_from_journal` rebuilds exactly the tree that existed at the last
//! complete record boundary, partial frames are invisible, and the very next
//! operation on the restored tree fails or succeeds with the *same errno* the
//! sequential model would produce. These tests prove that contract by brute
//! force: a seeded 500-op history is journaled, then the log is truncated
//! after **every** frame boundary (and inside sampled frames, including
//! mid-snapshot) and restored.
//!
//! The E23 experiment lives here too: a supervised controller crash
//! ([`Fault::CrashController`], the PR-2 fault injector) followed by a warm
//! journal restart that must reconverge with strictly fewer syscalls than
//! the E19 cold restart, pinned via `/net/.proc/vfs/journal` counters.

use std::collections::HashMap;
use std::sync::Arc;

use yanc::{YancApp, YancFs, YancResult};
use yanc_apps::TopologyDaemon;
use yanc_harness::{build_line, settle_supervised};
use yanc_init::{Fault, ProcessCtx, ProcessSpec, Supervisor};
use yanc_openflow::Version;
use yanc_vfs::{scan_frames, Acl, Credentials, Filesystem, Gid, Limits, Mode, Uid, VfsResult};

// ----------------------------------------------------------------------
// Deterministic op generator (splitmix64, same idiom as linearizability.rs)
// ----------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const DIRS: [&str; 3] = ["/t/d0", "/t/d1", "/t/d2"];
const NAMES: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
const SUBS: [&str; 3] = ["s0", "s1", "s2"];

/// One step of the torture history. Every journaled record kind is reachable:
/// `WriteFile` emits `Create`/`Truncate`+`Write`, `BatchWrite` emits
/// `Create`/`SetContent`, and the rest map one-to-one.
#[derive(Debug, Clone)]
enum Op {
    Mkdir(String),
    WriteFile(String, Vec<u8>),
    Rename(String, String),
    Unlink(String),
    Link(String, String),
    Chmod(String, u16),
    Chown(String, u32, u32),
    SetAcl(String, bool),
    SetXattr(String, String, Vec<u8>),
    RemoveXattr(String, String),
    Truncate(String, u64),
    Symlink(String, String),
    Rmdir(String),
    BatchWrite(String, String, Vec<u8>),
}

fn gen_op(rng: &mut Rng) -> Op {
    let dir = DIRS[rng.below(3) as usize];
    let name = NAMES[rng.below(6) as usize];
    let file = format!("{dir}/{name}");
    match rng.below(100) {
        0..=31 => {
            // Never empty: each successful write yields a `Write` record.
            let len = 1 + rng.below(95) as usize;
            let mut data = vec![0u8; len];
            for b in data.iter_mut() {
                *b = (rng.below(256)) as u8;
            }
            Op::WriteFile(file, data)
        }
        32..=39 => Op::Mkdir(format!("{dir}/{}", SUBS[rng.below(3) as usize])),
        40..=46 => {
            let to = format!(
                "{}/{}",
                DIRS[rng.below(3) as usize],
                NAMES[rng.below(6) as usize]
            );
            Op::Rename(file, to)
        }
        47..=53 => Op::Unlink(file),
        54..=59 => {
            let new = format!(
                "{}/{}",
                DIRS[rng.below(3) as usize],
                NAMES[rng.below(6) as usize]
            );
            Op::Link(file, new)
        }
        60..=65 => Op::Chmod(file, 0o600 + (rng.below(64) as u16)),
        66..=71 => Op::Chown(file, 1000 + rng.below(3) as u32, 1000 + rng.below(3) as u32),
        72..=76 => Op::SetAcl(file, rng.below(2) == 0),
        77..=81 => Op::SetXattr(
            file,
            format!("user.k{}", rng.below(3)),
            vec![rng.below(256) as u8; 4],
        ),
        82..=85 => Op::RemoveXattr(file, format!("user.k{}", rng.below(3))),
        86..=89 => Op::Truncate(file, rng.below(48)),
        90..=93 => {
            let link = format!("{dir}/{}", SUBS[rng.below(3) as usize]);
            Op::Symlink(file, format!("{link}.lnk"))
        }
        94..=95 => Op::Rmdir(format!("{dir}/{}", SUBS[rng.below(3) as usize])),
        _ => {
            let mut data = vec![0u8; 8];
            for b in data.iter_mut() {
                *b = (rng.below(256)) as u8;
            }
            Op::BatchWrite(dir.to_string(), name.to_string(), data)
        }
    }
}

/// The 500-op seeded history, prefixed by the deterministic scaffolding that
/// creates the working directories (themselves journaled ops).
fn build_history(seed: u64, n: usize) -> Vec<Op> {
    let mut ops = vec![Op::Mkdir("/t".into())];
    ops.extend(DIRS.iter().map(|d| Op::Mkdir((*d).into())));
    let mut rng = Rng::new(seed);
    while ops.len() < n {
        ops.push(gen_op(&mut rng));
    }
    ops
}

/// Apply one op. The result (`Ok` payload and exact errno alike) is part of
/// the sequential model: the journaled run, the restored run, and the oracle
/// must all observe the same value at the same history position.
fn apply_op(fs: &Filesystem, op: &Op) -> VfsResult<u64> {
    let root = Credentials::root();
    match op {
        Op::Mkdir(p) => fs.mkdir(p, Mode::DIR_DEFAULT, &root).map(|_| 0),
        Op::WriteFile(p, data) => fs.write_file(p, data, &root).map(|_| 0),
        Op::Rename(from, to) => fs.rename(from, to, &root).map(|_| 0),
        Op::Unlink(p) => fs.unlink(p, &root).map(|_| 0),
        Op::Link(old, new) => fs.link(old, new, &root).map(|_| 0),
        Op::Chmod(p, m) => fs.chmod(p, Mode(*m), &root).map(|_| 0),
        Op::Chown(p, u, g) => fs.chown(p, Some(Uid(*u)), Some(Gid(*g)), &root).map(|_| 0),
        Op::SetAcl(p, set) => {
            let acl = if *set {
                let mut a = Acl::new();
                a.set_user(Uid(1000), 0o6);
                a.set_mask(0o6);
                Some(a)
            } else {
                None
            };
            fs.set_acl(p, acl, &root).map(|_| 0)
        }
        Op::SetXattr(p, k, v) => fs.set_xattr(p, k, v, &root).map(|_| 0),
        Op::RemoveXattr(p, k) => fs.remove_xattr(p, k, &root).map(|_| 0),
        Op::Truncate(p, len) => fs.truncate(p, *len, &root).map(|_| 0),
        Op::Symlink(target, link) => fs.symlink(target, link, &root).map(|_| 0),
        Op::Rmdir(p) => fs.rmdir(p, &root).map(|_| 0),
        Op::BatchWrite(dir, name, data) => {
            let fd = fs.open_dir(dir, &root)?;
            let r = fs
                .write_batch_at(fd, &[(name.as_str(), data.as_slice())], &root)
                .map(|n| n as u64);
            let c = fs.close(fd, &root);
            let n = r?;
            c.map(|_| n)
        }
    }
}

/// Run the whole history on a journaling fs, recording the sequential model:
/// per-prefix tree digests, per-op results, and the journal byte length at
/// every op boundary (the crash points the main sweep must reproduce).
struct JournaledRun {
    bytes: Vec<u8>,
    /// `digests[k]` = tree digest after `k` ops applied.
    digests: Vec<u64>,
    /// `results[k]` = what op `k` returned when the live run executed it.
    results: Vec<VfsResult<u64>>,
    /// journal byte length → number of ops applied at that boundary.
    boundary_ops: HashMap<usize, usize>,
}

fn run_journaled(ops: &[Op], snapshot_at: &[usize]) -> JournaledRun {
    let fs = Filesystem::builder().shards(1).dcache(false).build();
    fs.enable_journal();
    let mut digests = vec![fs.tree_digest()];
    let mut results = Vec::with_capacity(ops.len());
    let mut boundary_ops = HashMap::new();
    boundary_ops.insert(fs.journal_stats().bytes as usize, 0usize);
    for (i, op) in ops.iter().enumerate() {
        results.push(apply_op(&fs, op));
        digests.push(fs.tree_digest());
        boundary_ops.insert(fs.journal_stats().bytes as usize, i + 1);
        if snapshot_at.contains(&(i + 1)) {
            fs.journal_snapshot();
            // A snapshot frame is its own valid crash point for the same
            // prefix state.
            boundary_ops.insert(fs.journal_stats().bytes as usize, i + 1);
        }
    }
    JournaledRun {
        bytes: fs.journal_bytes(),
        digests,
        results,
        boundary_ops,
    }
}

fn restore(bytes: &[u8]) -> (Filesystem, yanc_vfs::ReplayReport) {
    Filesystem::restore_from_journal(bytes, Limits::default(), 1, false)
}

// ----------------------------------------------------------------------
// The torture sweep
// ----------------------------------------------------------------------

/// Truncate the journal after every complete frame of a 500-op history and
/// restore. Op-boundary cuts must reproduce the model prefix state exactly
/// (tree digest + exact errno of the next op); intra-op cuts (multi-record
/// ops caught halfway) must still restore deterministically to a structurally
/// sound tree.
#[test]
fn crash_at_every_record_boundary_restores_prefix_state() {
    let ops = build_history(0xD15C_0001, 500);
    let run = run_journaled(&ops, &[150, 350]);
    let frames = scan_frames(&run.bytes);
    assert!(
        frames.len() >= 500,
        "500 ops must produce at least 500 frames, got {}",
        frames.len()
    );
    assert_eq!(
        frames.last().unwrap().end,
        run.bytes.len(),
        "journal must end on a frame boundary"
    );

    let mut op_boundaries = 0usize;
    for f in &frames {
        let cut = &run.bytes[..f.end];
        let (fsr, report) = restore(cut);
        assert_eq!(
            report.tail_dropped_bytes, 0,
            "cut at a frame boundary has no torn tail"
        );
        fsr.check_invariants()
            .unwrap_or_else(|e| panic!("restore at byte {} broke invariants: {e}", f.end));
        if let Some(&k) = run.boundary_ops.get(&f.end) {
            // A crash exactly between ops: the restored tree IS the model
            // prefix, byte for byte (modulo the documented clock/generation
            // remap, which the digest excludes).
            op_boundaries += 1;
            assert_eq!(
                fsr.tree_digest(),
                run.digests[k],
                "restore at op boundary {k} (byte {}) diverged from the model",
                f.end
            );
            if k < ops.len() {
                // ...and the next op observes the same outcome (same errno,
                // same payload) the live run observed.
                assert_eq!(
                    apply_op(&fsr, &ops[k]),
                    run.results[k],
                    "op {k} after restore at byte {} diverged",
                    f.end
                );
            }
        } else {
            // A crash inside a multi-record op: the tree holds the record
            // prefix. That state must at least be deterministic — two
            // restores of the same bytes agree exactly.
            let (fsr2, report2) = restore(cut);
            assert_eq!(report, report2);
            assert_eq!(fsr.tree_digest(), fsr2.tree_digest());
        }
    }
    // Multi-record ops (`Create`+`Write`, batch entries) put interior frames
    // between op boundaries, and record-less failed ops collapse onto their
    // predecessor's boundary — but the bulk of the sweep must still exercise
    // the exact-prefix-equality arm.
    assert!(
        op_boundaries > 300,
        "most cuts should land on op boundaries, got {op_boundaries}"
    );
}

/// Truncate *inside* sampled frames — including byte 1 of a frame and one
/// byte short of its checksum — and assert the partial frame is invisible:
/// the restore equals the restore at the frame's start.
#[test]
fn partial_frames_are_invisible() {
    let ops = build_history(0xD15C_0002, 300);
    let run = run_journaled(&ops, &[120]);
    let frames = scan_frames(&run.bytes);
    let mut digest_at = HashMap::new();
    digest_at.insert(0usize, restore(&[]).0.tree_digest());
    for f in &frames {
        digest_at.insert(f.end, restore(&run.bytes[..f.end]).0.tree_digest());
    }
    for (j, f) in frames.iter().enumerate() {
        if j % 13 != 0 && !f.is_snapshot {
            continue;
        }
        let base = digest_at[&f.start];
        let mid = f.start + (f.end - f.start) / 2;
        for cut in [f.start + 1, mid, f.end - 1] {
            let (fsr, report) = restore(&run.bytes[..cut]);
            assert_eq!(
                fsr.tree_digest(),
                base,
                "cut at byte {cut} inside frame {j} leaked a partial record"
            );
            assert_eq!(
                report.tail_dropped_bytes as usize,
                cut - f.start,
                "torn tail must be exactly the partial frame"
            );
            fsr.check_invariants().unwrap();
        }
    }
}

/// A crash mid-snapshot (the fault window `journal_maybe_snapshot` opens on
/// every supervisor tick) must fall back to the previous snapshot + suffix:
/// the half-written snapshot frame contributes nothing.
#[test]
fn crash_mid_snapshot_falls_back_to_previous_boundary() {
    let ops = build_history(0xD15C_0003, 200);
    let run = run_journaled(&ops, &[80, 160]);
    let frames = scan_frames(&run.bytes);
    let snaps: Vec<_> = frames.iter().filter(|f| f.is_snapshot).collect();
    // Anchor snapshot plus the two scheduled ones.
    assert_eq!(snaps.len(), 3);
    for f in &snaps {
        let base = restore(&run.bytes[..f.start]).0.tree_digest();
        for cut in [f.start + 1, f.start + (f.end - f.start) / 2, f.end - 1] {
            let (fsr, _) = restore(&run.bytes[..cut]);
            assert_eq!(
                fsr.tree_digest(),
                base,
                "mid-snapshot cut at byte {cut} must be invisible"
            );
        }
        // The complete snapshot frame, by contrast, is a proper boundary
        // for the same state.
        assert_eq!(restore(&run.bytes[..f.end]).0.tree_digest(), base);
    }
}

/// Compaction drops exactly the bytes the latest snapshot covers: the
/// compacted journal restores to the same tree as the full journal.
#[test]
fn compaction_preserves_restore_equivalence() {
    let ops = build_history(0xD15C_0004, 200);
    let fs = Filesystem::builder().shards(1).dcache(false).build();
    fs.enable_journal();
    for op in &ops[..150] {
        let _ = apply_op(&fs, op);
    }
    fs.journal_snapshot();
    for op in &ops[150..] {
        let _ = apply_op(&fs, op);
    }
    let full = fs.journal_bytes();
    let dropped = fs.journal_compact();
    assert!(dropped > 0, "a mid-history snapshot must free bytes");
    let compacted = fs.journal_bytes();
    assert!(compacted.len() < full.len());
    assert_eq!(fs.journal_stats().compacted_bytes, dropped);
    let live = fs.tree_digest();
    assert_eq!(restore(&full).0.tree_digest(), live);
    let (fsr, report) = restore(&compacted);
    assert_eq!(fsr.tree_digest(), live);
    assert!(report.snapshot_used);
}

/// Open descriptors do not survive a crash: after restore the fd table is
/// empty, stale descriptors fail with `EBADF`, and the restored allocator
/// never re-issues a pre-crash fd number (the watermark floor).
#[test]
fn readdir_fd_after_restore_is_ebadf() {
    let root = Credentials::root();
    let fs = Filesystem::builder().shards(1).dcache(false).build();
    fs.enable_journal();
    fs.mkdir_all("/t/d0", Mode::DIR_DEFAULT, &root).unwrap();
    fs.write_file("/t/d0/a", b"hello", &root).unwrap();
    let dfd = fs.open_dir("/t/d0", &root).unwrap();
    assert!(!fs.readdir_fd(dfd).unwrap().is_empty());
    // Snapshot with the descriptor open: the fd-allocator watermark rides
    // along, so the restored side can never hand the number out again.
    fs.journal_snapshot();

    let (fsr, _) = restore(&fs.journal_bytes());
    let err = fsr.readdir_fd(dfd).unwrap_err();
    assert_eq!(err.errno, yanc_vfs::Errno::EBADF, "stale fd must be dead");

    // New descriptors work, and never collide with pre-crash numbers.
    let nfd = fsr.open_dir("/t/d0", &root).unwrap();
    assert!(nfd.0 > dfd.0, "fd watermark must floor past the crash");
    let names: Vec<String> = fsr
        .readdir_fd(nfd)
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["a".to_string()]);
    assert_eq!(fsr.read_to_string("/t/d0/a", &root).unwrap(), "hello");
}

/// Restored filesystems journal nothing until explicitly re-enabled —
/// replaying must not re-log the history it is replaying.
#[test]
fn restored_fs_journals_only_after_reenable() {
    let root = Credentials::root();
    let fs = Filesystem::builder().shards(1).dcache(false).build();
    fs.enable_journal();
    fs.mkdir("/t", Mode::DIR_DEFAULT, &root).unwrap();
    let (fsr, _) = restore(&fs.journal_bytes());
    assert!(!fsr.journal_enabled());
    fsr.mkdir("/u", Mode::DIR_DEFAULT, &root).unwrap();
    assert_eq!(fsr.journal_stats().records, 0);
    fsr.enable_journal();
    fsr.mkdir("/v", Mode::DIR_DEFAULT, &root).unwrap();
    assert_eq!(fsr.journal_stats().records, 1);
    // And the re-enabled journal is itself restorable: second-generation
    // restore reproduces the second-generation tree.
    let (fsr2, report) = restore(&fsr.journal_bytes());
    assert!(report.snapshot_used);
    assert_eq!(fsr2.tree_digest(), fsr.tree_digest());
}

// ----------------------------------------------------------------------
// Overlay torture: copy-up/whiteout histories and the mid-commit cut
// ----------------------------------------------------------------------

/// One step of a seeded overlay history. Every overlay-specific journal
/// shape is reachable: copy-up batches (`Commit` frames from writes over
/// lower files), whiteout creation (unlink of lower files), opaque
/// directories (mkdir over a whiteout), staged renames, and symlinks.
#[derive(Debug, Clone)]
enum OvOp {
    Write(String, Vec<u8>),
    Unlink(String),
    Mkdir(String),
    Rename(String, String),
    Symlink(String, String),
    Chmod(String, u16),
    Rmdir(String),
}

fn gen_ov_op(rng: &mut Rng) -> OvOp {
    let dir = ["/d0", "/d1", "/d2"][rng.below(3) as usize];
    let name = NAMES[rng.below(6) as usize];
    let file = format!("{dir}/{name}");
    match rng.below(100) {
        0..=39 => {
            let len = 1 + rng.below(40) as usize;
            OvOp::Write(file, vec![rng.below(256) as u8; len])
        }
        40..=54 => OvOp::Unlink(file),
        55..=64 => OvOp::Mkdir(format!("{dir}/{}", SUBS[rng.below(3) as usize])),
        65..=79 => {
            let to = format!(
                "{}/{}",
                ["/d0", "/d1", "/d2"][rng.below(3) as usize],
                NAMES[rng.below(6) as usize]
            );
            OvOp::Rename(file, to)
        }
        80..=86 => OvOp::Symlink(file, format!("{dir}/l{}", rng.below(3))),
        87..=93 => OvOp::Chmod(file, 0o600 + rng.below(64) as u16),
        _ => OvOp::Rmdir(format!("{dir}/{}", SUBS[rng.below(3) as usize])),
    }
}

fn apply_ov_op(ov: &yanc_vfs::Overlay, op: &OvOp) -> VfsResult<()> {
    let root = Credentials::root();
    match op {
        OvOp::Write(p, data) => ov.write_file(p, data, &root),
        OvOp::Unlink(p) => ov.unlink(p, &root),
        OvOp::Mkdir(p) => ov.mkdir(p, Mode::DIR_DEFAULT, &root),
        OvOp::Rename(f, t) => ov.rename(f, t, &root),
        OvOp::Symlink(t, l) => ov.symlink(t, l, &root),
        OvOp::Chmod(p, m) => ov.chmod(p, Mode(*m), &root),
        OvOp::Rmdir(p) => ov.rmdir(p, &root),
    }
}

/// A journaled base + pre-populated lower tree and a view over it.
fn overlay_world() -> (Arc<Filesystem>, yanc_vfs::Overlay) {
    let fs = Arc::new(Filesystem::builder().shards(1).dcache(false).build());
    fs.enable_journal();
    let root = Credentials::root();
    for d in ["/d0", "/d1", "/d2"] {
        fs.mkdir_all(&format!("/base{d}"), Mode::DIR_DEFAULT, &root)
            .unwrap();
        for n in &NAMES[..3] {
            fs.write_file(
                &format!("/base{d}/{n}"),
                format!("lower-{n}").as_bytes(),
                &root,
            )
            .unwrap();
        }
    }
    let ov = yanc_vfs::Overlay::new(fs.clone(), &["/base"], "/staging");
    ov.ensure_upper(&root).unwrap();
    (fs, ov)
}

/// Crash-at-every-frame over a 200-op overlay history. Overlay mutations
/// are multi-record transactions (copy-up chains, whiteout pairs), so the
/// journal is dense with `Commit` frames; every frame-boundary cut must
/// restore deterministically to a structurally sound tree, and cuts that
/// land on overlay-op boundaries must reproduce the op-boundary digest.
#[test]
fn overlay_history_crashes_at_every_frame_boundary() {
    let (fs, ov) = overlay_world();
    let mut rng = Rng::new(0x007e_11a7);
    let mut digests = HashMap::new();
    digests.insert(fs.journal_stats().bytes as usize, fs.tree_digest());
    for _ in 0..200 {
        let _ = apply_ov_op(&ov, &gen_ov_op(&mut rng));
        digests.insert(fs.journal_stats().bytes as usize, fs.tree_digest());
    }
    let bytes = fs.journal_bytes();
    let frames = scan_frames(&bytes);
    let mut op_boundaries = 0usize;
    for f in &frames {
        let cut = &bytes[..f.end];
        let (fsr, report) = restore(cut);
        assert_eq!(report.tail_dropped_bytes, 0);
        fsr.check_invariants()
            .unwrap_or_else(|e| panic!("overlay restore at byte {} broke invariants: {e}", f.end));
        if let Some(&d) = digests.get(&f.end) {
            op_boundaries += 1;
            assert_eq!(
                fsr.tree_digest(),
                d,
                "restore at overlay-op boundary (byte {}) diverged",
                f.end
            );
        } else {
            let (fsr2, report2) = restore(cut);
            assert_eq!(report, report2);
            assert_eq!(fsr.tree_digest(), fsr2.tree_digest());
        }
    }
    assert!(
        op_boundaries > 100,
        "most frames should end overlay ops, got {op_boundaries}"
    );
}

/// THE overlay durability claim: a view commit is one journal frame, so a
/// crash anywhere inside it yields the complete pre-commit world and a
/// crash after it yields the complete post-commit world — never a base
/// tree with half a view merged in.
#[test]
fn mid_commit_cut_is_all_or_nothing() {
    let (fs, ov) = overlay_world();
    let root = Credentials::root();
    // A staged view touching several directories: new files, an
    // overwrite, a whiteout, an opaque-ish subtree and a staged rename.
    ov.write_file("/d0/a", b"rewritten\n", &root).unwrap();
    ov.write_file("/d1/fresh", b"born in the view\n", &root)
        .unwrap();
    ov.unlink("/d2/b", &root).unwrap();
    ov.mkdir("/d0/s0", Mode::DIR_DEFAULT, &root).unwrap();
    ov.write_file("/d0/s0/inner", b"nested\n", &root).unwrap();
    ov.rename("/d1/c", "/d2/c2", &root).unwrap();

    let pre_digest = fs.tree_digest();
    let pre_bytes = fs.journal_stats().bytes as usize;
    let report = ov.commit(&root).unwrap();
    assert!(report.records >= 6, "commit too small to torture");
    let post_digest = fs.tree_digest();
    let bytes = fs.journal_bytes();

    // The commit appended exactly ONE frame.
    let commit_frames: Vec<_> = scan_frames(&bytes)
        .into_iter()
        .filter(|f| f.start >= pre_bytes)
        .collect();
    assert_eq!(
        commit_frames.len(),
        1,
        "a view commit must be a single journal frame"
    );
    let f = &commit_frames[0];
    assert_eq!(f.end, bytes.len());

    // Every cut inside the frame restores the complete pre-commit world.
    let span = f.end - f.start;
    for cut in [
        f.start,
        f.start + 1,
        f.start + span / 3,
        f.start + span / 2,
        f.end - 1,
    ] {
        let (fsr, _) = restore(&bytes[..cut]);
        assert_eq!(
            fsr.tree_digest(),
            pre_digest,
            "cut at byte {cut} (inside the commit frame) leaked a partial commit"
        );
        // Spot-check the tell-tale names: staged state intact, base
        // untouched — not merely digest-equal.
        assert_eq!(fsr.read_to_string("/base/d0/a", &root).unwrap(), "lower-a");
        assert!(fsr.exists("/base/d2/b", &root));
        assert_eq!(
            fsr.read_to_string("/staging/d0/a", &root).unwrap(),
            "rewritten\n"
        );
    }
    // The complete frame restores the complete post-commit world.
    let (fsr, _) = restore(&bytes);
    assert_eq!(fsr.tree_digest(), post_digest);
    assert_eq!(
        fsr.read_to_string("/base/d0/a", &root).unwrap(),
        "rewritten\n"
    );
    assert_eq!(fsr.read_to_string("/base/d2/c2", &root).unwrap(), "lower-c");
    assert!(!fsr.exists("/base/d2/b", &root));
    assert!(!fsr.exists("/base/d1/c", &root));
    assert!(fsr.readdir("/staging", &root).unwrap().is_empty());
}

// ----------------------------------------------------------------------
// E23: warm restart vs E19 cold restart
// ----------------------------------------------------------------------

fn topology_fingerprint(yfs: &YancFs) -> String {
    let mut links = Vec::new();
    for sw in yfs.list_switches().unwrap() {
        for port in yfs.list_ports(&sw).unwrap() {
            if let Ok(Some((peer, pport))) = yfs.peer(&sw, port) {
                links.push(format!("{sw}:{port}->{peer}:{pport}"));
            }
        }
    }
    links.sort();
    links.join("\n")
}

fn topod_factory(ctx: &ProcessCtx) -> YancResult<Box<dyn YancApp>> {
    Ok(Box::new(TopologyDaemon::new(ctx.yfs.clone())?) as Box<dyn YancApp>)
}

fn proc_u64(fs: &Filesystem, path: &str) -> u64 {
    fs.read_to_string(path, &Credentials::root())
        .unwrap()
        .trim()
        .parse()
        .unwrap()
}

/// E23. Cold restart (E19) rebuilds `/net` by re-running discovery: every
/// switch dir, port file and flow re-created through the full syscall path.
/// Warm restart replays the journal: one accounted syscall per surviving
/// record, snapshot install free. The warm path must be strictly cheaper,
/// deterministic across two restores, and pinned by `/net/.proc` counters.
#[test]
fn warm_restart_replays_fewer_syscalls_than_cold() {
    // --- Cold reference: the E19 scenario, built from nothing. ---
    let cold_total = {
        let mut rt = yanc_driver::Runtime::new();
        build_line(&mut rt, 3, Version::V1_3);
        rt.yfs.enable_introspection().unwrap();
        let mut sup = Supervisor::new(rt.yfs.clone()).unwrap();
        sup.spawn(ProcessSpec::new("topod"), topod_factory).unwrap();
        settle_supervised(&mut rt, &mut sup);
        proc_u64(rt.yfs.filesystem(), "/net/.proc/scopes/net/total")
    };

    // --- Journaled run, crashed by the PR-2 fault injector. ---
    let fs = Arc::new(Filesystem::new());
    fs.enable_journal();
    fs.set_journal_snapshot_every(16);
    let mut rt = yanc_driver::Runtime::with_fs(fs.clone());
    build_line(&mut rt, 3, Version::V1_3);
    rt.yfs.enable_introspection().unwrap();
    let mut sup = Supervisor::new(rt.yfs.clone()).unwrap();
    sup.spawn(ProcessSpec::new("topod"), topod_factory).unwrap();
    sup.faults.at(2, Fault::CrashController);
    settle_supervised(&mut rt, &mut sup);
    assert!(sup.take_controller_crash(), "crash fault must fire");

    // Post-convergence mutations that land *after* the last auto-snapshot:
    // the warm restart must replay these as its suffix — snapshot install
    // alone costs zero syscalls and would make the comparison vacuous.
    let root = Credentials::root();
    fs.write_file("/net/ctl.generation", b"7\n", &root).unwrap();
    fs.write_file("/net/ctl.note", b"pre-crash marker\n", &root)
        .unwrap();

    let pre_digest = fs.tree_digest();
    let pre_topo = topology_fingerprint(&rt.yfs);
    assert!(!pre_topo.is_empty());
    let stats = fs.journal_stats();
    assert!(
        stats.snapshots >= 2,
        "supervisor ticks must drive auto-snapshots (got {})",
        stats.snapshots
    );
    // The crash: the world is dropped; only the journal bytes survive.
    let bytes = fs.journal_bytes();
    drop(sup);
    drop(rt);
    drop(fs);

    // --- Warm restart. ---
    let (warm, report) = Filesystem::restore_from_journal(&bytes, Limits::default(), 4, true);
    assert!(report.snapshot_used, "warm restart starts from a snapshot");
    assert_eq!(
        warm.tree_digest(),
        pre_digest,
        "tree must be byte-identical"
    );
    let warm = Arc::new(warm);
    let wyfs = YancFs::new(warm.clone(), "/net");
    assert_eq!(topology_fingerprint(&wyfs), pre_topo);

    // Pin the syscall claim with `.proc` counters, not test-side arithmetic.
    warm.mount_proc("/net/.proc").unwrap();
    let warm_syscalls = proc_u64(&warm, "/net/.proc/vfs/journal/replay_syscalls");
    assert_eq!(warm_syscalls, report.replay_syscalls);
    assert_eq!(
        proc_u64(&warm, "/net/.proc/vfs/journal/replayed"),
        report.records_replayed
    );
    assert!(warm_syscalls > 0);
    assert!(
        warm_syscalls < cold_total,
        "warm restart ({warm_syscalls} syscalls) must beat the E19 cold \
         restart ({cold_total} syscalls)"
    );
    // Visible under --nocapture; the EXPERIMENTS.md E23 table comes from here.
    println!(
        "E23: cold={cold_total} warm={warm_syscalls} replayed={} snapshots={} journal_bytes={}",
        report.records_replayed,
        stats.snapshots,
        bytes.len()
    );

    // Warm restart is deterministic: a second replay of the same bytes is
    // identical in both outcome and accounting.
    let (warm2, report2) = Filesystem::restore_from_journal(&bytes, Limits::default(), 4, true);
    assert_eq!(report, report2);
    assert_eq!(warm2.tree_digest(), pre_digest);
}
