//! Fabric scale (§8): data-center fat trees brought up, stormed and
//! bulk-programmed under *pinned* deterministic budgets.
//!
//! Three claims, each an exact count rather than a threshold:
//!
//! 1. bring-up is an affine function of the shape — a fixed per-switch
//!    budget (batched materialization) plus a fixed per-port term, with
//!    identical constants at different fabric sizes;
//! 2. bulk flow install through the descriptor fast path costs exactly
//!    6 charged syscalls per flow (amortized `open`/`close` aside) no
//!    matter how many switches the flows spread over;
//! 3. an idle fabric costs zero runtime iterations — the event-driven
//!    scheduler never touches a driver without a readiness signal.

use yanc::FlowSpec;
use yanc_dataplane::{FabricTier, FatTree};
use yanc_driver::Runtime;
use yanc_harness::build_fabric;
use yanc_openflow::{port_no, Action, FlowMatch, Version};

/// Build a k-fabric and return (total syscalls, switches, total ports).
fn bringup_cost(k: u16) -> (u64, usize, usize) {
    let mut rt = Runtime::new();
    let before = rt.yfs.filesystem().counters().snapshot();
    let topo = build_fabric(&mut rt, k, Version::V1_3);
    let used = rt
        .yfs
        .filesystem()
        .counters()
        .snapshot()
        .since(&before)
        .total();
    let ports = topo.switches.len() * k as usize;
    (used, topo.switches.len(), ports)
}

#[test]
fn bringup_budget_is_affine_in_switches_and_ports() {
    let (t4, s4, p4) = bringup_cost(4);
    let (t6, s6, p6) = bringup_cost(6);
    let (t8, s8, p8) = bringup_cost(8);
    println!("k=4: {t4} syscalls / {s4} switches / {p4} ports");
    println!("k=6: {t6} syscalls / {s6} switches / {p6} ports");
    println!("k=8: {t8} syscalls / {s8} switches / {p8} ports");
    // Solve total = A*switches + B*ports from k=4 and k=6, then demand
    // k=8 lands exactly on the same line. Any per-switch path-addressed
    // regression in the handshake shows up as a residual here.
    let a = ((t4 as i64) * (p6 as i64) - (t6 as i64) * (p4 as i64)) as f64
        / ((s4 as i64) * (p6 as i64) - (s6 as i64) * (p4 as i64)) as f64;
    let b = (t4 as f64 - a * s4 as f64) / p4 as f64;
    println!("per-switch A = {a}, per-port B = {b}");
    let predicted = a * s8 as f64 + b * p8 as f64;
    assert_eq!(predicted.round() as u64, t8, "A={a} B={b}");
    // And pin the constants themselves: 14 charged syscalls per switch
    // (batched switch + port materialization, packet_out seed, watch and
    // proc plumbing) plus 2 per port. A change here is a change to the
    // §8 bring-up cost model and must be deliberate.
    assert_eq!(a, 14.0, "per-switch bring-up budget drifted");
    assert_eq!(b, 2.0, "per-port bring-up budget drifted");
}

fn flood() -> FlowSpec {
    FlowSpec {
        m: FlowMatch::any(),
        actions: vec![Action::out(port_no::FLOOD)],
        ..Default::default()
    }
}

#[test]
fn bulk_install_costs_two_syscalls_per_flow() {
    let mut rt = Runtime::new();
    let topo = build_fabric(&mut rt, 4, Version::V1_3);
    let ft = FatTree::new(4);
    let edges: Vec<String> = ft
        .switches()
        .iter()
        .filter(|s| s.tier == FabricTier::Edge)
        .map(|s| s.name.clone())
        .collect();
    assert_eq!(edges.len(), 8);
    const FLOWS_PER_SWITCH: usize = 8;
    let before = rt.yfs.filesystem().counters().snapshot();
    for sw in &edges {
        let fd = rt.yfs.open_flows_dir(sw).unwrap();
        for i in 0..FLOWS_PER_SWITCH {
            let mut spec = flood();
            spec.m.in_port = Some(1 + (i % 4) as u16);
            spec.priority = 100 + i as u16;
            rt.yfs.write_flow_at(fd, &format!("f{i}"), &spec).unwrap();
        }
        rt.yfs.filesystem().close(fd, rt.yfs.creds()).unwrap();
    }
    let used = rt
        .yfs
        .filesystem()
        .counters()
        .snapshot()
        .since(&before)
        .total();
    // Exactly 6 charged syscalls per flow — `mkdirat` + one batched
    // field write, plus the schema hook seeding `version`/`counters` —
    // and open/close once per switch, regardless of fabric size. (Same
    // rate the E21/E23 experiments pin for a single switch.)
    assert_eq!(
        used,
        (edges.len() * (2 + 6 * FLOWS_PER_SWITCH)) as u64,
        "descriptor fast-path install budget drifted"
    );
    // The drivers pick every install up from the watch stream.
    rt.pump().unwrap();
    for sw in &edges {
        let mut names = rt.yfs.list_flows(sw).unwrap();
        names.sort();
        assert_eq!(names.len(), FLOWS_PER_SWITCH);
        for i in 0..FLOWS_PER_SWITCH {
            assert_eq!(rt.yfs.flow_version(sw, &format!("f{i}")).unwrap(), 1);
        }
    }
    drop(topo);
}

#[test]
fn idle_fabric_costs_zero_runtime_iterations() {
    let mut rt = Runtime::new();
    rt.enable_introspection().unwrap();
    build_fabric(&mut rt, 6, Version::V1_3); // 45 switches, quiesced
    rt.pump().unwrap();
    let sched_path = "/net/.proc/driver/sched";
    let read_counter = |rt: &Runtime, key: &str| -> u64 {
        let text = rt
            .yfs
            .filesystem()
            .read_to_string(sched_path, rt.yfs.creds())
            .unwrap();
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{key} ")))
            .unwrap()
            .trim()
            .parse()
            .unwrap()
    };
    let runs_before = read_counter(&rt, "runs");
    let idle_before = read_counter(&rt, "idle_pumps");
    let iterations = rt.pump().unwrap();
    assert_eq!(iterations, 0, "idle fabric must cost zero sweeps");
    assert_eq!(read_counter(&rt, "runs"), runs_before, "a driver ran idle");
    assert_eq!(read_counter(&rt, "idle_pumps"), idle_before + 1);
}
