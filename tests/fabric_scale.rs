//! Fabric scale (§8): data-center fat trees brought up, stormed and
//! bulk-programmed under *pinned* deterministic budgets.
//!
//! Three claims, each an exact count rather than a threshold:
//!
//! 1. bring-up is an affine function of the shape — a fixed per-switch
//!    budget (batched materialization) plus a fixed per-port term, with
//!    identical constants at different fabric sizes;
//! 2. bulk flow install through the descriptor fast path costs exactly
//!    6 charged syscalls per flow (amortized `open`/`close` aside) no
//!    matter how many switches the flows spread over;
//! 3. an idle fabric costs zero runtime iterations — the event-driven
//!    scheduler never touches a driver without a readiness signal.

use yanc::FlowSpec;
use yanc_dataplane::{FabricTier, FatTree};
use yanc_driver::{ControlRuntime, ParRuntime, Runtime};
use yanc_harness::build_fabric;
use yanc_openflow::{port_no, Action, FlowMatch, Version};
use yanc_vfs::OpKind;

/// Build a k-fabric and return (total syscalls, switches, total ports).
fn bringup_cost(k: u16) -> (u64, usize, usize) {
    let mut rt = Runtime::new();
    let before = rt.yfs.filesystem().counters().snapshot();
    let topo = build_fabric(&mut rt, k, Version::V1_3);
    let used = rt
        .yfs
        .filesystem()
        .counters()
        .snapshot()
        .since(&before)
        .total();
    let ports = topo.switches.len() * k as usize;
    (used, topo.switches.len(), ports)
}

#[test]
fn bringup_budget_is_affine_in_switches_and_ports() {
    let (t4, s4, p4) = bringup_cost(4);
    let (t6, s6, p6) = bringup_cost(6);
    let (t8, s8, p8) = bringup_cost(8);
    println!("k=4: {t4} syscalls / {s4} switches / {p4} ports");
    println!("k=6: {t6} syscalls / {s6} switches / {p6} ports");
    println!("k=8: {t8} syscalls / {s8} switches / {p8} ports");
    // Solve total = A*switches + B*ports from k=4 and k=6, then demand
    // k=8 lands exactly on the same line. Any per-switch path-addressed
    // regression in the handshake shows up as a residual here.
    let a = ((t4 as i64) * (p6 as i64) - (t6 as i64) * (p4 as i64)) as f64
        / ((s4 as i64) * (p6 as i64) - (s6 as i64) * (p4 as i64)) as f64;
    let b = (t4 as f64 - a * s4 as f64) / p4 as f64;
    println!("per-switch A = {a}, per-port B = {b}");
    let predicted = a * s8 as f64 + b * p8 as f64;
    assert_eq!(predicted.round() as u64, t8, "A={a} B={b}");
    // And pin the constants themselves: 14 charged syscalls per switch
    // (batched switch + port materialization, packet_out seed, watch and
    // proc plumbing) plus 2 per port. A change here is a change to the
    // §8 bring-up cost model and must be deliberate.
    assert_eq!(a, 14.0, "per-switch bring-up budget drifted");
    assert_eq!(b, 2.0, "per-port bring-up budget drifted");
}

fn flood() -> FlowSpec {
    FlowSpec {
        m: FlowMatch::any(),
        actions: vec![Action::out(port_no::FLOOD)],
        ..Default::default()
    }
}

#[test]
fn bulk_install_costs_two_syscalls_per_flow() {
    let mut rt = Runtime::new();
    let topo = build_fabric(&mut rt, 4, Version::V1_3);
    let ft = FatTree::new(4);
    let edges: Vec<String> = ft
        .switches()
        .iter()
        .filter(|s| s.tier == FabricTier::Edge)
        .map(|s| s.name.clone())
        .collect();
    assert_eq!(edges.len(), 8);
    const FLOWS_PER_SWITCH: usize = 8;
    let before = rt.yfs.filesystem().counters().snapshot();
    for sw in &edges {
        let fd = rt.yfs.open_flows_dir(sw).unwrap();
        for i in 0..FLOWS_PER_SWITCH {
            let mut spec = flood();
            spec.m.in_port = Some(1 + (i % 4) as u16);
            spec.priority = 100 + i as u16;
            rt.yfs.write_flow_at(fd, &format!("f{i}"), &spec).unwrap();
        }
        rt.yfs.filesystem().close(fd, rt.yfs.creds()).unwrap();
    }
    let used = rt
        .yfs
        .filesystem()
        .counters()
        .snapshot()
        .since(&before)
        .total();
    // Exactly 6 charged syscalls per flow — `mkdirat` + one batched
    // field write, plus the schema hook seeding `version`/`counters` —
    // and open/close once per switch, regardless of fabric size. (Same
    // rate the E21/E23 experiments pin for a single switch.)
    assert_eq!(
        used,
        (edges.len() * (2 + 6 * FLOWS_PER_SWITCH)) as u64,
        "descriptor fast-path install budget drifted"
    );
    // The drivers pick every install up from the watch stream.
    rt.pump().unwrap();
    for sw in &edges {
        let mut names = rt.yfs.list_flows(sw).unwrap();
        names.sort();
        assert_eq!(names.len(), FLOWS_PER_SWITCH);
        for i in 0..FLOWS_PER_SWITCH {
            assert_eq!(rt.yfs.flow_version(sw, &format!("f{i}")).unwrap(), 1);
        }
    }
    drop(topo);
}

// ---------------------------------------------------------------------
// Multi-core pump: paired serial-vs-parallel replay (§5 scheduler).
//
// The same seeded workload is replayed on the serial Runtime and on
// ParRuntime at several worker counts; everything observable must be
// bit-identical — sweep counts, scheduler ledger, per-op syscall
// totals, and the `/net` tree digest. The ready set is frozen by the
// coordinator's scan each sweep and drivers own disjoint per-switch
// subtrees, so worker count may only change *which thread* runs a
// driver, never what runs or what it writes.
// ---------------------------------------------------------------------

/// The replay workload: bring up a k=4 fabric, packet-in storm from
/// every host, bulk flow installs through the fs, a stats poll, and a
/// final guaranteed-idle pump. Returns per-phase sweep counts.
fn replay_workload<R: ControlRuntime>(rt: &mut R) -> Vec<u32> {
    let mut sweeps = Vec::new();
    let topo = build_fabric(rt, 4, Version::V1_3);
    let hosts = topo.hosts.clone();
    for (i, &(h, _)) in hosts.iter().enumerate() {
        let (_, dst) = hosts[(i + 1) % hosts.len()];
        rt.network().host_ping(h, dst, (i + 1) as u16);
    }
    sweeps.push(rt.pump().unwrap());
    // Targeted (non-flooding) flows: a fat tree has loops, so fabric-wide
    // flood rules would turn the second storm into a broadcast storm.
    for &d in &topo.switches {
        let sw = format!("sw{d:x}");
        let spec = FlowSpec {
            m: FlowMatch {
                tp_dst: Some(4022),
                ..Default::default()
            },
            actions: vec![Action::out(1)],
            priority: 50,
            ..Default::default()
        };
        rt.yfs().write_flow(&sw, "steer", &spec).unwrap();
    }
    sweeps.push(rt.pump().unwrap());
    for (i, &(h, _)) in hosts.iter().enumerate() {
        let (_, dst) = hosts[(i + 3) % hosts.len()];
        rt.network().host_ping(h, dst, (100 + i) as u16);
    }
    sweeps.push(rt.pump().unwrap());
    sweeps.push(rt.poll_stats().unwrap());
    sweeps.push(rt.pump().unwrap());
    sweeps
}

/// Everything the replay pins: per-phase sweeps, the sched ledger,
/// per-op charged syscall counts, and two digests of `/net` — `content`
/// (names + bytes + ownership, schedule-independent) and `schedule`
/// (full `tree_digest`, which additionally pins inode numbers and
/// mtime/ctime ticks, i.e. the exact order the tree was built in).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ReplayTrace {
    sweeps: Vec<u32>,
    runs: u64,
    skips: u64,
    idle_pumps: u64,
    rebuilds: u64,
    per_op: Vec<(&'static str, u64)>,
    content: u64,
    schedule: u64,
}

impl ReplayTrace {
    /// The trace minus the exact-schedule digest: what must stay
    /// invariant when only the worker count changes. (Real parallelism
    /// reorders metadata ticks; content and syscall totals may not.)
    fn schedule_free(&self) -> ReplayTrace {
        ReplayTrace {
            schedule: 0,
            ..self.clone()
        }
    }
}

fn trace<R: ControlRuntime>(rt: &mut R, sched: &yanc_driver::SchedStats) -> ReplayTrace {
    use std::sync::atomic::Ordering;
    let sweeps = replay_workload(rt);
    let snap = rt.yfs().filesystem().counters().snapshot();
    ReplayTrace {
        sweeps,
        runs: sched.runs.load(Ordering::Relaxed),
        skips: sched.skips.load(Ordering::Relaxed),
        idle_pumps: sched.idle_pumps.load(Ordering::Relaxed),
        rebuilds: sched.rebuilds.load(Ordering::Relaxed),
        per_op: OpKind::all()
            .iter()
            .map(|op| (op.name(), snap.get(*op)))
            .collect(),
        content: rt.yfs().filesystem().content_digest(),
        schedule: rt.yfs().filesystem().tree_digest(),
    }
}

#[test]
fn parallel_one_worker_replays_exact_serial_schedule() {
    let mut serial = Runtime::new();
    let serial_sched = serial.sched_stats();
    let a = trace(&mut serial, &serial_sched);

    let mut par = ParRuntime::with_workers(1);
    let par_sched = par.sched_stats();
    let b = trace(&mut par, &par_sched);

    assert_eq!(a, b, "with_workers(1) must replay the serial schedule");
}

#[test]
fn worker_count_is_invisible_to_syscalls_and_digest() {
    let mut one = ParRuntime::with_workers(1);
    let one_sched = one.sched_stats();
    let a = trace(&mut one, &one_sched);

    for workers in [2, 4, 8] {
        let mut many = ParRuntime::with_workers(workers);
        let many_sched = many.sched_stats();
        let b = trace(&mut many, &many_sched);
        assert_eq!(
            a.schedule_free(),
            b.schedule_free(),
            "workers={workers} diverged from the single-worker replay"
        );
        // The whole ready set was dispatched by the pool, no more, no
        // less: per-worker ledger runs sum to the sched ledger.
        let pool_runs: u64 = many
            .worker_stats()
            .iter()
            .map(|w| w.runs.load(std::sync::atomic::Ordering::Relaxed))
            .sum();
        assert_eq!(pool_runs, b.runs, "pool ran a different set of drivers");
    }
}

#[test]
fn fanin_batches_are_identical_across_worker_counts() {
    let run = |workers: usize| -> (ReplayTrace, u64, u64) {
        let mut rt = ParRuntime::with_workers(workers);
        let fanin = rt.enable_fanin(0);
        let sched = rt.sched_stats();
        let t = trace(&mut rt, &sched);
        (t, fanin.flushes(), fanin.replies())
    };
    let (a, flushes_a, replies_a) = run(1);
    assert!(replies_a > 0, "stats poll produced no fan-in replies");
    assert!(flushes_a > 0, "fan-in never flushed");
    for workers in [2, 4] {
        let (b, flushes_b, replies_b) = run(workers);
        assert_eq!(
            a.schedule_free(),
            b.schedule_free(),
            "fan-in landing diverged at workers={workers}"
        );
        assert_eq!(flushes_a, flushes_b);
        assert_eq!(replies_a, replies_b);
    }
}

// ---------------------------------------------------------------------
// Poll-set rebuild during pump: a driver attached while the pump is in
// flight (a worker-side registration) must have its readiness edge
// scanned on the very sweep it appears — not silently dropped until the
// next pump() call.
// ---------------------------------------------------------------------

#[test]
fn driver_attached_mid_pump_is_scanned_same_pump() {
    use std::sync::atomic::Ordering;
    for workers in [1, 2] {
        let mut rt = ParRuntime::with_workers(workers);
        rt.add_switch_with_driver(0x1, 4, 1, vec![Version::V1_3], Version::V1_3);
        rt.pump().unwrap();
        let sched = rt.sched_stats();
        let rebuilds_before = sched.rebuilds.load(Ordering::Relaxed);

        // Queue work so the pump sweeps at least twice, and stage an
        // attach for sweep 1 — it lands *inside* the running pump.
        rt.yfs().write_flow("sw1", "flood", &flood()).unwrap();
        rt.stage_attach_at_sweep(1, 0x99, 4, 1, vec![Version::V1_3], Version::V1_3);
        let sweeps = rt.pump().unwrap();
        assert!(sweeps >= 2, "staged attach needs a multi-sweep pump");

        // The staged driver handshook to Ready within the same pump:
        // its HELLO bytes were only reachable through a readiness edge
        // registered mid-pump.
        let d = rt.drivers.last().unwrap().lock();
        assert!(d.ready(), "mid-pump driver never ran (workers={workers})");
        drop(d);
        assert!(
            rt.yfs()
                .list_switches()
                .unwrap()
                .contains(&"sw99".to_string()),
            "mid-pump switch not materialized (workers={workers})"
        );
        assert!(
            sched.rebuilds.load(Ordering::Relaxed) > rebuilds_before,
            "poll set was not rebuilt mid-pump (workers={workers})"
        );
    }
}

// ---------------------------------------------------------------------
// Work stealing: route every ready driver to one injected straggler;
// the other workers must steal all of it (the straggler is gated until
// its queue is empty, so every dispatch that sweep is a steal).
// ---------------------------------------------------------------------

#[test]
fn injected_straggler_forces_steals() {
    use std::sync::atomic::Ordering;
    let mut rt = ParRuntime::with_workers(4);
    let topo = build_fabric(&mut rt, 4, Version::V1_3);
    rt.inject_straggler(Some(0));
    let ledger_total = |rt: &ParRuntime,
                        f: fn(&yanc_driver::WorkerStats) -> &std::sync::atomic::AtomicU64|
     -> u64 {
        rt.worker_stats()
            .iter()
            .map(|w| f(w).load(Ordering::Relaxed))
            .sum()
    };
    let runs_before = ledger_total(&rt, |w| &w.runs);
    let steals_before = ledger_total(&rt, |w| &w.steals);
    let straggler_runs_before = rt.worker_stats()[0].runs.load(Ordering::Relaxed);
    let hosts = topo.hosts.clone();
    for (i, &(h, _)) in hosts.iter().enumerate() {
        let (_, dst) = hosts[(i + 1) % hosts.len()];
        rt.net.host_ping(h, dst, (i + 1) as u16);
    }
    rt.pump().unwrap();
    let runs = ledger_total(&rt, |w| &w.runs) - runs_before;
    let steals = ledger_total(&rt, |w| &w.steals) - steals_before;
    assert!(runs > 0, "storm dispatched no drivers");
    assert!(steals >= 1, "straggler produced no steals");
    // Every dispatch under the straggler came from a steal, and the
    // straggler itself ran nothing.
    assert_eq!(steals, runs, "non-stolen dispatches under straggler");
    assert_eq!(
        rt.worker_stats()[0].runs.load(Ordering::Relaxed),
        straggler_runs_before,
        "the gated straggler must not run drivers"
    );
}

#[test]
fn idle_fabric_costs_zero_runtime_iterations() {
    let mut rt = Runtime::new();
    rt.enable_introspection().unwrap();
    build_fabric(&mut rt, 6, Version::V1_3); // 45 switches, quiesced
    rt.pump().unwrap();
    let sched_path = "/net/.proc/driver/sched";
    let read_counter = |rt: &Runtime, key: &str| -> u64 {
        let text = rt
            .yfs
            .filesystem()
            .read_to_string(sched_path, rt.yfs.creds())
            .unwrap();
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{key} ")))
            .unwrap()
            .trim()
            .parse()
            .unwrap()
    };
    let runs_before = read_counter(&rt, "runs");
    let idle_before = read_counter(&rt, "idle_pumps");
    let iterations = rt.pump().unwrap();
    assert_eq!(iterations, 0, "idle fabric must cost zero sweeps");
    assert_eq!(read_counter(&rt, "runs"), runs_before, "a driver ran idle");
    assert_eq!(read_counter(&rt, "idle_pumps"), idle_before + 1);
}
