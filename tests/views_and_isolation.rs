//! E7: slices and big-switch views carry real traffic, stacked views work,
//! and namespaces confine tenants (§4.2 + §5.3).

use yanc::{FlowSpec, ViewConfig, ViewKind, YancFs};
use yanc_apps::{BigSwitchDaemon, SliceDaemon, BIG_SWITCH};
use yanc_driver::Runtime;
use yanc_harness::{build_line, record_topology};
use yanc_openflow::{Action, FlowMatch, Version};
use yanc_vfs::{Errno, Namespace};

fn ssh_filter() -> FlowMatch {
    FlowMatch {
        dl_type: Some(0x0800),
        nw_proto: Some(6),
        tp_dst: Some(22),
        ..Default::default()
    }
}

#[test]
fn e7_slice_carries_ssh_but_not_http() {
    let mut rt = Runtime::new();
    let topo = build_line(&mut rt, 2, Version::V1_3);
    record_topology(&mut rt);
    rt.yfs.create_view("ssh").unwrap();
    rt.yfs
        .write_view_config(
            "ssh",
            &ViewConfig {
                kind: ViewKind::Slice,
                switches: vec!["sw1".into(), "sw2".into()],
                filter: ssh_filter(),
            },
        )
        .unwrap();
    let mut slicer = SliceDaemon::new(rt.yfs.clone(), "ssh").unwrap();

    // Tenant forwards "everything" inside its slice: sw1 edge→trunk,
    // sw2 trunk→edge.
    let virt = YancFs::new(rt.yfs.filesystem().clone(), "/net/views/ssh");
    let fwd1 = FlowSpec {
        m: FlowMatch {
            in_port: Some(1),
            ..Default::default()
        },
        actions: vec![Action::out(2)],
        priority: 100,
        ..Default::default()
    };
    let fwd2 = FlowSpec {
        m: FlowMatch {
            in_port: Some(3),
            ..Default::default()
        },
        actions: vec![Action::out(1)],
        priority: 100,
        ..Default::default()
    };
    virt.write_flow("sw1", "up", &fwd1).unwrap();
    virt.write_flow("sw2", "down", &fwd2).unwrap();
    slicer.run_once();
    rt.pump().unwrap();
    assert_eq!(slicer.pushed, 2);

    // ssh SYN crosses, http SYN doesn't (no matching flow → miss → drop,
    // since no controller app answers).
    let (h1, _) = topo.hosts[0];
    let (h2, ip2) = topo.hosts[1];
    // Pre-learn ARP so the SYNs go out directly (ARP isn't in the slice).
    let m2 = rt.net.hosts[&h2].mac;
    let m1 = rt.net.hosts[&h1].mac;
    rt.net.hosts.get_mut(&h1).unwrap().learn_arp(ip2, m2);
    let _ = m1;
    rt.net.host_send_tcp_syn(h1, ip2, 40001, 22);
    rt.net.host_send_tcp_syn(h1, ip2, 40002, 80);
    rt.pump().unwrap();
    let syns = &rt.net.hosts[&h2].tcp_syns_received;
    assert_eq!(syns.len(), 1, "only the ssh SYN crossed: {syns:?}");
    assert_eq!(syns[0].1, 22);
}

#[test]
fn e7_namespace_confines_tenant() {
    let mut rt = Runtime::new();
    build_line(&mut rt, 2, Version::V1_0);
    rt.yfs.create_view("tenant").unwrap();
    let fs = rt.yfs.filesystem().clone();
    // The admin hands the view's collections to the tenant (uid 5000).
    let admin = yanc_vfs::Credentials::root();
    for d in ["", "/hosts", "/switches", "/views"] {
        fs.chown(
            &format!("/net/views/tenant{d}"),
            Some(yanc_vfs::Uid(5000)),
            Some(yanc_vfs::Gid(5000)),
            &admin,
        )
        .unwrap();
    }
    // The tenant's namespace binds the view over /net, read-write, and
    // nothing else exists.
    let ns = Namespace::new(fs.clone()).bind("/net", "/net/views/tenant");
    let creds = yanc_vfs::Credentials::user(5000, 5000);
    // Tenant sees its own (empty) switches dir.
    assert_eq!(ns.readdir("/net/switches", &creds).unwrap().len(), 0);
    // The physical switches are simply not nameable: /net *is* the view.
    assert!(!ns.exists("/net/views/tenant/switches", &creds));
    let physical_via_ns = ns.readdir("/net", &creds).unwrap();
    assert_eq!(
        physical_via_ns
            .iter()
            .map(|e| e.name.as_str())
            .collect::<Vec<_>>(),
        vec!["hosts", "switches", "views"]
    );
    // Writes land inside the view on the real fs.
    ns.write_file("/net/switches/note", b"tenant-was-here", &creds)
        .unwrap();
    assert!(fs.exists(
        "/net/views/tenant/switches/note",
        &yanc_vfs::Credentials::root()
    ));
    assert!(!fs.exists("/net/switches/note", &yanc_vfs::Credentials::root()));
}

#[test]
fn e7_read_only_namespace_for_auditors() {
    let mut rt = Runtime::new();
    build_line(&mut rt, 2, Version::V1_0);
    let ns = Namespace::new(rt.yfs.filesystem().clone()).bind_ro("/net", "/net");
    let creds = yanc_vfs::Credentials::root();
    assert!(ns.exists("/net/switches/sw1", &creds));
    let e = ns
        .write_file("/net/switches/sw1/id", b"evil", &creds)
        .unwrap_err();
    assert_eq!(e.errno, Errno::EROFS);
}

#[test]
fn e7_stacked_views_slice_over_big_switch() {
    // "These two concepts can be combined to e.g., slice traffic on port 22
    // out of the network, and then create a virtual single-big-switch
    // topology." We build the combination the other way round (big switch,
    // then an ssh slice written *through* it) — the stacking direction the
    // fs layout makes natural.
    let mut rt = Runtime::new();
    build_line(&mut rt, 3, Version::V1_3);
    record_topology(&mut rt);
    rt.yfs.create_view("big").unwrap();
    rt.yfs
        .write_view_config(
            "big",
            &ViewConfig {
                kind: ViewKind::BigSwitch,
                switches: (1..=3).map(|d| format!("sw{d}")).collect(),
                filter: FlowMatch::any(),
            },
        )
        .unwrap();
    let mut big = BigSwitchDaemon::new(rt.yfs.clone(), "big").unwrap();
    // A tenant writes an ssh-only flow on the big switch (slice semantics
    // expressed in the flow's own match).
    let virt = YancFs::new(rt.yfs.filesystem().clone(), "/net/views/big");
    let last = big.port_map.len() as u16;
    let spec = FlowSpec {
        m: FlowMatch {
            in_port: Some(1),
            ..ssh_filter()
        },
        actions: vec![Action::out(last)],
        priority: 200,
        ..Default::default()
    };
    virt.write_flow(BIG_SWITCH, "ssh_cross", &spec).unwrap();
    big.run_once();
    rt.pump().unwrap();
    assert_eq!(big.pushed, 1);
    // Physical flows exist on every hop and retain the ssh match.
    for d in 1..=3u64 {
        let name = format!("big.ssh_cross.sw{d}");
        let spec = rt.yfs.read_flow(&format!("sw{d}"), &name).unwrap();
        assert_eq!(spec.m.tp_dst, Some(22), "hop sw{d} keeps the slice match");
    }
    let total: usize = (1..=3).map(|d| rt.net.switches[&d].flow_count()).sum();
    assert_eq!(total, 3);
}

/// Regression for the `bind_ro` symlink-escape audit (namespace module
/// docs): a read-only bind refuses *every* mutation on its visible paths
/// — including paths that resolve through an absolute symlink to a
/// target **outside** the bound subtree. The EROFS check runs on the
/// visible path before any delegation, so the symlink's target is never
/// even consulted for a write.
#[test]
fn bind_ro_refuses_writes_through_escaping_symlinks() {
    use yanc_vfs::{Credentials, Filesystem, Mode};
    let fs = std::sync::Arc::new(Filesystem::new());
    let root = Credentials::root();
    fs.mkdir_all("/net/switches/sw1", Mode::DIR_DEFAULT, &root)
        .unwrap();
    fs.write_file("/net/switches/sw1/id", b"0x1\n", &root)
        .unwrap();
    fs.mkdir_all("/secret", Mode::DIR_DEFAULT, &root).unwrap();
    fs.write_file("/secret/key", b"s3cr3t\n", &root).unwrap();
    // Absolute symlinks planted inside the bound subtree: one escapes
    // the subtree entirely, one stays within it.
    fs.symlink("/secret/key", "/net/esc", &root).unwrap();
    fs.symlink("/net/switches/sw1/id", "/net/inside", &root)
        .unwrap();

    let ns = Namespace::new(fs.clone()).bind_ro("/jail", "/net");
    // Reading through the links is ordinary symlink resolution...
    assert_eq!(ns.read_to_string("/jail/inside", &root).unwrap(), "0x1\n");
    // ...but every mutation spelling is EROFS on the visible path, for
    // escaping and non-escaping links alike, before delegation happens.
    for p in ["/jail/esc", "/jail/inside", "/jail/switches/sw1/id"] {
        assert_eq!(
            ns.write_file(p, b"evil", &root).unwrap_err().errno,
            Errno::EROFS,
            "{p}: write must be refused"
        );
        assert_eq!(
            ns.truncate(p, 0, &root).unwrap_err().errno,
            Errno::EROFS,
            "{p}: truncate must be refused"
        );
        assert_eq!(
            ns.unlink(p, &root).unwrap_err().errno,
            Errno::EROFS,
            "{p}: unlink must be refused"
        );
        assert_eq!(
            ns.chmod(p, yanc_vfs::Mode(0o777), &root).unwrap_err().errno,
            Errno::EROFS,
            "{p}: chmod must be refused"
        );
    }
    assert_eq!(
        ns.symlink("/secret", "/jail/newlink", &root)
            .unwrap_err()
            .errno,
        Errno::EROFS,
        "planting new symlinks in a ro bind must be refused"
    );
    // Nothing leaked through: the escape target is untouched.
    assert_eq!(fs.read_to_string("/secret/key", &root).unwrap(), "s3cr3t\n");
    assert_eq!(
        fs.read_to_string("/net/switches/sw1/id", &root).unwrap(),
        "0x1\n"
    );
}

/// The writable-bind contrast, pinned as documented behaviour: like
/// `mount --bind`, a read-write bind follows absolute symlinks wherever
/// they point, so handing a tenant a writable bind of a tree containing
/// attacker-plantable symlinks is an escape. Confinement wants
/// `bind_ro` or an overlay mount, never a writable bind of a shared tree.
#[test]
fn writable_bind_follows_absolute_symlinks_like_mount_bind() {
    use yanc_vfs::{Credentials, Filesystem, Mode};
    let fs = std::sync::Arc::new(Filesystem::new());
    let root = Credentials::root();
    fs.mkdir_all("/net", Mode::DIR_DEFAULT, &root).unwrap();
    fs.mkdir_all("/secret", Mode::DIR_DEFAULT, &root).unwrap();
    fs.write_file("/secret/key", b"s3cr3t\n", &root).unwrap();
    fs.symlink("/secret/key", "/net/esc", &root).unwrap();

    let ns = Namespace::new(fs.clone()).bind("/rw", "/net");
    ns.write_file("/rw/esc", b"replaced\n", &root).unwrap();
    assert_eq!(
        fs.read_to_string("/secret/key", &root).unwrap(),
        "replaced\n"
    );
}
