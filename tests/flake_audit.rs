//! Flake audit: test code must not read the wall clock.
//!
//! Everything this repo pins — lock budgets, syscall budgets, cache
//! ratios, retry ladders — is pinned against deterministic counters
//! precisely because wall-clock assertions flake on a loaded 1-core CI
//! host. PR 6 converted the last timing assertion (poll.rs's test-side
//! wait); this test finishes the sweep and then *keeps* the test tree
//! clean: any new `Instant::now`/`SystemTime`/`sleep`/`elapsed` in test
//! sources fails here with the offending file and line.
//!
//! Deliberately out of scope:
//! * `crates/vfs/src/poll.rs` — the `wait(timeout)` *implementation*
//!   needs a deadline clock; its tests assert on counters, not time;
//! * `crates/bench/benches/vfs_parallel.rs` — wall-clock throughput is
//!   *reported* as context there, never asserted; every BENCH_*.json
//!   marks the deterministic counter as the primary metric.

use std::fs;
use std::path::Path;

/// Tokens that make a test schedule- or load-dependent. Matched after
/// stripping `//` comments, so prose may mention them freely.
const FORBIDDEN: [&str; 5] = [
    "Instant::now",
    "SystemTime",
    "thread::sleep",
    "sleep(",
    ".elapsed()",
];

/// (file name, token) pairs that are allowed anyway. Empty today; add
/// entries only with a comment explaining why the use is deterministic.
const ALLOWLIST: [(&str, &str); 0] = [];

fn audit_dir(dir: &Path, violations: &mut Vec<String>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return, // crate without a tests/ dir
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().map_or(true, |e| e != "rs") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if name == "flake_audit.rs" {
            continue; // the FORBIDDEN list itself spells the tokens out
        }
        let src = fs::read_to_string(&path).unwrap();
        for (lineno, line) in src.lines().enumerate() {
            let code = line.split("//").next().unwrap_or("");
            for tok in FORBIDDEN {
                if code.contains(tok) && !ALLOWLIST.iter().any(|(f, t)| *f == name && *t == tok) {
                    violations.push(format!("{name}:{}: {tok}: {}", lineno + 1, line.trim()));
                }
            }
        }
    }
}

#[test]
fn test_sources_never_read_the_wall_clock() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    // The root integration suites plus every per-crate tests/ dir.
    audit_dir(&here.join("../../tests"), &mut violations);
    let crates = here.join("..");
    for entry in fs::read_dir(&crates).unwrap().flatten() {
        audit_dir(&entry.path().join("tests"), &mut violations);
    }
    assert!(
        violations.is_empty(),
        "wall-clock constructs in test code (pin a counter instead, or \
         extend the audit ALLOWLIST with a justification):\n{}",
        violations.join("\n")
    );
}

/// The parallel pump scheduler is *runtime* code, but it gets the same
/// audit as the tests: every wait in `par.rs` must be a condvar parked
/// on deterministic state (generation counters, queue emptiness), never
/// a clock. `wait_timeout` is forbidden on top of the usual tokens —
/// a timed wait is a sleep in disguise, and the straggler gate proved
/// the lost-wakeup-safe pattern works without one.
#[test]
fn parallel_scheduler_never_reads_the_wall_clock() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let src = fs::read_to_string(here.join("../driver/src/par.rs")).unwrap();
    assert!(
        src.contains("Condvar"),
        "par.rs no longer uses condvars; re-point this audit at the new \
         scheduler blocking primitive"
    );
    let mut violations = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let code = line.split("//").next().unwrap_or("");
        for tok in FORBIDDEN.iter().copied().chain(["wait_timeout"]) {
            if code.contains(tok) {
                violations.push(format!("par.rs:{}: {tok}: {}", lineno + 1, line.trim()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "wall-clock or timed-wait constructs in the parallel scheduler \
         (park on a counter-gated condvar instead):\n{}",
        violations.join("\n")
    );
}

/// The audit itself must be looking at real code: if the directories
/// moved, the scan above would vacuously pass.
#[test]
fn audit_scans_a_nonempty_test_tree() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = fs::read_dir(here.join("../../tests"))
        .unwrap()
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "rs"))
        .count();
    assert!(files >= 10, "expected the root test suites, found {files}");
}
