//! The `/net/.proc` introspection tree from the outside: exactness of the
//! counters as seen through the shell (the acceptance check), read-only
//! enforcement at the tool level, and namespace visibility — a chrooted
//! view cannot see `.proc` unless it is explicitly bind-granted.

use yanc_coreutils::Shell;
use yanc_driver::Runtime;
use yanc_openflow::Version;
use yanc_vfs::{Credentials, Errno, Namespace};

fn runtime_with_proc() -> Runtime {
    let mut rt = Runtime::new();
    rt.add_switch_with_driver(1, 4, 1, vec![Version::V1_0], Version::V1_0);
    rt.pump().unwrap();
    rt.enable_introspection().unwrap();
    rt
}

#[test]
fn cat_proc_total_equals_in_process_counters() {
    let rt = runtime_with_proc();
    let fs = rt.yfs.filesystem().clone();
    let mut sh = Shell::new(fs.clone());
    // Generate some traffic through the shell itself first.
    assert!(sh.run("mkdir /net/scratch").success());
    assert!(sh.run("echo hello > /net/scratch/f").success());
    let out = sh.run("cat /net/.proc/vfs/syscalls/total");
    assert!(out.success(), "{}", out.err);
    assert_eq!(
        out.out.trim(),
        fs.counters().total().to_string(),
        "shell view of the total must match SyscallCounters::total()"
    );
    // And it stays exact on a second reading after more traffic.
    sh.run("echo again > /net/scratch/g");
    let out = sh.run("cat /net/.proc/vfs/syscalls/total");
    assert_eq!(out.out.trim(), fs.counters().total().to_string());
}

#[test]
fn stats_command_summarises_a_live_runtime() {
    let rt = runtime_with_proc();
    let mut sh = Shell::new(rt.yfs.filesystem().clone());
    let out = sh.run("stats");
    assert!(out.success(), "{}", out.err);
    for needle in [
        "/net/.proc/vfs/syscalls/total: ",
        "/net/.proc/vfs/latency/write: count=",
        "/net/.proc/vfs/notify/watches: ",
        "/net/.proc/drivers/sw1/protocol: OpenFlow 1.0",
        "/net/.proc/drivers/sw1/ready: 1",
        "/net/.proc/dataplane/events: ",
    ] {
        assert!(
            out.out.contains(needle),
            "missing `{needle}` in:\n{}",
            out.out
        );
    }
}

#[test]
fn proc_is_read_only_through_the_shell() {
    let rt = runtime_with_proc();
    let mut sh = Shell::new(rt.yfs.filesystem().clone());
    for cmd in [
        "echo 0 > /net/.proc/vfs/syscalls/total",
        "rm /net/.proc/vfs/syscalls/total",
        "rm -r /net/.proc",
        "mkdir /net/.proc/mine",
        "touch /net/.proc/vfs/x",
        "mv /net/.proc/vfs/syscalls/total /net/elsewhere",
    ] {
        let out = sh.run(cmd);
        assert!(!out.success(), "`{cmd}` must fail on the proc tree");
    }
    // Reads and listings still work.
    assert!(sh.run("ls /net/.proc/vfs/syscalls").success());
    assert!(sh.run("cat /net/.proc/vfs/syscalls/open").success());
}

#[test]
fn proc_mutation_fails_with_erofs_not_a_panic() {
    let rt = runtime_with_proc();
    let fs = rt.yfs.filesystem();
    let creds = Credentials::root();
    let e = fs
        .write_file("/net/.proc/vfs/syscalls/total", b"0", &creds)
        .unwrap_err();
    assert_eq!(e.errno, Errno::EROFS);
    let e = fs
        .unlink("/net/.proc/vfs/syscalls/total", &creds)
        .unwrap_err();
    assert_eq!(e.errno, Errno::EROFS);
    let e = fs
        .rename("/net/.proc/vfs", "/net/elsewhere", &creds)
        .unwrap_err();
    assert_eq!(e.errno, Errno::EROFS);
}

#[test]
fn chrooted_view_cannot_see_proc_unless_granted() {
    let rt = runtime_with_proc();
    let fs = rt.yfs.filesystem().clone();
    let creds = Credentials::root();

    // A tenant chrooted into the switch subtree has no path to `.proc`.
    let ns = Namespace::chroot(fs.clone(), "/net/switches");
    assert!(ns.exists("/sw1", &creds), "tenant sees its own subtree");
    assert!(!ns.exists("/.proc", &creds));
    assert!(!ns.exists("/net/.proc", &creds));
    let names: Vec<String> = ns
        .readdir("/", &creds)
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert!(!names.iter().any(|n| n == ".proc"));

    // An explicit read-only bind grants exactly the introspection tree.
    let granted = Namespace::chroot(fs.clone(), "/net/switches").bind_ro("/proc", "/net/.proc");
    let total = granted
        .read_to_string("/proc/vfs/syscalls/total", &creds)
        .unwrap();
    assert_eq!(total.trim(), fs.counters().total().to_string());
    // The grant is still no licence to write: the fs-level hook holds.
    assert!(granted
        .write_file("/proc/vfs/syscalls/total", b"0", &creds)
        .is_err());
}

#[test]
fn proc_files_refresh_between_reads() {
    let rt = runtime_with_proc();
    let fs = rt.yfs.filesystem().clone();
    let creds = Credentials::root();
    let read = |p: &str| -> u64 {
        fs.read_to_string(p, &creds)
            .unwrap()
            .trim()
            .parse()
            .unwrap()
    };
    let before = read("/net/.proc/vfs/syscalls/mkdir");
    fs.mkdir_all("/net/fresh/dir", yanc_vfs::Mode::DIR_DEFAULT, &creds)
        .unwrap();
    let after = read("/net/.proc/vfs/syscalls/mkdir");
    assert!(after > before, "proc is live, not a boot-time snapshot");
}
