//! E11 + E12: the distributed controller (§6) end to end — a flow written
//! on one controller node programs a switch attached to another, across
//! all three DFS backends; plus failure injection.

use yanc::{FlowSpec, YancFs};
use yanc_dfs::{Backend, Cluster};
use yanc_driver::Runtime;
use yanc_openflow::{port_no, Action, FlowMatch, Version};
use yanc_vfs::Credentials;

/// Build: cluster of `n` nodes; node 0 hosts the switch + driver. Every
/// node's replica is yanc-initialized (hooks registered) — on a real
/// deployment each controller machine mounts its own yanc fs.
fn world(n: usize, backend: Backend) -> (Cluster, Runtime) {
    let mut cluster = Cluster::new(n, backend, 150, "/net");
    for node in &cluster.nodes[1..] {
        YancFs::init(node.fs.clone(), "/net").unwrap();
    }
    let mut rt = Runtime::with_fs(cluster.nodes[0].fs.clone());
    rt.add_switch_with_driver(0xd, 4, 1, vec![Version::V1_0], Version::V1_0);
    let h1 = rt.net.add_host("h1", "10.0.0.1".parse().unwrap());
    let h2 = rt.net.add_host("h2", "10.0.0.2".parse().unwrap());
    rt.net.attach_host(h1, (0xd, 1), None);
    rt.net.attach_host(h2, (0xd, 2), None);
    rt.pump().unwrap();
    cluster.pump();
    (cluster, rt)
}

fn remote_write_programs_switch(backend: Backend) {
    let (mut cluster, mut rt) = world(3, backend);
    // The switch skeleton replicated to every node.
    for (i, node) in cluster.nodes.iter().enumerate() {
        assert!(
            node.fs.exists("/net/switches/swd/id", &Credentials::root()),
            "{backend:?}: node {i} missing the switch"
        );
    }
    // Write the flow on node 2, through plain file I/O there.
    let remote = YancFs::new(cluster.nodes[2].fs.clone(), "/net");
    let spec = FlowSpec {
        m: FlowMatch::any(),
        actions: vec![Action::out(port_no::FLOOD)],
        priority: 5,
        ..Default::default()
    };
    remote.write_flow("swd", "flood", &spec).unwrap();
    cluster.pump();
    rt.pump().unwrap();
    assert_eq!(rt.net.switches[&0xd].flow_count(), 1, "{backend:?}");
    // Traffic flows.
    rt.net.host_ping(1, "10.0.0.2".parse().unwrap(), 1);
    rt.pump().unwrap();
    assert_eq!(rt.net.hosts[&1].ping_replies.len(), 1, "{backend:?}");
    // Flow delete on the remote node reaches hardware too.
    remote.delete_flow("swd", "flood").unwrap();
    cluster.pump();
    rt.pump().unwrap();
    assert_eq!(rt.net.switches[&0xd].flow_count(), 0, "{backend:?}");
}

#[test]
fn e11_central_backend() {
    remote_write_programs_switch(Backend::Central { primary: 0 });
}

#[test]
fn e11_dht_backend() {
    remote_write_programs_switch(Backend::Dht);
}

#[test]
fn e11_policy_backend() {
    remote_write_programs_switch(Backend::Policy);
}

#[test]
fn e12_backend_latency_tradeoffs() {
    // Central: non-primary writes take 2 hops; primary writes 1 hop.
    let mut central = Cluster::new(4, Backend::Central { primary: 0 }, 100, "/net");
    assert_eq!(central.timed_write(0, "/net/a", b"1"), 100);
    assert_eq!(central.timed_write(3, "/net/b", b"1"), 200);

    // Policy with eventual consistency: any writer is 1 hop.
    let mut pol = Cluster::new(4, Backend::Policy, 100, "/net");
    for n in &pol.nodes {
        n.fs.mkdir_all(
            "/net/counters",
            yanc_vfs::Mode::DIR_DEFAULT,
            &Credentials::root(),
        )
        .unwrap();
        n.fs.set_xattr(
            "/net/counters",
            "user.consistency",
            b"eventual",
            &Credentials::root(),
        )
        .unwrap();
    }
    pol.pump();
    assert_eq!(pol.timed_write(3, "/net/counters/c", b"1"), 100);

    // The central primary carries all forwarded traffic — a hotspot the
    // DHT spreads. Count forwarded ops per backend for the same workload.
    let mut central = Cluster::new(4, Backend::Central { primary: 0 }, 10, "/net");
    let mut dht = Cluster::new(4, Backend::Dht, 10, "/net");
    for i in 0..16 {
        let w = i % 4;
        central.nodes[w]
            .fs
            .write_file(&format!("/net/k{i}"), b"v", &Credentials::root())
            .unwrap();
        dht.nodes[w]
            .fs
            .write_file(&format!("/net/k{i}"), b"v", &Credentials::root())
            .unwrap();
    }
    central.pump();
    dht.pump();
    // Central forwards every non-primary writer's op — always 12 of 16 —
    // and the primary orders all of them (a hotspot). The DHT forwards
    // only when the writer isn't the path's owner; the *ordering work*
    // spreads across nodes even when the forward count is similar.
    assert_eq!(central.stats.forwarded, 12);
    assert!(dht.stats.forwarded <= 16);
    // Both converge identically.
    for i in 0..16 {
        assert!(central.converged(&format!("/net/k{i}")));
        assert!(dht.converged(&format!("/net/k{i}")));
    }
}

#[test]
fn e12_concurrent_conflicting_flow_writes_converge() {
    let mut cluster = Cluster::new(3, Backend::Dht, 50, "/net");
    for n in &cluster.nodes {
        YancFs::init(n.fs.clone(), "/net").unwrap();
    }
    let y0 = YancFs::new(cluster.nodes[0].fs.clone(), "/net");
    let y1 = YancFs::new(cluster.nodes[1].fs.clone(), "/net");
    y0.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
    cluster.pump();
    // Two nodes write the same flow concurrently (before propagation).
    let a = FlowSpec {
        actions: vec![Action::out(1)],
        priority: 10,
        ..Default::default()
    };
    let b = FlowSpec {
        actions: vec![Action::out(2)],
        priority: 20,
        ..Default::default()
    };
    y0.write_flow("sw1", "clash", &a).unwrap();
    y1.write_flow("sw1", "clash", &b).unwrap();
    cluster.pump();
    // LWW: every replica reads the same winner.
    let specs: Vec<FlowSpec> = cluster
        .nodes
        .iter()
        .map(|n| {
            YancFs::new(n.fs.clone(), "/net")
                .read_flow("sw1", "clash")
                .unwrap()
        })
        .collect();
    assert_eq!(specs[0].priority, specs[1].priority);
    assert_eq!(specs[1].priority, specs[2].priority);
    assert_eq!(specs[0].actions, specs[1].actions);
}

#[test]
fn e11_node_failure_does_not_block_the_rest() {
    let (mut cluster, mut rt) = world(3, Backend::Dht);
    cluster.set_down(1);
    // Writes from node 2 still reach node 0's switch.
    let remote = YancFs::new(cluster.nodes[2].fs.clone(), "/net");
    let spec = FlowSpec {
        actions: vec![Action::out(2)],
        priority: 9,
        ..Default::default()
    };
    remote.write_flow("swd", "resilient", &spec).unwrap();
    cluster.pump();
    rt.pump().unwrap();
    // The path's DHT owner may be any node. With node 1 down some ops can
    // be lost (no retransmit in this model — documented); if the *commit*
    // (version=1) made it to node 0 the flow must be in hardware. (The
    // version file existing with "0" only means the mkdir replicated and
    // the local hook seeded it.)
    let committed = cluster.nodes[0]
        .fs
        .read_to_string(
            "/net/switches/swd/flows/resilient/version",
            &Credentials::root(),
        )
        .map(|v| v.trim() == "1")
        .unwrap_or(false);
    if committed {
        assert_eq!(rt.net.switches[&0xd].flow_count(), 1);
    }
    // Healed node resumes receiving new writes.
    cluster.set_up(1);
    remote.write_flow("swd", "after_heal", &spec).unwrap();
    cluster.pump();
    rt.pump().unwrap();
    let ok = cluster.nodes[1].fs.exists(
        "/net/switches/swd/flows/after_heal/version",
        &Credentials::root(),
    );
    // Owner routing may or may not traverse node 1; at minimum the write
    // converges across live nodes.
    assert!(cluster.converged("/net/switches/swd/flows/after_heal/version") || ok);
}
