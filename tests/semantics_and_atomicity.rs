//! E3 + E4: semantic directories (§3.1) and atomic multi-file flow commits
//! through the `version` file (§3.4), exercised end to end against a
//! driver-managed switch.

use yanc_coreutils::Shell;
use yanc_driver::Runtime;
use yanc_openflow::Version;
use yanc_vfs::{Errno, Mode};

fn rt_with_switch(v: Version) -> Runtime {
    let mut rt = Runtime::new();
    rt.add_switch_with_driver(0xa, 4, 2, vec![v], v);
    let h = rt.net.add_host("h1", "10.0.0.1".parse().unwrap());
    rt.net.attach_host(h, (0xa, 1), None);
    rt.pump().unwrap();
    rt
}

#[test]
fn e3_echo_port_down_reaches_hardware() {
    let mut rt = rt_with_switch(Version::V1_0);
    let mut sh = Shell::new(rt.yfs.filesystem().clone());
    // The paper's §3.1 example, verbatim (modulo the absolute path).
    let out = sh.run("echo 1 > /net/switches/swa/ports/p2/config.port_down");
    assert!(out.success(), "{}", out.err);
    rt.pump().unwrap();
    assert!(rt.net.switches[&0xa].ports[&2].config_down);
    sh.run("echo 0 > /net/switches/swa/ports/p2/config.port_down");
    rt.pump().unwrap();
    assert!(!rt.net.switches[&0xa].ports[&2].config_down);
}

#[test]
fn e3_semantic_mkdir_of_views_and_flows() {
    let rt = rt_with_switch(Version::V1_0);
    let mut sh = Shell::new(rt.yfs.filesystem().clone());
    // "mkdir views/new_view will create … hosts, switches, and views".
    assert!(sh.run("mkdir /net/views/new_view").success());
    assert_eq!(
        sh.run("ls /net/views/new_view").out,
        "hosts\nswitches\nviews\n"
    );
    // mkdir of a flow creates the version file (the commit cell).
    assert!(sh.run("mkdir /net/switches/swa/flows/f1").success());
    assert_eq!(sh.run("cat /net/switches/swa/flows/f1/version").out, "0");
}

#[test]
fn e3_recursive_switch_rmdir() {
    let mut rt = rt_with_switch(Version::V1_0);
    let mut sh = Shell::new(rt.yfs.filesystem().clone());
    sh.run("mkdir /net/switches/swa/flows/f1");
    sh.run("echo flood > /net/switches/swa/flows/f1/action.out");
    // "the rmdir() call for switches is automatically recursive."
    assert!(sh.run("rmdir /net/switches/swa").success());
    assert!(!rt
        .yfs
        .filesystem()
        .exists("/net/switches/swa", rt.yfs.creds()));
    rt.pump().unwrap();
}

#[test]
fn e3_schema_validation_rejects_nonsense() {
    let rt = rt_with_switch(Version::V1_0);
    let fs = rt.yfs.filesystem();
    // Unknown flow fields are EINVAL at create time.
    fs.mkdir(
        "/net/switches/swa/flows/f",
        Mode::DIR_DEFAULT,
        rt.yfs.creds(),
    )
    .unwrap();
    let e = fs
        .write_file(
            "/net/switches/swa/flows/f/match.quantum_state",
            b"up",
            rt.yfs.creds(),
        )
        .unwrap_err();
    assert_eq!(e.errno, Errno::EINVAL);
    // peer links must point at ports.
    let e = fs
        .symlink(
            "/net/switches/swa",
            "/net/switches/swa/ports/p1/peer",
            rt.yfs.creds(),
        )
        .unwrap_err();
    assert_eq!(e.errno, Errno::EINVAL);
}

#[test]
fn e4_commit_is_atomic_with_respect_to_the_driver() {
    // Write a flow field by field, pumping the driver between every write:
    // nothing may reach hardware until the version bump, and then exactly
    // the final state must.
    let mut rt = rt_with_switch(Version::V1_3);
    let mut sh = Shell::new(rt.yfs.filesystem().clone());
    sh.run("mkdir /net/switches/swa/flows/staged");
    let fields = [
        ("match.dl_type", "0x0800"),
        ("match.nw_proto", "6"),
        ("match.nw_src", "10.0.0.0/24"),
        ("match.nw_dst", "10.1.0.0/16"),
        ("match.tp_dst", "22"),
        ("priority", "900"),
        ("idle_timeout", "30"),
        ("action.set_nw_tos", "32"),
        ("action.out", "2"),
    ];
    for (k, v) in fields {
        assert!(sh
            .run(&format!("echo {v} > /net/switches/swa/flows/staged/{k}"))
            .success());
        rt.pump().unwrap();
        assert_eq!(
            rt.net.switches[&0xa].flow_count(),
            0,
            "driver acted before the version bump (after writing {k})"
        );
    }
    // Commit.
    sh.run("echo 1 > /net/switches/swa/flows/staged/version");
    rt.pump().unwrap();
    assert_eq!(rt.net.switches[&0xa].flow_count(), 1);
    let entry = rt.net.switches[&0xa]
        .table(0)
        .unwrap()
        .iter()
        .next()
        .unwrap()
        .clone();
    assert_eq!(entry.priority, 900);
    assert_eq!(entry.m.tp_dst, Some(22));
    assert_eq!(entry.m.nw_src.unwrap().prefix_len, 24);
    assert_eq!(entry.idle_timeout, 30);
    assert_eq!(entry.actions.len(), 2); // set_nw_tos + output
}

#[test]
fn e4_recommit_replaces_switch_state() {
    let mut rt = rt_with_switch(Version::V1_3);
    let y = &rt.yfs;
    let spec = yanc::FlowSpec {
        m: yanc_openflow::FlowMatch {
            dl_type: Some(0x0800),
            nw_proto: Some(6),
            tp_dst: Some(22),
            ..Default::default()
        },
        actions: vec![yanc_openflow::Action::out(2)],
        priority: 700,
        ..Default::default()
    };
    y.write_flow("swa", "f", &spec).unwrap();
    rt.pump().unwrap();
    assert_eq!(rt.net.switches[&0xa].flow_count(), 1);
    // Rewrite with a different match: old hardware entry must be replaced,
    // not accumulated.
    let spec2 = yanc::FlowSpec {
        m: yanc_openflow::FlowMatch {
            dl_type: Some(0x0800),
            nw_proto: Some(6),
            tp_dst: Some(23),
            ..Default::default()
        },
        actions: vec![yanc_openflow::Action::out(3)],
        priority: 700,
        ..Default::default()
    };
    rt.yfs.write_flow("swa", "f", &spec2).unwrap();
    rt.pump().unwrap();
    assert_eq!(rt.net.switches[&0xa].flow_count(), 1);
    let entry = rt.net.switches[&0xa]
        .table(0)
        .unwrap()
        .iter()
        .next()
        .unwrap()
        .clone();
    assert_eq!(entry.m.tp_dst, Some(23));
}
