//! Property-based tests over the core data structures and invariants:
//! path resolution vs a model, flow-spec file-codec roundtrips, OpenFlow
//! wire-codec roundtrips for both versions, match subsumption laws,
//! DFS convergence under arbitrary concurrent writes, and concurrency
//! laws of the sharded vfs (lock ordering, link-count conservation,
//! notify batch accounting).

use std::sync::Arc;

use proptest::prelude::*;

use yanc::FlowSpec;
use yanc_dfs::{Backend, Cluster};
use yanc_openflow::FrameCodec;
use yanc_openflow::{decode, encode, Action, FlowMatch, FlowMod, Ipv4Prefix, Message, Version};
use yanc_packet::MacAddr;
use yanc_vfs::{Credentials, EventMask, Filesystem, Mode};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    proptest::array::uniform6(any::<u8>()).prop_map(MacAddr)
}

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    // /0 is excluded: it is semantically the full wildcard, which the
    // codecs rightly canonicalize to an absent field.
    (any::<u32>(), 1u8..=32).prop_map(|(addr, len)| {
        // Canonicalize: host bits cleared, so Display/parse roundtrips.
        let masked = if len == 0 {
            0
        } else {
            addr & (u32::MAX << (32 - u32::from(len)))
        };
        Ipv4Prefix {
            addr: masked.into(),
            prefix_len: len,
        }
    })
}

prop_compose! {
    fn arb_match()(
        in_port in proptest::option::of(1u16..1000),
        dl_src in proptest::option::of(arb_mac()),
        dl_dst in proptest::option::of(arb_mac()),
        dl_vlan in proptest::option::of(0u16..4095),
        dl_vlan_pcp in proptest::option::of(0u8..8),
        dl_type in proptest::option::of(prop_oneof![Just(0x0800u16), Just(0x0806), Just(0x88cc)]),
        nw_tos in proptest::option::of((0u8..64).prop_map(|v| v << 2)),
        nw_proto in proptest::option::of(prop_oneof![Just(1u8), Just(6), Just(17)]),
        nw_src in proptest::option::of(arb_prefix()),
        nw_dst in proptest::option::of(arb_prefix()),
        tp_src in proptest::option::of(any::<u16>()),
        tp_dst in proptest::option::of(any::<u16>()),
    ) -> FlowMatch {
        FlowMatch {
            in_port, dl_src, dl_dst, dl_vlan, dl_vlan_pcp, dl_type,
            nw_tos, nw_proto, nw_src, nw_dst, tp_src, tp_dst,
        }
    }
}

/// A match that satisfies OpenFlow 1.3 OXM prerequisites.
fn arb_match_v13() -> impl Strategy<Value = FlowMatch> {
    arb_match().prop_map(|mut m| {
        // Transport fields require tcp/udp/icmp; network fields require
        // IPv4/ARP ethertype; pcp requires a vlan.
        if m.tp_src.is_some() || m.tp_dst.is_some() {
            m.dl_type = Some(0x0800);
            if !matches!(m.nw_proto, Some(1) | Some(6) | Some(17)) {
                m.nw_proto = Some(6);
            }
            if m.nw_proto == Some(1) {
                // ICMP type/code are u8 on the wire.
                m.tp_src = m.tp_src.map(|v| v & 0xff);
                m.tp_dst = m.tp_dst.map(|v| v & 0xff);
            }
        } else if m.nw_src.is_some()
            || m.nw_dst.is_some()
            || m.nw_proto.is_some()
            || m.nw_tos.is_some()
        {
            if !matches!(m.dl_type, Some(0x0800) | Some(0x0806)) {
                m.dl_type = Some(0x0800);
            }
            if m.dl_type == Some(0x0806) {
                m.nw_tos = None;
            }
        }
        if m.dl_vlan_pcp.is_some() && m.dl_vlan.is_none() {
            m.dl_vlan = Some(1);
        }
        m
    })
}

fn arb_actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        prop_oneof![
            (1u16..100).prop_map(Action::out),
            (0u16..4095).prop_map(Action::SetVlanVid),
            (0u8..8).prop_map(Action::SetVlanPcp),
            Just(Action::StripVlan),
            arb_mac().prop_map(Action::SetDlSrc),
            arb_mac().prop_map(Action::SetDlDst),
            any::<u32>().prop_map(|v| Action::SetNwSrc(v.into())),
            any::<u32>().prop_map(|v| Action::SetNwDst(v.into())),
            (0u8..64).prop_map(|v| Action::SetNwTos(v << 2)),
            any::<u16>().prop_map(Action::SetTpSrc),
            any::<u16>().prop_map(Action::SetTpDst),
            (1u16..100, any::<u32>())
                .prop_map(|(port, queue_id)| Action::Enqueue { port, queue_id }),
        ],
        0..6,
    )
}

// ---------------------------------------------------------------------
// OpenFlow codec roundtrips (E17)
// ---------------------------------------------------------------------

fn wire_roundtrip(v: Version, msg: &Message) -> Message {
    let bytes = encode(v, msg, 42).unwrap();
    let mut c = FrameCodec::new();
    c.feed(&bytes);
    let frame = c.next_frame().unwrap().unwrap();
    decode(&frame).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn v10_flow_mod_roundtrips(m in arb_match(), actions in arb_actions(),
                               priority in any::<u16>(), cookie in any::<u64>()) {
        let fm = FlowMod { cookie, priority, actions, ..FlowMod::add(m, 0, vec![]) };
        let fm = FlowMod { m, ..fm };
        let got = wire_roundtrip(Version::V1_0, &Message::FlowMod(fm.clone()));
        prop_assert_eq!(got, Message::FlowMod(fm));
    }

    #[test]
    fn v13_flow_mod_roundtrips(m in arb_match_v13(), actions in arb_actions(),
                               priority in any::<u16>(), table in 0u8..4) {
        let mut fm = FlowMod::add(m, priority, actions);
        fm.table_id = table;
        fm.goto_table = if table < 3 { Some(table + 1) } else { None };
        let got = wire_roundtrip(Version::V1_3, &Message::FlowMod(fm.clone()));
        prop_assert_eq!(got, Message::FlowMod(fm));
    }

    #[test]
    fn both_versions_packet_out_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256),
                                          in_port in 1u16..100, actions in arb_actions()) {
        for v in [Version::V1_0, Version::V1_3] {
            let msg = Message::PacketOut {
                buffer_id: None,
                in_port,
                actions: actions.clone(),
                data: bytes::Bytes::from(data.clone()),
            };
            prop_assert_eq!(wire_roundtrip(v, &msg), msg);
        }
    }

    // -----------------------------------------------------------------
    // Flow file codec (E4 substrate)
    // -----------------------------------------------------------------

    #[test]
    fn flowspec_files_roundtrip(m in arb_match(), actions in arb_actions(),
                                priority in any::<u16>(), idle in any::<u16>(),
                                hard in any::<u16>(), cookie in any::<u64>(),
                                version in 1u64..1000) {
        // The file codec canonicalizes action order; apply it first so the
        // roundtrip target is the canonical form.
        let canon = FlowSpec::from_files(
            FlowSpec { m, actions, priority, idle_timeout: idle, hard_timeout: hard,
                       cookie, goto_table: None, version }
                .to_files().iter().map(|(k, v)| (k.as_str(), v.as_str()))
        ).unwrap();
        let files = canon.to_files();
        let view: Vec<(&str, &str)> = files.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let again = FlowSpec::from_files(view).unwrap();
        prop_assert_eq!(again, canon);
    }

    // -----------------------------------------------------------------
    // Match laws
    // -----------------------------------------------------------------

    #[test]
    fn subsumption_is_reflexive_and_any_is_top(m in arb_match()) {
        prop_assert!(m.subsumes(&m));
        prop_assert!(FlowMatch::any().subsumes(&m));
    }

    #[test]
    fn intersection_is_subsumed_by_both(a in arb_match(), b in arb_match()) {
        if let Some(i) = yanc_apps::intersect(&a, &b) {
            prop_assert!(a.subsumes(&i), "a={a:?} i={i:?}");
            prop_assert!(b.subsumes(&i), "b={b:?} i={i:?}");
        }
    }

    #[test]
    fn intersection_commutes(a in arb_match(), b in arb_match()) {
        prop_assert_eq!(yanc_apps::intersect(&a, &b), yanc_apps::intersect(&b, &a));
    }

    // -----------------------------------------------------------------
    // VFS path resolution vs a flat model
    // -----------------------------------------------------------------

    #[test]
    fn vfs_matches_model(ops in proptest::collection::vec(
        (prop_oneof![Just("a"), Just("b"), Just("c")],
         prop_oneof![Just("x"), Just("y")],
         proptest::collection::vec(any::<u8>(), 0..8),
         any::<bool>()),
        1..40,
    )) {
        // Model: map of 2-level paths to contents.
        let fs = Filesystem::new();
        let creds = Credentials::root();
        let mut model: std::collections::BTreeMap<String, Vec<u8>> = Default::default();
        for (d, f, data, delete) in ops {
            let dir = format!("/{d}");
            let path = format!("/{d}/{f}");
            if delete {
                let _ = fs.unlink(&path, &creds);
                model.remove(&path);
            } else {
                let _ = fs.mkdir_all(&dir, Mode::DIR_DEFAULT, &creds);
                fs.write_file(&path, &data, &creds).unwrap();
                model.insert(path, data);
            }
        }
        for (path, want) in &model {
            prop_assert_eq!(&fs.read_file(path, &creds).unwrap(), want);
        }
        // Nothing extra: directory listings match the model's keys.
        for d in ["a", "b", "c"] {
            let have: Vec<String> = fs
                .readdir(&format!("/{d}"), &creds)
                .map(|es| es.into_iter().map(|e| format!("/{d}/{}", e.name)).collect())
                .unwrap_or_default();
            let want: Vec<String> =
                model.keys().filter(|k| k.starts_with(&format!("/{d}/"))).cloned().collect();
            prop_assert_eq!(have, want);
        }
    }

    // -----------------------------------------------------------------
    // DFS convergence (E12)
    // -----------------------------------------------------------------

    #[test]
    fn dfs_converges_under_arbitrary_writes(
        writes in proptest::collection::vec(
            (0usize..3, prop_oneof![Just("k1"), Just("k2"), Just("k3")], any::<u8>()),
            1..30,
        ),
        backend_sel in 0u8..3,
    ) {
        let backend = match backend_sel {
            0 => Backend::Central { primary: 0 },
            1 => Backend::Dht,
            _ => Backend::Policy,
        };
        let mut cluster = Cluster::new(3, backend, 10, "/net");
        for (node, key, val) in writes {
            cluster.nodes[node]
                .fs
                .write_file(&format!("/net/{key}"), &[val], &Credentials::root())
                .unwrap();
        }
        cluster.pump();
        for key in ["k1", "k2", "k3"] {
            prop_assert!(cluster.converged(&format!("/net/{key}")), "{key} diverged");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // -----------------------------------------------------------------
    // Journal replay determinism (DESIGN.md §10)
    // -----------------------------------------------------------------

    // The durability law: for an arbitrary op sequence (including
    // rename/link/unlink interleavings), `replay(full log)` ≡
    // `mid-snapshot + replay(suffix)` ≡ `compacted log` ≡ the live tree.
    // The mid-run snapshot is spliced out by frame surgery to force the
    // pure-replay path over the identical history.
    #[test]
    fn journal_replay_is_deterministic(ops in proptest::collection::vec(
        (0u8..7,
         prop_oneof![Just("p"), Just("q"), Just("r")],
         prop_oneof![Just("x"), Just("y"), Just("z"), Just("w")],
         prop_oneof![Just("p"), Just("q"), Just("r")],
         prop_oneof![Just("x"), Just("y"), Just("z"), Just("w")],
         proptest::collection::vec(any::<u8>(), 1..6)),
        1..60,
    )) {
        let fs = Filesystem::new();
        fs.enable_journal();
        let creds = Credentials::root();
        let mid = ops.len() / 2;
        for (i, (kind, d1, n1, d2, n2, data)) in ops.iter().enumerate() {
            if i == mid {
                fs.journal_snapshot();
            }
            let a = format!("/{d1}/{n1}");
            let b = format!("/{d2}/{n2}");
            match kind {
                0 => { let _ = fs.mkdir_all(&format!("/{d1}"), Mode::DIR_DEFAULT, &creds); }
                1 => { let _ = fs.write_file(&a, data, &creds); }
                2 => { let _ = fs.rename(&a, &b, &creds); }
                3 => { let _ = fs.link(&a, &b, &creds); }
                4 => { let _ = fs.unlink(&a, &creds); }
                5 => { let _ = fs.symlink(&b, &a, &creds); }
                _ => { let _ = fs.rmdir(&format!("/{d1}"), &creds); }
            }
        }
        let live = fs.tree_digest();
        let bytes = fs.journal_bytes();

        // Snapshot + replay(suffix): the scanner picks the latest snapshot.
        let (r1, _) = Filesystem::restore_from_journal(&bytes, yanc_vfs::Limits::default(), 2, true);
        prop_assert_eq!(r1.tree_digest(), live);
        prop_assert!(r1.check_invariants().is_ok());

        // Pure replay(full log): splice every non-anchor snapshot frame out
        // so only the virgin anchor remains, then replay all records.
        let frames = yanc_vfs::scan_frames(&bytes);
        let mut spliced = Vec::new();
        for (j, f) in frames.iter().enumerate() {
            if j == 0 || !f.is_snapshot {
                spliced.extend_from_slice(&bytes[f.start..f.end]);
            }
        }
        let (r2, _) = Filesystem::restore_from_journal(&spliced, yanc_vfs::Limits::default(), 1, false);
        prop_assert_eq!(r2.tree_digest(), live);

        // Compacted log: drop everything the latest snapshot covers.
        fs.journal_compact();
        let (r3, _) = Filesystem::restore_from_journal(
            &fs.journal_bytes(), yanc_vfs::Limits::default(), 3, true);
        prop_assert_eq!(r3.tree_digest(), live);
    }
}

// ---------------------------------------------------------------------
// Sharded-vfs concurrency laws
// ---------------------------------------------------------------------

/// splitmix64 — deterministic per-thread op streams.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Shard-ordering law: threads hammering rename/link/unlink/write across
/// directories acquire multi-shard write locks in every possible key
/// combination. The law is threefold: the run terminates (canonical
/// ascending acquisition order admits no deadlock), no inode is orphaned,
/// and every link count equals the number of directory entries referring
/// to the inode — all enforced by `check_invariants` over the final tree.
#[test]
fn concurrent_rename_link_unlink_preserve_structure() {
    let fs = Arc::new(Filesystem::builder().build());
    let creds = Credentials::root();
    for d in 0..4 {
        fs.mkdir_all(&format!("/p/d{d}"), Mode::DIR_DEFAULT, &creds)
            .unwrap();
    }
    for i in 0..6 {
        fs.write_file(&format!("/p/d0/f{i}"), b"seed", &creds)
            .unwrap();
    }
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let fs = Arc::clone(&fs);
            std::thread::spawn(move || {
                let creds = Credentials::root();
                let mut s = t.wrapping_mul(0x5bf0_3635);
                for _ in 0..400 {
                    s = mix(s);
                    let src = format!("/p/d{}/f{}", s % 4, (s >> 8) % 6);
                    let dst = format!("/p/d{}/f{}", (s >> 16) % 4, (s >> 24) % 6);
                    // Individual ops may lose races (ENOENT/EEXIST are
                    // legal outcomes); the structural laws may not.
                    match (s >> 32) % 4 {
                        0 => drop(fs.rename(&src, &dst, &creds)),
                        1 => drop(fs.link(&src, &dst, &creds)),
                        2 => drop(fs.unlink(&src, &creds)),
                        _ => drop(fs.write_file(&src, &s.to_le_bytes(), &creds)),
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let report = fs.check_invariants().unwrap();
    assert_eq!(report.orphans_held_open, 0);
    assert_eq!(report.handles, 0);
    assert_eq!(report.directories, 6); // /, /p, /p/d0..d3
}

/// Notify-batch law: across a queue drain no event is lost or duplicated.
/// An unquota'd shadow watch on the same directory observes the full
/// matched stream (`m` events); the hub's global counters must then
/// satisfy `delivered = m + received` and `dropped = m - received`, i.e.
/// every matched event is accounted exactly once as delivered-or-dropped.
#[test]
fn notify_batch_accounting_loses_and_duplicates_nothing() {
    let fs = Filesystem::new();
    let root = Credentials::root();
    fs.mkdir_all("/q", Mode::DIR_DEFAULT, &root).unwrap();

    // Unlimited watch: every matched event arrives exactly once.
    let watch = fs
        .watch("/q")
        .subtree()
        .mask(EventMask::ALL)
        .register()
        .unwrap();
    let rx = watch.receiver();
    let d0 = fs.notify().delivered_events();
    for i in 0..32 {
        fs.write_file(&format!("/q/n{i}"), b"x", &root).unwrap();
    }
    let events: Vec<_> = rx.try_iter().collect();
    assert_eq!(
        events.len() as u64,
        fs.notify().delivered_events() - d0,
        "drained a different number of events than the hub delivered"
    );
    let mut created: Vec<String> = events
        .iter()
        .filter(|e| e.kind == yanc_vfs::EventKind::Create)
        .filter_map(|e| e.name.clone())
        .collect();
    created.sort();
    let mut want: Vec<String> = (0..32).map(|i| format!("n{i}")).collect();
    want.sort();
    assert_eq!(created, want, "a create event was lost or duplicated");
    assert_eq!(fs.notify().dropped_events(), 0);
    drop(watch); // phase two accounts only its own watches

    // Quota'd watch beside a shadow: tail-dropping must still account
    // every matched event exactly once.
    let user = Credentials::user(7, 7);
    fs.chmod("/q", yanc_vfs::Mode(0o777), &root).unwrap();
    let shadow = fs.watch("/q").mask(EventMask::ALL).register().unwrap();
    let owned = fs
        .watch("/q")
        .mask(EventMask::ALL)
        .as_creds(&user)
        .register()
        .unwrap();
    fs.notify().set_queue_quota(7, Some(8));
    let (d1, x1) = (fs.notify().delivered_events(), fs.notify().dropped_events());
    for i in 0..24 {
        fs.write_file(&format!("/q/m{i}"), b"y", &root).unwrap();
    }
    let m = shadow.receiver().try_iter().count() as u64;
    let received = owned.receiver().try_iter().count() as u64;
    let delivered = fs.notify().delivered_events() - d1;
    let dropped = fs.notify().dropped_events() - x1;
    assert_eq!(received, 8, "tail-drop should cap the queue at its quota");
    assert_eq!(delivered, m + received);
    assert_eq!(dropped, m - received);
}

/// The PR 5 "hits can't widen access" law, extended to the optimistic
/// seqlock read path (E25): serving metadata without locks must never
/// serve *permissions from a dead generation*. A `chmod`/`set_acl`
/// narrowing invalidates every attribute block in the shard (the writer
/// bumped the shard seq inside its write lock), so the very next access
/// check — even one issued immediately after a warm optimistic hit —
/// re-resolves through the locked path and re-denies.
#[test]
fn optimistic_reads_cannot_widen_access_across_narrowing() {
    use yanc_vfs::{Acl, Errno, Uid};

    let fs = Filesystem::new();
    assert!(fs.readpath_enabled());
    let root = Credentials::root();
    let bob = Credentials::user(1001, 1001);
    fs.mkdir_all("/sec/d", Mode(0o755), &root).unwrap();
    fs.write_file("/sec/d/f", b"payload", &root).unwrap();

    // Warm the optimistic path as bob while access is allowed: stat is
    // served lock-free from here on.
    fs.stat("/sec/d/f", &bob).unwrap();
    let h0 = fs.readpath_stats().optimistic_hits;
    let st = fs.stat("/sec/d/f", &bob).unwrap();
    assert_eq!(st.mode, Mode(0o644));
    assert!(
        fs.readpath_stats().optimistic_hits > h0,
        "warm stat was expected to be an optimistic hit"
    );

    // chmod narrowing: the next read_file as bob must be denied, and the
    // next stat must show the narrowed mode — never 0o644 again.
    fs.chmod("/sec/d/f", Mode(0o600), &root).unwrap();
    assert_eq!(
        fs.read_file("/sec/d/f", &bob).unwrap_err().errno,
        Errno::EACCES,
        "chmod narrowing must deny immediately, warm blocks notwithstanding"
    );
    assert_eq!(fs.stat("/sec/d/f", &bob).unwrap().mode, Mode(0o600));

    // Directory-exec narrowing: a chmod on the *parent* may live in a
    // different shard than the file's attribute block, so the block can
    // still be warm — but resolution walks the parent first, and the
    // parent's dcache generation bump forces the locked, re-checked walk.
    fs.chmod("/sec/d/f", Mode(0o644), &root).unwrap();
    fs.stat("/sec/d/f", &bob).unwrap(); // re-warm
    fs.chmod("/sec/d", Mode(0o700), &root).unwrap();
    assert_eq!(
        fs.stat("/sec/d/f", &bob).unwrap_err().errno,
        Errno::EACCES,
        "parent-exec narrowing must deny a warm optimistic stat"
    );

    // ACL narrowing: grant bob explicitly, warm, then mask him out. The
    // warm hit must re-deny exactly like the locked path would.
    fs.chmod("/sec/d", Mode(0o755), &root).unwrap();
    fs.chmod("/sec/d/f", Mode(0o600), &root).unwrap();
    let mut acl = Acl::new();
    acl.set_user(Uid(1001), 0o4);
    fs.set_acl("/sec/d/f", Some(acl), &root).unwrap();
    fs.read_file("/sec/d/f", &bob).unwrap();
    fs.stat("/sec/d/f", &bob).unwrap(); // warm post-ACL block
    fs.set_acl("/sec/d/f", None, &root).unwrap();
    assert_eq!(
        fs.read_file("/sec/d/f", &bob).unwrap_err().errno,
        Errno::EACCES,
        "ACL removal must deny immediately, warm blocks notwithstanding"
    );

    // And root, of course, still passes everywhere.
    fs.read_file("/sec/d/f", &root).unwrap();
}
