//! E25 — the optimistic lock-free read path, proven deterministically.
//!
//! Wall-clock on a 1-core CI host is noise, so the tentpole claim —
//! warm hot-path reads stop taking shard locks — is pinned the way E4/
//! E5/E22 pin theirs: against counters that cannot lie. The filesystem
//! counts every shard-lock acquisition (read and write) on the inode/
//! handle tables; a warm `stat` must move that counter by **zero**.
//!
//! Layout:
//! * zero-lock warm stat (the tier-1 pin), via the in-process accessors;
//! * per-op warm lock budgets on the deterministic 1-shard config;
//! * `/net/.proc/vfs/readpath/` existence + consistency (the proc files
//!   are the observable surface, but *rendering* them takes locks of its
//!   own, so the pins above sample the accessors);
//! * the retry storm: real threads, a writer hammering one directory,
//!   readers converging through the bounded retry ladder — fallbacks
//!   observed, total retries bounded, no livelock;
//! * lockfree-off twin behaves identically but pays locks (the E25
//!   control arm).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use yanc_vfs::{Credentials, Errno, Filesystem, Mode, OpenFlags};

fn root() -> Credentials {
    Credentials::root()
}

/// The tier-1 pin: a warm `stat` acquires **zero** shard locks.
#[test]
fn warm_stat_takes_zero_locks() {
    let fs = Filesystem::new();
    assert!(fs.readpath_enabled());
    let creds = root();
    fs.mkdir_all("/hot/dir", Mode::DIR_DEFAULT, &creds).unwrap();
    fs.write_file("/hot/dir/f", b"payload", &creds).unwrap();

    // First stat: locked fallback — resolves, reads under the shard read
    // lock, and publishes the attribute block on the way out.
    fs.stat("/hot/dir/f", &creds).unwrap();

    let locks0 = fs.lock_acquisitions();
    let s0 = fs.readpath_stats();
    for _ in 0..10 {
        let st = fs.stat("/hot/dir/f", &creds).unwrap();
        assert_eq!(st.size, 7);
        assert_eq!(st.mode, Mode(0o644));
    }
    let locks1 = fs.lock_acquisitions();
    let s1 = fs.readpath_stats();

    assert_eq!(
        locks1 - locks0,
        0,
        "warm stat took shard locks: the optimistic path regressed"
    );
    assert_eq!(
        s1.optimistic_hits - s0.optimistic_hits,
        10,
        "every warm stat must be served by the optimistic path"
    );
    assert_eq!(s1.optimistic_retries, s0.optimistic_retries);
    assert_eq!(s1.fallbacks, s0.fallbacks);
}

/// Warm lock budgets per hot op, pinned on the 1-shard deterministic
/// config (shards only change lock spreading, never semantics — and on
/// one shard the budget is schedule-independent).
#[test]
fn warm_read_ops_have_pinned_lock_budgets() {
    let fs = Filesystem::builder().shards(1).build();
    let creds = root();
    fs.mkdir_all("/b/d", Mode::DIR_DEFAULT, &creds).unwrap();
    fs.write_file("/b/d/f", b"0123456789", &creds).unwrap();
    fs.write_file("/b/d/g", b"x", &creds).unwrap();
    let fd = fs.open("/b/d/f", OpenFlags::read_only(), &creds).unwrap();
    let dir = fs.open_dir("/b/d", &creds).unwrap();

    // (op, warm lock budget). Each loop first runs the op once to warm
    // (publishing blocks through the locked path where needed), then
    // measures a second run. `stat`/`fstat` drop to zero; `pread` keeps
    // exactly the one lock that copies file bytes; `readdir` keeps
    // exactly the one lock that snapshots the entry list (per-entry
    // kinds come from the attribute blocks).
    type WarmCase<'a> = (&'a str, Box<dyn Fn() + 'a>, u64);
    let cases: [WarmCase; 4] = [
        (
            "stat",
            Box::new(|| assert_eq!(fs.stat("/b/d/f", &root()).unwrap().size, 10)),
            0,
        ),
        (
            "fstat",
            Box::new(|| assert_eq!(fs.fstat(fd).unwrap().size, 10)),
            0,
        ),
        (
            "pread",
            Box::new(|| assert_eq!(fs.pread(fd, 0, 4).unwrap(), b"0123")),
            1,
        ),
        (
            "readdir_fd",
            Box::new(|| assert_eq!(fs.readdir_fd(dir).unwrap().len(), 2)),
            1,
        ),
    ];
    for (name, op, budget) in &cases {
        op(); // warm
        let locks0 = fs.lock_acquisitions();
        op();
        let got = fs.lock_acquisitions() - locks0;
        assert_eq!(
            got, *budget,
            "warm {name}: took {got} shard locks, budget is {budget}"
        );
    }
    fs.close(fd, &creds).unwrap();
    fs.close(dir, &creds).unwrap();
}

/// The `/net/.proc/vfs/readpath/` surface: files exist, render integers,
/// and agree with the accessors. Rendering a proc file takes locks of
/// its own (the proc read is an ordinary `open`/`read`/`close`), so the
/// consistency law is monotonic: a rendered value is never *ahead* of
/// the accessor sampled afterwards.
#[test]
fn proc_readpath_files_exist_and_agree_with_accessors() {
    let fs = Filesystem::new();
    fs.mount_proc("/net/.proc").unwrap();
    let creds = root();
    fs.mkdir_all("/p/d", Mode::DIR_DEFAULT, &creds).unwrap();
    fs.write_file("/p/d/f", b"v", &creds).unwrap();
    for _ in 0..3 {
        fs.stat("/p/d/f", &creds).unwrap();
    }
    let read = |name: &str| {
        fs.read_to_string(&format!("/net/.proc/vfs/readpath/{name}"), &root())
            .unwrap()
            .trim()
            .parse::<u64>()
            .unwrap()
    };
    assert_eq!(read("enabled"), 1);
    assert_eq!(read("retry_limit"), 3);
    let rendered_hits = read("optimistic_hits");
    let s = fs.readpath_stats();
    assert!(rendered_hits >= 2, "warm stats should have hit");
    assert!(
        rendered_hits <= s.optimistic_hits,
        "a rendered counter ran ahead of the live accessor"
    );
    assert!(read("lock_acquisitions") > 0);
    assert!(read("lock_acquisitions") <= fs.lock_acquisitions());
    // Sampled back-to-back (no proc reads in between), the stats struct
    // and the accessor expose the same counter.
    assert_eq!(
        fs.readpath_stats().lock_acquisitions,
        fs.lock_acquisitions()
    );
    // The remaining counters render as integers (zero is fine).
    for f in [
        "optimistic_retries",
        "fallbacks",
        "attr_fills",
        "handle_publishes",
    ] {
        let _ = read(f);
    }
}

/// The deterministic fallback ladder: a mutation anywhere in the shard
/// invalidates warm blocks, so the next stat is a *fallback* (counted),
/// which refills, after which stats are hits again. This is the
/// single-threaded retry oracle — no schedules, no sleeps.
#[test]
fn invalidation_forces_exactly_one_fallback_then_rewarms() {
    let fs = Filesystem::builder().shards(1).build();
    fs.mount_proc("/net/.proc").unwrap();
    let creds = root();
    fs.mkdir_all("/o/d", Mode::DIR_DEFAULT, &creds).unwrap();
    fs.write_file("/o/d/f", b"v", &creds).unwrap();
    fs.stat("/o/d/f", &creds).unwrap(); // warm

    let s0 = fs.readpath_stats();
    fs.chmod("/o/d/f", Mode(0o600), &creds).unwrap(); // bumps the shard seq
    fs.stat("/o/d/f", &creds).unwrap(); // stale stamp → fallback + refill
    let s1 = fs.readpath_stats();
    assert_eq!(
        s1.fallbacks - s0.fallbacks,
        1,
        "a post-mutation stat must take exactly one locked fallback"
    );
    let locks0 = fs.lock_acquisitions();
    fs.stat("/o/d/f", &creds).unwrap(); // rewarmed: optimistic again
    assert_eq!(fs.lock_acquisitions() - locks0, 0);
    assert_eq!(fs.readpath_stats().optimistic_hits, s1.optimistic_hits + 1);
    // The pinned proc observable from the issue: fallbacks > 0.
    let fallbacks: u64 = fs
        .read_to_string("/net/.proc/vfs/readpath/fallbacks", &creds)
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert!(fallbacks > 0);
}

/// The retry storm: one writer hammers a single directory with chmod/
/// rename while readers spin on stat. Readers must converge through the
/// bounded ladder — every observed result is a legal state, total
/// retries stay under the hard per-op ceiling, and the run terminates
/// (no livelock). Fallbacks are then pinned > 0 via proc.
#[test]
fn retry_storm_converges_with_bounded_retries() {
    let fs = Arc::new(Filesystem::builder().build());
    fs.mount_proc("/net/.proc").unwrap();
    let creds = root();
    fs.mkdir_all("/storm/d", Mode::DIR_DEFAULT, &creds).unwrap();
    fs.write_file("/storm/d/f", b"v", &creds).unwrap();
    fs.stat("/storm/d/f", &creds).unwrap(); // warm before the storm

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let fs = Arc::clone(&fs);
        std::thread::spawn(move || {
            let creds = Credentials::root();
            for i in 0..400 {
                let mode = if i % 2 == 0 { Mode(0o600) } else { Mode(0o644) };
                fs.chmod("/storm/d/f", mode, &creds).unwrap();
                if i % 16 == 0 {
                    fs.rename("/storm/d/f", "/storm/d/g", &creds).unwrap();
                    fs.rename("/storm/d/g", "/storm/d/f", &creds).unwrap();
                }
                std::thread::yield_now();
            }
        })
    };
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let fs = Arc::clone(&fs);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let creds = Credentials::root();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match fs.stat("/storm/d/f", &creds) {
                        // Mid-rename the name legally vanishes; any other
                        // errno or a torn mode is a broken read path.
                        Ok(st) => {
                            assert!(
                                st.mode == Mode(0o600) || st.mode == Mode(0o644),
                                "torn mode {:?}",
                                st.mode
                            );
                            assert_eq!(st.size, 1);
                        }
                        Err(e) => assert_eq!(e.errno, Errno::ENOENT),
                    }
                    ops += 1;
                }
                ops
            })
        })
        .collect();

    writer.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    let reader_ops: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(reader_ops > 0);

    // Bounded ladder: each optimistic attempt retries at most
    // retry_limit + 1 times before the locked fallback ends the op.
    let retry_limit: u64 = fs
        .read_to_string("/net/.proc/vfs/readpath/retry_limit", &creds)
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    let s = fs.readpath_stats();
    let attr_reads = s.optimistic_hits + s.fallbacks;
    assert!(
        s.optimistic_retries <= attr_reads * (retry_limit + 1),
        "retry ceiling breached: {} retries over {} reads (limit {})",
        s.optimistic_retries,
        attr_reads,
        retry_limit
    );
    // The storm actually exercised the ladder's fallback rung — every
    // writer mutation invalidated the shard, so warm readers had to
    // re-fill through the locked path.
    let fallbacks: u64 = fs
        .read_to_string("/net/.proc/vfs/readpath/fallbacks", &creds)
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert!(fallbacks > 0, "the storm never forced a locked fallback");
    fs.check_invariants().unwrap();
}

/// The control arm: a lockfree-off filesystem answers identically but
/// pays at least one shard lock per warm stat, and its optimistic
/// counters stay at zero. (Part 1d in the linearizability harness does
/// the full paired replay; this pins the cost asymmetry.)
#[test]
fn disabled_readpath_stats_identically_but_pays_locks() {
    let on = Filesystem::new();
    let off = Filesystem::builder().readpath(false).build();
    assert!(on.readpath_enabled());
    assert!(!off.readpath_enabled());
    let creds = root();
    for f in [&on, &off] {
        f.mkdir_all("/c/d", Mode::DIR_DEFAULT, &creds).unwrap();
        f.write_file("/c/d/f", b"same", &creds).unwrap();
        f.stat("/c/d/f", &creds).unwrap(); // warm
    }
    assert_eq!(
        on.stat("/c/d/f", &creds).unwrap(),
        off.stat("/c/d/f", &creds).unwrap()
    );
    let (l_on, l_off) = (on.lock_acquisitions(), off.lock_acquisitions());
    for _ in 0..5 {
        on.stat("/c/d/f", &creds).unwrap();
        off.stat("/c/d/f", &creds).unwrap();
    }
    assert_eq!(on.lock_acquisitions() - l_on, 0);
    assert_eq!(
        off.lock_acquisitions() - l_off,
        5,
        "the locked path takes exactly one shard read lock per warm stat"
    );
    let s = off.readpath_stats();
    assert_eq!(
        (
            s.optimistic_hits,
            s.fallbacks,
            s.attr_fills,
            s.handle_publishes
        ),
        (0, 0, 0, 0),
        "a disabled read path must stay completely inert"
    );
}
