//! E10: the paper's §5.4 shell one-liners, run verbatim against a live,
//! driver-managed network.

use yanc::FlowSpec;
use yanc_coreutils::Shell;
use yanc_driver::Runtime;
use yanc_openflow::{Action, FlowMatch, Version};

fn world() -> (Runtime, Shell) {
    let mut rt = Runtime::new();
    for d in 1..=3u64 {
        rt.add_switch_with_driver(d, 4, 1, vec![Version::V1_0], Version::V1_0);
    }
    rt.pump().unwrap();
    // An ssh flow on sw1 and sw3 so the find example has something to find.
    for sw in ["sw1", "sw3"] {
        let spec = FlowSpec {
            m: FlowMatch {
                dl_type: Some(0x0800),
                nw_proto: Some(6),
                tp_dst: Some(22),
                ..Default::default()
            },
            actions: vec![Action::out(2)],
            ..Default::default()
        };
        rt.yfs.write_flow(sw, "ssh_fwd", &spec).unwrap();
    }
    rt.pump().unwrap();
    let sh = Shell::new(rt.yfs.filesystem().clone());
    (rt, sh)
}

#[test]
fn paper_ls_l_net_switches() {
    // "$ ls -l /net/switches"
    let (_rt, mut sh) = world();
    let out = sh.run("ls -l /net/switches");
    assert!(out.success());
    let lines: Vec<&str> = out.out.lines().collect();
    assert_eq!(lines.len(), 3);
    for (i, l) in lines.iter().enumerate() {
        assert!(l.starts_with('d'), "switches are directories: {l}");
        assert!(l.ends_with(&format!("sw{}", i + 1)));
    }
}

#[test]
fn paper_find_tp_dst_grep_22() {
    // "$ find /net -name tp.dst -exec grep 22" — our field files are named
    // match.tp_dst; the command shape is identical.
    let (_rt, mut sh) = world();
    let out = sh.run("find /net -name match.tp_dst -exec grep -H 22");
    assert!(
        out.out
            .contains("/net/switches/sw1/flows/ssh_fwd/match.tp_dst:22"),
        "{}",
        out.out
    );
    assert!(out
        .out
        .contains("/net/switches/sw3/flows/ssh_fwd/match.tp_dst:22"));
    assert!(!out.out.contains("sw2"));
}

#[test]
fn shell_script_admin_session() {
    // A small admin session as a script: inventory, inspect, reconfigure.
    let (mut rt, mut sh) = world();
    let script = "\
# how many switches do we have?
ls /net/switches | wc -l
# what protocol does sw2 speak?
cat /net/switches/sw2/protocol
# kill sw2's port 3
echo 1 > /net/switches/sw2/ports/p3/config.port_down
";
    let out = sh.run_script(script);
    assert!(out.success(), "{}", out.err);
    assert!(out.out.contains('3'));
    assert!(out.out.contains("OpenFlow 1.0"));
    rt.pump().unwrap();
    assert!(rt.net.switches[&2].ports[&3].config_down);
}

#[test]
fn pipeline_composition() {
    let (_rt, mut sh) = world();
    // Which flows exist, fabric-wide, sorted and deduplicated?
    let out = sh.run("find /net -type d -name 'ssh*' | sort | uniq | wc -l");
    assert_eq!(out.out.trim(), "2");
    // grep -r across the whole tree.
    let out = sh.run("grep -r 0x0800 /net");
    assert!(out.out.lines().count() >= 2);
}

#[test]
fn cron_style_auditor_run() {
    // "an auditor might run periodically via a cron job" — run it, read
    // its report with cat.
    let (rt, mut sh) = world();
    yanc_apps::audit(&rt.yfs).unwrap();
    let out = sh.run("cat /net/audit.log");
    assert!(out.out.contains("3 switches"), "{}", out.out);
    assert!(out.out.contains("2 flows"));
    assert!(out.out.contains("0 findings"));
}
