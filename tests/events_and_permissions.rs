//! E5 + E9: packet-in fan-out to every subscribed application (§3.5) and
//! permission/ACL isolation of network resources (§5.1).

use yanc::{PacketInRecord, YancFs};
use yanc_driver::Runtime;
use yanc_openflow::Version;
use yanc_vfs::{Acl, Credentials, Errno, Mode, Uid};

#[test]
fn e5_fanout_to_n_subscribers() {
    let mut rt = Runtime::new();
    rt.add_switch_with_driver(0x1, 2, 1, vec![Version::V1_3], Version::V1_3);
    let h = rt.net.add_host("h1", "10.0.0.1".parse().unwrap());
    rt.net.attach_host(h, (0x1, 1), None);
    rt.pump().unwrap();
    let subs: Vec<_> = (0..8)
        .map(|i| rt.yfs.subscribe_events(&format!("app{i}")).unwrap())
        .collect();
    // One table miss.
    rt.net.host_ping(h, "10.0.0.9".parse().unwrap(), 1);
    rt.pump().unwrap();
    // "our current design concurrently feeds packet-in messages to all
    // applications interested in such events."
    for (i, sub) in subs.iter().enumerate() {
        let got = sub.drain_all();
        assert_eq!(got.len(), 1, "subscriber {i}");
        assert_eq!(got[0].switch, "sw1");
        assert_eq!(got[0].in_port, 1);
    }
}

#[test]
fn e5_private_buffers_consume_independently() {
    let yfs = YancFs::init(std::sync::Arc::new(yanc_vfs::Filesystem::new()), "/net").unwrap();
    let a = yfs.subscribe_events("a").unwrap();
    let b = yfs.subscribe_events("b").unwrap();
    let rec = PacketInRecord {
        switch: "sw1".into(),
        in_port: 1,
        buffer_id: None,
        reason: "no_match".into(),
        data: bytes::Bytes::from_static(b"pkt"),
    };
    yfs.publish_packet_in(&rec).unwrap();
    // a consumes; b's copy is untouched (private buffers, not a shared queue).
    assert_eq!(a.drain_all().len(), 1);
    assert_eq!(yfs.list_packet_ins("a").unwrap().len(), 0);
    assert_eq!(yfs.list_packet_ins("b").unwrap().len(), 1);
    assert_eq!(b.drain_all().len(), 1);
}

#[test]
fn e9_unauthorized_app_cannot_touch_protected_switch() {
    let rt = {
        let mut rt = Runtime::new();
        rt.add_switch_with_driver(0x1, 2, 1, vec![Version::V1_0], Version::V1_0);
        rt.pump().unwrap();
        rt
    };
    let fs = rt.yfs.filesystem();
    let admin = Credentials::root();
    let app = Credentials::user(2000, 2000);
    // "while individual flows can be protected for specific processes, so
    // too can an entire switch (thus all of its flows)."
    fs.chmod("/net/switches/sw1", Mode(0o700), &admin).unwrap();
    let app_view = rt.yfs.with_creds(app.clone());
    let e = app_view.list_flows("sw1").unwrap_err();
    assert!(matches!(e, yanc::YancError::Vfs(v) if v.errno == Errno::EACCES));
    let e = app_view
        .write_flow("sw1", "f", &yanc::FlowSpec::default())
        .unwrap_err();
    assert!(matches!(e, yanc::YancError::Vfs(v) if v.errno == Errno::EACCES));
}

#[test]
fn e9_acl_grants_one_app_access() {
    let mut rt = Runtime::new();
    rt.add_switch_with_driver(0x1, 2, 1, vec![Version::V1_0], Version::V1_0);
    rt.pump().unwrap();
    let fs = rt.yfs.filesystem();
    let admin = Credentials::root();
    fs.chmod("/net/switches/sw1", Mode(0o700), &admin).unwrap();
    // Grant uid 2000 traverse+read+write on the switch via an ACL.
    let mut acl = Acl::new();
    acl.set_user(Uid(2000), 0o7);
    fs.set_acl("/net/switches/sw1", Some(acl.clone()), &admin)
        .unwrap();
    // Grant on the subdirectories the flow write touches.
    fs.set_acl("/net/switches/sw1/flows", Some(acl), &admin)
        .unwrap();
    let trusted = rt.yfs.with_creds(Credentials::user(2000, 2000));
    trusted.list_flows("sw1").unwrap();
    let spec = yanc::FlowSpec {
        actions: vec![yanc_openflow::Action::out(2)],
        ..Default::default()
    };
    trusted.write_flow("sw1", "granted", &spec).unwrap();
    rt.pump().unwrap();
    assert_eq!(rt.net.switches[&0x1].flow_count(), 1);
    // A different app is still locked out.
    let other = rt.yfs.with_creds(Credentials::user(2001, 2001));
    assert!(other.list_flows("sw1").is_err());
}

#[test]
fn e9_flow_level_protection() {
    let yfs = YancFs::init(std::sync::Arc::new(yanc_vfs::Filesystem::new()), "/net").unwrap();
    yfs.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
    let spec = yanc::FlowSpec::default();
    yfs.write_flow("sw1", "protected", &spec).unwrap();
    let fs = yfs.filesystem();
    let admin = Credentials::root();
    fs.chown(
        "/net/switches/sw1/flows/protected",
        Some(Uid(1000)),
        None,
        &admin,
    )
    .unwrap();
    fs.chmod("/net/switches/sw1/flows/protected", Mode(0o700), &admin)
        .unwrap();
    // Owner reads fine; stranger cannot.
    let owner = yfs.with_creds(Credentials::user(1000, 1000));
    owner.read_flow("sw1", "protected").unwrap();
    let stranger = yfs.with_creds(Credentials::user(1001, 1001));
    assert!(stranger.read_flow("sw1", "protected").is_err());
    // But the stranger can still see *other* flows on the same switch.
    yfs.write_flow("sw1", "public", &yanc::FlowSpec::default())
        .unwrap();
    stranger.read_flow("sw1", "public").unwrap();
}
