//! Linearizability harness for the sharded vfs.
//!
//! Two complementary attacks on the same claim — that the sharded,
//! verify-and-retry filesystem is indistinguishable from a sequential
//! filesystem:
//!
//! 1. **Virtual-scheduler histories** — N logical threads, each with its
//!    own seeded op stream, are interleaved one op at a time in a
//!    seeded random order. Every op runs against the sharded filesystem
//!    *and* a trivially-correct sequential model; results (including
//!    errnos) must agree op-for-op and the final trees must match. The
//!    schedule is a pure function of the seed, so any failure replays
//!    byte-for-byte from the seed printed in the assertion message.
//!
//! 2. **Real-thread register stress** — writer threads publish uniquely
//!    stamped values into a shared key with the write-temp-then-rename
//!    protocol while reader threads concurrently open/read/close it.
//!    Atomic-register law: every read returns a complete value some
//!    writer actually wrote — never a torn prefix, never an invented
//!    value — and the structural invariants hold afterwards.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use yanc_vfs::{Credentials, DcacheStats, Errno, Filesystem, Mode, OpenFlags};

// ---------------------------------------------------------------------
// Deterministic PRNG (splitmix64): the whole history is a function of
// the seed, which is all the replayability story needs.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------
// Part 1: virtual-scheduler histories vs a sequential model
// ---------------------------------------------------------------------

const DIRS: [&str; 3] = ["/t/d0", "/t/d1", "/t/d2"];
const NAMES: [&str; 4] = ["a", "b", "c", "d"];

/// Sequential model: names point at content cells, so hard links (two
/// names, one cell) fall out for free.
#[derive(Default)]
struct Model {
    names: BTreeMap<String, u64>,
    cells: BTreeMap<u64, Vec<u8>>,
    next_cell: u64,
}

impl Model {
    fn write(&mut self, path: &str, data: Vec<u8>) {
        match self.names.get(path) {
            Some(cell) => {
                self.cells.insert(*cell, data);
            }
            None => {
                let cell = self.next_cell;
                self.next_cell += 1;
                self.cells.insert(cell, data);
                self.names.insert(path.to_string(), cell);
            }
        }
    }

    fn read(&self, path: &str) -> Option<&Vec<u8>> {
        self.names.get(path).map(|c| &self.cells[c])
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKindL {
    Write,
    Read,
    Unlink,
    Rename,
    Link,
    Exists,
}

/// One logical thread's next op, drawn from its private stream.
fn gen_op(rng: &mut Rng) -> (OpKindL, String, String, Vec<u8>) {
    let kind = match rng.below(10) {
        0..=2 => OpKindL::Write,
        3..=4 => OpKindL::Read,
        5 => OpKindL::Unlink,
        6..=7 => OpKindL::Rename,
        8 => OpKindL::Link,
        _ => OpKindL::Exists,
    };
    let src = format!(
        "{}/{}",
        DIRS[rng.below(DIRS.len())],
        NAMES[rng.below(NAMES.len())]
    );
    let dst = format!(
        "{}/{}",
        DIRS[rng.below(DIRS.len())],
        NAMES[rng.below(NAMES.len())]
    );
    let data = format!("v{}", rng.next() % 1_000_000).into_bytes();
    (kind, src, dst, data)
}

/// Apply one op to both the filesystem and the model; panic (with the
/// seed) on any divergence.
fn apply_op(
    fs: &Filesystem,
    creds: &Credentials,
    model: &mut Model,
    op: (OpKindL, String, String, Vec<u8>),
    seed: u64,
    step: usize,
) {
    let (kind, src, dst, data) = op;
    let ctx = |what: &str| format!("seed {seed} step {step}: {kind:?} {src} -> {dst}: {what}");
    match kind {
        OpKindL::Write => {
            fs.write_file(&src, &data, creds)
                .unwrap_or_else(|e| panic!("{} ({e})", ctx("write")));
            model.write(&src, data);
        }
        OpKindL::Read => match (fs.read_file(&src, creds), model.read(&src)) {
            (Ok(got), Some(want)) => assert_eq!(&got, want, "{}", ctx("content")),
            (Err(e), None) => assert_eq!(e.errno, Errno::ENOENT, "{}", ctx("read errno")),
            (got, want) => panic!("{} (fs {got:?} vs model {want:?})", ctx("read")),
        },
        OpKindL::Unlink => {
            let want = model.names.remove(&src);
            match fs.unlink(&src, creds) {
                Ok(()) => assert!(want.is_some(), "{}", ctx("unlinked a ghost")),
                Err(e) => {
                    assert_eq!(e.errno, Errno::ENOENT, "{}", ctx("unlink errno"));
                    assert!(want.is_none(), "{}", ctx("lost an unlink"));
                }
            }
        }
        OpKindL::Rename => {
            if src == dst {
                return;
            }
            match fs.rename(&src, &dst, creds) {
                Ok(()) => {
                    let cell = *model
                        .names
                        .get(&src)
                        .unwrap_or_else(|| panic!("{}", ctx("rename ghost")));
                    if model.names.get(&dst) == Some(&cell) {
                        // POSIX: oldpath and newpath are hard links to the
                        // same inode — rename does nothing.
                    } else {
                        model.names.remove(&src);
                        model.names.insert(dst, cell);
                    }
                }
                Err(e) => {
                    assert_eq!(e.errno, Errno::ENOENT, "{}", ctx("rename errno"));
                    assert!(!model.names.contains_key(&src), "{}", ctx("rename refused"));
                }
            }
        }
        OpKindL::Link => {
            if src == dst {
                return;
            }
            match fs.link(&src, &dst, creds) {
                Ok(()) => {
                    let cell = model.names[&src];
                    let prev = model.names.insert(dst.clone(), cell);
                    assert!(prev.is_none(), "{}", ctx("link clobbered"));
                }
                Err(e) => match e.errno {
                    Errno::ENOENT => assert!(!model.names.contains_key(&src), "{}", ctx("link")),
                    Errno::EEXIST => assert!(model.names.contains_key(&dst), "{}", ctx("link")),
                    other => panic!("{} (errno {other:?})", ctx("link")),
                },
            }
        }
        OpKindL::Exists => {
            assert_eq!(
                fs.exists(&src, creds),
                model.names.contains_key(&src),
                "{}",
                ctx("exists")
            );
        }
    }
}

/// Run one seeded history: `threads` logical op streams interleaved by a
/// seeded scheduler, then a full-tree equivalence check.
fn run_history(seed: u64, shards: usize) {
    let fs = Filesystem::builder().shards(shards).build();
    let creds = Credentials::root();
    for d in DIRS {
        fs.mkdir_all(d, Mode::DIR_DEFAULT, &creds).unwrap();
    }
    let mut model = Model::default();
    let threads = 3;
    let steps_per_thread = 8;
    let mut streams: Vec<Rng> = (0..threads)
        .map(|t| Rng::new(seed.wrapping_mul(31).wrapping_add(t as u64)))
        .collect();
    let mut budget: Vec<usize> = vec![steps_per_thread; threads];
    let mut sched = Rng::new(seed ^ 0xdead_beef);
    let mut step = 0usize;
    while budget.iter().any(|&b| b > 0) {
        let runnable: Vec<usize> = (0..threads).filter(|&t| budget[t] > 0).collect();
        let t = runnable[sched.below(runnable.len())];
        budget[t] -= 1;
        let op = gen_op(&mut streams[t]);
        apply_op(&fs, &creds, &mut model, op, seed, step);
        step += 1;
    }
    // Final trees agree exactly.
    for d in DIRS {
        let have: BTreeSet<String> = fs
            .readdir(d, &creds)
            .unwrap()
            .into_iter()
            .map(|e| format!("{d}/{}", e.name))
            .collect();
        let want: BTreeSet<String> = model
            .names
            .keys()
            .filter(|k| k.starts_with(&format!("{d}/")))
            .cloned()
            .collect();
        assert_eq!(have, want, "seed {seed}: listing of {d} diverged");
    }
    for (path, cell) in &model.names {
        assert_eq!(
            &fs.read_file(path, &creds).unwrap(),
            &model.cells[cell],
            "seed {seed}: content of {path} diverged"
        );
    }
    fs.check_invariants()
        .unwrap_or_else(|e| panic!("seed {seed}: invariants violated: {e}"));
}

#[test]
fn a_thousand_seeded_histories_match_the_sequential_model() {
    for seed in 0..1_000 {
        run_history(seed, 8);
    }
}

#[test]
fn histories_replay_identically_on_one_shard() {
    // The deterministic configuration must accept the very same
    // histories — shards only change locking, never semantics.
    for seed in 0..100 {
        run_history(seed, 1);
    }
}

// ---------------------------------------------------------------------
// Part 1b: dcache coherence — cache-on vs cache-off paired replay
// ---------------------------------------------------------------------

/// Like [`gen_op`] but rename/unlink-heavy: the distribution is tilted
/// toward the operations that invalidate dentry-cache entries, so stale
/// positive *and* stale negative entries both get hammered.
fn gen_op_heavy(rng: &mut Rng) -> (OpKindL, String, String, Vec<u8>) {
    let kind = match rng.below(10) {
        0..=1 => OpKindL::Write,
        2 => OpKindL::Read,
        3..=4 => OpKindL::Unlink,
        5..=7 => OpKindL::Rename,
        8 => OpKindL::Link,
        _ => OpKindL::Exists,
    };
    let src = format!(
        "{}/{}",
        DIRS[rng.below(DIRS.len())],
        NAMES[rng.below(NAMES.len())]
    );
    let dst = format!(
        "{}/{}",
        DIRS[rng.below(DIRS.len())],
        NAMES[rng.below(NAMES.len())]
    );
    let data = format!("v{}", rng.next() % 1_000_000).into_bytes();
    (kind, src, dst, data)
}

/// Replay one rename/unlink-heavy seeded history against a cache-on and
/// a cache-off filesystem in lockstep. Each filesystem is checked
/// op-for-op against its own copy of the sequential model; the models
/// are deterministic, so exact result/errno agreement between the two
/// filesystems follows transitively. A final pass then compares the two
/// filesystems *directly* — same trees, same contents — and checks the
/// structural invariants of both.
fn run_history_pair(seed: u64, shards: usize) {
    let fs_on = Filesystem::builder().shards(shards).build();
    let fs_off = Filesystem::builder().shards(shards).dcache(false).build();
    let creds = Credentials::root();
    for d in DIRS {
        fs_on.mkdir_all(d, Mode::DIR_DEFAULT, &creds).unwrap();
        fs_off.mkdir_all(d, Mode::DIR_DEFAULT, &creds).unwrap();
    }
    let mut model_on = Model::default();
    let mut model_off = Model::default();
    let threads = 3;
    let steps_per_thread = 10;
    let mut streams: Vec<Rng> = (0..threads)
        .map(|t| Rng::new(seed.wrapping_mul(131).wrapping_add(t as u64)))
        .collect();
    let mut budget: Vec<usize> = vec![steps_per_thread; threads];
    let mut sched = Rng::new(seed ^ 0xcafe_f00d);
    let mut step = 0usize;
    while budget.iter().any(|&b| b > 0) {
        let runnable: Vec<usize> = (0..threads).filter(|&t| budget[t] > 0).collect();
        let t = runnable[sched.below(runnable.len())];
        budget[t] -= 1;
        let op = gen_op_heavy(&mut streams[t]);
        apply_op(&fs_on, &creds, &mut model_on, op.clone(), seed, step);
        apply_op(&fs_off, &creds, &mut model_off, op, seed, step);
        step += 1;
    }
    // The two filesystems must be indistinguishable from the outside.
    for d in DIRS {
        let on: Vec<String> = fs_on
            .readdir(d, &creds)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        let off: Vec<String> = fs_off
            .readdir(d, &creds)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(on, off, "seed {seed}: {d} diverged between cache modes");
        for name in on {
            assert_eq!(
                fs_on.read_file(&format!("{d}/{name}"), &creds).unwrap(),
                fs_off.read_file(&format!("{d}/{name}"), &creds).unwrap(),
                "seed {seed}: {d}/{name} content diverged between cache modes"
            );
        }
    }
    // Stronger than the per-path walk above: the canonical tree encoding
    // (inodes, modes, owners, xattrs, ACLs, link structure — everything the
    // journal snapshots) must agree bit for bit. Both replays tick the same
    // virtual clock the same number of times, so even mtimes line up.
    assert_eq!(
        fs_on.tree_digest(),
        fs_off.tree_digest(),
        "seed {seed}: tree digest diverged between cache modes"
    );
    fs_on
        .check_invariants()
        .unwrap_or_else(|e| panic!("seed {seed}: cache-on invariants violated: {e}"));
    fs_off
        .check_invariants()
        .unwrap_or_else(|e| panic!("seed {seed}: cache-off invariants violated: {e}"));
    // The comparison was real: the cache actually served lookups on one
    // side and stayed completely inert on the other.
    assert!(
        fs_on.dcache_stats().hits > 0,
        "seed {seed}: cache-on replay never hit the dcache"
    );
    assert_eq!(
        fs_off.dcache_stats(),
        DcacheStats::default(),
        "seed {seed}: cache-off filesystem touched its dcache"
    );
}

#[test]
fn rename_heavy_histories_agree_cache_on_vs_cache_off() {
    for seed in 0..300 {
        run_history_pair(seed, 8);
    }
}

#[test]
fn rename_heavy_histories_agree_on_one_shard() {
    // shards=1 is the deterministic-replay configuration; the dcache
    // must not perturb it either.
    for seed in 0..60 {
        run_history_pair(seed, 1);
    }
}

// ---------------------------------------------------------------------
// Part 1d: read-path coherence — lockfree-on vs lockfree-off paired
// replay. The optimistic seqlock read path (E25) serves warm stat/fstat/
// read metadata without taking shard locks; these histories are tilted
// toward the reads it serves, interleaved with exactly the mutations
// that invalidate it (rename/unlink/chmod). The lockfree-off filesystem
// always takes the locked path, so op-for-op equality — payloads, every
// FileStat field, exact errnos — is the "no torn entry" claim: a stale
// name with a new ino, or perms from a different generation, would show
// up as a field diverging from the always-locked twin.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKindR {
    Stat,
    ReadFd,
    Readdir,
    Write,
    Rename,
    Unlink,
    Chmod,
}

const MODES: [u16; 5] = [0o600, 0o640, 0o644, 0o444, 0o755];

/// Read-heavy op stream: over half the draws are reads the optimistic
/// path serves; the rest are the writers that must invalidate it.
fn gen_op_read_heavy(rng: &mut Rng) -> (OpKindR, String, String, Vec<u8>, Mode) {
    let kind = match rng.below(12) {
        0..=2 => OpKindR::Stat,
        3..=4 => OpKindR::ReadFd,
        5 => OpKindR::Readdir,
        6 => OpKindR::Write,
        7..=8 => OpKindR::Rename,
        9 => OpKindR::Unlink,
        _ => OpKindR::Chmod,
    };
    let src = format!(
        "{}/{}",
        DIRS[rng.below(DIRS.len())],
        NAMES[rng.below(NAMES.len())]
    );
    let dst = format!(
        "{}/{}",
        DIRS[rng.below(DIRS.len())],
        NAMES[rng.below(NAMES.len())]
    );
    let data = format!("v{}", rng.next() % 1_000_000).into_bytes();
    let mode = Mode(MODES[rng.below(MODES.len())]);
    (kind, src, dst, data, mode)
}

/// Replay one read-heavy seeded history against a lockfree-on and a
/// lockfree-off filesystem in lockstep, asserting exact agreement after
/// every single op. Both replays allocate inodes, descriptors and clock
/// ticks identically, so even `ino`/`mtime`/`ctime` must match.
fn run_history_pair_lockfree(seed: u64, shards: usize) {
    let fs_on = Filesystem::builder().shards(shards).build();
    let fs_off = Filesystem::builder().shards(shards).readpath(false).build();
    let creds = Credentials::root();
    for d in DIRS {
        fs_on.mkdir_all(d, Mode::DIR_DEFAULT, &creds).unwrap();
        fs_off.mkdir_all(d, Mode::DIR_DEFAULT, &creds).unwrap();
    }
    let threads = 3;
    let steps_per_thread = 12;
    let mut streams: Vec<Rng> = (0..threads)
        .map(|t| Rng::new(seed.wrapping_mul(257).wrapping_add(t as u64)))
        .collect();
    let mut budget: Vec<usize> = vec![steps_per_thread; threads];
    let mut sched = Rng::new(seed ^ 0x0bad_f00d);
    let mut step = 0usize;
    while budget.iter().any(|&b| b > 0) {
        let runnable: Vec<usize> = (0..threads).filter(|&t| budget[t] > 0).collect();
        let t = runnable[sched.below(runnable.len())];
        budget[t] -= 1;
        let (kind, src, dst, data, mode) = gen_op_read_heavy(&mut streams[t]);
        let ctx = |what: &str| format!("seed {seed} step {step}: {kind:?} {src} -> {dst}: {what}");
        match kind {
            OpKindR::Stat => match (fs_on.stat(&src, &creds), fs_off.stat(&src, &creds)) {
                // Every field: a torn optimistic entry (perms from one
                // generation, size from another) diverges right here.
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{}", ctx("stat fields")),
                (Err(a), Err(b)) => assert_eq!(a.errno, b.errno, "{}", ctx("stat errno")),
                (a, b) => panic!("{} (on {a:?} vs off {b:?})", ctx("stat")),
            },
            OpKindR::ReadFd => {
                let open_on = fs_on.open(&src, OpenFlags::read_only(), &creds);
                let open_off = fs_off.open(&src, OpenFlags::read_only(), &creds);
                match (open_on, open_off) {
                    (Ok(f_on), Ok(f_off)) => {
                        assert_eq!(f_on, f_off, "{}", ctx("fd allocation"));
                        assert_eq!(
                            fs_on.fstat(f_on).unwrap(),
                            fs_off.fstat(f_off).unwrap(),
                            "{}",
                            ctx("fstat fields")
                        );
                        assert_eq!(
                            fs_on.read(f_on, 4096).unwrap(),
                            fs_off.read(f_off, 4096).unwrap(),
                            "{}",
                            ctx("read payload")
                        );
                        fs_on.close(f_on, &creds).unwrap();
                        fs_off.close(f_off, &creds).unwrap();
                    }
                    (Err(a), Err(b)) => assert_eq!(a.errno, b.errno, "{}", ctx("open errno")),
                    (a, b) => panic!("{} (on {a:?} vs off {b:?})", ctx("open")),
                }
            }
            OpKindR::Readdir => {
                let parent = src.rsplit_once('/').unwrap().0.to_string();
                let fd_on = fs_on.open_dir(&parent, &creds).unwrap();
                let fd_off = fs_off.open_dir(&parent, &creds).unwrap();
                // Entry-for-entry: a stale name with a new ino, or a
                // kind from a dead generation, diverges here.
                assert_eq!(
                    fs_on.readdir_fd(fd_on).unwrap(),
                    fs_off.readdir_fd(fd_off).unwrap(),
                    "{}",
                    ctx("readdir entries")
                );
                fs_on.close(fd_on, &creds).unwrap();
                fs_off.close(fd_off, &creds).unwrap();
            }
            OpKindR::Write => {
                let a = fs_on.write_file(&src, &data, &creds);
                let b = fs_off.write_file(&src, &data, &creds);
                assert_eq!(
                    a.map_err(|e| e.errno),
                    b.map_err(|e| e.errno),
                    "{}",
                    ctx("write")
                );
            }
            OpKindR::Rename => {
                if src == dst {
                    continue;
                }
                let a = fs_on.rename(&src, &dst, &creds);
                let b = fs_off.rename(&src, &dst, &creds);
                assert_eq!(
                    a.map_err(|e| e.errno),
                    b.map_err(|e| e.errno),
                    "{}",
                    ctx("rename")
                );
            }
            OpKindR::Unlink => {
                let a = fs_on.unlink(&src, &creds);
                let b = fs_off.unlink(&src, &creds);
                assert_eq!(
                    a.map_err(|e| e.errno),
                    b.map_err(|e| e.errno),
                    "{}",
                    ctx("unlink")
                );
            }
            OpKindR::Chmod => {
                let a = fs_on.chmod(&src, mode, &creds);
                let b = fs_off.chmod(&src, mode, &creds);
                assert_eq!(
                    a.map_err(|e| e.errno),
                    b.map_err(|e| e.errno),
                    "{}",
                    ctx("chmod")
                );
                // The narrowing (or widening) must be visible to the very
                // next optimistic stat — never perms from the generation
                // before the chmod.
                match (fs_on.stat(&src, &creds), fs_off.stat(&src, &creds)) {
                    (Ok(x), Ok(y)) => {
                        assert_eq!(x, y, "{}", ctx("post-chmod stat"));
                        assert_eq!(x.mode, mode, "{}", ctx("post-chmod mode"));
                    }
                    (Err(x), Err(y)) => {
                        assert_eq!(x.errno, y.errno, "{}", ctx("post-chmod errno"))
                    }
                    (x, y) => panic!("{} (on {x:?} vs off {y:?})", ctx("post-chmod")),
                }
            }
        }
        step += 1;
    }
    // Indistinguishable from outside, bit for bit.
    assert_eq!(
        fs_on.tree_digest(),
        fs_off.tree_digest(),
        "seed {seed}: tree digest diverged between read-path modes"
    );
    fs_on
        .check_invariants()
        .unwrap_or_else(|e| panic!("seed {seed}: lockfree-on invariants violated: {e}"));
    fs_off
        .check_invariants()
        .unwrap_or_else(|e| panic!("seed {seed}: lockfree-off invariants violated: {e}"));
    // The comparison was real: the optimistic path actually served reads
    // on one side and never woke up on the other.
    let on = fs_on.readpath_stats();
    assert!(
        on.optimistic_hits > 0,
        "seed {seed}: lockfree-on replay never served an optimistic read"
    );
    let off = fs_off.readpath_stats();
    assert_eq!(
        (
            off.optimistic_hits,
            off.optimistic_retries,
            off.fallbacks,
            off.attr_fills,
            off.handle_publishes
        ),
        (0, 0, 0, 0, 0),
        "seed {seed}: lockfree-off filesystem touched its read path"
    );
}

#[test]
fn read_heavy_histories_agree_lockfree_on_vs_off() {
    for seed in 0..200 {
        run_history_pair_lockfree(seed, 8);
    }
}

#[test]
fn read_heavy_histories_agree_lockfree_on_one_shard() {
    // shards=1 maximizes seqlock invalidation cross-talk: every mutation
    // anywhere invalidates every attribute block. Agreement must hold.
    for seed in 0..60 {
        run_history_pair_lockfree(seed, 1);
    }
}

// ---------------------------------------------------------------------
// Part 1c: overlay transparency — merged-view replay vs direct replay
// ---------------------------------------------------------------------

/// Apply one file op either through an overlay view (paths relative to
/// the view) or directly against a base prefix, returning a comparable
/// result: `Ok(payload bytes)` or the errno. Exact agreement between the
/// two spellings is the overlay transparency claim.
enum Target<'a> {
    Plain(&'a Filesystem, &'a str),
    View(&'a yanc_vfs::Overlay),
}

fn apply_overlay_op(
    t: &Target<'_>,
    creds: &Credentials,
    op: &(OpKindL, String, String, Vec<u8>),
) -> Result<Vec<u8>, Errno> {
    let (kind, src, dst, data) = op;
    let (src, dst) = match t {
        Target::Plain(_, pre) => (format!("{pre}{src}"), format!("{pre}{dst}")),
        Target::View(_) => (src.clone(), dst.clone()),
    };
    let unit = |r: yanc_vfs::VfsResult<()>| r.map(|_| Vec::new()).map_err(|e| e.errno);
    match (kind, t) {
        (OpKindL::Write, Target::Plain(fs, _)) => unit(fs.write_file(&src, data, creds)),
        (OpKindL::Write, Target::View(ov)) => unit(ov.write_file(&src, data, creds)),
        (OpKindL::Read, Target::Plain(fs, _)) => fs.read_file(&src, creds).map_err(|e| e.errno),
        (OpKindL::Read, Target::View(ov)) => ov.read_file(&src, creds).map_err(|e| e.errno),
        (OpKindL::Unlink, Target::Plain(fs, _)) => unit(fs.unlink(&src, creds)),
        (OpKindL::Unlink, Target::View(ov)) => unit(ov.unlink(&src, creds)),
        (OpKindL::Rename, Target::Plain(fs, _)) => unit(fs.rename(&src, &dst, creds)),
        (OpKindL::Rename, Target::View(ov)) => unit(ov.rename(&src, &dst, creds)),
        (OpKindL::Link | OpKindL::Exists, Target::Plain(fs, _)) => {
            Ok(vec![fs.exists(&src, creds) as u8])
        }
        (OpKindL::Link | OpKindL::Exists, Target::View(ov)) => {
            Ok(vec![ov.exists(&src, creds) as u8])
        }
    }
}

/// One seeded history replayed twice — directly against `/base` on one
/// filesystem, and through a copy-on-write overlay view of an identical
/// `/base` on another — must agree op-for-op (same payloads, same
/// errnos). After a final atomic commit of the view, the two `/base`
/// trees must be structurally identical: the staged history collapses to
/// exactly the directly-applied one.
fn run_overlay_pair(seed: u64) {
    let creds = Credentials::root();
    let mk = || {
        let fs = Filesystem::builder().shards(4).build();
        for d in DIRS {
            fs.mkdir_all(&format!("/base{d}"), Mode::DIR_DEFAULT, &creds)
                .unwrap();
        }
        // A seeded pre-population, so unlink/rename hit lower files too.
        let mut rng = Rng::new(seed ^ 0x5eed);
        for d in DIRS {
            for n in NAMES {
                if rng.below(2) == 0 {
                    fs.write_file(
                        &format!("/base{d}/{n}"),
                        format!("pre-{d}-{n}").as_bytes(),
                        &creds,
                    )
                    .unwrap();
                }
            }
        }
        fs
    };
    let fs_plain = mk();
    let fs_ov = Arc::new(mk());
    let ov = yanc_vfs::Overlay::new(fs_ov.clone(), &["/base"], "/staging");
    ov.ensure_upper(&creds).unwrap();

    let mut rng = Rng::new(seed.wrapping_mul(977));
    for step in 0..40 {
        let op = gen_op_heavy(&mut rng);
        if op.0 == OpKindL::Link {
            continue; // overlays have no hard links (documented deviation)
        }
        if op.0 == OpKindL::Rename && op.1 == op.2 {
            continue;
        }
        let direct = apply_overlay_op(&Target::Plain(&fs_plain, "/base"), &creds, &op);
        let viewed = apply_overlay_op(&Target::View(&ov), &creds, &op);
        assert_eq!(
            direct, viewed,
            "seed {seed} step {step}: {op:?} diverged between direct and overlay replay"
        );
    }

    // Commit the staged history; the two base trees must now match
    // structurally (names + contents — inode numbers and clocks differ
    // by construction, so the comparison is a walk, not a digest).
    ov.commit(&creds).unwrap();
    for d in DIRS {
        let list = |fs: &Filesystem| -> Vec<String> {
            fs.readdir(&format!("/base{d}"), &creds)
                .unwrap()
                .into_iter()
                .map(|e| e.name)
                .collect()
        };
        let a = list(&fs_plain);
        assert_eq!(a, list(&fs_ov), "seed {seed}: /base{d} listing diverged");
        for name in a {
            let p = format!("/base{d}/{name}");
            assert_eq!(
                fs_plain.read_file(&p, &creds).unwrap(),
                fs_ov.read_file(&p, &creds).unwrap(),
                "seed {seed}: {p} content diverged after commit"
            );
        }
    }
    fs_plain.check_invariants().unwrap();
    fs_ov.check_invariants().unwrap();
}

#[test]
fn overlay_histories_agree_with_direct_histories() {
    for seed in 0..200 {
        run_overlay_pair(seed);
    }
}

// ---------------------------------------------------------------------
// Part 2: real threads, atomic-register semantics over rename
// ---------------------------------------------------------------------

#[test]
fn concurrent_rename_publishes_are_never_torn() {
    let fs = Arc::new(Filesystem::builder().build());
    let creds = Credentials::root();
    fs.mkdir_all("/reg", Mode::DIR_DEFAULT, &creds).unwrap();
    fs.write_file("/reg/key", b"w0-0", &creds).unwrap();

    let n_writers = 3usize;
    let writes_per_writer = 300usize;
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..n_writers)
        .map(|w| {
            let fs = Arc::clone(&fs);
            std::thread::spawn(move || {
                let creds = Credentials::root();
                let tmp = format!("/reg/.tmp{w}");
                for seq in 0..writes_per_writer {
                    // Stamped value, long enough that a torn read would
                    // be visible as a truncated or mixed payload.
                    let val = format!("w{w}-{seq}-{}", "x".repeat(64 + (seq % 7)));
                    fs.write_file(&tmp, val.as_bytes(), &creds).unwrap();
                    fs.rename(&tmp, "/reg/key", &creds).unwrap();
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let fs = Arc::clone(&fs);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let creds = Credentials::root();
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let fd = fs.open("/reg/key", OpenFlags::read_only(), &creds).unwrap();
                    let data = fs.read(fd, 4096).unwrap();
                    fs.close(fd, &creds).unwrap();
                    let s = String::from_utf8(data).expect("torn read: invalid utf8");
                    // Complete stamped value: "w<id>-<seq>-xxx..." with
                    // exactly the payload length the stamp implies.
                    let mut parts = s.splitn(3, '-');
                    let w: usize = parts
                        .next()
                        .and_then(|p| p.strip_prefix('w'))
                        .and_then(|p| p.parse().ok())
                        .unwrap_or_else(|| panic!("torn read: bad stamp {s:?}"));
                    let seq: usize = parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .unwrap_or_else(|| panic!("torn read: bad seq {s:?}"));
                    if !(w == 0 && seq == 0 && parts.clone().next().is_none()) {
                        let payload = parts
                            .next()
                            .unwrap_or_else(|| panic!("torn read: missing payload {s:?}"));
                        assert!(w < 3 && seq < 300, "invented value {s:?}");
                        assert_eq!(
                            payload,
                            "x".repeat(64 + (seq % 7)),
                            "torn read: wrong payload for stamp w{w}-{seq}"
                        );
                    }
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let total_reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total_reads > 0);

    // The register holds one complete, actually-written final value and
    // the kernel's structural laws survived the contention.
    let last = String::from_utf8(fs.read_file("/reg/key", &creds).unwrap()).unwrap();
    let seq: usize = last.split('-').nth(1).unwrap().parse().unwrap();
    assert_eq!(seq, writes_per_writer - 1);
    let report = fs.check_invariants().unwrap();
    assert_eq!(report.handles, 0);
    // No temp residue: only the key remains.
    let names: Vec<String> = fs
        .readdir("/reg", &creds)
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["key".to_string()]);
}

// ---------------------------------------------------------------------
// Part 3: descriptor-relative resolution laws
// ---------------------------------------------------------------------

/// Seeded law: `openat(dirfd, rel)` is *equivalent* to opening the
/// absolute concatenation — same success, same bytes, same errno — for
/// files, subdirectory paths, directories (EISDIR) and absent names
/// (ENOENT) alike. The fast path is a cheaper spelling of the slow path,
/// not a different semantics.
#[test]
fn openat_agrees_with_absolute_resolution() {
    let fs = Filesystem::new();
    let creds = Credentials::root();
    fs.mkdir_all("/t/d/sub", Mode::DIR_DEFAULT, &creds).unwrap();
    for (p, v) in [
        ("/t/d/a", "alpha"),
        ("/t/d/b", "bravo"),
        ("/t/d/sub/c", "charlie"),
    ] {
        fs.write_file(p, v.as_bytes(), &creds).unwrap();
    }
    let dir = fs.open_dir("/t/d", &creds).unwrap();
    let names = ["a", "b", "sub/c", "missing", "sub", "sub/nope"];
    let mut rng = Rng::new(0x0a7);
    for _ in 0..200 {
        let rel = names[rng.below(names.len())];
        let abs = format!("/t/d/{rel}");
        let via_at = fs.openat(dir, rel, OpenFlags::read_only(), &creds);
        let via_abs = fs.open(&abs, OpenFlags::read_only(), &creds);
        match (via_at, via_abs) {
            (Ok(f1), Ok(f2)) => {
                assert_eq!(
                    fs.pread(f1, 0, 64).unwrap(),
                    fs.pread(f2, 0, 64).unwrap(),
                    "{rel}: contents diverged"
                );
                fs.close(f1, &creds).unwrap();
                fs.close(f2, &creds).unwrap();
            }
            (Err(e1), Err(e2)) => assert_eq!(e1.errno, e2.errno, "{rel}: errnos diverged"),
            (at, abs_r) => panic!("{rel}: diverged: openat={at:?} absolute={abs_r:?}"),
        }
    }
    fs.close(dir, &creds).unwrap();
}

/// A directory descriptor anchors resolution at the *inode*: while one
/// thread renames the directory back and forth, `openat` through a
/// pre-rename descriptor never misses, while the absolute path legally
/// flickers in and out of existence (only ever as ENOENT).
#[test]
fn openat_survives_concurrent_directory_renames() {
    let fs = Arc::new(Filesystem::builder().build());
    let creds = Credentials::root();
    fs.mkdir_all("/t/d", Mode::DIR_DEFAULT, &creds).unwrap();
    fs.write_file("/t/d/a", b"stable", &creds).unwrap();
    let dir = fs.open_dir("/t/d", &creds).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let flipper = {
        let fs = Arc::clone(&fs);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let creds = Credentials::root();
            let mut flips = 0u64;
            while !stop.load(Ordering::Relaxed) {
                fs.rename("/t/d", "/t/e", &creds).unwrap();
                fs.rename("/t/e", "/t/d", &creds).unwrap();
                flips += 1;
                std::thread::yield_now();
            }
            flips
        })
    };

    let mut absolute_misses = 0u64;
    for _ in 0..2000 {
        let fd = fs
            .openat(dir, "a", OpenFlags::read_only(), &creds)
            .expect("descriptor-relative open must be rename-immune");
        assert_eq!(fs.pread(fd, 0, 16).unwrap(), b"stable");
        fs.close(fd, &creds).unwrap();
        match fs.open("/t/d/a", OpenFlags::read_only(), &creds) {
            Ok(fd) => fs.close(fd, &creds).unwrap(),
            // Mid-rename the absolute name simply isn't there; any other
            // errno would be a broken invariant.
            Err(e) => {
                assert_eq!(e.errno, Errno::ENOENT, "{e}");
                absolute_misses += 1;
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    let flips = flipper.join().unwrap();
    assert!(flips > 0);
    let _ = absolute_misses; // timing-dependent; zero is legal
    fs.close(dir, &creds).unwrap();
    fs.check_invariants().unwrap();
}
