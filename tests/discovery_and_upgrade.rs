//! E6 + E8 + E13: LLDP topology discovery converges to ground truth on
//! every standard topology; switches upgrade protocol versions live under
//! traffic; the full reactive stack routes all pairs.

use std::collections::BTreeSet;

use yanc_apps::{RouterDaemon, TopologyDaemon};
use yanc_driver::Runtime;
use yanc_harness::{
    build_fat_tree, build_line, build_ring, build_tree, ping_all_pairs, settle, PumpApp, Topo,
};
use yanc_openflow::Version;

/// Ground-truth directed link set from the simulator.
fn truth(rt: &Runtime) -> BTreeSet<(String, u16, String, u16)> {
    let mut out = BTreeSet::new();
    for l in rt.net.links() {
        if let (
            yanc_dataplane::Endpoint::Switch { dpid: da, port: pa },
            yanc_dataplane::Endpoint::Switch { dpid: db, port: pb },
        ) = (l.a, l.b)
        {
            out.insert((format!("sw{da:x}"), pa, format!("sw{db:x}"), pb));
            out.insert((format!("sw{db:x}"), pb, format!("sw{da:x}"), pa));
        }
    }
    out
}

fn discover(rt: &mut Runtime) -> BTreeSet<(String, u16, String, u16)> {
    let mut topod = TopologyDaemon::new(rt.yfs.clone()).unwrap();
    topod.probe().unwrap();
    settle(rt, &mut [&mut topod as &mut dyn PumpApp]);
    rt.yfs.topology().unwrap().into_iter().collect()
}

fn check_discovery(mut rt: Runtime, _topo: Topo) {
    let want = truth(&rt);
    let got = discover(&mut rt);
    assert_eq!(got, want, "discovered topology must equal ground truth");
}

#[test]
fn e8_discovery_on_line() {
    let mut rt = Runtime::new();
    let topo = build_line(&mut rt, 5, Version::V1_0);
    check_discovery(rt, topo);
}

#[test]
fn e8_discovery_on_ring() {
    let mut rt = Runtime::new();
    let topo = build_ring(&mut rt, 6, Version::V1_3);
    check_discovery(rt, topo);
}

#[test]
fn e8_discovery_on_tree_and_fat_tree() {
    let mut rt = Runtime::new();
    let topo = build_tree(&mut rt, 3, 2, Version::V1_0);
    check_discovery(rt, topo);
    let mut rt2 = Runtime::new();
    let topo2 = build_fat_tree(&mut rt2, 2, Version::V1_3);
    check_discovery(rt2, topo2);
}

#[test]
fn e8_discovery_mixed_protocol_fabric() {
    // Half the fabric speaks 1.0, half 1.3 — drivers differ per switch,
    // discovery doesn't care (§4.1: "multiple protocols may be used
    // simultaneously").
    let mut rt = Runtime::new();
    for d in 1..=4u64 {
        let v = if d % 2 == 0 {
            Version::V1_3
        } else {
            Version::V1_0
        };
        rt.add_switch_with_driver(d, 4, 1, vec![v], v);
    }
    for d in 1..=3u64 {
        rt.net.link_switches((d, 2), (d + 1, 3), None);
    }
    rt.pump().unwrap();
    let want = truth(&rt);
    let got = discover(&mut rt);
    assert_eq!(got, want);
}

#[test]
fn e6_live_upgrade_under_traffic() {
    // A 3-switch line carries pings; each switch is firmware-upgraded to
    // 1.3 and re-attached to a 1.3 driver, one at a time; traffic keeps
    // working after every step and the fs reflects the protocol change.
    let mut rt = Runtime::new();
    let topo = build_line(&mut rt, 3, Version::V1_0);
    yanc_harness::record_topology(&mut rt);
    let mut router = RouterDaemon::new(rt.yfs.clone()).unwrap();
    let (h1, _) = topo.hosts[0];
    let (_, ip2) = topo.hosts[1];

    let mut seq = 0u16;
    let mut ping_works = |rt: &mut Runtime, router: &mut RouterDaemon| {
        seq += 1;
        rt.net.host_ping(h1, ip2, seq);
        settle(rt, &mut [router as &mut dyn PumpApp]);
        rt.net.hosts[&h1]
            .ping_replies
            .iter()
            .any(|(_, s)| *s == seq)
    };
    assert!(ping_works(&mut rt, &mut router), "baseline ping");

    for d in 1..=3u64 {
        rt.net
            .switches
            .get_mut(&d)
            .unwrap()
            .set_supported(vec![Version::V1_0, Version::V1_3]);
        rt.swap_driver(d, Version::V1_3);
        rt.pump().unwrap();
        let proto = rt
            .yfs
            .filesystem()
            .read_to_string(&format!("/net/switches/sw{d}/protocol"), rt.yfs.creds())
            .unwrap();
        assert_eq!(proto, "OpenFlow 1.3", "switch sw{d} upgraded");
        assert!(
            ping_works(&mut rt, &mut router),
            "ping after upgrading sw{d}"
        );
    }
    // All switches upgraded; all drivers are 1.3; router state survived.
    assert!(rt.drivers.iter().all(|d| d.version == Version::V1_3));
}

#[test]
fn e13_reactive_router_all_pairs_on_fat_tree() {
    let mut rt = Runtime::new();
    let topo = build_fat_tree(&mut rt, 2, Version::V1_3);
    let mut topod = TopologyDaemon::new(rt.yfs.clone()).unwrap();
    topod.probe().unwrap();
    settle(&mut rt, &mut [&mut topod as &mut dyn PumpApp]);
    let mut router = RouterDaemon::new(rt.yfs.clone()).unwrap();
    let (sent, answered) = ping_all_pairs(
        &mut rt,
        &topo,
        &mut [
            &mut topod as &mut dyn PumpApp,
            &mut router as &mut dyn PumpApp,
        ],
    );
    assert_eq!(sent, answered, "every host pair must connect");
    assert!(router.paths_installed > 0);
    // Paths are exact-match entries with idle timeouts: advancing virtual
    // time far enough empties the tables (and the fs flow dirs).
    rt.advance(3600).unwrap();
    settle(&mut rt, &mut [&mut router as &mut dyn PumpApp]);
    let remaining: usize = topo
        .switches
        .iter()
        .map(|d| rt.net.switches[d].flow_count())
        .sum();
    // Only the permanent LLDP capture flows survive.
    assert_eq!(remaining, topo.switches.len());
}
