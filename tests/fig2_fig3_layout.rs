//! E1 + E2: the file system hierarchy of the paper's Figure 2 and the
//! switch/flow object layouts of Figure 3, reproduced byte for byte where
//! the paper draws them.

use yanc::{FlowSpec, YancFs};
use yanc_coreutils::Shell;
use yanc_openflow::{port_no, Action, FlowMatch};
use yanc_vfs::{Credentials, Filesystem, Mode};

fn world() -> (YancFs, Shell) {
    let fs = std::sync::Arc::new(Filesystem::new());
    let yfs = YancFs::init(fs.clone(), "/net").unwrap();
    (yfs, Shell::new(fs))
}

#[test]
fn fig2_top_level_hierarchy() {
    let (yfs, mut sh) = world();
    // Figure 2: /net { hosts, switches/{sw1,sw2}, views/{http,management-net} }
    yfs.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
    yfs.create_switch("sw2", 2, 0, 0, 0, 1).unwrap();
    yfs.create_view("http").unwrap();
    yfs.create_view("management-net").unwrap();

    let out = sh.run("ls /net").out;
    assert_eq!(out, "events\nhosts\nswitches\nviews\n");
    assert_eq!(sh.run("ls /net/switches").out, "sw1\nsw2\n");
    assert_eq!(sh.run("ls /net/views").out, "http\nmanagement-net\n");
    // The figure shows management-net containing hosts, switches, views —
    // created automatically by the mkdir (§3.1).
    assert_eq!(
        sh.run("ls /net/views/management-net").out,
        "hosts\nswitches\nviews\n"
    );
}

#[test]
fn fig3_switch_object() {
    let (yfs, mut sh) = world();
    yfs.create_switch("sw1", 1, 0xc7, 0xfff, 256, 2).unwrap();
    let out = sh.run("ls /net/switches/sw1").out;
    // Figure 3 lists: counters/ flows/ ports/ actions capabilities id
    // num_buffers (we add num_tables + packet_out for multi-table and
    // packet-out support — documented in DESIGN.md).
    for required in [
        "counters",
        "flows",
        "ports",
        "actions",
        "capabilities",
        "id",
        "num_buffers",
    ] {
        assert!(
            out.lines().any(|l| l == required),
            "missing {required} in:\n{out}"
        );
    }
    assert_eq!(sh.run("cat /net/switches/sw1/num_buffers").out, "256");
    assert_eq!(sh.run("cat /net/switches/sw1/id").out, "0x0000000000000001");
}

#[test]
fn fig3_flow_object() {
    let (yfs, mut sh) = world();
    yfs.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
    // Figure 3's arp_flow: counters/ match.dl_type match.dl_src action.out
    // priority timeout version.
    let spec = FlowSpec {
        m: FlowMatch {
            dl_type: Some(0x0806),
            dl_src: Some("aa:bb:cc:dd:ee:ff".parse().unwrap()),
            ..Default::default()
        },
        actions: vec![Action::out(port_no::CONTROLLER)],
        priority: 1000,
        idle_timeout: 60,
        ..Default::default()
    };
    yfs.write_flow("sw1", "arp_flow", &spec).unwrap();
    let out = sh.run("ls /net/switches/sw1/flows/arp_flow").out;
    for required in [
        "counters",
        "match.dl_type",
        "match.dl_src",
        "action.out",
        "priority",
        "version",
    ] {
        assert!(
            out.lines().any(|l| l == required),
            "missing {required} in:\n{out}"
        );
    }
    assert_eq!(
        sh.run("cat /net/switches/sw1/flows/arp_flow/match.dl_type")
            .out,
        "0x0806"
    );
    assert_eq!(
        sh.run("cat /net/switches/sw1/flows/arp_flow/action.out")
            .out,
        "controller"
    );
    assert_eq!(
        sh.run("cat /net/switches/sw1/flows/arp_flow/version").out,
        "1"
    );
    // Absence of a match file implies a wildcard: no match.nw_src here.
    assert!(!out.contains("match.nw_src"));
}

#[test]
fn fig2_nested_views_nest_arbitrarily() {
    let (yfs, _sh) = world();
    let fs = yfs.filesystem();
    let creds = Credentials::root();
    // Views stack (§4.2 "views can be stacked arbitrarily").
    fs.mkdir("/net/views/a", Mode::DIR_DEFAULT, &creds).unwrap();
    fs.mkdir("/net/views/a/views/b", Mode::DIR_DEFAULT, &creds)
        .unwrap();
    fs.mkdir("/net/views/a/views/b/views/c", Mode::DIR_DEFAULT, &creds)
        .unwrap();
    assert!(fs.exists("/net/views/a/views/b/views/c/switches", &creds));
}

#[test]
fn port_peer_symlink_shape() {
    let (yfs, mut sh) = world();
    for (sw, d) in [("sw1", 1u64), ("sw2", 2)] {
        yfs.create_switch(sw, d, 0, 0, 0, 1).unwrap();
        yfs.create_port(sw, 2, "02:00:00:00:00:02", 1_000_000, 10_000_000)
            .unwrap();
        yfs.create_port(sw, 3, "02:00:00:00:00:03", 1_000_000, 10_000_000)
            .unwrap();
    }
    yfs.set_peer("sw1", 2, "sw2", 3).unwrap();
    // ls -l renders the symlink arrow, like the paper's directory listings.
    let out = sh.run("ls -l /net/switches/sw1/ports/p2").out;
    assert!(out.contains("peer -> /net/switches/sw2/ports/p3"), "{out}");
}
