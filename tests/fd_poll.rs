//! Descriptor-relative I/O and `yanc_poll` end to end: the E21 syscall
//! claim (fd-relative flow install is ≥5× cheaper than path-per-call), the
//! scheduler contract (an idle poll-aware process consumes zero ticks,
//! pinned through `/net/.proc`), and the multiplexer itself (one PollSet
//! over watch + fd + probe sources, fair under flooding).

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use yanc::{FlowSpec, YancApp, YancResult};
use yanc_coreutils::Shell;
use yanc_driver::Runtime;
use yanc_init::{ProcessSpec, ProcessState, Supervisor};
use yanc_openflow::{Action, FlowMatch, Ipv4Prefix, Version};
use yanc_packet::MacAddr;
use yanc_vfs::{
    Credentials, EventMask, Fd, Filesystem, Interest, Mode, OpenFlags, PollSource, WatchGuard,
};

fn proc_u64(fs: &Arc<Filesystem>, path: &str) -> u64 {
    fs.read_to_string(path, &Credentials::root())
        .unwrap_or_else(|e| panic!("{path}: {e}"))
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("{path}: not a number: {e}"))
}

/// A fully-populated match (all 10 fields), `tp_dst` keyed by `i` so every
/// flow is distinct. Rich specs are where path-per-call hurts most: one
/// file per field.
fn rich_spec(i: usize) -> FlowSpec {
    FlowSpec {
        m: FlowMatch {
            in_port: Some(1),
            dl_src: Some(MacAddr::from_seed(1)),
            dl_dst: Some(MacAddr::from_seed(2)),
            dl_type: Some(0x0800),
            nw_tos: Some(0x20),
            nw_proto: Some(6),
            nw_src: Ipv4Prefix::parse("10.0.0.0/24"),
            nw_dst: Ipv4Prefix::parse("10.1.0.0/16"),
            tp_src: Some(1000),
            tp_dst: Some((i % 60_000) as u16),
            ..Default::default()
        },
        actions: vec![Action::out(2)],
        priority: 900,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// E21: the descriptor fast path
// ---------------------------------------------------------------------

#[test]
fn e21_fd_relative_install_is_at_least_5x_cheaper_than_path_per_call() {
    let mut rt = Runtime::new();
    let sw = rt.add_switch_with_driver(0x21, 4, 1, vec![Version::V1_0], Version::V1_0);
    rt.pump().unwrap();
    let fs = rt.yfs.filesystem().clone();
    const N: usize = 1000;

    // Path-per-call: every field file is a fresh open/write/close from /.
    let before = fs.counters().snapshot();
    for i in 0..N {
        rt.yfs
            .write_flow(&sw, &format!("p{i}"), &rich_spec(i))
            .unwrap();
    }
    let path_cost = fs.counters().snapshot().since(&before).total();

    // Descriptor-relative: one open_dir, then mkdirat + one batched
    // submission per flow.
    let before = fs.counters().snapshot();
    let flows = rt.yfs.open_flows_dir(&sw).unwrap();
    for i in 0..N {
        rt.yfs
            .write_flow_at(flows, &format!("d{i}"), &rich_spec(i))
            .unwrap();
    }
    fs.close(flows, rt.yfs.creds()).unwrap();
    let fd_cost = fs.counters().snapshot().since(&before).total();

    assert!(
        fd_cost * 5 <= path_cost,
        "E21 regression: fd path {fd_cost} syscalls vs path-per-call {path_cost} for {N} flows"
    );

    // Same bytes land on disk either way: the fast path is an encoding of
    // the same protocol, not a different one.
    for i in [0usize, 7, 999] {
        let a = rt.yfs.read_flow(&sw, &format!("p{i}")).unwrap();
        let b = rt.yfs.read_flow(&sw, &format!("d{i}")).unwrap();
        assert_eq!(a.m.tp_dst, b.m.tp_dst);
        assert_eq!(a.m.nw_src, b.m.nw_src);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.priority, b.priority);
        assert_eq!(a.version, b.version);
    }
}

// ---------------------------------------------------------------------
// Zero idle ticks: the scheduler side of yanc_poll
// ---------------------------------------------------------------------

/// A poll-aware daemon: one watch, level-triggered readiness. `primed`
/// keeps the first slice unconditional so a restarted instance drains
/// whatever predates its fresh watch.
struct Mailbox {
    watch: WatchGuard,
    primed: bool,
}

impl YancApp for Mailbox {
    fn name(&self) -> &str {
        "mailbox"
    }

    fn run_once(&mut self) -> YancResult<bool> {
        self.primed = true;
        Ok(self.watch.receiver().try_iter().count() > 0)
    }

    fn ready(&self) -> bool {
        !self.primed || self.watch.ready()
    }
}

#[test]
fn idle_supervised_app_consumes_zero_scheduler_ticks() {
    let rt = Runtime::new();
    rt.yfs.enable_introspection().unwrap();
    let fs = rt.yfs.filesystem().clone();
    let root = Credentials::root();
    fs.mkdir_all("/net/mail", Mode::DIR_DEFAULT, &root).unwrap();
    let mut sup = Supervisor::new(rt.yfs.clone()).unwrap();
    let pid = sup
        .spawn(ProcessSpec::new("mailbox"), |ctx| {
            let watch = ctx
                .yfs
                .filesystem()
                .watch("/net/mail")
                .mask(EventMask::ALL)
                .register()?;
            Ok(Box::new(Mailbox {
                watch,
                primed: false,
            }) as Box<dyn YancApp>)
        })
        .unwrap();

    // The Starting process always gets its priming slice.
    sup.tick();
    assert_eq!(sup.state(pid), Some(ProcessState::Running));
    let runs0 = sup.sched_runs(pid);
    assert_eq!(runs0, 1);

    // Ten idle ticks: not one scheduler slice consumed — every one is
    // recorded as a skip instead.
    for _ in 0..10 {
        sup.tick();
    }
    assert_eq!(sup.sched_runs(pid), runs0);
    assert_eq!(sup.sched_skips(pid), 10);

    // The acceptance pin: the same counters, read through /net/.proc.
    let sched = fs
        .read_to_string(&format!("/net/.proc/apps/{pid}/sched"), &root)
        .unwrap();
    assert_eq!(sched, format!("runs:\t{runs0}\nskips:\t10\n"));

    // One event re-arms readiness; exactly one more slice drains it, then
    // the process goes back to costing nothing.
    fs.write_file("/net/mail/m1", b"hi", &root).unwrap();
    sup.tick();
    assert_eq!(sup.sched_runs(pid), runs0 + 1);
    sup.tick();
    assert_eq!(sup.sched_runs(pid), runs0 + 1);
    assert_eq!(sup.sched_skips(pid), 11);
}

// ---------------------------------------------------------------------
// The multiplexer: heterogeneous sources, one wait, fair rotation
// ---------------------------------------------------------------------

#[test]
fn pollset_multiplexes_watch_fd_and_probe_sources_fairly() {
    let rt = Runtime::new();
    rt.yfs.enable_introspection().unwrap();
    let fs = rt.yfs.filesystem().clone();
    let root = Credentials::root();
    fs.mkdir_all("/net/inbox", Mode::DIR_DEFAULT, &root)
        .unwrap();
    fs.write_file("/net/log", b"0123456789", &root).unwrap();

    let watch = fs
        .watch("/net/inbox")
        .mask(EventMask::ALL)
        .register()
        .unwrap();
    let fd = fs.open("/net/log", OpenFlags::read_only(), &root).unwrap();
    let ps = fs.poll_create(&root);
    let t_watch = ps.add(
        PollSource::Watch(watch.receiver().clone()),
        Interest::Readable,
    );
    let t_fd = ps.add(PollSource::Fd(fd), Interest::Readable);
    // The probe floods (a full libyanc ring would look exactly like this);
    // rotation must keep it from starving the other two out of a
    // max_events=1 budget.
    let t_probe = ps.add_probe("ring", || 1_000_000);
    fs.write_file("/net/inbox/m", b"x", &root).unwrap();

    let polls_before = proc_u64(&fs, "/net/.proc/vfs/syscalls/poll");
    let mut seen: HashSet<_> = HashSet::new();
    for _ in 0..3 {
        for ev in ps.wait(1, Duration::ZERO).unwrap() {
            seen.insert(ev.token);
        }
    }
    for t in [t_watch, t_fd, t_probe] {
        assert!(seen.contains(&t), "starved source: {t:?} (saw {seen:?})");
    }
    // Three waits cost exactly three Poll syscalls, visible in /net/.proc —
    // however many sources fired.
    assert_eq!(
        proc_u64(&fs, "/net/.proc/vfs/syscalls/poll"),
        polls_before + 3
    );

    // And the set itself is introspectable.
    let sets = fs.read_to_string("/net/.proc/vfs/pollsets", &root).unwrap();
    assert!(
        sets.contains(&format!("id={} owner=0 sources=3 waits=3", ps.id())),
        "{sets}"
    );
    fs.close(fd, &root).unwrap();
}

// ---------------------------------------------------------------------
// Descriptor-table introspection: .proc/apps/<pid>/fds and lsfd
// ---------------------------------------------------------------------

/// Holds a directory descriptor open for its whole life (the fd shows up
/// in its `.proc` descriptor table).
struct Holder {
    _fd: Fd,
}

impl YancApp for Holder {
    fn name(&self) -> &str {
        "holder"
    }

    fn run_once(&mut self) -> YancResult<bool> {
        Ok(false)
    }
}

#[test]
fn proc_fds_file_and_lsfd_render_the_descriptor_table() {
    let rt = Runtime::new();
    rt.yfs.enable_introspection().unwrap();
    let fs = rt.yfs.filesystem().clone();
    let mut sup = Supervisor::new(rt.yfs.clone()).unwrap();
    let pid = sup
        .spawn(ProcessSpec::new("holder"), |ctx| {
            let fd = ctx
                .yfs
                .filesystem()
                .open_dir("/net/switches", ctx.yfs.creds())?;
            Ok(Box::new(Holder { _fd: fd }) as Box<dyn YancApp>)
        })
        .unwrap();
    sup.tick();

    let text = fs
        .read_to_string(&format!("/net/.proc/apps/{pid}/fds"), &Credentials::root())
        .unwrap();
    assert!(text.contains("/net/switches"), "{text}");
    assert!(text.contains("r-"), "{text}");

    // The one-liner view of the same table.
    let mut sh = Shell::new(fs.clone());
    let out = sh.run(&format!("lsfd {pid}"));
    assert!(out.success(), "{}", out.err);
    assert!(
        out.out.starts_with("PID FD MODE OFFSET PATH\n"),
        "{}",
        out.out
    );
    assert!(out.out.contains("/net/switches"), "{}", out.out);
    // Without a pid it scans every process directory.
    let all = sh.run("lsfd");
    assert!(all.out.contains("/net/switches"), "{}", all.out);
}
