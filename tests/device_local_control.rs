//! §7.1 "Network controller, or network device?" — Kandoo-style
//! device-local control. The paper: vendors ship switches running Linux;
//! "these devices can run yanc and participate in a distributed file
//! system … software running on a switch can make a change locally and
//! this will be seen by remote servers."
//!
//! Node 0 of the cluster *is* the device: its runtime hosts the switch,
//! and a local learning-switch app handles misses right on the box. A
//! remote operator node sees everything the device does (flows, counters)
//! through the shared tree, and can inject policy (a firewall rule) that
//! the device's driver enforces — no bespoke device↔controller protocol,
//! just the replicated file system.

use yanc::{FlowSpec, YancFs};
use yanc_apps::LearningSwitch;
use yanc_dfs::{Backend, Cluster};
use yanc_driver::Runtime;
use yanc_openflow::{FlowMatch, Ipv4Prefix, Version};
use yanc_vfs::Credentials;

fn settle(rt: &mut Runtime, app: &mut LearningSwitch, cluster: &mut Cluster) {
    loop {
        let a = rt.pump().unwrap();
        let b = app.run_once();
        let c = cluster.pump();
        if a <= 1 && !b && c == 0 {
            break;
        }
    }
}

#[test]
fn device_local_app_with_remote_visibility_and_policy() {
    let mut cluster = Cluster::new(2, Backend::Dht, 100, "/net");
    YancFs::init(cluster.nodes[1].fs.clone(), "/net").unwrap();

    // Node 0 is the device: switch + driver + local control app.
    let mut rt = Runtime::with_fs(cluster.nodes[0].fs.clone());
    rt.add_switch_with_driver(0x1, 4, 1, vec![Version::V1_3], Version::V1_3);
    let h1 = rt.net.add_host("h1", "10.0.0.1".parse().unwrap());
    let h2 = rt.net.add_host("h2", "10.0.0.2".parse().unwrap());
    rt.net.attach_host(h1, (0x1, 1), None);
    rt.net.attach_host(h2, (0x1, 2), None);
    rt.pump().unwrap();
    let mut local_app = LearningSwitch::new(rt.yfs.clone()).unwrap();

    // Local traffic is handled entirely on the device.
    rt.net.host_ping(h1, "10.0.0.2".parse().unwrap(), 1);
    settle(&mut rt, &mut local_app, &mut cluster);
    assert_eq!(rt.net.hosts[&h1].ping_replies.len(), 1);
    assert!(local_app.flows_installed >= 1);

    // The remote operator node sees the device's flows through the DFS.
    let remote = YancFs::new(cluster.nodes[1].fs.clone(), "/net");
    let remote_flows = remote.list_flows("sw1").unwrap();
    assert!(
        remote_flows.iter().any(|f| f.starts_with("l2_")),
        "device-installed flows visible remotely: {remote_flows:?}"
    );

    // The remote operator pushes policy: block h1 as a source. The change
    // replicates to the device, whose driver installs it — "work under the
    // direction of [the] global network view".
    let deny = FlowSpec {
        m: FlowMatch {
            dl_type: Some(0x0800),
            nw_src: Some(Ipv4Prefix::host("10.0.0.1".parse().unwrap())),
            ..Default::default()
        },
        actions: Vec::new(),
        priority: 60000,
        ..Default::default()
    };
    remote.write_flow("sw1", "deny_h1", &deny).unwrap();
    settle(&mut rt, &mut local_app, &mut cluster);
    assert!(rt
        .yfs
        .list_flows("sw1")
        .unwrap()
        .contains(&"deny_h1".to_string()));

    // New h1 connections die in hardware, on the device, with no
    // controller round trip.
    let replies_before = rt.net.hosts[&h1].ping_replies.len();
    rt.net.host_ping(h1, "10.0.0.2".parse().unwrap(), 2);
    settle(&mut rt, &mut local_app, &mut cluster);
    assert_eq!(
        rt.net.hosts[&h1].ping_replies.len(),
        replies_before,
        "policy enforced"
    );

    // And the device's own bookkeeping flows back to the operator: counters
    // polled on the device are readable remotely.
    rt.poll_stats().unwrap();
    settle(&mut rt, &mut local_app, &mut cluster);
    let remote_count = remote.filesystem().read_to_string(
        "/net/switches/sw1/counters/flow_packets",
        &Credentials::root(),
    );
    assert!(
        remote_count.is_ok(),
        "device counters replicate to the operator"
    );
}
