//! E14 + E15 correctness legs: libyanc's fastpath installs the same flows
//! as the file path with drastically fewer simulated syscalls, and the
//! packet bus fans out without copying. (The performance legs live in the
//! criterion benches.)

use bytes::Bytes;
use libyanc::{FastPacketIn, FlowChannel, PacketBus};
use yanc::FlowSpec;
use yanc_driver::Runtime;
use yanc_openflow::{Action, FlowMatch, Version};

fn spec(p: u16) -> FlowSpec {
    FlowSpec {
        m: FlowMatch {
            dl_type: Some(0x0800),
            nw_proto: Some(6),
            tp_dst: Some(p),
            ..Default::default()
        },
        actions: vec![Action::out(2)],
        priority: 1000 + p,
        ..Default::default()
    }
}

#[test]
fn e14_fastpath_installs_with_zero_syscalls() {
    let mut rt = Runtime::new();
    rt.add_switch_with_driver(0x1, 4, 1, vec![Version::V1_3], Version::V1_3);
    rt.pump().unwrap();
    let ch = FlowChannel::new(1024);
    rt.drivers[0].attach_fastpath(ch.clone());

    let fs = rt.yfs.filesystem().clone();
    let before = fs.counters().snapshot();
    for i in 0..50u16 {
        ch.install("sw1", &format!("f{i}"), spec(i)).unwrap();
    }
    rt.pump().unwrap();
    let used = fs.counters().snapshot().since(&before);
    assert_eq!(rt.net.switches[&0x1].flow_count(), 50);
    assert_eq!(
        used.total(),
        0,
        "fastpath must not touch the fs: {}",
        used.report()
    );

    // The slow path for the same 50 flows costs hundreds of syscalls.
    let before = fs.counters().snapshot();
    for i in 0..50u16 {
        rt.yfs
            .write_flow("sw1", &format!("slow{i}"), &spec(1000 + i))
            .unwrap();
    }
    rt.pump().unwrap();
    let slow = fs.counters().snapshot().since(&before);
    assert_eq!(rt.net.switches[&0x1].flow_count(), 100);
    assert!(
        slow.total() > 50 * 10,
        "file path should cost >10 syscalls per flow, got {}",
        slow.total()
    );
}

#[test]
fn e14_fastpath_delete_and_replace() {
    let mut rt = Runtime::new();
    rt.add_switch_with_driver(0x1, 4, 1, vec![Version::V1_3], Version::V1_3);
    rt.pump().unwrap();
    let ch = FlowChannel::new(64);
    rt.drivers[0].attach_fastpath(ch.clone());
    ch.install("sw1", "a", spec(22)).unwrap();
    rt.pump().unwrap();
    assert_eq!(rt.net.switches[&0x1].flow_count(), 1);
    // Replace with a different match: old entry goes away.
    ch.install("sw1", "a", spec(23)).unwrap();
    rt.pump().unwrap();
    assert_eq!(rt.net.switches[&0x1].flow_count(), 1);
    // Delete by name.
    ch.delete("sw1", "a").unwrap();
    rt.pump().unwrap();
    assert_eq!(rt.net.switches[&0x1].flow_count(), 0);
}

#[test]
fn e14_batch_install() {
    let mut rt = Runtime::new();
    rt.add_switch_with_driver(0x1, 4, 1, vec![Version::V1_3], Version::V1_3);
    rt.pump().unwrap();
    let ch = FlowChannel::new(4096);
    rt.drivers[0].attach_fastpath(ch.clone());
    let flows: Vec<(String, FlowSpec)> = (0..500u16).map(|i| (format!("b{i}"), spec(i))).collect();
    ch.install_batch("sw1", flows).unwrap();
    rt.pump().unwrap();
    assert_eq!(rt.net.switches[&0x1].flow_count(), 500);
}

#[test]
fn e15_zero_copy_fanout_shares_storage() {
    let bus = PacketBus::new(64);
    let rings: Vec<_> = (0..16).map(|i| bus.subscribe(&format!("app{i}"))).collect();
    let payload = Bytes::from(vec![0xabu8; 9000]); // jumbo frame
    let pkt = FastPacketIn {
        switch: "sw1".into(),
        in_port: 1,
        buffer_id: None,
        data: payload.clone(),
    };
    assert_eq!(bus.publish(&pkt), 16);
    for r in &rings {
        let got = r.pop().unwrap();
        assert_eq!(got.data.len(), 9000);
        // Same backing storage — no copies were made for the fan-out.
        assert_eq!(got.data.as_ptr(), payload.as_ptr());
    }
}

#[test]
fn e15_file_path_fanout_copies_by_contrast() {
    // The fs path stores an independent hex copy per subscriber, visible
    // as distinct file contents — good for shell debugging, expensive for
    // bulk data. This is the measured contrast, not a bug.
    let yfs = yanc::YancFs::init(std::sync::Arc::new(yanc_vfs::Filesystem::new()), "/net").unwrap();
    let subs: Vec<_> = (0..4)
        .map(|i| yfs.subscribe_events(&format!("a{i}")).unwrap())
        .collect();
    let rec = yanc::PacketInRecord {
        switch: "sw1".into(),
        in_port: 1,
        buffer_id: None,
        reason: "no_match".into(),
        data: Bytes::from(vec![7u8; 1500]),
    };
    let before = yfs.filesystem().counters().snapshot();
    yfs.publish_packet_in(&rec).unwrap();
    let cost = yfs.filesystem().counters().snapshot().since(&before);
    // Cost scales with subscriber count (≥ 5 fs ops per subscriber).
    assert!(cost.total() >= 4 * 5, "{}", cost.report());
    for s in &subs {
        assert_eq!(s.drain_all().len(), 1);
    }
}

#[test]
fn e14_fs_commit_supersedes_fastpath_flow_of_same_name() {
    // Regression: a fastpath install must not block a later fs-side commit
    // of the same flow name (the fs, as the durable view, wins).
    let mut rt = Runtime::new();
    rt.add_switch_with_driver(0x1, 4, 1, vec![Version::V1_3], Version::V1_3);
    rt.pump().unwrap();
    let ch = FlowChannel::new(16);
    rt.drivers[0].attach_fastpath(ch.clone());
    ch.install("sw1", "shared", spec(22)).unwrap();
    rt.pump().unwrap();
    assert_eq!(rt.net.switches[&0x1].flow_count(), 1);
    // Now the same name is committed through the file system with a
    // different match: hardware must follow the fs.
    rt.yfs.write_flow("sw1", "shared", &spec(23)).unwrap();
    rt.pump().unwrap();
    assert_eq!(rt.net.switches[&0x1].flow_count(), 1);
    let entry = rt.net.switches[&0x1]
        .table(0)
        .unwrap()
        .iter()
        .next()
        .unwrap()
        .clone();
    assert_eq!(
        entry.m.tp_dst,
        Some(23),
        "fs commit replaced the fastpath entry"
    );
}
