//! Middlebox state as files (paper §7.2).
//!
//! "For a middlebox with fixed functionality … a driver can be written to
//! populate and interact with the file system … We envision that we can use
//! command line utilities such as `cp` or `mv` to move state around rather
//! than custom protocols."
//!
//! A [`MiddleboxInstance`] keeps its per-connection state table as
//! directories under `/net/middleboxes/<name>/state/<conn>/`, one file per
//! field. Elastic scaling (Split/Merge-style) is then literally
//! `mv /net/middleboxes/a/state/<conn> /net/middleboxes/b/state/` — the
//! receiving instance serves the connection on its next lookup, because its
//! *only* source of truth is the file tree.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use yanc::YancFs;
use yanc_vfs::Mode;

/// One NAT-style connection record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnState {
    /// Inside endpoint.
    pub inside: (Ipv4Addr, u16),
    /// Outside endpoint.
    pub outside: (Ipv4Addr, u16),
    /// Translated source port.
    pub nat_port: u16,
    /// Packets processed.
    pub hits: u64,
}

/// A middlebox instance whose state table lives in the file system.
pub struct MiddleboxInstance {
    yfs: YancFs,
    /// Instance name.
    pub name: String,
}

impl MiddleboxInstance {
    /// Create (or reopen) the instance's directories.
    pub fn new(yfs: YancFs, name: &str) -> yanc::YancResult<Self> {
        let dir = yfs.root().join("middleboxes").join(name).join("state");
        yfs.filesystem()
            .mkdir_all(dir.as_str(), Mode::DIR_DEFAULT, yfs.creds())?;
        Ok(MiddleboxInstance {
            yfs,
            name: name.to_string(),
        })
    }

    fn state_dir(&self) -> yanc_vfs::VPath {
        self.yfs
            .root()
            .join("middleboxes")
            .join(&self.name)
            .join("state")
    }

    /// Record a connection.
    pub fn add_conn(&self, conn_id: &str, st: &ConnState) -> yanc::YancResult<()> {
        let dir = self.state_dir().join(conn_id);
        let fs = self.yfs.filesystem();
        fs.mkdir_all(dir.as_str(), Mode::DIR_DEFAULT, self.yfs.creds())?;
        let fields = [
            ("inside", format!("{}:{}", st.inside.0, st.inside.1)),
            ("outside", format!("{}:{}", st.outside.0, st.outside.1)),
            ("nat_port", st.nat_port.to_string()),
            ("hits", st.hits.to_string()),
        ];
        for (k, v) in fields {
            fs.write_file(dir.join(k).as_str(), v.as_bytes(), self.yfs.creds())?;
        }
        Ok(())
    }

    /// Look a connection up — purely from the file tree, so state moved
    /// here by `mv` is immediately served.
    pub fn lookup(&self, conn_id: &str) -> Option<ConnState> {
        let dir = self.state_dir().join(conn_id);
        let fs = self.yfs.filesystem();
        let read = |f: &str| {
            fs.read_to_string(dir.join(f).as_str(), self.yfs.creds())
                .ok()
        };
        let parse_ep = |s: String| -> Option<(Ipv4Addr, u16)> {
            let (ip, port) = s.trim().split_once(':')?;
            Some((ip.parse().ok()?, port.parse().ok()?))
        };
        Some(ConnState {
            inside: parse_ep(read("inside")?)?,
            outside: parse_ep(read("outside")?)?,
            nat_port: read("nat_port")?.trim().parse().ok()?,
            hits: read("hits")?.trim().parse().ok()?,
        })
    }

    /// Process one packet for `conn_id`: bump the hits file. Returns the
    /// translation port, or `None` if this instance doesn't own the state.
    pub fn process(&self, conn_id: &str) -> Option<u16> {
        let st = self.lookup(conn_id)?;
        let dir = self.state_dir().join(conn_id);
        let _ = self.yfs.filesystem().write_file(
            dir.join("hits").as_str(),
            (st.hits + 1).to_string().as_bytes(),
            self.yfs.creds(),
        );
        Some(st.nat_port)
    }

    /// Connections currently owned.
    pub fn connections(&self) -> Vec<String> {
        self.yfs
            .filesystem()
            .readdir(self.state_dir().as_str(), self.yfs.creds())
            .map(|es| es.into_iter().map(|e| e.name).collect())
            .unwrap_or_default()
    }

    /// Full state dump (for migration verification).
    pub fn dump(&self) -> BTreeMap<String, ConnState> {
        self.connections()
            .into_iter()
            .filter_map(|c| self.lookup(&c).map(|s| (c, s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use yanc_coreutils::Shell;
    use yanc_vfs::Filesystem;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn conn(n: u16) -> ConnState {
        ConnState {
            inside: (ip("192.168.1.10"), 5000 + n),
            outside: (ip("8.8.8.8"), 443),
            nat_port: 40000 + n,
            hits: 0,
        }
    }

    #[test]
    fn state_roundtrip_and_processing() {
        let y = YancFs::init(Arc::new(Filesystem::new()), "/net").unwrap();
        let mb = MiddleboxInstance::new(y, "nat-a").unwrap();
        mb.add_conn("c1", &conn(1)).unwrap();
        assert_eq!(mb.lookup("c1").unwrap().nat_port, 40001);
        assert_eq!(mb.process("c1"), Some(40001));
        assert_eq!(mb.lookup("c1").unwrap().hits, 1);
        assert_eq!(mb.process("missing"), None);
        assert_eq!(mb.connections(), vec!["c1"]);
    }

    #[test]
    fn elastic_scale_out_with_mv() {
        // Split/Merge via coreutils: half the connections move to a new
        // instance with `mv`, and it serves them immediately.
        let y = YancFs::init(Arc::new(Filesystem::new()), "/net").unwrap();
        let a = MiddleboxInstance::new(y.clone(), "nat-a").unwrap();
        let b = MiddleboxInstance::new(y.clone(), "nat-b").unwrap();
        for i in 1..=4 {
            a.add_conn(&format!("c{i}"), &conn(i)).unwrap();
        }
        let mut sh = Shell::new(y.filesystem().clone());
        for i in 1..=2 {
            let out = sh.run(&format!(
                "mv /net/middleboxes/nat-a/state/c{i} /net/middleboxes/nat-b/state/"
            ));
            assert!(out.success(), "{}", out.err);
        }
        assert_eq!(a.connections(), vec!["c3", "c4"]);
        assert_eq!(b.connections(), vec!["c1", "c2"]);
        // b serves the moved connections with intact translations.
        assert_eq!(b.process("c1"), Some(40001));
        assert_eq!(b.process("c2"), Some(40002));
        assert_eq!(a.process("c1"), None);
        // And a still serves what it kept.
        assert_eq!(a.process("c4"), Some(40004));
    }

    #[test]
    fn replication_with_cp() {
        // `cp -r` clones state (e.g. warm standby).
        let y = YancFs::init(Arc::new(Filesystem::new()), "/net").unwrap();
        let a = MiddleboxInstance::new(y.clone(), "fw-a").unwrap();
        let _standby = MiddleboxInstance::new(y.clone(), "fw-standby").unwrap();
        a.add_conn("c9", &conn(9)).unwrap();
        let mut sh = Shell::new(y.filesystem().clone());
        let out = sh.run("cp -r /net/middleboxes/fw-a/state/c9 /net/middleboxes/fw-standby/state/");
        assert!(out.success(), "{}", out.err);
        let standby = MiddleboxInstance::new(y, "fw-standby").unwrap();
        assert_eq!(standby.lookup("c9").unwrap(), conn(9));
        // Divergent processing afterwards: copies are independent.
        standby.process("c9");
        assert_eq!(a.lookup("c9").unwrap().hits, 0);
        assert_eq!(standby.lookup("c9").unwrap().hits, 1);
    }
}
