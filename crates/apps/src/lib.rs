//! # yanc-apps — network applications over the yanc file system
//!
//! The application suite the paper describes: every program here is an
//! ordinary file-system client — it reads and writes `/net`, watches for
//! changes, and never talks OpenFlow (that's the drivers' job). Apps come
//! in the paper's three shapes (§2):
//!
//! * **daemons** — [`TopologyDaemon`] (LLDP discovery → `peer` symlinks),
//!   [`RouterDaemon`] (reactive exact-match paths), [`LearningSwitch`],
//!   [`ArpResponder`], [`DhcpDaemon`], [`SliceDaemon`] /
//!   [`BigSwitchDaemon`] (view translation);
//! * **occasional programs** — [`audit()`](audit::audit) and
//!   [`account()`](audit::account), cron-style
//!   passes over the tree;
//! * **shell scripts** — the static [`flow_pusher`], which is literally
//!   `mkdir` + `echo` commands;
//! * **staged sessions** — [`WhatIf`], which edits a copy-on-write overlay
//!   view of `/net`, validates the merged result, and commits it as one
//!   atomic transaction (§3.4 views).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod flow_pusher;
pub mod fw;
pub mod l2;
pub mod lb;
pub mod middlebox;
pub mod protocols;
pub mod router;
pub mod slicer;
pub mod topology;
pub mod whatif;

pub use audit::{account, audit, AuditReport, Finding};
pub use flow_pusher::{parse_pusher_text, push, render_script, PushEntry};
pub use fw::{parse_rules, DenyRule, Firewall};
pub use l2::LearningSwitch;
pub use lb::{define_pool, Backend, LoadBalancer};
pub use middlebox::{ConnState, MiddleboxInstance};
pub use protocols::{host_registry, register_host, ArpResponder, DhcpDaemon};
pub use router::RouterDaemon;
pub use slicer::{intersect, BigSwitchDaemon, SliceDaemon, BIG_SWITCH};
pub use topology::{ingress_ports, shortest_path, TopologyDaemon};
pub use whatif::WhatIf;
