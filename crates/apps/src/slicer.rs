//! View applications: the slicer and the big-switch virtualizer (paper
//! §4.2).
//!
//! "To create a new view, an application effectively interacts with two
//! portions of the file system simultaneously — providing a translation
//! between them." Both daemons here do exactly that: they watch the view's
//! subtree (which looks like a miniature `/net`) and translate committed
//! flows down into the physical `switches/` directory. Tenants can be
//! confined to their view with a mount namespace and never see the
//! physical tree.
//!
//! * [`SliceDaemon`] — a slice is "a subset of the hardware and header
//!   space … the original topology is not changed": member switches are
//!   mirrored into the view, and every flow is intersected with the
//!   slice's header-space filter (flows escaping the slice are rejected
//!   with an `error` file).
//! * [`BigSwitchDaemon`] — network virtualization: all member edge ports
//!   become ports of one virtual switch `big0`; a flow `in_port=va →
//!   out=vb` is compiled into per-hop physical flows along the shortest
//!   path.

use yanc::{FlowSpec, SchemaPos, ViewConfig, YancFs};
use yanc_openflow::{Action, FlowMatch, Ipv4Prefix};
use yanc_vfs::{Event, EventKind, EventMask, WatchGuard};

use crate::topology::{ingress_ports, shortest_path};

/// Intersect two matches. `None` when they are disjoint (a flow outside
/// the slice's header space).
pub fn intersect(filter: &FlowMatch, m: &FlowMatch) -> Option<FlowMatch> {
    fn f<T: PartialEq + Copy>(a: Option<T>, b: Option<T>) -> Result<Option<T>, ()> {
        match (a, b) {
            (None, x) | (x, None) => Ok(x),
            (Some(x), Some(y)) if x == y => Ok(Some(x)),
            _ => Err(()),
        }
    }
    fn pre(a: Option<Ipv4Prefix>, b: Option<Ipv4Prefix>) -> Result<Option<Ipv4Prefix>, ()> {
        match (a, b) {
            (None, x) | (x, None) => Ok(x),
            (Some(x), Some(y)) => {
                if x.prefix_len <= y.prefix_len && x.contains(y.addr) {
                    Ok(Some(y)) // y is the narrower
                } else if y.prefix_len <= x.prefix_len && y.contains(x.addr) {
                    Ok(Some(x))
                } else {
                    Err(())
                }
            }
        }
    }
    let r = (|| -> Result<FlowMatch, ()> {
        Ok(FlowMatch {
            in_port: f(filter.in_port, m.in_port)?,
            dl_src: f(filter.dl_src, m.dl_src)?,
            dl_dst: f(filter.dl_dst, m.dl_dst)?,
            dl_vlan: f(filter.dl_vlan, m.dl_vlan)?,
            dl_vlan_pcp: f(filter.dl_vlan_pcp, m.dl_vlan_pcp)?,
            dl_type: f(filter.dl_type, m.dl_type)?,
            nw_tos: f(filter.nw_tos, m.nw_tos)?,
            nw_proto: f(filter.nw_proto, m.nw_proto)?,
            nw_src: pre(filter.nw_src, m.nw_src)?,
            nw_dst: pre(filter.nw_dst, m.nw_dst)?,
            tp_src: f(filter.tp_src, m.tp_src)?,
            tp_dst: f(filter.tp_dst, m.tp_dst)?,
        })
    })();
    r.ok()
}

fn write_error(yfs: &YancFs, sw: &str, flow: &str, msg: &str) {
    let p = yfs.flow_dir(sw, flow).join("error");
    let _ = yfs
        .filesystem()
        .write_file(p.as_str(), msg.as_bytes(), yfs.creds());
}

/// The header-space slicer.
pub struct SliceDaemon {
    phys: YancFs,
    virt: YancFs,
    cfg: ViewConfig,
    view: String,
    watch: WatchGuard,
    /// Versions already translated, keyed by `(switch, flow)`.
    seen: std::collections::HashMap<(String, String), u64>,
    /// Flows translated down (metrics).
    pub pushed: usize,
    /// Flows rejected as outside the slice (metrics).
    pub rejected: usize,
}

impl SliceDaemon {
    /// Start serving an existing view (created + configured beforehand).
    /// Mirrors the member switches into the view's `switches/`.
    pub fn new(phys: YancFs, view: &str) -> yanc::YancResult<Self> {
        let cfg = phys.read_view_config(view)?;
        let view_root = phys.view_dir(view);
        let virt = YancFs::new(phys.filesystem().clone(), view_root.as_str());
        // Mirror member switches (skeletons come from the semantic hook).
        for sw in &cfg.switches {
            let dpid = phys.switch_dpid(sw).unwrap_or(0);
            virt.create_switch(sw, dpid, 0, 0, 0, 1)?;
            for p in phys.list_ports(sw).unwrap_or_default() {
                virt.create_port(sw, p, "00:00:00:00:00:00", 0, 0)?;
            }
        }
        let watch = phys
            .filesystem()
            .watch(virt.switches_dir().as_str())
            .subtree()
            .mask(EventMask::ALL)
            .register()?;
        Ok(SliceDaemon {
            phys,
            virt,
            cfg,
            view: view.to_string(),
            watch,
            seen: std::collections::HashMap::new(),
            pushed: 0,
            rejected: 0,
        })
    }

    /// Drain view events, translating flow commits/deletes downward.
    pub fn run_once(&mut self) -> bool {
        let events: Vec<Event> = self.watch.receiver().try_iter().collect();
        let mut worked = false;
        for ev in events {
            let pos = yanc::classify(self.virt.root(), &ev.path);
            match (ev.kind, pos) {
                (EventKind::CloseWrite, SchemaPos::FlowFile { switch, flow, file })
                    if file == "version" =>
                {
                    worked = true;
                    self.push_flow(&switch, &flow);
                }
                (EventKind::Delete, SchemaPos::FlowDir { switch, flow }) => {
                    worked = true;
                    let _ = self
                        .phys
                        .delete_flow(&switch, &format!("{}.{flow}", self.view));
                }
                _ => {}
            }
        }
        worked
    }

    fn push_flow(&mut self, sw: &str, flow: &str) {
        if !self.cfg.switches.iter().any(|s| s == sw) {
            return;
        }
        let spec = match self.virt.read_flow(sw, flow) {
            Ok(s) if s.version > 0 => s,
            _ => return,
        };
        let key = (sw.to_string(), flow.to_string());
        if self.seen.get(&key).is_some_and(|v| *v >= spec.version) {
            return;
        }
        self.seen.insert(key, spec.version);
        match intersect(&self.cfg.filter, &spec.m) {
            Some(merged) => {
                let phys_spec = FlowSpec { m: merged, ..spec };
                let name = format!("{}.{flow}", self.view);
                if self.phys.write_flow(sw, &name, &phys_spec).is_ok() {
                    self.pushed += 1;
                }
            }
            None => {
                self.rejected += 1;
                write_error(
                    &self.virt,
                    sw,
                    flow,
                    "flow escapes the slice's header space",
                );
            }
        }
    }
}

/// The big-switch virtualizer.
pub struct BigSwitchDaemon {
    phys: YancFs,
    virt: YancFs,
    view: String,
    /// Virtual port v (1-based index) → physical `(switch, port)`.
    pub port_map: Vec<(String, u16)>,
    watch: WatchGuard,
    /// Versions already compiled, keyed by flow name.
    seen: std::collections::HashMap<String, u64>,
    /// Flows compiled to physical paths (metrics).
    pub pushed: usize,
    /// Flows rejected (metrics).
    pub rejected: usize,
}

/// The virtual switch's name inside a big-switch view.
pub const BIG_SWITCH: &str = "big0";

impl BigSwitchDaemon {
    /// Start serving a big-switch view: enumerate member edge ports (ports
    /// without a `peer`) into the virtual switch `big0`.
    pub fn new(phys: YancFs, view: &str) -> yanc::YancResult<Self> {
        let cfg = phys.read_view_config(view)?;
        let view_root = phys.view_dir(view);
        let virt = YancFs::new(phys.filesystem().clone(), view_root.as_str());
        virt.create_switch(BIG_SWITCH, 0xb16, 0, 0, 0, 1)?;
        let mut port_map = Vec::new();
        for sw in &cfg.switches {
            for p in phys.list_ports(sw)? {
                if phys.peer(sw, p)?.is_none() {
                    port_map.push((sw.clone(), p));
                }
            }
        }
        for (v, (sw, p)) in port_map.iter().enumerate() {
            let vport = (v + 1) as u16;
            virt.create_port(BIG_SWITCH, vport, "00:00:00:00:00:00", 0, 0)?;
            let map = virt.port_dir(BIG_SWITCH, vport).join("map");
            virt.filesystem().write_file(
                map.as_str(),
                format!("{sw}:{p}").as_bytes(),
                virt.creds(),
            )?;
        }
        let watch = phys
            .filesystem()
            .watch(virt.switches_dir().as_str())
            .subtree()
            .mask(EventMask::ALL)
            .register()?;
        Ok(BigSwitchDaemon {
            phys,
            virt,
            view: view.to_string(),
            port_map,
            watch,
            seen: std::collections::HashMap::new(),
            pushed: 0,
            rejected: 0,
        })
    }

    /// Drain view events, compiling flow commits into physical paths.
    pub fn run_once(&mut self) -> bool {
        let events: Vec<Event> = self.watch.receiver().try_iter().collect();
        let mut worked = false;
        for ev in events {
            if ev.kind != EventKind::CloseWrite {
                continue;
            }
            if let SchemaPos::FlowFile { switch, flow, file } =
                yanc::classify(self.virt.root(), &ev.path)
            {
                if file == "version" && switch == BIG_SWITCH {
                    worked = true;
                    self.compile(&flow);
                }
            }
        }
        worked
    }

    fn vport(&self, v: u16) -> Option<&(String, u16)> {
        self.port_map.get(usize::from(v).checked_sub(1)?)
    }

    fn compile(&mut self, flow: &str) {
        let spec = match self.virt.read_flow(BIG_SWITCH, flow) {
            Ok(s) if s.version > 0 => s,
            _ => return,
        };
        if self.seen.get(flow).is_some_and(|v| *v >= spec.version) {
            return;
        }
        self.seen.insert(flow.to_string(), spec.version);
        let Some(v_in) = spec.m.in_port else {
            self.rejected += 1;
            write_error(
                &self.virt,
                BIG_SWITCH,
                flow,
                "big-switch flows need match.in_port",
            );
            return;
        };
        let outs: Vec<u16> = spec
            .actions
            .iter()
            .filter_map(|a| match a {
                Action::Output { port, .. } => Some(*port),
                _ => None,
            })
            .collect();
        let [v_out] = outs[..] else {
            self.rejected += 1;
            write_error(
                &self.virt,
                BIG_SWITCH,
                flow,
                "big-switch flows need exactly one action.out",
            );
            return;
        };
        let (Some((src_sw, src_port)), Some((dst_sw, dst_port))) =
            (self.vport(v_in).cloned(), self.vport(v_out).cloned())
        else {
            self.rejected += 1;
            write_error(&self.virt, BIG_SWITCH, flow, "unknown virtual port");
            return;
        };
        let Ok(Some(hops)) = shortest_path(&self.phys, &src_sw, &dst_sw) else {
            self.rejected += 1;
            write_error(
                &self.virt,
                BIG_SWITCH,
                flow,
                "no physical path between endpoints",
            );
            return;
        };
        let Ok(ingresses) = ingress_ports(&self.phys, &hops) else {
            self.rejected += 1;
            return;
        };
        if ingresses.len() != hops.len() {
            self.rejected += 1;
            write_error(
                &self.virt,
                BIG_SWITCH,
                flow,
                "topology changed during compilation",
            );
            return;
        }
        // Build the per-hop plan: (switch, ingress, egress).
        let mut plan: Vec<(String, u16, u16)> = Vec::new();
        let mut in_port = src_port;
        for (i, (sw, egress)) in hops.iter().enumerate() {
            plan.push((sw.clone(), in_port, *egress));
            in_port = ingresses[i].1;
        }
        plan.push((dst_sw, in_port, dst_port));
        for (sw, inp, outp) in plan {
            let m = FlowMatch {
                in_port: Some(inp),
                ..spec.m
            };
            let phys_spec = FlowSpec {
                m,
                actions: vec![Action::out(outp)],
                priority: spec.priority,
                idle_timeout: spec.idle_timeout,
                hard_timeout: spec.hard_timeout,
                cookie: spec.cookie,
                goto_table: None,
                version: 0,
            };
            let name = format!("{}.{flow}.{sw}", self.view);
            let _ = self.phys.write_flow(&sw, &name, &phys_spec);
        }
        self.pushed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc::ViewKind;

    fn ipf(s: &str) -> Option<Ipv4Prefix> {
        Ipv4Prefix::parse(s)
    }

    #[test]
    fn intersect_semantics() {
        let ssh = FlowMatch {
            tp_dst: Some(22),
            ..Default::default()
        };
        let any = FlowMatch::any();
        assert_eq!(intersect(&ssh, &any), Some(ssh));
        assert_eq!(intersect(&any, &ssh), Some(ssh));
        // Conflicting scalar: disjoint.
        let http = FlowMatch {
            tp_dst: Some(80),
            ..Default::default()
        };
        assert_eq!(intersect(&ssh, &http), None);
        // Prefixes: narrower wins; disjoint fails.
        let wide = FlowMatch {
            nw_dst: ipf("10.0.0.0/8"),
            ..Default::default()
        };
        let narrow = FlowMatch {
            nw_dst: ipf("10.1.0.0/16"),
            ..Default::default()
        };
        assert_eq!(
            intersect(&wide, &narrow).unwrap().nw_dst,
            ipf("10.1.0.0/16")
        );
        assert_eq!(
            intersect(&narrow, &wide).unwrap().nw_dst,
            ipf("10.1.0.0/16")
        );
        let other = FlowMatch {
            nw_dst: ipf("11.0.0.0/8"),
            ..Default::default()
        };
        assert_eq!(intersect(&narrow, &other), None);
    }

    /// Build: 2 switches, view slicing ssh over both.
    fn slice_fixture() -> (YancFs, SliceDaemon) {
        let y = YancFs::init(std::sync::Arc::new(yanc_vfs::Filesystem::new()), "/net").unwrap();
        for (sw, d) in [("sw1", 1u64), ("sw2", 2)] {
            y.create_switch(sw, d, 0, 0, 0, 1).unwrap();
            for p in 1..=2 {
                y.create_port(sw, p, "02:00:00:00:00:01", 0, 0).unwrap();
            }
        }
        y.create_view("ssh").unwrap();
        y.write_view_config(
            "ssh",
            &ViewConfig {
                kind: ViewKind::Slice,
                switches: vec!["sw1".into(), "sw2".into()],
                filter: FlowMatch {
                    dl_type: Some(0x0800),
                    nw_proto: Some(6),
                    tp_dst: Some(22),
                    ..Default::default()
                },
            },
        )
        .unwrap();
        let d = SliceDaemon::new(y.clone(), "ssh").unwrap();
        (y, d)
    }

    #[test]
    fn slice_mirrors_switches_and_translates() {
        let (y, mut d) = slice_fixture();
        // The view contains mirrored switches.
        let virt = YancFs::new(y.filesystem().clone(), "/net/views/ssh");
        assert_eq!(virt.list_switches().unwrap(), vec!["sw1", "sw2"]);
        // A tenant writes a flow inside the view (wildcard match).
        let spec = FlowSpec {
            actions: vec![Action::out(2)],
            priority: 10,
            ..Default::default()
        };
        virt.write_flow("sw1", "fwd", &spec).unwrap();
        assert!(d.run_once());
        assert_eq!(d.pushed, 1);
        // The physical flow is the intersection: confined to ssh.
        let phys = y.read_flow("sw1", "ssh.fwd").unwrap();
        assert_eq!(phys.m.tp_dst, Some(22));
        assert_eq!(phys.m.nw_proto, Some(6));
        assert_eq!(phys.actions, vec![Action::out(2)]);
        // Deleting in the view deletes physically.
        virt.delete_flow("sw1", "fwd").unwrap();
        d.run_once();
        assert!(!y
            .list_flows("sw1")
            .unwrap()
            .contains(&"ssh.fwd".to_string()));
    }

    #[test]
    fn slice_rejects_escaping_flows() {
        let (y, mut d) = slice_fixture();
        let virt = YancFs::new(y.filesystem().clone(), "/net/views/ssh");
        // Tenant tries to capture HTTP — outside the ssh slice.
        let spec = FlowSpec {
            m: FlowMatch {
                dl_type: Some(0x0800),
                nw_proto: Some(6),
                tp_dst: Some(80),
                ..Default::default()
            },
            actions: vec![Action::out(1)],
            ..Default::default()
        };
        virt.write_flow("sw1", "sneaky", &spec).unwrap();
        d.run_once();
        assert_eq!(d.rejected, 1);
        assert_eq!(d.pushed, 0);
        let err = y
            .filesystem()
            .read_to_string("/net/views/ssh/switches/sw1/flows/sneaky/error", y.creds())
            .unwrap();
        assert!(err.contains("header space"));
        assert!(y.list_flows("sw1").unwrap().is_empty());
    }

    #[test]
    fn big_switch_compiles_paths() {
        let y = YancFs::init(std::sync::Arc::new(yanc_vfs::Filesystem::new()), "/net").unwrap();
        // sw1 -(p3/p3)- sw2; edge ports: sw1:p1,p2 and sw2:p1,p2.
        for (sw, d) in [("sw1", 1u64), ("sw2", 2)] {
            y.create_switch(sw, d, 0, 0, 0, 1).unwrap();
            for p in 1..=3 {
                y.create_port(sw, p, "02:00:00:00:00:01", 0, 0).unwrap();
            }
        }
        y.set_peer("sw1", 3, "sw2", 3).unwrap();
        y.set_peer("sw2", 3, "sw1", 3).unwrap();
        y.create_view("onebig").unwrap();
        y.write_view_config(
            "onebig",
            &ViewConfig {
                kind: ViewKind::BigSwitch,
                switches: vec!["sw1".into(), "sw2".into()],
                filter: FlowMatch::any(),
            },
        )
        .unwrap();
        let mut d = BigSwitchDaemon::new(y.clone(), "onebig").unwrap();
        // Virtual ports: sw1p1, sw1p2, sw2p1, sw2p2 → v1..v4.
        assert_eq!(d.port_map.len(), 4);
        assert_eq!(d.port_map[0], ("sw1".to_string(), 1));
        assert_eq!(d.port_map[3], ("sw2".to_string(), 2));

        let virt = YancFs::new(y.filesystem().clone(), "/net/views/onebig");
        assert_eq!(virt.list_switches().unwrap(), vec![BIG_SWITCH]);
        // v1 (sw1:1) → v4 (sw2:2): should compile into flows on both.
        let spec = FlowSpec {
            m: FlowMatch {
                in_port: Some(1),
                ..Default::default()
            },
            actions: vec![Action::out(4)],
            priority: 50,
            ..Default::default()
        };
        virt.write_flow(BIG_SWITCH, "cross", &spec).unwrap();
        assert!(d.run_once());
        assert_eq!(d.pushed, 1);
        let f1 = y.read_flow("sw1", "onebig.cross.sw1").unwrap();
        assert_eq!(f1.m.in_port, Some(1));
        assert_eq!(f1.actions, vec![Action::out(3)]); // toward sw2
        let f2 = y.read_flow("sw2", "onebig.cross.sw2").unwrap();
        assert_eq!(f2.m.in_port, Some(3)); // arrives on the trunk
        assert_eq!(f2.actions, vec![Action::out(2)]); // out the edge
    }

    #[test]
    fn big_switch_rejects_unsupported_shapes() {
        let y = YancFs::init(std::sync::Arc::new(yanc_vfs::Filesystem::new()), "/net").unwrap();
        y.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
        y.create_port("sw1", 1, "02:00:00:00:00:01", 0, 0).unwrap();
        y.create_view("v").unwrap();
        y.write_view_config(
            "v",
            &ViewConfig {
                kind: ViewKind::BigSwitch,
                switches: vec!["sw1".into()],
                filter: FlowMatch::any(),
            },
        )
        .unwrap();
        let mut d = BigSwitchDaemon::new(y.clone(), "v").unwrap();
        let virt = YancFs::new(y.filesystem().clone(), "/net/views/v");
        // No in_port.
        let spec = FlowSpec {
            actions: vec![Action::out(1)],
            ..Default::default()
        };
        virt.write_flow(BIG_SWITCH, "bad", &spec).unwrap();
        d.run_once();
        assert_eq!(d.rejected, 1);
        assert!(virt
            .filesystem()
            .exists("/net/views/v/switches/big0/flows/bad/error", virt.creds()));
    }
}
