//! Occasional-run applications (paper §2): "an auditor might run
//! periodically via a cron job"; accounting likewise. Neither is a daemon —
//! each is a plain function you run when you want, against the same file
//! tree every other application uses.

use std::fmt::Write as _;

use yanc::YancFs;
use yanc_vfs::Mode;

/// One auditor finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Finding {
    /// A flow's driver reported a capability error.
    FlowError {
        /// Switch name.
        switch: String,
        /// Flow name.
        flow: String,
        /// The error file contents.
        error: String,
    },
    /// Two flows on one switch have the same priority and overlapping
    /// matches — ambiguous precedence.
    PriorityConflict {
        /// Switch name.
        switch: String,
        /// First flow.
        a: String,
        /// Second flow.
        b: String,
        /// Shared priority.
        priority: u16,
    },
    /// A flow was written but never committed (version still 0).
    Uncommitted {
        /// Switch name.
        switch: String,
        /// Flow name.
        flow: String,
    },
    /// A port's peer link is one-directional.
    AsymmetricLink {
        /// Switch name.
        switch: String,
        /// Port number.
        port: u16,
    },
}

/// Audit summary.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Switch count.
    pub switches: usize,
    /// Total flows.
    pub flows: usize,
    /// Total links (directed).
    pub links: usize,
    /// Everything suspicious.
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// Render the human-readable report text.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "audit: {} switches, {} flows, {} links, {} findings",
            self.switches,
            self.flows,
            self.links,
            self.findings.len()
        );
        for f in &self.findings {
            let _ = match f {
                Finding::FlowError {
                    switch,
                    flow,
                    error,
                } => {
                    writeln!(s, "ERROR {switch}/{flow}: {error}")
                }
                Finding::PriorityConflict {
                    switch,
                    a,
                    b,
                    priority,
                } => {
                    writeln!(
                        s,
                        "CONFLICT {switch}: {a} and {b} both at priority {priority}"
                    )
                }
                Finding::Uncommitted { switch, flow } => {
                    writeln!(s, "UNCOMMITTED {switch}/{flow}")
                }
                Finding::AsymmetricLink { switch, port } => {
                    writeln!(s, "ASYMMETRIC-LINK {switch}:p{port}")
                }
            };
        }
        s
    }
}

/// Run an audit pass over `/net` and write the report to `<root>/audit.log`.
pub fn audit(yfs: &YancFs) -> yanc::YancResult<AuditReport> {
    let mut report = AuditReport::default();
    let switches = yfs.list_switches()?;
    report.switches = switches.len();
    for sw in &switches {
        let flows = yfs.list_flows(sw)?;
        report.flows += flows.len();
        // Per-flow checks.
        let mut parsed: Vec<(String, yanc::FlowSpec)> = Vec::new();
        for name in &flows {
            let dir = yfs.flow_dir(sw, name);
            if let Ok(err) = yfs
                .filesystem()
                .read_to_string(dir.join("error").as_str(), yfs.creds())
            {
                report.findings.push(Finding::FlowError {
                    switch: sw.clone(),
                    flow: name.clone(),
                    error: err.trim().to_string(),
                });
            }
            if let Ok(spec) = yfs.read_flow(sw, name) {
                if spec.version == 0 {
                    report.findings.push(Finding::Uncommitted {
                        switch: sw.clone(),
                        flow: name.clone(),
                    });
                }
                parsed.push((name.clone(), spec));
            }
        }
        // Priority conflicts: same priority, overlapping header space
        // (approximated as one subsuming the other or equal matches).
        for i in 0..parsed.len() {
            for j in i + 1..parsed.len() {
                let (an, a) = &parsed[i];
                let (bn, b) = &parsed[j];
                if a.priority == b.priority && (a.m.subsumes(&b.m) || b.m.subsumes(&a.m)) {
                    report.findings.push(Finding::PriorityConflict {
                        switch: sw.clone(),
                        a: an.clone(),
                        b: bn.clone(),
                        priority: a.priority,
                    });
                }
            }
        }
        // Link symmetry.
        for port in yfs.list_ports(sw)? {
            if let Some((peer_sw, peer_port)) = yfs.peer(sw, port)? {
                report.links += 1;
                match yfs.peer(&peer_sw, peer_port) {
                    Ok(Some((back_sw, back_port))) if back_sw == *sw && back_port == port => {}
                    _ => report.findings.push(Finding::AsymmetricLink {
                        switch: sw.clone(),
                        port,
                    }),
                }
            }
        }
    }
    let log = yfs.root().join("audit.log");
    yfs.filesystem()
        .write_file(log.as_str(), report.to_text().as_bytes(), yfs.creds())?;
    Ok(report)
}

/// Accounting pass: summarize per-switch traffic counters into
/// `<root>/accounting/<switch>` files (bytes/packets seen by flows).
pub fn account(yfs: &YancFs) -> yanc::YancResult<usize> {
    let dir = yfs.root().join("accounting");
    yfs.filesystem()
        .mkdir_all(dir.as_str(), Mode::DIR_DEFAULT, yfs.creds())?;
    let mut n = 0;
    for sw in yfs.list_switches()? {
        let swdir = yfs.switch_dir(&sw);
        let flow_packets = yfs.read_counter(&swdir, "flow_packets");
        let flow_bytes = yfs.read_counter(&swdir, "flow_bytes");
        let mut rx = 0u64;
        let mut tx = 0u64;
        for p in yfs.list_ports(&sw)? {
            let pdir = yfs.port_dir(&sw, p);
            rx += yfs.read_counter(&pdir, "rx_bytes");
            tx += yfs.read_counter(&pdir, "tx_bytes");
        }
        let body = format!(
            "switch={sw} flow_packets={flow_packets} flow_bytes={flow_bytes} rx_bytes={rx} tx_bytes={tx}\n"
        );
        yfs.filesystem()
            .write_file(dir.join(&sw).as_str(), body.as_bytes(), yfs.creds())?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc::FlowSpec;
    use yanc_openflow::{Action, FlowMatch};

    fn yfs() -> YancFs {
        YancFs::init(std::sync::Arc::new(yanc_vfs::Filesystem::new()), "/net").unwrap()
    }

    #[test]
    fn clean_network_audits_clean() {
        let y = yfs();
        y.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
        let spec = FlowSpec {
            actions: vec![Action::out(1)],
            ..Default::default()
        };
        y.write_flow("sw1", "f1", &spec).unwrap();
        let r = audit(&y).unwrap();
        assert_eq!(r.switches, 1);
        assert_eq!(r.flows, 1);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        // The report landed in the fs.
        assert!(y.filesystem().exists("/net/audit.log", y.creds()));
    }

    #[test]
    fn detects_priority_conflicts_and_uncommitted() {
        let y = yfs();
        y.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
        let a = FlowSpec {
            m: FlowMatch::any(),
            priority: 5,
            ..Default::default()
        };
        let b = FlowSpec {
            m: FlowMatch {
                tp_dst: Some(22),
                ..Default::default()
            },
            priority: 5,
            ..Default::default()
        };
        y.write_flow("sw1", "wide", &a).unwrap();
        y.write_flow("sw1", "ssh", &b).unwrap();
        // Uncommitted: mkdir only.
        y.filesystem()
            .mkdir(
                "/net/switches/sw1/flows/pending",
                Mode::DIR_DEFAULT,
                y.creds(),
            )
            .unwrap();
        let r = audit(&y).unwrap();
        assert!(r
            .findings
            .iter()
            .any(|f| matches!(f, Finding::PriorityConflict { priority: 5, .. })));
        assert!(r
            .findings
            .iter()
            .any(|f| matches!(f, Finding::Uncommitted { flow, .. } if flow == "pending")));
    }

    #[test]
    fn detects_flow_errors_and_asymmetric_links() {
        let y = yfs();
        y.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
        y.create_switch("sw2", 2, 0, 0, 0, 1).unwrap();
        y.create_port("sw1", 1, "02:00:00:00:00:01", 0, 0).unwrap();
        y.create_port("sw2", 1, "02:00:00:00:00:02", 0, 0).unwrap();
        // One-directional peer.
        y.set_peer("sw1", 1, "sw2", 1).unwrap();
        // Flow with a driver error file.
        let spec = FlowSpec {
            goto_table: Some(1),
            ..Default::default()
        };
        y.write_flow("sw1", "multi", &spec).unwrap();
        y.filesystem()
            .write_file(
                "/net/switches/sw1/flows/multi/error",
                b"goto_table needs 1.3",
                y.creds(),
            )
            .unwrap();
        let r = audit(&y).unwrap();
        assert!(r
            .findings
            .iter()
            .any(|f| matches!(f, Finding::FlowError { .. })));
        assert!(r
            .findings
            .iter()
            .any(|f| matches!(f, Finding::AsymmetricLink { switch, port: 1 } if switch == "sw1")));
        let text = r.to_text();
        assert!(text.contains("ASYMMETRIC-LINK sw1:p1"));
    }

    #[test]
    fn accounting_writes_summaries() {
        let y = yfs();
        y.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
        y.create_port("sw1", 1, "02:00:00:00:00:01", 0, 0).unwrap();
        let swdir = y.switch_dir("sw1");
        y.write_counter(&swdir, "flow_packets", 100).unwrap();
        let pdir = y.port_dir("sw1", 1);
        y.write_counter(&pdir, "rx_bytes", 5000).unwrap();
        let n = account(&y).unwrap();
        assert_eq!(n, 1);
        let body = y
            .filesystem()
            .read_to_string("/net/accounting/sw1", y.creds())
            .unwrap();
        assert!(body.contains("flow_packets=100"));
        assert!(body.contains("rx_bytes=5000"));
    }
}
