//! A firewall daemon — the "security" item on the paper's list of
//! control-plane topics yanc should free researchers to work on.
//!
//! Two modes, both file-driven:
//!
//! * **static rules** — `/net/security/rules` holds one rule per line
//!   (`deny <cidr> [tcp-port]`); the daemon compiles each into a
//!   high-priority drop flow (empty action list) on every switch. Editing
//!   the file with `echo`/shell tools reprograms the network.
//! * **anomaly blocking** — source IPs generating more than `threshold`
//!   table misses get auto-blocked: a drop flow everywhere plus an audit
//!   record in `/net/security/blocked/<ip>`.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use yanc::{EventSubscription, FlowSpec, YancFs};
use yanc_openflow::{FlowMatch, Ipv4Prefix};
use yanc_packet::PacketSummary;
use yanc_vfs::{EventKind, EventMask, Mode};

/// A parsed deny rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenyRule {
    /// Source prefix to block.
    pub src: Ipv4Prefix,
    /// Optional TCP destination port restriction.
    pub tp_dst: Option<u16>,
}

/// Parse the rules file format.
pub fn parse_rules(text: &str) -> Result<Vec<DenyRule>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut toks = line.split_whitespace();
        if toks.next() != Some("deny") {
            return Err(format!("line {}: rules start with 'deny'", i + 1));
        }
        let cidr = toks
            .next()
            .ok_or_else(|| format!("line {}: missing prefix", i + 1))?;
        let src = Ipv4Prefix::parse(cidr).ok_or_else(|| format!("line {}: bad CIDR", i + 1))?;
        let tp_dst = match toks.next() {
            Some(p) => Some(p.parse().map_err(|_| format!("line {}: bad port", i + 1))?),
            None => None,
        };
        out.push(DenyRule { src, tp_dst });
    }
    Ok(out)
}

/// The firewall daemon.
pub struct Firewall {
    yfs: YancFs,
    sub: EventSubscription,
    rules_watch: yanc_vfs::WatchGuard,
    /// Miss counts per source IP (anomaly detector).
    misses: HashMap<Ipv4Addr, u32>,
    /// Misses before a source is auto-blocked (0 disables).
    pub threshold: u32,
    /// IPs auto-blocked so far.
    pub blocked: Vec<Ipv4Addr>,
    /// Rules currently compiled.
    pub active_rules: Vec<DenyRule>,
}

impl Firewall {
    /// Subscribe as `fw`; create `/net/security/` and watch the rules file.
    pub fn new(yfs: YancFs, threshold: u32) -> yanc::YancResult<Self> {
        let sub = yfs.subscribe_events("fw")?;
        let fs = yfs.filesystem();
        let dir = yfs.root().join("security");
        fs.mkdir_all(dir.join("blocked").as_str(), Mode::DIR_DEFAULT, yfs.creds())?;
        if !fs.exists(dir.join("rules").as_str(), yfs.creds()) {
            fs.write_file(
                dir.join("rules").as_str(),
                b"# deny <cidr> [tcp-port]\n",
                yfs.creds(),
            )?;
        }
        let rules_watch = fs
            .watch(dir.join("rules").as_str())
            .mask(EventMask::MODIFY)
            .register()?;
        let mut fw = Firewall {
            yfs,
            sub,
            rules_watch,
            misses: HashMap::new(),
            threshold,
            blocked: Vec::new(),
            active_rules: Vec::new(),
        };
        fw.reload_rules();
        Ok(fw)
    }

    fn rule_flow(rule: &DenyRule) -> FlowSpec {
        FlowSpec {
            m: FlowMatch {
                dl_type: Some(0x0800),
                nw_proto: rule.tp_dst.map(|_| 6),
                nw_src: Some(rule.src),
                tp_dst: rule.tp_dst,
                ..Default::default()
            },
            actions: Vec::new(), // empty action list = drop
            priority: 60000,
            ..Default::default()
        }
    }

    fn rule_name(rule: &DenyRule) -> String {
        let mut n = format!("fw_{}", rule.src.to_string().replace(['.', '/'], "_"));
        if let Some(p) = rule.tp_dst {
            n.push_str(&format!("_p{p}"));
        }
        n
    }

    /// Re-read the rules file and (re)install drop flows on every switch.
    pub fn reload_rules(&mut self) {
        let path = self.yfs.root().join("security").join("rules");
        let text = match self
            .yfs
            .filesystem()
            .read_to_string(path.as_str(), self.yfs.creds())
        {
            Ok(t) => t,
            Err(_) => return,
        };
        let rules = match parse_rules(&text) {
            Ok(r) => r,
            Err(e) => {
                // Report through the fs, like everything else.
                let p = self.yfs.root().join("security").join("rules.error");
                let _ =
                    self.yfs
                        .filesystem()
                        .write_file(p.as_str(), e.as_bytes(), self.yfs.creds());
                return;
            }
        };
        let _ = self.yfs.filesystem().unlink(
            self.yfs
                .root()
                .join("security")
                .join("rules.error")
                .as_str(),
            self.yfs.creds(),
        );
        let switches = self.yfs.list_switches().unwrap_or_default();
        // Remove flows for rules that vanished.
        for old in &self.active_rules {
            if !rules.contains(old) {
                for sw in &switches {
                    let _ = self.yfs.delete_flow(sw, &Self::rule_name(old));
                }
            }
        }
        for rule in &rules {
            for sw in &switches {
                let _ = self
                    .yfs
                    .write_flow(sw, &Self::rule_name(rule), &Self::rule_flow(rule));
            }
        }
        self.active_rules = rules;
    }

    /// Drain rule edits and packet-ins (anomaly detection).
    pub fn run_once(&mut self) -> bool {
        let mut worked = false;
        if self
            .rules_watch
            .receiver()
            .try_iter()
            .any(|e| e.kind == EventKind::CloseWrite)
        {
            worked = true;
            self.reload_rules();
        }
        for rec in self.sub.drain_all() {
            worked = true;
            if self.threshold == 0 {
                continue;
            }
            let Ok(summary) = PacketSummary::parse(&rec.data) else {
                continue;
            };
            let Some(src) = summary.nw_src else { continue };
            if summary.dl_type != 0x0800 {
                continue; // count only IP traffic (ARP storms are L2's issue)
            }
            let n = self.misses.entry(src).or_insert(0);
            *n += 1;
            if *n > self.threshold && !self.blocked.contains(&src) {
                self.blocked.push(src);
                let rule = DenyRule {
                    src: Ipv4Prefix::host(src),
                    tp_dst: None,
                };
                for sw in self.yfs.list_switches().unwrap_or_default() {
                    let _ =
                        self.yfs
                            .write_flow(&sw, &Self::rule_name(&rule), &Self::rule_flow(&rule));
                }
                let p = self
                    .yfs
                    .root()
                    .join("security")
                    .join("blocked")
                    .join(&src.to_string());
                let _ = self.yfs.filesystem().write_file(
                    p.as_str(),
                    format!("misses={n}").as_bytes(),
                    self.yfs.creds(),
                );
            }
        }
        worked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_driver::Runtime;
    use yanc_openflow::Version;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn settle(rt: &mut Runtime, fw: &mut Firewall) {
        loop {
            let a = rt.pump().unwrap();
            let b = fw.run_once();
            if a <= 1 && !b {
                break;
            }
        }
    }

    #[test]
    fn rules_parse() {
        let rules = parse_rules("# comment\ndeny 10.9.0.0/16\ndeny 10.0.0.66 22\n").unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].src.prefix_len, 16);
        assert_eq!(rules[1].tp_dst, Some(22));
        assert!(parse_rules("allow 10.0.0.1").is_err());
        assert!(parse_rules("deny notacidr").is_err());
        assert!(parse_rules("deny 10.0.0.1 notaport").is_err());
    }

    #[test]
    fn static_rules_install_drop_flows_and_drop_traffic() {
        let mut rt = Runtime::new();
        rt.add_switch_with_driver(0x1, 4, 1, vec![Version::V1_3], Version::V1_3);
        let h1 = rt.net.add_host("h1", ip("10.9.1.1")); // inside the denied /16
        let h2 = rt.net.add_host("h2", ip("10.0.0.2"));
        rt.net.attach_host(h1, (0x1, 1), None);
        rt.net.attach_host(h2, (0x1, 2), None);
        rt.pump().unwrap();
        // Baseline forwarding so traffic *would* flow.
        let fwd = FlowSpec {
            m: FlowMatch::any(),
            actions: vec![yanc_openflow::Action::out(yanc_openflow::port_no::FLOOD)],
            priority: 1,
            ..Default::default()
        };
        rt.yfs.write_flow("sw1", "flood", &fwd).unwrap();
        rt.pump().unwrap();

        let mut fw = Firewall::new(rt.yfs.clone(), 0).unwrap();
        // Edit the rules file the way an admin would.
        rt.yfs
            .filesystem()
            .write_file("/net/security/rules", b"deny 10.9.0.0/16\n", rt.yfs.creds())
            .unwrap();
        settle(&mut rt, &mut fw);
        assert_eq!(fw.active_rules.len(), 1);
        assert_eq!(rt.net.switches[&0x1].flow_count(), 2); // flood + drop

        // h1 (denied) pings h2: ARP resolves (L2), but the ICMP is dropped.
        rt.net.host_ping(h1, ip("10.0.0.2"), 1);
        settle(&mut rt, &mut fw);
        assert!(
            rt.net.hosts[&h1].ping_replies.is_empty(),
            "denied source must not connect"
        );
        // h2 → h1: the *request* (src 10.0.0.2) passes and h1 answers, but
        // the reply (src 10.9.1.1) is dropped too — the ACL is stateless,
        // like a real one-line deny.
        rt.net.host_ping(h2, ip("10.9.1.1"), 2);
        settle(&mut rt, &mut fw);
        assert_eq!(rt.net.hosts[&h1].pings_answered.len(), 1);
        assert!(rt.net.hosts[&h2].ping_replies.is_empty());

        // Removing the rule reopens the path.
        rt.yfs
            .filesystem()
            .write_file("/net/security/rules", b"# empty\n", rt.yfs.creds())
            .unwrap();
        settle(&mut rt, &mut fw);
        assert_eq!(rt.net.switches[&0x1].flow_count(), 1);
        rt.net.host_ping(h1, ip("10.0.0.2"), 3);
        settle(&mut rt, &mut fw);
        assert_eq!(rt.net.hosts[&h1].ping_replies.len(), 1);
    }

    #[test]
    fn anomalous_source_is_auto_blocked() {
        let mut rt = Runtime::new();
        rt.add_switch_with_driver(0x1, 4, 1, vec![Version::V1_0], Version::V1_0);
        let h1 = rt.net.add_host("h1", ip("10.0.0.1"));
        rt.net.attach_host(h1, (0x1, 1), None);
        rt.pump().unwrap();
        let mut fw = Firewall::new(rt.yfs.clone(), 3).unwrap();
        // h1 scans: many misses (no flows installed → every probe misses).
        let h1mac = rt.net.hosts[&h1].mac;
        for port in 1..=5u16 {
            let frame = yanc_packet::build_tcp_syn(
                h1mac,
                yanc_packet::MacAddr::from_seed(0xeeee),
                ip("10.0.0.1"),
                ip("10.0.0.99"),
                40000 + port,
                port,
            );
            rt.net.inject(0x1, 1, frame);
            settle(&mut rt, &mut fw);
        }
        assert_eq!(fw.blocked, vec![ip("10.0.0.1")]);
        // The block is visible in the fs and in hardware.
        assert!(rt
            .yfs
            .filesystem()
            .exists("/net/security/blocked/10.0.0.1", rt.yfs.creds()));
        assert_eq!(rt.net.switches[&0x1].flow_count(), 1);
        // Further probes hit the drop flow: no more packet-ins counted.
        let before = fw.misses[&ip("10.0.0.1")];
        let frame = yanc_packet::build_tcp_syn(
            h1mac,
            yanc_packet::MacAddr::from_seed(0xeeee),
            ip("10.0.0.1"),
            ip("10.0.0.99"),
            41000,
            80,
        );
        rt.net.inject(0x1, 1, frame);
        settle(&mut rt, &mut fw);
        assert_eq!(
            fw.misses[&ip("10.0.0.1")],
            before,
            "drop flow absorbs the scan"
        );
    }
}
