//! What-if staging: edit a private copy of the network, validate it,
//! commit it atomically (paper §3.4).
//!
//! The paper's views story — "an application can be given a *copy* of the
//! network state, edit it freely, and then commit the result with a single
//! rename" — generalised over [`yanc_vfs::Overlay`]: a [`WhatIf`] session
//! mounts a copy-on-write view over the live `/net` tree, stages flow
//! edits in its private upper layer (copy-up keeps the base untouched),
//! validates the *merged result* by parsing every flow through
//! [`FlowSpec::from_files`], and finally publishes everything in **one
//! atomic, journaled, permission-checked transaction** via
//! [`Overlay::commit`]. Other apps and drivers observe either the old tree
//! or the new one, never an in-between state.

use std::sync::Arc;

use yanc::{FlowSpec, YancResult};
use yanc_vfs::{CommitReport, Credentials, Filesystem, Mode, Overlay, VfsResult};

/// A staged editing session over a base network tree.
pub struct WhatIf {
    ov: Overlay,
    creds: Credentials,
}

impl WhatIf {
    /// Begin a session: overlay `staging` (created, owned by `creds`) over
    /// the tree at `base`. Nothing under `base` changes until
    /// [`WhatIf::commit`].
    pub fn begin(
        fs: Arc<Filesystem>,
        base: &str,
        staging: &str,
        creds: &Credentials,
    ) -> VfsResult<WhatIf> {
        let ov = Overlay::new(fs, &[base], staging);
        ov.ensure_upper(creds)?;
        Ok(WhatIf {
            ov,
            creds: creds.clone(),
        })
    }

    /// The underlying overlay (e.g. to mount it in a [`yanc_vfs::Namespace`]).
    pub fn overlay(&self) -> &Overlay {
        &self.ov
    }

    /// Stage a flow: write `fields` under `switches/<switch>/flows/<flow>/`
    /// in the view. The base tree is untouched; parent directories are
    /// copied up as needed.
    pub fn stage_flow(&self, switch: &str, flow: &str, fields: &[(&str, &str)]) -> VfsResult<()> {
        let dir = format!("/switches/{switch}/flows/{flow}");
        self.ov.mkdir_all(&dir, Mode::DIR_DEFAULT, &self.creds)?;
        for (k, v) in fields {
            self.ov
                .write_file(&format!("{dir}/{k}"), v.as_bytes(), &self.creds)?;
        }
        Ok(())
    }

    /// Stage a flow deletion: the view hides the flow behind whiteouts;
    /// commit turns them into real removals.
    pub fn delete_flow(&self, switch: &str, flow: &str) -> VfsResult<()> {
        let dir = format!("/switches/{switch}/flows/{flow}");
        for e in self.ov.readdir(&dir, &self.creds)? {
            self.ov.unlink(&format!("{dir}/{}", e.name), &self.creds)?;
        }
        self.ov.rmdir(&dir, &self.creds)
    }

    /// Validate the merged result: parse every flow the committed tree
    /// would contain. Returns the number of valid flows, or every parse
    /// error (as `switch/flow: message` strings).
    pub fn validate(&self) -> Result<usize, Vec<String>> {
        let mut ok = 0usize;
        let mut errors = Vec::new();
        let switches = self
            .ov
            .readdir("/switches", &self.creds)
            .unwrap_or_default();
        for sw in switches {
            let flows_dir = format!("/switches/{}/flows", sw.name);
            for fl in self.ov.readdir(&flows_dir, &self.creds).unwrap_or_default() {
                let fdir = format!("{flows_dir}/{}", fl.name);
                match self.parse_flow(&fdir) {
                    Ok(_) => ok += 1,
                    Err(e) => errors.push(format!("{}/{}: {e}", sw.name, fl.name)),
                }
            }
        }
        if errors.is_empty() {
            Ok(ok)
        } else {
            Err(errors)
        }
    }

    fn parse_flow(&self, dir: &str) -> YancResult<FlowSpec> {
        let mut files: Vec<(String, String)> = Vec::new();
        for e in self
            .ov
            .readdir(dir, &self.creds)
            .map_err(yanc::YancError::from)?
        {
            let content = self
                .ov
                .read_to_string(&format!("{dir}/{}", e.name), &self.creds)
                .map_err(yanc::YancError::from)?;
            files.push((e.name, content));
        }
        FlowSpec::from_files(files.iter().map(|(n, c)| (n.as_str(), c.as_str())))
    }

    /// Publish the staged view into the base tree as one linearization
    /// point (journaled as a single replayable record) and clear the
    /// staging layer. Fails without touching anything if the caller lacks
    /// permission on any affected base directory.
    pub fn commit(&self) -> VfsResult<CommitReport> {
        self.ov.commit(&self.creds)
    }

    /// Discard the staged edits: remove everything in the upper layer.
    /// The view reverts to exactly the base tree.
    pub fn abort(&self) -> VfsResult<()> {
        let fs = self.ov.filesystem().clone();
        let upper = self.ov.upper_path().as_str().to_string();
        remove_children(&fs, &upper, &self.creds)
    }
}

/// Recursively delete every child of `dir` (the dir itself stays).
fn remove_children(fs: &Filesystem, dir: &str, creds: &Credentials) -> VfsResult<()> {
    for e in fs.readdir(dir, creds)? {
        let p = format!("{dir}/{}", e.name);
        if fs.lstat(&p, creds)?.is_dir() {
            remove_children(fs, &p, creds)?;
            fs.rmdir(&p, creds)?;
        } else {
            fs.unlink(&p, creds)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_fs() -> Arc<Filesystem> {
        let fs = Arc::new(Filesystem::new());
        let r = Credentials::root();
        fs.mkdir_all("/net/switches/sw1/flows/ssh", Mode::DIR_DEFAULT, &r)
            .unwrap();
        fs.write_file("/net/switches/sw1/flows/ssh/match.tp_dst", b"22\n", &r)
            .unwrap();
        fs.write_file("/net/switches/sw1/flows/ssh/action.out", b"2\n", &r)
            .unwrap();
        fs.write_file("/net/switches/sw1/flows/ssh/priority", b"900\n", &r)
            .unwrap();
        fs
    }

    #[test]
    fn stage_validate_commit() {
        let fs = base_fs();
        let r = Credentials::root();
        let s = WhatIf::begin(fs.clone(), "/net", "/staging/t1", &r).unwrap();
        s.stage_flow(
            "sw1",
            "web",
            &[
                ("match.tp_dst", "80"),
                ("action.out", "3"),
                ("priority", "800"),
            ],
        )
        .unwrap();
        // Merged result validates: both the staged and the base flow.
        assert_eq!(s.validate().unwrap(), 2);
        // Base is untouched until commit.
        assert!(!fs.exists("/net/switches/sw1/flows/web", &r));
        let rep = s.commit().unwrap();
        assert!(rep.records > 0);
        assert_eq!(
            fs.read_to_string("/net/switches/sw1/flows/web/match.tp_dst", &r)
                .unwrap(),
            "80"
        );
        // Staging cleared: a second commit is a no-op.
        assert_eq!(s.commit().unwrap().records, 0);
    }

    #[test]
    fn invalid_staged_flow_is_caught_before_commit() {
        let fs = base_fs();
        let r = Credentials::root();
        let s = WhatIf::begin(fs.clone(), "/net", "/staging/t2", &r).unwrap();
        s.stage_flow("sw1", "bad", &[("match.tp_dst", "not-a-port")])
            .unwrap();
        let errors = s.validate().unwrap_err();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].starts_with("sw1/bad:"), "{errors:?}");
        // The operator aborts instead; the view reverts to the base.
        s.abort().unwrap();
        assert!(!s.overlay().exists("/switches/sw1/flows/bad", &r));
        assert_eq!(s.validate().unwrap(), 1);
    }

    #[test]
    fn staged_deletion_commits_as_removal() {
        let fs = base_fs();
        let r = Credentials::root();
        let s = WhatIf::begin(fs.clone(), "/net", "/staging/t3", &r).unwrap();
        s.delete_flow("sw1", "ssh").unwrap();
        assert!(fs.exists("/net/switches/sw1/flows/ssh", &r));
        let rep = s.commit().unwrap();
        assert!(rep.whiteouts > 0);
        assert!(!fs.exists("/net/switches/sw1/flows/ssh", &r));
    }
}
