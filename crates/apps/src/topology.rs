//! The topology discovery daemon (paper §4.3).
//!
//! "A topology application will handle LLDP messages for discovery and
//! create symbolic links which connect source to destination ports."
//!
//! The daemon is an ordinary yanc application: it installs an
//! LLDP-to-controller flow on every switch (through flow files), emits LLDP
//! probes through each switch's `packet_out` file, and when a probe shows
//! up as a packet-in on a neighbouring switch, records the link as a `peer`
//! symlink. Everything it knows, it knows through the file system.

use std::collections::{HashMap, HashSet, VecDeque};

use yanc::{EventSubscription, FlowSpec, YancFs};
use yanc_openflow::{port_no, Action, FlowMatch};
use yanc_packet::{EtherType, EthernetFrame, LldpPacket, MacAddr};

/// The discovery daemon.
pub struct TopologyDaemon {
    yfs: YancFs,
    sub: EventSubscription,
    /// Switches we've already provisioned with the LLDP capture flow.
    provisioned: HashSet<String>,
    /// Whether a probe round has run since start/reload (the supervised
    /// event loop probes lazily on its first slice).
    probed: bool,
    /// Links created so far (for idempotence/metrics).
    pub links_found: usize,
}

impl TopologyDaemon {
    /// Subscribe as `topod`.
    pub fn new(yfs: YancFs) -> yanc::YancResult<Self> {
        let sub = yfs.subscribe_events("topod")?;
        Ok(TopologyDaemon {
            yfs,
            sub,
            provisioned: HashSet::new(),
            probed: false,
            links_found: 0,
        })
    }

    /// Ensure every switch captures LLDP to the controller, then emit one
    /// LLDP probe out of every port of every switch.
    pub fn probe(&mut self) -> yanc::YancResult<()> {
        self.probed = true;
        for sw in self.yfs.list_switches()? {
            if !self.provisioned.contains(&sw) {
                let spec = FlowSpec {
                    m: FlowMatch {
                        dl_type: Some(EtherType::LLDP.0),
                        ..Default::default()
                    },
                    actions: vec![Action::out(port_no::CONTROLLER)],
                    priority: 65000,
                    ..Default::default()
                };
                self.yfs.write_flow(&sw, "lldp_capture", &spec)?;
                self.provisioned.insert(sw.clone());
            }
            for port in self.yfs.list_ports(&sw)? {
                let frame = yanc_packet::build_lldp(
                    MacAddr::from_seed(0x11dd_0000 | u64::from(port)),
                    &sw,
                    &port.to_string(),
                );
                let line = format!(
                    "buffer=none in_port={} out={} data={}\n",
                    port_no::NONE,
                    port,
                    yanc::hex_encode(&frame)
                );
                let path = self.yfs.switch_dir(&sw).join("packet_out");
                self.yfs.filesystem().append_file(
                    path.as_str(),
                    line.as_bytes(),
                    self.yfs.creds(),
                )?;
            }
        }
        Ok(())
    }

    /// Consume pending packet-ins; LLDP ones become `peer` symlinks.
    /// Returns whether any progress was made.
    pub fn run_once(&mut self) -> bool {
        let mut worked = false;
        for rec in self.sub.drain_all() {
            worked = true;
            let eth = match EthernetFrame::parse(&rec.data) {
                Ok(e) => e,
                Err(_) => continue,
            };
            if eth.ethertype != EtherType::LLDP {
                continue;
            }
            let lldp = match LldpPacket::parse(&eth.payload) {
                Ok(l) => l,
                Err(_) => continue,
            };
            let src_port: u16 = match lldp.port_id.parse() {
                Ok(p) => p,
                Err(_) => continue,
            };
            // The probe left (lldp.chassis_id, src_port) and arrived at
            // (rec.switch, rec.in_port): that's a link; record both ends.
            if self
                .yfs
                .set_peer(&rec.switch, rec.in_port, &lldp.chassis_id, src_port)
                .is_ok()
            {
                let _ = self
                    .yfs
                    .set_peer(&lldp.chassis_id, src_port, &rec.switch, rec.in_port);
                self.links_found += 1;
            }
        }
        worked
    }
}

impl yanc::YancApp for TopologyDaemon {
    fn name(&self) -> &str {
        "topod"
    }

    /// One supervised slice: probe lazily on the first slice after a
    /// start/restart/reload (so a resurrected daemon rediscovers the
    /// fabric), then drain packet-ins.
    fn run_once(&mut self) -> yanc::YancResult<bool> {
        if !self.probed {
            self.probe()?;
            return Ok(true);
        }
        Ok(TopologyDaemon::run_once(self))
    }

    /// Ready until the first probe has run (a restarted daemon must
    /// rediscover the fabric even with no events queued), then
    /// level-triggered on the packet-in subscription.
    fn ready(&self) -> bool {
        !self.probed || self.sub.ready()
    }

    /// `SIGHUP`: forget which switches are provisioned and re-probe.
    fn reload(&mut self) -> yanc::YancResult<()> {
        self.provisioned.clear();
        self.probed = false;
        Ok(())
    }
}

/// BFS shortest path between two switches over the fs topology (`peer`
/// symlinks). Returns hops as `(switch, egress port)` ending with the hop
/// out of `to`'s predecessor — i.e. the ports to wire a path
/// `from → … → to`. Empty when `from == to`.
pub fn shortest_path(
    yfs: &YancFs,
    from: &str,
    to: &str,
) -> yanc::YancResult<Option<Vec<(String, u16)>>> {
    if from == to {
        return Ok(Some(Vec::new()));
    }
    // adjacency: switch -> [(egress port, neighbour switch)]
    let mut adj: HashMap<String, Vec<(u16, String)>> = HashMap::new();
    for (sw, port, peer_sw, _pp) in yfs.topology()? {
        adj.entry(sw).or_default().push((port, peer_sw));
    }
    for nbrs in adj.values_mut() {
        nbrs.sort(); // deterministic paths
    }
    let mut prev: HashMap<String, (String, u16)> = HashMap::new();
    let mut q = VecDeque::new();
    q.push_back(from.to_string());
    let mut seen: HashSet<String> = HashSet::new();
    seen.insert(from.to_string());
    while let Some(cur) = q.pop_front() {
        if cur == to {
            // Reconstruct.
            let mut hops = Vec::new();
            let mut node = to.to_string();
            while node != from {
                let (p, port) = prev[&node].clone();
                hops.push((p.clone(), port));
                node = p;
            }
            hops.reverse();
            return Ok(Some(hops));
        }
        for (port, nbr) in adj.get(&cur).cloned().unwrap_or_default() {
            if seen.insert(nbr.clone()) {
                prev.insert(nbr.clone(), (cur.clone(), port));
                q.push_back(nbr);
            }
        }
    }
    Ok(None)
}

/// The ingress port on each switch along a path: for consecutive hops the
/// packet enters hop `i+1` on the peer port of hop `i`'s egress.
pub fn ingress_ports(yfs: &YancFs, hops: &[(String, u16)]) -> yanc::YancResult<Vec<(String, u16)>> {
    let mut out = Vec::new();
    for (sw, port) in hops {
        if let Some((peer_sw, peer_port)) = yfs.peer(sw, *port)? {
            out.push((peer_sw, peer_port));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use yanc_vfs::Filesystem;

    fn yfs_with_line(n: usize) -> YancFs {
        // line: sw0 -p2- sw1 -p2- sw2 … (port1 faces down, port2 faces up)
        let y = YancFs::init(Arc::new(Filesystem::new()), "/net").unwrap();
        for i in 0..n {
            let name = format!("s{i}");
            y.create_switch(&name, i as u64, 0, 0, 0, 1).unwrap();
            for p in 1..=3u16 {
                y.create_port(&name, p, "02:00:00:00:00:01", 0, 0).unwrap();
            }
        }
        for i in 0..n - 1 {
            y.set_peer(&format!("s{i}"), 2, &format!("s{}", i + 1), 1)
                .unwrap();
            y.set_peer(&format!("s{}", i + 1), 1, &format!("s{i}"), 2)
                .unwrap();
        }
        y
    }

    #[test]
    fn bfs_on_line() {
        let y = yfs_with_line(4);
        let path = shortest_path(&y, "s0", "s3").unwrap().unwrap();
        assert_eq!(
            path,
            vec![
                ("s0".to_string(), 2),
                ("s1".to_string(), 2),
                ("s2".to_string(), 2)
            ]
        );
        let ins = ingress_ports(&y, &path).unwrap();
        assert_eq!(
            ins,
            vec![
                ("s1".to_string(), 1),
                ("s2".to_string(), 1),
                ("s3".to_string(), 1)
            ]
        );
        assert_eq!(shortest_path(&y, "s2", "s2").unwrap().unwrap(), vec![]);
    }

    #[test]
    fn bfs_unreachable() {
        let y = yfs_with_line(2);
        y.create_switch("island", 99, 0, 0, 0, 1).unwrap();
        assert_eq!(shortest_path(&y, "s0", "island").unwrap(), None);
    }

    #[test]
    fn bfs_picks_shorter_branch() {
        let y = yfs_with_line(3); // s0-s1-s2
                                  // Add a direct s0<->s2 link on port 3.
        y.set_peer("s0", 3, "s2", 3).unwrap();
        y.set_peer("s2", 3, "s0", 3).unwrap();
        let path = shortest_path(&y, "s0", "s2").unwrap().unwrap();
        assert_eq!(path.len(), 1);
        assert_eq!(path[0], ("s0".to_string(), 3));
    }
}
