//! A per-switch L2 learning switch application.
//!
//! The classic first SDN app, done the yanc way: packet-ins arrive as event
//! directories, MAC tables are learned in memory, and forwarding decisions
//! become flow files (match `dl_dst` at the learned port) plus a
//! `packet_out` append. Works on any single switch independently, so it
//! composes with multi-switch topologies where each switch learns alone.

use std::collections::HashMap;

use yanc::{EventSubscription, FlowSpec, PacketInRecord, YancFs};
use yanc_openflow::{port_no, Action, FlowMatch};
use yanc_packet::{EtherType, MacAddr, PacketSummary};

/// The learning switch app (one instance covers all switches).
pub struct LearningSwitch {
    yfs: YancFs,
    sub: EventSubscription,
    /// `(switch, mac) → port` learning table.
    table: HashMap<(String, MacAddr), u16>,
    /// Whether the first slice has run. Until then [`YancApp::ready`]
    /// reports true unconditionally: a freshly (re)started instance must
    /// drain packet-ins that were buffered *before* its watch existed.
    primed: bool,
    /// Flows installed (metrics).
    pub flows_installed: usize,
    /// Floods performed (metrics).
    pub floods: usize,
}

impl LearningSwitch {
    /// Subscribe as `l2switch`.
    pub fn new(yfs: YancFs) -> yanc::YancResult<Self> {
        let sub = yfs.subscribe_events("l2switch")?;
        Ok(LearningSwitch {
            yfs,
            sub,
            table: HashMap::new(),
            primed: false,
            flows_installed: 0,
            floods: 0,
        })
    }

    /// Look up a learned location.
    pub fn learned(&self, sw: &str, mac: MacAddr) -> Option<u16> {
        self.table.get(&(sw.to_string(), mac)).copied()
    }

    /// Drain packet-ins; learn and forward.
    pub fn run_once(&mut self) -> bool {
        self.primed = true;
        let recs = self.sub.drain_all();
        let worked = !recs.is_empty();
        for rec in recs {
            self.handle(rec);
        }
        worked
    }

    fn handle(&mut self, rec: PacketInRecord) {
        let s = match PacketSummary::parse(&rec.data) {
            Ok(s) => s,
            Err(_) => return,
        };
        if s.dl_type == EtherType::LLDP.0 {
            return;
        }
        if !s.dl_src.is_multicast() {
            self.table
                .insert((rec.switch.clone(), s.dl_src), rec.in_port);
        }
        let out = match self.table.get(&(rec.switch.clone(), s.dl_dst)) {
            Some(&p) if !s.dl_dst.is_multicast() => {
                // Install a forwarding entry for this destination.
                let spec = FlowSpec {
                    m: FlowMatch {
                        dl_dst: Some(s.dl_dst),
                        ..Default::default()
                    },
                    actions: vec![Action::out(p)],
                    priority: 30000,
                    idle_timeout: 120,
                    ..Default::default()
                };
                let name = format!("l2_{}", s.dl_dst.to_string().replace(':', ""));
                if self.yfs.write_flow(&rec.switch, &name, &spec).is_ok() {
                    self.flows_installed += 1;
                }
                p
            }
            _ => {
                self.floods += 1;
                port_no::FLOOD
            }
        };
        let line = match rec.buffer_id {
            Some(id) => format!("buffer={id} in_port={} out={}\n", rec.in_port, out),
            None => format!(
                "buffer=none in_port={} out={} data={}\n",
                rec.in_port,
                out,
                yanc::hex_encode(&rec.data)
            ),
        };
        let path = self.yfs.switch_dir(&rec.switch).join("packet_out");
        let _ = self
            .yfs
            .filesystem()
            .append_file(path.as_str(), line.as_bytes(), self.yfs.creds());
    }
}

impl yanc::YancApp for LearningSwitch {
    fn name(&self) -> &str {
        "l2switch"
    }

    fn run_once(&mut self) -> yanc::YancResult<bool> {
        Ok(LearningSwitch::run_once(self))
    }

    /// Level-triggered readiness: packet-in events are queued on the
    /// subscription's watch (a free check — no charged syscall). A
    /// poll-aware supervisor skips the slice entirely while this is false,
    /// so an idle learning switch consumes zero scheduler ticks.
    fn ready(&self) -> bool {
        !self.primed || self.sub.ready()
    }

    /// `SIGHUP`: flush the learning table; locations are relearned from
    /// live traffic (stale flows age out through the normal flow paths).
    fn reload(&mut self) -> yanc::YancResult<()> {
        self.table.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_driver::Runtime;
    use yanc_openflow::Version;

    fn ip(s: &str) -> std::net::Ipv4Addr {
        s.parse().unwrap()
    }

    fn settle(rt: &mut Runtime, app: &mut LearningSwitch) {
        loop {
            let a = rt.pump().unwrap();
            let b = app.run_once();
            if a <= 1 && !b {
                break;
            }
        }
    }

    #[test]
    fn learns_and_installs() {
        let mut rt = Runtime::new();
        rt.add_switch_with_driver(0x5, 3, 1, vec![Version::V1_0], Version::V1_0);
        let h1 = rt.net.add_host("h1", ip("10.0.0.1"));
        let h2 = rt.net.add_host("h2", ip("10.0.0.2"));
        rt.net.attach_host(h1, (0x5, 1), None);
        rt.net.attach_host(h2, (0x5, 2), None);
        rt.pump().unwrap();
        let mut app = LearningSwitch::new(rt.yfs.clone()).unwrap();
        rt.net.host_ping(h1, ip("10.0.0.2"), 1);
        settle(&mut rt, &mut app);
        assert_eq!(rt.net.hosts[&h1].ping_replies, vec![(ip("10.0.0.2"), 1)]);
        // Both hosts' MACs learned on the right ports.
        let m1 = rt.net.hosts[&h1].mac;
        let m2 = rt.net.hosts[&h2].mac;
        assert_eq!(app.learned("sw5", m1), Some(1));
        assert_eq!(app.learned("sw5", m2), Some(2));
        assert!(app.flows_installed >= 1);
        assert!(app.floods >= 1); // the initial ARP broadcast
    }
}
