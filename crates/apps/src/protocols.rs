//! Per-protocol daemons (paper §2: "there should be a distinct application
//! for each protocol the network needs to support such as DHCP, ARP, and
//! LLDP").
//!
//! * [`ArpResponder`] answers ARP requests from a host registry kept in
//!   `/net/hosts/<name>/{ip,mac}` — yanc's `hosts/` directory earning its
//!   keep — so broadcasts never need to flood the fabric.
//! * [`DhcpDaemon`] is a file-configured DHCP server: pool in
//!   `/net/dhcp/{base,size}`, leases materialized as
//!   `/net/dhcp/leases/<mac>`.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use yanc::{EventSubscription, PacketInRecord, YancFs};
use yanc_packet::{
    build_arp_reply, DhcpMessage, DhcpMessageType, EtherType, EthernetFrame, Ipv4Packet, MacAddr,
    UdpDatagram,
};
use yanc_vfs::Mode;

/// Register a host in `/net/hosts/<name>` (ip + mac files).
pub fn register_host(yfs: &YancFs, name: &str, ip: Ipv4Addr, mac: MacAddr) -> yanc::YancResult<()> {
    let dir = yfs.root().join("hosts").join(name);
    let fs = yfs.filesystem();
    fs.mkdir_all(dir.as_str(), Mode::DIR_DEFAULT, yfs.creds())?;
    fs.write_file(
        dir.join("ip").as_str(),
        ip.to_string().as_bytes(),
        yfs.creds(),
    )?;
    fs.write_file(
        dir.join("mac").as_str(),
        mac.to_string().as_bytes(),
        yfs.creds(),
    )?;
    Ok(())
}

/// Read the host registry: `ip → mac`.
pub fn host_registry(yfs: &YancFs) -> yanc::YancResult<HashMap<Ipv4Addr, MacAddr>> {
    let mut out = HashMap::new();
    let hosts_dir = yfs.root().join("hosts");
    let fs = yfs.filesystem();
    for e in fs.readdir(hosts_dir.as_str(), yfs.creds())? {
        let dir = hosts_dir.join(&e.name);
        let ip = fs.read_to_string(dir.join("ip").as_str(), yfs.creds());
        let mac = fs.read_to_string(dir.join("mac").as_str(), yfs.creds());
        if let (Ok(ip), Ok(mac)) = (ip, mac) {
            if let (Ok(ip), Ok(mac)) = (ip.trim().parse(), mac.trim().parse()) {
                out.insert(ip, mac);
            }
        }
    }
    Ok(out)
}

/// ARP daemon: answers requests for registered hosts via packet-out.
pub struct ArpResponder {
    yfs: YancFs,
    sub: EventSubscription,
    /// Replies sent (metrics).
    pub replies: usize,
}

impl ArpResponder {
    /// Subscribe as `arpd`.
    pub fn new(yfs: YancFs) -> yanc::YancResult<Self> {
        let sub = yfs.subscribe_events("arpd")?;
        Ok(ArpResponder {
            yfs,
            sub,
            replies: 0,
        })
    }

    /// Drain packet-ins, answering ARP requests we can resolve.
    pub fn run_once(&mut self) -> bool {
        let recs = self.sub.drain_all();
        let worked = !recs.is_empty();
        for rec in recs {
            self.handle(&rec);
        }
        worked
    }

    fn handle(&mut self, rec: &PacketInRecord) {
        let eth = match EthernetFrame::parse(&rec.data) {
            Ok(e) => e,
            Err(_) => return,
        };
        if eth.ethertype != EtherType::ARP {
            return;
        }
        let arp = match yanc_packet::ArpPacket::parse(&eth.payload) {
            Ok(a) => a,
            Err(_) => return,
        };
        if arp.op != yanc_packet::ArpOp::Request {
            return;
        }
        let registry = match host_registry(&self.yfs) {
            Ok(r) => r,
            Err(_) => return,
        };
        let Some(&mac) = registry.get(&arp.tpa) else {
            return;
        };
        let reply = build_arp_reply(mac, arp.tpa, arp.sha, arp.spa);
        let line = format!(
            "buffer=none in_port={} out={} data={}\n",
            yanc_openflow::port_no::NONE,
            rec.in_port,
            yanc::hex_encode(&reply)
        );
        let path = self.yfs.switch_dir(&rec.switch).join("packet_out");
        if self
            .yfs
            .filesystem()
            .append_file(path.as_str(), line.as_bytes(), self.yfs.creds())
            .is_ok()
        {
            self.replies += 1;
        }
    }
}

/// A file-configured DHCP server daemon.
pub struct DhcpDaemon {
    yfs: YancFs,
    sub: EventSubscription,
    server_ip: Ipv4Addr,
    server_mac: MacAddr,
    pool_base: Ipv4Addr,
    pool_size: u32,
    leases: HashMap<MacAddr, Ipv4Addr>,
    /// Offers + acks sent (metrics).
    pub responses: usize,
}

impl DhcpDaemon {
    /// Subscribe as `dhcpd`; pool configured via arguments and mirrored to
    /// `/net/dhcp/` files.
    pub fn new(
        yfs: YancFs,
        server_ip: Ipv4Addr,
        pool_base: Ipv4Addr,
        pool_size: u32,
    ) -> yanc::YancResult<Self> {
        let sub = yfs.subscribe_events("dhcpd")?;
        let fs = yfs.filesystem();
        let dir = yfs.root().join("dhcp");
        fs.mkdir_all(dir.join("leases").as_str(), Mode::DIR_DEFAULT, yfs.creds())?;
        fs.write_file(
            dir.join("base").as_str(),
            pool_base.to_string().as_bytes(),
            yfs.creds(),
        )?;
        fs.write_file(
            dir.join("size").as_str(),
            pool_size.to_string().as_bytes(),
            yfs.creds(),
        )?;
        Ok(DhcpDaemon {
            server_mac: MacAddr::from_seed(0xd4c9_0001),
            yfs,
            sub,
            server_ip,
            pool_base,
            pool_size,
            leases: HashMap::new(),
            responses: 0,
        })
    }

    fn allocate(&mut self, mac: MacAddr) -> Option<Ipv4Addr> {
        if let Some(&ip) = self.leases.get(&mac) {
            return Some(ip);
        }
        let n = self.leases.len() as u32;
        if n >= self.pool_size {
            return None;
        }
        let ip = Ipv4Addr::from(u32::from(self.pool_base) + n);
        self.leases.insert(mac, ip);
        // Lease as a file: `/net/dhcp/leases/<mac>` containing the IP.
        let p = self
            .yfs
            .root()
            .join("dhcp")
            .join("leases")
            .join(&mac.to_string().replace(':', "-"));
        let _ = self.yfs.filesystem().write_file(
            p.as_str(),
            ip.to_string().as_bytes(),
            self.yfs.creds(),
        );
        Some(ip)
    }

    /// Drain packet-ins, answering DHCP.
    pub fn run_once(&mut self) -> bool {
        let recs = self.sub.drain_all();
        let worked = !recs.is_empty();
        for rec in recs {
            self.handle(&rec);
        }
        worked
    }

    fn handle(&mut self, rec: &PacketInRecord) {
        let eth = match EthernetFrame::parse(&rec.data) {
            Ok(e) => e,
            Err(_) => return,
        };
        if eth.ethertype != EtherType::IPV4 {
            return;
        }
        let Ok(ip) = Ipv4Packet::parse(&eth.payload) else {
            return;
        };
        if ip.proto != yanc_packet::ip_proto::UDP {
            return;
        }
        let Ok(udp) = UdpDatagram::parse(&ip.payload, ip.src, ip.dst) else {
            return;
        };
        if udp.dst_port != 67 {
            return;
        }
        let Ok(msg) = DhcpMessage::parse(&udp.payload) else {
            return;
        };
        let reply_type = match msg.msg_type {
            DhcpMessageType::Discover => DhcpMessageType::Offer,
            DhcpMessageType::Request => DhcpMessageType::Ack,
            DhcpMessageType::Release => {
                self.leases.remove(&msg.chaddr);
                return;
            }
            _ => return,
        };
        let Some(yiaddr) = self.allocate(msg.chaddr) else {
            return;
        };
        let reply = DhcpMessage {
            msg_type: reply_type,
            xid: msg.xid,
            chaddr: msg.chaddr,
            yiaddr,
            requested_ip: None,
            server_id: Some(self.server_ip),
            lease_secs: Some(3600),
            subnet_mask: Some(Ipv4Addr::new(255, 255, 255, 0)),
        };
        let udp_reply = UdpDatagram {
            src_port: 67,
            dst_port: 68,
            payload: reply.encode(),
        };
        let ip_reply = Ipv4Packet {
            tos: 0,
            id: 0,
            ttl: 64,
            proto: yanc_packet::ip_proto::UDP,
            src: self.server_ip,
            dst: yiaddr,
            payload: udp_reply.encode(self.server_ip, yiaddr),
        };
        let frame = EthernetFrame {
            dst: msg.chaddr,
            src: self.server_mac,
            vlan: None,
            ethertype: EtherType::IPV4,
            payload: ip_reply.encode(),
        }
        .encode();
        let line = format!(
            "buffer=none in_port={} out={} data={}\n",
            yanc_openflow::port_no::NONE,
            rec.in_port,
            yanc::hex_encode(&frame)
        );
        let path = self.yfs.switch_dir(&rec.switch).join("packet_out");
        if self
            .yfs
            .filesystem()
            .append_file(path.as_str(), line.as_bytes(), self.yfs.creds())
            .is_ok()
        {
            self.responses += 1;
        }
    }
}

impl yanc::YancApp for ArpResponder {
    fn name(&self) -> &str {
        "arpd"
    }

    fn run_once(&mut self) -> yanc::YancResult<bool> {
        Ok(ArpResponder::run_once(self))
    }
}

impl yanc::YancApp for DhcpDaemon {
    fn name(&self) -> &str {
        "dhcpd"
    }

    fn run_once(&mut self) -> yanc::YancResult<bool> {
        Ok(DhcpDaemon::run_once(self))
    }

    /// `SIGHUP`: re-read the pool from `/net/dhcp/{base,size}` — an
    /// operator grows the pool with `echo`, then signals the daemon.
    fn reload(&mut self) -> yanc::YancResult<()> {
        let fs = self.yfs.filesystem();
        let dir = self.yfs.root().join("dhcp");
        if let Ok(s) = fs.read_to_string(dir.join("base").as_str(), self.yfs.creds()) {
            if let Ok(ip) = s.trim().parse() {
                self.pool_base = ip;
            }
        }
        if let Ok(s) = fs.read_to_string(dir.join("size").as_str(), self.yfs.creds()) {
            if let Ok(n) = s.trim().parse() {
                self.pool_size = n;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use yanc_driver::Runtime;
    use yanc_openflow::Version;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn registry_roundtrip() {
        let rt = Runtime::new();
        register_host(&rt.yfs, "h1", ip("10.0.0.1"), MacAddr::from_seed(1)).unwrap();
        register_host(&rt.yfs, "h2", ip("10.0.0.2"), MacAddr::from_seed(2)).unwrap();
        let reg = host_registry(&rt.yfs).unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg[&ip("10.0.0.1")], MacAddr::from_seed(1));
    }

    #[test]
    fn arp_responder_answers_without_flooding() {
        let mut rt = Runtime::new();
        rt.add_switch_with_driver(0x9, 2, 1, vec![Version::V1_0], Version::V1_0);
        let h1 = rt.net.add_host("h1", ip("10.0.0.1"));
        let h2 = rt.net.add_host("h2", ip("10.0.0.2"));
        rt.net.attach_host(h1, (0x9, 1), None);
        rt.net.attach_host(h2, (0x9, 2), None);
        rt.pump().unwrap();
        // Register h2 so the daemon can answer for it.
        let h2mac = rt.net.hosts[&h2].mac;
        register_host(&rt.yfs, "h2", ip("10.0.0.2"), h2mac).unwrap();
        let mut arpd = ArpResponder::new(rt.yfs.clone()).unwrap();
        // h1 pings h2: the initial ARP goes to the controller (table miss).
        rt.net.host_ping(h1, ip("10.0.0.2"), 1);
        loop {
            let a = rt.pump().unwrap();
            let b = arpd.run_once();
            if a <= 1 && !b {
                break;
            }
        }
        assert_eq!(arpd.replies, 1);
        // h1 learned the answer and fired the ICMP echo; h2 never saw the
        // ARP request (no flooding happened).
        assert!(rt.net.hosts[&h1].frames_received >= 1);
        // ICMP itself still misses (no flows installed by arpd) — that's
        // the router's job; here we just assert the ARP was answered.
    }

    #[test]
    fn dhcp_discover_offer_request_ack() {
        let mut rt = Runtime::new();
        rt.add_switch_with_driver(0x9, 2, 1, vec![Version::V1_3], Version::V1_3);
        let h1 = rt.net.add_host("h1", ip("0.0.0.0"));
        rt.net.attach_host(h1, (0x9, 1), None);
        rt.pump().unwrap();
        let mut dhcpd =
            DhcpDaemon::new(rt.yfs.clone(), ip("10.0.0.1"), ip("10.0.0.100"), 10).unwrap();
        let h1mac = rt.net.hosts[&h1].mac;
        // Inject a DISCOVER as the host's stack would send it.
        let discover = DhcpMessage {
            msg_type: DhcpMessageType::Discover,
            xid: 0x1234,
            chaddr: h1mac,
            yiaddr: Ipv4Addr::UNSPECIFIED,
            requested_ip: None,
            server_id: None,
            lease_secs: None,
            subnet_mask: None,
        };
        let udp = UdpDatagram {
            src_port: 68,
            dst_port: 67,
            payload: discover.encode(),
        };
        let ipp = Ipv4Packet {
            tos: 0,
            id: 0,
            ttl: 64,
            proto: yanc_packet::ip_proto::UDP,
            src: ip("0.0.0.0"),
            dst: ip("255.255.255.255"),
            payload: udp.encode(ip("0.0.0.0"), ip("255.255.255.255")),
        };
        let frame = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: h1mac,
            vlan: None,
            ethertype: EtherType::IPV4,
            payload: ipp.encode(),
        }
        .encode();
        rt.net.inject(0x9, 1, frame);
        loop {
            let a = rt.pump().unwrap();
            let b = dhcpd.run_once();
            if a <= 1 && !b {
                break;
            }
        }
        assert_eq!(dhcpd.responses, 1);
        // The lease is a file.
        let lease_name = h1mac.to_string().replace(':', "-");
        let lease = rt
            .yfs
            .filesystem()
            .read_to_string(&format!("/net/dhcp/leases/{lease_name}"), rt.yfs.creds())
            .unwrap();
        assert_eq!(lease, "10.0.0.100");
        // Same client re-requests: same address (ACK), no new lease.
        let frame2 = {
            let req = DhcpMessage {
                msg_type: DhcpMessageType::Request,
                xid: 0x1235,
                chaddr: h1mac,
                yiaddr: Ipv4Addr::UNSPECIFIED,
                requested_ip: Some(ip("10.0.0.100")),
                server_id: Some(ip("10.0.0.1")),
                lease_secs: None,
                subnet_mask: None,
            };
            let udp = UdpDatagram {
                src_port: 68,
                dst_port: 67,
                payload: req.encode(),
            };
            let ipp = Ipv4Packet {
                tos: 0,
                id: 1,
                ttl: 64,
                proto: yanc_packet::ip_proto::UDP,
                src: ip("0.0.0.0"),
                dst: ip("255.255.255.255"),
                payload: udp.encode(ip("0.0.0.0"), ip("255.255.255.255")),
            };
            EthernetFrame {
                dst: MacAddr::BROADCAST,
                src: h1mac,
                vlan: None,
                ethertype: EtherType::IPV4,
                payload: ipp.encode(),
            }
            .encode()
        };
        rt.net.inject(0x9, 1, frame2);
        loop {
            let a = rt.pump().unwrap();
            let b = dhcpd.run_once();
            if a <= 1 && !b {
                break;
            }
        }
        assert_eq!(dhcpd.responses, 2);
        assert_eq!(dhcpd.leases.len(), 1);
        let _ = Bytes::new();
    }
}
