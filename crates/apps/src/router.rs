//! The router daemon (paper §8): "handles all table misses and sets up
//! paths based on exact match through the network".
//!
//! Reactive control in its purest form: every packet-in is either flooded
//! (unknown destination) or answered by installing exact-match flow entries
//! along the shortest path — written as flow *files*, committed by version
//! bump, and installed by whichever driver manages each switch. The daemon
//! learns host locations from packets arriving on edge ports (ports with
//! no `peer` symlink).

use std::collections::HashMap;

use yanc::{EventSubscription, FlowSpec, PacketInRecord, YancFs};
use yanc_openflow::{port_no, Action, FlowMatch};
use yanc_packet::{EtherType, MacAddr, PacketSummary};

use crate::topology::{ingress_ports, shortest_path};

/// The reactive router.
pub struct RouterDaemon {
    yfs: YancFs,
    sub: EventSubscription,
    /// Learned MAC locations: `(switch, port)`.
    locations: HashMap<MacAddr, (String, u16)>,
    /// Idle timeout for installed paths (seconds; 0 = permanent).
    pub idle_timeout: u16,
    /// Count of path installations (metrics).
    pub paths_installed: usize,
    /// Count of floods (metrics).
    pub floods: usize,
    seq: u64,
}

impl RouterDaemon {
    /// Subscribe as `router`.
    pub fn new(yfs: YancFs) -> yanc::YancResult<Self> {
        let sub = yfs.subscribe_events("router")?;
        Ok(RouterDaemon {
            yfs,
            sub,
            locations: HashMap::new(),
            idle_timeout: 60,
            paths_installed: 0,
            floods: 0,
            seq: 0,
        })
    }

    /// Where the daemon believes a MAC lives.
    pub fn location_of(&self, mac: MacAddr) -> Option<&(String, u16)> {
        self.locations.get(&mac)
    }

    /// Process pending packet-ins. Returns whether any work happened.
    pub fn run_once(&mut self) -> bool {
        let records = self.sub.drain_all();
        let worked = !records.is_empty();
        for rec in records {
            self.handle(rec);
        }
        worked
    }

    fn handle(&mut self, rec: PacketInRecord) {
        let summary = match PacketSummary::parse(&rec.data) {
            Ok(s) => s,
            Err(_) => return,
        };
        if summary.dl_type == EtherType::LLDP.0 {
            return; // the topology daemon's department
        }
        // Learn the source if it entered on an edge port, and record it in
        // the hosts/ directory (Figure 2) for other applications to read.
        let is_edge = matches!(self.yfs.peer(&rec.switch, rec.in_port), Ok(None));
        if is_edge && !summary.dl_src.is_multicast() {
            let loc = (rec.switch.clone(), rec.in_port);
            if self.locations.insert(summary.dl_src, loc.clone()) != Some(loc.clone()) {
                let name = summary.dl_src.to_string().replace(':', "-");
                let dir = self.yfs.root().join("hosts").join(&name);
                let fs = self.yfs.filesystem();
                let _ = fs.mkdir_all(dir.as_str(), yanc_vfs::Mode::DIR_DEFAULT, self.yfs.creds());
                let _ = fs.write_file(
                    dir.join("mac").as_str(),
                    summary.dl_src.to_string().as_bytes(),
                    self.yfs.creds(),
                );
                let _ = fs.write_file(
                    dir.join("location").as_str(),
                    format!("{}:{}", loc.0, loc.1).as_bytes(),
                    self.yfs.creds(),
                );
                if let Some(ip) = summary.nw_src {
                    let _ = fs.write_file(
                        dir.join("ip").as_str(),
                        ip.to_string().as_bytes(),
                        self.yfs.creds(),
                    );
                }
            }
        }

        let dst = self.locations.get(&summary.dl_dst).cloned();
        match dst {
            None => self.flood(&rec),
            Some((dst_sw, dst_port)) => {
                if self
                    .install_path(&rec, &summary, &dst_sw, dst_port)
                    .is_none()
                {
                    self.flood(&rec);
                }
            }
        }
    }

    /// Flood toward hosts only: the packet is emitted on every *edge*
    /// port (ports without a `peer` symlink) of every switch, never on
    /// inter-switch links. Unlike a naive FLOOD action this cannot storm a
    /// looped fabric (e.g. a fat tree), which is how production
    /// controllers handle broadcasts too.
    fn flood(&mut self, rec: &PacketInRecord) {
        self.floods += 1;
        let switches = match self.yfs.list_switches() {
            Ok(s) => s,
            Err(_) => return,
        };
        for sw in switches {
            let ports = match self.yfs.list_ports(&sw) {
                Ok(p) => p,
                Err(_) => continue,
            };
            for port in ports {
                if sw == rec.switch && port == rec.in_port {
                    continue; // never back out the ingress
                }
                if matches!(self.yfs.peer(&sw, port), Ok(None)) {
                    self.emit_data(&sw, rec, port);
                }
            }
        }
    }

    /// Packet-out `rec`'s frame bytes on a specific switch/port (data
    /// form; buffer ids are only valid on the originating switch).
    fn emit_data(&self, sw: &str, rec: &PacketInRecord, out: u16) {
        let line = format!(
            "buffer=none in_port={} out={} data={}\n",
            port_no::NONE,
            out,
            yanc::hex_encode(&rec.data)
        );
        let path = self.yfs.switch_dir(sw).join("packet_out");
        let _ = self
            .yfs
            .filesystem()
            .append_file(path.as_str(), line.as_bytes(), self.yfs.creds());
    }

    fn packet_out(&self, sw: &str, rec: &PacketInRecord, out: u16) {
        let line = match rec.buffer_id {
            Some(id) => {
                format!("buffer={id} in_port={} out={}\n", rec.in_port, out)
            }
            None => format!(
                "buffer=none in_port={} out={} data={}\n",
                rec.in_port,
                out,
                yanc::hex_encode(&rec.data)
            ),
        };
        let path = self.yfs.switch_dir(sw).join("packet_out");
        let _ = self
            .yfs
            .filesystem()
            .append_file(path.as_str(), line.as_bytes(), self.yfs.creds());
    }

    /// Install exact-match entries along the shortest path and release the
    /// packet. Returns `None` when no path exists.
    fn install_path(
        &mut self,
        rec: &PacketInRecord,
        summary: &PacketSummary,
        dst_sw: &str,
        dst_port: u16,
    ) -> Option<()> {
        let hops = shortest_path(&self.yfs, &rec.switch, dst_sw).ok()??;
        let ingresses = ingress_ports(&self.yfs, &hops).ok()?;
        if ingresses.len() != hops.len() {
            return None; // topology changed between the two reads
        }
        // Egress ports per switch along the path, ending at the host port.
        // hops[i] = (switch_i, egress_i); switch_{i+1} ingress = ingresses[i].
        let mut plan: Vec<(String, u16, u16)> = Vec::new(); // (sw, in, out)
        let mut in_port = rec.in_port;
        for (i, (sw, egress)) in hops.iter().enumerate() {
            plan.push((sw.clone(), in_port, *egress));
            in_port = ingresses[i].1;
        }
        plan.push((dst_sw.to_string(), in_port, dst_port));

        self.seq += 1;
        let first_out = plan[0].2;
        for (sw, inp, outp) in plan {
            let m = FlowMatch {
                in_port: Some(inp),
                ..FlowMatch::exact(summary, inp)
            };
            let spec = FlowSpec {
                m,
                actions: vec![Action::out(outp)],
                priority: 40000,
                idle_timeout: self.idle_timeout,
                cookie: self.seq,
                ..Default::default()
            };
            let name = format!("rt{}_{}", self.seq, sw);
            if self.yfs.write_flow(&sw, &name, &spec).is_err() {
                return None;
            }
        }
        self.paths_installed += 1;
        // Release the buffered packet along the installed path.
        self.packet_out(&rec.switch, rec, first_out);
        Some(())
    }
}

impl yanc::YancApp for RouterDaemon {
    fn name(&self) -> &str {
        "router"
    }

    fn run_once(&mut self) -> yanc::YancResult<bool> {
        Ok(RouterDaemon::run_once(self))
    }

    /// `SIGHUP`: drop learned host locations so stale placements (hosts
    /// that moved while we were not looking) cannot pin wrong paths.
    fn reload(&mut self) -> yanc::YancResult<()> {
        self.locations.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_driver::Runtime;
    use yanc_openflow::Version;

    fn ip(s: &str) -> std::net::Ipv4Addr {
        s.parse().unwrap()
    }

    /// Pump runtime + router until quiescent.
    fn settle(rt: &mut Runtime, router: &mut RouterDaemon) {
        loop {
            let a = rt.pump().unwrap();
            let b = router.run_once();
            if a <= 1 && !b {
                break;
            }
        }
    }

    #[test]
    fn single_switch_reactive_forwarding() {
        let mut rt = Runtime::new();
        let _sw = rt.add_switch_with_driver(0x1, 4, 1, vec![Version::V1_0], Version::V1_0);
        let h1 = rt.net.add_host("h1", ip("10.0.0.1"));
        let h2 = rt.net.add_host("h2", ip("10.0.0.2"));
        rt.net.attach_host(h1, (0x1, 1), None);
        rt.net.attach_host(h2, (0x1, 2), None);
        rt.pump().unwrap();
        let mut router = RouterDaemon::new(rt.yfs.clone()).unwrap();
        rt.net.host_ping(h1, ip("10.0.0.2"), 1);
        settle(&mut rt, &mut router);
        assert_eq!(rt.net.hosts[&h1].ping_replies, vec![(ip("10.0.0.2"), 1)]);
        // The ICMP exchange after ARP runs over installed exact paths.
        assert!(
            router.paths_installed >= 1,
            "paths: {}",
            router.paths_installed
        );
        assert!(rt.net.switches[&0x1].flow_count() >= 2);
        // Second ping: no new packet-ins needed (hardware path).
        let flows_before = rt.net.switches[&0x1].flow_count();
        rt.net.host_ping(h1, ip("10.0.0.2"), 2);
        settle(&mut rt, &mut router);
        assert_eq!(rt.net.hosts[&h1].ping_replies.len(), 2);
        assert_eq!(rt.net.switches[&0x1].flow_count(), flows_before);
        // Learned hosts appear in the hosts/ directory (Figure 2 in use).
        let m1 = rt.net.hosts[&h1].mac.to_string().replace(':', "-");
        let loc = rt
            .yfs
            .filesystem()
            .read_to_string(&format!("/net/hosts/{m1}/location"), rt.yfs.creds())
            .unwrap();
        assert_eq!(loc, "sw1:1");
    }

    #[test]
    fn multi_hop_path_installation() {
        // h1 - s1 - s2 - s3 - h2, with topology links recorded in the fs.
        let mut rt = Runtime::new();
        for d in 1..=3u64 {
            rt.add_switch_with_driver(d, 4, 1, vec![Version::V1_3], Version::V1_3);
        }
        rt.net.link_switches((1, 3), (2, 1), None);
        rt.net.link_switches((2, 3), (3, 1), None);
        let h1 = rt.net.add_host("h1", ip("10.0.0.1"));
        let h2 = rt.net.add_host("h2", ip("10.0.0.2"));
        rt.net.attach_host(h1, (1, 1), None);
        rt.net.attach_host(h2, (3, 2), None);
        rt.pump().unwrap();
        // Record topology in the fs (as the topology daemon would).
        rt.yfs.set_peer("sw1", 3, "sw2", 1).unwrap();
        rt.yfs.set_peer("sw2", 1, "sw1", 3).unwrap();
        rt.yfs.set_peer("sw2", 3, "sw3", 1).unwrap();
        rt.yfs.set_peer("sw3", 1, "sw2", 3).unwrap();

        let mut router = RouterDaemon::new(rt.yfs.clone()).unwrap();
        rt.net.host_ping(h1, ip("10.0.0.2"), 7);
        settle(&mut rt, &mut router);
        assert_eq!(rt.net.hosts[&h1].ping_replies, vec![(ip("10.0.0.2"), 7)]);
        // Exact-match entries exist on every switch along the path.
        for d in 1..=3u64 {
            assert!(
                rt.net.switches[&d].flow_count() >= 1,
                "switch {d} has no flows"
            );
        }
        assert!(router.paths_installed >= 1);
    }
}
