//! A layer-4 load balancer — one of the "control-plane-centric topics such
//! as load balancing, congestion control, and security" the paper's
//! conclusion says yanc should let researchers focus on.
//!
//! Fully file-configured: the VIP and its backend pool live under
//! `/net/lb/<name>/`:
//!
//! ```text
//! /net/lb/web/
//! ├── vip        → "10.0.0.100"
//! └── servers    → one "ip mac" per line
//! ```
//!
//! The daemon answers ARP for the VIP, and on a TCP SYN to the VIP picks a
//! backend round-robin and installs **two rewrite flows** on the client's
//! edge switch: forward (dst IP/MAC rewritten to the backend) and reverse
//! (src rewritten back to the VIP) — exercising the action-rewrite
//! machinery end to end. Connection counts are written back into
//! `/net/lb/<name>/stats/<backend-ip>` so `cat` shows the balance.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use yanc::{EventSubscription, FlowSpec, PacketInRecord, YancFs};
use yanc_openflow::{port_no, Action, FlowMatch, Ipv4Prefix};
use yanc_packet::{build_arp_reply, EtherType, EthernetFrame, MacAddr, PacketSummary};
use yanc_vfs::Mode;

/// One backend server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backend {
    /// Server IP.
    pub ip: Ipv4Addr,
    /// Server MAC.
    pub mac: MacAddr,
}

/// The load-balancer daemon (serves every pool under `/net/lb/`).
pub struct LoadBalancer {
    yfs: YancFs,
    sub: EventSubscription,
    /// Round-robin cursor per pool.
    cursors: HashMap<String, usize>,
    /// Connections assigned per backend IP (also mirrored to stats files).
    pub assignments: HashMap<Ipv4Addr, u64>,
    vip_mac: MacAddr,
    seq: u64,
}

/// Write a pool definition under `/net/lb/<name>/`.
pub fn define_pool(
    yfs: &YancFs,
    name: &str,
    vip: Ipv4Addr,
    backends: &[Backend],
) -> yanc::YancResult<()> {
    let dir = yfs.root().join("lb").join(name);
    let fs = yfs.filesystem();
    fs.mkdir_all(dir.join("stats").as_str(), Mode::DIR_DEFAULT, yfs.creds())?;
    fs.write_file(
        dir.join("vip").as_str(),
        vip.to_string().as_bytes(),
        yfs.creds(),
    )?;
    let servers: String = backends
        .iter()
        .map(|b| format!("{} {}\n", b.ip, b.mac))
        .collect();
    fs.write_file(
        dir.join("servers").as_str(),
        servers.as_bytes(),
        yfs.creds(),
    )?;
    Ok(())
}

impl LoadBalancer {
    /// Subscribe as `lb`. The VIPs answer ARP with a stable virtual MAC.
    pub fn new(yfs: YancFs) -> yanc::YancResult<Self> {
        let sub = yfs.subscribe_events("lb")?;
        let fs = yfs.filesystem();
        fs.mkdir_all(
            yfs.root().join("lb").as_str(),
            Mode::DIR_DEFAULT,
            yfs.creds(),
        )?;
        Ok(LoadBalancer {
            yfs,
            sub,
            cursors: HashMap::new(),
            assignments: HashMap::new(),
            vip_mac: MacAddr::from_seed(0x1b1b_0001),
            seq: 0,
        })
    }

    /// The MAC the balancer answers VIP ARP with.
    pub fn vip_mac(&self) -> MacAddr {
        self.vip_mac
    }

    fn pools(&self) -> Vec<(String, Ipv4Addr, Vec<Backend>)> {
        let fs = self.yfs.filesystem();
        let lb_dir = self.yfs.root().join("lb");
        let mut out = Vec::new();
        let entries = match fs.readdir(lb_dir.as_str(), self.yfs.creds()) {
            Ok(e) => e,
            Err(_) => return out,
        };
        for e in entries {
            let dir = lb_dir.join(&e.name);
            let vip = fs
                .read_to_string(dir.join("vip").as_str(), self.yfs.creds())
                .ok()
                .and_then(|s| s.trim().parse().ok());
            let servers = fs.read_to_string(dir.join("servers").as_str(), self.yfs.creds());
            if let (Some(vip), Ok(servers)) = (vip, servers) {
                let backends: Vec<Backend> = servers
                    .lines()
                    .filter_map(|l| {
                        let (ip, mac) = l.trim().split_once(' ')?;
                        Some(Backend {
                            ip: ip.parse().ok()?,
                            mac: mac.parse().ok()?,
                        })
                    })
                    .collect();
                if !backends.is_empty() {
                    out.push((e.name, vip, backends));
                }
            }
        }
        out
    }

    /// Drain packet-ins; answer VIP ARP and balance VIP SYNs.
    pub fn run_once(&mut self) -> bool {
        let recs = self.sub.drain_all();
        let worked = !recs.is_empty();
        for rec in recs {
            self.handle(&rec);
        }
        worked
    }

    fn handle(&mut self, rec: &PacketInRecord) {
        let summary = match PacketSummary::parse(&rec.data) {
            Ok(s) => s,
            Err(_) => return,
        };
        let pools = self.pools();
        // ARP for a VIP: answer directly.
        if summary.dl_type == EtherType::ARP.0 && summary.nw_proto == Some(1) {
            if let Some(tpa) = summary.nw_dst {
                if pools.iter().any(|(_, vip, _)| *vip == tpa) {
                    let eth = match EthernetFrame::parse(&rec.data) {
                        Ok(e) => e,
                        Err(_) => return,
                    };
                    let reply =
                        build_arp_reply(self.vip_mac, tpa, eth.src, summary.nw_src.unwrap_or(tpa));
                    // Unicast the reply back out the requester's port.
                    self.packet_out(&rec.switch, port_no::NONE, rec.in_port, &reply);
                }
            }
            return;
        }
        // TCP toward a VIP: pick a backend and wire the rewrites.
        let (Some(dst), Some(6)) = (summary.nw_dst, summary.nw_proto) else {
            return;
        };
        let Some((pool, vip, backends)) = pools.into_iter().find(|(_, vip, _)| *vip == dst) else {
            return;
        };
        let cursor = self.cursors.entry(pool.clone()).or_insert(0);
        let backend = backends[*cursor % backends.len()];
        *cursor += 1;
        self.seq += 1;
        *self.assignments.entry(backend.ip).or_insert(0) += 1;
        let stats = self
            .yfs
            .root()
            .join("lb")
            .join(&pool)
            .join("stats")
            .join(&backend.ip.to_string());
        let _ = self.yfs.filesystem().write_file(
            stats.as_str(),
            self.assignments[&backend.ip].to_string().as_bytes(),
            self.yfs.creds(),
        );

        // Forward: client→VIP rewritten to client→backend, flooded toward
        // hosts (single-switch pools; multi-switch would compose with the
        // router's paths).
        let fwd = FlowSpec {
            m: FlowMatch {
                dl_type: Some(0x0800),
                nw_proto: Some(6),
                nw_src: summary.nw_src.map(Ipv4Prefix::host),
                nw_dst: Some(Ipv4Prefix::host(vip)),
                tp_src: summary.tp_src,
                tp_dst: summary.tp_dst,
                ..Default::default()
            },
            actions: vec![
                Action::SetDlDst(backend.mac),
                Action::SetNwDst(backend.ip),
                Action::out(port_no::FLOOD),
            ],
            priority: 50000,
            idle_timeout: 120,
            cookie: self.seq,
            ..Default::default()
        };
        // Reverse: backend→client rewritten to VIP→client.
        let rev = FlowSpec {
            m: FlowMatch {
                dl_type: Some(0x0800),
                nw_proto: Some(6),
                nw_src: Some(Ipv4Prefix::host(backend.ip)),
                nw_dst: summary.nw_src.map(Ipv4Prefix::host),
                tp_src: summary.tp_dst, // the service port
                tp_dst: summary.tp_src, // back to the client's port
                ..Default::default()
            },
            actions: vec![
                Action::SetDlSrc(self.vip_mac),
                Action::SetNwSrc(vip),
                Action::out(port_no::FLOOD),
            ],
            priority: 50000,
            idle_timeout: 120,
            cookie: self.seq,
            ..Default::default()
        };
        let client = format!(
            "{}_{}",
            summary
                .nw_src
                .map(|ip| ip.to_string().replace('.', "_"))
                .unwrap_or_else(|| "unknown".into()),
            summary.tp_src.unwrap_or(0)
        );
        let _ = self
            .yfs
            .write_flow(&rec.switch, &format!("lb_{pool}_{client}_fwd"), &fwd);
        let _ = self
            .yfs
            .write_flow(&rec.switch, &format!("lb_{pool}_{client}_rev"), &rev);
        // Release the triggering packet with the rewrite applied.
        let out_frame = match yanc_dataplane::apply_actions(&fwd.actions, &rec.data) {
            Ok(o) => o.outputs.first().map(|(_, f)| f.clone()),
            Err(_) => None,
        };
        if let Some(f) = out_frame {
            self.packet_out(&rec.switch, rec.in_port, port_no::FLOOD, &f);
        }
    }

    fn packet_out(&self, sw: &str, in_port: u16, out: u16, frame: &bytes::Bytes) {
        let line = format!(
            "buffer=none in_port={in_port} out={out} data={}\n",
            yanc::hex_encode(frame)
        );
        let path = self.yfs.switch_dir(sw).join("packet_out");
        let _ = self
            .yfs
            .filesystem()
            .append_file(path.as_str(), line.as_bytes(), self.yfs.creds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_driver::Runtime;
    use yanc_openflow::Version;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn settle(rt: &mut Runtime, lb: &mut LoadBalancer) {
        loop {
            let a = rt.pump().unwrap();
            let b = lb.run_once();
            if a <= 1 && !b {
                break;
            }
        }
    }

    #[test]
    fn pool_definition_roundtrips_through_files() {
        let rt = Runtime::new();
        let backends = [Backend {
            ip: ip("10.0.0.2"),
            mac: MacAddr::from_seed(2),
        }];
        define_pool(&rt.yfs, "web", ip("10.0.0.100"), &backends).unwrap();
        let lb = LoadBalancer::new(rt.yfs.clone()).unwrap();
        let pools = lb.pools();
        assert_eq!(pools.len(), 1);
        assert_eq!(pools[0].1, ip("10.0.0.100"));
        assert_eq!(pools[0].2, backends);
    }

    #[test]
    fn syns_are_balanced_round_robin_and_rewritten() {
        let mut rt = Runtime::new();
        rt.add_switch_with_driver(0x1, 5, 1, vec![Version::V1_3], Version::V1_3);
        let client = rt.net.add_host("client", ip("10.0.0.1"));
        let s1 = rt.net.add_host("s1", ip("10.0.0.2"));
        let s2 = rt.net.add_host("s2", ip("10.0.0.3"));
        rt.net.attach_host(client, (0x1, 1), None);
        rt.net.attach_host(s1, (0x1, 2), None);
        rt.net.attach_host(s2, (0x1, 3), None);
        rt.pump().unwrap();
        let vip = ip("10.0.0.100");
        let backends = [
            Backend {
                ip: ip("10.0.0.2"),
                mac: rt.net.hosts[&s1].mac,
            },
            Backend {
                ip: ip("10.0.0.3"),
                mac: rt.net.hosts[&s2].mac,
            },
        ];
        define_pool(&rt.yfs, "web", vip, &backends).unwrap();
        let mut lb = LoadBalancer::new(rt.yfs.clone()).unwrap();

        // Two connections from two client ports: ARP resolves to the VIP
        // MAC first, then each SYN is balanced.
        for sport in [40001u16, 40002] {
            rt.net.host_send_tcp_syn(client, vip, sport, 80);
            settle(&mut rt, &mut lb);
        }
        // One SYN landed on each backend, with the destination rewritten.
        assert_eq!(rt.net.hosts[&s1].tcp_syns_received.len(), 1);
        assert_eq!(rt.net.hosts[&s2].tcp_syns_received.len(), 1);
        assert_eq!(lb.assignments[&ip("10.0.0.2")], 1);
        assert_eq!(lb.assignments[&ip("10.0.0.3")], 1);
        // Flows installed: fwd+rev per connection... both connections share
        // the client IP so the second write replaces the first (same flow
        // name) — exactly 2 fs flows.
        let flows = rt.yfs.list_flows("sw1").unwrap();
        assert!(flows.iter().any(|f| f.ends_with("_fwd")));
        assert!(flows.iter().any(|f| f.ends_with("_rev")));
        // Stats files show the balance.
        let v = rt
            .yfs
            .filesystem()
            .read_to_string("/net/lb/web/stats/10.0.0.2", rt.yfs.creds())
            .unwrap();
        assert_eq!(v, "1");
    }
}
