//! The OpenFlow device driver (paper §4.1).
//!
//! "Analogous to device drivers in operating systems, device drivers in
//! yanc are a thin component which speaks the programming protocol
//! supported by a collection of switches." A driver instance is bound to
//! *one* protocol version — OpenFlow 1.0 or 1.3 — and translates between
//! the switch's control channel and the `/net` file tree:
//!
//! * **fs → switch**: a committed flow (its `version` file bumped) becomes
//!   a FlowMod; a deleted flow directory becomes a strict delete; writing
//!   `config.port_down` becomes a PortMod; appending to the switch's
//!   `packet_out` file becomes a PacketOut.
//! * **switch → fs**: the features handshake materializes the switch and
//!   port directories; packet-ins fan out into every app's `events/`
//!   buffer; PortStatus updates port files; FlowRemoved removes the flow
//!   directory; periodic stats land in `counters/` files.
//!
//! Capability gaps surface as files too: a flow needing `goto_table` under
//! a 1.0 driver gets an `error` file in its directory instead of silently
//! failing — applications watch for it like everything else.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Receiver;
use parking_lot::Mutex;

use libyanc::{FlowChannel, FlowOp};
use yanc::{FlowSpec, PacketInRecord, PortSpec, SchemaPos, YancFs};
use yanc_dataplane::ControlHandle;
use yanc_openflow::{
    decode, encode, multipart, FlowMod, FlowModCommand, Message, PacketInReason, PortDesc,
    Reassembler, StatsReply, StatsRequest, SwitchFeatures, Version,
};
use yanc_openflow::{flow_mod_flags, port_no, FrameCodec};
use yanc_vfs::{Event, EventKind, EventMask, LatencyHistogram, WatchGuard};

/// Driver lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverState {
    /// Waiting for the switch's HELLO.
    AwaitHello,
    /// HELLO exchanged; waiting for the features reply.
    AwaitFeatures,
    /// Waiting for the 1.3 PortDesc multipart reply.
    AwaitPorts,
    /// Fully operational.
    Ready,
    /// Version negotiation failed — the supervisor re-attaches a driver
    /// speaking a version the switch offered (see `Runtime::reattach_failed`).
    Failed,
}

impl DriverState {
    /// Lower-case name as rendered in `.proc/drivers/<sw>/state`.
    pub fn name(self) -> &'static str {
        match self {
            DriverState::AwaitHello => "await_hello",
            DriverState::AwaitFeatures => "await_features",
            DriverState::AwaitPorts => "await_ports",
            DriverState::Ready => "ready",
            DriverState::Failed => "failed",
        }
    }

    fn from_code(code: u8) -> DriverState {
        match code {
            1 => DriverState::AwaitFeatures,
            2 => DriverState::AwaitPorts,
            3 => DriverState::Ready,
            4 => DriverState::Failed,
            _ => DriverState::AwaitHello,
        }
    }
}

/// Shared, lock-free running totals for one driver, surfaced through the
/// `/net/.proc/drivers/<switch>` introspection files. Kept in an `Arc` so
/// proc render closures outlive driver borrows.
#[derive(Debug, Default)]
pub struct DriverStats {
    /// Control messages encoded and sent to the switch.
    pub msgs_tx: AtomicU64,
    /// Control messages decoded from the switch.
    pub msgs_rx: AtomicU64,
    /// FlowMod messages sent (install + delete).
    pub flow_mods: AtomicU64,
    /// Packet-ins published into app event buffers.
    pub packet_ins: AtomicU64,
    /// Flows re-installed from the fs at attach time (driver swap/restart).
    pub resyncs: AtomicU64,
    /// Whether the handshake completed.
    pub ready: AtomicBool,
    /// Mirror of [`DriverState`] (as `DriverState as u8`) for proc render
    /// closures, which outlive driver borrows.
    pub state_code: AtomicU64,
    /// Control-channel faults applied (frames dropped or reordered).
    pub faults: AtomicU64,
    /// Virtual control-channel round-trip costs: a deterministic
    /// 1µs-base + 8ns/byte model over the encoded frame size.
    pub rtt: LatencyHistogram,
}

impl DriverStats {
    fn record_tx(&self, wire_bytes: usize, is_flow_mod: bool) {
        self.msgs_tx.fetch_add(1, Ordering::Relaxed);
        if is_flow_mod {
            self.flow_mods.fetch_add(1, Ordering::Relaxed);
        }
        self.rtt.record(1_000 + 8 * wire_bytes as u64);
    }
}

/// Readiness probe for one driver: how much work is queued across its
/// three input channels (switch bytes, fastpath ring, fs watch). Shared
/// with the runtime's poll set so an event-driven scheduler can skip
/// idle drivers without calling into them — the check reads channel
/// lengths only and costs zero simulated syscalls, exactly like the
/// kernel consulting its run queue.
pub struct DriverReadiness {
    rx: Receiver<Bytes>,
    fastpath: Mutex<Option<FlowChannel>>,
    watch: Mutex<Option<Receiver<Event>>>,
}

impl DriverReadiness {
    /// Queued work units (frames + flow ops + fs events). Non-zero means
    /// the driver's next `run_once` will make progress.
    pub fn pending(&self) -> usize {
        let mut n = self.rx.len();
        if let Some(ch) = &*self.fastpath.lock() {
            n += ch.pending();
        }
        if let Some(rx) = &*self.watch.lock() {
            n += rx.len();
        }
        n
    }
}

/// One driver instance: one switch, one protocol version.
pub struct OpenFlowDriver {
    /// The protocol version this driver speaks.
    pub version: Version,
    yfs: YancFs,
    handle: ControlHandle,
    codec: FrameCodec,
    state: DriverState,
    /// Switch directory name (assigned after the features reply).
    pub switch_name: Option<String>,
    features: Option<SwitchFeatures>,
    fs_watch: Option<WatchGuard>,
    installed: HashMap<String, (u64, FlowSpec)>,
    /// Flow names the driver itself is deleting (suppresses echo).
    self_deletes: HashSet<String>,
    /// Cached port-down state to suppress PortMod echo loops.
    port_down: HashMap<u16, bool>,
    packet_out_offset: usize,
    next_xid: u32,
    /// Optional libyanc fastpath (paper §8.1): flow ops arriving here skip
    /// the file system entirely.
    fastpath: Option<FlowChannel>,
    stats: Arc<DriverStats>,
    /// The version the switch announced in its HELLO (kept even on failure,
    /// so the supervisor can pick a compatible replacement driver).
    offered_version: Option<u8>,
    /// Pending deterministic control-channel fault: drop the next N
    /// switch→driver frames.
    fault_drop: u32,
    /// Pending fault: reorder the next pair of switch→driver frames.
    fault_reorder: bool,
    /// Merges multipart stats segments back into whole replies.
    reassembler: Reassembler,
    /// Shared with the runtime's poll set (see [`DriverReadiness`]).
    readiness: Arc<DriverReadiness>,
    /// Optional stats fan-in sink (see [`crate::par`]): when attached,
    /// counter aggregates are buffered there instead of being flushed
    /// per reply, and the runtime lands one batch per epoch.
    fanin: Option<crate::par::FanInHandle>,
}

impl OpenFlowDriver {
    /// Create a driver for `version` over an attached control channel and
    /// start the handshake.
    pub fn new(version: Version, yfs: YancFs, handle: ControlHandle) -> Self {
        let readiness = Arc::new(DriverReadiness {
            rx: handle.rx.clone(),
            fastpath: Mutex::new(None),
            watch: Mutex::new(None),
        });
        let mut d = OpenFlowDriver {
            version,
            yfs,
            handle,
            codec: FrameCodec::new(),
            state: DriverState::AwaitHello,
            switch_name: None,
            features: None,
            fs_watch: None,
            installed: HashMap::new(),
            self_deletes: HashSet::new(),
            port_down: HashMap::new(),
            packet_out_offset: 0,
            next_xid: 100,
            fastpath: None,
            stats: Arc::new(DriverStats::default()),
            offered_version: None,
            fault_drop: 0,
            fault_reorder: false,
            reassembler: Reassembler::new(),
            readiness,
            fanin: None,
        };
        d.send(&Message::Hello);
        d
    }

    /// This driver's readiness probe, for registration in a poll set.
    pub fn readiness(&self) -> Arc<DriverReadiness> {
        self.readiness.clone()
    }

    /// Attach a libyanc [`FlowChannel`]; ops pushed there are drained on
    /// every [`OpenFlowDriver::run_once`] and translated straight to
    /// FlowMods — zero simulated syscalls.
    pub fn attach_fastpath(&mut self, ch: FlowChannel) {
        *self.readiness.fastpath.lock() = Some(ch.clone());
        self.fastpath = Some(ch);
        if self.switch_name.is_some() {
            // Already registered in `.proc`: refresh so the ring counters
            // show up under `.proc/drivers/<sw>/fastpath`.
            self.register_proc();
        }
    }

    /// Route this driver's stats aggregates through a fan-in combiner
    /// (see [`crate::par::FanIn`]) instead of one
    /// `write_counters_batch` per multipart reply.
    pub fn attach_fanin(&mut self, h: crate::par::FanInHandle) {
        self.fanin = Some(h);
    }

    /// Current lifecycle state.
    pub fn state(&self) -> DriverState {
        self.state
    }

    /// The protocol version the switch announced in its HELLO, if seen.
    pub fn offered_version(&self) -> Option<u8> {
        self.offered_version
    }

    /// The datapath id of the switch this driver's control channel serves.
    pub fn dpid(&self) -> u64 {
        self.handle.dpid
    }

    /// Schedule a deterministic control-channel fault: drop the next
    /// `drop_frames` switch→driver frames and/or reorder the next pair.
    /// Applied (and counted in `.proc/drivers/<sw>/faults`) on the next
    /// [`OpenFlowDriver::run_once`].
    pub fn inject_channel_fault(&mut self, drop_frames: u32, reorder: bool) {
        self.fault_drop += drop_frames;
        self.fault_reorder |= reorder;
    }

    fn set_state(&mut self, s: DriverState) {
        self.state = s;
        self.stats
            .state_code
            .store(s as u8 as u64, Ordering::Relaxed);
        self.stats
            .ready
            .store(s == DriverState::Ready, Ordering::Relaxed);
    }

    /// Whether the driver finished its handshake.
    pub fn ready(&self) -> bool {
        self.state == DriverState::Ready
    }

    /// This driver's running totals (shared with proc render closures).
    pub fn stats(&self) -> Arc<DriverStats> {
        self.stats.clone()
    }

    /// Expose this driver's state under `<root>/.proc/drivers/<switch>/`.
    /// Before the switch is known (including the Failed state, where the
    /// features reply never arrives) the entry is named after the dpid.
    /// A no-op when no proc mount covering the tree exists (registration
    /// simply fails `EINVAL` and is ignored).
    pub fn register_proc(&self) {
        let sw = match &self.switch_name {
            Some(s) => s.clone(),
            None => format!("dpid{:x}", self.handle.dpid),
        };
        let fs = self.yfs.filesystem();
        let base = self.yfs.proc_dir().join("drivers").join(&sw);
        let version = self.version;
        let _ = fs.proc_file(base.join("protocol").as_str(), move || {
            format!("{version}\n")
        });
        type Getter = fn(&DriverStats) -> u64;
        let counters: [(&str, Getter); 6] = [
            ("msgs_tx", |s| s.msgs_tx.load(Ordering::Relaxed)),
            ("msgs_rx", |s| s.msgs_rx.load(Ordering::Relaxed)),
            ("flow_mods", |s| s.flow_mods.load(Ordering::Relaxed)),
            ("packet_ins", |s| s.packet_ins.load(Ordering::Relaxed)),
            ("resyncs", |s| s.resyncs.load(Ordering::Relaxed)),
            ("faults", |s| s.faults.load(Ordering::Relaxed)),
        ];
        for (file, get) in counters {
            let st = self.stats.clone();
            let _ = fs.proc_file(base.join(file).as_str(), move || format!("{}\n", get(&st)));
        }
        let st = self.stats.clone();
        let _ = fs.proc_file(base.join("ready").as_str(), move || {
            format!("{}\n", st.ready.load(Ordering::Relaxed) as u8)
        });
        let st = self.stats.clone();
        let _ = fs.proc_file(base.join("rtt").as_str(), move || {
            format!("{}\n", st.rtt.summary())
        });
        let st = self.stats.clone();
        let _ = fs.proc_file(base.join("state").as_str(), move || {
            format!(
                "{}\n",
                DriverState::from_code(st.state_code.load(Ordering::Relaxed) as u8).name()
            )
        });
        if let Some(ch) = &self.fastpath {
            let ch = ch.clone();
            let _ = fs.proc_file(base.join("fastpath").as_str(), move || {
                format!("{}\n", ch.stats().render())
            });
        }
    }

    fn xid(&mut self) -> u32 {
        self.next_xid += 1;
        self.next_xid
    }

    fn send(&mut self, msg: &Message) -> bool {
        let xid = self.xid();
        match encode(self.version, msg, xid) {
            Ok(b) => {
                self.stats
                    .record_tx(b.len(), matches!(msg, Message::FlowMod(_)));
                self.handle.tx.send(b).is_ok()
            }
            Err(_) => false,
        }
    }

    /// Process pending work (switch messages + fs events), non-blocking.
    /// Returns whether anything was done.
    pub fn run_once(&mut self) -> bool {
        let mut worked = false;
        // Switch → driver bytes, with any scheduled channel fault applied
        // first (each switch send is one framed chunk, so chunk granularity
        // IS frame granularity).
        let mut chunks: Vec<Bytes> = Vec::new();
        while let Ok(bytes) = self.handle.rx.try_recv() {
            chunks.push(bytes);
        }
        if self.fault_reorder && chunks.len() >= 2 {
            chunks.swap(0, 1);
            self.fault_reorder = false;
            self.stats.faults.fetch_add(1, Ordering::Relaxed);
        }
        while self.fault_drop > 0 && !chunks.is_empty() {
            chunks.remove(0);
            self.fault_drop -= 1;
            self.stats.faults.fetch_add(1, Ordering::Relaxed);
        }
        for bytes in chunks {
            worked = true;
            self.codec.feed(&bytes);
            while let Ok(Some(raw)) = self.codec.next_frame() {
                // HELLO carries the switch's best version; anything else is
                // decoded at face value (frames are version-tagged).
                if raw.msg_type == 0 {
                    self.on_hello(raw.version);
                    continue;
                }
                // Stats replies may arrive segmented (REPLY_MORE): feed
                // them through the reassembler and dispatch only whole
                // replies. A malformed stream (type switch, forged flag)
                // drops the partial reply; the next poll starts clean.
                if multipart::is_stats_reply(&raw) {
                    self.stats.msgs_rx.fetch_add(1, Ordering::Relaxed);
                    match multipart::decode_part(&raw).and_then(|part| self.reassembler.push(part))
                    {
                        Ok(Some(rep)) => self.on_message(Message::StatsReply(rep)),
                        Ok(None) => {} // more segments on the way
                        Err(_) => self.reassembler.reset(),
                    }
                    continue;
                }
                if let Ok(msg) = decode(&raw) {
                    self.stats.msgs_rx.fetch_add(1, Ordering::Relaxed);
                    self.on_message(msg);
                }
            }
        }
        // Fastpath ops (shared-memory ring, no fs involvement).
        if self.ready() {
            let ops = match &self.fastpath {
                Some(ch) => ch.drain(),
                None => Vec::new(),
            };
            for op in ops {
                worked = true;
                match op {
                    FlowOp::Install { name, spec, .. } => {
                        let mut fm = FlowMod::add(spec.m, spec.priority, spec.actions.clone());
                        fm.idle_timeout = spec.idle_timeout;
                        fm.hard_timeout = spec.hard_timeout;
                        fm.cookie = spec.cookie;
                        fm.goto_table = spec.goto_table;
                        if let Some((_, old)) = self.installed.get(&name) {
                            if old.m != spec.m || old.priority != spec.priority {
                                let mut del = FlowMod::add(old.m, old.priority, vec![]);
                                del.command = FlowModCommand::DeleteStrict;
                                self.send(&Message::FlowMod(del));
                            }
                        }
                        self.send(&Message::FlowMod(fm));
                        // Recorded at version 0 so a later fs-side commit of
                        // the same name (version >= 1) supersedes it.
                        self.installed.insert(name, (0, spec));
                    }
                    FlowOp::Delete { name, .. } => {
                        if let Some((_, old)) = self.installed.remove(&name) {
                            let mut del = FlowMod::add(old.m, old.priority, vec![]);
                            del.command = FlowModCommand::DeleteStrict;
                            self.send(&Message::FlowMod(del));
                        }
                    }
                }
            }
        }
        // fs → driver events.
        let events: Vec<Event> = match &self.fs_watch {
            Some(w) => w.receiver().try_iter().collect(),
            None => Vec::new(),
        };
        for ev in events {
            worked = true;
            self.on_fs_event(ev);
        }
        worked
    }

    // ------------------------------------------------------------------
    // Switch-side handlers
    // ------------------------------------------------------------------

    fn on_hello(&mut self, switch_version: u8) {
        if self.state != DriverState::AwaitHello {
            return;
        }
        self.offered_version = Some(switch_version);
        if switch_version < self.version.wire() {
            // The switch cannot speak our version: this driver is the wrong
            // one (the admin runs one driver per protocol version). Publish
            // the failure so the supervisor can see it and re-attach.
            self.set_state(DriverState::Failed);
            self.register_proc();
            return;
        }
        self.set_state(DriverState::AwaitFeatures);
        // Ask for whole packets on misses (the default 128-byte truncation
        // would cut DHCP payloads short), then learn the switch's shape.
        self.send(&Message::SetConfig {
            miss_send_len: 0xffff,
        });
        self.send(&Message::FeaturesRequest);
    }

    fn on_message(&mut self, msg: Message) {
        match msg {
            Message::FeaturesReply(f) => self.on_features(f),
            Message::StatsReply(StatsReply::PortDesc(ports)) => self.on_port_desc(ports),
            Message::StatsReply(rep) => self.on_stats(rep),
            Message::PacketIn {
                buffer_id,
                in_port,
                reason,
                data,
                ..
            } => {
                if let Some(sw) = self.switch_name.clone() {
                    self.stats.packet_ins.fetch_add(1, Ordering::Relaxed);
                    let _ = self.yfs.publish_packet_in(&PacketInRecord {
                        switch: sw,
                        in_port,
                        buffer_id,
                        reason: match reason {
                            PacketInReason::NoMatch => "no_match".into(),
                            PacketInReason::Action => "action".into(),
                        },
                        data,
                    });
                }
            }
            Message::PortStatus { desc, .. } => self.on_port_status(desc),
            Message::FlowRemoved { m, priority, .. } => {
                // Find the fs flow matching the removed entry and drop it.
                let name = self
                    .installed
                    .iter()
                    .find(|(_, (_, s))| s.m == m && s.priority == priority)
                    .map(|(n, _)| n.clone());
                if let (Some(name), Some(sw)) = (name, self.switch_name.clone()) {
                    self.self_deletes.insert(name.clone());
                    let _ = self.yfs.delete_flow(&sw, &name);
                    self.installed.remove(&name);
                }
            }
            Message::EchoRequest(data) => {
                self.send(&Message::EchoReply(data));
            }
            Message::Error { err_type, code, .. } => {
                if let Some(sw) = self.switch_name.clone() {
                    let p = self.yfs.switch_dir(&sw).join("last_error");
                    let _ = self.yfs.filesystem().write_file(
                        p.as_str(),
                        format!("type={err_type} code={code}").as_bytes(),
                        self.yfs.creds(),
                    );
                }
            }
            _ => {}
        }
    }

    fn on_features(&mut self, f: SwitchFeatures) {
        if self.state != DriverState::AwaitFeatures {
            return;
        }
        let name = format!("sw{:x}", f.datapath_id);
        // Batched materialization: skeleton mkdir + one write_batch_at
        // carrying every metadata file (including `protocol`) — a fixed
        // 4-syscall budget per switch, which is what keeps data-center
        // fabrics (§8) affordable to bring up.
        let _ = self.yfs.create_switch_batch(
            &name,
            f.datapath_id,
            f.capabilities,
            f.actions,
            f.n_buffers,
            f.n_tables,
            &self.version.to_string(),
        );
        self.switch_name = Some(name.clone());
        let ports = f.ports.clone();
        self.features = Some(f);
        if self.version == Version::V1_0 {
            self.materialize_ports(&ports);
            self.finish_setup();
        } else {
            self.set_state(DriverState::AwaitPorts);
            self.send(&Message::StatsRequest(StatsRequest::PortDesc));
        }
    }

    fn on_port_desc(&mut self, ports: Vec<PortDesc>) {
        if self.state != DriverState::AwaitPorts {
            return;
        }
        self.materialize_ports(&ports);
        self.finish_setup();
    }

    fn materialize_ports(&mut self, ports: &[PortDesc]) {
        let sw = match &self.switch_name {
            Some(s) => s.clone(),
            None => return,
        };
        // One descriptor-relative sweep for the whole port set: ports + 3
        // charged syscalls instead of ~7 per port.
        let specs: Vec<PortSpec> = ports
            .iter()
            .map(|p| PortSpec {
                port_no: p.port_no,
                hw_addr: p.hw_addr.to_string(),
                curr_speed: p.curr_speed,
                max_speed: p.max_speed,
                link_up: !p.link_down,
                config_down: p.config_down,
            })
            .collect();
        let _ = self.yfs.create_ports_batch(&sw, &specs);
        for p in ports {
            self.port_down.insert(p.port_no, p.config_down);
        }
    }

    fn finish_setup(&mut self) {
        let sw = self.switch_name.clone().expect("features seen");
        let dir = self.yfs.switch_dir(&sw);
        // Ensure the packet_out interface file exists before watching.
        let _ = self.yfs.filesystem().write_file(
            dir.join("packet_out").as_str(),
            b"",
            self.yfs.creds(),
        );
        self.packet_out_offset = 0;
        self.fs_watch = self
            .yfs
            .filesystem()
            .watch(dir.as_str())
            .subtree()
            .mask(EventMask::ALL)
            .register()
            .ok();
        *self.readiness.watch.lock() = self.fs_watch.as_ref().map(|w| w.receiver().clone());
        self.set_state(DriverState::Ready);
        self.stats.ready.store(true, Ordering::Relaxed);
        // Install any flows that already exist in the tree (e.g. written
        // before the driver attached, or by a remote controller node).
        if let Ok(flows) = self.yfs.list_flows(&sw) {
            for name in flows {
                self.stats.resyncs.fetch_add(1, Ordering::Relaxed);
                self.sync_flow(&sw, &name);
            }
        }
        self.register_proc();
    }

    fn on_port_status(&mut self, desc: PortDesc) {
        let sw = match &self.switch_name {
            Some(s) => s.clone(),
            None => return,
        };
        // Create the port if it's new (hotplug), then reflect state.
        let dir = self.yfs.port_dir(&sw, desc.port_no);
        if !self.yfs.filesystem().exists(dir.as_str(), self.yfs.creds()) {
            let _ = self.yfs.create_port(
                &sw,
                desc.port_no,
                &desc.hw_addr.to_string(),
                desc.curr_speed,
                desc.max_speed,
            );
        }
        let _ = self.yfs.set_port_status(&sw, desc.port_no, !desc.link_down);
        let cached = self.port_down.get(&desc.port_no).copied();
        if cached != Some(desc.config_down) {
            self.port_down.insert(desc.port_no, desc.config_down);
            let _ = self.yfs.set_port_down(&sw, desc.port_no, desc.config_down);
        }
    }

    fn on_stats(&mut self, rep: StatsReply) {
        let sw = match &self.switch_name {
            Some(s) => s.clone(),
            None => return,
        };
        // Every counter in the (reassembled) reply lands through a single
        // open + write_batch_at + close against the switch directory —
        // three charged syscalls per stats delivery, independent of the
        // number of ports or flows reported.
        let mut entries: Vec<(String, u64)> = Vec::new();
        match rep {
            StatsReply::Port(ports) => {
                for p in &ports {
                    // Ports never materialized in the fs can't land
                    // counters (the per-file path just failed silently);
                    // the port_down cache tracks exactly the materialized
                    // set, so the check is free.
                    if !self.port_down.contains_key(&p.port_no) {
                        continue;
                    }
                    let base = format!("ports/p{}/counters", p.port_no);
                    entries.push((format!("{base}/rx_packets"), p.rx_packets));
                    entries.push((format!("{base}/tx_packets"), p.tx_packets));
                    entries.push((format!("{base}/rx_bytes"), p.rx_bytes));
                    entries.push((format!("{base}/tx_bytes"), p.tx_bytes));
                    entries.push((format!("{base}/rx_dropped"), p.rx_dropped));
                    entries.push((format!("{base}/tx_dropped"), p.tx_dropped));
                }
            }
            StatsReply::Flow(flows) => {
                let mut total_pkts = 0u64;
                let mut total_bytes = 0u64;
                for fstat in &flows {
                    total_pkts += fstat.packet_count;
                    total_bytes += fstat.byte_count;
                    // Version >= 1 means the flow exists as a directory in
                    // the fs; fastpath-only flows (version 0) have nowhere
                    // to land per-flow counters.
                    let name = self
                        .installed
                        .iter()
                        .find(|(_, (v, s))| {
                            *v >= 1 && s.m == fstat.m && s.priority == fstat.priority
                        })
                        .map(|(n, _)| n.clone());
                    if let Some(name) = name {
                        let base = format!("flows/{name}/counters");
                        entries.push((format!("{base}/packets"), fstat.packet_count));
                        entries.push((format!("{base}/bytes"), fstat.byte_count));
                        entries.push((format!("{base}/duration_sec"), fstat.duration_sec.into()));
                    }
                }
                entries.push(("counters/flow_packets".to_string(), total_pkts));
                entries.push(("counters/flow_bytes".to_string(), total_bytes));
            }
            _ => return,
        }
        match &mut self.fanin {
            // Fan-in attached: buffer worker-locally; the runtime lands
            // everything in one batched flush per epoch.
            Some(h) => h.push(&sw, entries),
            None => {
                let dir = self.yfs.switch_dir(&sw);
                let _ = self.yfs.write_counters_batch(&dir, &entries);
            }
        }
    }

    // ------------------------------------------------------------------
    // fs-side handlers
    // ------------------------------------------------------------------

    fn on_fs_event(&mut self, ev: Event) {
        let sw = match &self.switch_name {
            Some(s) => s.clone(),
            None => return,
        };
        let pos = yanc::classify(self.yfs.root(), &ev.path);
        match (ev.kind, pos) {
            // Flow commit: the version file changed.
            (EventKind::CloseWrite, SchemaPos::FlowFile { flow, file, .. })
                if file == "version" =>
            {
                self.sync_flow(&sw, &flow);
            }
            // Flow directory deleted.
            (EventKind::Delete, SchemaPos::FlowDir { flow, .. }) => {
                if self.self_deletes.remove(&flow) {
                    return; // our own FlowRemoved-driven cleanup
                }
                if let Some((_, spec)) = self.installed.remove(&flow) {
                    let mut fm = FlowMod::add(spec.m, spec.priority, vec![]);
                    fm.command = FlowModCommand::DeleteStrict;
                    self.send(&Message::FlowMod(fm));
                }
            }
            // Port admin state.
            (EventKind::CloseWrite, _) if ev.path.file_name() == Some("config.port_down") => {
                // …/ports/p<no>/config.port_down
                let port_dir = ev.path.parent();
                if let Some(pn) = port_dir
                    .file_name()
                    .and_then(|n| n.strip_prefix('p'))
                    .and_then(|n| n.parse::<u16>().ok())
                {
                    if let Ok(down) = self.yfs.port_down(&sw, pn) {
                        if self.port_down.get(&pn) != Some(&down) {
                            self.port_down.insert(pn, down);
                            let hw = self
                                .features
                                .as_ref()
                                .and_then(|f| f.ports.iter().find(|p| p.port_no == pn))
                                .map(|p| p.hw_addr)
                                .unwrap_or(yanc_packet::MacAddr::ZERO);
                            self.send(&Message::PortMod {
                                port_no: pn,
                                hw_addr: hw,
                                down,
                            });
                        }
                    }
                }
            }
            // Packet-out request file.
            (EventKind::CloseWrite, _) if ev.path.file_name() == Some("packet_out") => {
                self.drain_packet_out(&sw);
            }
            _ => {}
        }
    }

    /// Read a flow from the fs and install it if its version is newer than
    /// what the switch has.
    fn sync_flow(&mut self, sw: &str, flow: &str) {
        let spec = match self.yfs.read_flow(sw, flow) {
            Ok(s) => s,
            Err(e) => {
                // A *committed* flow that doesn't parse is a user error:
                // report it in the flow directory, like capability gaps.
                if self
                    .yfs
                    .flow_version(sw, flow)
                    .map(|v| v > 0)
                    .unwrap_or(false)
                {
                    let p = self.yfs.flow_dir(sw, flow).join("error");
                    let _ = self.yfs.filesystem().write_file(
                        p.as_str(),
                        e.to_string().as_bytes(),
                        self.yfs.creds(),
                    );
                }
                return;
            }
        };
        if spec.version == 0 {
            return; // created but never committed
        }
        if let Some((v, old)) = self.installed.get(flow) {
            if *v >= spec.version {
                return;
            }
            // The fs flow was rewritten with a different match/priority:
            // the switch entry it used to denote must go, or it lingers.
            if old.m != spec.m || old.priority != spec.priority {
                let mut del = FlowMod::add(old.m, old.priority, vec![]);
                del.command = FlowModCommand::DeleteStrict;
                self.send(&Message::FlowMod(del));
            }
        }
        let mut fm = FlowMod::add(spec.m, spec.priority, spec.actions.clone());
        fm.idle_timeout = spec.idle_timeout;
        fm.hard_timeout = spec.hard_timeout;
        fm.cookie = spec.cookie;
        fm.goto_table = spec.goto_table;
        fm.flags = flow_mod_flags::SEND_FLOW_REM;
        let xid = self.xid();
        let flow_dir = self.yfs.flow_dir(sw, flow);
        match encode(self.version, &Message::FlowMod(fm), xid) {
            Ok(bytes) => {
                self.stats.record_tx(bytes.len(), true);
                let _ = self.handle.tx.send(bytes);
                self.installed
                    .insert(flow.to_string(), (spec.version, spec));
                // Clear any stale capability error.
                let _ = self
                    .yfs
                    .filesystem()
                    .unlink(flow_dir.join("error").as_str(), self.yfs.creds());
            }
            Err(e) => {
                // Capability mismatch (e.g. goto_table on a 1.0 driver):
                // reported through the file system, like everything else.
                let _ = self.yfs.filesystem().write_file(
                    flow_dir.join("error").as_str(),
                    e.to_string().as_bytes(),
                    self.yfs.creds(),
                );
            }
        }
    }

    /// Parse appended `packet_out` lines:
    /// `buffer=<id|none> in_port=<n> out=<tok[,tok…]> [data=<hex>]`.
    fn drain_packet_out(&mut self, sw: &str) {
        let path = self.yfs.switch_dir(sw).join("packet_out");
        let content = match self
            .yfs
            .filesystem()
            .read_to_string(path.as_str(), self.yfs.creds())
        {
            Ok(c) => c,
            Err(_) => return,
        };
        let fresh = &content[self.packet_out_offset.min(content.len())..];
        self.packet_out_offset = content.len();
        let lines: Vec<String> = fresh.lines().map(str::to_string).collect();
        for line in lines {
            if let Some(msg) = parse_packet_out_line(&line) {
                self.send(&msg);
            }
        }
        // Compact: the file is an append-only command stream; once consumed
        // it would otherwise grow (and hold memory) forever.
        if self.packet_out_offset > 64 * 1024 {
            let _ = self
                .yfs
                .filesystem()
                .truncate(path.as_str(), 0, self.yfs.creds());
            self.packet_out_offset = 0;
        }
    }

    /// Ask the switch for current port + flow statistics; replies land in
    /// `counters/` files. Call periodically.
    pub fn poll_stats(&mut self) {
        if !self.ready() {
            return;
        }
        self.send(&Message::StatsRequest(StatsRequest::Port {
            port_no: port_no::NONE,
        }));
        self.send(&Message::StatsRequest(StatsRequest::Flow {
            table_id: 0xff,
            m: yanc_openflow::FlowMatch::any(),
        }));
    }
}

/// Parse one `packet_out` command line (see [`OpenFlowDriver`] docs).
pub fn parse_packet_out_line(line: &str) -> Option<Message> {
    let mut buffer_id = None;
    let mut in_port = port_no::NONE;
    let mut actions = Vec::new();
    let mut data = Bytes::new();
    for tok in line.split_whitespace() {
        let (k, v) = tok.split_once('=')?;
        match k {
            "buffer" => {
                if v != "none" {
                    buffer_id = Some(v.parse().ok()?);
                }
            }
            "in_port" => in_port = v.parse().ok()?,
            "out" => {
                for t in v.split(',') {
                    actions.push(yanc_openflow::Action::out(
                        yanc::parse_port_token("out", t).ok()?,
                    ));
                }
            }
            "data" => data = Bytes::from(yanc::hex_decode(v)?),
            _ => return None,
        }
    }
    if buffer_id.is_none() && data.is_empty() {
        return None;
    }
    Some(Message::PacketOut {
        buffer_id,
        in_port,
        actions,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_out_line_parsing() {
        let m = parse_packet_out_line("buffer=42 in_port=3 out=flood").unwrap();
        match m {
            Message::PacketOut {
                buffer_id,
                in_port,
                actions,
                ..
            } => {
                assert_eq!(buffer_id, Some(42));
                assert_eq!(in_port, 3);
                assert_eq!(actions, vec![yanc_openflow::Action::out(port_no::FLOOD)]);
            }
            _ => panic!(),
        }
        let m = parse_packet_out_line("buffer=none in_port=1 out=2,3 data=0102ff").unwrap();
        match m {
            Message::PacketOut {
                buffer_id,
                actions,
                data,
                ..
            } => {
                assert_eq!(buffer_id, None);
                assert_eq!(actions.len(), 2);
                assert_eq!(&data[..], &[1, 2, 0xff]);
            }
            _ => panic!(),
        }
        assert!(parse_packet_out_line("").is_none());
        assert!(parse_packet_out_line("buffer=none in_port=1 out=flood").is_none()); // no data
        assert!(parse_packet_out_line("junk").is_none());
    }
}
