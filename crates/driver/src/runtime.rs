//! A single-process runtime wiring the simulated network, the yanc file
//! system and one driver per switch, with deterministic pumping.
//!
//! Examples, tests and benchmarks all use this: build a topology, attach
//! drivers, then alternate `pump()` (deliver frames, run drivers) until
//! quiescent. Applications remain plain file-system programs — they never
//! see the runtime.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use yanc::{YancError, YancFs, YancResult};
use yanc_dataplane::Network;
use yanc_openflow::Version;
use yanc_vfs::{Errno, Filesystem, PollSet};

use crate::driver::{DriverReadiness, DriverState, OpenFlowDriver};

/// Atomic mirror of [`yanc_dataplane::NetStats`], refreshed at the end of
/// every [`Runtime::pump`] so proc render closures (which cannot borrow the
/// mutably-owned `Network`) read consistent figures. Shared with the
/// parallel executor ([`crate::par::ParRuntime`]), which has the same
/// borrow problem on its coordinator thread.
#[derive(Debug, Default)]
pub(crate) struct SharedNetStats {
    frames_delivered: AtomicU64,
    control_deliveries: AtomicU64,
    events: AtomicU64,
}

impl SharedNetStats {
    /// Refresh the mirror from the network's live counters.
    pub(crate) fn sync_from(&self, s: &yanc_dataplane::NetStats) {
        self.frames_delivered
            .store(s.frames_delivered, Ordering::Relaxed);
        self.control_deliveries
            .store(s.control_deliveries, Ordering::Relaxed);
        self.events.store(s.events, Ordering::Relaxed);
    }

    /// Expose the mirror under `<proc>/dataplane/{events,frames_delivered,
    /// control_deliveries}`.
    pub(crate) fn register_proc(self: &Arc<Self>, yfs: &YancFs) -> yanc::YancResult<()> {
        let base = yfs.proc_dir().join("dataplane");
        let fs = yfs.filesystem();
        type Getter = fn(&SharedNetStats) -> &AtomicU64;
        let counters: [(&str, Getter); 3] = [
            ("events", |s| &s.events),
            ("frames_delivered", |s| &s.frames_delivered),
            ("control_deliveries", |s| &s.control_deliveries),
        ];
        for (file, get) in counters {
            let st = self.clone();
            fs.proc_file(base.join(file).as_str(), move || {
                format!("{}\n", get(&st).load(Ordering::Relaxed))
            })?;
        }
        Ok(())
    }
}

/// Scheduler counters for the event-driven pump, rendered at
/// `/net/.proc/driver/sched` (same discipline as the supervisor's
/// skip-non-ready app scheduling): how often drivers were dispatched vs
/// skipped, and how many whole pumps found nothing to do at all.
#[derive(Debug, Default)]
pub struct SchedStats {
    /// Ready drivers dispatched (`run_once` called).
    pub runs: AtomicU64,
    /// Drivers skipped because their readiness probe reported no work.
    pub skips: AtomicU64,
    /// `pump()` calls that found a fully idle system: zero iterations,
    /// zero driver sweeps — the idle-fabric-costs-nothing guarantee.
    pub idle_pumps: AtomicU64,
    /// Poll-set rebuilds after the driver set changed.
    pub rebuilds: AtomicU64,
}

impl SchedStats {
    pub(crate) fn render(&self) -> String {
        format!(
            "runs {}\nskips {}\nidle_pumps {}\nrebuilds {}\n",
            self.runs.load(Ordering::Relaxed),
            self.skips.load(Ordering::Relaxed),
            self.idle_pumps.load(Ordering::Relaxed),
            self.rebuilds.load(Ordering::Relaxed),
        )
    }
}

/// Poll-set bookkeeping shared by the serial [`Runtime`] and the parallel
/// [`crate::par::ParRuntime`]: one readiness probe per driver registered
/// in a vfs poll set, plus the token→driver-index map a scan needs to
/// attribute readiness back to drivers.
///
/// The identity check runs **every sweep**, not just at pump entry: a
/// driver attached mid-pump (a reattach fired from a worker thread, a
/// staged test injection) shifts or extends the driver vector, and a
/// poll set built at pump entry would keep reporting through the *old*
/// token map — at best attributing readiness to the wrong driver, at
/// worst dropping the new driver's edge entirely so the pump quiesces
/// with work still queued. Re-checking per sweep is free when nothing
/// changed (length compare + pairwise `Arc::ptr_eq`).
pub(crate) struct PollBook {
    poll: Option<PollSet>,
    probes: Vec<Arc<DriverReadiness>>,
    index: HashMap<u64, usize>,
}

impl PollBook {
    pub(crate) fn new() -> Self {
        PollBook {
            poll: None,
            probes: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Rebuild iff the driver set changed since the last call (detected by
    /// probe identity, not tracked by mutation — callers mutate driver
    /// vectors directly). Counted in [`SchedStats::rebuilds`].
    pub(crate) fn refresh(
        &mut self,
        yfs: &YancFs,
        probes: Vec<Arc<DriverReadiness>>,
        dpids: &[u64],
        sched: &SchedStats,
    ) {
        let unchanged = self.poll.is_some()
            && self.probes.len() == probes.len()
            && probes
                .iter()
                .zip(&self.probes)
                .all(|(a, b)| Arc::ptr_eq(a, b));
        if unchanged {
            return;
        }
        let poll = yfs.filesystem().poll_create(yfs.creds());
        self.index.clear();
        for (i, (p, dpid)) in probes.iter().zip(dpids).enumerate() {
            let p = p.clone();
            let token = poll.add_probe(&format!("driver/dpid{dpid:x}"), move || p.pending());
            self.index.insert(token.0, i);
        }
        self.probes = probes;
        self.poll = Some(poll);
        sched.rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// One free readiness scan: `ready[i]` is whether driver `i` has
    /// queued work. The scan rotates the poll set's fairness cursor but
    /// the result is index-addressed, so dispatch order stays the
    /// driver-vector order — deterministic across runs.
    pub(crate) fn scan(&self, n_drivers: usize) -> Vec<bool> {
        let mut ready = vec![false; n_drivers];
        if let Some(p) = &self.poll {
            for ev in p.poll_ready(n_drivers) {
                if let Some(&i) = self.index.get(&ev.token.0) {
                    if i < n_drivers {
                        ready[i] = true;
                    }
                }
            }
        }
        ready
    }
}

/// Network + file system + drivers, pumped together.
pub struct Runtime {
    /// The simulated network.
    pub net: Network,
    /// Per-switch drivers.
    pub drivers: Vec<OpenFlowDriver>,
    /// The yanc file tree.
    pub yfs: YancFs,
    shared_stats: Arc<SharedNetStats>,
    sched: Arc<SchedStats>,
    /// Readiness sources for the current driver set: one probe per driver
    /// in a vfs poll set, scanned free per sweep (the kernel walking its
    /// run queue). Rebuilt whenever the driver set changes.
    book: PollBook,
}

impl Runtime {
    /// A fresh runtime with an empty network and an initialized `/net`.
    pub fn new() -> Self {
        let fs = Arc::new(Filesystem::new());
        let yfs = YancFs::init(fs, "/net").expect("init /net");
        Runtime {
            net: Network::new(),
            drivers: Vec::new(),
            yfs,
            shared_stats: Arc::new(SharedNetStats::default()),
            sched: Arc::new(SchedStats::default()),
            book: PollBook::new(),
        }
    }

    /// A runtime sharing an existing filesystem (for namespace / DFS
    /// experiments where several runtimes see one tree).
    pub fn with_fs(fs: Arc<Filesystem>) -> Self {
        let yfs = YancFs::init(fs, "/net").expect("init /net");
        Runtime {
            net: Network::new(),
            drivers: Vec::new(),
            yfs,
            shared_stats: Arc::new(SharedNetStats::default()),
            sched: Arc::new(SchedStats::default()),
            book: PollBook::new(),
        }
    }

    /// The event-driven scheduler's counters (also rendered at
    /// `/net/.proc/driver/sched` once introspection is on).
    pub fn sched_stats(&self) -> Arc<SchedStats> {
        self.sched.clone()
    }

    /// Mount `/net/.proc` (via [`YancFs::enable_introspection`]) and expose
    /// dataplane aggregates plus per-driver state beneath it. Drivers that
    /// attach later register themselves as part of their handshake.
    pub fn enable_introspection(&mut self) -> yanc::YancResult<()> {
        self.yfs.enable_introspection()?;
        self.shared_stats.register_proc(&self.yfs)?;
        let sched = self.sched.clone();
        self.yfs.filesystem().proc_file(
            self.yfs.proc_dir().join("driver").join("sched").as_str(),
            move || sched.render(),
        )?;
        self.sync_shared_stats();
        for d in &self.drivers {
            d.register_proc();
        }
        Ok(())
    }

    fn sync_shared_stats(&self) {
        self.shared_stats.sync_from(&self.net.stats);
    }

    /// Add a switch to the network and attach a driver speaking
    /// `driver_version`. Returns the yanc switch name (`sw<dpid:hex>`).
    pub fn add_switch_with_driver(
        &mut self,
        dpid: u64,
        n_ports: u16,
        n_tables: u8,
        switch_versions: Vec<Version>,
        driver_version: Version,
    ) -> String {
        let name = format!("sw{dpid:x}");
        self.net
            .add_switch(dpid, &name, n_ports, n_tables, switch_versions);
        let handle = self.net.attach_controller(dpid);
        self.drivers.push(OpenFlowDriver::new(
            driver_version,
            self.yfs.clone(),
            handle,
        ));
        name
    }

    /// Re-attach a switch to a fresh driver (protocol upgrade, §4.1): the
    /// old driver is dropped, the switch re-handshakes.
    pub fn swap_driver(&mut self, dpid: u64, driver_version: Version) {
        self.drivers
            .retain(|d| d.switch_name.as_deref() != Some(format!("sw{dpid:x}").as_str()));
        self.net.detach_controller(dpid);
        let handle = self.net.attach_controller(dpid);
        self.drivers.push(OpenFlowDriver::new(
            driver_version,
            self.yfs.clone(),
            handle,
        ));
    }

    /// Drivers currently in [`DriverState::Failed`], as
    /// `(dpid, version offered by the switch)` pairs.
    pub fn failed_drivers(&self) -> Vec<(u64, Option<u8>)> {
        self.drivers
            .iter()
            .filter(|d| d.state() == DriverState::Failed)
            .map(|d| (d.dpid(), d.offered_version()))
            .collect()
    }

    /// Supervised recovery from failed version negotiation: detach every
    /// [`DriverState::Failed`] driver and attach a replacement speaking the
    /// best version we implement that the switch offered (the switch then
    /// re-handshakes and the new driver resyncs fs flows, counted in its
    /// `resyncs`). Returns the number of re-attachments; a switch whose
    /// offer we cannot satisfy stays failed.
    pub fn reattach_failed(&mut self) -> usize {
        let mut reattached = 0;
        for (dpid, offered) in self.failed_drivers() {
            let offered = match offered {
                Some(v) => v,
                None => continue,
            };
            let version = if offered >= Version::V1_3.wire() {
                Version::V1_3
            } else if offered >= Version::V1_0.wire() {
                Version::V1_0
            } else {
                continue;
            };
            self.drivers
                .retain(|d| !(d.dpid() == dpid && d.state() == DriverState::Failed));
            self.net.detach_controller(dpid);
            let handle = self.net.attach_controller(dpid);
            self.drivers
                .push(OpenFlowDriver::new(version, self.yfs.clone(), handle));
            reattached += 1;
        }
        reattached
    }

    /// Schedule a deterministic control-channel fault on `dpid`'s driver
    /// (frames dropped / pair reordered on its next `run_once`). Returns
    /// whether a driver for that dpid exists.
    pub fn inject_channel_fault(&mut self, dpid: u64, drop_frames: u32, reorder: bool) -> bool {
        let mut hit = false;
        for d in &mut self.drivers {
            if d.dpid() == dpid {
                d.inject_channel_fault(drop_frames, reorder);
                hit = true;
            }
        }
        hit
    }

    /// Rebuild the readiness poll set iff the driver set changed since the
    /// last sweep (tests mutate `drivers` directly, so this is detected by
    /// identity, not tracked by mutation). One probe per driver; the set
    /// registers in the vfs pollset registry like any app's.
    fn refresh_poll(&mut self) {
        let probes: Vec<Arc<DriverReadiness>> =
            self.drivers.iter().map(|d| d.readiness()).collect();
        let dpids: Vec<u64> = self.drivers.iter().map(|d| d.dpid()).collect();
        self.book.refresh(&self.yfs, probes, &dpids, &self.sched);
    }

    /// Pump network and drivers until nothing moves, event-driven: each
    /// sweep dispatches only drivers whose readiness probes report queued
    /// work (free scans — the kernel consulting its run queue), and a
    /// fully idle system costs **zero** iterations. Scheduling decisions
    /// are counted in [`SchedStats`] / `/net/.proc/driver/sched`.
    ///
    /// The poll-set identity check runs per sweep, not per pump: drivers
    /// attached while the pump is in flight (supervised reattach, a test's
    /// staged injection) get their readiness edges scanned on the very
    /// next sweep instead of being silently dropped until the next pump.
    ///
    /// Returns the number of sweeps, or a `Busy` (`EAGAIN`) error if the
    /// system fails to quiesce within a budget that scales with the
    /// driver count — mutually-feeding drivers are reported, not panicked
    /// over.
    pub fn pump(&mut self) -> YancResult<u32> {
        let mut iterations: u32 = 0;
        loop {
            self.refresh_poll();
            let budget = 10_000 + 64 * self.drivers.len() as u64;
            let net_events = if self.net.pending_events() > 0 {
                self.net.pump()
            } else {
                0
            };
            // Scan *after* the network moved: frames it just delivered
            // make drivers ready in this sweep, not the next.
            let ready = self.book.scan(self.drivers.len());
            if net_events == 0 && !ready.iter().any(|&r| r) {
                if iterations == 0 {
                    self.sched.idle_pumps.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
            for (i, d) in self.drivers.iter_mut().enumerate() {
                if ready[i] {
                    self.sched.runs.fetch_add(1, Ordering::Relaxed);
                    d.run_once();
                } else {
                    self.sched.skips.fetch_add(1, Ordering::Relaxed);
                }
            }
            iterations += 1;
            if u64::from(iterations) >= budget {
                self.sync_shared_stats();
                return Err(YancError::busy(
                    Errno::EAGAIN,
                    "runtime failed to quiesce within its sweep budget",
                ));
            }
        }
        self.sync_shared_stats();
        Ok(iterations)
    }

    /// Advance virtual time (expiring flow timeouts) and pump.
    pub fn advance(&mut self, seconds: u64) -> YancResult<u32> {
        self.net.advance(seconds);
        self.pump()
    }

    /// Ask every driver to refresh stats counters, then pump.
    pub fn poll_stats(&mut self) -> YancResult<u32> {
        for d in &mut self.drivers {
            d.poll_stats();
        }
        self.pump()
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl crate::ControlRuntime for Runtime {
    fn yfs(&self) -> &YancFs {
        &self.yfs
    }

    fn network(&mut self) -> &mut Network {
        &mut self.net
    }

    fn add_switch_with_driver(
        &mut self,
        dpid: u64,
        n_ports: u16,
        n_tables: u8,
        switch_versions: Vec<Version>,
        driver_version: Version,
    ) -> String {
        Runtime::add_switch_with_driver(
            self,
            dpid,
            n_ports,
            n_tables,
            switch_versions,
            driver_version,
        )
    }

    fn pump(&mut self) -> YancResult<u32> {
        Runtime::pump(self)
    }

    fn advance(&mut self, seconds: u64) -> YancResult<u32> {
        Runtime::advance(self, seconds)
    }

    fn poll_stats(&mut self) -> YancResult<u32> {
        Runtime::poll_stats(self)
    }

    fn reattach_failed(&mut self) -> usize {
        Runtime::reattach_failed(self)
    }

    fn inject_channel_fault(&mut self, dpid: u64, drop_frames: u32, reorder: bool) -> bool {
        Runtime::inject_channel_fault(self, dpid, drop_frames, reorder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use yanc::{FlowSpec, PacketInRecord};
    use yanc_openflow::{port_no, Action, FlowMatch};

    fn ip(s: &str) -> std::net::Ipv4Addr {
        s.parse().unwrap()
    }

    fn two_host_rt(version: Version) -> (Runtime, String, u64, u64) {
        let mut rt = Runtime::new();
        let name = rt.add_switch_with_driver(0xa, 4, 2, vec![version], version);
        let h1 = rt.net.add_host("h1", ip("10.0.0.1"));
        let h2 = rt.net.add_host("h2", ip("10.0.0.2"));
        rt.net.attach_host(h1, (0xa, 1), None);
        rt.net.attach_host(h2, (0xa, 2), None);
        rt.pump().unwrap();
        (rt, name, h1, h2)
    }

    #[test]
    fn handshake_materializes_switch_in_fs() {
        for v in [Version::V1_0, Version::V1_3] {
            let (rt, name, _, _) = two_host_rt(v);
            assert_eq!(name, "swa");
            assert!(rt.drivers[0].ready());
            assert_eq!(rt.yfs.list_switches().unwrap(), vec!["swa"]);
            assert_eq!(rt.yfs.switch_dpid("swa").unwrap(), 0xa);
            // Ports materialized in both protocol flavours.
            assert_eq!(rt.yfs.list_ports("swa").unwrap(), vec![1, 2, 3, 4]);
            // Protocol recorded.
            let proto = rt
                .yfs
                .filesystem()
                .read_to_string("/net/switches/swa/protocol", rt.yfs.creds())
                .unwrap();
            assert_eq!(proto, v.to_string());
        }
    }

    #[test]
    fn flow_written_to_fs_reaches_switch_and_forwards() {
        let (mut rt, name, h1, _h2) = two_host_rt(Version::V1_0);
        let spec = FlowSpec {
            m: FlowMatch::any(),
            actions: vec![Action::out(port_no::FLOOD)],
            ..Default::default()
        };
        rt.yfs.write_flow(&name, "flood", &spec).unwrap();
        rt.pump().unwrap();
        assert_eq!(rt.net.switches[&0xa].flow_count(), 1);
        rt.net.host_ping(h1, ip("10.0.0.2"), 1);
        rt.pump().unwrap();
        assert_eq!(rt.net.hosts[&h1].ping_replies, vec![(ip("10.0.0.2"), 1)]);
    }

    #[test]
    fn uncommitted_flow_not_installed_until_version_bump() {
        let (mut rt, name, _h1, _h2) = two_host_rt(Version::V1_3);
        // Write field files WITHOUT committing (mkdir creates version=0).
        let fs = rt.yfs.filesystem().clone();
        let creds = rt.yfs.creds().clone();
        fs.mkdir(
            "/net/switches/swa/flows/partial",
            yanc_vfs::Mode::DIR_DEFAULT,
            &creds,
        )
        .unwrap();
        fs.write_file(
            "/net/switches/swa/flows/partial/match.dl_type",
            b"0x0800",
            &creds,
        )
        .unwrap();
        fs.write_file(
            "/net/switches/swa/flows/partial/action.out",
            b"flood",
            &creds,
        )
        .unwrap();
        rt.pump().unwrap();
        assert_eq!(
            rt.net.switches[&0xa].flow_count(),
            0,
            "no commit, no install"
        );
        // Commit: bump version.
        fs.write_file("/net/switches/swa/flows/partial/version", b"1", &creds)
            .unwrap();
        rt.pump().unwrap();
        assert_eq!(rt.net.switches[&0xa].flow_count(), 1);
        let _ = name;
    }

    #[test]
    fn flow_delete_removes_from_switch() {
        let (mut rt, name, _h1, _h2) = two_host_rt(Version::V1_0);
        let spec = FlowSpec {
            m: FlowMatch {
                tp_dst: Some(22),
                ..Default::default()
            },
            actions: vec![Action::out(2)],
            priority: 77,
            ..Default::default()
        };
        rt.yfs.write_flow(&name, "ssh", &spec).unwrap();
        rt.pump().unwrap();
        assert_eq!(rt.net.switches[&0xa].flow_count(), 1);
        rt.yfs.delete_flow(&name, "ssh").unwrap();
        rt.pump().unwrap();
        assert_eq!(rt.net.switches[&0xa].flow_count(), 0);
    }

    #[test]
    fn packet_in_lands_in_event_buffers() {
        let (mut rt, _name, h1, _h2) = two_host_rt(Version::V1_3);
        let sub = rt.yfs.subscribe_events("router").unwrap();
        rt.net.host_ping(h1, ip("10.0.0.2"), 1); // table miss
        rt.pump().unwrap();
        let pkts: Vec<PacketInRecord> = sub.drain_all();
        assert!(!pkts.is_empty());
        assert_eq!(pkts[0].switch, "swa");
        assert_eq!(pkts[0].in_port, 1);
        assert_eq!(pkts[0].reason, "no_match");
    }

    #[test]
    fn port_down_file_write_reaches_switch() {
        let (mut rt, name, _h1, _h2) = two_host_rt(Version::V1_0);
        rt.yfs.set_port_down(&name, 2, true).unwrap();
        rt.pump().unwrap();
        assert!(rt.net.switches[&0xa].ports[&2].config_down);
        rt.yfs.set_port_down(&name, 2, false).unwrap();
        rt.pump().unwrap();
        assert!(!rt.net.switches[&0xa].ports[&2].config_down);
    }

    #[test]
    fn goto_table_flow_errors_on_v10_driver_but_works_on_v13() {
        // The capability difference the paper's driver section promises.
        let (mut rt, name, _h1, _h2) = two_host_rt(Version::V1_0);
        let spec = FlowSpec {
            m: FlowMatch::any(),
            goto_table: Some(1),
            ..Default::default()
        };
        rt.yfs.write_flow(&name, "multi", &spec).unwrap();
        rt.pump().unwrap();
        assert_eq!(rt.net.switches[&0xa].flow_count(), 0);
        let err = rt
            .yfs
            .filesystem()
            .read_to_string("/net/switches/swa/flows/multi/error", rt.yfs.creds())
            .unwrap();
        assert!(err.contains("goto_table"), "error file explains: {err}");

        let (mut rt13, name13, _h1, _h2) = two_host_rt(Version::V1_3);
        rt13.yfs.write_flow(&name13, "multi", &spec).unwrap();
        rt13.pump().unwrap();
        assert_eq!(rt13.net.switches[&0xa].flow_count(), 1);
        assert!(!rt13
            .yfs
            .filesystem()
            .exists("/net/switches/swa/flows/multi/error", rt13.yfs.creds()));
    }

    #[test]
    fn flow_timeout_removes_fs_directory() {
        let (mut rt, name, _h1, _h2) = two_host_rt(Version::V1_3);
        let spec = FlowSpec {
            m: FlowMatch::any(),
            actions: vec![Action::out(2)],
            hard_timeout: 5,
            ..Default::default()
        };
        rt.yfs.write_flow(&name, "temp", &spec).unwrap();
        rt.pump().unwrap();
        assert_eq!(rt.net.switches[&0xa].flow_count(), 1);
        assert!(rt
            .yfs
            .list_flows(&name)
            .unwrap()
            .contains(&"temp".to_string()));
        rt.advance(10).unwrap();
        assert_eq!(rt.net.switches[&0xa].flow_count(), 0);
        assert!(
            rt.yfs.list_flows(&name).unwrap().is_empty(),
            "FlowRemoved cleaned the fs"
        );
    }

    #[test]
    fn stats_polling_fills_counters() {
        let (mut rt, name, h1, _h2) = two_host_rt(Version::V1_0);
        let spec = FlowSpec {
            m: FlowMatch::any(),
            actions: vec![Action::out(port_no::FLOOD)],
            ..Default::default()
        };
        rt.yfs.write_flow(&name, "flood", &spec).unwrap();
        rt.pump().unwrap();
        rt.net.host_ping(h1, ip("10.0.0.2"), 1);
        rt.pump().unwrap();
        rt.poll_stats().unwrap();
        let port_dir = rt.yfs.port_dir(&name, 1);
        assert!(rt.yfs.read_counter(&port_dir, "rx_packets") > 0);
        let flow_dir = rt.yfs.flow_dir(&name, "flood");
        assert!(rt.yfs.read_counter(&flow_dir, "packets") > 0);
    }

    #[test]
    fn packet_out_file_interface() {
        let (mut rt, name, _h1, h2) = two_host_rt(Version::V1_0);
        // Craft a frame and packet-out it via the file interface.
        let frame = yanc_packet::build_udp(
            yanc_packet::MacAddr::from_seed(99),
            rt.net.hosts[&h2].mac,
            ip("10.0.0.9"),
            ip("10.0.0.2"),
            1234,
            5678,
            Bytes::from_static(b"hello"),
        );
        let line = format!(
            "buffer=none in_port=controller out=2 data={}\n",
            yanc::hex_encode(&frame)
        );
        // Fix in_port token: numeric required.
        let line = line.replace(
            "in_port=controller",
            &format!("in_port={}", port_no::CONTROLLER),
        );
        rt.yfs
            .filesystem()
            .append_file(
                &format!("/net/switches/{name}/packet_out"),
                line.as_bytes(),
                rt.yfs.creds(),
            )
            .unwrap();
        rt.pump().unwrap();
        assert_eq!(rt.net.hosts[&h2].udp_received.len(), 1);
        assert_eq!(rt.net.hosts[&h2].udp_received[0].dst_port, 5678);
    }

    #[test]
    fn live_protocol_upgrade() {
        // E6: a switch is upgraded 1.0 → 1.3 under the same fs tree; flows
        // written to the fs keep flowing after the swap.
        let mut rt = Runtime::new();
        let name = rt.add_switch_with_driver(0xb, 2, 2, vec![Version::V1_0], Version::V1_0);
        rt.pump().unwrap();
        assert!(rt.drivers[0].ready());
        let spec = FlowSpec {
            m: FlowMatch::any(),
            actions: vec![Action::out(2)],
            ..Default::default()
        };
        rt.yfs.write_flow(&name, "f", &spec).unwrap();
        rt.pump().unwrap();
        assert_eq!(rt.net.switches[&0xb].flow_count(), 1);

        // Firmware upgrade: switch now speaks both, re-attach a 1.3 driver.
        rt.net
            .switches
            .get_mut(&0xb)
            .unwrap()
            .set_supported(vec![Version::V1_0, Version::V1_3]);
        rt.swap_driver(0xb, Version::V1_3);
        rt.pump().unwrap();
        let d = rt.drivers.last().unwrap();
        assert!(d.ready());
        assert_eq!(d.version, Version::V1_3);
        assert_eq!(rt.net.switches[&0xb].negotiated(), Some(Version::V1_3));
        // The new driver re-synced the existing fs flows into the switch.
        assert_eq!(rt.net.switches[&0xb].flow_count(), 1);
        // And multi-table flows now work.
        let multi = FlowSpec {
            m: FlowMatch::any(),
            goto_table: Some(1),
            priority: 9,
            ..Default::default()
        };
        rt.yfs.write_flow(&name, "multi", &multi).unwrap();
        rt.pump().unwrap();
        assert_eq!(rt.net.switches[&0xb].flow_count(), 2);
        // The fs shows the new protocol.
        let proto = rt
            .yfs
            .filesystem()
            .read_to_string("/net/switches/swb/protocol", rt.yfs.creds())
            .unwrap();
        assert_eq!(proto, "OpenFlow 1.3");
    }

    #[test]
    fn introspection_exposes_driver_and_dataplane_state() {
        let (mut rt, name, h1, _h2) = two_host_rt(Version::V1_0);
        rt.enable_introspection().unwrap();
        let spec = FlowSpec {
            m: FlowMatch::any(),
            actions: vec![Action::out(port_no::FLOOD)],
            ..Default::default()
        };
        rt.yfs.write_flow(&name, "flood", &spec).unwrap();
        rt.pump().unwrap();
        rt.net.host_ping(h1, ip("10.0.0.2"), 1);
        rt.pump().unwrap();
        let read = |p: &str| {
            rt.yfs
                .filesystem()
                .read_to_string(p, rt.yfs.creds())
                .unwrap()
                .trim()
                .to_string()
        };
        assert_eq!(read("/net/.proc/drivers/swa/protocol"), "OpenFlow 1.0");
        assert_eq!(read("/net/.proc/drivers/swa/ready"), "1");
        assert_eq!(
            read("/net/.proc/drivers/swa/flow_mods")
                .parse::<u64>()
                .unwrap(),
            rt.drivers[0]
                .stats()
                .flow_mods
                .load(std::sync::atomic::Ordering::Relaxed)
        );
        assert!(
            read("/net/.proc/drivers/swa/msgs_tx")
                .parse::<u64>()
                .unwrap()
                > 0
        );
        assert!(read("/net/.proc/drivers/swa/rtt").contains("count="));
        assert!(
            read("/net/.proc/dataplane/events").parse::<u64>().unwrap() > 0,
            "pump() mirrors NetStats into the proc tree"
        );
        assert_eq!(
            read("/net/.proc/dataplane/frames_delivered")
                .parse::<u64>()
                .unwrap(),
            rt.net.stats.frames_delivered
        );
    }

    #[test]
    fn idle_pump_costs_zero_iterations() {
        let (mut rt, _name, _h1, _h2) = two_host_rt(Version::V1_0);
        rt.pump().unwrap(); // quiesce fully
        let sched = rt.sched_stats();
        let idle_before = sched.idle_pumps.load(Ordering::Relaxed);
        let runs_before = sched.runs.load(Ordering::Relaxed);
        let sweeps = rt.pump().unwrap();
        assert_eq!(sweeps, 0, "idle system must cost zero sweeps");
        assert_eq!(sched.idle_pumps.load(Ordering::Relaxed), idle_before + 1);
        assert_eq!(
            sched.runs.load(Ordering::Relaxed),
            runs_before,
            "no driver dispatched on an idle pump"
        );
    }

    #[test]
    fn sched_counters_render_in_proc() {
        let (mut rt, name, h1, _h2) = two_host_rt(Version::V1_0);
        rt.enable_introspection().unwrap();
        rt.yfs
            .write_flow(
                &name,
                "flood",
                &FlowSpec {
                    m: FlowMatch::any(),
                    actions: vec![Action::out(port_no::FLOOD)],
                    ..Default::default()
                },
            )
            .unwrap();
        rt.pump().unwrap();
        rt.net.host_ping(h1, ip("10.0.0.2"), 1);
        rt.pump().unwrap();
        rt.pump().unwrap(); // one guaranteed idle pump
        let text = rt
            .yfs
            .filesystem()
            .read_to_string("/net/.proc/driver/sched", rt.yfs.creds())
            .unwrap();
        let field = |k: &str| -> u64 {
            text.lines()
                .find_map(|l| l.strip_prefix(k).map(|v| v.trim().parse().unwrap()))
                .unwrap_or_else(|| panic!("{k} missing from {text}"))
        };
        assert!(field("runs ") > 0, "{text}");
        assert!(field("idle_pumps ") > 0, "{text}");
        assert!(field("rebuilds ") > 0, "{text}");
    }

    #[test]
    fn segmented_stats_reassemble_and_land() {
        // Force every stats reply into 1-entry multipart segments: the
        // driver must reassemble the stream before landing counters.
        let (mut rt, name, h1, _h2) = two_host_rt(Version::V1_3);
        rt.net.switches.get_mut(&0xa).unwrap().set_stats_page(1);
        rt.yfs
            .write_flow(
                &name,
                "flood",
                &FlowSpec {
                    m: FlowMatch::any(),
                    actions: vec![Action::out(port_no::FLOOD)],
                    ..Default::default()
                },
            )
            .unwrap();
        rt.pump().unwrap();
        rt.net.host_ping(h1, ip("10.0.0.2"), 1);
        rt.pump().unwrap();
        rt.poll_stats().unwrap();
        // All four ports' stats arrived as four REPLY_MORE-chained parts
        // and still landed: per-port counters exist for every port.
        for p in 1..=4u16 {
            let dir = rt.yfs.port_dir(&name, p);
            assert!(
                rt.yfs.filesystem().exists(
                    dir.join("counters").join("rx_packets").as_str(),
                    rt.yfs.creds()
                ),
                "port {p} counters missing"
            );
        }
        let port_dir = rt.yfs.port_dir(&name, 1);
        assert!(rt.yfs.read_counter(&port_dir, "rx_packets") > 0);
        let flow_dir = rt.yfs.flow_dir(&name, "flood");
        assert!(rt.yfs.read_counter(&flow_dir, "packets") > 0);
    }

    #[test]
    fn wrong_version_driver_fails_cleanly() {
        let mut rt = Runtime::new();
        // Switch speaks only 1.0; driver insists on 1.3.
        rt.add_switch_with_driver(0xc, 2, 1, vec![Version::V1_0], Version::V1_3);
        rt.pump().unwrap();
        assert_eq!(rt.drivers[0].state(), crate::driver::DriverState::Failed);
        assert!(rt.yfs.list_switches().unwrap().is_empty());
    }
}
