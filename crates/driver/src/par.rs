//! # Multi-core pump executor (paper §5: "the controller is an OS")
//!
//! A real OS scheduler runs its run queue on every core. [`ParRuntime`]
//! does the same for drivers: each pump sweep takes the ready set from
//! the shared [`PollSet`](yanc_vfs::PollSet) readiness scan (exactly the
//! scan the serial [`Runtime`](crate::Runtime) does), partitions it
//! round-robin into per-worker run queues, and lets a fixed pool of
//! worker threads drain them with **work stealing** — an idle worker
//! pops from the *back* of a sibling's queue, so a straggling worker
//! never serializes the sweep.
//!
//! Three invariants make the parallel schedule safe and testable:
//!
//! 1. **Per-driver run lock.** Every driver lives in an
//!    `Arc<Mutex<OpenFlowDriver>>`; `run_once` runs under that lock, so
//!    a driver never runs on two workers at once even when stolen.
//! 2. **Sweep barrier.** The ready set is fixed by the coordinator's
//!    scan before workers start and the coordinator waits for the pool
//!    to drain it; each ready driver runs exactly once per sweep, the
//!    same dispatch the serial pump makes. Drivers own disjoint
//!    per-switch fs subtrees, so per-op syscall totals and the `/net`
//!    digest are **bit-identical across worker counts** — and
//!    `with_workers(1)` dispatches inline in driver-index order,
//!    replaying the exact serial schedule.
//! 3. **No wall clock.** Workers block on condvars and are released by
//!    state changes only; epochs come from the network's virtual clock.
//!    The flake audit holds this file to the same rule as the tests.
//!
//! The module also owns the **stats fan-in combiner** ([`FanIn`]): with
//! N switches polled, per-switch multipart replies no longer cost one
//! `write_counters_batch` each — drivers buffer aggregates worker-
//! locally and the coordinator lands *one* batched flush per epoch
//! against the switches directory (3 charged syscalls total), the
//! aggregation policy Kreutz et al. name as the classic controller
//! bottleneck.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError};
use std::thread::JoinHandle;

use parking_lot::Mutex;
use yanc::{YancFs, YancResult};
use yanc_dataplane::Network;
use yanc_openflow::Version;
use yanc_vfs::Filesystem;

use crate::driver::{DriverState, OpenFlowDriver};
use crate::runtime::{PollBook, SchedStats, SharedNetStats};

thread_local! {
    /// Which fan-in shard this thread writes: workers set their index at
    /// spawn; the coordinator (and every other thread) uses shard 0.
    static WORKER_SLOT: Cell<usize> = const { Cell::new(0) };
}

/// Per-worker scheduling ledger, rendered at
/// `/net/.proc/driver/workers/<n>/{runs,steals,idle}`.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Drivers this worker dispatched (`run_once` under the run lock).
    pub runs: AtomicU64,
    /// Dispatches that came from stealing the back of a sibling's queue.
    pub steals: AtomicU64,
    /// Sweeps in which this worker found no work at all.
    pub idle: AtomicU64,
}

/// One buffered counter write inside the fan-in combiner. `(driver,
/// seq)` is a unique, per-pusher-monotonic key: sorting on it at flush
/// time makes the landed batch order independent of which worker's
/// shard an entry happened to buffer in.
struct FanEntry {
    driver: u64,
    seq: u64,
    path: String,
    value: u64,
}

/// Stats fan-in combiner (aggregation policy, ROADMAP item 3): drivers
/// [`push`](FanInHandle::push) counter aggregates into worker-local
/// shards instead of flushing one `write_counters_batch` per multipart
/// reply; the coordinator drains every shard into **one** batched flush
/// per epoch against the switches directory. Knobs and meters render at
/// `/net/.proc/driver/fanin/{epoch_ms,pending,flushes,replies}`.
pub struct FanIn {
    shards: Vec<Mutex<Vec<FanEntry>>>,
    /// Minimum virtual-clock milliseconds between flushes (0 = flush at
    /// every pump quiescence).
    epoch_ms: AtomicU64,
    last_flush_ms: AtomicU64,
    /// Entries buffered and not yet landed.
    pending: AtomicU64,
    /// Batched flushes performed.
    flushes: AtomicU64,
    /// Stats replies absorbed (the denominator of syscalls-per-reply).
    replies: AtomicU64,
}

impl FanIn {
    fn new(shards: usize, epoch_ms: u64) -> Self {
        FanIn {
            shards: (0..shards.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            epoch_ms: AtomicU64::new(epoch_ms),
            last_flush_ms: AtomicU64::new(0),
            pending: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            replies: AtomicU64::new(0),
        }
    }

    /// Entries buffered and not yet landed.
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::Relaxed)
    }

    /// Batched flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    /// Stats replies absorbed so far.
    pub fn replies(&self) -> u64 {
        self.replies.load(Ordering::Relaxed)
    }

    fn render(&self) -> String {
        format!(
            "epoch_ms {}\npending {}\nflushes {}\nreplies {}\n",
            self.epoch_ms.load(Ordering::Relaxed),
            self.pending.load(Ordering::Relaxed),
            self.flushes.load(Ordering::Relaxed),
            self.replies.load(Ordering::Relaxed),
        )
    }
}

/// A driver's private handle into the [`FanIn`] combiner: tags every
/// buffered entry with the driver's id and a monotonic sequence number
/// so the flush order is deterministic, and prefixes paths with the
/// switch directory so one flush against `/net/switches` covers every
/// switch.
pub struct FanInHandle {
    driver: u64,
    seq: u64,
    sink: Arc<FanIn>,
}

impl FanInHandle {
    /// Buffer one reply's counter aggregates (`entries` are paths
    /// relative to switch `sw`'s directory) into this worker's shard.
    pub fn push(&mut self, sw: &str, entries: Vec<(String, u64)>) {
        if entries.is_empty() {
            return;
        }
        self.sink.replies.fetch_add(1, Ordering::Relaxed);
        self.sink
            .pending
            .fetch_add(entries.len() as u64, Ordering::Relaxed);
        let slot = WORKER_SLOT.with(Cell::get) % self.sink.shards.len();
        let mut shard = self.sink.shards[slot].lock();
        for (p, v) in entries {
            self.seq += 1;
            shard.push(FanEntry {
                driver: self.driver,
                seq: self.seq,
                path: format!("{sw}/{p}"),
                value: v,
            });
        }
    }
}

/// One sweep's worth of work published to the pool: the frozen ready
/// set partitioned into per-worker queues, plus the shared driver and
/// ledger vectors.
struct SweepWork {
    drivers: Vec<Arc<Mutex<OpenFlowDriver>>>,
    queues: Vec<Mutex<VecDeque<usize>>>,
    ledgers: Vec<Arc<WorkerStats>>,
    straggler: Option<usize>,
}

#[derive(Default)]
struct PoolState {
    generation: u64,
    work: Option<Arc<SweepWork>>,
    active: usize,
    shutdown: bool,
}

struct PoolShared {
    state: StdMutex<PoolState>,
    /// Coordinator → workers: a new sweep generation is published.
    work_cv: Condvar,
    /// Workers → coordinator: the last active worker finished.
    done_cv: Condvar,
    /// Serializes steal notifications with the straggler's queue check
    /// (prevents the classic lost-wakeup between "queue drained" and
    /// "straggler starts waiting").
    gate: StdMutex<()>,
    steal_cv: Condvar,
}

struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

fn lock_state(shared: &PoolShared) -> std::sync::MutexGuard<'_, PoolState> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

fn worker_loop(me: usize, shared: Arc<PoolShared>) {
    WORKER_SLOT.with(|c| c.set(me));
    let mut last_gen = 0u64;
    loop {
        let work = {
            let mut st = lock_state(&shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation > last_gen {
                    if let Some(w) = &st.work {
                        last_gen = st.generation;
                        break w.clone();
                    }
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Injected-straggler mode: the straggler holds off until thieves
        // have emptied its queue, forcing ≥1 recorded steal per ready
        // driver. The gate mutex orders "check emptiness" against the
        // thieves' post-steal notifications — no timed wait anywhere.
        if work.straggler == Some(me) {
            let mut g = shared.gate.lock().unwrap_or_else(PoisonError::into_inner);
            while !work.queues[me].lock().is_empty() {
                g = shared
                    .steal_cv
                    .wait(g)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        let n = work.queues.len();
        let mut did_any = false;
        loop {
            let mut stolen = false;
            let mut idx = work.queues[me].lock().pop_front();
            if idx.is_none() {
                for off in 1..n {
                    let victim = (me + off) % n;
                    if let Some(i) = work.queues[victim].lock().pop_back() {
                        idx = Some(i);
                        stolen = true;
                        // A gated straggler may now have an empty queue.
                        let _g = shared.gate.lock().unwrap_or_else(PoisonError::into_inner);
                        shared.steal_cv.notify_all();
                        break;
                    }
                }
            }
            let i = match idx {
                Some(i) => i,
                None => break,
            };
            work.drivers[i].lock().run_once();
            work.ledgers[me].runs.fetch_add(1, Ordering::Relaxed);
            if stolen {
                work.ledgers[me].steals.fetch_add(1, Ordering::Relaxed);
            }
            did_any = true;
        }
        if !did_any {
            work.ledgers[me].idle.fetch_add(1, Ordering::Relaxed);
        }
        let mut st = lock_state(&shared);
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// A switch-plus-driver attach deferred until a given pump sweep — the
/// deterministic stand-in for "a worker thread registered a readiness
/// edge while the scan was in flight" (the poll-set rebuild regression).
struct StagedAttach {
    at_sweep: u32,
    dpid: u64,
    n_ports: u16,
    n_tables: u8,
    switch_versions: Vec<Version>,
    driver_version: Version,
}

/// Multi-core counterpart of [`Runtime`](crate::Runtime): same network,
/// same `/net` tree, same event-driven readiness scan — but ready
/// drivers are drained by a worker pool with work stealing, and stats
/// land through the [`FanIn`] combiner. `with_workers(1)` replays the
/// serial schedule exactly; see the module docs for the invariants.
pub struct ParRuntime {
    /// The simulated network.
    pub net: Network,
    /// Per-switch drivers, each behind its run lock.
    pub drivers: Vec<Arc<Mutex<OpenFlowDriver>>>,
    /// The yanc file tree.
    pub yfs: YancFs,
    shared_stats: Arc<SharedNetStats>,
    sched: Arc<SchedStats>,
    book: PollBook,
    pool: Option<Pool>,
    workers: usize,
    ledgers: Vec<Arc<WorkerStats>>,
    fanin: Option<Arc<FanIn>>,
    next_fanin_id: u64,
    straggler: Option<usize>,
    staged: Vec<StagedAttach>,
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl ParRuntime {
    /// A fresh parallel runtime with `available_parallelism` workers.
    pub fn new() -> Self {
        Self::with_workers(default_workers())
    }

    /// A fresh parallel runtime with a fixed pool of `workers` threads
    /// (clamped to ≥ 1). `with_workers(1)` spawns no threads at all and
    /// dispatches inline in driver-index order — the serial schedule.
    pub fn with_workers(workers: usize) -> Self {
        Self::with_fs_workers(Arc::new(Filesystem::new()), workers)
    }

    /// A parallel runtime over an existing filesystem (namespace / DFS
    /// experiments) with a fixed worker count.
    pub fn with_fs_workers(fs: Arc<Filesystem>, workers: usize) -> Self {
        let workers = workers.max(1);
        let yfs = YancFs::init(fs, "/net").expect("init /net");
        let ledgers: Vec<Arc<WorkerStats>> = (0..workers)
            .map(|_| Arc::new(WorkerStats::default()))
            .collect();
        let pool = (workers > 1).then(|| {
            let shared = Arc::new(PoolShared {
                state: StdMutex::new(PoolState::default()),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                gate: StdMutex::new(()),
                steal_cv: Condvar::new(),
            });
            let handles = (0..workers)
                .map(|i| {
                    let shared = shared.clone();
                    std::thread::Builder::new()
                        .name(format!("yanc-pump-{i}"))
                        .spawn(move || worker_loop(i, shared))
                        .expect("spawn pump worker")
                })
                .collect();
            Pool {
                shared,
                handles,
                workers,
            }
        });
        ParRuntime {
            net: Network::new(),
            drivers: Vec::new(),
            yfs,
            shared_stats: Arc::new(SharedNetStats::default()),
            sched: Arc::new(SchedStats::default()),
            book: PollBook::new(),
            pool,
            workers,
            ledgers,
            fanin: None,
            next_fanin_id: 0,
            straggler: None,
            staged: Vec::new(),
        }
    }

    /// The size of the worker pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Per-worker scheduling ledgers, index = worker.
    pub fn worker_stats(&self) -> &[Arc<WorkerStats>] {
        &self.ledgers
    }

    /// The event-driven scheduler's counters (also rendered at
    /// `/net/.proc/driver/sched` once introspection is on).
    pub fn sched_stats(&self) -> Arc<SchedStats> {
        self.sched.clone()
    }

    /// Switch on the stats fan-in combiner: every current and future
    /// driver buffers counter aggregates instead of flushing per reply,
    /// and the coordinator lands one batched flush per `epoch_ms` of
    /// virtual time (0 = every pump quiescence). Returns the combiner
    /// for meter inspection.
    pub fn enable_fanin(&mut self, epoch_ms: u64) -> Arc<FanIn> {
        let fanin = Arc::new(FanIn::new(self.workers, epoch_ms));
        self.fanin = Some(fanin.clone());
        for d in &self.drivers {
            let h = self.next_fanin_id;
            self.next_fanin_id += 1;
            d.lock().attach_fanin(FanInHandle {
                driver: h,
                seq: 0,
                sink: fanin.clone(),
            });
        }
        // If `.proc` is already mounted this lands the meter files now;
        // otherwise `enable_introspection` registers them later.
        let _ = self.register_fanin_proc();
        fanin
    }

    /// Retune the flush epoch (virtual-clock ms between batched flushes).
    pub fn set_fanin_epoch_ms(&self, epoch_ms: u64) {
        if let Some(f) = &self.fanin {
            f.epoch_ms.store(epoch_ms, Ordering::Relaxed);
        }
    }

    /// Force worker `w` to hold off each sweep until thieves drain its
    /// queue (all ready drivers are routed to it first) — deterministic
    /// straggler injection for the steal path. `None` restores normal
    /// round-robin partitioning. Inert at `workers() == 1`.
    pub fn inject_straggler(&mut self, worker: Option<usize>) {
        self.straggler = worker;
    }

    /// Stage a switch+driver attach to happen at the start of pump sweep
    /// `at_sweep` (0-based within the next `pump` call) — the rebuild-
    /// during-pump regression hook: the new driver's readiness edge must
    /// be scanned on the very sweep it appears.
    pub fn stage_attach_at_sweep(
        &mut self,
        at_sweep: u32,
        dpid: u64,
        n_ports: u16,
        n_tables: u8,
        switch_versions: Vec<Version>,
        driver_version: Version,
    ) {
        self.staged.push(StagedAttach {
            at_sweep,
            dpid,
            n_ports,
            n_tables,
            switch_versions,
            driver_version,
        });
    }

    fn make_driver(&mut self, version: Version, handle: yanc_dataplane::ControlHandle) {
        let mut d = OpenFlowDriver::new(version, self.yfs.clone(), handle);
        if let Some(f) = &self.fanin {
            let id = self.next_fanin_id;
            self.next_fanin_id += 1;
            d.attach_fanin(FanInHandle {
                driver: id,
                seq: 0,
                sink: f.clone(),
            });
        }
        self.drivers.push(Arc::new(Mutex::new(d)));
    }

    /// Add a switch to the network and attach a driver speaking
    /// `driver_version`. Returns the yanc switch name (`sw<dpid:hex>`).
    pub fn add_switch_with_driver(
        &mut self,
        dpid: u64,
        n_ports: u16,
        n_tables: u8,
        switch_versions: Vec<Version>,
        driver_version: Version,
    ) -> String {
        let name = format!("sw{dpid:x}");
        self.net
            .add_switch(dpid, &name, n_ports, n_tables, switch_versions);
        let handle = self.net.attach_controller(dpid);
        self.make_driver(driver_version, handle);
        name
    }

    /// Re-attach a switch to a fresh driver (protocol upgrade, §4.1).
    pub fn swap_driver(&mut self, dpid: u64, driver_version: Version) {
        let name = format!("sw{dpid:x}");
        self.drivers
            .retain(|d| d.lock().switch_name.as_deref() != Some(name.as_str()));
        self.net.detach_controller(dpid);
        let handle = self.net.attach_controller(dpid);
        self.make_driver(driver_version, handle);
    }

    /// Drivers currently in [`DriverState::Failed`], as
    /// `(dpid, version offered by the switch)` pairs.
    pub fn failed_drivers(&self) -> Vec<(u64, Option<u8>)> {
        self.drivers
            .iter()
            .map(|d| d.lock())
            .filter(|d| d.state() == DriverState::Failed)
            .map(|d| (d.dpid(), d.offered_version()))
            .collect()
    }

    /// Supervised recovery from failed version negotiation (same policy
    /// as [`Runtime::reattach_failed`](crate::Runtime::reattach_failed)).
    pub fn reattach_failed(&mut self) -> usize {
        let mut reattached = 0;
        for (dpid, offered) in self.failed_drivers() {
            let offered = match offered {
                Some(v) => v,
                None => continue,
            };
            let version = if offered >= Version::V1_3.wire() {
                Version::V1_3
            } else if offered >= Version::V1_0.wire() {
                Version::V1_0
            } else {
                continue;
            };
            self.drivers.retain(|d| {
                let d = d.lock();
                !(d.dpid() == dpid && d.state() == DriverState::Failed)
            });
            self.net.detach_controller(dpid);
            let handle = self.net.attach_controller(dpid);
            self.make_driver(version, handle);
            reattached += 1;
        }
        reattached
    }

    /// Schedule a deterministic control-channel fault on `dpid`'s driver.
    pub fn inject_channel_fault(&mut self, dpid: u64, drop_frames: u32, reorder: bool) -> bool {
        let mut hit = false;
        for d in &self.drivers {
            let mut d = d.lock();
            if d.dpid() == dpid {
                d.inject_channel_fault(drop_frames, reorder);
                hit = true;
            }
        }
        hit
    }

    /// Mount `/net/.proc` and expose dataplane aggregates, the sched
    /// ledger, per-worker ledgers and (if enabled) the fan-in meters.
    pub fn enable_introspection(&mut self) -> YancResult<()> {
        self.yfs.enable_introspection()?;
        self.shared_stats.register_proc(&self.yfs)?;
        let fs = self.yfs.filesystem().clone();
        let driver_dir = self.yfs.proc_dir().join("driver");
        let sched = self.sched.clone();
        fs.proc_file(driver_dir.join("sched").as_str(), move || sched.render())?;
        for (i, ledger) in self.ledgers.iter().enumerate() {
            let base = driver_dir.join("workers").join(&format!("{i}"));
            type Getter = fn(&WorkerStats) -> &AtomicU64;
            let files: [(&str, Getter); 3] = [
                ("runs", |w| &w.runs),
                ("steals", |w| &w.steals),
                ("idle", |w| &w.idle),
            ];
            for (file, get) in files {
                let l = ledger.clone();
                fs.proc_file(base.join(file).as_str(), move || {
                    format!("{}\n", get(&l).load(Ordering::Relaxed))
                })?;
            }
        }
        let _ = self.register_fanin_proc();
        self.shared_stats.sync_from(&self.net.stats);
        for d in &self.drivers {
            d.lock().register_proc();
        }
        Ok(())
    }

    fn register_fanin_proc(&self) -> YancResult<()> {
        let f = match &self.fanin {
            Some(f) => f.clone(),
            None => return Ok(()),
        };
        self.yfs.filesystem().proc_file(
            self.yfs.proc_dir().join("driver").join("fanin").as_str(),
            move || f.render(),
        )?;
        Ok(())
    }

    fn refresh_poll(&mut self) {
        let mut probes = Vec::with_capacity(self.drivers.len());
        let mut dpids = Vec::with_capacity(self.drivers.len());
        for d in &self.drivers {
            let d = d.lock();
            probes.push(d.readiness());
            dpids.push(d.dpid());
        }
        self.book.refresh(&self.yfs, probes, &dpids, &self.sched);
    }

    fn apply_staged(&mut self, sweep: u32) {
        if self.staged.is_empty() {
            return;
        }
        let due: Vec<StagedAttach> = {
            let mut due = Vec::new();
            let mut keep = Vec::new();
            for s in self.staged.drain(..) {
                if s.at_sweep <= sweep {
                    due.push(s);
                } else {
                    keep.push(s);
                }
            }
            self.staged = keep;
            due
        };
        for s in due {
            self.add_switch_with_driver(
                s.dpid,
                s.n_ports,
                s.n_tables,
                s.switch_versions,
                s.driver_version,
            );
        }
    }

    /// Run one sweep's frozen ready set: inline in index order when the
    /// pool is absent (`workers == 1`), else partitioned across the pool.
    fn dispatch(&mut self, ready_idx: &[usize]) {
        let pool = match &self.pool {
            None => {
                for &i in ready_idx {
                    self.drivers[i].lock().run_once();
                    self.ledgers[0].runs.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            Some(p) => p,
        };
        let n = pool.workers;
        let straggler = self.straggler.filter(|&s| s < n);
        let mut queues: Vec<Mutex<VecDeque<usize>>> =
            (0..n).map(|_| Mutex::new(VecDeque::new())).collect();
        match straggler {
            Some(s) => {
                let q = queues[s].get_mut();
                q.extend(ready_idx.iter().copied());
            }
            None => {
                for (j, &i) in ready_idx.iter().enumerate() {
                    queues[j % n].get_mut().push_back(i);
                }
            }
        }
        let work = Arc::new(SweepWork {
            drivers: self.drivers.clone(),
            queues,
            ledgers: self.ledgers.clone(),
            straggler,
        });
        let shared = pool.shared.clone();
        let mut st = lock_state(&shared);
        st.work = Some(work);
        st.generation += 1;
        st.active = n;
        shared.work_cv.notify_all();
        while st.active > 0 {
            st = shared
                .done_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.work = None;
    }

    /// Land the fan-in buffer if the epoch allows: one
    /// `write_counters_batch` against `/net/switches` covering every
    /// buffered switch (3 charged syscalls, independent of worker count
    /// and reply count). Returns whether anything was flushed — the
    /// flush itself raises watch events the drivers must then drain.
    fn flush_fanin(&mut self) -> bool {
        let f = match &self.fanin {
            Some(f) => f.clone(),
            None => return false,
        };
        if f.pending.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let epoch = f.epoch_ms.load(Ordering::Relaxed);
        let now_ms = self.net.now_us() / 1000;
        if epoch > 0 && now_ms.saturating_sub(f.last_flush_ms.load(Ordering::Relaxed)) < epoch {
            return false;
        }
        let mut entries: Vec<FanEntry> = Vec::new();
        for shard in &f.shards {
            entries.append(&mut shard.lock());
        }
        // Shard assignment depends on which worker buffered an entry;
        // the (driver, seq) sort erases that, so the landed batch is
        // identical across worker counts.
        entries.sort_by_key(|e| (e.driver, e.seq));
        let batch: Vec<(String, u64)> = entries.into_iter().map(|e| (e.path, e.value)).collect();
        let _ = self
            .yfs
            .write_counters_batch(&self.yfs.switches_dir(), &batch);
        f.pending.store(0, Ordering::Relaxed);
        f.flushes.fetch_add(1, Ordering::Relaxed);
        f.last_flush_ms.store(now_ms, Ordering::Relaxed);
        true
    }

    /// Pump network and drivers until nothing moves — the same
    /// event-driven contract as [`Runtime::pump`](crate::Runtime::pump)
    /// (free readiness scans, zero-cost idle pumps, per-sweep poll-set
    /// identity check, `Busy` on budget exhaustion), with each sweep's
    /// ready set drained by the worker pool and the fan-in buffer landed
    /// at epoch boundaries before returning.
    pub fn pump(&mut self) -> YancResult<u32> {
        let mut iterations: u32 = 0;
        'epoch: loop {
            loop {
                self.apply_staged(iterations);
                self.refresh_poll();
                let budget = 10_000 + 64 * self.drivers.len() as u64;
                let net_events = if self.net.pending_events() > 0 {
                    self.net.pump()
                } else {
                    0
                };
                let ready = self.book.scan(self.drivers.len());
                let ready_idx: Vec<usize> = ready
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &r)| r.then_some(i))
                    .collect();
                if net_events == 0 && ready_idx.is_empty() {
                    break;
                }
                self.sched
                    .runs
                    .fetch_add(ready_idx.len() as u64, Ordering::Relaxed);
                self.sched.skips.fetch_add(
                    (self.drivers.len() - ready_idx.len()) as u64,
                    Ordering::Relaxed,
                );
                self.dispatch(&ready_idx);
                iterations += 1;
                if u64::from(iterations) >= budget {
                    self.shared_stats.sync_from(&self.net.stats);
                    return Err(yanc::YancError::busy(
                        yanc_vfs::Errno::EAGAIN,
                        "runtime failed to quiesce within its sweep budget",
                    ));
                }
            }
            if !self.flush_fanin() {
                break 'epoch;
            }
        }
        if iterations == 0 {
            self.sched.idle_pumps.fetch_add(1, Ordering::Relaxed);
        }
        self.shared_stats.sync_from(&self.net.stats);
        Ok(iterations)
    }

    /// Advance virtual time (expiring flow timeouts) and pump.
    pub fn advance(&mut self, seconds: u64) -> YancResult<u32> {
        self.net.advance(seconds);
        self.pump()
    }

    /// Ask every driver to refresh stats counters, then pump.
    pub fn poll_stats(&mut self) -> YancResult<u32> {
        for d in &self.drivers {
            d.lock().poll_stats();
        }
        self.pump()
    }
}

impl Default for ParRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ParRuntime {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            {
                let mut st = lock_state(&pool.shared);
                st.shutdown = true;
                pool.shared.work_cv.notify_all();
            }
            for h in pool.handles {
                let _ = h.join();
            }
        }
    }
}

impl crate::ControlRuntime for ParRuntime {
    fn yfs(&self) -> &YancFs {
        &self.yfs
    }

    fn network(&mut self) -> &mut Network {
        &mut self.net
    }

    fn add_switch_with_driver(
        &mut self,
        dpid: u64,
        n_ports: u16,
        n_tables: u8,
        switch_versions: Vec<Version>,
        driver_version: Version,
    ) -> String {
        ParRuntime::add_switch_with_driver(
            self,
            dpid,
            n_ports,
            n_tables,
            switch_versions,
            driver_version,
        )
    }

    fn pump(&mut self) -> YancResult<u32> {
        ParRuntime::pump(self)
    }

    fn advance(&mut self, seconds: u64) -> YancResult<u32> {
        ParRuntime::advance(self, seconds)
    }

    fn poll_stats(&mut self) -> YancResult<u32> {
        ParRuntime::poll_stats(self)
    }

    fn reattach_failed(&mut self) -> usize {
        ParRuntime::reattach_failed(self)
    }

    fn inject_channel_fault(&mut self, dpid: u64, drop_frames: u32, reorder: bool) -> bool {
        ParRuntime::inject_channel_fault(self, dpid, drop_frames, reorder)
    }
}
