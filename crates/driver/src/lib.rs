//! # yanc-driver — OpenFlow drivers for the yanc file system
//!
//! Per-protocol-version drivers (paper §4.1) translating between `/net`
//! file operations and OpenFlow control channels, plus a [`Runtime`] that
//! pumps a simulated network and its drivers to quiescence for
//! deterministic experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod par;
pub mod runtime;

pub use driver::{
    parse_packet_out_line, DriverReadiness, DriverState, DriverStats, OpenFlowDriver,
};
pub use par::{FanIn, FanInHandle, ParRuntime, WorkerStats};
pub use runtime::{Runtime, SchedStats};

use yanc::{YancFs, YancResult};
use yanc_dataplane::Network;
use yanc_openflow::Version;

/// The surface the harness and the supervisor need from a pump executor,
/// implemented by both the serial [`Runtime`] and the multi-core
/// [`ParRuntime`]. Generic fabric builders, settle loops and fault
/// supervision run unchanged over either.
pub trait ControlRuntime {
    /// The yanc file tree this executor pumps drivers against.
    fn yfs(&self) -> &YancFs;
    /// The simulated network, for topology building and traffic injection.
    fn network(&mut self) -> &mut Network;
    /// Add a switch and attach a driver speaking `driver_version`; returns
    /// the yanc switch name (`sw<dpid:hex>`).
    fn add_switch_with_driver(
        &mut self,
        dpid: u64,
        n_ports: u16,
        n_tables: u8,
        switch_versions: Vec<Version>,
        driver_version: Version,
    ) -> String;
    /// Pump network and drivers to quiescence; returns sweep count.
    fn pump(&mut self) -> YancResult<u32>;
    /// Advance virtual time (expiring flow timeouts) and pump.
    fn advance(&mut self, seconds: u64) -> YancResult<u32>;
    /// Ask every driver to refresh stats counters, then pump.
    fn poll_stats(&mut self) -> YancResult<u32>;
    /// Supervised recovery from failed version negotiation; returns the
    /// number of re-attachments.
    fn reattach_failed(&mut self) -> usize;
    /// Schedule a deterministic control-channel fault on `dpid`'s driver.
    fn inject_channel_fault(&mut self, dpid: u64, drop_frames: u32, reorder: bool) -> bool;
}
