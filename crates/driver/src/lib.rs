//! # yanc-driver — OpenFlow drivers for the yanc file system
//!
//! Per-protocol-version drivers (paper §4.1) translating between `/net`
//! file operations and OpenFlow control channels, plus a [`Runtime`] that
//! pumps a simulated network and its drivers to quiescence for
//! deterministic experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod runtime;

pub use driver::{
    parse_packet_out_line, DriverReadiness, DriverState, DriverStats, OpenFlowDriver,
};
pub use runtime::{Runtime, SchedStats};
