//! Minimal glob matching for `find -name` and shell wildcards:
//! `*` (any run), `?` (any one char), everything else literal.

/// Match `name` against `pattern`.
pub fn glob_match(pattern: &str, name: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let n: Vec<char> = name.chars().collect();
    // Classic iterative wildcard match with backtracking on `*`.
    let (mut pi, mut ni) = (0usize, 0usize);
    let (mut star, mut star_ni) = (usize::MAX, 0usize);
    while ni < n.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            star_ni = ni;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_ni += 1;
            ni = star_ni;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Whether the string contains glob metacharacters.
pub fn is_glob(s: &str) -> bool {
    s.contains('*') || s.contains('?')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals() {
        assert!(glob_match("tp.dst", "tp.dst"));
        assert!(!glob_match("tp.dst", "tp.src"));
        assert!(!glob_match("tp.dst", "tp.dst2"));
    }

    #[test]
    fn star() {
        assert!(glob_match("match.*", "match.dl_type"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("*", ""));
        assert!(glob_match("sw*", "sw1"));
        assert!(glob_match("*flow*", "arp_flow_2"));
        assert!(!glob_match("sw*", "host1"));
    }

    #[test]
    fn question() {
        assert!(glob_match("p?", "p1"));
        assert!(!glob_match("p?", "p12"));
        assert!(glob_match("??", "ab"));
    }

    #[test]
    fn mixed_backtracking() {
        assert!(glob_match("a*b*c", "aXbYc"));
        assert!(glob_match("a*b*c", "abc"));
        assert!(!glob_match("a*b*c", "acb"));
        assert!(glob_match("*.port_down", "config.port_down"));
    }

    #[test]
    fn is_glob_detection() {
        assert!(is_glob("match.*"));
        assert!(is_glob("p?"));
        assert!(!is_glob("version"));
    }
}
