//! A small shell over the vfs: tokenizer, pipes, redirection, cwd.
//!
//! The paper's §5.4 argument is that network administration should be
//! possible with "simple one-liners" built from well-known utilities. This
//! shell runs those one-liners against the virtual file system:
//!
//! ```
//! # use std::sync::Arc;
//! # use yanc_vfs::{Filesystem, Credentials, Mode};
//! # use yanc_coreutils::Shell;
//! let fs = Arc::new(Filesystem::new());
//! fs.mkdir_all("/net/switches/sw1", Mode::DIR_DEFAULT, &Credentials::root()).unwrap();
//! let mut sh = Shell::new(fs);
//! assert_eq!(sh.run("ls /net/switches").out, "sw1\n");
//! sh.run("echo 1 > /net/switches/sw1/up");
//! assert_eq!(sh.run("cat /net/switches/sw1/up").out, "1\n");
//! ```
//!
//! Supported: `|` pipelines, `>` / `>>` redirection, single/double quotes,
//! `cd`/`pwd`, and the command set in [`crate::cmds`].

use std::sync::Arc;

use yanc_vfs::{Credentials, Filesystem, Namespace, VPath};

use crate::cmds;

/// The result of running a command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output {
    /// Exit status: 0 on success.
    pub code: i32,
    /// Standard output.
    pub out: String,
    /// Standard error.
    pub err: String,
}

impl Output {
    pub(crate) fn ok(out: String) -> Output {
        Output {
            code: 0,
            out,
            err: String::new(),
        }
    }

    pub(crate) fn fail(err: impl Into<String>) -> Output {
        Output {
            code: 1,
            out: String::new(),
            err: err.into(),
        }
    }

    /// Whether the command succeeded.
    pub fn success(&self) -> bool {
        self.code == 0
    }
}

/// A shell session: namespace + credentials + working directory.
pub struct Shell {
    ns: Namespace,
    creds: Credentials,
    cwd: VPath,
}

impl Shell {
    /// A root shell over the whole filesystem, cwd `/`.
    pub fn new(fs: Arc<Filesystem>) -> Self {
        Shell {
            ns: Namespace::new(fs),
            creds: Credentials::root(),
            cwd: VPath::root(),
        }
    }

    /// A shell inside a mount namespace (e.g. confined to a view).
    pub fn with_namespace(ns: Namespace) -> Self {
        Shell {
            ns,
            creds: Credentials::root(),
            cwd: VPath::root(),
        }
    }

    /// Run as different credentials (`su`-style).
    pub fn with_creds(mut self, creds: Credentials) -> Self {
        self.creds = creds;
        self
    }

    /// The namespace this shell operates in.
    pub fn namespace(&self) -> &Namespace {
        &self.ns
    }

    /// Credentials in use.
    pub fn creds(&self) -> &Credentials {
        &self.creds
    }

    /// Current working directory.
    pub fn cwd(&self) -> &VPath {
        &self.cwd
    }

    /// Resolve `arg` against the cwd.
    pub fn resolve(&self, arg: &str) -> VPath {
        if arg.starts_with('/') {
            VPath::new(arg)
        } else {
            // Lexically resolve `.`/`..` against the cwd, like a real shell.
            let mut parts: Vec<String> = self.cwd.components().map(str::to_string).collect();
            for c in arg.split('/') {
                match c {
                    "" | "." => {}
                    ".." => {
                        parts.pop();
                    }
                    other => parts.push(other.to_string()),
                }
            }
            VPath::new(&format!("/{}", parts.join("/")))
        }
    }

    /// Run one command line (pipes + redirection). Never panics; errors
    /// come back in [`Output::err`].
    pub fn run(&mut self, line: &str) -> Output {
        let stages = split_pipeline(line);
        if stages.is_empty() {
            return Output::ok(String::new());
        }
        let mut stdin = String::new();
        let mut final_out = Output::ok(String::new());
        let last = stages.len() - 1;
        for (i, stage) in stages.iter().enumerate() {
            let (argv, redirect) = match tokenize(stage) {
                Ok(t) => t,
                Err(e) => return Output::fail(e),
            };
            if argv.is_empty() {
                continue;
            }
            let out = self.exec(&argv, &stdin);
            if i == last {
                if let Some((path, append)) = redirect {
                    let target = self.resolve(&path);
                    let r = if append {
                        self.ns
                            .append_file(target.as_str(), out.out.as_bytes(), &self.creds)
                    } else {
                        self.ns
                            .write_file(target.as_str(), out.out.as_bytes(), &self.creds)
                    };
                    final_out = match r {
                        Ok(()) => Output {
                            code: out.code,
                            out: String::new(),
                            err: out.err,
                        },
                        Err(e) => Output::fail(format!("{}: {e}", argv[0])),
                    };
                } else {
                    final_out = out;
                }
            } else {
                stdin = out.out;
                if !out.err.is_empty() {
                    final_out.err.push_str(&out.err);
                }
            }
        }
        final_out
    }

    /// Run several newline-separated commands; stops at the first failure.
    /// Returns the concatenated stdout.
    pub fn run_script(&mut self, script: &str) -> Output {
        let mut all = String::new();
        for line in script.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let out = self.run(line);
            all.push_str(&out.out);
            if !out.success() {
                return Output {
                    code: out.code,
                    out: all,
                    err: out.err,
                };
            }
        }
        Output::ok(all)
    }

    fn exec(&mut self, argv: &[String], stdin: &str) -> Output {
        let args: Vec<&str> = argv.iter().skip(1).map(String::as_str).collect();
        match argv[0].as_str() {
            "cd" => {
                let target = self.resolve(args.first().copied().unwrap_or("/"));
                match self.ns.stat(target.as_str(), &self.creds) {
                    Ok(st) if st.is_dir() => {
                        self.cwd = target;
                        Output::ok(String::new())
                    }
                    Ok(_) => Output::fail(format!("cd: {target}: Not a directory")),
                    Err(e) => Output::fail(format!("cd: {e}")),
                }
            }
            "pwd" => Output::ok(format!("{}\n", self.cwd)),
            "ls" => cmds::ls(self, &args),
            "cat" => cmds::cat(self, &args, stdin),
            "echo" => cmds::echo(&args),
            "grep" => cmds::grep(self, &args, stdin),
            "find" => cmds::find(self, &args),
            "tree" => cmds::tree(self, &args),
            "mkdir" => cmds::mkdir(self, &args),
            "rmdir" => cmds::rmdir(self, &args),
            "rm" => cmds::rm(self, &args),
            "ln" => cmds::ln(self, &args),
            "mv" => cmds::mv(self, &args),
            "cp" => cmds::cp(self, &args),
            "touch" => cmds::touch(self, &args),
            "stat" => cmds::stat_cmd(self, &args),
            "stats" => cmds::stats(self, &args),
            "readlink" => cmds::readlink(self, &args),
            "chmod" => cmds::chmod(self, &args),
            "chown" => cmds::chown(self, &args),
            "head" => cmds::head(self, &args, stdin),
            "wc" => cmds::wc(&args, stdin),
            "ps" => cmds::ps(self, &args),
            "kill" => cmds::kill(self, &args),
            "lsfd" => cmds::lsfd(self, &args),
            "mount" => cmds::mount(self, &args),
            "sort" => cmds::sort(&args, stdin),
            "uniq" => cmds::uniq(stdin),
            "true" => Output::ok(String::new()),
            "false" => Output {
                code: 1,
                out: String::new(),
                err: String::new(),
            },
            other => Output::fail(format!("{other}: command not found")),
        }
    }
}

/// Split on `|` outside quotes.
fn split_pipeline(line: &str) -> Vec<String> {
    let mut stages = Vec::new();
    let mut cur = String::new();
    let mut quote: Option<char> = None;
    for c in line.chars() {
        match quote {
            Some(q) => {
                cur.push(c);
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '\'' | '"' => {
                    quote = Some(c);
                    cur.push(c);
                }
                '|' => {
                    stages.push(std::mem::take(&mut cur));
                }
                _ => cur.push(c),
            },
        }
    }
    if !cur.trim().is_empty() {
        stages.push(cur);
    }
    stages
        .into_iter()
        .filter(|s| !s.trim().is_empty())
        .collect()
}

/// `(target path, append?)` of a parsed redirection.
type Redirection = Option<(String, bool)>;

/// Tokenize one stage, extracting a trailing `>`/`>>` redirection.
fn tokenize(stage: &str) -> Result<(Vec<String>, Redirection), String> {
    let mut tokens: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut quote: Option<char> = None;
    let mut has_cur = false;
    for c in stage.chars() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                } else {
                    cur.push(c);
                }
            }
            None => match c {
                '\'' | '"' => {
                    quote = Some(c);
                    has_cur = true;
                }
                c if c.is_whitespace() => {
                    if has_cur || !cur.is_empty() {
                        tokens.push(std::mem::take(&mut cur));
                        has_cur = false;
                    }
                }
                '>' => {
                    if has_cur || !cur.is_empty() {
                        tokens.push(std::mem::take(&mut cur));
                        has_cur = false;
                    }
                    tokens.push(">".to_string());
                }
                _ => {
                    cur.push(c);
                    has_cur = true;
                }
            },
        }
    }
    if quote.is_some() {
        return Err("unterminated quote".to_string());
    }
    if has_cur || !cur.is_empty() {
        tokens.push(cur);
    }
    // Fold `> file` / `> > file` (from `>>`) into a redirection.
    let mut argv = Vec::new();
    let mut redirect = None;
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i] == ">" {
            let append = tokens.get(i + 1).map(|t| t == ">").unwrap_or(false);
            let fi = if append { i + 2 } else { i + 1 };
            let file = tokens.get(fi).ok_or("missing redirection target")?;
            redirect = Some((file.clone(), append));
            i = fi + 1;
        } else {
            argv.push(tokens[i].clone());
            i += 1;
        }
    }
    Ok((argv, redirect))
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_vfs::Mode;

    fn sh() -> Shell {
        let fs = Arc::new(Filesystem::new());
        let creds = Credentials::root();
        fs.mkdir_all("/net/switches/sw1/flows", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.mkdir_all("/net/switches/sw2", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.write_file("/net/switches/sw1/id", b"0x01\n", &creds)
            .unwrap();
        Shell::new(fs)
    }

    #[test]
    fn tokenizer_quotes_and_redirect() {
        let (argv, r) = tokenize(r#"echo 'hello world' "two  spaces" plain"#).unwrap();
        assert_eq!(argv, vec!["echo", "hello world", "two  spaces", "plain"]);
        assert!(r.is_none());
        let (argv, r) = tokenize("echo 1 > /tmp/f").unwrap();
        assert_eq!(argv, vec!["echo", "1"]);
        assert_eq!(r, Some(("/tmp/f".into(), false)));
        let (argv, r) = tokenize("echo x >> log").unwrap();
        assert_eq!(argv, vec!["echo", "x"]);
        assert_eq!(r, Some(("log".into(), true)));
        assert!(tokenize("echo 'unterminated").is_err());
        // Redirect glued to the argument.
        let (argv, r) = tokenize("echo 1>f").unwrap();
        assert_eq!(argv, vec!["echo", "1"]);
        assert_eq!(r, Some(("f".into(), false)));
    }

    #[test]
    fn pipeline_split_respects_quotes() {
        assert_eq!(split_pipeline("a | b | c").len(), 3);
        assert_eq!(split_pipeline("echo 'a|b' | wc -l").len(), 2);
        assert_eq!(split_pipeline("").len(), 0);
    }

    #[test]
    fn stats_flattens_the_proc_tree() {
        let fs = Arc::new(Filesystem::new());
        let creds = Credentials::root();
        fs.mkdir_all("/net", Mode::DIR_DEFAULT, &creds).unwrap();
        fs.mount_proc("/net/.proc").unwrap();
        let mut s = Shell::new(fs.clone());
        s.run("mkdir /net/switches");
        let out = s.run("stats");
        assert!(out.success(), "{}", out.err);
        let total = format!("/net/.proc/vfs/syscalls/total: {}", fs.counters().total());
        assert!(
            out.out.contains(&total),
            "missing `{total}` in:\n{}",
            out.out
        );
        assert!(out.out.contains("/net/.proc/vfs/syscalls/mkdir: "));
        assert!(out.out.contains("/net/.proc/vfs/latency/mkdir: count="));
        // Explicit root works too; a non-proc path fails cleanly.
        assert!(s.run("stats /net/.proc").success());
        assert!(!s.run("stats /net/nope").success());
    }

    #[test]
    fn echo_redirect_cat() {
        let mut s = sh();
        let out = s.run("echo 1 > /net/switches/sw1/up");
        assert!(out.success(), "{}", out.err);
        assert_eq!(s.run("cat /net/switches/sw1/up").out, "1\n");
        s.run("echo 2 >> /net/switches/sw1/up");
        assert_eq!(s.run("cat /net/switches/sw1/up").out, "1\n2\n");
    }

    #[test]
    fn cd_and_relative_paths() {
        let mut s = sh();
        assert!(s.run("cd /net/switches").success());
        assert_eq!(s.run("pwd").out, "/net/switches\n");
        assert_eq!(s.run("cat sw1/id").out, "0x01\n");
        assert!(s.run("cd ..").success());
        assert_eq!(s.run("pwd").out, "/net\n");
        assert!(!s.run("cd /nonexistent").success());
        assert!(!s.run("cd /net/switches/sw1/id").success());
    }

    #[test]
    fn pipes_feed_stdin() {
        let mut s = sh();
        let out = s.run("ls /net/switches | wc -l");
        assert_eq!(out.out.trim(), "2");
        let out = s.run("ls /net/switches | grep sw2");
        assert_eq!(out.out, "sw2\n");
    }

    #[test]
    fn unknown_command_fails() {
        let mut s = sh();
        let out = s.run("frobnicate /net");
        assert!(!out.success());
        assert!(out.err.contains("command not found"));
    }

    #[test]
    fn script_stops_on_failure() {
        let mut s = sh();
        let out = s.run_script(
            "# comment\n\
             echo a > /f1\n\
             cat /missing\n\
             echo never > /f2",
        );
        assert!(!out.success());
        assert!(!s.namespace().exists("/f2", s.creds()));
    }
}
