//! The utility implementations behind [`crate::Shell`].
//!
//! Each is a small, faithful subset of the real tool — enough to run every
//! one-liner the paper uses (`ls -l /net/switches`, `echo 1 >
//! config.port_down`, `find /net -name tp.dst -exec grep 22`, `cp`/`mv` of
//! middlebox state) plus the glue (`wc`, `sort`, `head`, pipes) that makes
//! ad-hoc scripts pleasant.

use yanc_vfs::{FileType, Gid, Mode, Uid, VPath};

use crate::glob::glob_match;
use crate::shell::{Output, Shell};

fn flagless<'a>(args: &'a [&'a str]) -> impl Iterator<Item = &'a str> {
    args.iter().copied().filter(|a| !a.starts_with('-'))
}

fn has_flag(args: &[&str], f: &str) -> bool {
    args.contains(&f)
}

/// `ls [-l] [paths…]`.
pub fn ls(sh: &Shell, args: &[&str]) -> Output {
    let long = has_flag(args, "-l");
    let mut paths: Vec<&str> = flagless(args).collect();
    if paths.is_empty() {
        paths.push(".");
    }
    let mut out = String::new();
    let mut err = String::new();
    let many = paths.len() > 1;
    for (i, p) in paths.iter().enumerate() {
        let vp = sh.resolve(p);
        let st = match sh.namespace().stat(vp.as_str(), sh.creds()) {
            Ok(s) => s,
            Err(e) => {
                err.push_str(&format!("ls: {e}\n"));
                continue;
            }
        };
        if many {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&format!("{vp}:\n"));
        }
        if st.is_dir() {
            match sh.namespace().readdir(vp.as_str(), sh.creds()) {
                Ok(entries) => {
                    for e in entries {
                        if long {
                            out.push_str(&long_line(sh, &vp.join(&e.name), &e.name));
                        } else {
                            out.push_str(&e.name);
                            out.push('\n');
                        }
                    }
                }
                Err(e) => err.push_str(&format!("ls: {e}\n")),
            }
        } else if long {
            out.push_str(&long_line(sh, &vp, vp.file_name().unwrap_or("/")));
        } else {
            out.push_str(&format!("{}\n", vp.file_name().unwrap_or("/")));
        }
    }
    Output {
        code: i32::from(!err.is_empty()),
        out,
        err,
    }
}

fn long_line(sh: &Shell, path: &VPath, name: &str) -> String {
    match sh.namespace().lstat(path.as_str(), sh.creds()) {
        Ok(st) => {
            let mut line = format!(
                "{}{} {:>2} {:>4} {:>4} {:>8} {}",
                st.file_type.ls_char(),
                st.mode.ls_string(),
                st.nlink,
                st.uid.0,
                st.gid.0,
                st.size,
                name
            );
            if st.is_symlink() {
                if let Ok(t) = sh.namespace().readlink(path.as_str(), sh.creds()) {
                    line.push_str(&format!(" -> {t}"));
                }
            }
            line.push('\n');
            line
        }
        Err(e) => format!("ls: {e}\n"),
    }
}

/// `cat [files…]` (stdin when no files).
pub fn cat(sh: &Shell, args: &[&str], stdin: &str) -> Output {
    let files: Vec<&str> = flagless(args).collect();
    if files.is_empty() {
        return Output::ok(stdin.to_string());
    }
    let mut out = String::new();
    for f in files {
        let vp = sh.resolve(f);
        match sh.namespace().read_to_string(vp.as_str(), sh.creds()) {
            Ok(s) => out.push_str(&s),
            Err(e) => return Output::fail(format!("cat: {e}")),
        }
    }
    Output::ok(out)
}

/// `echo args…` (always newline-terminated).
pub fn echo(args: &[&str]) -> Output {
    Output::ok(format!("{}\n", args.join(" ")))
}

/// `grep [-r] [-H] [-v] pattern [files…]`; substring match, stdin fallback.
pub fn grep(sh: &Shell, args: &[&str], stdin: &str) -> Output {
    let recursive = has_flag(args, "-r");
    let force_name = has_flag(args, "-H");
    let invert = has_flag(args, "-v");
    let mut rest = flagless(args);
    let pattern = match rest.next() {
        Some(p) => p.to_string(),
        None => return Output::fail("grep: missing pattern"),
    };
    let files: Vec<&str> = rest.collect();

    let matches = |line: &str| line.contains(&pattern) != invert;

    if files.is_empty() && !recursive {
        let out: String = stdin
            .lines()
            .filter(|l| matches(l))
            .map(|l| format!("{l}\n"))
            .collect();
        let code = i32::from(out.is_empty());
        return Output {
            code,
            out,
            err: String::new(),
        };
    }

    // Expand -r directories into file lists.
    let mut targets: Vec<VPath> = Vec::new();
    for f in &files {
        let vp = sh.resolve(f);
        match sh.namespace().stat(vp.as_str(), sh.creds()) {
            Ok(st) if st.is_dir() && recursive => walk(sh, &vp, &mut |p, ft| {
                if ft == FileType::Regular {
                    targets.push(p.clone());
                }
            }),
            Ok(_) => targets.push(vp),
            Err(e) => return Output::fail(format!("grep: {e}")),
        }
    }
    let with_names = force_name || targets.len() > 1;
    let mut out = String::new();
    for t in &targets {
        if let Ok(content) = sh.namespace().read_to_string(t.as_str(), sh.creds()) {
            for l in content.lines().filter(|l| matches(l)) {
                if with_names {
                    out.push_str(&format!("{t}:{l}\n"));
                } else {
                    out.push_str(&format!("{l}\n"));
                }
            }
        }
    }
    let code = i32::from(out.is_empty());
    Output {
        code,
        out,
        err: String::new(),
    }
}

/// Depth-first sorted walk (symlinks not followed).
fn walk(sh: &Shell, dir: &VPath, f: &mut impl FnMut(&VPath, FileType)) {
    if let Ok(entries) = sh.namespace().readdir(dir.as_str(), sh.creds()) {
        for e in entries {
            let p = dir.join(&e.name);
            f(&p, e.file_type);
            if e.file_type == FileType::Directory {
                walk(sh, &p, f);
            }
        }
    }
}

/// `find path… [-name glob] [-type f|d|l] [-exec cmd… [{}]]`.
pub fn find(sh: &mut Shell, args: &[&str]) -> Output {
    let mut paths: Vec<VPath> = Vec::new();
    let mut name: Option<String> = None;
    let mut ftype: Option<FileType> = None;
    let mut exec: Option<Vec<String>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i] {
            "-name" => {
                name = args.get(i + 1).map(|s| s.to_string());
                i += 2;
            }
            "-type" => {
                ftype = match args.get(i + 1) {
                    Some(&"f") => Some(FileType::Regular),
                    Some(&"d") => Some(FileType::Directory),
                    Some(&"l") => Some(FileType::Symlink),
                    _ => return Output::fail("find: bad -type"),
                };
                i += 2;
            }
            "-exec" => {
                let mut cmd = Vec::new();
                i += 1;
                while i < args.len() && args[i] != ";" {
                    cmd.push(args[i].to_string());
                    i += 1;
                }
                i += 1; // skip ';' if present
                exec = Some(cmd);
            }
            p if !p.starts_with('-') => {
                paths.push(sh.resolve(p));
                i += 1;
            }
            other => return Output::fail(format!("find: unknown predicate {other}")),
        }
    }
    if paths.is_empty() {
        paths.push(sh.cwd().clone());
    }
    let mut found: Vec<VPath> = Vec::new();
    for p in &paths {
        // The start path itself participates, like real find.
        if let Ok(st) = sh.namespace().lstat(p.as_str(), sh.creds()) {
            consider(p, st.file_type, &name, &ftype, &mut found);
        }
        walk(sh, p, &mut |path, ft| {
            consider(path, ft, &name, &ftype, &mut found)
        });
    }
    match exec {
        None => Output::ok(found.iter().map(|p| format!("{p}\n")).collect()),
        Some(cmd) => {
            let mut out = String::new();
            let mut any_fail = false;
            for p in &found {
                let argv: Vec<String> = if cmd.iter().any(|c| c == "{}") {
                    cmd.iter()
                        .map(|c| {
                            if c == "{}" {
                                p.as_str().to_string()
                            } else {
                                c.clone()
                            }
                        })
                        .collect()
                } else {
                    let mut v = cmd.clone();
                    v.push(p.as_str().to_string());
                    v
                };
                let r = sh.run(&argv.join(" "));
                out.push_str(&r.out);
                any_fail |= !r.err.is_empty();
            }
            Output {
                code: i32::from(any_fail),
                out,
                err: String::new(),
            }
        }
    }
}

fn consider(
    path: &VPath,
    ft: FileType,
    name: &Option<String>,
    ftype: &Option<FileType>,
    found: &mut Vec<VPath>,
) {
    if let Some(pat) = name {
        if !glob_match(pat, path.file_name().unwrap_or("")) {
            return;
        }
    }
    if let Some(t) = ftype {
        if ft != *t {
            return;
        }
    }
    found.push(path.clone());
}

/// `tree [path]` — the Figure-2 rendering.
pub fn tree(sh: &Shell, args: &[&str]) -> Output {
    let root = sh.resolve(flagless(args).next().unwrap_or("."));
    if sh.namespace().stat(root.as_str(), sh.creds()).is_err() {
        return Output::fail(format!("tree: {root}: No such file or directory"));
    }
    let mut out = format!("{root}\n");
    fn rec(sh: &Shell, dir: &VPath, prefix: &str, out: &mut String) {
        let entries = match sh.namespace().readdir(dir.as_str(), sh.creds()) {
            Ok(e) => e,
            Err(_) => return,
        };
        let n = entries.len();
        for (i, e) in entries.iter().enumerate() {
            let last = i + 1 == n;
            let branch = if last { "└── " } else { "├── " };
            let p = dir.join(&e.name);
            let suffix = if e.file_type == FileType::Symlink {
                match sh.namespace().readlink(p.as_str(), sh.creds()) {
                    Ok(t) => format!(" -> {t}"),
                    Err(_) => String::new(),
                }
            } else {
                String::new()
            };
            out.push_str(&format!("{prefix}{branch}{}{suffix}\n", e.name));
            if e.file_type == FileType::Directory {
                let next = format!("{prefix}{}", if last { "    " } else { "│   " });
                rec(sh, &p, &next, out);
            }
        }
    }
    rec(sh, &root, "", &mut out);
    Output::ok(out)
}

/// `mkdir [-p] dirs…`.
pub fn mkdir(sh: &Shell, args: &[&str]) -> Output {
    let parents = has_flag(args, "-p");
    for d in flagless(args) {
        let vp = sh.resolve(d);
        let r = if parents {
            sh.namespace()
                .mkdir_all(vp.as_str(), Mode::DIR_DEFAULT, sh.creds())
        } else {
            sh.namespace()
                .mkdir(vp.as_str(), Mode::DIR_DEFAULT, sh.creds())
        };
        if let Err(e) = r {
            return Output::fail(format!("mkdir: {e}"));
        }
    }
    Output::ok(String::new())
}

/// `rmdir dirs…`.
pub fn rmdir(sh: &Shell, args: &[&str]) -> Output {
    for d in flagless(args) {
        let vp = sh.resolve(d);
        if let Err(e) = sh.namespace().rmdir(vp.as_str(), sh.creds()) {
            return Output::fail(format!("rmdir: {e}"));
        }
    }
    Output::ok(String::new())
}

/// `rm [-r] [-f] paths…`.
pub fn rm(sh: &Shell, args: &[&str]) -> Output {
    let recursive = has_flag(args, "-r") || has_flag(args, "-rf") || has_flag(args, "-fr");
    let force = has_flag(args, "-f") || has_flag(args, "-rf") || has_flag(args, "-fr");
    for p in flagless(args) {
        let vp = sh.resolve(p);
        let st = match sh.namespace().lstat(vp.as_str(), sh.creds()) {
            Ok(s) => s,
            Err(e) => {
                if force {
                    continue;
                }
                return Output::fail(format!("rm: {e}"));
            }
        };
        let r = if st.is_dir() {
            if !recursive {
                return Output::fail(format!("rm: {vp}: is a directory"));
            }
            rm_tree(sh, &vp)
        } else {
            sh.namespace()
                .unlink(vp.as_str(), sh.creds())
                .map_err(|e| e.to_string())
        };
        if let Err(e) = r {
            if !force {
                return Output::fail(format!("rm: {e}"));
            }
        }
    }
    Output::ok(String::new())
}

fn rm_tree(sh: &Shell, dir: &VPath) -> Result<(), String> {
    let entries = sh
        .namespace()
        .readdir(dir.as_str(), sh.creds())
        .map_err(|e| e.to_string())?;
    for e in entries {
        let p = dir.join(&e.name);
        if e.file_type == FileType::Directory {
            rm_tree(sh, &p)?;
        } else {
            sh.namespace()
                .unlink(p.as_str(), sh.creds())
                .map_err(|e| e.to_string())?;
        }
    }
    sh.namespace()
        .rmdir(dir.as_str(), sh.creds())
        .map_err(|e| e.to_string())
}

/// `ln -s target link`.
pub fn ln(sh: &Shell, args: &[&str]) -> Output {
    if !has_flag(args, "-s") {
        return Output::fail("ln: only symbolic links (-s) are supported");
    }
    let rest: Vec<&str> = flagless(args).collect();
    if rest.len() != 2 {
        return Output::fail("ln: usage: ln -s TARGET LINK");
    }
    let link = sh.resolve(rest[1]);
    match sh.namespace().symlink(rest[0], link.as_str(), sh.creds()) {
        Ok(()) => Output::ok(String::new()),
        Err(e) => Output::fail(format!("ln: {e}")),
    }
}

/// `mv src dst`.
pub fn mv(sh: &Shell, args: &[&str]) -> Output {
    let rest: Vec<&str> = flagless(args).collect();
    if rest.len() != 2 {
        return Output::fail("mv: usage: mv SRC DST");
    }
    let src = sh.resolve(rest[0]);
    let mut dst = sh.resolve(rest[1]);
    // Moving into an existing directory keeps the source name.
    if let Ok(st) = sh.namespace().stat(dst.as_str(), sh.creds()) {
        if st.is_dir() {
            if let Some(n) = src.file_name() {
                dst = dst.join(n);
            }
        }
    }
    match sh
        .namespace()
        .rename(src.as_str(), dst.as_str(), sh.creds())
    {
        Ok(()) => Output::ok(String::new()),
        Err(e) => Output::fail(format!("mv: {e}")),
    }
}

/// `cp [-r] src dst`.
pub fn cp(sh: &Shell, args: &[&str]) -> Output {
    let recursive = has_flag(args, "-r");
    let rest: Vec<&str> = flagless(args).collect();
    if rest.len() != 2 {
        return Output::fail("cp: usage: cp [-r] SRC DST");
    }
    let src = sh.resolve(rest[0]);
    let mut dst = sh.resolve(rest[1]);
    if let Ok(st) = sh.namespace().stat(dst.as_str(), sh.creds()) {
        if st.is_dir() {
            if let Some(n) = src.file_name() {
                dst = dst.join(n);
            }
        }
    }
    match copy_any(sh, &src, &dst, recursive) {
        Ok(()) => Output::ok(String::new()),
        Err(e) => Output::fail(format!("cp: {e}")),
    }
}

fn copy_any(sh: &Shell, src: &VPath, dst: &VPath, recursive: bool) -> Result<(), String> {
    let st = sh
        .namespace()
        .lstat(src.as_str(), sh.creds())
        .map_err(|e| e.to_string())?;
    match st.file_type {
        FileType::Regular => {
            let data = sh
                .namespace()
                .read_file(src.as_str(), sh.creds())
                .map_err(|e| e.to_string())?;
            sh.namespace()
                .write_file(dst.as_str(), &data, sh.creds())
                .map_err(|e| e.to_string())
        }
        FileType::Symlink => {
            let t = sh
                .namespace()
                .readlink(src.as_str(), sh.creds())
                .map_err(|e| e.to_string())?;
            sh.namespace()
                .symlink(&t, dst.as_str(), sh.creds())
                .map_err(|e| e.to_string())
        }
        FileType::Directory => {
            if !recursive {
                return Err(format!("{src}: is a directory (use -r)"));
            }
            if !sh.namespace().exists(dst.as_str(), sh.creds()) {
                sh.namespace()
                    .mkdir(dst.as_str(), Mode::DIR_DEFAULT, sh.creds())
                    .map_err(|e| e.to_string())?;
            }
            let entries = sh
                .namespace()
                .readdir(src.as_str(), sh.creds())
                .map_err(|e| e.to_string())?;
            for e in entries {
                copy_any(sh, &src.join(&e.name), &dst.join(&e.name), true)?;
            }
            Ok(())
        }
    }
}

/// `touch files…`.
pub fn touch(sh: &Shell, args: &[&str]) -> Output {
    for f in flagless(args) {
        let vp = sh.resolve(f);
        if !sh.namespace().exists(vp.as_str(), sh.creds()) {
            if let Err(e) = sh.namespace().write_file(vp.as_str(), b"", sh.creds()) {
                return Output::fail(format!("touch: {e}"));
            }
        }
    }
    Output::ok(String::new())
}

/// `stat paths…`.
pub fn stat_cmd(sh: &Shell, args: &[&str]) -> Output {
    let mut out = String::new();
    for p in flagless(args) {
        let vp = sh.resolve(p);
        match sh.namespace().lstat(vp.as_str(), sh.creds()) {
            Ok(st) => out.push_str(&format!(
                "{}: type={:?} mode={} uid={} gid={} size={} nlink={} ino={}\n",
                vp, st.file_type, st.mode, st.uid.0, st.gid.0, st.size, st.nlink, st.ino.0
            )),
            Err(e) => return Output::fail(format!("stat: {e}")),
        }
    }
    Output::ok(out)
}

/// `stats [proc-dir…]` — flatten an introspection tree (default
/// `/net/.proc`) into sorted `path: value` lines. Reading each file
/// triggers the proc refresh hook, so values are current.
pub fn stats(sh: &Shell, args: &[&str]) -> Output {
    let mut roots: Vec<&str> = flagless(args).collect();
    if roots.is_empty() {
        roots.push("/net/.proc");
    }
    let mut out = String::new();
    for root in roots {
        let vp = sh.resolve(root);
        if sh.namespace().stat(vp.as_str(), sh.creds()).is_err() {
            return Output::fail(format!("stats: {vp}: no such introspection tree"));
        }
        let mut files: Vec<VPath> = Vec::new();
        walk(sh, &vp, &mut |p, ft| {
            if ft == FileType::Regular {
                files.push(p.clone());
            }
        });
        files.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        for f in files {
            match sh.namespace().read_to_string(f.as_str(), sh.creds()) {
                Ok(v) => out.push_str(&format!("{}: {}\n", f, v.trim_end())),
                Err(e) => out.push_str(&format!("{}: <{}>\n", f, e)),
            }
        }
    }
    Output::ok(out)
}

/// `readlink path`.
pub fn readlink(sh: &Shell, args: &[&str]) -> Output {
    let p = match flagless(args).next() {
        Some(p) => p,
        None => return Output::fail("readlink: missing operand"),
    };
    let vp = sh.resolve(p);
    match sh.namespace().readlink(vp.as_str(), sh.creds()) {
        Ok(t) => Output::ok(format!("{t}\n")),
        Err(e) => Output::fail(format!("readlink: {e}")),
    }
}

/// `chmod octal paths…`.
pub fn chmod(sh: &Shell, args: &[&str]) -> Output {
    let mut it = flagless(args);
    let mode_s = match it.next() {
        Some(m) => m,
        None => return Output::fail("chmod: missing mode"),
    };
    let mode = match u16::from_str_radix(mode_s, 8) {
        Ok(m) => Mode(m),
        Err(_) => return Output::fail(format!("chmod: bad mode {mode_s}")),
    };
    for p in it {
        let vp = sh.resolve(p);
        if let Err(e) = sh.namespace().chmod(vp.as_str(), mode, sh.creds()) {
            return Output::fail(format!("chmod: {e}"));
        }
    }
    Output::ok(String::new())
}

/// `chown uid[:gid] paths…`.
pub fn chown(sh: &Shell, args: &[&str]) -> Output {
    let mut it = flagless(args);
    let who = match it.next() {
        Some(w) => w,
        None => return Output::fail("chown: missing owner"),
    };
    let (uid_s, gid_s) = match who.split_once(':') {
        Some((u, g)) => (u, Some(g)),
        None => (who, None),
    };
    let uid: u32 = match uid_s.parse() {
        Ok(u) => u,
        Err(_) => return Output::fail("chown: numeric uid required"),
    };
    let gid: Option<u32> = match gid_s {
        Some(g) => match g.parse() {
            Ok(g) => Some(g),
            Err(_) => return Output::fail("chown: numeric gid required"),
        },
        None => None,
    };
    for p in it {
        let vp = sh.resolve(p);
        if let Err(e) = sh
            .namespace()
            .chown(vp.as_str(), Some(Uid(uid)), gid.map(Gid), sh.creds())
        {
            return Output::fail(format!("chown: {e}"));
        }
    }
    Output::ok(String::new())
}

/// `head [-n N]` over stdin or a file.
pub fn head(sh: &Shell, args: &[&str], stdin: &str) -> Output {
    let mut n = 10usize;
    let mut file = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "-n" {
            n = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(10);
            i += 2;
        } else {
            file = Some(args[i]);
            i += 1;
        }
    }
    let content = match file {
        Some(f) => {
            let vp = sh.resolve(f);
            match sh.namespace().read_to_string(vp.as_str(), sh.creds()) {
                Ok(s) => s,
                Err(e) => return Output::fail(format!("head: {e}")),
            }
        }
        None => stdin.to_string(),
    };
    Output::ok(content.lines().take(n).map(|l| format!("{l}\n")).collect())
}

/// `wc -l` (line count only).
pub fn wc(args: &[&str], stdin: &str) -> Output {
    if !has_flag(args, "-l") {
        return Output::fail("wc: only -l is supported");
    }
    Output::ok(format!("{}\n", stdin.lines().count()))
}

/// `sort [-r]` over stdin.
pub fn sort(args: &[&str], stdin: &str) -> Output {
    let mut lines: Vec<&str> = stdin.lines().collect();
    lines.sort_unstable();
    if has_flag(args, "-r") {
        lines.reverse();
    }
    Output::ok(lines.iter().map(|l| format!("{l}\n")).collect())
}

/// `uniq` (adjacent duplicates) over stdin.
pub fn uniq(stdin: &str) -> Output {
    let mut out = String::new();
    let mut last: Option<&str> = None;
    for l in stdin.lines() {
        if last != Some(l) {
            out.push_str(l);
            out.push('\n');
        }
        last = Some(l);
    }
    Output::ok(out)
}

/// `ps [procdir]` — flatten `/net/.proc/apps` into a process listing.
///
/// One row per pid directory, columns from the `status` file; pids sort
/// numerically, exactly like procps over a real `/proc`.
pub fn ps(sh: &Shell, args: &[&str]) -> Output {
    let dir = flagless(args).next().unwrap_or("/net/.proc/apps");
    let vp = sh.resolve(dir);
    let entries = match sh.namespace().readdir(vp.as_str(), sh.creds()) {
        Ok(e) => e,
        // No apps directory simply means no processes were ever spawned.
        Err(_) => return Output::ok("PID UID STATE RESTARTS NAME\n".to_string()),
    };
    let mut pids: Vec<u32> = entries.iter().filter_map(|e| e.name.parse().ok()).collect();
    pids.sort_unstable();
    let mut out = String::from("PID UID STATE RESTARTS NAME\n");
    for pid in pids {
        let status = vp.join(&pid.to_string()).join("status");
        let Ok(text) = sh.namespace().read_to_string(status.as_str(), sh.creds()) else {
            continue;
        };
        let field = |key: &str| {
            text.lines()
                .find_map(|l| l.strip_prefix(&format!("{key}:")))
                .map(|v| v.trim().to_string())
                .unwrap_or_else(|| "?".to_string())
        };
        out.push_str(&format!(
            "{pid} {} {} {} {}\n",
            field("uid"),
            field("state"),
            field("restarts"),
            field("name"),
        ));
    }
    Output::ok(out)
}

/// `kill [-SIG] <pid> [ctlfile]` — signal a yanc process.
///
/// Signals are delivered the filesystem way: the command appends a
/// `kill -SIG <pid>` line to the supervisor's control file (default
/// `/net/.init/ctl`); the supervisor consumes it on its next tick.
pub fn kill(sh: &Shell, args: &[&str]) -> Output {
    let mut sig = "TERM".to_string();
    let mut rest: Vec<&str> = Vec::new();
    for a in args {
        if let Some(s) = a.strip_prefix('-') {
            sig = s.trim_start_matches("SIG").to_string();
        } else {
            rest.push(a);
        }
    }
    let canonical = match sig.as_str() {
        "HUP" | "hup" | "1" => "HUP",
        "KILL" | "kill" | "9" => "KILL",
        "TERM" | "term" | "15" => "TERM",
        other => return Output::fail(format!("kill: {other}: invalid signal specification")),
    };
    let Some(pid) = rest.first().and_then(|p| p.parse::<u32>().ok()) else {
        return Output::fail("usage: kill [-SIG] <pid> [ctlfile]");
    };
    let ctl = sh.resolve(rest.get(1).copied().unwrap_or("/net/.init/ctl"));
    let line = format!("kill -{canonical} {pid}\n");
    match sh
        .namespace()
        .append_file(ctl.as_str(), line.as_bytes(), sh.creds())
    {
        Ok(()) => Output::ok(String::new()),
        Err(e) => Output::fail(format!("kill: {e}")),
    }
}

/// `lsfd [pid] [procdir]` — a process's open descriptor table, from
/// `/net/.proc/apps/<pid>/fds` (every process when no pid is given).
///
/// Like `ps`, the command is pure file reads: the same rows are one
/// `cat` away, this just flattens and labels them.
pub fn lsfd(sh: &Shell, args: &[&str]) -> Output {
    let mut it = flagless(args);
    let pid_arg = it.next();
    let dir = it.next().unwrap_or("/net/.proc/apps");
    let vp = sh.resolve(dir);
    let header = "PID FD MODE OFFSET PATH\n";
    let pids: Vec<u32> = match pid_arg {
        Some(p) => match p.parse() {
            Ok(pid) => vec![pid],
            Err(_) => return Output::fail(format!("lsfd: {p}: not a pid")),
        },
        None => {
            let entries = match sh.namespace().readdir(vp.as_str(), sh.creds()) {
                Ok(e) => e,
                // No apps directory: nothing supervised, nothing open.
                Err(_) => return Output::ok(header.to_string()),
            };
            let mut pids: Vec<u32> = entries.iter().filter_map(|e| e.name.parse().ok()).collect();
            pids.sort_unstable();
            pids
        }
    };
    let mut out = String::from(header);
    for pid in pids {
        let f = vp.join(&pid.to_string()).join("fds");
        let Ok(text) = sh.namespace().read_to_string(f.as_str(), sh.creds()) else {
            continue;
        };
        for line in text.lines() {
            // fds rows are "<fd>\t<mode>\t<path>\toffset=<n>".
            let mut cols = line.split('\t');
            let (Some(fd), Some(mode), Some(path), Some(off)) =
                (cols.next(), cols.next(), cols.next(), cols.next())
            else {
                continue;
            };
            let off = off.strip_prefix("offset=").unwrap_or(off);
            out.push_str(&format!("{pid} {fd} {mode} {off} {path}\n"));
        }
    }
    Output::ok(out)
}

/// `mount`: print the shell namespace's mount table, one row per entry —
/// `<detail> on <at> type <kind>`, with live copy-up/whiteout/commit
/// counters for overlay mounts. The same rows appear (per registered
/// namespace) in `/net/.proc/vfs/mounts`.
pub fn mount(sh: &Shell, _args: &[&str]) -> Output {
    let mut out = String::new();
    for row in sh.namespace().mount_table() {
        out.push_str(&format!("{} on {} type {}", row.detail, row.at, row.kind));
        if let Some(s) = row.stats {
            out.push_str(&format!(
                " (copy_ups={} copy_up_bytes={} whiteouts={} commits={})",
                s.copy_ups, s.copy_up_bytes, s.whiteouts, s.commits
            ));
        }
        out.push('\n');
    }
    Output::ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use yanc_vfs::{Credentials, Filesystem};

    fn sh() -> Shell {
        let fs = Arc::new(Filesystem::new());
        let c = Credentials::root();
        fs.mkdir_all("/net/switches/sw1/flows/ssh", Mode::DIR_DEFAULT, &c)
            .unwrap();
        fs.mkdir_all("/net/switches/sw2/flows", Mode::DIR_DEFAULT, &c)
            .unwrap();
        fs.write_file("/net/switches/sw1/flows/ssh/tp.dst", b"22\n", &c)
            .unwrap();
        fs.write_file("/net/switches/sw1/flows/ssh/priority", b"100\n", &c)
            .unwrap();
        fs.write_file("/net/switches/sw1/id", b"0x1\n", &c).unwrap();
        fs.write_file("/net/switches/sw2/id", b"0x2\n", &c).unwrap();
        Shell::new(fs)
    }

    #[test]
    fn ps_flattens_proc_apps_numerically() {
        let mut s = sh();
        let c = Credentials::root();
        let fs = s.namespace().filesystem().clone();
        for (pid, name, state) in [(2u32, "topod", "running"), (10, "router", "backoff")] {
            fs.mkdir_all(&format!("/net/.proc/apps/{pid}"), Mode::DIR_DEFAULT, &c)
                .unwrap();
            fs.write_file(
                &format!("/net/.proc/apps/{pid}/status"),
                format!(
                    "name:\t{name}\npid:\t{pid}\nuid:\t{}\nstate:\t{state}\nrestarts:\t1\n",
                    1000 + pid
                )
                .as_bytes(),
                &c,
            )
            .unwrap();
        }
        let out = s.run("ps").out;
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "PID UID STATE RESTARTS NAME");
        assert_eq!(lines[1], "2 1002 running 1 topod");
        assert_eq!(lines[2], "10 1010 backoff 1 router");
        // Empty table is not an error.
        let mut bare = Shell::new(Arc::new(Filesystem::new()));
        assert!(bare.run("ps").success());
    }

    #[test]
    fn kill_appends_ctl_line() {
        let mut s = sh();
        let c = Credentials::root();
        let fs = s.namespace().filesystem().clone();
        fs.mkdir_all("/net/.init", Mode::DIR_DEFAULT, &c).unwrap();
        fs.write_file("/net/.init/ctl", b"", &c).unwrap();
        assert!(s.run("kill -9 3").success());
        assert!(s.run("kill 4").success());
        assert!(s.run("kill -HUP 5").success());
        let ctl = fs.read_to_string("/net/.init/ctl", &c).unwrap();
        assert_eq!(ctl, "kill -KILL 3\nkill -TERM 4\nkill -HUP 5\n");
        assert!(!s.run("kill -USR1 3").success());
        assert!(!s.run("kill notapid").success());
    }

    #[test]
    fn ls_plain_and_long() {
        let mut s = sh();
        assert_eq!(s.run("ls /net/switches").out, "sw1\nsw2\n");
        let long = s.run("ls -l /net/switches").out;
        assert!(long.contains("drwxr-xr-x"));
        assert!(long.lines().count() == 2);
        assert!(!s.run("ls /nope").success());
    }

    #[test]
    fn paper_oneliner_find_exec_grep() {
        let mut s = sh();
        // "$ find /net -name tp.dst -exec grep 22"
        let out = s.run("find /net -name tp.dst -exec grep -H 22");
        assert!(out.out.contains("/net/switches/sw1/flows/ssh/tp.dst:22"));
    }

    #[test]
    fn find_filters() {
        let mut s = sh();
        let out = s.run("find /net -type d -name flows");
        assert_eq!(
            out.out,
            "/net/switches/sw1/flows\n/net/switches/sw2/flows\n"
        );
        let out = s.run("find /net -name 'sw*' -type d");
        assert!(out.out.contains("sw1"));
        assert!(out.out.contains("sw2"));
        let out = s.run("find /net -name id");
        assert_eq!(out.out.lines().count(), 2);
    }

    #[test]
    fn grep_file_stdin_recursive() {
        let mut s = sh();
        assert_eq!(s.run("grep 0x1 /net/switches/sw1/id").out, "0x1\n");
        let out = s.run("grep -r 22 /net");
        assert!(out.out.contains("tp.dst:22"));
        let out = s.run("cat /net/switches/sw1/id | grep 0x");
        assert_eq!(out.out, "0x1\n");
        // -v inverts; exit code reflects match presence.
        assert!(!s.run("grep nothinghere /net/switches/sw1/id").success());
    }

    #[test]
    fn tree_renders_hierarchy() {
        let mut s = sh();
        let out = s.run("tree /net/switches/sw1").out;
        assert!(out.contains("└── ssh") || out.contains("├── ssh"));
        assert!(out.contains("tp.dst"));
    }

    #[test]
    fn mkdir_rm_roundtrip() {
        let mut s = sh();
        assert!(s.run("mkdir -p /a/b/c").success());
        assert!(s.run("touch /a/b/c/f").success());
        assert!(!s.run("rm /a").success()); // dir without -r
        assert!(s.run("rm -r /a").success());
        assert!(!s.namespace().exists("/a", s.creds()));
        assert!(!s.run("rm /missing").success());
        assert!(s.run("rm -f /missing").success());
    }

    #[test]
    fn ln_and_readlink() {
        let mut s = sh();
        assert!(s.run("ln -s /net/switches/sw1 /fav").success());
        assert_eq!(s.run("readlink /fav").out, "/net/switches/sw1\n");
        assert_eq!(s.run("cat /fav/id").out, "0x1\n");
        assert!(!s.run("ln /a /b").success()); // hard links unsupported
    }

    #[test]
    fn cp_recursive_and_mv() {
        let mut s = sh();
        assert!(s.run("cp -r /net/switches/sw1 /backup").success());
        assert_eq!(s.run("cat /backup/flows/ssh/tp.dst").out, "22\n");
        // mv into an existing directory keeps the name.
        assert!(s.run("mkdir /archive").success());
        assert!(s.run("mv /backup /archive").success());
        assert!(s
            .namespace()
            .exists("/archive/backup/flows/ssh/tp.dst", s.creds()));
        // cp without -r refuses directories.
        assert!(!s.run("cp /net/switches/sw1 /x").success());
    }

    #[test]
    fn chmod_chown_stat() {
        let mut s = sh();
        assert!(s.run("chmod 600 /net/switches/sw1/id").success());
        let out = s.run("stat /net/switches/sw1/id").out;
        assert!(out.contains("mode=0600"));
        assert!(s.run("chown 1000:2000 /net/switches/sw1/id").success());
        let out = s.run("stat /net/switches/sw1/id").out;
        assert!(out.contains("uid=1000"));
        assert!(out.contains("gid=2000"));
        assert!(!s.run("chmod zzz /f").success());
    }

    #[test]
    fn mount_lists_binds_and_overlays() {
        let fs = {
            let mut s = sh();
            s.run("true");
            s.namespace().filesystem().clone()
        };
        let c = Credentials::root();
        let ov = yanc_vfs::Overlay::new(fs.clone(), &["/net/switches"], "/views/a");
        ov.ensure_upper(&c).unwrap();
        let ns = yanc_vfs::Namespace::new(fs.clone())
            .bind_ro("/ro", "/net")
            .overlay("/net", &ov);
        let mut s = Shell::with_namespace(ns);
        s.run("echo staged > /net/sw1/id");
        let out = s.run("mount").out;
        assert!(out.contains("/ on / type root"), "{out}");
        assert!(out.contains("/net on /ro type bind_ro"), "{out}");
        assert!(
            out.contains("/net/switches -> /views/a on /net type overlay (copy_ups=1"),
            "{out}"
        );
    }

    #[test]
    fn text_utilities() {
        let mut s = sh();
        assert_eq!(s.run("echo b | sort").out, "b\n");
        s.namespace()
            .write_file("/lines", b"b\na\nb\n", s.creds())
            .unwrap();
        assert_eq!(s.run("cat /lines | sort").out, "a\nb\nb\n");
        assert_eq!(s.run("cat /lines | sort | uniq").out, "a\nb\n");
        assert_eq!(s.run("cat /lines | wc -l").out, "3\n");
        assert_eq!(s.run("cat /lines | head -n 1").out, "b\n");
        assert_eq!(s.run("cat /lines | sort -r | head -n 1").out, "b\n");
    }
}
