//! # yanc-coreutils — standard utilities over the virtual file system
//!
//! The paper's §5.4: network administration via the "rich set of command
//! line utilities" — `ls -l /net/switches`, `echo 1 > config.port_down`,
//! `find /net -name tp.dst -exec grep 22`. This crate provides those
//! utilities against [`yanc_vfs`], plus a tiny [`Shell`] with pipes,
//! redirection and a cwd so one-liners and scripts run verbatim.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cmds;
pub mod glob;
pub mod shell;

pub use glob::{glob_match, is_glob};
pub use shell::{Output, Shell};
