//! The flow ↔ files codec (paper §3.4, Figure 3).
//!
//! A yanc flow is a directory: every match field is a separate `match.*`
//! file (absence = wildcard, IP fields take CIDR notation), actions are
//! `action.*` files, and scalars (`priority`, timeouts, `cookie`,
//! `version`) are their own files. This module converts between that file
//! map and a typed [`FlowSpec`].
//!
//! Because directory entries are unordered while OpenFlow actions are a
//! list, the codec fixes a canonical application order: all field rewrites
//! (VLAN, L2, L3, L4), then `strip_vlan`, then `enqueue`, then `out` —
//! which covers every pattern a file-driven flow pusher needs.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use yanc_openflow::{port_no, Action, FlowMatch, Ipv4Prefix};
use yanc_packet::MacAddr;

use crate::error::{YancError, YancResult};

/// A typed flow: what a flow directory means.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// The match (wildcard fields omitted from the directory).
    pub m: FlowMatch,
    /// Actions in canonical order.
    pub actions: Vec<Action>,
    /// Priority (defaults to 32768, the OpenFlow convention).
    pub priority: u16,
    /// Idle timeout seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout seconds (0 = none).
    pub hard_timeout: u16,
    /// Controller cookie.
    pub cookie: u64,
    /// Multi-table continuation (requires an OpenFlow ≥1.1 driver).
    pub goto_table: Option<u8>,
    /// Commit counter; drivers act when this increases.
    pub version: u64,
}

impl Default for FlowSpec {
    fn default() -> Self {
        FlowSpec {
            m: FlowMatch::any(),
            actions: Vec::new(),
            priority: 32768,
            idle_timeout: 0,
            hard_timeout: 0,
            cookie: 0,
            goto_table: None,
            version: 0,
        }
    }
}

/// A flow command, as carried by the libyanc fastpath ring (and by the
/// [`crate::error::RingFull`] error payload when a ring rejects it). Lives
/// here rather than in libyanc so the error type and the transport can both
/// name it without a dependency cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowOp {
    /// Install (or replace) `spec` as flow `name` on `switch`.
    Install {
        /// Switch name (`sw<dpid:hex>`).
        switch: String,
        /// Flow name (driver-local identity for later delete).
        name: String,
        /// The flow.
        spec: FlowSpec,
    },
    /// Remove flow `name` from `switch`.
    Delete {
        /// Switch name.
        switch: String,
        /// Flow name.
        name: String,
    },
}

fn parse_u64(what: &str, s: &str) -> YancResult<u64> {
    let t = s.trim();
    let r = if let Some(hex) = t.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        t.parse()
    };
    r.map_err(|_| YancError::parse(what, format!("bad number {t:?}")))
}

fn parse_u16(what: &str, s: &str) -> YancResult<u16> {
    let v = parse_u64(what, s)?;
    u16::try_from(v).map_err(|_| YancError::parse(what, format!("{v} out of range")))
}

fn parse_u8(what: &str, s: &str) -> YancResult<u8> {
    let v = parse_u64(what, s)?;
    u8::try_from(v).map_err(|_| YancError::parse(what, format!("{v} out of range")))
}

fn parse_mac(what: &str, s: &str) -> YancResult<MacAddr> {
    s.trim()
        .parse()
        .map_err(|_| YancError::parse(what, format!("bad MAC {:?}", s.trim())))
}

fn parse_ip(what: &str, s: &str) -> YancResult<Ipv4Addr> {
    s.trim()
        .parse()
        .map_err(|_| YancError::parse(what, format!("bad IPv4 {:?}", s.trim())))
}

fn parse_prefix(what: &str, s: &str) -> YancResult<Ipv4Prefix> {
    Ipv4Prefix::parse(s.trim())
        .ok_or_else(|| YancError::parse(what, format!("bad CIDR {:?}", s.trim())))
}

/// Parse an output-port token: a number or a reserved-port name.
pub fn parse_port_token(what: &str, tok: &str) -> YancResult<u16> {
    match tok.to_ascii_lowercase().as_str() {
        "flood" => Ok(port_no::FLOOD),
        "controller" => Ok(port_no::CONTROLLER),
        "all" => Ok(port_no::ALL),
        "in_port" => Ok(port_no::IN_PORT),
        "local" => Ok(port_no::LOCAL),
        "normal" => Ok(port_no::NORMAL),
        "table" => Ok(port_no::TABLE),
        _ => parse_u16(what, tok),
    }
}

/// Render an output port as its friendly name where one exists.
pub fn port_token(port: u16) -> String {
    match port {
        port_no::FLOOD => "flood".into(),
        port_no::CONTROLLER => "controller".into(),
        port_no::ALL => "all".into(),
        port_no::IN_PORT => "in_port".into(),
        port_no::LOCAL => "local".into(),
        port_no::NORMAL => "normal".into(),
        port_no::TABLE => "table".into(),
        p => p.to_string(),
    }
}

impl FlowSpec {
    /// Serialize to the `(file name, contents)` map that makes up the flow
    /// directory. `version` is included; counters are not (drivers own
    /// those).
    pub fn to_files(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        let m = &self.m;
        let mut mf = |name: &str, v: Option<String>| {
            if let Some(v) = v {
                out.push((format!("match.{name}"), v));
            }
        };
        mf("in_port", m.in_port.map(|v| v.to_string()));
        mf("dl_src", m.dl_src.map(|v| v.to_string()));
        mf("dl_dst", m.dl_dst.map(|v| v.to_string()));
        mf("dl_vlan", m.dl_vlan.map(|v| v.to_string()));
        mf("dl_vlan_pcp", m.dl_vlan_pcp.map(|v| v.to_string()));
        mf("dl_type", m.dl_type.map(|v| format!("0x{v:04x}")));
        mf("nw_tos", m.nw_tos.map(|v| v.to_string()));
        mf("nw_proto", m.nw_proto.map(|v| v.to_string()));
        mf("nw_src", m.nw_src.map(|v| v.to_string()));
        mf("nw_dst", m.nw_dst.map(|v| v.to_string()));
        mf("tp_src", m.tp_src.map(|v| v.to_string()));
        mf("tp_dst", m.tp_dst.map(|v| v.to_string()));

        let mut outs: Vec<String> = Vec::new();
        for a in &self.actions {
            match a {
                Action::Output { port, .. } => outs.push(port_token(*port)),
                Action::SetVlanVid(v) => out.push(("action.set_vlan_vid".into(), v.to_string())),
                Action::SetVlanPcp(v) => out.push(("action.set_vlan_pcp".into(), v.to_string())),
                Action::StripVlan => out.push(("action.strip_vlan".into(), "1".into())),
                Action::SetDlSrc(v) => out.push(("action.set_dl_src".into(), v.to_string())),
                Action::SetDlDst(v) => out.push(("action.set_dl_dst".into(), v.to_string())),
                Action::SetNwSrc(v) => out.push(("action.set_nw_src".into(), v.to_string())),
                Action::SetNwDst(v) => out.push(("action.set_nw_dst".into(), v.to_string())),
                Action::SetNwTos(v) => out.push(("action.set_nw_tos".into(), v.to_string())),
                Action::SetTpSrc(v) => out.push(("action.set_tp_src".into(), v.to_string())),
                Action::SetTpDst(v) => out.push(("action.set_tp_dst".into(), v.to_string())),
                Action::Enqueue { port, queue_id } => {
                    out.push(("action.enqueue".into(), format!("{port}:{queue_id}")))
                }
            }
        }
        if !outs.is_empty() {
            out.push(("action.out".into(), outs.join(" ")));
        }
        if self.priority != 32768 {
            out.push(("priority".into(), self.priority.to_string()));
        }
        if self.idle_timeout != 0 {
            out.push(("idle_timeout".into(), self.idle_timeout.to_string()));
        }
        if self.hard_timeout != 0 {
            out.push(("hard_timeout".into(), self.hard_timeout.to_string()));
        }
        if self.cookie != 0 {
            out.push(("cookie".into(), format!("0x{:x}", self.cookie)));
        }
        if let Some(t) = self.goto_table {
            out.push(("goto_table".into(), t.to_string()));
        }
        out.push(("version".into(), self.version.to_string()));
        out
    }

    /// Parse a flow directory's `(file name, contents)` map. Unknown files
    /// are rejected (the semantic hook normally prevents them existing).
    pub fn from_files<'a>(
        files: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> YancResult<FlowSpec> {
        let map: BTreeMap<&str, &str> = files.into_iter().collect();
        let mut spec = FlowSpec::default();
        let m = &mut spec.m;
        for (name, raw) in &map {
            let v = raw.trim();
            match *name {
                "match.in_port" => m.in_port = Some(parse_u16(name, v)?),
                "match.dl_src" => m.dl_src = Some(parse_mac(name, v)?),
                "match.dl_dst" => m.dl_dst = Some(parse_mac(name, v)?),
                "match.dl_vlan" => m.dl_vlan = Some(parse_u16(name, v)?),
                "match.dl_vlan_pcp" => m.dl_vlan_pcp = Some(parse_u8(name, v)?),
                "match.dl_type" => m.dl_type = Some(parse_u16(name, v)?),
                "match.nw_tos" => m.nw_tos = Some(parse_u8(name, v)?),
                "match.nw_proto" => m.nw_proto = Some(parse_u8(name, v)?),
                "match.nw_src" => m.nw_src = Some(parse_prefix(name, v)?),
                "match.nw_dst" => m.nw_dst = Some(parse_prefix(name, v)?),
                "match.tp_src" => m.tp_src = Some(parse_u16(name, v)?),
                "match.tp_dst" => m.tp_dst = Some(parse_u16(name, v)?),
                "priority" => spec.priority = parse_u16(name, v)?,
                "idle_timeout" | "timeout" => spec.idle_timeout = parse_u16(name, v)?,
                "hard_timeout" => spec.hard_timeout = parse_u16(name, v)?,
                "cookie" => spec.cookie = parse_u64(name, v)?,
                "goto_table" => spec.goto_table = Some(parse_u8(name, v)?),
                "version" => spec.version = parse_u64(name, v)?,
                "error" => {} // driver-owned report, not part of the spec
                n if n.starts_with("action.") => {} // second pass below
                other => {
                    return Err(YancError::parse(other, "unknown flow file"));
                }
            }
        }
        // Actions, canonical order.
        let mut actions: Vec<Action> = Vec::new();
        let get = |k: &str| map.get(k).map(|s| s.trim());
        if let Some(v) = get("action.set_vlan_vid") {
            actions.push(Action::SetVlanVid(parse_u16("action.set_vlan_vid", v)?));
        }
        if let Some(v) = get("action.set_vlan_pcp") {
            actions.push(Action::SetVlanPcp(parse_u8("action.set_vlan_pcp", v)?));
        }
        if let Some(v) = get("action.set_dl_src") {
            actions.push(Action::SetDlSrc(parse_mac("action.set_dl_src", v)?));
        }
        if let Some(v) = get("action.set_dl_dst") {
            actions.push(Action::SetDlDst(parse_mac("action.set_dl_dst", v)?));
        }
        if let Some(v) = get("action.set_nw_src") {
            actions.push(Action::SetNwSrc(parse_ip("action.set_nw_src", v)?));
        }
        if let Some(v) = get("action.set_nw_dst") {
            actions.push(Action::SetNwDst(parse_ip("action.set_nw_dst", v)?));
        }
        if let Some(v) = get("action.set_nw_tos") {
            actions.push(Action::SetNwTos(parse_u8("action.set_nw_tos", v)?));
        }
        if let Some(v) = get("action.set_tp_src") {
            actions.push(Action::SetTpSrc(parse_u16("action.set_tp_src", v)?));
        }
        if let Some(v) = get("action.set_tp_dst") {
            actions.push(Action::SetTpDst(parse_u16("action.set_tp_dst", v)?));
        }
        if let Some(v) = get("action.strip_vlan") {
            if v != "0" {
                actions.push(Action::StripVlan);
            }
        }
        if let Some(v) = get("action.enqueue") {
            let (p, q) = v
                .split_once(':')
                .ok_or_else(|| YancError::parse("action.enqueue", "want port:queue"))?;
            actions.push(Action::Enqueue {
                port: parse_port_token("action.enqueue", p)?,
                queue_id: parse_u64("action.enqueue", q)? as u32,
            });
        }
        if let Some(v) = get("action.out") {
            for tok in v.split([' ', ',']).filter(|t| !t.is_empty()) {
                actions.push(Action::out(parse_port_token("action.out", tok)?));
            }
        }
        // Validate action names we didn't consume.
        for name in map.keys().filter(|n| n.starts_with("action.")) {
            let suffix = &name["action.".len()..];
            if !crate::schema::ACTION_FIELDS.contains(&suffix) {
                return Err(YancError::parse(*name, "unknown action file"));
            }
        }
        spec.actions = actions;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(spec: &FlowSpec) -> FlowSpec {
        let files = spec.to_files();
        let view: Vec<(&str, &str)> = files
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        FlowSpec::from_files(view).unwrap()
    }

    #[test]
    fn default_roundtrip() {
        let spec = FlowSpec::default();
        assert_eq!(roundtrip(&spec), spec);
    }

    #[test]
    fn full_roundtrip() {
        let spec = FlowSpec {
            m: FlowMatch {
                in_port: Some(3),
                dl_src: Some(MacAddr::from_seed(1)),
                dl_dst: Some(MacAddr::from_seed(2)),
                dl_vlan: Some(100),
                dl_vlan_pcp: Some(5),
                dl_type: Some(0x0800),
                nw_tos: Some(0x10),
                nw_proto: Some(6),
                nw_src: Ipv4Prefix::parse("10.0.0.0/24"),
                nw_dst: Ipv4Prefix::parse("10.0.1.5"),
                tp_src: Some(1000),
                tp_dst: Some(22),
            },
            actions: vec![
                Action::SetVlanVid(200),
                Action::SetDlDst(MacAddr::from_seed(9)),
                Action::SetNwDst("10.2.2.2".parse().unwrap()),
                Action::SetTpDst(2222),
                Action::Enqueue {
                    port: 7,
                    queue_id: 3,
                },
                Action::out(1),
                Action::out(port_no::CONTROLLER),
            ],
            priority: 500,
            idle_timeout: 30,
            hard_timeout: 600,
            cookie: 0xdead,
            goto_table: Some(1),
            version: 4,
        };
        assert_eq!(roundtrip(&spec), spec);
    }

    #[test]
    fn fig3_arp_flow_parses() {
        // The paper's Figure 3 flow: match ARP, match source MAC, output.
        let spec = FlowSpec::from_files([
            ("match.dl_type", "0x0806"),
            ("match.dl_src", "aa:bb:cc:dd:ee:ff"),
            ("action.out", "controller"),
            ("priority", "1000"),
            ("timeout", "60"),
            ("version", "1"),
        ])
        .unwrap();
        assert_eq!(spec.m.dl_type, Some(0x0806));
        assert_eq!(spec.m.dl_src, Some("aa:bb:cc:dd:ee:ff".parse().unwrap()));
        assert_eq!(spec.actions, vec![Action::out(port_no::CONTROLLER)]);
        assert_eq!(spec.priority, 1000);
        assert_eq!(spec.idle_timeout, 60);
        assert_eq!(spec.version, 1);
    }

    #[test]
    fn absent_match_file_is_wildcard() {
        let spec = FlowSpec::from_files([("version", "0")]).unwrap();
        assert_eq!(spec.m, FlowMatch::any());
    }

    #[test]
    fn cidr_and_hex_forms() {
        let spec = FlowSpec::from_files([
            ("match.dl_type", "2048"), // decimal accepted too
            ("match.nw_src", "192.168.0.0/16"),
            ("version", "0"),
        ])
        .unwrap();
        assert_eq!(spec.m.dl_type, Some(0x0800));
        assert_eq!(spec.m.nw_src.unwrap().prefix_len, 16);
    }

    #[test]
    fn multiple_output_ports() {
        let spec = FlowSpec::from_files([("action.out", "1, 2 flood"), ("version", "0")]).unwrap();
        assert_eq!(
            spec.actions,
            vec![Action::out(1), Action::out(2), Action::out(port_no::FLOOD)]
        );
    }

    #[test]
    fn parse_errors_are_descriptive() {
        let e = FlowSpec::from_files([("match.dl_src", "zz:zz"), ("version", "0")]).unwrap_err();
        assert!(e.to_string().contains("dl_src"));
        let e = FlowSpec::from_files([("match.tp_dst", "99999"), ("version", "0")]).unwrap_err();
        assert!(e.to_string().contains("out of range"));
        let e = FlowSpec::from_files([("bogus", "1"), ("version", "0")]).unwrap_err();
        assert!(e.to_string().contains("unknown"));
        let e =
            FlowSpec::from_files([("action.enqueue", "noports"), ("version", "0")]).unwrap_err();
        assert!(e.to_string().contains("port:queue"));
    }

    #[test]
    fn strip_vlan_zero_means_absent() {
        let spec = FlowSpec::from_files([("action.strip_vlan", "0"), ("version", "0")]).unwrap();
        assert!(spec.actions.is_empty());
    }

    #[test]
    fn port_tokens_roundtrip() {
        for p in [
            1u16,
            42,
            port_no::FLOOD,
            port_no::CONTROLLER,
            port_no::IN_PORT,
        ] {
            assert_eq!(parse_port_token("t", &port_token(p)).unwrap(), p);
        }
    }
}
