//! Network views (paper §4.2): slices and virtualized topologies.
//!
//! A view is "any logical representation of an underlying network". In the
//! file system a view is a directory under `views/` that contains its own
//! `hosts/ switches/ views/` (created automatically on `mkdir`, §3.1) plus
//! a `config/` directory describing the translation the view application
//! maintains:
//!
//! * `config/kind` — `slice` (subset of hardware + header space, original
//!   topology preserved) or `big-switch` (all member switches presented as
//!   one virtual switch),
//! * `config/switches` — member physical switches, one per line,
//! * `config/match.*` — the header-space predicate in the same notation as
//!   flow match files (absent = full header space).
//!
//! The slicer/virtualizer *application* (yanc-apps) reads this config and
//! maintains the translation; stacking works because a view's `switches/`
//! looks exactly like the global one, so another view can be built on it.

use yanc_openflow::FlowMatch;
use yanc_vfs::Mode;

use crate::error::{YancError, YancResult};
use crate::flowspec::FlowSpec;
use crate::yancfs::YancFs;

/// What transformation a view performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewKind {
    /// A header-space slice over a subset of switches; topology unchanged.
    Slice,
    /// Member switches presented as a single big virtual switch.
    BigSwitch,
}

impl ViewKind {
    fn as_str(self) -> &'static str {
        match self {
            ViewKind::Slice => "slice",
            ViewKind::BigSwitch => "big-switch",
        }
    }

    fn parse(s: &str) -> Option<ViewKind> {
        match s.trim() {
            "slice" => Some(ViewKind::Slice),
            "big-switch" => Some(ViewKind::BigSwitch),
            _ => None,
        }
    }
}

/// A view's declarative configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewConfig {
    /// Transformation kind.
    pub kind: ViewKind,
    /// Member physical switch names.
    pub switches: Vec<String>,
    /// Header-space predicate (e.g. `tp_dst=22` slices ssh traffic).
    pub filter: FlowMatch,
}

impl YancFs {
    /// `mkdir views/<name>` — the semantic hook auto-creates
    /// `hosts/ switches/ views/` inside it.
    pub fn create_view(&self, name: &str) -> YancResult<()> {
        Ok(self.filesystem().mkdir(
            self.view_dir(name).as_str(),
            Mode::DIR_DEFAULT,
            self.creds(),
        )?)
    }

    /// Write a view's `config/` directory.
    pub fn write_view_config(&self, name: &str, cfg: &ViewConfig) -> YancResult<()> {
        let dir = self.view_dir(name).join("config");
        let fs = self.filesystem();
        fs.mkdir_all(dir.as_str(), Mode::DIR_DEFAULT, self.creds())?;
        fs.write_file(
            dir.join("kind").as_str(),
            cfg.kind.as_str().as_bytes(),
            self.creds(),
        )?;
        fs.write_file(
            dir.join("switches").as_str(),
            cfg.switches.join("\n").as_bytes(),
            self.creds(),
        )?;
        // The filter reuses the flow match file notation.
        let spec = FlowSpec {
            m: cfg.filter,
            ..Default::default()
        };
        for (file, value) in spec.to_files() {
            if file.starts_with("match.") {
                fs.write_file(dir.join(&file).as_str(), value.as_bytes(), self.creds())?;
            }
        }
        Ok(())
    }

    /// Read a view's `config/` directory.
    pub fn read_view_config(&self, name: &str) -> YancResult<ViewConfig> {
        let dir = self.view_dir(name).join("config");
        let fs = self.filesystem();
        let kind_s = fs.read_to_string(dir.join("kind").as_str(), self.creds())?;
        let kind = ViewKind::parse(&kind_s)
            .ok_or_else(|| YancError::parse("kind", format!("unknown view kind {kind_s:?}")))?;
        let switches: Vec<String> = fs
            .read_to_string(dir.join("switches").as_str(), self.creds())?
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect();
        let mut match_files: Vec<(String, String)> = Vec::new();
        for e in fs.readdir(dir.as_str(), self.creds())? {
            if e.name.starts_with("match.") {
                let v = fs.read_to_string(dir.join(&e.name).as_str(), self.creds())?;
                match_files.push((e.name, v));
            }
        }
        match_files.push(("version".to_string(), "0".to_string()));
        let spec = FlowSpec::from_files(match_files.iter().map(|(k, v)| (k.as_str(), v.as_str())))?;
        Ok(ViewConfig {
            kind,
            switches,
            filter: spec.m,
        })
    }

    /// List views at the top level.
    pub fn list_views(&self) -> YancResult<Vec<String>> {
        Ok(self
            .filesystem()
            .readdir(
                self.root().join(crate::schema::VIEWS).as_str(),
                self.creds(),
            )?
            .into_iter()
            .map(|e| e.name)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use yanc_vfs::Filesystem;

    fn yfs() -> YancFs {
        YancFs::init(Arc::new(Filesystem::new()), "/net").unwrap()
    }

    #[test]
    fn view_mkdir_autopopulates_fig2_shape() {
        let y = yfs();
        y.create_view("management-net").unwrap();
        let fs = y.filesystem();
        for d in ["hosts", "switches", "views"] {
            assert!(fs.exists(&format!("/net/views/management-net/{d}"), y.creds()));
        }
        assert_eq!(y.list_views().unwrap(), vec!["management-net"]);
    }

    #[test]
    fn config_roundtrip() {
        let y = yfs();
        y.create_view("ssh-slice").unwrap();
        let cfg = ViewConfig {
            kind: ViewKind::Slice,
            switches: vec!["sw1".into(), "sw2".into()],
            filter: FlowMatch {
                dl_type: Some(0x0800),
                nw_proto: Some(6),
                tp_dst: Some(22),
                ..Default::default()
            },
        };
        y.write_view_config("ssh-slice", &cfg).unwrap();
        assert_eq!(y.read_view_config("ssh-slice").unwrap(), cfg);
    }

    #[test]
    fn big_switch_kind() {
        let y = yfs();
        y.create_view("one-big-switch").unwrap();
        let cfg = ViewConfig {
            kind: ViewKind::BigSwitch,
            switches: vec!["sw1".into(), "sw2".into(), "sw3".into()],
            filter: FlowMatch::any(),
        };
        y.write_view_config("one-big-switch", &cfg).unwrap();
        let got = y.read_view_config("one-big-switch").unwrap();
        assert_eq!(got.kind, ViewKind::BigSwitch);
        assert_eq!(got.filter, FlowMatch::any());
    }

    #[test]
    fn bad_kind_rejected() {
        let y = yfs();
        y.create_view("v").unwrap();
        let fs = y.filesystem();
        fs.mkdir_all(
            "/net/views/v/config",
            yanc_vfs::Mode::DIR_DEFAULT,
            y.creds(),
        )
        .unwrap();
        fs.write_file("/net/views/v/config/kind", b"nonsense", y.creds())
            .unwrap();
        fs.write_file("/net/views/v/config/switches", b"", y.creds())
            .unwrap();
        assert!(y.read_view_config("v").is_err());
    }
}
