//! The common interface every yanc application presents to the supervisor.
//!
//! The paper's applications are *ordinary processes*: the init system does
//! not know (or care) whether a process is a learning switch or a DHCP
//! server — it starts it, schedules it, signals it and restarts it through
//! one uniform surface. [`YancApp`] is that surface for in-process apps:
//! the supervisor in `yanc-init` drives `run_once` from its scheduler tick,
//! translates `SIGHUP` into [`YancApp::reload`] and `SIGTERM` into
//! [`YancApp::shutdown`], and treats an `Err` from `run_once` as an abnormal
//! exit subject to the process's restart policy.

use crate::error::YancResult;

/// A supervisable yanc application.
///
/// Implementations should make `run_once` a single bounded slice of the
/// app's event loop (drain pending events, react, return) so the supervisor
/// can interleave many apps deterministically on one scheduler.
pub trait YancApp {
    /// Stable human-readable name (shows up in `ps` and `.proc/apps`).
    fn name(&self) -> &str;

    /// Run one slice of the event loop. `Ok(true)` means the slice did
    /// work (the scheduler should keep pumping), `Ok(false)` means idle.
    /// `Err` is an abnormal exit: the supervisor applies the restart policy.
    fn run_once(&mut self) -> YancResult<bool>;

    /// Whether the app has work pending. A poll-aware supervisor only
    /// schedules a process when this is `true`, so idle apps consume zero
    /// scheduler ticks — the `yanc_poll` analogue of sleeping in `epoll_wait`
    /// instead of spinning. Implementations back this with
    /// [`yanc_vfs::poll::PollSet::is_ready`] (free: no charged syscall).
    ///
    /// Default `true`: a legacy app that never reports readiness keeps its
    /// old busy-polled schedule.
    fn ready(&self) -> bool {
        true
    }

    /// Re-read configuration (`SIGHUP`). Default: nothing to reload.
    fn reload(&mut self) -> YancResult<()> {
        Ok(())
    }

    /// Graceful stop (`SIGTERM`): flush state, drop subscriptions. The
    /// instance is discarded afterwards. Default: nothing to flush.
    fn shutdown(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop(u32);

    impl YancApp for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn run_once(&mut self) -> YancResult<bool> {
            self.0 += 1;
            Ok(self.0 < 3)
        }
    }

    #[test]
    fn trait_object_is_drivable() {
        let mut app: Box<dyn YancApp> = Box::new(Nop(0));
        assert_eq!(app.name(), "nop");
        assert!(app.run_once().unwrap());
        assert!(app.run_once().unwrap());
        assert!(!app.run_once().unwrap());
        app.reload().unwrap();
        app.shutdown();
    }
}
