//! The `YancFs` façade: typed operations over the `/net` file tree.
//!
//! Everything here goes through ordinary file I/O on the underlying
//! [`Filesystem`] — that is the point of yanc. Applications (and you) can
//! bypass this façade entirely and use `echo`, `mkdir` and `ls` (see the
//! yanc-coreutils crate); the façade just packages the common sequences:
//! create a switch skeleton, commit a flow (write fields, bump `version`),
//! publish a packet-in into every subscriber's buffer, wire up a `peer`
//! symlink.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::Receiver;

use yanc_vfs::{
    Credentials, DcacheStats, Errno, Event, EventKind, EventMask, Fd, Filesystem, Mode, OpenFlags,
    VPath, WatchGuard,
};

use crate::error::{YancError, YancResult};
use crate::flowspec::FlowSpec;
use crate::hook::YancHook;
use crate::schema::{self, EVENTS, HOSTS, SWITCHES, VIEWS};

/// A packet-in record as materialized in an app's event buffer
/// (paper §3.5): one directory per message, one file per attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketInRecord {
    /// Which switch sent it.
    pub switch: String,
    /// Ingress port.
    pub in_port: u16,
    /// Switch buffer id, if buffered.
    pub buffer_id: Option<u32>,
    /// `no_match` or `action`.
    pub reason: String,
    /// Frame bytes.
    pub data: Bytes,
}

/// A subscription to packet-in events: a private buffer directory plus a
/// notify watch on it. The watch is a [`WatchGuard`], so dropping the
/// subscription unwatches automatically.
pub struct EventSubscription {
    /// The app name (buffer directory name).
    pub app: String,
    watch: WatchGuard,
    yfs: YancFs,
}

impl EventSubscription {
    /// Block-free poll: collect any packet-ins that have arrived, consuming
    /// them from the buffer.
    pub fn poll(&self) -> Vec<PacketInRecord> {
        let mut names: Vec<String> = self
            .watch
            .receiver()
            .try_iter()
            .filter(|e| e.kind == EventKind::Create)
            .filter_map(|e| e.name)
            .collect();
        names.sort();
        names.dedup();
        let mut out = Vec::new();
        for name in names {
            if let Ok(rec) = self.yfs.read_packet_in(&self.app, &name) {
                out.push(rec);
                let _ = self.yfs.consume_packet_in(&self.app, &name);
            }
        }
        out
    }

    /// Drain every entry currently in the buffer (even ones whose notify
    /// event was consumed elsewhere).
    pub fn drain_all(&self) -> Vec<PacketInRecord> {
        while self.watch.receiver().try_recv().is_ok() {}
        let mut out = Vec::new();
        for name in self.yfs.list_packet_ins(&self.app).unwrap_or_default() {
            if let Ok(rec) = self.yfs.read_packet_in(&self.app, &name) {
                out.push(rec);
                let _ = self.yfs.consume_packet_in(&self.app, &name);
            }
        }
        out
    }

    /// Whether events are queued (level-triggered; free to check).
    pub fn ready(&self) -> bool {
        self.watch.ready()
    }

    /// The watch channel — clone it into a
    /// [`PollSet`](yanc_vfs::poll::PollSet) to sleep on this subscription
    /// alongside other sources.
    pub fn receiver(&self) -> &Receiver<Event> {
        self.watch.receiver()
    }
}

/// One port's worth of materialization input for
/// [`YancFs::create_ports_batch`]: what a features reply or port
/// description carries, minus the wire framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortSpec {
    /// OpenFlow port number (`ports/p<n>`).
    pub port_no: u16,
    /// MAC address, already rendered (`aa:bb:...`).
    pub hw_addr: String,
    /// Current speed in kbps.
    pub curr_speed: u32,
    /// Max speed in kbps.
    pub max_speed: u32,
    /// Physical link state (`config.port_status`).
    pub link_up: bool,
    /// Administratively disabled on the switch side.
    pub config_down: bool,
}

/// Typed access to a yanc tree rooted at some mount point (usually `/net`).
#[derive(Clone)]
pub struct YancFs {
    fs: Arc<Filesystem>,
    root: VPath,
    creds: Credentials,
    event_seq: Arc<AtomicU64>,
}

impl YancFs {
    /// Wrap an existing filesystem without initializing anything.
    pub fn new(fs: Arc<Filesystem>, root: &str) -> Self {
        YancFs {
            fs,
            root: VPath::new(root),
            creds: Credentials::root(),
            event_seq: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Create `/net` (with `switches/ hosts/ views/ events/`), register the
    /// semantic hook, and return the façade. Idempotent.
    pub fn init(fs: Arc<Filesystem>, root: &str) -> YancResult<Self> {
        let y = YancFs::new(fs, root);
        y.fs.mkdir_all(y.root.as_str(), Mode::DIR_DEFAULT, &y.creds)?;
        for d in [SWITCHES, HOSTS, VIEWS, EVENTS] {
            y.fs.mkdir_all(y.root.join(d).as_str(), Mode::DIR_DEFAULT, &y.creds)?;
        }
        y.fs.add_hook(Arc::new(YancHook::new(y.root.as_str())));
        Ok(y)
    }

    /// Mount the read-only introspection tree at `<root>/.proc` and scope
    /// the vfs's syscall accounting to this mount's subtree — controller
    /// state *about* the controller is just more files (paper §3.1 taken to
    /// its conclusion, Linux-`/proc`-style). Idempotent.
    pub fn enable_introspection(&self) -> YancResult<()> {
        let scope = self.root.as_str().trim_matches('/').replace('/', "_");
        let scope = if scope.is_empty() {
            "root".into()
        } else {
            scope
        };
        self.fs.add_metrics_scope(&scope, self.root.as_str());
        self.fs.mount_proc(self.proc_dir().as_str())?;
        Ok(())
    }

    /// `<root>/.proc` — the introspection mount point.
    pub fn proc_dir(&self) -> VPath {
        self.root.join(".proc")
    }

    /// The same tree accessed as different credentials (for permission
    /// experiments: each yanc app is its own user).
    pub fn with_creds(&self, creds: Credentials) -> YancFs {
        YancFs {
            fs: self.fs.clone(),
            root: self.root.clone(),
            creds,
            event_seq: self.event_seq.clone(),
        }
    }

    /// The underlying filesystem.
    pub fn filesystem(&self) -> &Arc<Filesystem> {
        &self.fs
    }

    /// Number of lock shards the underlying filesystem spreads its inode
    /// and handle tables over. `1` means the deterministic single-lock
    /// configuration; the default is concurrent. Also readable as the
    /// `.proc/vfs/shards` file once introspection is enabled.
    pub fn shard_count(&self) -> usize {
        self.fs.shard_count()
    }

    /// Dentry-cache counters of the underlying filesystem — the same
    /// numbers the `.proc/vfs/dcache` files expose, handy for control
    /// apps that want to watch their own path-resolution locality.
    pub fn dcache_stats(&self) -> DcacheStats {
        self.fs.dcache_stats()
    }

    /// The mount root.
    pub fn root(&self) -> &VPath {
        &self.root
    }

    /// The credentials operations run as.
    pub fn creds(&self) -> &Credentials {
        &self.creds
    }

    // ------------------------------------------------------------------
    // Paths
    // ------------------------------------------------------------------

    /// `<root>/switches`.
    pub fn switches_dir(&self) -> VPath {
        self.root.join(SWITCHES)
    }

    /// `<root>/switches/<sw>`.
    pub fn switch_dir(&self, sw: &str) -> VPath {
        self.switches_dir().join(sw)
    }

    /// `<root>/switches/<sw>/flows/<flow>`.
    pub fn flow_dir(&self, sw: &str, flow: &str) -> VPath {
        self.switch_dir(sw).join("flows").join(flow)
    }

    /// `<root>/switches/<sw>/ports/p<no>`.
    pub fn port_dir(&self, sw: &str, port: u16) -> VPath {
        self.switch_dir(sw).join("ports").join(&format!("p{port}"))
    }

    /// `<root>/events`.
    pub fn events_dir(&self) -> VPath {
        self.root.join(EVENTS)
    }

    /// `<root>/views/<view>` (single level).
    pub fn view_dir(&self, view: &str) -> VPath {
        self.root.join(VIEWS).join(view)
    }

    // ------------------------------------------------------------------
    // Switches & ports
    // ------------------------------------------------------------------

    /// Create a switch object with its metadata files (normally done by the
    /// driver after the features handshake).
    pub fn create_switch(
        &self,
        name: &str,
        dpid: u64,
        capabilities: u32,
        actions: u32,
        num_buffers: u32,
        num_tables: u8,
    ) -> YancResult<()> {
        let dir = self.switch_dir(name);
        self.fs
            .mkdir_all(dir.as_str(), Mode::DIR_DEFAULT, &self.creds)?;
        // The hook creates skeleton dirs on mkdir; fill the files.
        for d in schema::SWITCH_DIRS {
            self.fs
                .mkdir_all(dir.join(d).as_str(), Mode::DIR_DEFAULT, &self.creds)?;
        }
        let files: [(&str, String); 5] = [
            ("id", format!("0x{dpid:016x}")),
            ("capabilities", format!("0x{capabilities:x}")),
            ("actions", format!("0x{actions:x}")),
            ("num_buffers", num_buffers.to_string()),
            ("num_tables", num_tables.to_string()),
        ];
        for (f, v) in files {
            self.fs
                .write_file(dir.join(f).as_str(), v.as_bytes(), &self.creds)?;
        }
        Ok(())
    }

    /// Remove a switch (recursive, per the paper).
    pub fn remove_switch(&self, name: &str) -> YancResult<()> {
        Ok(self.fs.rmdir(self.switch_dir(name).as_str(), &self.creds)?)
    }

    /// List switch names.
    pub fn list_switches(&self) -> YancResult<Vec<String>> {
        Ok(self
            .fs
            .readdir(self.switches_dir().as_str(), &self.creds)?
            .into_iter()
            .map(|e| e.name)
            .collect())
    }

    /// Read a switch's datapath id from its `id` file.
    pub fn switch_dpid(&self, name: &str) -> YancResult<u64> {
        let s = self
            .fs
            .read_to_string(self.switch_dir(name).join("id").as_str(), &self.creds)?;
        let t = s.trim().trim_start_matches("0x");
        u64::from_str_radix(t, 16).map_err(|_| YancError::parse("id", s))
    }

    /// Create a port directory with its files.
    pub fn create_port(
        &self,
        sw: &str,
        port: u16,
        hw_addr: &str,
        curr_speed: u32,
        max_speed: u32,
    ) -> YancResult<()> {
        let dir = self.port_dir(sw, port);
        self.fs
            .mkdir_all(dir.as_str(), Mode::DIR_DEFAULT, &self.creds)?;
        self.fs.mkdir_all(
            dir.join("counters").as_str(),
            Mode::DIR_DEFAULT,
            &self.creds,
        )?;
        self.fs.write_file(
            dir.join("hw_addr").as_str(),
            hw_addr.as_bytes(),
            &self.creds,
        )?;
        self.fs.write_file(
            dir.join("curr_speed").as_str(),
            curr_speed.to_string().as_bytes(),
            &self.creds,
        )?;
        self.fs.write_file(
            dir.join("max_speed").as_str(),
            max_speed.to_string().as_bytes(),
            &self.creds,
        )?;
        // Config files are initialized only if absent: re-materializing a
        // port (e.g. on a PortStatus) must not clobber admin state.
        for (f, v) in [("config.port_down", "0"), ("config.port_status", "up")] {
            if !self.fs.exists(dir.join(f).as_str(), &self.creds) {
                self.fs
                    .write_file(dir.join(f).as_str(), v.as_bytes(), &self.creds)?;
            }
        }
        Ok(())
    }

    /// [`Self::create_switch`] with a fixed syscall budget, independent of
    /// how many metadata files the schema carries: `open_dir` on
    /// `switches/`, one `mkdirat` (the schema hook builds `counters/`,
    /// `flows/` and `ports/`), one `write_batch_at` landing all six files
    /// (including `protocol`), `close` — **4 charged syscalls per switch**
    /// where the path-addressed sequence pays ~10. Re-running on an
    /// existing switch (driver swap, §4.1 re-handshake) refreshes the
    /// files in place.
    #[allow(clippy::too_many_arguments)] // mirrors the features reply, field for field
    pub fn create_switch_batch(
        &self,
        name: &str,
        dpid: u64,
        capabilities: u32,
        actions: u32,
        num_buffers: u32,
        num_tables: u8,
        protocol: &str,
    ) -> YancResult<()> {
        let switches = self
            .fs
            .open_dir(self.switches_dir().as_str(), &self.creds)?;
        match self
            .fs
            .mkdirat(switches, name, Mode::DIR_DEFAULT, &self.creds)
        {
            Ok(()) => {}
            Err(e) if e.errno == Errno::EEXIST => {}
            Err(e) => {
                let _ = self.fs.close(switches, &self.creds);
                return Err(e.into());
            }
        }
        let files: [(String, String); 6] = [
            (format!("{name}/id"), format!("0x{dpid:016x}")),
            (
                format!("{name}/capabilities"),
                format!("0x{capabilities:x}"),
            ),
            (format!("{name}/actions"), format!("0x{actions:x}")),
            (format!("{name}/num_buffers"), num_buffers.to_string()),
            (format!("{name}/num_tables"), num_tables.to_string()),
            (format!("{name}/protocol"), protocol.to_string()),
        ];
        let borrowed: Vec<(&str, &[u8])> = files
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_bytes()))
            .collect();
        let res = self.fs.write_batch_at(switches, &borrowed, &self.creds);
        let _ = self.fs.close(switches, &self.creds);
        res?;
        Ok(())
    }

    /// Materialize every port of a switch in one descriptor-relative
    /// sweep: `open_dir` on the switch, one `mkdirat` per port (the hook
    /// seeds each port's `counters/`), one `write_batch_at` for all port
    /// files, `close` — **ports + 3 charged syscalls** for the whole set,
    /// where [`Self::create_port`] pays ~7 per port. Admin state
    /// (`config.port_down`) is seeded on fresh ports and preserved on
    /// re-materialization unless the switch reports the port disabled —
    /// the same contract as `create_port` + `set_port_down`.
    pub fn create_ports_batch(&self, sw: &str, ports: &[PortSpec]) -> YancResult<()> {
        if ports.is_empty() {
            return Ok(());
        }
        let dir = self
            .fs
            .open_dir(self.switch_dir(sw).as_str(), &self.creds)?;
        let mut entries: Vec<(String, String)> = Vec::with_capacity(ports.len() * 5);
        for p in ports {
            let rel = format!("ports/p{}", p.port_no);
            let fresh = match self.fs.mkdirat(dir, &rel, Mode::DIR_DEFAULT, &self.creds) {
                Ok(()) => true,
                Err(e) if e.errno == Errno::EEXIST => false,
                Err(e) => {
                    let _ = self.fs.close(dir, &self.creds);
                    return Err(e.into());
                }
            };
            entries.push((format!("{rel}/hw_addr"), p.hw_addr.clone()));
            entries.push((format!("{rel}/curr_speed"), p.curr_speed.to_string()));
            entries.push((format!("{rel}/max_speed"), p.max_speed.to_string()));
            entries.push((
                format!("{rel}/config.port_status"),
                if p.link_up { "up" } else { "down" }.to_string(),
            ));
            if fresh || p.config_down {
                entries.push((
                    format!("{rel}/config.port_down"),
                    if p.config_down { "1" } else { "0" }.to_string(),
                ));
            }
        }
        let borrowed: Vec<(&str, &[u8])> = entries
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_bytes()))
            .collect();
        let res = self.fs.write_batch_at(dir, &borrowed, &self.creds);
        let _ = self.fs.close(dir, &self.creds);
        res?;
        Ok(())
    }

    /// List a switch's port numbers.
    pub fn list_ports(&self, sw: &str) -> YancResult<Vec<u16>> {
        let mut out = Vec::new();
        for e in self
            .fs
            .readdir(self.switch_dir(sw).join("ports").as_str(), &self.creds)?
        {
            if let Some(n) = e.name.strip_prefix('p') {
                if let Ok(p) = n.parse() {
                    out.push(p);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// `echo 1 > config.port_down` — the paper's §3.1 example.
    pub fn set_port_down(&self, sw: &str, port: u16, down: bool) -> YancResult<()> {
        let p = self.port_dir(sw, port).join("config.port_down");
        Ok(self
            .fs
            .write_file(p.as_str(), if down { b"1" } else { b"0" }, &self.creds)?)
    }

    /// Whether a port is administratively down.
    pub fn port_down(&self, sw: &str, port: u16) -> YancResult<bool> {
        let p = self.port_dir(sw, port).join("config.port_down");
        Ok(self.fs.read_to_string(p.as_str(), &self.creds)?.trim() == "1")
    }

    /// Update the link-status file (`config.port_status`): `up`/`down`.
    pub fn set_port_status(&self, sw: &str, port: u16, up: bool) -> YancResult<()> {
        let p = self.port_dir(sw, port).join("config.port_status");
        Ok(self
            .fs
            .write_file(p.as_str(), if up { b"up" } else { b"down" }, &self.creds)?)
    }

    // ------------------------------------------------------------------
    // Topology (peer symlinks, paper §3.3 / §4.3)
    // ------------------------------------------------------------------

    /// Point `sw:port`'s `peer` symlink at `peer_sw:peer_port`.
    pub fn set_peer(&self, sw: &str, port: u16, peer_sw: &str, peer_port: u16) -> YancResult<()> {
        let link = self.port_dir(sw, port).join("peer");
        if self.fs.lstat(link.as_str(), &self.creds).is_ok() {
            self.fs.unlink(link.as_str(), &self.creds)?;
        }
        let target = self.port_dir(peer_sw, peer_port);
        Ok(self
            .fs
            .symlink(target.as_str(), link.as_str(), &self.creds)?)
    }

    /// Remove a `peer` symlink if present.
    pub fn clear_peer(&self, sw: &str, port: u16) -> YancResult<()> {
        let link = self.port_dir(sw, port).join("peer");
        match self.fs.unlink(link.as_str(), &self.creds) {
            Ok(()) => Ok(()),
            Err(e) if e.errno == yanc_vfs::Errno::ENOENT => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Read `sw:port`'s peer, if linked: `(switch, port)`.
    pub fn peer(&self, sw: &str, port: u16) -> YancResult<Option<(String, u16)>> {
        let link = self.port_dir(sw, port).join("peer");
        let target = match self.fs.readlink(link.as_str(), &self.creds) {
            Ok(t) => t,
            Err(e) if e.errno == yanc_vfs::Errno::ENOENT => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let vp = VPath::new(&target);
        let comps: Vec<&str> = vp.components().collect();
        // …/switches/<sw>/ports/p<no>
        if comps.len() >= 4 && comps[comps.len() - 2] == "ports" {
            let peer_sw = comps[comps.len() - 3].to_string();
            if let Some(pn) = comps[comps.len() - 1].strip_prefix('p') {
                if let Ok(p) = pn.parse() {
                    return Ok(Some((peer_sw, p)));
                }
            }
        }
        Err(YancError::schema(format!("malformed peer target {target}")))
    }

    /// Enumerate all links: `(sw, port, peer_sw, peer_port)` with each link
    /// reported from both ends.
    pub fn topology(&self) -> YancResult<Vec<(String, u16, String, u16)>> {
        let mut out = Vec::new();
        for sw in self.list_switches()? {
            for port in self.list_ports(&sw)? {
                if let Some((psw, pport)) = self.peer(&sw, port)? {
                    out.push((sw.clone(), port, psw, pport));
                }
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Flows (paper §3.4)
    // ------------------------------------------------------------------

    /// Write (or rewrite) a flow and commit it by bumping `version` last.
    /// Drivers watching the flow react only to the version bump, making the
    /// multi-file update atomic from their perspective.
    pub fn write_flow(&self, sw: &str, name: &str, spec: &FlowSpec) -> YancResult<u64> {
        let dir = self.flow_dir(sw, name);
        if !self.fs.exists(dir.as_str(), &self.creds) {
            // A *new* flow consumes one slot of the caller's flow quota
            // (EDQUOT past it); rewrites of an existing flow are free.
            if self.creds.uid.0 != 0 {
                self.fs.rctl().charge_flow(self.creds.uid.0, dir.as_str())?;
            }
            if let Err(e) = self.fs.mkdir(dir.as_str(), Mode::DIR_DEFAULT, &self.creds) {
                if self.creds.uid.0 != 0 {
                    self.fs.rctl().release_flow(self.creds.uid.0);
                }
                return Err(e.into());
            }
        }
        // Current committed version governs the new one.
        let cur = self.flow_version(sw, name).unwrap_or(0);
        let next = cur + 1;

        // Remove stale field files not present in the new spec.
        let fresh = spec.to_files();
        let keep: Vec<&str> = fresh.iter().map(|(k, _)| k.as_str()).collect();
        for e in self.fs.readdir(dir.as_str(), &self.creds)? {
            if e.name == "version" || e.name == "counters" {
                continue;
            }
            if !keep.contains(&e.name.as_str()) {
                self.fs.unlink(dir.join(&e.name).as_str(), &self.creds)?;
            }
        }
        for (file, value) in &fresh {
            if file == "version" {
                continue;
            }
            self.fs
                .write_file(dir.join(file).as_str(), value.as_bytes(), &self.creds)?;
        }
        // Commit.
        self.fs.write_file(
            dir.join("version").as_str(),
            next.to_string().as_bytes(),
            &self.creds,
        )?;
        Ok(next)
    }

    /// Read a flow directory into a [`FlowSpec`].
    pub fn read_flow(&self, sw: &str, name: &str) -> YancResult<FlowSpec> {
        let dir = self.flow_dir(sw, name);
        let mut files: Vec<(String, String)> = Vec::new();
        for e in self.fs.readdir(dir.as_str(), &self.creds)? {
            if e.file_type == yanc_vfs::FileType::Directory {
                continue; // counters/
            }
            let content = self
                .fs
                .read_to_string(dir.join(&e.name).as_str(), &self.creds)?;
            files.push((e.name, content));
        }
        FlowSpec::from_files(files.iter().map(|(k, v)| (k.as_str(), v.as_str())))
    }

    /// The committed version of a flow.
    pub fn flow_version(&self, sw: &str, name: &str) -> YancResult<u64> {
        let p = self.flow_dir(sw, name).join("version");
        let s = self.fs.read_to_string(p.as_str(), &self.creds)?;
        s.trim().parse().map_err(|_| YancError::parse("version", s))
    }

    /// Delete a flow (recursive rmdir; the driver sees the Delete event).
    pub fn delete_flow(&self, sw: &str, name: &str) -> YancResult<()> {
        self.fs
            .rmdir(self.flow_dir(sw, name).as_str(), &self.creds)?;
        if self.creds.uid.0 != 0 {
            self.fs.rctl().release_flow(self.creds.uid.0);
        }
        Ok(())
    }

    /// List flow names on a switch.
    pub fn list_flows(&self, sw: &str) -> YancResult<Vec<String>> {
        Ok(self
            .fs
            .readdir(self.switch_dir(sw).join("flows").as_str(), &self.creds)?
            .into_iter()
            .map(|e| e.name)
            .collect())
    }

    // ------------------------------------------------------------------
    // Flows, descriptor-relative (the E21 fast path)
    // ------------------------------------------------------------------

    /// Open a descriptor on `<sw>/flows`, paying the prefix resolution
    /// once. Subsequent [`Self::write_flow_at`] calls are O(1) in path
    /// depth: `mkdirat` + one batched write instead of ~3 + #fields
    /// path-resolved syscalls per flow.
    pub fn open_flows_dir(&self, sw: &str) -> YancResult<Fd> {
        Ok(self
            .fs
            .open_dir(self.switch_dir(sw).join("flows").as_str(), &self.creds)?)
    }

    /// [`Self::write_flow`] through a flows-directory descriptor: `mkdirat`
    /// plus **one** `write_batch_at` submission that writes every field and
    /// commits `version` last — the driver sees the identical
    /// Create/CloseWrite sequence as the path-addressed slow path.
    ///
    /// One caveat, stated rather than hidden: a *rewrite* that removes
    /// match/action fields leaves the stale field files in place (there is
    /// no `unlinkat` yet); use [`Self::write_flow`] when a rewrite changes
    /// the flow's shape. Fresh installs — the install-storm case the paper's
    /// §8.1 worries about — are exact.
    pub fn write_flow_at(&self, flows: Fd, name: &str, spec: &FlowSpec) -> YancResult<u64> {
        // Quota first, exactly as the slow path: a *new* flow costs a slot.
        if self.creds.uid.0 != 0 {
            self.fs.rctl().charge_flow(self.creds.uid.0, name)?;
        }
        let fresh_dir = match self.fs.mkdirat(flows, name, Mode::DIR_DEFAULT, &self.creds) {
            Ok(()) => true,
            Err(e) if e.errno == Errno::EEXIST => {
                if self.creds.uid.0 != 0 {
                    self.fs.rctl().release_flow(self.creds.uid.0); // rewrites are free
                }
                false
            }
            Err(e) => {
                if self.creds.uid.0 != 0 {
                    self.fs.rctl().release_flow(self.creds.uid.0);
                }
                return Err(e.into());
            }
        };
        // The YancHook seeds `version` = 0 on mkdir; a pre-existing flow's
        // committed version is read through the descriptor (openat + read).
        let next = if fresh_dir {
            1
        } else {
            let vfd = self.fs.openat(
                flows,
                &format!("{name}/version"),
                OpenFlags::read_only(),
                &self.creds,
            )?;
            let bytes = self.fs.read(vfd, 32)?;
            self.fs.close(vfd, &self.creds)?;
            let s = String::from_utf8_lossy(&bytes);
            let cur: u64 = s
                .trim()
                .parse()
                .map_err(|_| YancError::parse("version", s.to_string()))?;
            cur + 1
        };
        let fields = spec.to_files();
        let mut entries: Vec<(String, Vec<u8>)> = fields
            .iter()
            .filter(|(k, _)| k.as_str() != "version")
            .map(|(k, v)| (format!("{name}/{k}"), v.as_bytes().to_vec()))
            .collect();
        // `version` last: its CloseWrite is the commit the driver reacts to.
        entries.push((format!("{name}/version"), next.to_string().into_bytes()));
        let borrowed: Vec<(&str, &[u8])> = entries
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
            .collect();
        self.fs.write_batch_at(flows, &borrowed, &self.creds)?;
        Ok(next)
    }

    // ------------------------------------------------------------------
    // Counters
    // ------------------------------------------------------------------

    /// Write a counter file under an object's `counters/` directory.
    pub fn write_counter(&self, object_dir: &VPath, name: &str, value: u64) -> YancResult<()> {
        let p = object_dir.join("counters").join(name);
        Ok(self
            .fs
            .write_file(p.as_str(), value.to_string().as_bytes(), &self.creds)?)
    }

    /// Land many counter values under one object tree in a single charged
    /// write: `open_dir` + one [`yanc_vfs::Filesystem::write_batch_at`] +
    /// `close` — three syscalls total no matter how many counters a stats
    /// reply carries (compare [`Self::write_counter`]: one charged write
    /// *per counter*). Entry paths are relative to `base_dir` (e.g.
    /// `ports/p3/counters/rx_packets`); every intermediate directory must
    /// already exist, which `create_switch`/`create_port` and the flow
    /// mkdir hook guarantee for the driver's uses.
    pub fn write_counters_batch(
        &self,
        base_dir: &VPath,
        entries: &[(String, u64)],
    ) -> YancResult<usize> {
        if entries.is_empty() {
            return Ok(0);
        }
        let dir = self.fs.open_dir(base_dir.as_str(), &self.creds)?;
        let rendered: Vec<(&str, Vec<u8>)> = entries
            .iter()
            .map(|(p, v)| (p.as_str(), v.to_string().into_bytes()))
            .collect();
        let borrowed: Vec<(&str, &[u8])> =
            rendered.iter().map(|(p, b)| (*p, b.as_slice())).collect();
        let res = self.fs.write_batch_at(dir, &borrowed, &self.creds);
        let _ = self.fs.close(dir, &self.creds);
        Ok(res?)
    }

    /// Read a counter file (0 when absent).
    pub fn read_counter(&self, object_dir: &VPath, name: &str) -> u64 {
        let p = object_dir.join("counters").join(name);
        self.fs
            .read_to_string(p.as_str(), &self.creds)
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Packet-in event buffers (paper §3.5)
    // ------------------------------------------------------------------

    /// Subscribe: create `events/<app>/` and watch it.
    pub fn subscribe_events(&self, app: &str) -> YancResult<EventSubscription> {
        let dir = self.events_dir().join(app);
        self.fs
            .mkdir_all(dir.as_str(), Mode::DIR_DEFAULT, &self.creds)?;
        // Owner-tagged watch: if this subscriber's process is killed, the
        // supervisor's `Filesystem::reclaim(uid)` finds and removes it.
        let watch = self
            .fs
            .watch(dir.as_str())
            .mask(EventMask::CHILDREN)
            .as_creds(&self.creds)
            .register()?;
        Ok(EventSubscription {
            app: app.to_string(),
            watch,
            yfs: self.clone(),
        })
    }

    /// Publish a packet-in into *every* subscribed app's buffer
    /// ("our current design concurrently feeds packet-in messages to all
    /// applications interested in such events").
    pub fn publish_packet_in(&self, rec: &PacketInRecord) -> YancResult<usize> {
        let apps: Vec<String> = self
            .fs
            .readdir(self.events_dir().as_str(), &self.creds)?
            .into_iter()
            .map(|e| e.name)
            .collect();
        let seq = self.event_seq.fetch_add(1, Ordering::Relaxed);
        for app in &apps {
            let dir = self.events_dir().join(app).join(&format!("{seq:016}"));
            self.fs
                .mkdir_all(dir.as_str(), Mode::DIR_DEFAULT, &self.creds)?;
            self.fs.write_file(
                dir.join("switch").as_str(),
                rec.switch.as_bytes(),
                &self.creds,
            )?;
            self.fs.write_file(
                dir.join("in_port").as_str(),
                rec.in_port.to_string().as_bytes(),
                &self.creds,
            )?;
            self.fs.write_file(
                dir.join("reason").as_str(),
                rec.reason.as_bytes(),
                &self.creds,
            )?;
            if let Some(id) = rec.buffer_id {
                self.fs.write_file(
                    dir.join("buffer_id").as_str(),
                    id.to_string().as_bytes(),
                    &self.creds,
                )?;
            }
            self.fs.write_file(
                dir.join("data").as_str(),
                hex_encode(&rec.data).as_bytes(),
                &self.creds,
            )?;
        }
        Ok(apps.len())
    }

    /// List pending packet-in entry names for an app.
    pub fn list_packet_ins(&self, app: &str) -> YancResult<Vec<String>> {
        Ok(self
            .fs
            .readdir(self.events_dir().join(app).as_str(), &self.creds)?
            .into_iter()
            .map(|e| e.name)
            .collect())
    }

    /// Read one packet-in entry.
    pub fn read_packet_in(&self, app: &str, entry: &str) -> YancResult<PacketInRecord> {
        let dir = self.events_dir().join(app).join(entry);
        let read = |f: &str| self.fs.read_to_string(dir.join(f).as_str(), &self.creds);
        let switch = read("switch")?.trim().to_string();
        let in_port = read("in_port")?
            .trim()
            .parse()
            .map_err(|_| YancError::parse("in_port", "bad number"))?;
        let reason = read("reason")?.trim().to_string();
        let buffer_id = match read("buffer_id") {
            Ok(s) => Some(
                s.trim()
                    .parse()
                    .map_err(|_| YancError::parse("buffer_id", s.clone()))?,
            ),
            Err(_) => None,
        };
        let data =
            hex_decode(read("data")?.trim()).ok_or_else(|| YancError::parse("data", "bad hex"))?;
        Ok(PacketInRecord {
            switch,
            in_port,
            buffer_id,
            reason,
            data: Bytes::from(data),
        })
    }

    /// Remove a consumed packet-in entry.
    pub fn consume_packet_in(&self, app: &str, entry: &str) -> YancResult<()> {
        Ok(self.fs.rmdir(
            self.events_dir().join(app).join(entry).as_str(),
            &self.creds,
        )?)
    }
}

/// Lower-case hex encoding (no external dependency).
pub fn hex_encode(data: &[u8]) -> String {
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`hex_encode`].
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_openflow::{Action, FlowMatch};

    fn yfs() -> YancFs {
        YancFs::init(Arc::new(Filesystem::new()), "/net").unwrap()
    }

    #[test]
    fn init_creates_fig2_top_level() {
        let y = yfs();
        for d in ["switches", "hosts", "views", "events"] {
            assert!(y.filesystem().exists(&format!("/net/{d}"), y.creds()));
        }
    }

    #[test]
    fn switch_lifecycle() {
        let y = yfs();
        y.create_switch("sw1", 0xab, 0x7, 0xfff, 256, 1).unwrap();
        assert_eq!(y.list_switches().unwrap(), vec!["sw1"]);
        assert_eq!(y.switch_dpid("sw1").unwrap(), 0xab);
        y.create_port("sw1", 1, "02:00:00:00:00:01", 1_000_000, 10_000_000)
            .unwrap();
        y.create_port("sw1", 2, "02:00:00:00:00:02", 1_000_000, 10_000_000)
            .unwrap();
        assert_eq!(y.list_ports("sw1").unwrap(), vec![1, 2]);
        y.remove_switch("sw1").unwrap();
        assert!(y.list_switches().unwrap().is_empty());
    }

    #[test]
    fn port_down_via_file_write() {
        let y = yfs();
        y.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
        y.create_port("sw1", 2, "02:00:00:00:00:02", 0, 0).unwrap();
        assert!(!y.port_down("sw1", 2).unwrap());
        y.set_port_down("sw1", 2, true).unwrap();
        assert!(y.port_down("sw1", 2).unwrap());
        // Which is literally a file write, observable as such:
        let raw = y
            .filesystem()
            .read_to_string("/net/switches/sw1/ports/p2/config.port_down", y.creds())
            .unwrap();
        assert_eq!(raw, "1");
    }

    #[test]
    fn flow_commit_bumps_version_and_roundtrips() {
        let y = yfs();
        y.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
        let spec = FlowSpec {
            m: FlowMatch {
                tp_dst: Some(22),
                dl_type: Some(0x0800),
                nw_proto: Some(6),
                ..Default::default()
            },
            actions: vec![Action::out(2)],
            priority: 900,
            ..Default::default()
        };
        let v1 = y.write_flow("sw1", "ssh", &spec).unwrap();
        assert_eq!(v1, 1);
        let got = y.read_flow("sw1", "ssh").unwrap();
        assert_eq!(got.m, spec.m);
        assert_eq!(got.actions, spec.actions);
        assert_eq!(got.version, 1);
        // Rewriting bumps the version and removes stale fields.
        let spec2 = FlowSpec {
            m: FlowMatch {
                dl_type: Some(0x0806),
                ..Default::default()
            },
            actions: vec![Action::out(yanc_openflow::port_no::FLOOD)],
            ..Default::default()
        };
        let v2 = y.write_flow("sw1", "ssh", &spec2).unwrap();
        assert_eq!(v2, 2);
        let got2 = y.read_flow("sw1", "ssh").unwrap();
        assert_eq!(got2.m, spec2.m);
        assert_eq!(got2.m.tp_dst, None); // stale match.tp_dst removed
        y.delete_flow("sw1", "ssh").unwrap();
        assert!(y.list_flows("sw1").unwrap().is_empty());
    }

    #[test]
    fn peer_links_and_topology() {
        let y = yfs();
        for (sw, dp) in [("sw1", 1u64), ("sw2", 2)] {
            y.create_switch(sw, dp, 0, 0, 0, 1).unwrap();
            y.create_port(sw, 1, "02:00:00:00:00:01", 0, 0).unwrap();
            y.create_port(sw, 2, "02:00:00:00:00:02", 0, 0).unwrap();
        }
        y.set_peer("sw1", 2, "sw2", 1).unwrap();
        y.set_peer("sw2", 1, "sw1", 2).unwrap();
        assert_eq!(y.peer("sw1", 2).unwrap(), Some(("sw2".into(), 1)));
        assert_eq!(y.peer("sw1", 1).unwrap(), None);
        let topo = y.topology().unwrap();
        assert_eq!(topo.len(), 2);
        assert!(topo.contains(&("sw1".into(), 2, "sw2".into(), 1)));
        y.clear_peer("sw1", 2).unwrap();
        assert_eq!(y.peer("sw1", 2).unwrap(), None);
        y.clear_peer("sw1", 2).unwrap(); // idempotent
    }

    #[test]
    fn packet_in_fanout_to_all_subscribers() {
        let y = yfs();
        let sub_a = y.subscribe_events("router").unwrap();
        let sub_b = y.subscribe_events("monitor").unwrap();
        let rec = PacketInRecord {
            switch: "sw1".into(),
            in_port: 3,
            buffer_id: Some(77),
            reason: "no_match".into(),
            data: Bytes::from_static(b"\x01\x02\xff"),
        };
        let n = y.publish_packet_in(&rec).unwrap();
        assert_eq!(n, 2);
        let got_a = sub_a.poll();
        let got_b = sub_b.poll();
        assert_eq!(got_a, vec![rec.clone()]);
        assert_eq!(got_b, vec![rec]);
        // Consumed: buffers are empty again.
        assert!(y.list_packet_ins("router").unwrap().is_empty());
        assert!(sub_a.poll().is_empty());
    }

    #[test]
    fn drain_all_catches_missed_events() {
        let y = yfs();
        let sub = y.subscribe_events("app").unwrap();
        y.publish_packet_in(&PacketInRecord {
            switch: "sw".into(),
            in_port: 1,
            buffer_id: None,
            reason: "action".into(),
            data: Bytes::from_static(b"zz"),
        })
        .unwrap();
        // Even after notify events are thrown away, drain_all finds entries.
        let got = sub.drain_all();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].buffer_id, None);
    }

    #[test]
    fn counters_via_files() {
        let y = yfs();
        y.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
        let dir = y.switch_dir("sw1");
        assert_eq!(y.read_counter(&dir, "rx_packets"), 0);
        y.write_counter(&dir, "rx_packets", 42).unwrap();
        assert_eq!(y.read_counter(&dir, "rx_packets"), 42);
    }

    #[test]
    fn introspection_mount_tracks_the_tree() {
        let y = yfs();
        y.enable_introspection().unwrap();
        y.enable_introspection().unwrap(); // idempotent
        y.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
        let total: u64 = y
            .filesystem()
            .read_to_string("/net/.proc/vfs/syscalls/total", y.creds())
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(total, y.filesystem().counters().total());
        // The scoped counters saw the switch creation under /net.
        let scoped: u64 = y
            .filesystem()
            .read_to_string("/net/.proc/scopes/net/total", y.creds())
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(scoped > 0 && scoped <= total);
        // The mount is read-only even through the façade's credentials.
        let e = y
            .filesystem()
            .write_file("/net/.proc/vfs/syscalls/total", b"0", y.creds())
            .unwrap_err();
        assert_eq!(e.errno, yanc_vfs::Errno::EROFS);
    }

    #[test]
    fn shard_count_is_exposed_and_introspectable() {
        let y = yfs();
        y.enable_introspection().unwrap();
        assert!(y.shard_count() >= 1);
        let via_proc: usize = y
            .filesystem()
            .read_to_string("/net/.proc/vfs/shards", y.creds())
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(via_proc, y.shard_count());
        // A single-shard filesystem is the deterministic configuration.
        let solo = YancFs::init(Arc::new(Filesystem::builder().shards(1).build()), "/net").unwrap();
        assert_eq!(solo.shard_count(), 1);
    }

    #[test]
    fn hex_roundtrip() {
        let data = [0u8, 1, 0x7f, 0xff, 0xa5];
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
    }

    #[test]
    fn write_flow_at_matches_write_flow_exactly() {
        let y = yfs();
        y.create_switch("sw1", 1, 0, 0, 0, 1).unwrap();
        y.create_switch("sw2", 2, 0, 0, 0, 1).unwrap();
        let spec = FlowSpec {
            m: FlowMatch {
                dl_type: Some(0x0800),
                tp_dst: Some(80),
                ..Default::default()
            },
            actions: vec![Action::out(3)],
            priority: 1000,
            idle_timeout: 30,
            ..Default::default()
        };
        // Slow path on sw1, fd fast path on sw2.
        let v_slow = y.write_flow("sw1", "web", &spec).unwrap();
        let flows = y.open_flows_dir("sw2").unwrap();
        let v_fast = y.write_flow_at(flows, "web", &spec).unwrap();
        assert_eq!(v_slow, v_fast);
        assert_eq!(
            y.read_flow("sw1", "web").unwrap(),
            y.read_flow("sw2", "web").unwrap()
        );
        // The field files are byte-identical across both paths.
        let fs = y.filesystem();
        for e in fs
            .readdir("/net/switches/sw1/flows/web", y.creds())
            .unwrap()
        {
            if e.file_type != yanc_vfs::FileType::Regular {
                continue;
            }
            let a = fs
                .read_to_string(
                    &format!("/net/switches/sw1/flows/web/{}", e.name),
                    y.creds(),
                )
                .unwrap();
            let b = fs
                .read_to_string(
                    &format!("/net/switches/sw2/flows/web/{}", e.name),
                    y.creds(),
                )
                .unwrap();
            assert_eq!(a, b, "field {} differs between paths", e.name);
        }
        // A rewrite through the descriptor bumps the committed version.
        assert_eq!(y.write_flow_at(flows, "web", &spec).unwrap(), v_fast + 1);
        assert_eq!(y.flow_version("sw2", "web").unwrap(), v_fast + 1);
        fs.close(flows, y.creds()).unwrap();
    }

    #[test]
    fn event_subscription_reports_readiness() {
        let y = yfs();
        let sub = y.subscribe_events("l2").unwrap();
        assert!(!sub.ready());
        y.publish_packet_in(&PacketInRecord {
            switch: "sw1".into(),
            in_port: 1,
            buffer_id: None,
            reason: "no_match".into(),
            data: Bytes::from_static(b"\x01\x02"),
        })
        .unwrap();
        assert!(sub.ready());
        let got = sub.poll();
        assert_eq!(got.len(), 1);
        // Consuming the buffer entries notifies the watch again (the app
        // sees its own deletes); one more empty poll drains those.
        assert!(sub.poll().is_empty());
        assert!(!sub.ready());
    }
}
