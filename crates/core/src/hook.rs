//! The yanc semantic hook: what makes `/net` more than a plain directory
//! tree (paper §3.1–§3.4).
//!
//! * `mkdir views/<v>` auto-creates `hosts/ switches/ views/` inside it,
//! * `mkdir switches/<sw>` auto-creates the switch skeleton,
//! * `mkdir …/flows/<f>` auto-creates the `version` commit file,
//! * object directories (switches, flows, ports, views, event buffers)
//!   remove recursively on `rmdir`,
//! * a port's `peer` symlink may only point at another port,
//! * files inside a flow directory must be schema fields
//!   (`match.*`/`action.*`/scalars) — `match.bogus` is `EINVAL`.

use yanc_vfs::{Errno, Filesystem, Mode, SemanticHook, VPath, VfsError, VfsResult};

use crate::schema::{classify, valid_flow_file, SchemaPos, VIEW_CHILDREN};

/// The hook; register with [`Filesystem::add_hook`] (done by
/// [`crate::YancFs::init`]).
pub struct YancHook {
    root: VPath,
}

impl YancHook {
    /// A hook governing the schema rooted at `root` (usually `/net`).
    pub fn new(root: &str) -> Self {
        YancHook {
            root: VPath::new(root),
        }
    }
}

impl SemanticHook for YancHook {
    fn post_mkdir(&self, fs: &Filesystem, path: &VPath, creds: &yanc_vfs::Credentials) {
        match classify(&self.root, path) {
            SchemaPos::ViewDir { .. } => {
                for child in VIEW_CHILDREN {
                    let _ = fs.mkdir(path.join(child).as_str(), Mode::DIR_DEFAULT, creds);
                }
            }
            SchemaPos::SwitchDir { .. } => {
                for child in crate::schema::SWITCH_DIRS {
                    let _ = fs.mkdir(path.join(child).as_str(), Mode::DIR_DEFAULT, creds);
                }
            }
            SchemaPos::FlowDir { .. } => {
                let _ = fs.write_file(path.join("version").as_str(), b"0", creds);
                let _ = fs.mkdir(path.join("counters").as_str(), Mode::DIR_DEFAULT, creds);
            }
            SchemaPos::PortDir { .. } => {
                let _ = fs.mkdir(path.join("counters").as_str(), Mode::DIR_DEFAULT, creds);
            }
            _ => {}
        }
    }

    fn rmdir_recursive(&self, path: &VPath) -> bool {
        !matches!(classify(&self.root, path), SchemaPos::Other) || is_event_entry(&self.root, path)
    }

    fn validate_symlink(&self, fs: &Filesystem, path: &VPath, target: &str) -> VfsResult<()> {
        if path.file_name() != Some("peer") {
            return Ok(());
        }
        // Only ports have peers.
        if !matches!(
            classify(&self.root, &path.parent()),
            SchemaPos::PortDir { .. }
        ) {
            return Ok(());
        }
        // "It is currently an error to point this symbolic link at anything
        // other than a port."
        let abs = if target.starts_with('/') {
            VPath::new(target)
        } else {
            path.parent().join_path(target)
        };
        let canon = fs
            .canonicalize(abs.as_str(), &yanc_vfs::Credentials::root())
            .map_err(|_| VfsError::new(Errno::EINVAL, path.as_str()))?;
        match classify(&self.root, &canon) {
            SchemaPos::PortDir { .. } => Ok(()),
            _ => Err(VfsError::new(Errno::EINVAL, path.as_str())),
        }
    }

    fn validate_create(&self, _fs: &Filesystem, path: &VPath) -> VfsResult<()> {
        if let SchemaPos::FlowFile { file, .. } = classify(&self.root, path) {
            if !valid_flow_file(&file) {
                return Err(VfsError::new(Errno::EINVAL, path.as_str()));
            }
        }
        Ok(())
    }
}

/// `events/<app>/<entry>` — consumed packet-in records, removed as a unit.
fn is_event_entry(root: &VPath, path: &VPath) -> bool {
    match path.strip_prefix(root) {
        Some(rel) => {
            let comps: Vec<&str> = rel.split('/').filter(|c| !c.is_empty()).collect();
            comps.len() == 3 && comps[0] == crate::schema::EVENTS
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use yanc_vfs::Credentials;

    fn setup() -> (Arc<Filesystem>, Credentials) {
        let fs = Arc::new(Filesystem::new());
        let creds = Credentials::root();
        fs.mkdir_all("/net/switches", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.mkdir_all("/net/views", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.mkdir_all("/net/events", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.add_hook(Arc::new(YancHook::new("/net")));
        (fs, creds)
    }

    #[test]
    fn mkdir_view_autopopulates() {
        let (fs, creds) = setup();
        fs.mkdir("/net/views/new_view", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        for c in ["hosts", "switches", "views"] {
            assert!(fs
                .stat(&format!("/net/views/new_view/{c}"), &creds)
                .unwrap()
                .is_dir());
        }
        // Nested views too.
        fs.mkdir("/net/views/new_view/views/inner", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        assert!(fs.exists("/net/views/new_view/views/inner/switches", &creds));
    }

    #[test]
    fn mkdir_switch_creates_skeleton() {
        let (fs, creds) = setup();
        fs.mkdir("/net/switches/sw1", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        for d in ["counters", "flows", "ports"] {
            assert!(fs
                .stat(&format!("/net/switches/sw1/{d}"), &creds)
                .unwrap()
                .is_dir());
        }
    }

    #[test]
    fn mkdir_flow_creates_version() {
        let (fs, creds) = setup();
        fs.mkdir("/net/switches/sw1", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.mkdir("/net/switches/sw1/flows/arp", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        assert_eq!(
            fs.read_to_string("/net/switches/sw1/flows/arp/version", &creds)
                .unwrap(),
            "0"
        );
        assert!(fs.exists("/net/switches/sw1/flows/arp/counters", &creds));
    }

    #[test]
    fn switch_rmdir_is_recursive() {
        let (fs, creds) = setup();
        fs.mkdir("/net/switches/sw1", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.mkdir("/net/switches/sw1/flows/f1", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.write_file("/net/switches/sw1/flows/f1/priority", b"5", &creds)
            .unwrap();
        fs.rmdir("/net/switches/sw1", &creds).unwrap();
        assert!(!fs.exists("/net/switches/sw1", &creds));
        // The collections themselves keep POSIX semantics.
        fs.mkdir("/net/switches/sw2", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        assert_eq!(
            fs.rmdir("/net/switches", &creds).unwrap_err().errno,
            Errno::ENOTEMPTY
        );
    }

    #[test]
    fn peer_symlink_validated() {
        let (fs, creds) = setup();
        fs.mkdir("/net/switches/sw1", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.mkdir("/net/switches/sw2", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.mkdir("/net/switches/sw1/ports/p1", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.mkdir("/net/switches/sw2/ports/p3", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        // Pointing at a port: fine.
        fs.symlink(
            "/net/switches/sw2/ports/p3",
            "/net/switches/sw1/ports/p1/peer",
            &creds,
        )
        .unwrap();
        // Pointing at a switch: EINVAL.
        fs.mkdir("/net/switches/sw1/ports/p2", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        let e = fs
            .symlink(
                "/net/switches/sw2",
                "/net/switches/sw1/ports/p2/peer",
                &creds,
            )
            .unwrap_err();
        assert_eq!(e.errno, Errno::EINVAL);
        // Dangling target: EINVAL.
        let e = fs
            .symlink(
                "/net/switches/sw9/ports/p1",
                "/net/switches/sw1/ports/p2/peer",
                &creds,
            )
            .unwrap_err();
        assert_eq!(e.errno, Errno::EINVAL);
        // Non-peer symlinks elsewhere are unrestricted.
        fs.symlink("/net/switches/sw2", "/net/favourite", &creds)
            .unwrap();
    }

    #[test]
    fn flow_files_validated() {
        let (fs, creds) = setup();
        fs.mkdir("/net/switches/sw1", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.mkdir("/net/switches/sw1/flows/f1", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.write_file(
            "/net/switches/sw1/flows/f1/match.dl_type",
            b"0x0800",
            &creds,
        )
        .unwrap();
        fs.write_file("/net/switches/sw1/flows/f1/action.out", b"flood", &creds)
            .unwrap();
        let e = fs
            .write_file("/net/switches/sw1/flows/f1/match.bogus", b"x", &creds)
            .unwrap_err();
        assert_eq!(e.errno, Errno::EINVAL);
        // Outside flow dirs anything goes.
        fs.write_file("/net/switches/sw1/notes", b"hello", &creds)
            .unwrap();
    }

    #[test]
    fn event_entries_remove_recursively() {
        let (fs, creds) = setup();
        fs.mkdir_all("/net/events/router/1", Mode::DIR_DEFAULT, &creds)
            .unwrap();
        fs.write_file("/net/events/router/1/data", b"aa", &creds)
            .unwrap();
        fs.rmdir("/net/events/router/1", &creds).unwrap();
        assert!(!fs.exists("/net/events/router/1", &creds));
    }
}
