//! The `/net` directory schema (paper §3, Figures 2 and 3).
//!
//! ```text
//! /net
//! ├── hosts
//! ├── switches
//! │   └── sw1
//! │       ├── counters/
//! │       ├── flows/
//! │       │   └── arp_flow
//! │       │       ├── counters/
//! │       │       ├── match.dl_type
//! │       │       ├── action.out
//! │       │       ├── priority
//! │       │       ├── timeout
//! │       │       └── version
//! │       ├── ports/
//! │       │   └── p1
//! │       │       ├── counters/
//! │       │       ├── config.port_down
//! │       │       ├── config.port_status
//! │       │       ├── hw_addr
//! │       │       ├── curr_speed
//! │       │       └── peer -> ../../../sw2/ports/p3
//! │       ├── actions
//! │       ├── capabilities
//! │       ├── id
//! │       └── num_buffers
//! ├── views
//! │   └── <view>/{hosts,switches,views}      (auto-created on mkdir)
//! └── events
//!     └── <app>/<seq>/{switch,in_port,reason,buffer_id,data}
//! ```
//!
//! This module only names things; behaviour lives in the hook and façade.

use yanc_vfs::VPath;

/// Default mount point.
pub const NET_ROOT: &str = "/net";

/// Top-level collection names.
pub const SWITCHES: &str = "switches";
/// Hosts collection.
pub const HOSTS: &str = "hosts";
/// Views collection.
pub const VIEWS: &str = "views";
/// Packet-in event buffers.
pub const EVENTS: &str = "events";

/// The subdirectories every view gets on creation (paper §3.1).
pub const VIEW_CHILDREN: [&str; 3] = [HOSTS, SWITCHES, VIEWS];

/// Per-switch metadata files.
pub const SWITCH_FILES: [&str; 5] = ["id", "capabilities", "actions", "num_buffers", "num_tables"];
/// Per-switch subdirectories.
pub const SWITCH_DIRS: [&str; 3] = ["counters", "flows", "ports"];

/// Flow files with fixed (non-prefixed) names. `error` is driver-owned:
/// capability mismatches are reported as a file in the flow directory.
pub const FLOW_SCALARS: [&str; 8] = [
    "priority",
    "idle_timeout",
    "hard_timeout",
    "cookie",
    "version",
    "timeout",
    "goto_table",
    "error",
];

/// Valid `match.*` suffixes (paper: "each field that can be matched is a
/// separate file").
pub const MATCH_FIELDS: [&str; 12] = [
    "in_port",
    "dl_src",
    "dl_dst",
    "dl_vlan",
    "dl_vlan_pcp",
    "dl_type",
    "nw_tos",
    "nw_proto",
    "nw_src",
    "nw_dst",
    "tp_src",
    "tp_dst",
];

/// Valid `action.*` suffixes.
pub const ACTION_FIELDS: [&str; 12] = [
    "out",
    "set_vlan_vid",
    "set_vlan_pcp",
    "strip_vlan",
    "set_dl_src",
    "set_dl_dst",
    "set_nw_src",
    "set_nw_dst",
    "set_nw_tos",
    "set_tp_src",
    "set_tp_dst",
    "enqueue",
];

/// Per-port files.
pub const PORT_FILES: [&str; 5] = [
    "hw_addr",
    "curr_speed",
    "max_speed",
    "config.port_down",
    "config.port_status",
];

/// Where a path sits in the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaPos {
    /// `<root>/switches/<sw>` — a switch object directory.
    SwitchDir {
        /// Switch name.
        switch: String,
    },
    /// `<root>/switches/<sw>/flows/<flow>` — a flow object directory.
    FlowDir {
        /// Switch name.
        switch: String,
        /// Flow name.
        flow: String,
    },
    /// A file directly inside a flow directory.
    FlowFile {
        /// Switch name.
        switch: String,
        /// Flow name.
        flow: String,
        /// File name, e.g. `match.dl_type`.
        file: String,
    },
    /// `<root>/switches/<sw>/ports/<port>` — a port object directory.
    PortDir {
        /// Switch name.
        switch: String,
        /// Port name.
        port: String,
    },
    /// `<views-dir>/<view>` — a view object directory (possibly nested).
    ViewDir {
        /// View name.
        view: String,
    },
    /// `<root>/events/<app>` — an app's packet-in buffer.
    EventBuffer {
        /// Application name.
        app: String,
    },
    /// Anywhere else.
    Other,
}

/// Classify `path` relative to the schema rooted at `root`.
///
/// Views nest (`views/a/views/b/…`), so the classifier works on the last
/// few components rather than absolute depth.
pub fn classify(root: &VPath, path: &VPath) -> SchemaPos {
    let rel = match path.strip_prefix(root) {
        Some(r) => r,
        None => return SchemaPos::Other,
    };
    let comps: Vec<&str> = rel.split('/').filter(|c| !c.is_empty()).collect();
    let n = comps.len();
    // events/<app>
    if n == 2 && comps[0] == EVENTS {
        return SchemaPos::EventBuffer {
            app: comps[1].to_string(),
        };
    }
    // …/views/<view> at any nesting depth.
    if n >= 2 && comps[n - 2] == VIEWS {
        return SchemaPos::ViewDir {
            view: comps[n - 1].to_string(),
        };
    }
    // switches/<sw> possibly under a view prefix: …/switches/<sw>[/…]
    // Find the last "switches" component.
    if let Some(i) = comps.iter().rposition(|c| *c == SWITCHES) {
        match n - i {
            2 => {
                return SchemaPos::SwitchDir {
                    switch: comps[i + 1].to_string(),
                }
            }
            4 if comps[i + 2] == "flows" => {
                return SchemaPos::FlowDir {
                    switch: comps[i + 1].to_string(),
                    flow: comps[i + 3].to_string(),
                }
            }
            5 if comps[i + 2] == "flows" => {
                return SchemaPos::FlowFile {
                    switch: comps[i + 1].to_string(),
                    flow: comps[i + 3].to_string(),
                    file: comps[i + 4].to_string(),
                }
            }
            4 if comps[i + 2] == "ports" => {
                return SchemaPos::PortDir {
                    switch: comps[i + 1].to_string(),
                    port: comps[i + 3].to_string(),
                }
            }
            _ => {}
        }
    }
    SchemaPos::Other
}

/// Whether `file` is a legal name inside a flow directory.
pub fn valid_flow_file(file: &str) -> bool {
    if FLOW_SCALARS.contains(&file) {
        return true;
    }
    if let Some(suffix) = file.strip_prefix("match.") {
        return MATCH_FIELDS.contains(&suffix);
    }
    if let Some(suffix) = file.strip_prefix("action.") {
        return ACTION_FIELDS.contains(&suffix);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> VPath {
        VPath::new(NET_ROOT)
    }

    #[test]
    fn classify_switch_and_flow() {
        assert_eq!(
            classify(&root(), &VPath::new("/net/switches/sw1")),
            SchemaPos::SwitchDir {
                switch: "sw1".into()
            }
        );
        assert_eq!(
            classify(&root(), &VPath::new("/net/switches/sw1/flows/arp")),
            SchemaPos::FlowDir {
                switch: "sw1".into(),
                flow: "arp".into()
            }
        );
        assert_eq!(
            classify(
                &root(),
                &VPath::new("/net/switches/sw1/flows/arp/match.dl_type")
            ),
            SchemaPos::FlowFile {
                switch: "sw1".into(),
                flow: "arp".into(),
                file: "match.dl_type".into()
            }
        );
        assert_eq!(
            classify(&root(), &VPath::new("/net/switches/sw1/ports/p1")),
            SchemaPos::PortDir {
                switch: "sw1".into(),
                port: "p1".into()
            }
        );
    }

    #[test]
    fn classify_views_nested() {
        assert_eq!(
            classify(&root(), &VPath::new("/net/views/http")),
            SchemaPos::ViewDir {
                view: "http".into()
            }
        );
        assert_eq!(
            classify(&root(), &VPath::new("/net/views/mgmt/views/inner")),
            SchemaPos::ViewDir {
                view: "inner".into()
            }
        );
        // Switches inside a view still classify.
        assert_eq!(
            classify(&root(), &VPath::new("/net/views/http/switches/vsw1")),
            SchemaPos::SwitchDir {
                switch: "vsw1".into()
            }
        );
    }

    #[test]
    fn classify_events_and_other() {
        assert_eq!(
            classify(&root(), &VPath::new("/net/events/router")),
            SchemaPos::EventBuffer {
                app: "router".into()
            }
        );
        assert_eq!(
            classify(&root(), &VPath::new("/net/hosts")),
            SchemaPos::Other
        );
        assert_eq!(
            classify(&root(), &VPath::new("/elsewhere/x")),
            SchemaPos::Other
        );
        assert_eq!(
            classify(&root(), &VPath::new("/net/switches")),
            SchemaPos::Other
        );
    }

    #[test]
    fn flow_file_validation() {
        assert!(valid_flow_file("match.dl_type"));
        assert!(valid_flow_file("match.tp_dst"));
        assert!(valid_flow_file("action.out"));
        assert!(valid_flow_file("action.enqueue"));
        assert!(valid_flow_file("priority"));
        assert!(valid_flow_file("version"));
        assert!(valid_flow_file("goto_table"));
        assert!(!valid_flow_file("match.bogus"));
        assert!(!valid_flow_file("action.fire_missiles"));
        assert!(!valid_flow_file("random_file"));
    }
}
