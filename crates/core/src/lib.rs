//! # yanc — the file system *is* the SDN controller
//!
//! Reproduction of *Applying Operating System Principles to SDN Controller
//! Design* (Monaco, Michel, Keller — HotNets 2013). yanc exposes network
//! configuration and state as a file system: switches, ports, flows, links
//! and views are directories, files and symlinks under `/net`; applications
//! are ordinary processes doing ordinary file I/O; drivers translate file
//! changes into OpenFlow and back.
//!
//! This crate is the schema layer over [`yanc_vfs`]:
//!
//! * [`schema`] — the `/net` layout (paper Figures 2 & 3),
//! * [`hook::YancHook`] — semantic directories: auto-populated views and
//!   switches, auto-created flow `version` files, recursive object
//!   removal, validated `peer` symlinks and flow field names (§3.1–§3.4),
//! * [`flowspec::FlowSpec`] — the flow ↔ files codec (CIDR matches,
//!   `action.*` files, `version`-file commit),
//! * [`yancfs::YancFs`] — a typed façade over the file tree (everything it
//!   does is plain file I/O you could also do with `echo` and `mkdir`),
//! * [`views`] — slice / big-switch view configuration (§4.2).
//!
//! ```
//! use std::sync::Arc;
//! use yanc::{YancFs, FlowSpec};
//! use yanc_vfs::Filesystem;
//! use yanc_openflow::{Action, FlowMatch};
//!
//! let fs = Arc::new(Filesystem::new());
//! let y = YancFs::init(fs, "/net").unwrap();
//! y.create_switch("sw1", 0x1, 0x7, 0xfff, 256, 1).unwrap();
//!
//! // Install a flow by writing files; the version bump commits it.
//! let spec = FlowSpec {
//!     m: FlowMatch { dl_type: Some(0x0806), ..Default::default() },
//!     actions: vec![Action::out(yanc_openflow::port_no::CONTROLLER)],
//!     ..Default::default()
//! };
//! y.write_flow("sw1", "arp_flow", &spec).unwrap();
//! assert_eq!(y.read_flow("sw1", "arp_flow").unwrap().version, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod app;
pub mod error;
pub mod flowspec;
pub mod hook;
pub mod schema;
pub mod views;
pub mod yancfs;

pub use app::YancApp;
pub use error::{RingFull, YancError, YancResult};
pub use flowspec::{parse_port_token, port_token, FlowOp, FlowSpec};
pub use hook::YancHook;
pub use schema::{classify, valid_flow_file, SchemaPos, NET_ROOT};
pub use views::{ViewConfig, ViewKind};
pub use yancfs::{hex_decode, hex_encode, EventSubscription, PacketInRecord, PortSpec, YancFs};
