//! Error type for yanc-core operations.

use std::fmt;

use yanc_vfs::{Errno, VfsError};

use crate::flowspec::FlowOp;

/// Payload of [`YancError::RingFull`]: a fastpath ring rejected some ops.
///
/// `errno` follows the vfs model so fast- and slow-path failures compose in
/// one `match`: `ENOSPC` when *nothing* was enqueued (the ring was already
/// full), `EAGAIN` when a batch was partially enqueued and only the
/// `rejected` remainder needs retrying once the driver drains.
#[derive(Debug, Clone, PartialEq)]
pub struct RingFull {
    /// `ENOSPC` (nothing enqueued) or `EAGAIN` (partial batch; retry the
    /// remainder).
    pub errno: Errno,
    /// The ops the ring did not accept, in submission order.
    pub rejected: Vec<FlowOp>,
}

/// Errors from the yanc schema layer.
#[derive(Debug, Clone, PartialEq)]
pub enum YancError {
    /// An underlying file-system error.
    Vfs(VfsError),
    /// A file's contents didn't parse as the schema requires.
    Parse {
        /// The offending path or field.
        what: String,
        /// Why it failed.
        reason: String,
    },
    /// A referenced object does not exist or the schema was violated.
    Schema {
        /// What was violated.
        reason: String,
    },
    /// A libyanc fastpath ring rejected ops; see [`RingFull`].
    RingFull(RingFull),
    /// A read-fastpath ring (stat queries, telemetry) rejected an item.
    /// Unlike [`RingFull`] there is no op payload worth carrying back —
    /// the caller re-issues the query once the peer drains.
    Busy {
        /// `ENOSPC` (ring already full) following the vfs errno model.
        errno: Errno,
        /// Which channel rejected the item.
        what: String,
    },
}

impl YancError {
    /// Construct a parse error.
    pub fn parse(what: impl Into<String>, reason: impl Into<String>) -> Self {
        YancError::Parse {
            what: what.into(),
            reason: reason.into(),
        }
    }

    /// Construct a schema error.
    pub fn schema(reason: impl Into<String>) -> Self {
        YancError::Schema {
            reason: reason.into(),
        }
    }

    /// Construct a ring-full error carrying the rejected ops.
    pub fn ring_full(errno: Errno, rejected: Vec<FlowOp>) -> Self {
        YancError::RingFull(RingFull { errno, rejected })
    }

    /// Construct a busy error for a payload-free fastpath ring.
    pub fn busy(errno: Errno, what: impl Into<String>) -> Self {
        YancError::Busy {
            errno,
            what: what.into(),
        }
    }

    /// The errno, when this error has one (vfs and ring-full errors do).
    /// Lets supervisors treat `EAGAIN` uniformly across both paths.
    pub fn errno(&self) -> Option<Errno> {
        match self {
            YancError::Vfs(e) => Some(e.errno),
            YancError::RingFull(r) => Some(r.errno),
            YancError::Busy { errno, .. } => Some(*errno),
            _ => None,
        }
    }
}

impl fmt::Display for YancError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YancError::Vfs(e) => write!(f, "vfs: {e}"),
            YancError::Parse { what, reason } => write!(f, "parse {what}: {reason}"),
            YancError::Schema { reason } => write!(f, "schema: {reason}"),
            YancError::RingFull(r) => {
                write!(
                    f,
                    "ring full: {:?} ({} ops rejected)",
                    r.errno,
                    r.rejected.len()
                )
            }
            YancError::Busy { errno, what } => write!(f, "busy: {errno:?} ({what})"),
        }
    }
}

impl std::error::Error for YancError {}

impl From<VfsError> for YancError {
    fn from(e: VfsError) -> Self {
        YancError::Vfs(e)
    }
}

/// Result alias for yanc-core.
pub type YancResult<T> = Result<T, YancError>;

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_vfs::Errno;

    #[test]
    fn display_variants() {
        let v: YancError = VfsError::new(Errno::ENOENT, "/net/x").into();
        assert!(v.to_string().contains("ENOENT"));
        assert!(YancError::parse("match.dl_type", "not hex")
            .to_string()
            .contains("match.dl_type"));
        assert!(YancError::schema("peer must point at a port")
            .to_string()
            .contains("peer"));
    }
}
