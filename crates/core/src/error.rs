//! Error type for yanc-core operations.

use std::fmt;

use yanc_vfs::VfsError;

/// Errors from the yanc schema layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YancError {
    /// An underlying file-system error.
    Vfs(VfsError),
    /// A file's contents didn't parse as the schema requires.
    Parse {
        /// The offending path or field.
        what: String,
        /// Why it failed.
        reason: String,
    },
    /// A referenced object does not exist or the schema was violated.
    Schema {
        /// What was violated.
        reason: String,
    },
}

impl YancError {
    /// Construct a parse error.
    pub fn parse(what: impl Into<String>, reason: impl Into<String>) -> Self {
        YancError::Parse {
            what: what.into(),
            reason: reason.into(),
        }
    }

    /// Construct a schema error.
    pub fn schema(reason: impl Into<String>) -> Self {
        YancError::Schema {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for YancError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            YancError::Vfs(e) => write!(f, "vfs: {e}"),
            YancError::Parse { what, reason } => write!(f, "parse {what}: {reason}"),
            YancError::Schema { reason } => write!(f, "schema: {reason}"),
        }
    }
}

impl std::error::Error for YancError {}

impl From<VfsError> for YancError {
    fn from(e: VfsError) -> Self {
        YancError::Vfs(e)
    }
}

/// Result alias for yanc-core.
pub type YancResult<T> = Result<T, YancError>;

#[cfg(test)]
mod tests {
    use super::*;
    use yanc_vfs::Errno;

    #[test]
    fn display_variants() {
        let v: YancError = VfsError::new(Errno::ENOENT, "/net/x").into();
        assert!(v.to_string().contains("ENOENT"));
        assert!(YancError::parse("match.dl_type", "not hex")
            .to_string()
            .contains("match.dl_type"));
        assert!(YancError::schema("peer must point at a port")
            .to_string()
            .contains("peer"));
    }
}
