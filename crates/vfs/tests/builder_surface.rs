//! Pins the `Filesystem` construction surface so future feature flags
//! extend [`FsBuilder`] instead of adding a seventh constructor.
//!
//! Same `cargo public-api`-style technique as `libyanc/tests/api_surface.rs`:
//! the crate source is parsed textually for the builder's `pub fn` lines and
//! compared against an explicit allowlist, and every legacy constructor is
//! checked to carry `#[deprecated]`. Behavioural half: each builder switch
//! must actually reach the built filesystem.

use std::collections::BTreeSet;

use yanc_vfs::{Filesystem, Limits};

const FS_SRC: &str = include_str!("../src/fs.rs");

/// The pinned FsBuilder surface. Adding a setter is fine — extend the list;
/// removing or changing a signature must update this test in the same PR.
const EXPECTED_BUILDER_FNS: &[&str] = &[
    "pub fn limits(mut self, limits: Limits) -> Self",
    "pub fn shards(mut self, shards: usize) -> Self",
    "pub fn dcache(mut self, enabled: bool) -> Self",
    "pub fn readpath(mut self, enabled: bool) -> Self",
    "pub fn journal(mut self, enabled: bool) -> Self",
    "pub fn build(self) -> Filesystem",
];

/// Every constructor the builder replaced. Each must still compile (one-line
/// shim) and each must be marked `#[deprecated]`.
const DEPRECATED_CONSTRUCTORS: &[&str] = &[
    "pub fn with_limits(limits: Limits) -> Self",
    "pub fn with_shards(shards: usize) -> Self",
    "pub fn with_config(limits: Limits, shards: usize) -> Self",
    "pub fn without_dcache() -> Self",
    "pub fn without_readpath() -> Self",
    "pub fn with_options(limits: Limits, shards: usize, dcache_enabled: bool) -> Self",
];

/// The `pub fn` first-lines inside `impl FsBuilder { .. }`, normalized.
fn builder_fns(src: &str) -> BTreeSet<String> {
    let start = src.find("impl FsBuilder {").expect("impl FsBuilder block");
    let body = &src[start..];
    let end = body.find("\nimpl ").unwrap_or(body.len());
    let mut out = BTreeSet::new();
    for line in body[..end].lines() {
        let t = line.trim();
        if t.starts_with("pub fn ") {
            out.insert(t.trim_end_matches('{').trim().to_string());
        }
    }
    out
}

#[test]
fn builder_surface_is_pinned() {
    let got = builder_fns(FS_SRC);
    let want: BTreeSet<String> = EXPECTED_BUILDER_FNS.iter().map(|s| s.to_string()).collect();
    let missing: Vec<_> = want.difference(&got).collect();
    let extra: Vec<_> = got.difference(&want).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "FsBuilder surface drifted.\nmissing (pinned but absent): {missing:#?}\nextra (present but unpinned): {extra:#?}"
    );
}

#[test]
fn legacy_constructors_are_deprecated_shims() {
    // Walk the file line by line; each legacy constructor must appear and
    // the nearest preceding attribute block must contain #[deprecated].
    let lines: Vec<&str> = FS_SRC.lines().collect();
    for ctor in DEPRECATED_CONSTRUCTORS {
        let idx = lines
            .iter()
            .position(|l| l.trim().trim_end_matches('{').trim() == *ctor)
            .unwrap_or_else(|| panic!("legacy constructor vanished: {ctor}"));
        let deprecated = lines[idx.saturating_sub(4)..idx]
            .iter()
            .any(|l| l.trim().starts_with("#[deprecated"));
        assert!(deprecated, "{ctor} is not marked #[deprecated]");
    }
    // with_features has a multi-line signature; check by name.
    let idx = lines
        .iter()
        .position(|l| l.trim() == "pub fn with_features(")
        .expect("with_features vanished");
    assert!(
        lines[idx.saturating_sub(4)..idx]
            .iter()
            .any(|l| l.trim().starts_with("#[deprecated")),
        "with_features is not marked #[deprecated]"
    );
}

#[test]
fn builder_switches_reach_the_built_filesystem() {
    // Defaults match Filesystem::new().
    let d = Filesystem::builder().build();
    assert!(d.dcache_enabled());
    assert!(d.readpath_enabled());
    assert!(!d.journal_enabled());

    let fs = Filesystem::builder()
        .shards(1)
        .dcache(false)
        .readpath(false)
        .journal(true)
        .build();
    assert_eq!(fs.shard_count(), 1);
    assert!(!fs.dcache_enabled());
    assert!(!fs.readpath_enabled());
    assert!(
        fs.journal_enabled(),
        "journal(true) must enable the journal at build time"
    );
    // The anchor snapshot of the empty tree was captured: mutations from
    // the very first one on are replayable.
    assert!(fs.journal_stats().snapshots >= 1);

    let tight = Filesystem::builder()
        .limits(Limits {
            max_file_size: 3,
            max_dir_entries: 64,
            max_open_files: 64,
        })
        .build();
    let root = yanc_vfs::Credentials::root();
    assert!(tight.write_file("/big", b"oversized", &root).is_err());
    assert!(tight.write_file("/ok", b"ok", &root).is_ok());
}
