//! Model-based property tests for the vfs: arbitrary operation sequences
//! checked against a flat reference model, plus law-style invariants for
//! hard links, renames, symlinks and orphaned (open-but-unlinked) inodes.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use yanc_vfs::{Credentials, Errno, Filesystem, Mode, OpenFlags};

#[derive(Debug, Clone)]
enum Op {
    Write {
        dir: u8,
        name: u8,
        data: Vec<u8>,
    },
    Append {
        dir: u8,
        name: u8,
        data: Vec<u8>,
    },
    Unlink {
        dir: u8,
        name: u8,
    },
    RenameFile {
        from_dir: u8,
        from_name: u8,
        to_dir: u8,
        to_name: u8,
    },
    Link {
        from_dir: u8,
        from_name: u8,
        to_dir: u8,
        to_name: u8,
    },
    Mkdir {
        dir: u8,
        name: u8,
    },
    Rmdir {
        dir: u8,
        name: u8,
    },
    Symlink {
        dir: u8,
        name: u8,
        target_dir: u8,
        target_name: u8,
    },
    Truncate {
        dir: u8,
        name: u8,
        len: u8,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let d = 0u8..3;
    let n = 0u8..4;
    let data = proptest::collection::vec(any::<u8>(), 0..16);
    prop_oneof![
        (d.clone(), n.clone(), data.clone()).prop_map(|(dir, name, data)| Op::Write {
            dir,
            name,
            data
        }),
        (d.clone(), n.clone(), data).prop_map(|(dir, name, data)| Op::Append { dir, name, data }),
        (d.clone(), n.clone()).prop_map(|(dir, name)| Op::Unlink { dir, name }),
        (d.clone(), n.clone(), d.clone(), n.clone()).prop_map(
            |(from_dir, from_name, to_dir, to_name)| {
                Op::RenameFile {
                    from_dir,
                    from_name,
                    to_dir,
                    to_name,
                }
            }
        ),
        (d.clone(), n.clone(), d.clone(), n.clone()).prop_map(
            |(from_dir, from_name, to_dir, to_name)| {
                Op::Link {
                    from_dir,
                    from_name,
                    to_dir,
                    to_name,
                }
            }
        ),
        (d.clone(), n.clone()).prop_map(|(dir, name)| Op::Mkdir { dir, name }),
        (d.clone(), n.clone()).prop_map(|(dir, name)| Op::Rmdir { dir, name }),
        (d.clone(), n.clone(), d.clone(), n.clone()).prop_map(
            |(dir, name, target_dir, target_name)| {
                Op::Symlink {
                    dir,
                    name,
                    target_dir,
                    target_name,
                }
            }
        ),
        (d, n, 0u8..24).prop_map(|(dir, name, len)| Op::Truncate { dir, name, len }),
    ]
}

fn path(dir: u8, name: u8) -> String {
    format!("/d{dir}/f{name}")
}

fn subdir(dir: u8, name: u8) -> String {
    format!("/d{dir}/s{name}")
}

fn linkpath(dir: u8, name: u8) -> String {
    format!("/d{dir}/y{name}")
}

/// Flat reference model: path → content "cell id". Hard links are modeled
/// by two paths sharing a cell.
#[derive(Default)]
struct Model {
    cells: Vec<Vec<u8>>,
    paths: BTreeMap<String, usize>,
    /// Subdirectories (`/d*/s*`) — always leaves, so rmdir never sees
    /// ENOTEMPTY.
    dirs: BTreeSet<String>,
    /// Symlinks (`/d*/y*`) → target string.
    symlinks: BTreeMap<String, String>,
}

impl Model {
    fn write(&mut self, p: String, data: Vec<u8>) {
        match self.paths.get(&p) {
            Some(&c) => self.cells[c] = data,
            None => {
                self.cells.push(data);
                self.paths.insert(p, self.cells.len() - 1);
            }
        }
    }
    fn append(&mut self, p: String, data: &[u8]) {
        match self.paths.get(&p) {
            Some(&c) => self.cells[c].extend_from_slice(data),
            None => self.write(p, data.to_vec()),
        }
    }
    fn read(&self, p: &str) -> Option<&Vec<u8>> {
        self.paths.get(p).map(|&c| &self.cells[c])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fs_agrees_with_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let fs = Filesystem::new();
        let creds = Credentials::root();
        for d in 0..3 {
            fs.mkdir(&format!("/d{d}"), Mode::DIR_DEFAULT, &creds).unwrap();
        }
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Write { dir, name, data } => {
                    fs.write_file(&path(dir, name), &data, &creds).unwrap();
                    model.write(path(dir, name), data);
                }
                Op::Append { dir, name, data } => {
                    fs.append_file(&path(dir, name), &data, &creds).unwrap();
                    model.append(path(dir, name), &data);
                }
                Op::Unlink { dir, name } => {
                    let r = fs.unlink(&path(dir, name), &creds);
                    let p = path(dir, name);
                    match model.paths.remove(&p) {
                        Some(_) => prop_assert!(r.is_ok()),
                        None => prop_assert_eq!(r.unwrap_err().errno, Errno::ENOENT),
                    }
                }
                Op::RenameFile { from_dir, from_name, to_dir, to_name } => {
                    let from = path(from_dir, from_name);
                    let to = path(to_dir, to_name);
                    let r = fs.rename(&from, &to, &creds);
                    match model.paths.get(&from).copied() {
                        None => prop_assert_eq!(r.unwrap_err().errno, Errno::ENOENT),
                        Some(cell) => {
                            prop_assert!(r.is_ok(), "rename {} -> {}", from, to);
                            if from != to {
                                match model.paths.get(&to) {
                                    // POSIX: renaming onto a hard link of
                                    // the same inode is a no-op that keeps
                                    // both names.
                                    Some(&tc) if tc == cell => {}
                                    _ => {
                                        model.paths.remove(&from);
                                        model.paths.insert(to, cell);
                                    }
                                }
                            }
                        }
                    }
                }
                Op::Link { from_dir, from_name, to_dir, to_name } => {
                    let from = path(from_dir, from_name);
                    let to = path(to_dir, to_name);
                    let r = fs.link(&from, &to, &creds);
                    match (model.paths.get(&from).copied(), model.paths.contains_key(&to)) {
                        (None, _) => prop_assert_eq!(r.unwrap_err().errno, Errno::ENOENT),
                        (Some(_), true) => prop_assert_eq!(r.unwrap_err().errno, Errno::EEXIST),
                        (Some(cell), false) => {
                            prop_assert!(r.is_ok());
                            model.paths.insert(to, cell);
                        }
                    }
                }
                Op::Mkdir { dir, name } => {
                    let p = subdir(dir, name);
                    let r = fs.mkdir(&p, Mode::DIR_DEFAULT, &creds);
                    if model.dirs.insert(p) {
                        prop_assert!(r.is_ok());
                    } else {
                        prop_assert_eq!(r.unwrap_err().errno, Errno::EEXIST);
                    }
                }
                Op::Rmdir { dir, name } => {
                    let p = subdir(dir, name);
                    let r = fs.rmdir(&p, &creds);
                    if model.dirs.remove(&p) {
                        prop_assert!(r.is_ok());
                    } else {
                        prop_assert_eq!(r.unwrap_err().errno, Errno::ENOENT);
                    }
                }
                Op::Symlink { dir, name, target_dir, target_name } => {
                    let lp = linkpath(dir, name);
                    let target = path(target_dir, target_name);
                    let r = fs.symlink(&target, &lp, &creds);
                    match model.symlinks.entry(lp) {
                        std::collections::btree_map::Entry::Occupied(_) => {
                            prop_assert_eq!(r.unwrap_err().errno, Errno::EEXIST);
                        }
                        std::collections::btree_map::Entry::Vacant(v) => {
                            prop_assert!(r.is_ok());
                            v.insert(target);
                        }
                    }
                }
                Op::Truncate { dir, name, len } => {
                    let p = path(dir, name);
                    let r = fs.truncate(&p, len as u64, &creds);
                    match model.paths.get(&p) {
                        Some(&c) => {
                            prop_assert!(r.is_ok());
                            model.cells[c].resize(len as usize, 0);
                        }
                        None => prop_assert_eq!(r.unwrap_err().errno, Errno::ENOENT),
                    }
                }
            }
        }
        // Full-state comparison.
        for p in model.paths.keys() {
            prop_assert_eq!(&fs.read_file(p, &creds).unwrap(), model.read(p).unwrap(), "{}", p);
        }
        // Symlinks resolve exactly like their target path would.
        for (lp, target) in &model.symlinks {
            match model.paths.get(target) {
                Some(&c) => prop_assert_eq!(&fs.read_file(lp, &creds).unwrap(), &model.cells[c]),
                None => prop_assert!(fs.read_file(lp, &creds).is_err(), "dangling {}", lp),
            }
            prop_assert_eq!(&fs.readlink(lp, &creds).unwrap(), target);
        }
        for d in 0..3u8 {
            let listed: Vec<String> = fs
                .readdir(&format!("/d{d}"), &creds)
                .unwrap()
                .into_iter()
                .map(|e| format!("/d{d}/{}", e.name))
                .collect();
            let prefix = format!("/d{d}/");
            let mut expect: Vec<String> = model
                .paths
                .keys()
                .chain(model.dirs.iter())
                .chain(model.symlinks.keys())
                .filter(|k| k.starts_with(&prefix))
                .cloned()
                .collect();
            expect.sort();
            prop_assert_eq!(listed, expect);
        }
        // nlink bookkeeping: each file's link count equals the number of
        // model paths sharing its inode.
        for p in model.paths.keys() {
            let st = fs.stat(p, &creds).unwrap();
            let ino = st.ino;
            let expected = model
                .paths
                .keys()
                .filter(|q| fs.stat(q, &creds).unwrap().ino == ino)
                .count() as u32;
            prop_assert_eq!(st.nlink, expected, "nlink of {}", p);
        }
    }

    #[test]
    fn symlink_chains_resolve_like_direct_access(depth in 1usize..8) {
        let fs = Filesystem::new();
        let creds = Credentials::root();
        fs.mkdir("/real", Mode::DIR_DEFAULT, &creds).unwrap();
        fs.write_file("/real/target", b"payload", &creds).unwrap();
        let mut prev = "/real/target".to_string();
        for i in 0..depth {
            let link = format!("/l{i}");
            fs.symlink(&prev, &link, &creds).unwrap();
            prev = link;
        }
        prop_assert_eq!(fs.read_file(&prev, &creds).unwrap(), b"payload".to_vec());
        let canon = fs.canonicalize(&prev, &creds).unwrap();
        prop_assert_eq!(canon.as_str(), "/real/target");
        // Writing through the chain writes the real file.
        fs.write_file(&prev, b"updated", &creds).unwrap();
        prop_assert_eq!(fs.read_file("/real/target", &creds).unwrap(), b"updated".to_vec());
    }

    #[test]
    fn rename_preserves_subtree(contents in proptest::collection::vec(any::<u8>(), 1..32)) {
        let fs = Filesystem::new();
        let creds = Credentials::root();
        fs.mkdir_all("/a/deep/nest", Mode::DIR_DEFAULT, &creds).unwrap();
        fs.write_file("/a/deep/nest/file", &contents, &creds).unwrap();
        fs.symlink("/a/deep", "/a/deep/nest/self", &creds).unwrap();
        fs.rename("/a", "/b", &creds).unwrap();
        prop_assert!(!fs.exists("/a", &creds));
        prop_assert_eq!(fs.read_file("/b/deep/nest/file", &creds).unwrap(), contents);
        // Symlink target string is preserved verbatim (it pointed at /a —
        // now dangling, exactly as POSIX would leave it).
        prop_assert_eq!(fs.readlink("/b/deep/nest/self", &creds).unwrap(), "/a/deep".to_string());
    }

    // POSIX orphan semantics: an open handle keeps the inode alive after
    // every name for it is gone; reads and writes through the fd keep
    // working, and the inode only disappears on last close.
    #[test]
    fn open_handle_survives_unlink(
        data in proptest::collection::vec(any::<u8>(), 1..64),
        extra in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let fs = Filesystem::new();
        let creds = Credentials::root();
        fs.mkdir("/d", Mode::DIR_DEFAULT, &creds).unwrap();
        fs.write_file("/d/f", &data, &creds).unwrap();
        let rfd = fs.open("/d/f", OpenFlags::read_only(), &creds).unwrap();
        let wfd = fs.open(
            "/d/f",
            OpenFlags { write: true, append: true, ..Default::default() },
            &creds,
        ).unwrap();
        fs.unlink("/d/f", &creds).unwrap();
        // The name is gone…
        prop_assert!(fs.stat("/d/f", &creds).is_err());
        prop_assert!(fs.readdir("/d", &creds).unwrap().is_empty());
        // …but both handles still reach the inode.
        prop_assert_eq!(fs.read(rfd, data.len()).unwrap(), data.clone());
        prop_assert_eq!(fs.write(wfd, &extra).unwrap(), extra.len());
        prop_assert_eq!(fs.read(rfd, extra.len()).unwrap(), extra.clone());
        fs.close(rfd, &creds).unwrap();
        fs.close(wfd, &creds).unwrap();
        // After the last close the orphan is truly gone.
        prop_assert!(fs.open("/d/f", OpenFlags::read_only(), &creds).is_err());
    }
}

#[test]
fn concurrent_writers_do_not_corrupt() {
    // Smoke: 4 threads hammer disjoint files + one shared append target.
    use std::sync::Arc;
    let fs = Arc::new(Filesystem::new());
    let creds = Credentials::root();
    fs.mkdir("/shared", Mode::DIR_DEFAULT, &creds).unwrap();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let fs = fs.clone();
            std::thread::spawn(move || {
                let creds = Credentials::root();
                for i in 0..200 {
                    let p = format!("/shared/t{t}_{i}");
                    fs.write_file(&p, format!("{t}:{i}").as_bytes(), &creds)
                        .unwrap();
                    fs.append_file("/shared/log", b"x", &creds).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // Every private file intact; the shared log has every append.
    for t in 0..4 {
        for i in 0..200 {
            let p = format!("/shared/t{t}_{i}");
            assert_eq!(fs.read_to_string(&p, &creds).unwrap(), format!("{t}:{i}"));
        }
    }
    assert_eq!(fs.read_file("/shared/log", &creds).unwrap().len(), 800);
    assert_eq!(fs.readdir("/shared", &creds).unwrap().len(), 801);
}
