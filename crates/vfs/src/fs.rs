//! The in-memory virtual file system.
//!
//! This is the substrate the entire reproduction stands on: a POSIX-style
//! file system with inodes, directories, symlinks, hard links, unix
//! permissions + ACLs, extended attributes, open-file handles, rename
//! semantics, change notification and per-operation syscall accounting.
//! It replaces the Linux VFS + FUSE layer the paper's prototype used; see
//! DESIGN.md §1 for why the substitution preserves the behaviours yanc
//! relies on.
//!
//! Locking: one `RwLock` over the inode/handle tables. Mutating operations
//! compute the change and the notification events under the write lock,
//! then release it before emitting events and invoking semantic hooks, so
//! hooks and watchers may freely re-enter the filesystem.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use crossbeam::channel::Receiver;
use parking_lot::RwLock;

use crate::acl::{check_access, Acl};
use crate::counter::{OpKind, SyscallCounters};
use crate::error::{err, Errno, VfsError, VfsResult};
use crate::hooks::{HookDepth, SemanticHook};
use crate::metrics::MetricsRegistry;
use crate::notify::{Event, EventKind, EventMask, NotifyHub, WatchId};
use crate::path::{valid_name, VPath, NAME_MAX, PATH_MAX};
use crate::proc::{ProcDepth, ProcHook, ProcRegistry, ProcRender};
use crate::rctl::{AppLimits, RctlTable};
use crate::types::{
    Access, Clock, Credentials, DirEntry, Fd, FileStat, FileType, Gid, Ino, Mode, OpenFlags,
    Timestamp, Uid, ROOT_INO,
};

/// Maximum symlink traversals in one lookup, mirroring Linux `SYMLOOP_MAX`.
const SYMLOOP_MAX: u32 = 40;
/// Hard-link ceiling, mirroring ext4's practical limit.
const LINK_MAX: u32 = 65_000;

/// Resource limits; defaults are generous but finite so `ENOSPC`/`EDQUOT`
/// paths are reachable in tests.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum size of a regular file in bytes.
    pub max_file_size: u64,
    /// Maximum number of entries in one directory.
    pub max_dir_entries: usize,
    /// Maximum number of simultaneously open handles.
    pub max_open_files: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_file_size: 64 << 20,
            max_dir_entries: 1 << 20,
            max_open_files: 1 << 16,
        }
    }
}

/// What [`Filesystem::reclaim`] tore down for a killed process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimReport {
    /// Open handles force-closed.
    pub handles_closed: usize,
    /// Notify watch descriptors removed.
    pub watches_removed: usize,
    /// Unlinked inodes that were only kept alive by the closed handles.
    pub inodes_dropped: usize,
}

#[derive(Debug)]
enum NodeKind {
    File(Vec<u8>),
    Dir {
        entries: BTreeMap<String, Ino>,
        parent: Ino,
    },
    Symlink(String),
}

#[derive(Debug)]
struct Inode {
    kind: NodeKind,
    mode: Mode,
    uid: Uid,
    gid: Gid,
    nlink: u32,
    mtime: Timestamp,
    ctime: Timestamp,
    xattrs: BTreeMap<String, Vec<u8>>,
    acl: Option<Acl>,
    open_count: u32,
}

impl Inode {
    fn file_type(&self) -> FileType {
        match self.kind {
            NodeKind::File(_) => FileType::Regular,
            NodeKind::Dir { .. } => FileType::Directory,
            NodeKind::Symlink(_) => FileType::Symlink,
        }
    }

    fn size(&self) -> u64 {
        match &self.kind {
            NodeKind::File(d) => d.len() as u64,
            NodeKind::Dir { entries, .. } => entries.len() as u64,
            NodeKind::Symlink(t) => t.len() as u64,
        }
    }

    fn dir_entries(&self) -> VfsResult<&BTreeMap<String, Ino>> {
        match &self.kind {
            NodeKind::Dir { entries, .. } => Ok(entries),
            _ => err(Errno::ENOTDIR, ""),
        }
    }

    fn dir_entries_mut(&mut self) -> VfsResult<&mut BTreeMap<String, Ino>> {
        match &mut self.kind {
            NodeKind::Dir { entries, .. } => Ok(entries),
            _ => err(Errno::ENOTDIR, ""),
        }
    }
}

struct OpenFile {
    ino: Ino,
    flags: OpenFlags,
    offset: u64,
    path: VPath,
    wrote: bool,
    /// Uid the handle is charged to; [`Filesystem::reclaim`] closes every
    /// handle owned by a killed process.
    owner: Uid,
}

struct FsInner {
    inodes: HashMap<u64, Inode>,
    next_ino: u64,
    handles: HashMap<u64, OpenFile>,
    next_fd: u64,
}

impl FsInner {
    fn inode(&self, ino: Ino) -> VfsResult<&Inode> {
        self.inodes
            .get(&ino.0)
            .ok_or_else(|| VfsError::new(Errno::EIO, format!("{ino}")))
    }

    fn inode_mut(&mut self, ino: Ino) -> VfsResult<&mut Inode> {
        self.inodes
            .get_mut(&ino.0)
            .ok_or_else(|| VfsError::new(Errno::EIO, format!("{ino}")))
    }

    fn alloc_ino(&mut self) -> Ino {
        let ino = Ino(self.next_ino);
        self.next_ino += 1;
        ino
    }
}

/// Resolution of a path into its (canonical) parent directory and final
/// component.
struct Resolved {
    parent_ino: Ino,
    parent_path: VPath,
    name: String,
    /// Inode of the final component, if it exists (symlinks NOT followed;
    /// callers follow explicitly when they need to).
    target: Option<Ino>,
}

/// Pending notification gathered under the lock, emitted after release.
type PendingEvent = (EventKind, VPath, Option<String>);

/// Pending hook invocation gathered under the lock.
enum PendingHook {
    Mkdir(VPath),
    Create(VPath),
    CloseWrite(VPath),
}

/// The virtual file system. Cheap to share: wrap in an [`Arc`].
pub struct Filesystem {
    inner: Arc<RwLock<FsInner>>,
    clock: Clock,
    counters: Arc<SyscallCounters>,
    metrics: Arc<MetricsRegistry>,
    notify: Arc<NotifyHub>,
    proc: Arc<ProcRegistry>,
    hooks: RwLock<Vec<Arc<dyn SemanticHook>>>,
    limits: Limits,
    rctl: Arc<RctlTable>,
}

impl Default for Filesystem {
    fn default() -> Self {
        Self::new()
    }
}

impl Filesystem {
    /// An empty filesystem containing only the root directory (`0o755`,
    /// owned by root).
    pub fn new() -> Self {
        Self::with_limits(Limits::default())
    }

    /// An empty filesystem with explicit resource limits.
    pub fn with_limits(limits: Limits) -> Self {
        let clock = Clock::new();
        let now = clock.tick();
        let mut inodes = HashMap::new();
        inodes.insert(
            ROOT_INO.0,
            Inode {
                kind: NodeKind::Dir {
                    entries: BTreeMap::new(),
                    parent: ROOT_INO,
                },
                mode: Mode::DIR_DEFAULT,
                uid: Uid(0),
                gid: Gid(0),
                nlink: 2,
                mtime: now,
                ctime: now,
                xattrs: BTreeMap::new(),
                acl: None,
                open_count: 0,
            },
        );
        Filesystem {
            inner: Arc::new(RwLock::new(FsInner {
                inodes,
                next_ino: 2,
                handles: HashMap::new(),
                next_fd: 3,
            })),
            clock,
            counters: Arc::new(SyscallCounters::new()),
            metrics: Arc::new(MetricsRegistry::new()),
            notify: Arc::new(NotifyHub::new()),
            proc: Arc::new(ProcRegistry::new()),
            hooks: RwLock::new(Vec::new()),
            limits,
            rctl: Arc::new(RctlTable::new()),
        }
    }

    /// The syscall tally (see [`SyscallCounters`]); drives experiment E14.
    pub fn counters(&self) -> &SyscallCounters {
        &self.counters
    }

    /// Latency histograms and per-mount counter scopes.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Register (or fetch) a named syscall-counter scope covering `prefix`.
    /// If a proc mount is active, the scope's figures are also exposed under
    /// `<mount>/scopes/<name>/`.
    pub fn add_metrics_scope(&self, name: &str, prefix: &str) -> Arc<SyscallCounters> {
        let counters = self.metrics.add_scope(name, prefix);
        for mount in self.proc.mounts() {
            let c = counters.clone();
            let _ = self.proc_file(&format!("{mount}/scopes/{name}/total"), move || {
                format!("{}\n", c.total())
            });
            let c = counters.clone();
            let _ = self.proc_file(&format!("{mount}/scopes/{name}/syscalls"), move || {
                format!("{}\n", c.snapshot().report())
            });
        }
        counters
    }

    /// The notification hub.
    pub fn notify(&self) -> &NotifyHub {
        &self.notify
    }

    /// The proc-mount registry (see [`crate::proc`]).
    pub fn proc(&self) -> &ProcRegistry {
        &self.proc
    }

    /// Register a semantic hook (consulted in registration order).
    pub fn add_hook(&self, hook: Arc<dyn SemanticHook>) {
        self.hooks.write().push(hook);
    }

    /// inotify-style watch on `path` and its direct children.
    pub fn watch_path(&self, path: &str, mask: EventMask) -> (WatchId, Receiver<Event>) {
        self.notify.watch_path(&VPath::new(path), mask)
    }

    /// fanotify-style watch on the subtree rooted at `path`.
    pub fn watch_subtree(&self, path: &str, mask: EventMask) -> (WatchId, Receiver<Event>) {
        self.notify.watch_subtree(&VPath::new(path), mask)
    }

    /// Cancel a watch.
    pub fn unwatch(&self, id: WatchId) -> bool {
        self.notify.unwatch(id)
    }

    /// [`Self::watch_path`] with the watch descriptor charged to the caller's
    /// uid (so [`Self::reclaim`] can find it) and the caller's `max_watches`
    /// budget enforced (`EMFILE`).
    pub fn watch_path_as(
        &self,
        path: &str,
        mask: EventMask,
        creds: &Credentials,
    ) -> VfsResult<(WatchId, Receiver<Event>)> {
        self.check_watch_budget(creds, path)?;
        Ok(self
            .notify
            .watch_path_owned(&VPath::new(path), mask, creds.uid.0))
    }

    /// [`Self::watch_subtree`] with the descriptor charged to the caller.
    pub fn watch_subtree_as(
        &self,
        path: &str,
        mask: EventMask,
        creds: &Credentials,
    ) -> VfsResult<(WatchId, Receiver<Event>)> {
        self.check_watch_budget(creds, path)?;
        Ok(self
            .notify
            .watch_subtree_owned(&VPath::new(path), mask, creds.uid.0))
    }

    fn check_watch_budget(&self, creds: &Credentials, path: &str) -> VfsResult<()> {
        if let Some(l) = self.rctl.limits(creds.uid.0) {
            if let Some(cap) = l.max_watches {
                if self.notify.watches_of(creds.uid.0) as u64 >= cap {
                    return err(Errno::EMFILE, path);
                }
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------------
    // Per-process resource control (cgroup-style, keyed by uid)
    // ----------------------------------------------------------------

    /// The resource-control table (see [`crate::rctl`]).
    pub fn rctl(&self) -> &Arc<RctlTable> {
        &self.rctl
    }

    /// Install limits for `uid`: syscall-rate tokens, handle/watch caps,
    /// notify-queue quota, flow quota. The supervisor calls this when it
    /// spawns a confined process.
    pub fn set_app_limits(&self, uid: Uid, limits: AppLimits) {
        self.notify
            .set_queue_quota(uid.0, limits.notify_queue_max.map(|v| v as usize));
        self.rctl.set_limits(uid.0, limits);
    }

    /// Remove the limits for `uid` (process exited / unconfined).
    pub fn clear_app_limits(&self, uid: Uid) {
        self.notify.set_queue_quota(uid.0, None);
        self.rctl.clear_limits(uid.0);
    }

    /// Handles currently open, across all owners.
    pub fn open_handle_count(&self) -> usize {
        self.inner.read().handles.len()
    }

    /// Handles currently open and charged to `uid`.
    pub fn handles_of(&self, uid: Uid) -> usize {
        self.inner
            .read()
            .handles
            .values()
            .filter(|h| h.owner == uid)
            .count()
    }

    /// Tear down every kernel-side resource charged to `uid`: open handles
    /// (dropping now-orphaned inodes) and notify watch descriptors. This is
    /// the `KILL` path — no `CloseWrite` fires, because a killed process
    /// never reaches its commit point; half-written updates are abandoned
    /// exactly as the paper's version-file protocol intends.
    pub fn reclaim(&self, uid: Uid) -> ReclaimReport {
        let mut handles_closed = 0usize;
        let mut inodes_dropped = 0usize;
        {
            let mut inner = self.inner.write();
            let mut fds: Vec<u64> = inner
                .handles
                .iter()
                .filter(|(_, h)| h.owner == uid)
                .map(|(fd, _)| *fd)
                .collect();
            fds.sort_unstable();
            for fd in fds {
                if let Some(h) = inner.handles.remove(&fd) {
                    handles_closed += 1;
                    self.rctl.release_open(uid.0);
                    if let Some(node) = inner.inodes.get_mut(&h.ino.0) {
                        node.open_count -= 1;
                        if node.nlink == 0 && node.open_count == 0 {
                            inner.inodes.remove(&h.ino.0);
                            inodes_dropped += 1;
                        }
                    }
                }
            }
        }
        let watches_removed = self.notify.unwatch_owner(uid.0);
        ReclaimReport {
            handles_closed,
            watches_removed,
            inodes_dropped,
        }
    }

    // ----------------------------------------------------------------
    // /proc-style introspection mounts
    // ----------------------------------------------------------------

    /// Mount a read-only introspection tree at `prefix` (idempotent).
    ///
    /// Creates the directory, installs the [`ProcHook`] enforcing lazy
    /// refresh + `EROFS`, and registers the vfs's own figures beneath it:
    /// `vfs/syscalls/<op>` and `vfs/syscalls/total`, `vfs/latency/<op>`
    /// (virtual-cost histogram summaries), and `vfs/notify/{watches,queued}`.
    /// Operations on paths under the mount are exempt from syscall
    /// accounting, so reading a counter does not disturb it.
    pub fn mount_proc(&self, prefix: &str) -> VfsResult<()> {
        let prefix = prefix.trim_end_matches('/');
        if self.proc.has_mount(prefix) {
            return Ok(());
        }
        let root = Credentials::root();
        {
            let _h = HookDepth::enter();
            let _p = ProcDepth::enter();
            self.mkdir_all(prefix, Mode::DIR_DEFAULT, &root)?;
        }
        let first = !self.proc.mounted();
        self.proc.add_mount(prefix);
        if first {
            self.add_hook(Arc::new(ProcHook::new(self.proc.clone())));
        }

        // The vfs's own instruments.
        let c = self.counters.clone();
        self.proc_file(&format!("{prefix}/vfs/syscalls/total"), move || {
            format!("{}\n", c.total())
        })?;
        for &op in OpKind::all() {
            let c = self.counters.clone();
            self.proc_file(&format!("{prefix}/vfs/syscalls/{}", op.name()), move || {
                format!("{}\n", c.get(op))
            })?;
            let m = self.metrics.clone();
            self.proc_file(&format!("{prefix}/vfs/latency/{}", op.name()), move || {
                format!("{}\n", m.histogram(op).summary())
            })?;
        }
        let n = self.notify.clone();
        self.proc_file(&format!("{prefix}/vfs/notify/watches"), move || {
            format!("{}\n", n.watch_count())
        })?;
        let n = self.notify.clone();
        self.proc_file(&format!("{prefix}/vfs/notify/queued"), move || {
            format!("{}\n", n.queued_events())
        })?;
        let n = self.notify.clone();
        self.proc_file(&format!("{prefix}/vfs/notify/dropped"), move || {
            format!("{}\n", n.dropped_events())
        })?;
        let inner = self.inner.clone();
        self.proc_file(&format!("{prefix}/vfs/handles"), move || {
            format!("{}\n", inner.read().handles.len())
        })?;
        let r = self.rctl.clone();
        self.proc_file(&format!("{prefix}/vfs/rctl/throttled"), move || {
            format!("{}\n", r.throttled_total())
        })?;
        let r = self.rctl.clone();
        self.proc_file(&format!("{prefix}/vfs/rctl/refills"), move || {
            format!("{}\n", r.refills())
        })?;

        // Scopes registered before the mount get their files now.
        for (name, _) in self.metrics.scope_names() {
            if let Some(counters) = self.metrics.scope(&name) {
                let c = counters.clone();
                self.proc_file(&format!("{prefix}/scopes/{name}/total"), move || {
                    format!("{}\n", c.total())
                })?;
                let c = counters;
                self.proc_file(&format!("{prefix}/scopes/{name}/syscalls"), move || {
                    format!("{}\n", c.snapshot().report())
                })?;
            }
        }
        Ok(())
    }

    /// Register a rendered file at `path` (which must lie under an existing
    /// proc mount; `EINVAL` otherwise). Parent directories are created as
    /// needed; the file is re-rendered on every observation.
    pub fn proc_file<F>(&self, path: &str, render: F) -> VfsResult<()>
    where
        F: Fn() -> String + Send + Sync + 'static,
    {
        if !self.proc.covers(path) {
            return err(Errno::EINVAL, path);
        }
        let root = Credentials::root();
        let vp = VPath::new(path);
        {
            let _h = HookDepth::enter();
            let _p = ProcDepth::enter();
            self.mkdir_all(vp.parent().as_str(), Mode::DIR_DEFAULT, &root)?;
            self.write_file(vp.as_str(), render().as_bytes(), &root)?;
        }
        let render: ProcRender = Arc::new(render);
        self.proc.register(vp.as_str(), render);
        Ok(())
    }

    // ----------------------------------------------------------------
    // Internal helpers
    // ----------------------------------------------------------------

    /// Tally one operation on `path`. Proc-mount paths and internal proc
    /// maintenance are exempt: introspection must not disturb what it
    /// measures.
    #[inline]
    fn count(&self, op: OpKind, path: &str) {
        if ProcDepth::active() || self.proc.covers(path) {
            return;
        }
        self.counters.bump(op);
        self.metrics.record(op, path);
    }

    /// [`Self::count`], then consume one syscall-rate token for the calling
    /// uid (`EAGAIN` when its bucket is empty). Root and hook-initiated
    /// maintenance are exempt — throttling a semantic hook mid-mutation
    /// would leave the tree half-updated.
    #[inline]
    fn charge(&self, op: OpKind, path: &str, creds: &Credentials) -> VfsResult<()> {
        self.charge_uid(op, path, creds.uid)
    }

    #[inline]
    fn charge_uid(&self, op: OpKind, path: &str, uid: Uid) -> VfsResult<()> {
        if ProcDepth::active() || self.proc.covers(path) {
            return Ok(());
        }
        self.counters.bump(op);
        self.metrics.record(op, path);
        if uid.0 != 0 && !HookDepth::active() {
            self.rctl.charge_syscall(uid.0, path)?;
        }
        Ok(())
    }

    /// Give hooks a chance to materialise `path` before it is observed.
    fn pre_access(&self, path: &str) {
        if HookDepth::active() || ProcDepth::active() {
            return;
        }
        let hooks: Vec<Arc<dyn SemanticHook>> = {
            let h = self.hooks.read();
            if h.is_empty() {
                return;
            }
            h.clone()
        };
        let vp = VPath::new(path);
        for h in &hooks {
            h.pre_access(self, &vp);
        }
    }

    /// Let hooks veto a mutation of `path` (proc mounts: `EROFS`).
    fn validate_mutation(&self, path: &VPath) -> VfsResult<()> {
        self.validate_with_hooks(|h| h.validate_mutate(self, path))
    }

    fn may_access(&self, inner: &FsInner, ino: Ino, creds: &Credentials, access: Access) -> bool {
        let node = match inner.inodes.get(&ino.0) {
            Some(n) => n,
            None => return false,
        };
        check_access(
            creds,
            node.uid,
            node.gid,
            node.mode,
            node.acl.as_ref(),
            access,
        )
    }

    /// Walk `path`, resolving intermediate symlinks, checking Exec on every
    /// traversed directory. Returns the canonical parent plus final name.
    /// `follow_last`: also resolve the final component if it is a symlink.
    fn resolve(
        &self,
        inner: &FsInner,
        path: &VPath,
        creds: &Credentials,
        follow_last: bool,
    ) -> VfsResult<Resolved> {
        if path.as_str().len() > PATH_MAX {
            return err(Errno::ENAMETOOLONG, path.as_str());
        }
        if path.is_root() {
            return Ok(Resolved {
                parent_ino: ROOT_INO,
                parent_path: VPath::root(),
                name: String::new(),
                target: Some(ROOT_INO),
            });
        }

        let mut work: VecDeque<String> = path.components().map(str::to_string).collect();
        let mut cur_ino = ROOT_INO;
        let mut cur_path = VPath::root();
        let mut links = 0u32;

        loop {
            let comp = match work.pop_front() {
                Some(c) => c,
                None => {
                    // Path fully consumed by symlink expansion ending in a dir.
                    return Ok(Resolved {
                        parent_ino: cur_ino,
                        parent_path: cur_path.clone(),
                        name: String::new(),
                        target: Some(cur_ino),
                    });
                }
            };
            if comp.len() > NAME_MAX {
                return err(Errno::ENAMETOOLONG, path.as_str());
            }

            let node = inner.inode(cur_ino)?;
            let entries = match node.dir_entries() {
                Ok(e) => e,
                Err(_) => return err(Errno::ENOTDIR, cur_path.as_str()),
            };
            if !self.may_access(inner, cur_ino, creds, Access::Exec) {
                return err(Errno::EACCES, cur_path.as_str());
            }

            if comp == ".." {
                let parent = match &node.kind {
                    NodeKind::Dir { parent, .. } => *parent,
                    _ => unreachable!(),
                };
                cur_ino = parent;
                cur_path = cur_path.parent();
                continue;
            }

            let is_last = work.is_empty();
            let child = entries.get(&comp).copied();

            if is_last {
                // Follow a final symlink only when asked.
                if follow_last {
                    if let Some(ci) = child {
                        if let NodeKind::Symlink(target) = &inner.inode(ci)?.kind {
                            links += 1;
                            if links > SYMLOOP_MAX {
                                return err(Errno::ELOOP, path.as_str());
                            }
                            let t = target.clone();
                            Self::expand_symlink(&mut work, &mut cur_ino, &mut cur_path, &t);
                            continue;
                        }
                    }
                }
                return Ok(Resolved {
                    parent_ino: cur_ino,
                    parent_path: cur_path.clone(),
                    name: comp,
                    target: child,
                });
            }

            // Intermediate component must exist and be traversable.
            let ci = match child {
                Some(c) => c,
                None => return err(Errno::ENOENT, cur_path.join(&comp).as_str()),
            };
            match &inner.inode(ci)?.kind {
                NodeKind::Dir { .. } => {
                    cur_ino = ci;
                    cur_path = cur_path.join(&comp);
                }
                NodeKind::Symlink(target) => {
                    links += 1;
                    if links > SYMLOOP_MAX {
                        return err(Errno::ELOOP, path.as_str());
                    }
                    let t = target.clone();
                    Self::expand_symlink(&mut work, &mut cur_ino, &mut cur_path, &t);
                }
                NodeKind::File(_) => {
                    return err(Errno::ENOTDIR, cur_path.join(&comp).as_str());
                }
            }
        }
    }

    fn expand_symlink(
        work: &mut VecDeque<String>,
        cur_ino: &mut Ino,
        cur_path: &mut VPath,
        target: &str,
    ) {
        let tpath = if target.starts_with('/') {
            *cur_ino = ROOT_INO;
            *cur_path = VPath::root();
            VPath::new(target)
        } else {
            // Relative target: resolved against the current directory; the
            // components are queued raw so `..` handling stays lookup-time.
            VPath::new(&format!("/{target}"))
        };
        let comps: Vec<&str> = tpath.components().collect();
        for c in comps.into_iter().rev() {
            work.push_front(c.to_string());
        }
    }

    /// Resolve and require the final target to exist. Follows final symlink
    /// when `follow` is set.
    fn lookup(
        &self,
        inner: &FsInner,
        path: &VPath,
        creds: &Credentials,
        follow: bool,
    ) -> VfsResult<Ino> {
        let r = self.resolve(inner, path, creds, follow)?;
        r.target
            .ok_or_else(|| VfsError::new(Errno::ENOENT, path.as_str()))
    }

    fn run_hooks(&self, pending: Vec<PendingHook>, creds: &Credentials) {
        if pending.is_empty() || HookDepth::active() {
            return;
        }
        let hooks: Vec<Arc<dyn SemanticHook>> = self.hooks.read().clone();
        if hooks.is_empty() {
            return;
        }
        let _guard = HookDepth::enter();
        for p in pending {
            for h in &hooks {
                match &p {
                    PendingHook::Mkdir(path) => h.post_mkdir(self, path, creds),
                    PendingHook::Create(path) => h.post_create(self, path, creds),
                    PendingHook::CloseWrite(path) => h.post_close_write(self, path, creds),
                }
            }
        }
    }

    fn emit_all(&self, events: Vec<PendingEvent>) {
        for (kind, path, name) in events {
            self.notify.emit(kind, &path, name.as_deref());
        }
    }

    /// Validate a create/symlink against hooks (outside the lock).
    fn validate_with_hooks(&self, f: impl Fn(&dyn SemanticHook) -> VfsResult<()>) -> VfsResult<()> {
        if HookDepth::active() {
            return Ok(());
        }
        let hooks: Vec<Arc<dyn SemanticHook>> = self.hooks.read().clone();
        for h in &hooks {
            f(h.as_ref())?;
        }
        Ok(())
    }

    /// Sticky-directory deletion check: in a sticky dir, only the entry's
    /// owner, the dir's owner, or root may remove/rename an entry.
    fn sticky_ok(inner: &FsInner, dir: &Inode, entry_ino: Ino, creds: &Credentials) -> bool {
        if !dir.mode.sticky() || creds.is_root() {
            return true;
        }
        if creds.uid == dir.uid {
            return true;
        }
        inner
            .inodes
            .get(&entry_ino.0)
            .map(|n| n.uid == creds.uid)
            .unwrap_or(false)
    }

    // ----------------------------------------------------------------
    // Metadata operations
    // ----------------------------------------------------------------

    /// `stat(2)`: follow symlinks.
    pub fn stat(&self, path: &str, creds: &Credentials) -> VfsResult<FileStat> {
        self.pre_access(path);
        self.charge(OpKind::Stat, path, creds)?;
        self.stat_common(path, creds, true)
    }

    /// `lstat(2)`: do not follow a final symlink.
    pub fn lstat(&self, path: &str, creds: &Credentials) -> VfsResult<FileStat> {
        self.pre_access(path);
        self.charge(OpKind::Stat, path, creds)?;
        self.stat_common(path, creds, false)
    }

    fn stat_common(&self, path: &str, creds: &Credentials, follow: bool) -> VfsResult<FileStat> {
        let vp = VPath::new(path);
        let inner = self.inner.read();
        let ino = self.lookup(&inner, &vp, creds, follow)?;
        let node = inner.inode(ino)?;
        Ok(FileStat {
            ino,
            file_type: node.file_type(),
            mode: node.mode,
            uid: node.uid,
            gid: node.gid,
            size: node.size(),
            nlink: node.nlink,
            mtime: node.mtime,
            ctime: node.ctime,
        })
    }

    /// Whether `path` resolves to an existing object (symlinks followed).
    /// Does not count as a syscall on failure paths in callers' accounting —
    /// it is a `stat` and is tallied as one.
    pub fn exists(&self, path: &str, creds: &Credentials) -> bool {
        self.stat(path, creds).is_ok()
    }

    /// Resolve `path` to its canonical form (all symlinks resolved).
    pub fn canonicalize(&self, path: &str, creds: &Credentials) -> VfsResult<VPath> {
        self.charge(OpKind::Stat, path, creds)?;
        let vp = VPath::new(path);
        let inner = self.inner.read();
        let r = self.resolve(&inner, &vp, creds, true)?;
        if r.target.is_none() {
            return err(Errno::ENOENT, vp.as_str());
        }
        Ok(if r.name.is_empty() {
            r.parent_path
        } else {
            r.parent_path.join(&r.name)
        })
    }

    /// `chmod(2)`.
    pub fn chmod(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Setattr, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        let canon;
        {
            let mut inner = self.inner.write();
            let ino = self.lookup(&inner, &vp, creds, true)?;
            let now = self.clock.tick();
            let node = inner.inode_mut(ino)?;
            if !creds.is_root() && creds.uid != node.uid {
                return err(Errno::EPERM, vp.as_str());
            }
            node.mode = Mode(mode.0 & 0o7777);
            node.ctime = now;
            canon = vp.clone();
        }
        self.notify.emit(EventKind::Attrib, &canon, None);
        Ok(())
    }

    /// `chown(2)`. Only root may change the owner; the owner may change the
    /// group to one they belong to.
    pub fn chown(
        &self,
        path: &str,
        uid: Option<Uid>,
        gid: Option<Gid>,
        creds: &Credentials,
    ) -> VfsResult<()> {
        self.charge(OpKind::Setattr, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        {
            let mut inner = self.inner.write();
            let ino = self.lookup(&inner, &vp, creds, true)?;
            let now = self.clock.tick();
            let node = inner.inode_mut(ino)?;
            if let Some(u) = uid {
                if !creds.is_root() && u != node.uid {
                    return err(Errno::EPERM, vp.as_str());
                }
                node.uid = u;
            }
            if let Some(g) = gid {
                #[allow(clippy::nonminimal_bool)] // the spelled-out form mirrors POSIX wording
                if !creds.is_root() && !(creds.uid == node.uid && creds.in_group(g)) {
                    return err(Errno::EPERM, vp.as_str());
                }
                node.gid = g;
            }
            node.ctime = now;
        }
        self.notify.emit(EventKind::Attrib, &vp, None);
        Ok(())
    }

    /// Replace the ACL on `path` (owner or root only). `None` clears it.
    pub fn set_acl(&self, path: &str, acl: Option<Acl>, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Xattr, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        {
            let mut inner = self.inner.write();
            let ino = self.lookup(&inner, &vp, creds, true)?;
            let now = self.clock.tick();
            let node = inner.inode_mut(ino)?;
            if !creds.is_root() && creds.uid != node.uid {
                return err(Errno::EPERM, vp.as_str());
            }
            node.acl = acl.filter(|a| !a.is_empty());
            node.ctime = now;
        }
        self.notify.emit(EventKind::Attrib, &vp, None);
        Ok(())
    }

    /// Read the ACL on `path` (requires Read access).
    pub fn get_acl(&self, path: &str, creds: &Credentials) -> VfsResult<Option<Acl>> {
        self.charge(OpKind::Xattr, path, creds)?;
        let vp = VPath::new(path);
        let inner = self.inner.read();
        let ino = self.lookup(&inner, &vp, creds, true)?;
        if !self.may_access(&inner, ino, creds, Access::Read) {
            return err(Errno::EACCES, vp.as_str());
        }
        Ok(inner.inode(ino)?.acl.clone())
    }

    // ----------------------------------------------------------------
    // Extended attributes (paper §5.1: arbitrary developer metadata; yanc
    // uses them to declare consistency requirements consumed by the DFS).
    // ----------------------------------------------------------------

    /// `setxattr(2)`-alike. Requires Write access to the object.
    pub fn set_xattr(
        &self,
        path: &str,
        name: &str,
        value: &[u8],
        creds: &Credentials,
    ) -> VfsResult<()> {
        self.charge(OpKind::Xattr, path, creds)?;
        if name.is_empty() || name.len() > NAME_MAX {
            return err(Errno::EINVAL, name);
        }
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        {
            let mut inner = self.inner.write();
            let ino = self.lookup(&inner, &vp, creds, true)?;
            if !self.may_access(&inner, ino, creds, Access::Write) {
                return err(Errno::EACCES, vp.as_str());
            }
            let now = self.clock.tick();
            let node = inner.inode_mut(ino)?;
            node.xattrs.insert(name.to_string(), value.to_vec());
            node.ctime = now;
        }
        self.notify.emit(EventKind::Attrib, &vp, None);
        Ok(())
    }

    /// `getxattr(2)`-alike; `ENODATA` when absent.
    pub fn get_xattr(&self, path: &str, name: &str, creds: &Credentials) -> VfsResult<Vec<u8>> {
        self.charge(OpKind::Xattr, path, creds)?;
        let vp = VPath::new(path);
        let inner = self.inner.read();
        let ino = self.lookup(&inner, &vp, creds, true)?;
        if !self.may_access(&inner, ino, creds, Access::Read) {
            return err(Errno::EACCES, vp.as_str());
        }
        inner
            .inode(ino)?
            .xattrs
            .get(name)
            .cloned()
            .ok_or_else(|| VfsError::new(Errno::ENODATA, format!("{path}#{name}")))
    }

    /// `listxattr(2)`-alike.
    pub fn list_xattr(&self, path: &str, creds: &Credentials) -> VfsResult<Vec<String>> {
        self.charge(OpKind::Xattr, path, creds)?;
        let vp = VPath::new(path);
        let inner = self.inner.read();
        let ino = self.lookup(&inner, &vp, creds, true)?;
        if !self.may_access(&inner, ino, creds, Access::Read) {
            return err(Errno::EACCES, vp.as_str());
        }
        Ok(inner.inode(ino)?.xattrs.keys().cloned().collect())
    }

    /// `removexattr(2)`-alike; `ENODATA` when absent.
    pub fn remove_xattr(&self, path: &str, name: &str, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Xattr, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        {
            let mut inner = self.inner.write();
            let ino = self.lookup(&inner, &vp, creds, true)?;
            if !self.may_access(&inner, ino, creds, Access::Write) {
                return err(Errno::EACCES, vp.as_str());
            }
            let now = self.clock.tick();
            let node = inner.inode_mut(ino)?;
            if node.xattrs.remove(name).is_none() {
                return err(Errno::ENODATA, format!("{path}#{name}"));
            }
            node.ctime = now;
        }
        self.notify.emit(EventKind::Attrib, &vp, None);
        Ok(())
    }

    // ----------------------------------------------------------------
    // Directory operations
    // ----------------------------------------------------------------

    /// `mkdir(2)`.
    pub fn mkdir(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Mkdir, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        let full;
        {
            let mut inner = self.inner.write();
            let r = self.resolve(&inner, &vp, creds, false)?;
            if r.name.is_empty() {
                return err(Errno::EEXIST, vp.as_str());
            }
            if !valid_name(&r.name) {
                return err(Errno::EINVAL, vp.as_str());
            }
            if r.target.is_some() {
                return err(Errno::EEXIST, vp.as_str());
            }
            if !self.may_access(&inner, r.parent_ino, creds, Access::Write) {
                return err(Errno::EACCES, r.parent_path.as_str());
            }
            if inner.inode(r.parent_ino)?.dir_entries()?.len() >= self.limits.max_dir_entries {
                return err(Errno::EDQUOT, r.parent_path.as_str());
            }
            let now = self.clock.tick();
            let ino = inner.alloc_ino();
            inner.inodes.insert(
                ino.0,
                Inode {
                    kind: NodeKind::Dir {
                        entries: BTreeMap::new(),
                        parent: r.parent_ino,
                    },
                    mode: Mode(mode.0 & 0o7777),
                    uid: creds.uid,
                    gid: creds.gid,
                    nlink: 2,
                    mtime: now,
                    ctime: now,
                    xattrs: BTreeMap::new(),
                    acl: None,
                    open_count: 0,
                },
            );
            let parent = inner.inode_mut(r.parent_ino)?;
            parent.dir_entries_mut()?.insert(r.name.clone(), ino);
            parent.nlink += 1;
            parent.mtime = now;
            full = r.parent_path.join(&r.name);
        }
        self.notify.emit(EventKind::Create, &full, full.file_name());
        self.run_hooks(vec![PendingHook::Mkdir(full)], creds);
        Ok(())
    }

    /// `mkdir -p`: create every missing ancestor; existing directories are
    /// fine, an existing non-directory is `ENOTDIR`/`EEXIST`.
    pub fn mkdir_all(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        let vp = VPath::new(path);
        let mut cur = VPath::root();
        for comp in vp.components() {
            cur = cur.join(comp);
            match self.mkdir(cur.as_str(), mode, creds) {
                Ok(()) => {}
                Err(e) if e.errno == Errno::EEXIST => {
                    let st = self.stat(cur.as_str(), creds)?;
                    if !st.is_dir() {
                        return err(Errno::ENOTDIR, cur.as_str());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// `rmdir(2)`. If a registered hook declares `path` recursively
    /// removable (paper: switch directories), the whole subtree is removed.
    pub fn rmdir(&self, path: &str, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Rmdir, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        let recursive =
            !HookDepth::active() && self.hooks.read().iter().any(|h| h.rmdir_recursive(&vp));
        let mut events: Vec<PendingEvent> = Vec::new();
        {
            let mut inner = self.inner.write();
            let r = self.resolve(&inner, &vp, creds, false)?;
            if r.name.is_empty() {
                return err(Errno::EINVAL, vp.as_str()); // refusing to rmdir /
            }
            let ino = r
                .target
                .ok_or_else(|| VfsError::new(Errno::ENOENT, vp.as_str()))?;
            let node = inner.inode(ino)?;
            if node.file_type() != FileType::Directory {
                return err(Errno::ENOTDIR, vp.as_str());
            }
            if !self.may_access(&inner, r.parent_ino, creds, Access::Write) {
                return err(Errno::EACCES, r.parent_path.as_str());
            }
            if !Self::sticky_ok(&inner, inner.inode(r.parent_ino)?, ino, creds) {
                return err(Errno::EPERM, vp.as_str());
            }
            let empty = node.dir_entries()?.is_empty();
            if !empty && !recursive {
                return err(Errno::ENOTEMPTY, vp.as_str());
            }
            let full = r.parent_path.join(&r.name);
            if !empty {
                Self::remove_tree(&mut inner, ino, &full, &mut events)?;
            }
            let parent = inner.inode_mut(r.parent_ino)?;
            parent.dir_entries_mut()?.remove(&r.name);
            parent.nlink -= 1;
            parent.mtime = self.clock.tick();
            inner.inodes.remove(&ino.0);
            events.push((EventKind::DeleteSelf, full.clone(), None));
            events.push((EventKind::Delete, full.clone(), Some(r.name.clone())));
        }
        self.emit_all(events);
        Ok(())
    }

    /// Remove everything under `ino` (which stays in place), bottom-up,
    /// accumulating Delete events.
    fn remove_tree(
        inner: &mut FsInner,
        ino: Ino,
        path: &VPath,
        events: &mut Vec<PendingEvent>,
    ) -> VfsResult<()> {
        let children: Vec<(String, Ino)> = inner
            .inode(ino)?
            .dir_entries()?
            .iter()
            .map(|(n, i)| (n.clone(), *i))
            .collect();
        for (name, child) in children {
            let cpath = path.join(&name);
            let is_dir = matches!(inner.inode(child)?.kind, NodeKind::Dir { .. });
            if is_dir {
                Self::remove_tree(inner, child, &cpath, events)?;
                inner.inodes.remove(&child.0);
                let node = inner.inode_mut(ino)?;
                node.nlink -= 1;
                node.dir_entries_mut()?.remove(&name);
            } else {
                let open = {
                    let cn = inner.inode_mut(child)?;
                    cn.nlink = cn.nlink.saturating_sub(1);
                    cn.nlink > 0 || cn.open_count > 0
                };
                if !open {
                    inner.inodes.remove(&child.0);
                }
                inner.inode_mut(ino)?.dir_entries_mut()?.remove(&name);
            }
            events.push((EventKind::Delete, cpath, Some(name)));
        }
        Ok(())
    }

    /// `readdir(3)`: list a directory (requires Read access).
    pub fn readdir(&self, path: &str, creds: &Credentials) -> VfsResult<Vec<DirEntry>> {
        self.pre_access(path);
        self.charge(OpKind::Readdir, path, creds)?;
        let vp = VPath::new(path);
        let inner = self.inner.read();
        let ino = self.lookup(&inner, &vp, creds, true)?;
        if !self.may_access(&inner, ino, creds, Access::Read) {
            return err(Errno::EACCES, vp.as_str());
        }
        let node = inner.inode(ino)?;
        let entries = node
            .dir_entries()
            .map_err(|_| VfsError::new(Errno::ENOTDIR, path))?;
        Ok(entries
            .iter()
            .map(|(name, i)| {
                let ft = inner
                    .inodes
                    .get(&i.0)
                    .map(|n| n.file_type())
                    .unwrap_or(FileType::Regular);
                DirEntry {
                    name: name.clone(),
                    ino: *i,
                    file_type: ft,
                }
            })
            .collect())
    }

    // ----------------------------------------------------------------
    // Symlinks & hard links
    // ----------------------------------------------------------------

    /// `symlink(2)`: create `linkpath` pointing at `target` (not required to
    /// exist). Registered hooks may veto schema-invalid links.
    pub fn symlink(&self, target: &str, linkpath: &str, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Symlink, linkpath, creds)?;
        let vp = VPath::new(linkpath);
        self.validate_mutation(&vp)?;
        self.validate_with_hooks(|h| h.validate_symlink(self, &vp, target))?;
        let full;
        {
            let mut inner = self.inner.write();
            let r = self.resolve(&inner, &vp, creds, false)?;
            if r.name.is_empty() || !valid_name(&r.name) {
                return err(Errno::EINVAL, vp.as_str());
            }
            if r.target.is_some() {
                return err(Errno::EEXIST, vp.as_str());
            }
            if !self.may_access(&inner, r.parent_ino, creds, Access::Write) {
                return err(Errno::EACCES, r.parent_path.as_str());
            }
            let now = self.clock.tick();
            let ino = inner.alloc_ino();
            inner.inodes.insert(
                ino.0,
                Inode {
                    kind: NodeKind::Symlink(target.to_string()),
                    mode: Mode::SYMLINK,
                    uid: creds.uid,
                    gid: creds.gid,
                    nlink: 1,
                    mtime: now,
                    ctime: now,
                    xattrs: BTreeMap::new(),
                    acl: None,
                    open_count: 0,
                },
            );
            let parent = inner.inode_mut(r.parent_ino)?;
            parent.dir_entries_mut()?.insert(r.name.clone(), ino);
            parent.mtime = now;
            full = r.parent_path.join(&r.name);
        }
        self.notify.emit(EventKind::Create, &full, full.file_name());
        Ok(())
    }

    /// `readlink(2)`.
    pub fn readlink(&self, path: &str, creds: &Credentials) -> VfsResult<String> {
        self.charge(OpKind::Readlink, path, creds)?;
        let vp = VPath::new(path);
        let inner = self.inner.read();
        let ino = self.lookup(&inner, &vp, creds, false)?;
        match &inner.inode(ino)?.kind {
            NodeKind::Symlink(t) => Ok(t.clone()),
            _ => err(Errno::EINVAL, path),
        }
    }

    /// `link(2)`: hard link (regular files only, as on Linux).
    pub fn link(&self, existing: &str, newpath: &str, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Link, newpath, creds)?;
        let vp_old = VPath::new(existing);
        let vp_new = VPath::new(newpath);
        self.validate_mutation(&vp_new)?;
        let full;
        {
            let mut inner = self.inner.write();
            let src = self.lookup(&inner, &vp_old, creds, true)?;
            match inner.inode(src)?.kind {
                NodeKind::File(_) => {}
                NodeKind::Dir { .. } => return err(Errno::EPERM, existing),
                NodeKind::Symlink(_) => return err(Errno::EPERM, existing),
            }
            if inner.inode(src)?.nlink >= LINK_MAX {
                return err(Errno::EMLINK, existing);
            }
            let r = self.resolve(&inner, &vp_new, creds, false)?;
            if r.name.is_empty() || !valid_name(&r.name) {
                return err(Errno::EINVAL, vp_new.as_str());
            }
            if r.target.is_some() {
                return err(Errno::EEXIST, vp_new.as_str());
            }
            if !self.may_access(&inner, r.parent_ino, creds, Access::Write) {
                return err(Errno::EACCES, r.parent_path.as_str());
            }
            let now = self.clock.tick();
            inner.inode_mut(src)?.nlink += 1;
            inner.inode_mut(src)?.ctime = now;
            let parent = inner.inode_mut(r.parent_ino)?;
            parent.dir_entries_mut()?.insert(r.name.clone(), src);
            parent.mtime = now;
            full = r.parent_path.join(&r.name);
        }
        self.notify.emit(EventKind::Create, &full, full.file_name());
        Ok(())
    }

    // ----------------------------------------------------------------
    // File create / unlink / rename
    // ----------------------------------------------------------------

    /// `unlink(2)`.
    pub fn unlink(&self, path: &str, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Unlink, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        let mut events: Vec<PendingEvent> = Vec::new();
        {
            let mut inner = self.inner.write();
            let r = self.resolve(&inner, &vp, creds, false)?;
            let ino = r
                .target
                .ok_or_else(|| VfsError::new(Errno::ENOENT, vp.as_str()))?;
            if matches!(inner.inode(ino)?.kind, NodeKind::Dir { .. }) {
                return err(Errno::EISDIR, vp.as_str());
            }
            if !self.may_access(&inner, r.parent_ino, creds, Access::Write) {
                return err(Errno::EACCES, r.parent_path.as_str());
            }
            if !Self::sticky_ok(&inner, inner.inode(r.parent_ino)?, ino, creds) {
                return err(Errno::EPERM, vp.as_str());
            }
            let now = self.clock.tick();
            let parent = inner.inode_mut(r.parent_ino)?;
            parent.dir_entries_mut()?.remove(&r.name);
            parent.mtime = now;
            let full = r.parent_path.join(&r.name);
            let node = inner.inode_mut(ino)?;
            node.nlink -= 1;
            node.ctime = now;
            let gone = node.nlink == 0 && node.open_count == 0;
            if gone {
                inner.inodes.remove(&ino.0);
                events.push((EventKind::DeleteSelf, full.clone(), None));
            }
            events.push((EventKind::Delete, full.clone(), Some(r.name.clone())));
        }
        self.emit_all(events);
        Ok(())
    }

    /// `rename(2)`, with POSIX replace semantics: an existing target is
    /// atomically replaced when types are compatible (file→file,
    /// dir→empty dir); a directory cannot be moved into its own subtree.
    pub fn rename(&self, from: &str, to: &str, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Rename, from, creds)?;
        let vf = VPath::new(from);
        let vt = VPath::new(to);
        self.validate_mutation(&vf)?;
        self.validate_mutation(&vt)?;
        let mut events: Vec<PendingEvent> = Vec::new();
        {
            let mut inner = self.inner.write();
            let rf = self.resolve(&inner, &vf, creds, false)?;
            let src = rf
                .target
                .ok_or_else(|| VfsError::new(Errno::ENOENT, vf.as_str()))?;
            if rf.name.is_empty() {
                return err(Errno::EINVAL, vf.as_str());
            }
            let rt = self.resolve(&inner, &vt, creds, false)?;
            if rt.name.is_empty() || !valid_name(&rt.name) {
                return err(Errno::EINVAL, vt.as_str());
            }
            if !self.may_access(&inner, rf.parent_ino, creds, Access::Write) {
                return err(Errno::EACCES, rf.parent_path.as_str());
            }
            if !self.may_access(&inner, rt.parent_ino, creds, Access::Write) {
                return err(Errno::EACCES, rt.parent_path.as_str());
            }
            if !Self::sticky_ok(&inner, inner.inode(rf.parent_ino)?, src, creds) {
                return err(Errno::EPERM, vf.as_str());
            }
            let src_is_dir = matches!(inner.inode(src)?.kind, NodeKind::Dir { .. });
            let src_full = rf.parent_path.join(&rf.name);
            let dst_full = rt.parent_path.join(&rt.name);
            if src_full == dst_full {
                return Ok(()); // no-op rename to self
            }
            if src_is_dir && dst_full.starts_with(&src_full) {
                return err(Errno::EINVAL, vt.as_str());
            }

            // Handle an existing destination.
            if let Some(dst) = rt.target {
                if dst == src {
                    return Ok(()); // hard links to the same inode: no-op
                }
                let dst_is_dir = matches!(inner.inode(dst)?.kind, NodeKind::Dir { .. });
                match (src_is_dir, dst_is_dir) {
                    (true, false) => return err(Errno::ENOTDIR, vt.as_str()),
                    (false, true) => return err(Errno::EISDIR, vt.as_str()),
                    (true, true) => {
                        if !inner.inode(dst)?.dir_entries()?.is_empty() {
                            return err(Errno::ENOTEMPTY, vt.as_str());
                        }
                        inner.inode_mut(rt.parent_ino)?.nlink -= 1;
                        inner.inodes.remove(&dst.0);
                    }
                    (false, false) => {
                        let node = inner.inode_mut(dst)?;
                        node.nlink -= 1;
                        if node.nlink == 0 && node.open_count == 0 {
                            inner.inodes.remove(&dst.0);
                        }
                    }
                }
                events.push((EventKind::Delete, dst_full.clone(), Some(rt.name.clone())));
            }

            let now = self.clock.tick();
            {
                let pf = inner.inode_mut(rf.parent_ino)?;
                pf.dir_entries_mut()?.remove(&rf.name);
                pf.mtime = now;
            }
            {
                let pt = inner.inode_mut(rt.parent_ino)?;
                pt.dir_entries_mut()?.insert(rt.name.clone(), src);
                pt.mtime = now;
            }
            if src_is_dir && rf.parent_ino != rt.parent_ino {
                // Fix `..` and parent link counts.
                inner.inode_mut(rf.parent_ino)?.nlink -= 1;
                inner.inode_mut(rt.parent_ino)?.nlink += 1;
                if let NodeKind::Dir { parent, .. } = &mut inner.inode_mut(src)?.kind {
                    *parent = rt.parent_ino;
                }
            }
            inner.inode_mut(src)?.ctime = now;
            events.push((EventKind::MovedFrom, src_full, Some(rf.name.clone())));
            events.push((EventKind::MovedTo, dst_full, Some(rt.name.clone())));
        }
        self.emit_all(events);
        Ok(())
    }

    // ----------------------------------------------------------------
    // Open-file I/O
    // ----------------------------------------------------------------

    /// `open(2)`.
    pub fn open(&self, path: &str, flags: OpenFlags, creds: &Credentials) -> VfsResult<Fd> {
        self.pre_access(path);
        self.charge(OpKind::Open, path, creds)?;
        let vp = VPath::new(path);
        if flags.write || flags.create || flags.truncate || flags.append {
            self.validate_mutation(&vp)?;
        }
        let mut created_path: Option<VPath> = None;
        let mut modified = false;
        let fd;
        {
            let mut inner = self.inner.write();
            if inner.handles.len() >= self.limits.max_open_files {
                return err(Errno::ENFILE, vp.as_str());
            }
            let r = self.resolve(&inner, &vp, creds, true)?;
            let full = if r.name.is_empty() {
                r.parent_path.clone()
            } else {
                r.parent_path.join(&r.name)
            };
            let ino = match r.target {
                Some(i) => {
                    if flags.create && flags.excl {
                        return err(Errno::EEXIST, vp.as_str());
                    }
                    let node = inner.inode(i)?;
                    match node.kind {
                        NodeKind::Dir { .. } if flags.write => {
                            return err(Errno::EISDIR, vp.as_str())
                        }
                        NodeKind::Dir { .. } => return err(Errno::EISDIR, vp.as_str()),
                        _ => {}
                    }
                    if flags.read && !self.may_access(&inner, i, creds, Access::Read) {
                        return err(Errno::EACCES, vp.as_str());
                    }
                    if flags.write && !self.may_access(&inner, i, creds, Access::Write) {
                        return err(Errno::EACCES, vp.as_str());
                    }
                    if flags.truncate && flags.write {
                        let now = self.clock.tick();
                        let node = inner.inode_mut(i)?;
                        if let NodeKind::File(d) = &mut node.kind {
                            if !d.is_empty() {
                                d.clear();
                                node.mtime = now;
                                modified = true;
                            }
                        }
                    }
                    i
                }
                None => {
                    if !flags.create {
                        return err(Errno::ENOENT, vp.as_str());
                    }
                    if !valid_name(&r.name) {
                        return err(Errno::EINVAL, vp.as_str());
                    }
                    drop(inner); // validate_create hooks may read the fs
                    self.validate_with_hooks(|h| h.validate_create(self, &full))?;
                    inner = self.inner.write();
                    // Re-resolve: the world may have changed while unlocked.
                    let r2 = self.resolve(&inner, &vp, creds, true)?;
                    if let Some(i) = r2.target {
                        if flags.excl {
                            return err(Errno::EEXIST, vp.as_str());
                        }
                        // The target raced into existence: apply the same
                        // checks the existing-file branch performs.
                        if matches!(inner.inode(i)?.kind, NodeKind::Dir { .. }) {
                            return err(Errno::EISDIR, vp.as_str());
                        }
                        if flags.read && !self.may_access(&inner, i, creds, Access::Read) {
                            return err(Errno::EACCES, vp.as_str());
                        }
                        if flags.write && !self.may_access(&inner, i, creds, Access::Write) {
                            return err(Errno::EACCES, vp.as_str());
                        }
                        i
                    } else {
                        if !self.may_access(&inner, r2.parent_ino, creds, Access::Write) {
                            return err(Errno::EACCES, r2.parent_path.as_str());
                        }
                        if inner.inode(r2.parent_ino)?.dir_entries()?.len()
                            >= self.limits.max_dir_entries
                        {
                            return err(Errno::EDQUOT, r2.parent_path.as_str());
                        }
                        let now = self.clock.tick();
                        let ino = inner.alloc_ino();
                        inner.inodes.insert(
                            ino.0,
                            Inode {
                                kind: NodeKind::File(Vec::new()),
                                mode: Mode::FILE_DEFAULT,
                                uid: creds.uid,
                                gid: creds.gid,
                                nlink: 1,
                                mtime: now,
                                ctime: now,
                                xattrs: BTreeMap::new(),
                                acl: None,
                                open_count: 0,
                            },
                        );
                        let parent = inner.inode_mut(r2.parent_ino)?;
                        parent.dir_entries_mut()?.insert(r2.name.clone(), ino);
                        parent.mtime = now;
                        created_path = Some(r2.parent_path.join(&r2.name));
                        ino
                    }
                }
            };
            // Per-uid handle budget, charged at the last fallible point so a
            // failed open never leaks a slot.
            self.rctl.charge_open(creds.uid.0, vp.as_str())?;
            inner.inode_mut(ino)?.open_count += 1;
            let id = inner.next_fd;
            inner.next_fd += 1;
            inner.handles.insert(
                id,
                OpenFile {
                    ino,
                    flags,
                    offset: 0,
                    path: full,
                    wrote: false,
                    owner: creds.uid,
                },
            );
            fd = Fd(id);
        }
        if let Some(p) = &created_path {
            self.notify.emit(EventKind::Create, p, p.file_name());
            self.run_hooks(vec![PendingHook::Create(p.clone())], creds);
        }
        if modified {
            self.notify.emit(EventKind::Modify, &vp, None);
        }
        Ok(fd)
    }

    /// `read(2)`: up to `len` bytes from the handle's offset.
    pub fn read(&self, fd: Fd, len: usize) -> VfsResult<Vec<u8>> {
        let mut inner = self.inner.write();
        let howner = inner.handles.get(&fd.0).map(|h| h.owner).unwrap_or(Uid(0));
        let hpath = inner.handles.get(&fd.0).map(|h| h.path.as_str().to_owned());
        self.charge_uid(OpKind::Read, hpath.as_deref().unwrap_or(""), howner)?;
        let h = inner
            .handles
            .get(&fd.0)
            .ok_or_else(|| VfsError::new(Errno::EBADF, "fd"))?;
        if !h.flags.read {
            return err(Errno::EBADF, h.path.as_str());
        }
        let (ino, off) = (h.ino, h.offset);
        let data = match &inner.inode(ino)?.kind {
            NodeKind::File(d) => {
                let start = (off as usize).min(d.len());
                let end = (start + len).min(d.len());
                d[start..end].to_vec()
            }
            _ => return err(Errno::EINVAL, "fd"),
        };
        let n = data.len() as u64;
        inner.handles.get_mut(&fd.0).unwrap().offset += n;
        Ok(data)
    }

    /// `write(2)` at the handle's offset (end of file with `append`).
    pub fn write(&self, fd: Fd, data: &[u8]) -> VfsResult<usize> {
        let path;
        {
            let mut inner = self.inner.write();
            let howner = inner.handles.get(&fd.0).map(|h| h.owner).unwrap_or(Uid(0));
            let hpath = inner.handles.get(&fd.0).map(|h| h.path.as_str().to_owned());
            self.charge_uid(OpKind::Write, hpath.as_deref().unwrap_or(""), howner)?;
            let h = inner
                .handles
                .get(&fd.0)
                .ok_or_else(|| VfsError::new(Errno::EBADF, "fd"))?;
            if !h.flags.write {
                return err(Errno::EBADF, h.path.as_str());
            }
            let (ino, append) = (h.ino, h.flags.append);
            let off = if append {
                match &inner.inode(ino)?.kind {
                    NodeKind::File(d) => d.len() as u64,
                    _ => return err(Errno::EINVAL, "fd"),
                }
            } else {
                h.offset
            };
            let end = off as usize + data.len();
            if end as u64 > self.limits.max_file_size {
                return err(Errno::ENOSPC, "fd");
            }
            let now = self.clock.tick();
            let node = inner.inode_mut(ino)?;
            match &mut node.kind {
                NodeKind::File(d) => {
                    if d.len() < end {
                        d.resize(end, 0);
                    }
                    d[off as usize..end].copy_from_slice(data);
                    node.mtime = now;
                }
                _ => return err(Errno::EINVAL, "fd"),
            }
            let h = inner.handles.get_mut(&fd.0).unwrap();
            h.offset = end as u64;
            h.wrote = true;
            path = h.path.clone();
        }
        self.notify.emit(EventKind::Modify, &path, None);
        Ok(data.len())
    }

    /// `lseek(2)` (absolute positioning only; returns the new offset).
    pub fn seek(&self, fd: Fd, offset: u64) -> VfsResult<u64> {
        let mut inner = self.inner.write();
        let h = inner
            .handles
            .get_mut(&fd.0)
            .ok_or_else(|| VfsError::new(Errno::EBADF, "fd"))?;
        h.offset = offset;
        Ok(offset)
    }

    /// `close(2)`. Emits `CloseWrite` (and fires `post_close_write` hooks)
    /// when the handle performed writes.
    pub fn close(&self, fd: Fd, creds: &Credentials) -> VfsResult<()> {
        let (wrote, path);
        {
            let mut inner = self.inner.write();
            let hpath = inner.handles.get(&fd.0).map(|h| h.path.as_str().to_owned());
            self.count(OpKind::Close, hpath.as_deref().unwrap_or(""));
            let h = inner
                .handles
                .remove(&fd.0)
                .ok_or_else(|| VfsError::new(Errno::EBADF, "fd"))?;
            self.rctl.release_open(h.owner.0);
            wrote = h.wrote;
            path = h.path.clone();
            let gone = {
                let node = inner.inode_mut(h.ino)?;
                node.open_count -= 1;
                node.nlink == 0 && node.open_count == 0
            };
            if gone {
                inner.inodes.remove(&h.ino.0);
            }
        }
        if wrote {
            self.notify
                .emit(EventKind::CloseWrite, &path, path.file_name());
            self.run_hooks(vec![PendingHook::CloseWrite(path)], creds);
        }
        Ok(())
    }

    /// `truncate(2)` by path.
    pub fn truncate(&self, path: &str, len: u64, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Truncate, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        {
            let mut inner = self.inner.write();
            let ino = self.lookup(&inner, &vp, creds, true)?;
            if !self.may_access(&inner, ino, creds, Access::Write) {
                return err(Errno::EACCES, vp.as_str());
            }
            if len > self.limits.max_file_size {
                return err(Errno::ENOSPC, vp.as_str());
            }
            let now = self.clock.tick();
            let node = inner.inode_mut(ino)?;
            match &mut node.kind {
                NodeKind::File(d) => {
                    d.resize(len as usize, 0);
                    node.mtime = now;
                }
                NodeKind::Dir { .. } => return err(Errno::EISDIR, vp.as_str()),
                NodeKind::Symlink(_) => return err(Errno::EINVAL, vp.as_str()),
            }
        }
        self.notify.emit(EventKind::Modify, &vp, None);
        Ok(())
    }

    // ----------------------------------------------------------------
    // Whole-file convenience (each layer counts its constituent syscalls,
    // like a real open/write/close sequence would)
    // ----------------------------------------------------------------

    /// Read a whole file. The read is sized by a preceding `stat`, so
    /// bytes appended concurrently between the two calls are not observed
    /// (matching the common `stat`+`read` user-space pattern).
    pub fn read_file(&self, path: &str, creds: &Credentials) -> VfsResult<Vec<u8>> {
        let fd = self.open(path, OpenFlags::read_only(), creds)?;
        let size = {
            // One read sized by stat, one close: 3 "syscalls" total with the
            // open — the realistic small-file sequence.
            let st = self.stat(path, creds)?;
            st.size as usize
        };
        let out = self.read(fd, size.max(1));
        let _ = self.close(fd, creds);
        out
    }

    /// Read a whole file as UTF-8 (lossy).
    pub fn read_to_string(&self, path: &str, creds: &Credentials) -> VfsResult<String> {
        Ok(String::from_utf8_lossy(&self.read_file(path, creds)?).into_owned())
    }

    /// Create/truncate `path` and write `data` — the `echo x > file` shape.
    pub fn write_file(&self, path: &str, data: &[u8], creds: &Credentials) -> VfsResult<()> {
        let fd = self.open(path, OpenFlags::write_create(), creds)?;
        let r = self.write(fd, data);
        let c = self.close(fd, creds);
        r?;
        c
    }

    /// Append `data` to `path`, creating it if needed (`echo x >> file`).
    pub fn append_file(&self, path: &str, data: &[u8], creds: &Credentials) -> VfsResult<()> {
        let fd = self.open(path, OpenFlags::append_create(), creds)?;
        let r = self.write(fd, data);
        let c = self.close(fd, creds);
        r?;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Filesystem {
        Filesystem::new()
    }

    fn root() -> Credentials {
        Credentials::root()
    }

    #[test]
    fn root_exists_and_stats() {
        let f = fs();
        let st = f.stat("/", &root()).unwrap();
        assert!(st.is_dir());
        assert_eq!(st.ino, ROOT_INO);
        assert_eq!(st.nlink, 2);
    }

    #[test]
    fn mkdir_and_readdir() {
        let f = fs();
        f.mkdir("/net", Mode::DIR_DEFAULT, &root()).unwrap();
        f.mkdir("/net/switches", Mode::DIR_DEFAULT, &root())
            .unwrap();
        let names: Vec<String> = f
            .readdir("/net", &root())
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["switches"]);
        assert!(f.stat("/net/switches", &root()).unwrap().is_dir());
    }

    #[test]
    fn mkdir_errors() {
        let f = fs();
        f.mkdir("/a", Mode::DIR_DEFAULT, &root()).unwrap();
        assert_eq!(
            f.mkdir("/a", Mode::DIR_DEFAULT, &root()).unwrap_err().errno,
            Errno::EEXIST
        );
        assert_eq!(
            f.mkdir("/missing/x", Mode::DIR_DEFAULT, &root())
                .unwrap_err()
                .errno,
            Errno::ENOENT
        );
        f.write_file("/a/f", b"x", &root()).unwrap();
        assert_eq!(
            f.mkdir("/a/f/sub", Mode::DIR_DEFAULT, &root())
                .unwrap_err()
                .errno,
            Errno::ENOTDIR
        );
    }

    #[test]
    fn mkdir_all_idempotent() {
        let f = fs();
        f.mkdir_all("/net/switches/sw1/flows", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.mkdir_all("/net/switches/sw1/flows", Mode::DIR_DEFAULT, &root())
            .unwrap();
        assert!(f.stat("/net/switches/sw1/flows", &root()).unwrap().is_dir());
        f.write_file("/net/file", b"", &root()).unwrap();
        assert!(f
            .mkdir_all("/net/file/x", Mode::DIR_DEFAULT, &root())
            .is_err());
    }

    #[test]
    fn file_write_read_roundtrip() {
        let f = fs();
        f.write_file("/hello", b"world", &root()).unwrap();
        assert_eq!(f.read_file("/hello", &root()).unwrap(), b"world");
        assert_eq!(f.read_to_string("/hello", &root()).unwrap(), "world");
        let st = f.stat("/hello", &root()).unwrap();
        assert!(st.is_file());
        assert_eq!(st.size, 5);
    }

    #[test]
    fn append_and_truncate() {
        let f = fs();
        f.write_file("/log", b"a", &root()).unwrap();
        f.append_file("/log", b"b", &root()).unwrap();
        assert_eq!(f.read_file("/log", &root()).unwrap(), b"ab");
        f.truncate("/log", 1, &root()).unwrap();
        assert_eq!(f.read_file("/log", &root()).unwrap(), b"a");
        f.truncate("/log", 3, &root()).unwrap();
        assert_eq!(f.read_file("/log", &root()).unwrap(), b"a\0\0");
    }

    #[test]
    fn open_flags_semantics() {
        let f = fs();
        f.write_file("/f", b"data", &root()).unwrap();
        // excl on existing file
        let mut fl = OpenFlags::write_create();
        fl.excl = true;
        assert_eq!(f.open("/f", fl, &root()).unwrap_err().errno, Errno::EEXIST);
        // read on missing file
        assert_eq!(
            f.open("/missing", OpenFlags::read_only(), &root())
                .unwrap_err()
                .errno,
            Errno::ENOENT
        );
        // writing via read-only handle
        let fd = f.open("/f", OpenFlags::read_only(), &root()).unwrap();
        assert_eq!(f.write(fd, b"x").unwrap_err().errno, Errno::EBADF);
        f.close(fd, &root()).unwrap();
        // reading via write-only handle
        let fd = f.open("/f", OpenFlags::write_create(), &root()).unwrap();
        assert_eq!(f.read(fd, 1).unwrap_err().errno, Errno::EBADF);
        f.close(fd, &root()).unwrap();
        // double close
        assert_eq!(f.close(fd, &root()).unwrap_err().errno, Errno::EBADF);
    }

    #[test]
    fn partial_reads_and_seek() {
        let f = fs();
        f.write_file("/f", b"abcdef", &root()).unwrap();
        let fd = f.open("/f", OpenFlags::read_only(), &root()).unwrap();
        assert_eq!(f.read(fd, 2).unwrap(), b"ab");
        assert_eq!(f.read(fd, 2).unwrap(), b"cd");
        f.seek(fd, 1).unwrap();
        assert_eq!(f.read(fd, 100).unwrap(), b"bcdef");
        assert_eq!(f.read(fd, 10).unwrap(), b"");
        f.close(fd, &root()).unwrap();
    }

    #[test]
    fn unlink_semantics() {
        let f = fs();
        f.write_file("/f", b"x", &root()).unwrap();
        f.unlink("/f", &root()).unwrap();
        assert!(!f.exists("/f", &root()));
        assert_eq!(f.unlink("/f", &root()).unwrap_err().errno, Errno::ENOENT);
        f.mkdir("/d", Mode::DIR_DEFAULT, &root()).unwrap();
        assert_eq!(f.unlink("/d", &root()).unwrap_err().errno, Errno::EISDIR);
    }

    #[test]
    fn unlink_while_open_keeps_content_until_close() {
        let f = fs();
        f.write_file("/f", b"keep", &root()).unwrap();
        let fd = f.open("/f", OpenFlags::read_only(), &root()).unwrap();
        f.unlink("/f", &root()).unwrap();
        assert!(!f.exists("/f", &root()));
        assert_eq!(f.read(fd, 10).unwrap(), b"keep");
        f.close(fd, &root()).unwrap();
    }

    #[test]
    fn rmdir_requires_empty_without_hook() {
        let f = fs();
        f.mkdir_all("/d/sub", Mode::DIR_DEFAULT, &root()).unwrap();
        assert_eq!(f.rmdir("/d", &root()).unwrap_err().errno, Errno::ENOTEMPTY);
        f.rmdir("/d/sub", &root()).unwrap();
        f.rmdir("/d", &root()).unwrap();
        assert!(!f.exists("/d", &root()));
        assert_eq!(f.rmdir("/", &root()).unwrap_err().errno, Errno::EINVAL);
    }

    struct RecursiveSwitches;
    impl SemanticHook for RecursiveSwitches {
        fn rmdir_recursive(&self, path: &VPath) -> bool {
            path.as_str().starts_with("/switches/")
        }
    }

    #[test]
    fn hook_makes_rmdir_recursive() {
        let f = fs();
        f.add_hook(Arc::new(RecursiveSwitches));
        f.mkdir_all("/switches/sw1/flows/f1", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.write_file("/switches/sw1/flows/f1/version", b"1", &root())
            .unwrap();
        f.rmdir("/switches/sw1", &root()).unwrap();
        assert!(!f.exists("/switches/sw1", &root()));
        // Non-hooked dirs keep POSIX semantics.
        f.mkdir_all("/other/sub", Mode::DIR_DEFAULT, &root())
            .unwrap();
        assert_eq!(
            f.rmdir("/other", &root()).unwrap_err().errno,
            Errno::ENOTEMPTY
        );
    }

    #[test]
    fn symlink_readlink_and_follow() {
        let f = fs();
        f.mkdir_all("/a/b", Mode::DIR_DEFAULT, &root()).unwrap();
        f.write_file("/a/b/file", b"via-link", &root()).unwrap();
        f.symlink("/a/b", "/lnk", &root()).unwrap();
        assert_eq!(f.readlink("/lnk", &root()).unwrap(), "/a/b");
        assert_eq!(f.read_file("/lnk/file", &root()).unwrap(), b"via-link");
        let st = f.lstat("/lnk", &root()).unwrap();
        assert!(st.is_symlink());
        let st2 = f.stat("/lnk", &root()).unwrap();
        assert!(st2.is_dir());
        assert_eq!(
            f.readlink("/a/b/file", &root()).unwrap_err().errno,
            Errno::EINVAL
        );
    }

    #[test]
    fn dangling_symlink_and_loop() {
        let f = fs();
        f.symlink("/nowhere", "/dangling", &root()).unwrap();
        assert_eq!(
            f.stat("/dangling", &root()).unwrap_err().errno,
            Errno::ENOENT
        );
        assert!(f.lstat("/dangling", &root()).is_ok());
        f.symlink("/loop2", "/loop1", &root()).unwrap();
        f.symlink("/loop1", "/loop2", &root()).unwrap();
        assert_eq!(f.stat("/loop1", &root()).unwrap_err().errno, Errno::ELOOP);
    }

    #[test]
    fn relative_symlink_resolution() {
        let f = fs();
        f.mkdir_all("/net/switches/sw1/ports/p1", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.mkdir_all("/net/switches/sw2/ports/p2", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.write_file("/net/switches/sw2/ports/p2/status", b"up", &root())
            .unwrap();
        // peer -> ../../../sw2/ports/p2, relative to p1 (the dir holding the
        // link): p1 -> ports -> sw1 -> switches, then down into sw2.
        f.symlink(
            "../../../sw2/ports/p2",
            "/net/switches/sw1/ports/p1/peer",
            &root(),
        )
        .unwrap();
        assert_eq!(
            f.read_file("/net/switches/sw1/ports/p1/peer/status", &root())
                .unwrap(),
            b"up"
        );
        assert_eq!(
            f.canonicalize("/net/switches/sw1/ports/p1/peer", &root())
                .unwrap()
                .as_str(),
            "/net/switches/sw2/ports/p2"
        );
    }

    struct PortsOnly;
    impl SemanticHook for PortsOnly {
        fn validate_symlink(&self, _fs: &Filesystem, path: &VPath, target: &str) -> VfsResult<()> {
            if path.file_name() == Some("peer") && !target.contains("/ports/") {
                return err(Errno::EINVAL, path.as_str());
            }
            Ok(())
        }
    }

    #[test]
    fn hook_vetoes_bad_symlink() {
        let f = fs();
        f.add_hook(Arc::new(PortsOnly));
        f.mkdir_all("/sw/ports/p1", Mode::DIR_DEFAULT, &root())
            .unwrap();
        assert_eq!(
            f.symlink("/sw", "/sw/ports/p1/peer", &root())
                .unwrap_err()
                .errno,
            Errno::EINVAL
        );
        f.symlink("/sw/ports/p2", "/sw/ports/p1/peer", &root())
            .unwrap();
    }

    #[test]
    fn hard_links_share_content() {
        let f = fs();
        f.write_file("/f", b"one", &root()).unwrap();
        f.link("/f", "/g", &root()).unwrap();
        assert_eq!(f.stat("/f", &root()).unwrap().nlink, 2);
        f.write_file("/g", b"two", &root()).unwrap();
        assert_eq!(f.read_file("/f", &root()).unwrap(), b"two");
        f.unlink("/f", &root()).unwrap();
        assert_eq!(f.read_file("/g", &root()).unwrap(), b"two");
        assert_eq!(f.stat("/g", &root()).unwrap().nlink, 1);
        f.mkdir("/d", Mode::DIR_DEFAULT, &root()).unwrap();
        assert_eq!(
            f.link("/d", "/d2", &root()).unwrap_err().errno,
            Errno::EPERM
        );
    }

    #[test]
    fn rename_file_basic_and_replace() {
        let f = fs();
        f.write_file("/a", b"a", &root()).unwrap();
        f.rename("/a", "/b", &root()).unwrap();
        assert!(!f.exists("/a", &root()));
        assert_eq!(f.read_file("/b", &root()).unwrap(), b"a");
        f.write_file("/c", b"c", &root()).unwrap();
        f.rename("/c", "/b", &root()).unwrap();
        assert_eq!(f.read_file("/b", &root()).unwrap(), b"c");
    }

    #[test]
    fn rename_dir_rules() {
        let f = fs();
        f.mkdir_all("/d/sub", Mode::DIR_DEFAULT, &root()).unwrap();
        // Cannot move a directory into its own subtree.
        assert_eq!(
            f.rename("/d", "/d/sub/d2", &root()).unwrap_err().errno,
            Errno::EINVAL
        );
        // dir onto non-empty dir fails
        f.mkdir_all("/e/x", Mode::DIR_DEFAULT, &root()).unwrap();
        assert_eq!(
            f.rename("/d", "/e", &root()).unwrap_err().errno,
            Errno::ENOTEMPTY
        );
        // dir onto empty dir replaces
        f.mkdir("/empty", Mode::DIR_DEFAULT, &root()).unwrap();
        f.rename("/d", "/empty", &root()).unwrap();
        assert!(f.exists("/empty/sub", &root()));
        // file onto dir / dir onto file mismatches
        f.write_file("/file", b"", &root()).unwrap();
        assert_eq!(
            f.rename("/file", "/empty", &root()).unwrap_err().errno,
            Errno::EISDIR
        );
        assert_eq!(
            f.rename("/empty", "/file", &root()).unwrap_err().errno,
            Errno::ENOTDIR
        );
    }

    #[test]
    fn rename_dir_across_parents_fixes_dotdot() {
        let f = fs();
        f.mkdir_all("/p1/d/inner", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.mkdir("/p2", Mode::DIR_DEFAULT, &root()).unwrap();
        f.rename("/p1/d", "/p2/d", &root()).unwrap();
        f.write_file("/p2/marker", b"m", &root()).unwrap();
        // `..` from the moved directory must now reach /p2.
        assert_eq!(f.read_file("/p2/d/../marker", &root()).unwrap(), b"m");
    }

    #[test]
    fn permissions_enforced_for_non_root() {
        let f = fs();
        let alice = Credentials::user(1000, 1000);
        let bob = Credentials::user(1001, 1001);
        f.mkdir("/shared", Mode(0o777), &root()).unwrap();
        f.write_file("/shared/secret", b"s", &root()).unwrap();
        f.chown("/shared/secret", Some(Uid(1000)), Some(Gid(1000)), &root())
            .unwrap();
        f.chmod("/shared/secret", Mode(0o600), &root()).unwrap();
        assert_eq!(f.read_file("/shared/secret", &alice).unwrap(), b"s");
        assert_eq!(
            f.read_file("/shared/secret", &bob).unwrap_err().errno,
            Errno::EACCES
        );
        assert_eq!(
            f.write_file("/shared/secret", b"x", &bob)
                .unwrap_err()
                .errno,
            Errno::EACCES
        );
        // Directory exec required for traversal.
        f.mkdir("/locked", Mode(0o700), &root()).unwrap();
        f.write_file("/locked/f", b"", &root()).unwrap();
        assert_eq!(f.stat("/locked/f", &bob).unwrap_err().errno, Errno::EACCES);
        // Directory write required for create.
        f.mkdir("/ro", Mode(0o755), &root()).unwrap();
        assert_eq!(
            f.write_file("/ro/new", b"", &bob).unwrap_err().errno,
            Errno::EACCES
        );
    }

    #[test]
    fn chmod_chown_authorization() {
        let f = fs();
        let alice = Credentials::user(1000, 1000);
        let bob = Credentials::user(1001, 1001);
        f.write_file("/f", b"", &root()).unwrap();
        f.chown("/f", Some(Uid(1000)), Some(Gid(1000)), &root())
            .unwrap();
        f.chmod("/f", Mode(0o644), &alice).unwrap(); // owner may chmod
        assert_eq!(
            f.chmod("/f", Mode(0o777), &bob).unwrap_err().errno,
            Errno::EPERM
        );
        assert_eq!(
            f.chown("/f", Some(Uid(1001)), None, &bob)
                .unwrap_err()
                .errno,
            Errno::EPERM
        );
        // Owner may change group only to a group they belong to.
        let mut alice2 = alice.clone();
        alice2.groups.push(Gid(50));
        f.chown("/f", None, Some(Gid(50)), &alice2).unwrap();
        assert_eq!(
            f.chown("/f", None, Some(Gid(51)), &alice2)
                .unwrap_err()
                .errno,
            Errno::EPERM
        );
    }

    #[test]
    fn acl_grants_beyond_mode() {
        let f = fs();
        let app = Credentials::user(2000, 2000);
        f.write_file("/flow", b"v", &root()).unwrap();
        f.chmod("/flow", Mode(0o600), &root()).unwrap();
        assert_eq!(f.read_file("/flow", &app).unwrap_err().errno, Errno::EACCES);
        let mut acl = Acl::new();
        acl.set_user(Uid(2000), 0o4);
        f.set_acl("/flow", Some(acl), &root()).unwrap();
        assert_eq!(f.read_file("/flow", &app).unwrap(), b"v");
        assert_eq!(
            f.write_file("/flow", b"w", &app).unwrap_err().errno,
            Errno::EACCES
        );
        assert!(f.get_acl("/flow", &root()).unwrap().is_some());
        f.set_acl("/flow", None, &root()).unwrap();
        assert_eq!(f.read_file("/flow", &app).unwrap_err().errno, Errno::EACCES);
    }

    #[test]
    fn sticky_directory_restricts_deletion() {
        let f = fs();
        let alice = Credentials::user(1000, 1000);
        let bob = Credentials::user(1001, 1001);
        f.mkdir("/tmp", Mode(0o1777), &root()).unwrap();
        f.write_file("/tmp/af", b"", &alice).unwrap();
        assert_eq!(f.unlink("/tmp/af", &bob).unwrap_err().errno, Errno::EPERM);
        f.unlink("/tmp/af", &alice).unwrap();
    }

    #[test]
    fn xattr_roundtrip() {
        let f = fs();
        f.write_file("/f", b"", &root()).unwrap();
        f.set_xattr("/f", "user.consistency", b"eventual", &root())
            .unwrap();
        assert_eq!(
            f.get_xattr("/f", "user.consistency", &root()).unwrap(),
            b"eventual"
        );
        assert_eq!(
            f.list_xattr("/f", &root()).unwrap(),
            vec!["user.consistency"]
        );
        f.remove_xattr("/f", "user.consistency", &root()).unwrap();
        assert_eq!(
            f.get_xattr("/f", "user.consistency", &root())
                .unwrap_err()
                .errno,
            Errno::ENODATA
        );
        assert_eq!(
            f.remove_xattr("/f", "user.consistency", &root())
                .unwrap_err()
                .errno,
            Errno::ENODATA
        );
    }

    #[test]
    fn notify_create_modify_closewrite_delete() {
        let f = fs();
        f.mkdir_all("/net/flows", Mode::DIR_DEFAULT, &root())
            .unwrap();
        let (_id, rx) = f.watch_path("/net/flows", EventMask::ALL);
        f.write_file("/net/flows/f1", b"v", &root()).unwrap();
        f.unlink("/net/flows/f1", &root()).unwrap();
        let kinds: Vec<EventKind> = rx.try_iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Create));
        assert!(kinds.contains(&EventKind::Modify));
        assert!(kinds.contains(&EventKind::CloseWrite));
        assert!(kinds.contains(&EventKind::Delete));
    }

    #[test]
    fn notify_rename_events() {
        let f = fs();
        f.mkdir("/d", Mode::DIR_DEFAULT, &root()).unwrap();
        f.write_file("/d/a", b"", &root()).unwrap();
        let (_id, rx) = f.watch_path("/d", EventMask::ALL);
        f.rename("/d/a", "/d/b", &root()).unwrap();
        let kinds: Vec<(EventKind, Option<String>)> =
            rx.try_iter().map(|e| (e.kind, e.name)).collect();
        assert!(kinds.contains(&(EventKind::MovedFrom, Some("a".into()))));
        assert!(kinds.contains(&(EventKind::MovedTo, Some("b".into()))));
    }

    #[test]
    fn syscall_counting() {
        let f = fs();
        let before = f.counters().snapshot();
        f.write_file("/f", b"x", &root()).unwrap(); // open+write+close
        let d = f.counters().snapshot().since(&before);
        assert_eq!(d.get(OpKind::Open), 1);
        assert_eq!(d.get(OpKind::Write), 1);
        assert_eq!(d.get(OpKind::Close), 1);
        assert_eq!(d.total(), 3);
    }

    #[test]
    fn limits_enforced() {
        let f = Filesystem::with_limits(Limits {
            max_file_size: 4,
            max_dir_entries: 2,
            max_open_files: 1,
        });
        let r = root();
        assert_eq!(
            f.write_file("/big", b"12345", &r).unwrap_err().errno,
            Errno::ENOSPC
        );
        // The failed write still created the (empty) file — POSIX O_CREAT
        // succeeded before the write hit the size limit. Remove it so the
        // directory-entry quota test starts clean.
        f.unlink("/big", &r).unwrap();
        f.write_file("/a", b"1", &r).unwrap();
        f.write_file("/b", b"1", &r).unwrap();
        assert_eq!(
            f.write_file("/c", b"1", &r).unwrap_err().errno,
            Errno::EDQUOT
        );
        let fd = f.open("/a", OpenFlags::read_only(), &r).unwrap();
        assert_eq!(
            f.open("/b", OpenFlags::read_only(), &r).unwrap_err().errno,
            Errno::ENFILE
        );
        f.close(fd, &r).unwrap();
    }

    struct AutoPopulate;
    impl SemanticHook for AutoPopulate {
        fn post_mkdir(&self, fs: &Filesystem, path: &VPath, creds: &Credentials) {
            if path.parent().as_str() == "/views" {
                for sub in ["hosts", "switches", "views"] {
                    let _ = fs.mkdir(path.join(sub).as_str(), Mode::DIR_DEFAULT, creds);
                }
            }
        }
    }

    #[test]
    fn post_mkdir_hook_autopopulates_without_recursing() {
        let f = fs();
        f.add_hook(Arc::new(AutoPopulate));
        f.mkdir("/views", Mode::DIR_DEFAULT, &root()).unwrap();
        f.mkdir("/views/v1", Mode::DIR_DEFAULT, &root()).unwrap();
        assert!(f.stat("/views/v1/hosts", &root()).unwrap().is_dir());
        assert!(f.stat("/views/v1/switches", &root()).unwrap().is_dir());
        assert!(f.stat("/views/v1/views", &root()).unwrap().is_dir());
        // The hook's own mkdirs didn't re-trigger (no /views/v1/views/hosts).
        assert!(!f.exists("/views/v1/views/hosts", &root()));
    }

    #[test]
    fn dotdot_resolution() {
        let f = fs();
        f.mkdir_all("/a/b/c", Mode::DIR_DEFAULT, &root()).unwrap();
        f.write_file("/a/marker", b"m", &root()).unwrap();
        assert_eq!(f.read_file("/a/b/c/../../marker", &root()).unwrap(), b"m");
        assert_eq!(f.read_file("/../../a/marker", &root()).unwrap(), b"m");
    }

    #[test]
    fn canonicalize_resolves_chains() {
        let f = fs();
        f.mkdir_all("/real/dir", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.symlink("/real", "/l1", &root()).unwrap();
        f.symlink("/l1/dir", "/l2", &root()).unwrap();
        assert_eq!(
            f.canonicalize("/l2", &root()).unwrap().as_str(),
            "/real/dir"
        );
        assert!(f.canonicalize("/nope", &root()).is_err());
    }

    #[test]
    fn proc_total_matches_counters_exactly() {
        let f = fs();
        f.mount_proc("/net/.proc").unwrap();
        f.mkdir_all("/net/switches/sw1", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.write_file("/net/switches/sw1/hello", b"x", &root())
            .unwrap();
        let expect = f.counters().total();
        assert!(expect > 0);
        let got = f
            .read_to_string("/net/.proc/vfs/syscalls/total", &root())
            .unwrap();
        assert_eq!(got.trim().parse::<u64>().unwrap(), expect);
        // Reading the counter did not disturb it.
        assert_eq!(f.counters().total(), expect);
        // And re-reading reflects new activity but never the reads themselves.
        f.write_file("/net/switches/sw1/hello", b"y", &root())
            .unwrap();
        let expect2 = f.counters().total();
        assert!(expect2 > expect);
        let got2 = f
            .read_to_string("/net/.proc/vfs/syscalls/total", &root())
            .unwrap();
        assert_eq!(got2.trim().parse::<u64>().unwrap(), expect2);
    }

    #[test]
    fn proc_mount_is_read_only() {
        let f = fs();
        f.mount_proc("/net/.proc").unwrap();
        for e in [
            f.write_file("/net/.proc/vfs/syscalls/total", b"0", &root())
                .unwrap_err(),
            f.mkdir("/net/.proc/mine", Mode::DIR_DEFAULT, &root())
                .unwrap_err(),
            f.unlink("/net/.proc/vfs/syscalls/total", &root())
                .unwrap_err(),
            f.truncate("/net/.proc/vfs/syscalls/total", 0, &root())
                .unwrap_err(),
            f.rename("/net/.proc/vfs", "/net/.proc/ufs", &root())
                .unwrap_err(),
        ] {
            assert_eq!(e.errno, Errno::EROFS);
        }
        // Reads still work.
        assert!(f
            .read_to_string("/net/.proc/vfs/syscalls/total", &root())
            .is_ok());
    }

    #[test]
    fn proc_refresh_is_silent_for_watchers() {
        let f = fs();
        f.mount_proc("/net/.proc").unwrap();
        let (_w, rx) = f.watch_subtree("/net", EventMask::ALL);
        let _ = f
            .read_to_string("/net/.proc/vfs/syscalls/total", &root())
            .unwrap();
        assert_eq!(rx.try_iter().count(), 0);
    }

    #[test]
    fn proc_latency_files_summarise_histograms() {
        let f = fs();
        f.mount_proc("/net/.proc").unwrap();
        f.write_file("/data", b"x", &root()).unwrap();
        let s = f
            .read_to_string("/net/.proc/vfs/latency/write", &root())
            .unwrap();
        assert!(s.contains("count=1"), "got: {s}");
        assert!(s.contains("p50="), "got: {s}");
    }

    #[test]
    fn metrics_scope_appears_in_proc() {
        let f = fs();
        let scope = f.add_metrics_scope("net", "/net");
        f.mount_proc("/net/.proc").unwrap();
        f.mkdir_all("/net/switches", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.mkdir_all("/other", Mode::DIR_DEFAULT, &root()).unwrap();
        assert_eq!(scope.get(OpKind::Mkdir), 2); // /net/switches only
        let s = f
            .read_to_string("/net/.proc/scopes/net/total", &root())
            .unwrap();
        assert_eq!(s.trim().parse::<u64>().unwrap(), scope.total());
    }
}
