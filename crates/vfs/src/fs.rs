//! The in-memory virtual file system.
//!
//! This is the substrate the entire reproduction stands on: a POSIX-style
//! file system with inodes, directories, symlinks, hard links, unix
//! permissions + ACLs, extended attributes, open-file handles, rename
//! semantics, change notification and per-operation syscall accounting.
//! It replaces the Linux VFS + FUSE layer the paper's prototype used; see
//! DESIGN.md §1 for why the substitution preserves the behaviours yanc
//! relies on.
//!
//! Locking: the inode and open-handle tables are split across N lock
//! shards keyed by inode/fd number (see [`crate::shard`]). Path resolution
//! takes shard read-locks hop-by-hop; mutations resolve lock-free, then
//! write-lock the shards they touch in canonical (ascending) order, verify
//! the directory entries they resolved are still in place, and retry from
//! resolution when a concurrent mutation moved them. Notification events
//! and semantic-hook invocations are computed under the shard locks but
//! emitted/run after release, so hooks and watchers may freely re-enter
//! the filesystem. With `shards = 1` every operation serializes behind a
//! single lock — the deterministic mode the pinned experiment tables run
//! under (and the global-lock baseline the E20 bench compares against).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use crossbeam::channel::Receiver;
use parking_lot::{Mutex, RwLock};

use crate::acl::{check_access, Acl};
use crate::counter::{OpKind, SyscallCounters};
use crate::dcache::{CachedKind, Dcache, DcacheStats, Dentry, ParentPerm};
use crate::error::{err, Errno, VfsError, VfsResult};
use crate::hooks::{HookDepth, SemanticHook};
use crate::journal::Record;
use crate::metrics::MetricsRegistry;
use crate::notify::{Event, EventKind, EventMask, NotifyHub, WatchId};
use crate::path::{valid_name, VPath, NAME_MAX, PATH_MAX};
use crate::poll::{PollRegistry, PollSet};
use crate::proc::{ProcDepth, ProcHook, ProcRegistry, ProcRender};
use crate::rctl::{AppLimits, RctlTable};
use crate::readpath::{AttrRead, HandleRead, ReadPath, ReadPathStats};
use crate::shard::{Inode, LockKey, NodeKind, OpenFile, ShardSet, Tables, DEFAULT_SHARDS};
use crate::types::{
    Access, Clock, Credentials, DirEntry, Fd, FileStat, FileType, Gid, Ino, Mode, OpenFlags, Uid,
    ROOT_INO,
};

/// Maximum symlink traversals in one lookup, mirroring Linux `SYMLOOP_MAX`.
/// Exposed at `<proc>/vfs/limits/max_symlink_hops`; resolution fails with
/// `ELOOP` on the hop *after* this many traversals.
pub const MAX_SYMLINK_HOPS: u32 = 40;
/// Hard-link ceiling, mirroring ext4's practical limit.
const LINK_MAX: u32 = 65_000;

/// Resource limits; defaults are generous but finite so `ENOSPC`/`EDQUOT`
/// paths are reachable in tests.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum size of a regular file in bytes.
    pub max_file_size: u64,
    /// Maximum number of entries in one directory.
    pub max_dir_entries: usize,
    /// Maximum number of simultaneously open handles.
    pub max_open_files: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_file_size: 64 << 20,
            max_dir_entries: 1 << 20,
            max_open_files: 1 << 16,
        }
    }
}

/// What [`Filesystem::reclaim`] tore down for a killed process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimReport {
    /// Open handles force-closed.
    pub handles_closed: usize,
    /// Notify watch descriptors removed.
    pub watches_removed: usize,
    /// Unlinked inodes that were only kept alive by the closed handles.
    pub inodes_dropped: usize,
    /// Poll sets killed (further waits return `EBADF`).
    pub pollsets_closed: usize,
}

/// One row of a uid's open-descriptor table (see [`Filesystem::fd_table`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdInfo {
    /// The descriptor number.
    pub fd: u64,
    /// Path the descriptor was opened under (open-time snapshot; renames
    /// of ancestors do not rewrite it, exactly as in `/proc/<pid>/fd`).
    pub path: String,
    /// Opened for reading.
    pub read: bool,
    /// Opened for writing.
    pub write: bool,
    /// Current file offset.
    pub offset: u64,
}

/// Snapshot produced by [`Filesystem::check_invariants`] when every
/// structural law holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsCheckReport {
    /// Inodes present in the tables.
    pub inodes: usize,
    /// Directories reachable from the root.
    pub directories: usize,
    /// Regular files reachable from the root.
    pub files: usize,
    /// Symlinks reachable from the root.
    pub symlinks: usize,
    /// Unlinked inodes kept alive only by open handles.
    pub orphans_held_open: usize,
    /// Open handles across all shards.
    pub handles: usize,
}

/// Resolution of a path into its (canonical) parent directory and final
/// component.
struct Resolved {
    parent_ino: Ino,
    parent_path: VPath,
    name: String,
    /// Inode of the final component, if it exists (symlinks NOT followed;
    /// callers follow explicitly when they need to).
    target: Option<Ino>,
}

/// Pending notification gathered under the shard locks, emitted after
/// release as one batch.
type PendingEvent = (EventKind, VPath, Option<String>);

/// Whether an open may (or must) land on a directory.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DirMode {
    /// Regular `open`: a directory target is `EISDIR`.
    Forbid,
    /// `O_DIRECTORY` open: a non-directory target is `ENOTDIR`.
    Require,
}

/// Pending hook invocation gathered under the shard locks.
enum PendingHook {
    Mkdir(VPath),
    Create(VPath),
    CloseWrite(VPath),
}

/// RAII reservation of one slot in the global open-handle table. Keeps the
/// `ENFILE` bound exact without a cross-shard pass: the slot is taken up
/// front and released on every error path, or committed when the handle is
/// actually inserted.
struct HandleSlot<'a> {
    tables: &'a Tables,
    committed: bool,
}

impl<'a> HandleSlot<'a> {
    fn reserve(tables: &'a Tables, cap: usize, path: &str) -> VfsResult<Self> {
        if !tables.try_reserve_handle(cap) {
            return err(Errno::ENFILE, path);
        }
        Ok(HandleSlot {
            tables,
            committed: false,
        })
    }

    fn commit(&mut self) {
        self.committed = true;
    }
}

impl Drop for HandleSlot<'_> {
    fn drop(&mut self) {
        if !self.committed {
            self.tables.release_handle_slot();
        }
    }
}

/// The virtual file system. Cheap to share: wrap in an [`Arc`].
pub struct Filesystem {
    pub(crate) tables: Arc<Tables>,
    pub(crate) clock: Clock,
    counters: Arc<SyscallCounters>,
    metrics: Arc<MetricsRegistry>,
    notify: Arc<NotifyHub>,
    pub(crate) proc: Arc<ProcRegistry>,
    hooks: RwLock<Vec<Arc<dyn SemanticHook>>>,
    limits: Limits,
    rctl: Arc<RctlTable>,
    polls: Arc<PollRegistry>,
    /// Sharded dentry cache memoising resolution hops; generation-validated
    /// against every directory mutation (see [`crate::dcache`]).
    dcache: Arc<Dcache>,
    /// Optimistic lock-free read path: seqlock-validated attribute blocks
    /// and immutable handle metadata (see [`crate::readpath`], DESIGN.md
    /// §12). Filled by the locked fallback paths, invalidated by shard
    /// seqlock bumps — warm `stat`/`fstat` take zero table locks.
    readpath: Arc<ReadPath>,
    /// Write-ahead journal: append-only op log + snapshots (see
    /// [`crate::journal`]). Disabled until [`Filesystem::enable_journal`].
    pub(crate) journal: Arc<crate::journal::Journal>,
    /// Serializes directory renames so concurrent cross-directory moves
    /// cannot form a cycle the per-rename checks miss — the in-process
    /// analogue of the kernel's `s_vfs_rename_mutex`. Always acquired
    /// before any shard lock, never while holding one.
    rename_lock: Mutex<()>,
}

impl Default for Filesystem {
    fn default() -> Self {
        Self::new()
    }
}

/// Construction-time configuration for a [`Filesystem`], built with
/// [`Filesystem::builder`]. Every feature switch the old constructor
/// matrix (`with_shards`/`with_config`/`with_options`/`with_features`/
/// `without_dcache`/`without_readpath`) spelled as a positional argument
/// is a named setter here, so the next feature flag extends this struct
/// instead of adding a seventh constructor. Defaults match
/// [`Filesystem::new`]: default limits, [`DEFAULT_SHARDS`] lock shards,
/// dentry cache on, optimistic read path on, journal off.
#[derive(Debug, Clone)]
pub struct FsBuilder {
    limits: Limits,
    shards: usize,
    dcache: bool,
    readpath: bool,
    journal: bool,
}

impl Default for FsBuilder {
    fn default() -> Self {
        FsBuilder {
            limits: Limits::default(),
            shards: DEFAULT_SHARDS,
            dcache: true,
            readpath: true,
            journal: false,
        }
    }
}

impl FsBuilder {
    /// Resource limits (max file size, directory entries, open files).
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Lock-shard count. `1` gives the fully serialized (global-lock)
    /// deterministic mode the replay suites use as the reference.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Dentry cache on/off. Off: every resolution walks the inode table
    /// hop by hop, exactly as before the cache existed — the coherence
    /// suites' reference mode and the benches' cold baseline.
    pub fn dcache(mut self, enabled: bool) -> Self {
        self.dcache = enabled;
        self
    }

    /// Optimistic lock-free read path on/off. Off: every read takes its
    /// shard read locks, exactly as before the seqlock scheme existed —
    /// the linearizability suite's (Part 1d) reference mode and the E25
    /// bench's locked baseline.
    pub fn readpath(mut self, enabled: bool) -> Self {
        self.readpath = enabled;
        self
    }

    /// Start with the write-ahead journal enabled: the built filesystem
    /// has already captured its anchor snapshot (of the empty tree) and
    /// logs every mutation from the first one on — equivalent to calling
    /// [`Filesystem::enable_journal`] immediately after construction.
    pub fn journal(mut self, enabled: bool) -> Self {
        self.journal = enabled;
        self
    }

    /// Build the filesystem: an empty tree containing only the root
    /// directory (`0o755`, owned by root), with the configured features.
    pub fn build(self) -> Filesystem {
        let clock = Clock::new();
        let now = clock.tick();
        let tables = Tables::new(self.shards);
        {
            let mut set = tables.lock(&[LockKey::Ino(ROOT_INO)]);
            set.insert_inode(
                ROOT_INO,
                Inode {
                    kind: NodeKind::Dir {
                        entries: BTreeMap::new(),
                        parent: ROOT_INO,
                    },
                    mode: Mode::DIR_DEFAULT,
                    uid: Uid(0),
                    gid: Gid(0),
                    nlink: 2,
                    mtime: now,
                    ctime: now,
                    xattrs: BTreeMap::new(),
                    acl: None,
                    open_count: 0,
                },
            );
        }
        let fs = Filesystem {
            dcache: Arc::new(Dcache::new(tables.shard_count(), self.dcache)),
            readpath: Arc::new(ReadPath::new(self.readpath)),
            tables: Arc::new(tables),
            clock,
            counters: Arc::new(SyscallCounters::new()),
            metrics: Arc::new(MetricsRegistry::new()),
            notify: Arc::new(NotifyHub::new()),
            proc: Arc::new(ProcRegistry::new()),
            hooks: RwLock::new(Vec::new()),
            limits: self.limits,
            rctl: Arc::new(RctlTable::new()),
            polls: Arc::new(PollRegistry::new()),
            journal: Arc::new(crate::journal::Journal::new()),
            rename_lock: Mutex::new(()),
        };
        if self.journal {
            fs.enable_journal();
        }
        fs
    }
}

impl Filesystem {
    /// An empty filesystem containing only the root directory (`0o755`,
    /// owned by root).
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Start configuring a filesystem; see [`FsBuilder`].
    pub fn builder() -> FsBuilder {
        FsBuilder::default()
    }

    /// An empty filesystem with explicit resource limits.
    #[deprecated(note = "use Filesystem::builder().limits(..).build()")]
    pub fn with_limits(limits: Limits) -> Self {
        Self::builder().limits(limits).build()
    }

    /// An empty filesystem with an explicit lock-shard count. `1` gives the
    /// fully serialized (global-lock) deterministic mode.
    #[deprecated(note = "use Filesystem::builder().shards(..).build()")]
    pub fn with_shards(shards: usize) -> Self {
        Self::builder().shards(shards).build()
    }

    /// An empty filesystem with explicit limits and lock-shard count.
    #[deprecated(note = "use Filesystem::builder().limits(..).shards(..).build()")]
    pub fn with_config(limits: Limits, shards: usize) -> Self {
        Self::builder().limits(limits).shards(shards).build()
    }

    /// An empty filesystem with the dentry cache switched off.
    #[deprecated(note = "use Filesystem::builder().dcache(false).build()")]
    pub fn without_dcache() -> Self {
        Self::builder().dcache(false).build()
    }

    /// An empty filesystem with the optimistic lock-free read path switched
    /// off.
    #[deprecated(note = "use Filesystem::builder().readpath(false).build()")]
    pub fn without_readpath() -> Self {
        Self::builder().readpath(false).build()
    }

    /// An empty filesystem with explicit limits, lock-shard count and
    /// dentry-cache enablement (the optimistic read path stays on).
    #[deprecated(note = "use Filesystem::builder().dcache(..).build()")]
    pub fn with_options(limits: Limits, shards: usize, dcache_enabled: bool) -> Self {
        Self::builder()
            .limits(limits)
            .shards(shards)
            .dcache(dcache_enabled)
            .build()
    }

    /// An empty filesystem with every feature switch explicit: resource
    /// limits, lock-shard count, dentry cache, optimistic read path.
    #[deprecated(note = "use Filesystem::builder() with named setters")]
    pub fn with_features(
        limits: Limits,
        shards: usize,
        dcache_enabled: bool,
        readpath_enabled: bool,
    ) -> Self {
        Self::builder()
            .limits(limits)
            .shards(shards)
            .dcache(dcache_enabled)
            .readpath(readpath_enabled)
            .build()
    }

    /// Dentry-cache counters (hits/misses/negative hits/invalidations/
    /// inserts/evictions); also exposed at `<proc>/vfs/dcache/*`.
    pub fn dcache_stats(&self) -> DcacheStats {
        self.dcache.stats()
    }

    /// Whether the dentry cache participates in path resolution.
    pub fn dcache_enabled(&self) -> bool {
        self.dcache.enabled()
    }

    /// Live dentry-cache entries (positive + negative) across all shards.
    pub fn dcache_entries(&self) -> usize {
        self.dcache.entries()
    }

    /// Inode-table read-lock acquisitions so far — the deterministic cost
    /// metric behind the E22 warm-vs-cold resolution claim (wall-clock is
    /// machine noise; lock acquisitions are not).
    pub fn inode_table_reads(&self) -> u64 {
        self.tables.inode_read_count()
    }

    /// Every shard-lock acquisition (read + write) on the inode/handle
    /// tables so far — the deterministic cost metric behind the E25
    /// lock-free read path claim ("0 locks per warm stat"). Dcache-internal
    /// stripe locks and rctl bucket locks are deliberately excluded: the
    /// contended scaling wall is the shard tables.
    pub fn lock_acquisitions(&self) -> u64 {
        self.tables.lock_acquisition_count()
    }

    /// Counters of the optimistic lock-free read path (hits/retries/
    /// fallbacks/fills plus the table lock-acquisition total); also exposed
    /// at `<proc>/vfs/readpath/*`.
    pub fn readpath_stats(&self) -> ReadPathStats {
        self.readpath.stats(&self.tables)
    }

    /// Whether the optimistic lock-free read path participates in hot
    /// reads (see [`FsBuilder::readpath`]).
    pub fn readpath_enabled(&self) -> bool {
        self.readpath.enabled()
    }

    /// Bump `ino`'s dcache generation. Mutators call this while still
    /// holding the shard write locks of the mutation so no fill that read
    /// pre-mutation state can ever validate. The invalidation *counter* is
    /// suppressed during internal proc maintenance (the bump itself never
    /// is) so `/net/.proc/vfs/dcache` reads do not disturb themselves.
    #[inline]
    pub(crate) fn bump_gen(&self, ino: Ino) {
        self.dcache.bump(ino, ProcDepth::active());
    }

    /// Number of lock shards the inode/handle tables are split across.
    pub fn shard_count(&self) -> usize {
        self.tables.shard_count()
    }

    /// The syscall tally (see [`SyscallCounters`]); drives experiment E14.
    pub fn counters(&self) -> &SyscallCounters {
        &self.counters
    }

    /// Latency histograms and per-mount counter scopes.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Register (or fetch) a named syscall-counter scope covering `prefix`.
    /// If a proc mount is active, the scope's figures are also exposed under
    /// `<mount>/scopes/<name>/`.
    pub fn add_metrics_scope(&self, name: &str, prefix: &str) -> Arc<SyscallCounters> {
        let counters = self.metrics.add_scope(name, prefix);
        for mount in self.proc.mounts() {
            let c = counters.clone();
            let _ = self.proc_file(&format!("{mount}/scopes/{name}/total"), move || {
                format!("{}\n", c.total())
            });
            let c = counters.clone();
            let _ = self.proc_file(&format!("{mount}/scopes/{name}/syscalls"), move || {
                format!("{}\n", c.snapshot().report())
            });
        }
        counters
    }

    /// The notification hub.
    pub fn notify(&self) -> &NotifyHub {
        &self.notify
    }

    /// The proc-mount registry (see [`crate::proc`]).
    pub fn proc(&self) -> &ProcRegistry {
        &self.proc
    }

    /// Register a semantic hook (consulted in registration order).
    pub fn add_hook(&self, hook: Arc<dyn SemanticHook>) {
        self.hooks.write().push(hook);
    }

    /// Start building a watch on `path`: `fs.watch(p).subtree().mask(m)
    /// .as_uid(u).register()`. The returned [`WatchGuard`] unwatches on
    /// drop, so a watch can no longer leak past its owner.
    pub fn watch(&self, path: &str) -> WatchBuilder<'_> {
        WatchBuilder {
            fs: self,
            path: VPath::new(path),
            subtree: false,
            mask: EventMask::ALL,
            creds: None,
        }
    }

    /// Cancel a watch.
    pub fn unwatch(&self, id: WatchId) -> bool {
        self.notify.unwatch(id)
    }

    fn check_watch_budget(&self, creds: &Credentials, path: &str) -> VfsResult<()> {
        if let Some(l) = self.rctl.limits(creds.uid.0) {
            if let Some(cap) = l.max_watches {
                if self.notify.watches_of(creds.uid.0) as u64 >= cap {
                    return err(Errno::EMFILE, path);
                }
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------------
    // Per-process resource control (cgroup-style, keyed by uid)
    // ----------------------------------------------------------------

    /// The resource-control table (see [`crate::rctl`]).
    pub fn rctl(&self) -> &Arc<RctlTable> {
        &self.rctl
    }

    /// Install limits for `uid`: syscall-rate tokens, handle/watch caps,
    /// notify-queue quota, flow quota. The supervisor calls this when it
    /// spawns a confined process.
    pub fn set_app_limits(&self, uid: Uid, limits: AppLimits) {
        self.notify
            .set_queue_quota(uid.0, limits.notify_queue_max.map(|v| v as usize));
        self.rctl.set_limits(uid.0, limits);
    }

    /// Remove the limits for `uid` (process exited / unconfined).
    pub fn clear_app_limits(&self, uid: Uid) {
        self.notify.set_queue_quota(uid.0, None);
        self.rctl.clear_limits(uid.0);
    }

    /// Handles currently open, across all owners (exact: maintained as an
    /// atomic at handle insert/remove, never recomputed by a table scan).
    pub fn open_handle_count(&self) -> usize {
        self.tables.handle_count()
    }

    /// Handles currently open and charged to `uid`.
    pub fn handles_of(&self, uid: Uid) -> usize {
        (0..self.tables.shard_count())
            .map(|i| {
                self.tables
                    .read_shard(i)
                    .handles
                    .values()
                    .filter(|h| h.owner == uid)
                    .count()
            })
            .sum()
    }

    /// Tear down every kernel-side resource charged to `uid`: open handles
    /// (dropping now-orphaned inodes) and notify watch descriptors. This is
    /// the `KILL` path — no `CloseWrite` fires, because a killed process
    /// never reaches its commit point; half-written updates are abandoned
    /// exactly as the paper's version-file protocol intends.
    pub fn reclaim(&self, uid: Uid) -> ReclaimReport {
        let mut handles_closed = 0usize;
        let mut inodes_dropped = 0usize;
        {
            let mut set = self.tables.lock_all();
            for fd in set.fds_of(uid) {
                if let Some(h) = set.remove_handle(fd) {
                    handles_closed += 1;
                    self.readpath.close_handle(fd);
                    self.rctl.release_open(uid.0);
                    if let Ok(node) = set.inode_mut(h.ino) {
                        node.open_count -= 1;
                        if node.nlink == 0 && node.open_count == 0 {
                            set.remove_inode(h.ino);
                            inodes_dropped += 1;
                        }
                    }
                }
            }
        }
        let watches_removed = self.notify.unwatch_owner(uid.0);
        let pollsets_closed = self.polls.reclaim(uid.0);
        ReclaimReport {
            handles_closed,
            watches_removed,
            inodes_dropped,
            pollsets_closed,
        }
    }

    // ----------------------------------------------------------------
    // yanc_poll
    // ----------------------------------------------------------------

    /// Create a [`PollSet`] charged to `creds.uid`: the epoll of this OS.
    /// The set appears in `<proc>/vfs/pollsets` and is torn down by
    /// [`Self::reclaim`] of its owner. Creation is free; each
    /// [`PollSet::wait`] charges one `poll` syscall.
    pub fn poll_create(&self, creds: &Credentials) -> PollSet {
        let set = PollSet::new(
            self.polls.alloc_id(),
            creds.uid,
            self.tables.clone(),
            self.counters.clone(),
            self.metrics.clone(),
            self.rctl.clone(),
        );
        self.polls.register(set.inner());
        set
    }

    /// The descriptor table of `uid`, sorted by fd — what
    /// `/net/.proc/apps/<pid>/fds` renders. A read-locked scan; does not
    /// count as a syscall (it is the kernel reading its own tables).
    pub fn fd_table(&self, uid: Uid) -> Vec<FdInfo> {
        let mut out: Vec<FdInfo> = Vec::new();
        for i in 0..self.tables.shard_count() {
            let shard = self.tables.read_shard(i);
            for (fd, h) in shard.handles.iter().filter(|(_, h)| h.owner == uid) {
                out.push(FdInfo {
                    fd: *fd,
                    path: h.path.as_str().to_owned(),
                    read: h.flags.read,
                    write: h.flags.write,
                    offset: h.offset,
                });
            }
        }
        out.sort_by_key(|f| f.fd);
        out
    }

    // ----------------------------------------------------------------
    // /proc-style introspection mounts
    // ----------------------------------------------------------------

    /// Mount a read-only introspection tree at `prefix` (idempotent).
    ///
    /// Creates the directory, installs the [`ProcHook`] enforcing lazy
    /// refresh + `EROFS`, and registers the vfs's own figures beneath it:
    /// `vfs/syscalls/<op>` and `vfs/syscalls/total`, `vfs/latency/<op>`
    /// (virtual-cost histogram summaries), and `vfs/notify/{watches,queued}`.
    /// Operations on paths under the mount are exempt from syscall
    /// accounting, so reading a counter does not disturb it.
    pub fn mount_proc(&self, prefix: &str) -> VfsResult<()> {
        let prefix = prefix.trim_end_matches('/');
        if self.proc.has_mount(prefix) {
            return Ok(());
        }
        let root = Credentials::root();
        {
            let _h = HookDepth::enter();
            let _p = ProcDepth::enter();
            self.mkdir_all(prefix, Mode::DIR_DEFAULT, &root)?;
        }
        let first = !self.proc.mounted();
        self.proc.add_mount(prefix);
        if first {
            self.add_hook(Arc::new(ProcHook::new(self.proc.clone())));
        }

        // The vfs's own instruments.
        let c = self.counters.clone();
        self.proc_file(&format!("{prefix}/vfs/syscalls/total"), move || {
            format!("{}\n", c.total())
        })?;
        for &op in OpKind::all() {
            let c = self.counters.clone();
            self.proc_file(&format!("{prefix}/vfs/syscalls/{}", op.name()), move || {
                format!("{}\n", c.get(op))
            })?;
            let m = self.metrics.clone();
            self.proc_file(&format!("{prefix}/vfs/latency/{}", op.name()), move || {
                format!("{}\n", m.histogram(op).summary())
            })?;
        }
        let pr = self.proc.clone();
        self.proc_file(&format!("{prefix}/vfs/mounts"), move || {
            pr.render_mount_tables()
        })?;
        let n = self.notify.clone();
        self.proc_file(&format!("{prefix}/vfs/notify/watches"), move || {
            format!("{}\n", n.watch_count())
        })?;
        let n = self.notify.clone();
        self.proc_file(&format!("{prefix}/vfs/notify/queued"), move || {
            format!("{}\n", n.queued_events())
        })?;
        let n = self.notify.clone();
        self.proc_file(&format!("{prefix}/vfs/notify/dropped"), move || {
            format!("{}\n", n.dropped_events())
        })?;
        let n = self.notify.clone();
        self.proc_file(&format!("{prefix}/vfs/notify/delivered"), move || {
            format!("{}\n", n.delivered_events())
        })?;
        let t = self.tables.clone();
        self.proc_file(&format!("{prefix}/vfs/handles"), move || {
            format!("{}\n", t.handle_count())
        })?;
        let p = self.polls.clone();
        self.proc_file(&format!("{prefix}/vfs/pollsets"), move || p.render())?;
        let shards = self.tables.shard_count();
        self.proc_file(&format!("{prefix}/vfs/shards"), move || {
            format!("{shards}\n")
        })?;
        let r = self.rctl.clone();
        self.proc_file(&format!("{prefix}/vfs/rctl/throttled"), move || {
            format!("{}\n", r.throttled_total())
        })?;
        let r = self.rctl.clone();
        self.proc_file(&format!("{prefix}/vfs/rctl/refills"), move || {
            format!("{}\n", r.refills())
        })?;

        // Dentry-cache counters. Resolution of proc-covered paths bypasses
        // the cache entirely, so reading these files never perturbs them.
        let d = self.dcache.clone();
        self.proc_file(&format!("{prefix}/vfs/dcache/hits"), move || {
            format!("{}\n", d.stats().hits)
        })?;
        let d = self.dcache.clone();
        self.proc_file(&format!("{prefix}/vfs/dcache/misses"), move || {
            format!("{}\n", d.stats().misses)
        })?;
        let d = self.dcache.clone();
        self.proc_file(&format!("{prefix}/vfs/dcache/negative"), move || {
            format!("{}\n", d.stats().negative_hits)
        })?;
        let d = self.dcache.clone();
        self.proc_file(&format!("{prefix}/vfs/dcache/invalidates"), move || {
            format!("{}\n", d.stats().invalidations)
        })?;
        let d = self.dcache.clone();
        self.proc_file(&format!("{prefix}/vfs/dcache/inserts"), move || {
            format!("{}\n", d.stats().inserts)
        })?;
        let d = self.dcache.clone();
        self.proc_file(&format!("{prefix}/vfs/dcache/evictions"), move || {
            format!("{}\n", d.stats().evictions)
        })?;
        let d = self.dcache.clone();
        self.proc_file(&format!("{prefix}/vfs/dcache/entries"), move || {
            format!("{}\n", d.entries())
        })?;
        let d = self.dcache.clone();
        self.proc_file(&format!("{prefix}/vfs/dcache/enabled"), move || {
            format!("{}\n", u8::from(d.enabled()))
        })?;

        // Lock-free read-path counters (E25). Note that *rendering* these
        // files goes through the ordinary locked machinery, so a proc read
        // itself adds lock acquisitions after the value was formatted —
        // pinned tests therefore sample [`Filesystem::readpath_stats`] /
        // [`Filesystem::lock_acquisitions`] directly and use these files
        // only for existence + consistency checks.
        let rp = self.readpath.clone();
        self.proc_file(&format!("{prefix}/vfs/readpath/enabled"), move || {
            format!("{}\n", u8::from(rp.enabled()))
        })?;
        let (rp, t) = (self.readpath.clone(), self.tables.clone());
        self.proc_file(
            &format!("{prefix}/vfs/readpath/optimistic_hits"),
            move || format!("{}\n", rp.stats(&t).optimistic_hits),
        )?;
        let (rp, t) = (self.readpath.clone(), self.tables.clone());
        self.proc_file(
            &format!("{prefix}/vfs/readpath/optimistic_retries"),
            move || format!("{}\n", rp.stats(&t).optimistic_retries),
        )?;
        let (rp, t) = (self.readpath.clone(), self.tables.clone());
        self.proc_file(&format!("{prefix}/vfs/readpath/fallbacks"), move || {
            format!("{}\n", rp.stats(&t).fallbacks)
        })?;
        let (rp, t) = (self.readpath.clone(), self.tables.clone());
        self.proc_file(&format!("{prefix}/vfs/readpath/attr_fills"), move || {
            format!("{}\n", rp.stats(&t).attr_fills)
        })?;
        let (rp, t) = (self.readpath.clone(), self.tables.clone());
        self.proc_file(
            &format!("{prefix}/vfs/readpath/handle_publishes"),
            move || format!("{}\n", rp.stats(&t).handle_publishes),
        )?;
        let t = self.tables.clone();
        self.proc_file(
            &format!("{prefix}/vfs/readpath/lock_acquisitions"),
            move || format!("{}\n", t.lock_acquisition_count()),
        )?;
        self.proc_file(&format!("{prefix}/vfs/readpath/retry_limit"), move || {
            format!("{}\n", ReadPath::RETRY_LIMIT)
        })?;

        // Write-ahead journal figures (E23: the warm-restart cost is read
        // from these files, never from wall-clock).
        let j = self.journal.clone();
        self.proc_file(&format!("{prefix}/vfs/journal/enabled"), move || {
            format!("{}\n", u8::from(j.stats().enabled))
        })?;
        let j = self.journal.clone();
        self.proc_file(&format!("{prefix}/vfs/journal/records"), move || {
            format!("{}\n", j.stats().records)
        })?;
        let j = self.journal.clone();
        self.proc_file(&format!("{prefix}/vfs/journal/snapshots"), move || {
            format!("{}\n", j.stats().snapshots)
        })?;
        let j = self.journal.clone();
        self.proc_file(&format!("{prefix}/vfs/journal/bytes"), move || {
            format!("{}\n", j.stats().bytes)
        })?;
        let j = self.journal.clone();
        self.proc_file(&format!("{prefix}/vfs/journal/snapshot_bytes"), move || {
            format!("{}\n", j.stats().snapshot_bytes)
        })?;
        let j = self.journal.clone();
        self.proc_file(
            &format!("{prefix}/vfs/journal/compacted_bytes"),
            move || format!("{}\n", j.stats().compacted_bytes),
        )?;
        let j = self.journal.clone();
        self.proc_file(&format!("{prefix}/vfs/journal/replayed"), move || {
            format!("{}\n", j.stats().replayed)
        })?;
        let j = self.journal.clone();
        self.proc_file(&format!("{prefix}/vfs/journal/replay_skipped"), move || {
            format!("{}\n", j.stats().replay_skipped)
        })?;
        let j = self.journal.clone();
        self.proc_file(
            &format!("{prefix}/vfs/journal/replay_syscalls"),
            move || format!("{}\n", j.stats().replay_syscalls),
        )?;

        // Static resolution limits (satellite of the dcache work: the
        // symlink-hop bound used to be a buried literal).
        self.proc_file(
            &format!("{prefix}/vfs/limits/max_symlink_hops"),
            move || format!("{MAX_SYMLINK_HOPS}\n"),
        )?;
        self.proc_file(&format!("{prefix}/vfs/limits/path_max"), move || {
            format!("{PATH_MAX}\n")
        })?;
        self.proc_file(&format!("{prefix}/vfs/limits/name_max"), move || {
            format!("{NAME_MAX}\n")
        })?;
        self.proc_file(&format!("{prefix}/vfs/limits/link_max"), move || {
            format!("{LINK_MAX}\n")
        })?;
        let max_file_size = self.limits.max_file_size;
        self.proc_file(&format!("{prefix}/vfs/limits/max_file_size"), move || {
            format!("{max_file_size}\n")
        })?;
        let max_dir_entries = self.limits.max_dir_entries;
        self.proc_file(&format!("{prefix}/vfs/limits/max_dir_entries"), move || {
            format!("{max_dir_entries}\n")
        })?;
        let max_open_files = self.limits.max_open_files;
        self.proc_file(&format!("{prefix}/vfs/limits/max_open_files"), move || {
            format!("{max_open_files}\n")
        })?;

        // Scopes registered before the mount get their files now.
        for (name, _) in self.metrics.scope_names() {
            if let Some(counters) = self.metrics.scope(&name) {
                let c = counters.clone();
                self.proc_file(&format!("{prefix}/scopes/{name}/total"), move || {
                    format!("{}\n", c.total())
                })?;
                let c = counters;
                self.proc_file(&format!("{prefix}/scopes/{name}/syscalls"), move || {
                    format!("{}\n", c.snapshot().report())
                })?;
            }
        }
        Ok(())
    }

    /// Register a rendered file at `path` (which must lie under an existing
    /// proc mount; `EINVAL` otherwise). Parent directories are created as
    /// needed; the file is re-rendered on every observation.
    pub fn proc_file<F>(&self, path: &str, render: F) -> VfsResult<()>
    where
        F: Fn() -> String + Send + Sync + 'static,
    {
        if !self.proc.covers(path) {
            return err(Errno::EINVAL, path);
        }
        let root = Credentials::root();
        let vp = VPath::new(path);
        {
            let _h = HookDepth::enter();
            let _p = ProcDepth::enter();
            self.mkdir_all(vp.parent().as_str(), Mode::DIR_DEFAULT, &root)?;
            self.write_file(vp.as_str(), render().as_bytes(), &root)?;
        }
        let render: ProcRender = Arc::new(render);
        self.proc.register(vp.as_str(), render);
        Ok(())
    }

    // ----------------------------------------------------------------
    // Internal helpers
    // ----------------------------------------------------------------

    /// Tally one operation on `path`. Proc-mount paths and internal proc
    /// maintenance are exempt: introspection must not disturb what it
    /// measures.
    #[inline]
    pub(crate) fn count(&self, op: OpKind, path: &str) {
        if ProcDepth::active() || self.proc.covers(path) {
            return;
        }
        self.counters.bump(op);
        self.metrics.record(op, path);
    }

    /// [`Self::count`], then consume one syscall-rate token for the calling
    /// uid (`EAGAIN` when its bucket is empty). Root and hook-initiated
    /// maintenance are exempt — throttling a semantic hook mid-mutation
    /// would leave the tree half-updated.
    #[inline]
    fn charge(&self, op: OpKind, path: &str, creds: &Credentials) -> VfsResult<()> {
        self.charge_uid(op, path, creds.uid)
    }

    #[inline]
    fn charge_uid(&self, op: OpKind, path: &str, uid: Uid) -> VfsResult<()> {
        if ProcDepth::active() || self.proc.covers(path) {
            return Ok(());
        }
        self.counters.bump(op);
        self.metrics.record(op, path);
        if uid.0 != 0 && !HookDepth::active() {
            self.rctl.charge_syscall(uid.0, path)?;
        }
        Ok(())
    }

    /// Give hooks a chance to materialise `path` before it is observed.
    fn pre_access(&self, path: &str) {
        if HookDepth::active() || ProcDepth::active() {
            return;
        }
        let hooks: Vec<Arc<dyn SemanticHook>> = {
            let h = self.hooks.read();
            if h.is_empty() {
                return;
            }
            h.clone()
        };
        let vp = VPath::new(path);
        for h in &hooks {
            h.pre_access(self, &vp);
        }
    }

    /// Let hooks veto a mutation of `path` (proc mounts: `EROFS`).
    fn validate_mutation(&self, path: &VPath) -> VfsResult<()> {
        self.validate_with_hooks(|h| h.validate_mutate(self, path))
    }

    /// Permission check against a locked shard set.
    fn may_access_set(set: &ShardSet, ino: Ino, creds: &Credentials, access: Access) -> bool {
        set.inode(ino)
            .map(|n| check_access(creds, n.uid, n.gid, n.mode, n.acl.as_ref(), access))
            .unwrap_or(false)
    }

    /// Sticky-directory deletion check: in a sticky dir, only the entry's
    /// owner, the dir's owner, or root may remove/rename an entry.
    fn sticky_ok_set(set: &ShardSet, dir: Ino, entry_ino: Ino, creds: &Credentials) -> bool {
        if creds.is_root() {
            return true;
        }
        let (sticky, dir_uid) = match set.inode(dir) {
            Ok(n) => (n.mode.sticky(), n.uid),
            Err(_) => return true, // vanished: the entry verify already failed
        };
        if !sticky || creds.uid == dir_uid {
            return true;
        }
        set.inode(entry_ino)
            .map(|n| n.uid == creds.uid)
            .unwrap_or(false)
    }

    /// Walk `path`, resolving intermediate symlinks, checking Exec on every
    /// traversed directory. Returns the canonical parent plus final name.
    /// `follow_last`: also resolve the final component if it is a symlink.
    ///
    /// Hop-by-hop locking: each step takes exactly one shard read-lock,
    /// copies out what it needs, and releases before the next step. The
    /// result is therefore a *snapshot* under concurrency; mutating callers
    /// re-verify it under their shard write-locks.
    fn resolve_live(
        &self,
        path: &VPath,
        creds: &Credentials,
        follow_last: bool,
    ) -> VfsResult<Resolved> {
        if path.as_str().len() > PATH_MAX {
            return err(Errno::ENAMETOOLONG, path.as_str());
        }
        let work: VecDeque<String> = path.components().map(str::to_string).collect();
        self.resolve_from(
            ROOT_INO,
            VPath::root(),
            work,
            creds,
            follow_last,
            path.as_str(),
        )
    }

    /// The walk behind [`Self::resolve_live`], generalized to start at an
    /// arbitrary directory — the mechanism descriptor-relative syscalls use
    /// to pay resolution only for their relative components. `orig` is the
    /// original operand, used in error reporting.
    fn resolve_from(
        &self,
        start_ino: Ino,
        start_path: VPath,
        mut work: VecDeque<String>,
        creds: &Credentials,
        follow_last: bool,
        orig: &str,
    ) -> VfsResult<Resolved> {
        if work.is_empty() {
            return Ok(Resolved {
                parent_ino: start_ino,
                parent_path: start_path.clone(),
                name: String::new(),
                target: Some(start_ino),
            });
        }

        // The dcache never serves proc-covered paths (nor internal proc
        // maintenance): introspection must not disturb what it measures,
        // and the rendered tree is rewritten too often to be worth caching.
        let use_cache = self.dcache.enabled() && !ProcDepth::active() && !self.proc.covers(orig);

        let mut cur_ino = start_ino;
        let mut cur_path = start_path;
        let mut links = 0u32;

        loop {
            let comp = match work.pop_front() {
                Some(c) => c,
                None => {
                    // Path fully consumed by symlink expansion ending in a dir.
                    return Ok(Resolved {
                        parent_ino: cur_ino,
                        parent_path: cur_path.clone(),
                        name: String::new(),
                        target: Some(cur_ino),
                    });
                }
            };
            if comp.len() > NAME_MAX {
                return err(Errno::ENAMETOOLONG, orig);
            }

            if comp == ".." {
                // `..` always resolves live: parent pointers are rewritten
                // by rename and are not worth caching.
                let parent = match self.tables.with_inode(cur_ino, |node| {
                    if node.dir_entries().is_err() {
                        return Err(VfsError::new(Errno::ENOTDIR, cur_path.as_str()));
                    }
                    if !check_access(
                        creds,
                        node.uid,
                        node.gid,
                        node.mode,
                        node.acl.as_ref(),
                        Access::Exec,
                    ) {
                        return Err(VfsError::new(Errno::EACCES, cur_path.as_str()));
                    }
                    match &node.kind {
                        NodeKind::Dir { parent, .. } => Ok(*parent),
                        _ => unreachable!("dir_entries() above guarantees a directory"),
                    }
                }) {
                    Ok(r) => r?,
                    // A directory we were standing in vanished mid-walk
                    // (impossible with shards=1; a concurrent rmdir
                    // otherwise): linearize after the removal.
                    Err(_) => return err(Errno::ENOENT, cur_path.as_str()),
                };
                cur_ino = parent;
                cur_path = cur_path.parent();
                continue;
            }

            // One hash hit (warm) or one shard read-lock (cold) per hop.
            let key = (cur_ino.0, comp);
            let cached = if use_cache {
                self.dcache.lookup(cur_ino, &key)
            } else {
                None
            };
            let child: Option<(Ino, CachedKind)> = match cached {
                Some(d) => {
                    // Revalidate permissions against the *caller's*
                    // credentials on every hit — the cache can never widen
                    // access, only skip the inode-table read.
                    if !check_access(
                        creds,
                        d.perm.uid,
                        d.perm.gid,
                        d.perm.mode,
                        d.perm.acl.as_ref(),
                        Access::Exec,
                    ) {
                        return err(Errno::EACCES, cur_path.as_str());
                    }
                    d.child
                }
                None => {
                    // Seqlock-style fill: load the parent's generation
                    // BEFORE the live read. Any mutation committing in
                    // between bumps it, so the insert below is dropped and
                    // a pre-mutation snapshot can never be published.
                    let fill_gen = if use_cache {
                        Some(self.dcache.gen(cur_ino))
                    } else {
                        None
                    };
                    let (child_ino, perm) = match self.tables.with_inode(cur_ino, |node| {
                        let entries = match node.dir_entries() {
                            Ok(e) => e,
                            Err(_) => return Err(VfsError::new(Errno::ENOTDIR, cur_path.as_str())),
                        };
                        if !check_access(
                            creds,
                            node.uid,
                            node.gid,
                            node.mode,
                            node.acl.as_ref(),
                            Access::Exec,
                        ) {
                            return Err(VfsError::new(Errno::EACCES, cur_path.as_str()));
                        }
                        Ok((
                            entries.get(&key.1).copied(),
                            ParentPerm {
                                uid: node.uid,
                                gid: node.gid,
                                mode: node.mode,
                                acl: node.acl.clone(),
                            },
                        ))
                    }) {
                        Ok(r) => r?,
                        // A directory we were standing in vanished mid-walk
                        // (impossible with shards=1; a concurrent rmdir
                        // otherwise): linearize after the removal.
                        Err(_) => return err(Errno::ENOENT, cur_path.as_str()),
                    };
                    match child_ino {
                        None => {
                            if let Some(gen) = fill_gen {
                                // Negative entry: cache the ENOENT so
                                // repeat probes of absent paths are one
                                // hash hit.
                                self.dcache.insert(
                                    cur_ino,
                                    (key.0, key.1.clone()),
                                    Dentry {
                                        child: None,
                                        gen,
                                        perm,
                                    },
                                );
                            }
                            None
                        }
                        Some(ci) => {
                            if fill_gen.is_none() && work.is_empty() && !follow_last {
                                // Nothing needs the child's kind: return the
                                // snapshot without an extra probe, exactly
                                // as the pre-cache walk did.
                                return Ok(Resolved {
                                    parent_ino: cur_ino,
                                    parent_path: cur_path.clone(),
                                    name: key.1,
                                    target: Some(ci),
                                });
                            }
                            match self.tables.with_inode(ci, |n| match &n.kind {
                                NodeKind::Dir { .. } => CachedKind::Dir,
                                NodeKind::Symlink(t) => CachedKind::Symlink(t.clone()),
                                NodeKind::File(_) => CachedKind::File,
                            }) {
                                Ok(kind) => {
                                    if let Some(gen) = fill_gen {
                                        // An inode's kind is immutable for
                                        // the lifetime of its number, so
                                        // caching it is safe while the
                                        // entry validates.
                                        self.dcache.insert(
                                            cur_ino,
                                            (key.0, key.1.clone()),
                                            Dentry {
                                                child: Some((ci, kind.clone())),
                                                gen,
                                                perm,
                                            },
                                        );
                                    }
                                    Some((ci, kind))
                                }
                                Err(_) => {
                                    // Child vanished between the two reads;
                                    // never cached.
                                    if work.is_empty() {
                                        // Return the snapshot; mutating
                                        // callers re-verify under their
                                        // shard write-locks.
                                        return Ok(Resolved {
                                            parent_ino: cur_ino,
                                            parent_path: cur_path.clone(),
                                            name: key.1,
                                            target: Some(ci),
                                        });
                                    }
                                    return err(Errno::ENOENT, cur_path.join(&key.1).as_str());
                                }
                            }
                        }
                    }
                }
            };

            let is_last = work.is_empty();
            if is_last {
                // Follow a final symlink only when asked.
                if follow_last {
                    if let Some((_, CachedKind::Symlink(target))) = &child {
                        links += 1;
                        if links > MAX_SYMLINK_HOPS {
                            return err(Errno::ELOOP, orig);
                        }
                        let target = target.clone();
                        Self::expand_symlink(&mut work, &mut cur_ino, &mut cur_path, &target);
                        continue;
                    }
                }
                return Ok(Resolved {
                    parent_ino: cur_ino,
                    parent_path: cur_path.clone(),
                    name: key.1,
                    target: child.map(|(i, _)| i),
                });
            }

            // Intermediate component must exist and be traversable.
            match child {
                None => return err(Errno::ENOENT, cur_path.join(&key.1).as_str()),
                Some((ci, CachedKind::Dir)) => {
                    cur_path = cur_path.join(&key.1);
                    cur_ino = ci;
                }
                Some((_, CachedKind::Symlink(target))) => {
                    links += 1;
                    if links > MAX_SYMLINK_HOPS {
                        return err(Errno::ELOOP, orig);
                    }
                    Self::expand_symlink(&mut work, &mut cur_ino, &mut cur_path, &target);
                }
                Some((_, CachedKind::File)) => {
                    return err(Errno::ENOTDIR, cur_path.join(&key.1).as_str());
                }
            }
        }
    }

    fn expand_symlink(
        work: &mut VecDeque<String>,
        cur_ino: &mut Ino,
        cur_path: &mut VPath,
        target: &str,
    ) {
        let tpath = if target.starts_with('/') {
            *cur_ino = ROOT_INO;
            *cur_path = VPath::root();
            VPath::new(target)
        } else {
            // Relative target: resolved against the current directory; the
            // components are queued raw so `..` handling stays lookup-time.
            VPath::new(&format!("/{target}"))
        };
        let comps: Vec<&str> = tpath.components().collect();
        for c in comps.into_iter().rev() {
            work.push_front(c.to_string());
        }
    }

    /// Resolve and require the final target to exist. Follows final symlink
    /// when `follow` is set.
    fn lookup_live(&self, path: &VPath, creds: &Credentials, follow: bool) -> VfsResult<Ino> {
        let r = self.resolve_live(path, creds, follow)?;
        r.target
            .ok_or_else(|| VfsError::new(Errno::ENOENT, path.as_str()))
    }

    /// Resolve `rel` (relative; `EINVAL` if absolute) against an open
    /// directory descriptor. Only the relative components pay resolution
    /// hops. `EBADF` for a closed descriptor, `ENOENT` if its directory
    /// was removed, `ENOTDIR` if it is not a directory. Paths in the
    /// result are built from the descriptor's open-time path; like
    /// inotify, events for descriptor-relative mutations therefore fire
    /// under the name the directory had when it was opened.
    fn resolve_at(
        &self,
        dir: Fd,
        rel: &str,
        creds: &Credentials,
        follow_last: bool,
    ) -> VfsResult<Resolved> {
        if rel.starts_with('/') {
            return err(Errno::EINVAL, rel);
        }
        if rel.len() > PATH_MAX {
            return err(Errno::ENAMETOOLONG, rel);
        }
        let (dino, dpath) = match self.tables.with_handle(dir.0, |h| (h.ino, h.path.clone())) {
            Some(v) => v,
            None => return err(Errno::EBADF, rel),
        };
        let is_dir = self
            .tables
            .with_inode(dino, |n| matches!(n.kind, NodeKind::Dir { .. }))
            .map_err(|_| VfsError::new(Errno::ENOENT, dpath.as_str()))?;
        if !is_dir {
            return err(Errno::ENOTDIR, dpath.as_str());
        }
        let work: VecDeque<String> = VPath::new(&format!("/{rel}"))
            .components()
            .map(str::to_string)
            .collect();
        self.resolve_from(dino, dpath, work, creds, follow_last, rel)
    }

    fn run_hooks(&self, pending: Vec<PendingHook>, creds: &Credentials) {
        if pending.is_empty() || HookDepth::active() {
            return;
        }
        let hooks: Vec<Arc<dyn SemanticHook>> = self.hooks.read().clone();
        if hooks.is_empty() {
            return;
        }
        let _guard = HookDepth::enter();
        for p in pending {
            for h in &hooks {
                match &p {
                    PendingHook::Mkdir(path) => h.post_mkdir(self, path, creds),
                    PendingHook::Create(path) => h.post_create(self, path, creds),
                    PendingHook::CloseWrite(path) => h.post_close_write(self, path, creds),
                }
            }
        }
    }

    /// Emit every event gathered by one operation as a single batch: each
    /// watch's queue gate is taken once per batch, outside any shard lock.
    fn emit_all(&self, events: Vec<PendingEvent>) {
        self.notify.emit_batch(&events);
    }

    /// Validate a create/symlink against hooks (outside the lock).
    fn validate_with_hooks(&self, f: impl Fn(&dyn SemanticHook) -> VfsResult<()>) -> VfsResult<()> {
        if HookDepth::active() {
            return Ok(());
        }
        let hooks: Vec<Arc<dyn SemanticHook>> = self.hooks.read().clone();
        for h in &hooks {
            f(h.as_ref())?;
        }
        Ok(())
    }

    // ----------------------------------------------------------------
    // Metadata operations
    // ----------------------------------------------------------------

    /// `stat(2)`: follow symlinks.
    pub fn stat(&self, path: &str, creds: &Credentials) -> VfsResult<FileStat> {
        self.pre_access(path);
        self.charge(OpKind::Stat, path, creds)?;
        self.stat_common(path, creds, true)
    }

    /// `lstat(2)`: do not follow a final symlink.
    pub fn lstat(&self, path: &str, creds: &Credentials) -> VfsResult<FileStat> {
        self.pre_access(path);
        self.charge(OpKind::Stat, path, creds)?;
        self.stat_common(path, creds, false)
    }

    /// The attribute snapshot a `stat` returns, copied under a shard lock.
    fn stat_of(node: &Inode, ino: Ino) -> FileStat {
        FileStat {
            ino,
            file_type: node.file_type(),
            mode: node.mode,
            uid: node.uid,
            gid: node.gid,
            size: node.size(),
            nlink: node.nlink,
            mtime: node.mtime,
            ctime: node.ctime,
        }
    }

    /// Locked attribute read that doubles as the optimistic path's fill:
    /// the snapshot is published to `ino`'s attribute block under the
    /// shard seq sampled inside the read lock, so the *next* read of an
    /// unchanged shard is lock-free. `EIO` when the inode is gone.
    fn stat_locked_and_fill(&self, ino: Ino) -> VfsResult<FileStat> {
        self.tables.with_inode_at(ino, |node, seq| {
            let st = Self::stat_of(node, ino);
            self.readpath.publish_attr(seq, &st, node.acl.is_some());
            st
        })
    }

    fn stat_common(&self, path: &str, creds: &Credentials, follow: bool) -> VfsResult<FileStat> {
        let vp = VPath::new(path);
        loop {
            let ino = self.lookup_live(&vp, creds, follow)?;
            // Optimistic: a validated attribute block answers with zero
            // table locks. stat(2) needs no permission on the target
            // itself — ancestor exec was checked during resolution (dcache
            // hits revalidate it against the caller's credentials) — so
            // even an ACL-bearing inode may be served.
            if let AttrRead::Hit(st) = self.readpath.read_attr(&self.tables, ino) {
                return Ok(st);
            }
            match self.stat_locked_and_fill(ino) {
                Ok(st) => return Ok(st),
                Err(_) => continue, // inode vanished between lookup and read
            }
        }
    }

    /// Whether `path` resolves to an existing object (symlinks followed).
    /// Does not count as a syscall on failure paths in callers' accounting —
    /// it is a `stat` and is tallied as one.
    pub fn exists(&self, path: &str, creds: &Credentials) -> bool {
        self.stat(path, creds).is_ok()
    }

    /// Resolve `path` to its canonical form (all symlinks resolved).
    pub fn canonicalize(&self, path: &str, creds: &Credentials) -> VfsResult<VPath> {
        self.charge(OpKind::Stat, path, creds)?;
        let vp = VPath::new(path);
        let r = self.resolve_live(&vp, creds, true)?;
        if r.target.is_none() {
            return err(Errno::ENOENT, vp.as_str());
        }
        Ok(if r.name.is_empty() {
            r.parent_path
        } else {
            r.parent_path.join(&r.name)
        })
    }

    /// `chmod(2)`.
    pub fn chmod(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Setattr, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        loop {
            let ino = self.lookup_live(&vp, creds, true)?;
            let mut set = self.tables.lock(&[LockKey::Ino(ino)]);
            if set.inode(ino).is_err() {
                drop(set);
                continue;
            }
            let now = self.clock.tick();
            let node = set.inode_mut(ino)?;
            if !creds.is_root() && creds.uid != node.uid {
                return err(Errno::EPERM, vp.as_str());
            }
            node.mode = Mode(mode.0 & 0o7777);
            node.ctime = now;
            let new_mode = node.mode;
            self.jrnl(vp.as_str(), || Record::SetMode {
                ino,
                mode: new_mode,
                tick: now,
            });
            // Dentries snapshot this inode's permission bits; retire them
            // while the shard locks are still held.
            self.bump_gen(ino);
            break;
        }
        self.notify.emit(EventKind::Attrib, &vp, None);
        Ok(())
    }

    /// `chown(2)`. Only root may change the owner; the owner may change the
    /// group to one they belong to.
    pub fn chown(
        &self,
        path: &str,
        uid: Option<Uid>,
        gid: Option<Gid>,
        creds: &Credentials,
    ) -> VfsResult<()> {
        self.charge(OpKind::Setattr, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        loop {
            let ino = self.lookup_live(&vp, creds, true)?;
            let mut set = self.tables.lock(&[LockKey::Ino(ino)]);
            if set.inode(ino).is_err() {
                drop(set);
                continue;
            }
            let now = self.clock.tick();
            let node = set.inode_mut(ino)?;
            if let Some(u) = uid {
                if !creds.is_root() && u != node.uid {
                    return err(Errno::EPERM, vp.as_str());
                }
                node.uid = u;
            }
            if let Some(g) = gid {
                #[allow(clippy::nonminimal_bool)] // the spelled-out form mirrors POSIX wording
                if !creds.is_root() && !(creds.uid == node.uid && creds.in_group(g)) {
                    return err(Errno::EPERM, vp.as_str());
                }
                node.gid = g;
            }
            node.ctime = now;
            let (new_uid, new_gid) = (node.uid, node.gid);
            self.jrnl(vp.as_str(), || Record::SetOwner {
                ino,
                uid: new_uid,
                gid: new_gid,
                tick: now,
            });
            self.bump_gen(ino);
            break;
        }
        self.notify.emit(EventKind::Attrib, &vp, None);
        Ok(())
    }

    /// Replace the ACL on `path` (owner or root only). `None` clears it.
    pub fn set_acl(&self, path: &str, acl: Option<Acl>, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Xattr, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        loop {
            let ino = self.lookup_live(&vp, creds, true)?;
            let mut set = self.tables.lock(&[LockKey::Ino(ino)]);
            if set.inode(ino).is_err() {
                drop(set);
                continue;
            }
            let now = self.clock.tick();
            let node = set.inode_mut(ino)?;
            if !creds.is_root() && creds.uid != node.uid {
                return err(Errno::EPERM, vp.as_str());
            }
            node.acl = acl.filter(|a| !a.is_empty());
            node.ctime = now;
            let new_acl = node.acl.clone();
            self.jrnl(vp.as_str(), || Record::SetAcl {
                ino,
                acl: new_acl,
                tick: now,
            });
            self.bump_gen(ino);
            break;
        }
        self.notify.emit(EventKind::Attrib, &vp, None);
        Ok(())
    }

    /// Read the ACL on `path` (requires Read access).
    pub fn get_acl(&self, path: &str, creds: &Credentials) -> VfsResult<Option<Acl>> {
        self.charge(OpKind::Xattr, path, creds)?;
        let vp = VPath::new(path);
        loop {
            let ino = self.lookup_live(&vp, creds, true)?;
            match self.tables.with_inode(ino, |node| {
                if !check_access(
                    creds,
                    node.uid,
                    node.gid,
                    node.mode,
                    node.acl.as_ref(),
                    Access::Read,
                ) {
                    return Err(VfsError::new(Errno::EACCES, vp.as_str()));
                }
                Ok(node.acl.clone())
            }) {
                Ok(r) => return r,
                Err(_) => continue,
            }
        }
    }

    // ----------------------------------------------------------------
    // Extended attributes (paper §5.1: arbitrary developer metadata; yanc
    // uses them to declare consistency requirements consumed by the DFS).
    // ----------------------------------------------------------------

    /// `setxattr(2)`-alike. Requires Write access to the object.
    pub fn set_xattr(
        &self,
        path: &str,
        name: &str,
        value: &[u8],
        creds: &Credentials,
    ) -> VfsResult<()> {
        self.charge(OpKind::Xattr, path, creds)?;
        if name.is_empty() || name.len() > NAME_MAX {
            return err(Errno::EINVAL, name);
        }
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        loop {
            let ino = self.lookup_live(&vp, creds, true)?;
            let mut set = self.tables.lock(&[LockKey::Ino(ino)]);
            if set.inode(ino).is_err() {
                drop(set);
                continue;
            }
            if !Self::may_access_set(&set, ino, creds, Access::Write) {
                return err(Errno::EACCES, vp.as_str());
            }
            let now = self.clock.tick();
            let node = set.inode_mut(ino)?;
            node.xattrs.insert(name.to_string(), value.to_vec());
            node.ctime = now;
            self.jrnl(vp.as_str(), || Record::SetXattr {
                ino,
                name: name.to_string(),
                value: value.to_vec(),
                tick: now,
            });
            break;
        }
        self.notify.emit(EventKind::Attrib, &vp, None);
        Ok(())
    }

    /// `getxattr(2)`-alike; `ENODATA` when absent.
    pub fn get_xattr(&self, path: &str, name: &str, creds: &Credentials) -> VfsResult<Vec<u8>> {
        self.charge(OpKind::Xattr, path, creds)?;
        let vp = VPath::new(path);
        loop {
            let ino = self.lookup_live(&vp, creds, true)?;
            match self.tables.with_inode(ino, |node| {
                if !check_access(
                    creds,
                    node.uid,
                    node.gid,
                    node.mode,
                    node.acl.as_ref(),
                    Access::Read,
                ) {
                    return Err(VfsError::new(Errno::EACCES, vp.as_str()));
                }
                node.xattrs
                    .get(name)
                    .cloned()
                    .ok_or_else(|| VfsError::new(Errno::ENODATA, format!("{path}#{name}")))
            }) {
                Ok(r) => return r,
                Err(_) => continue,
            }
        }
    }

    /// `listxattr(2)`-alike.
    pub fn list_xattr(&self, path: &str, creds: &Credentials) -> VfsResult<Vec<String>> {
        self.charge(OpKind::Xattr, path, creds)?;
        let vp = VPath::new(path);
        loop {
            let ino = self.lookup_live(&vp, creds, true)?;
            match self.tables.with_inode(ino, |node| {
                if !check_access(
                    creds,
                    node.uid,
                    node.gid,
                    node.mode,
                    node.acl.as_ref(),
                    Access::Read,
                ) {
                    return Err(VfsError::new(Errno::EACCES, vp.as_str()));
                }
                Ok(node.xattrs.keys().cloned().collect::<Vec<String>>())
            }) {
                Ok(r) => return r,
                Err(_) => continue,
            }
        }
    }

    /// `removexattr(2)`-alike; `ENODATA` when absent.
    pub fn remove_xattr(&self, path: &str, name: &str, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Xattr, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        loop {
            let ino = self.lookup_live(&vp, creds, true)?;
            let mut set = self.tables.lock(&[LockKey::Ino(ino)]);
            if set.inode(ino).is_err() {
                drop(set);
                continue;
            }
            if !Self::may_access_set(&set, ino, creds, Access::Write) {
                return err(Errno::EACCES, vp.as_str());
            }
            let now = self.clock.tick();
            let node = set.inode_mut(ino)?;
            if node.xattrs.remove(name).is_none() {
                return err(Errno::ENODATA, format!("{path}#{name}"));
            }
            node.ctime = now;
            self.jrnl(vp.as_str(), || Record::RemoveXattr {
                ino,
                name: name.to_string(),
                tick: now,
            });
            break;
        }
        self.notify.emit(EventKind::Attrib, &vp, None);
        Ok(())
    }

    // ----------------------------------------------------------------
    // Directory operations
    // ----------------------------------------------------------------

    /// `mkdir(2)`.
    pub fn mkdir(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Mkdir, path, creds)?;
        self.mkdir_common(None, path, mode, creds)
    }

    /// `mkdirat(2)`: create `rel` (relative; `EINVAL` if absolute) under
    /// the directory descriptor `dir`, paying resolution only for the
    /// relative components. Counted as one `mkdir` syscall.
    pub fn mkdirat(&self, dir: Fd, rel: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        let dpath = match self.tables.with_handle(dir.0, |h| h.path.clone()) {
            Some(p) => p,
            None => return err(Errno::EBADF, rel),
        };
        self.charge(OpKind::Mkdir, dpath.join_path(rel).as_str(), creds)?;
        self.mkdir_common(Some(dir), rel, mode, creds)
    }

    /// Shared body of [`Self::mkdir`]/[`Self::mkdirat`]; the caller has
    /// charged the syscall.
    fn mkdir_common(
        &self,
        at: Option<Fd>,
        path: &str,
        mode: Mode,
        creds: &Credentials,
    ) -> VfsResult<()> {
        let vp = match at {
            None => VPath::new(path),
            Some(d) => {
                if path.starts_with('/') {
                    return err(Errno::EINVAL, path);
                }
                match self.tables.with_handle(d.0, |h| h.path.clone()) {
                    Some(dp) => dp.join_path(path),
                    None => return err(Errno::EBADF, path),
                }
            }
        };
        self.validate_mutation(&vp)?;
        let full = loop {
            let r = match at {
                None => self.resolve_live(&vp, creds, false)?,
                Some(d) => self.resolve_at(d, path, creds, false)?,
            };
            if r.name.is_empty() {
                return err(Errno::EEXIST, vp.as_str());
            }
            if !valid_name(&r.name) {
                return err(Errno::EINVAL, vp.as_str());
            }
            if r.target.is_some() {
                return err(Errno::EEXIST, vp.as_str());
            }
            let ino = self.tables.alloc_ino();
            let mut set = self
                .tables
                .lock(&[LockKey::Ino(r.parent_ino), LockKey::Ino(ino)]);
            if !set.entry_is(r.parent_ino, &r.name, None) {
                drop(set);
                continue;
            }
            if !Self::may_access_set(&set, r.parent_ino, creds, Access::Write) {
                return err(Errno::EACCES, r.parent_path.as_str());
            }
            if set.inode(r.parent_ino)?.dir_entries()?.len() >= self.limits.max_dir_entries {
                return err(Errno::EDQUOT, r.parent_path.as_str());
            }
            let now = self.clock.tick();
            set.insert_inode(
                ino,
                Inode {
                    kind: NodeKind::Dir {
                        entries: BTreeMap::new(),
                        parent: r.parent_ino,
                    },
                    mode: Mode(mode.0 & 0o7777),
                    uid: creds.uid,
                    gid: creds.gid,
                    nlink: 2,
                    mtime: now,
                    ctime: now,
                    xattrs: BTreeMap::new(),
                    acl: None,
                    open_count: 0,
                },
            );
            let parent = set.inode_mut(r.parent_ino)?;
            parent.dir_entries_mut()?.insert(r.name.clone(), ino);
            parent.nlink += 1;
            parent.mtime = now;
            let full = r.parent_path.join(&r.name);
            self.jrnl(full.as_str(), || Record::Mkdir {
                parent: r.parent_ino,
                name: r.name.clone(),
                ino,
                mode: Mode(mode.0 & 0o7777),
                uid: creds.uid,
                gid: creds.gid,
                tick: now,
            });
            self.bump_gen(r.parent_ino);
            break full;
        };
        self.notify.emit(EventKind::Create, &full, full.file_name());
        self.run_hooks(vec![PendingHook::Mkdir(full)], creds);
        Ok(())
    }

    /// `mkdir -p`: create every missing ancestor; existing directories are
    /// fine, an existing non-directory is `ENOTDIR`/`EEXIST`.
    pub fn mkdir_all(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        let vp = VPath::new(path);
        let mut cur = VPath::root();
        for comp in vp.components() {
            cur = cur.join(comp);
            match self.mkdir(cur.as_str(), mode, creds) {
                Ok(()) => {}
                Err(e) if e.errno == Errno::EEXIST => {
                    let st = self.stat(cur.as_str(), creds)?;
                    if !st.is_dir() {
                        return err(Errno::ENOTDIR, cur.as_str());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// `rmdir(2)`. If a registered hook declares `path` recursively
    /// removable (paper: switch directories), the whole subtree is removed.
    pub fn rmdir(&self, path: &str, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Rmdir, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        let recursive =
            !HookDepth::active() && self.hooks.read().iter().any(|h| h.rmdir_recursive(&vp));
        let events = loop {
            let mut events: Vec<PendingEvent> = Vec::new();
            let r = self.resolve_live(&vp, creds, false)?;
            if r.name.is_empty() {
                return err(Errno::EINVAL, vp.as_str()); // refusing to rmdir /
            }
            let ino = r
                .target
                .ok_or_else(|| VfsError::new(Errno::ENOENT, vp.as_str()))?;
            // A recursive removal can touch inodes in any shard; take them
            // all. The common (non-recursive) case stays two shards wide.
            let mut set = if recursive {
                self.tables.lock_all()
            } else {
                self.tables
                    .lock(&[LockKey::Ino(r.parent_ino), LockKey::Ino(ino)])
            };
            if !set.entry_is(r.parent_ino, &r.name, Some(ino)) {
                drop(set);
                continue;
            }
            if set.inode(ino)?.file_type() != FileType::Directory {
                return err(Errno::ENOTDIR, vp.as_str());
            }
            if !Self::may_access_set(&set, r.parent_ino, creds, Access::Write) {
                return err(Errno::EACCES, r.parent_path.as_str());
            }
            if !Self::sticky_ok_set(&set, r.parent_ino, ino, creds) {
                return err(Errno::EPERM, vp.as_str());
            }
            let empty = set.inode(ino)?.dir_entries()?.is_empty();
            if !empty && !recursive {
                return err(Errno::ENOTEMPTY, vp.as_str());
            }
            let full = r.parent_path.join(&r.name);
            if !empty {
                self.remove_tree(&mut set, ino, &full, &mut events)?;
            }
            let parent = set.inode_mut(r.parent_ino)?;
            parent.dir_entries_mut()?.remove(&r.name);
            parent.nlink -= 1;
            let now = self.clock.tick();
            parent.mtime = now;
            set.remove_inode(ino);
            self.jrnl(full.as_str(), || {
                if empty {
                    Record::Rmdir {
                        parent: r.parent_ino,
                        name: r.name.clone(),
                        tick: now,
                    }
                } else {
                    Record::RmTree {
                        parent: r.parent_ino,
                        name: r.name.clone(),
                        tick: now,
                    }
                }
            });
            // Retire the removed directory's (negative) dentries as well as
            // its entry under the parent.
            self.bump_gen(r.parent_ino);
            self.bump_gen(ino);
            events.push((EventKind::DeleteSelf, full.clone(), None));
            events.push((EventKind::Delete, full.clone(), Some(r.name.clone())));
            break events;
        };
        self.emit_all(events);
        Ok(())
    }

    /// Remove everything under `ino` (which stays in place), bottom-up,
    /// accumulating Delete events. Requires a lock-all [`ShardSet`].
    fn remove_tree(
        &self,
        set: &mut ShardSet,
        ino: Ino,
        path: &VPath,
        events: &mut Vec<PendingEvent>,
    ) -> VfsResult<()> {
        // Every dentry keyed under this directory dies with its contents.
        self.bump_gen(ino);
        let children: Vec<(String, Ino)> = set
            .inode(ino)?
            .dir_entries()?
            .iter()
            .map(|(n, i)| (n.clone(), *i))
            .collect();
        for (name, child) in children {
            let cpath = path.join(&name);
            let is_dir = matches!(set.inode(child)?.kind, NodeKind::Dir { .. });
            if is_dir {
                self.remove_tree(set, child, &cpath, events)?;
                set.remove_inode(child);
                let node = set.inode_mut(ino)?;
                node.nlink -= 1;
                node.dir_entries_mut()?.remove(&name);
            } else {
                let open = {
                    let cn = set.inode_mut(child)?;
                    cn.nlink = cn.nlink.saturating_sub(1);
                    cn.nlink > 0 || cn.open_count > 0
                };
                if !open {
                    set.remove_inode(child);
                }
                set.inode_mut(ino)?.dir_entries_mut()?.remove(&name);
            }
            events.push((EventKind::Delete, cpath, Some(name)));
        }
        Ok(())
    }

    /// `readdir(3)`: list a directory (requires Read access).
    pub fn readdir(&self, path: &str, creds: &Credentials) -> VfsResult<Vec<DirEntry>> {
        self.pre_access(path);
        self.charge(OpKind::Readdir, path, creds)?;
        let vp = VPath::new(path);
        loop {
            let ino = self.lookup_live(&vp, creds, true)?;
            let entries: Vec<(String, Ino)> = match self.tables.with_inode(ino, |node| {
                if !check_access(
                    creds,
                    node.uid,
                    node.gid,
                    node.mode,
                    node.acl.as_ref(),
                    Access::Read,
                ) {
                    return Err(VfsError::new(Errno::EACCES, vp.as_str()));
                }
                match node.dir_entries() {
                    Ok(e) => Ok(e.iter().map(|(n, i)| (n.clone(), *i)).collect()),
                    Err(_) => Err(VfsError::new(Errno::ENOTDIR, path)),
                }
            }) {
                Ok(r) => r?,
                Err(_) => continue,
            };
            // File types are a snapshot per entry; an entry whose inode
            // vanished mid-listing reports as a regular file, matching the
            // unlocked readdir/stat gap real applications live with.
            return Ok(entries
                .into_iter()
                .map(|(name, i)| {
                    let ft = self
                        .tables
                        .with_inode(i, |n| n.file_type())
                        .unwrap_or(FileType::Regular);
                    DirEntry {
                        name,
                        ino: i,
                        file_type: ft,
                    }
                })
                .collect());
        }
    }

    // ----------------------------------------------------------------
    // Symlinks & hard links
    // ----------------------------------------------------------------

    /// `symlink(2)`: create `linkpath` pointing at `target` (not required to
    /// exist). Registered hooks may veto schema-invalid links.
    pub fn symlink(&self, target: &str, linkpath: &str, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Symlink, linkpath, creds)?;
        let vp = VPath::new(linkpath);
        self.validate_mutation(&vp)?;
        self.validate_with_hooks(|h| h.validate_symlink(self, &vp, target))?;
        let full = loop {
            let r = self.resolve_live(&vp, creds, false)?;
            if r.name.is_empty() || !valid_name(&r.name) {
                return err(Errno::EINVAL, vp.as_str());
            }
            if r.target.is_some() {
                return err(Errno::EEXIST, vp.as_str());
            }
            let ino = self.tables.alloc_ino();
            let mut set = self
                .tables
                .lock(&[LockKey::Ino(r.parent_ino), LockKey::Ino(ino)]);
            if !set.entry_is(r.parent_ino, &r.name, None) {
                drop(set);
                continue;
            }
            if !Self::may_access_set(&set, r.parent_ino, creds, Access::Write) {
                return err(Errno::EACCES, r.parent_path.as_str());
            }
            let now = self.clock.tick();
            set.insert_inode(
                ino,
                Inode {
                    kind: NodeKind::Symlink(target.to_string()),
                    mode: Mode::SYMLINK,
                    uid: creds.uid,
                    gid: creds.gid,
                    nlink: 1,
                    mtime: now,
                    ctime: now,
                    xattrs: BTreeMap::new(),
                    acl: None,
                    open_count: 0,
                },
            );
            let parent = set.inode_mut(r.parent_ino)?;
            parent.dir_entries_mut()?.insert(r.name.clone(), ino);
            parent.mtime = now;
            let full = r.parent_path.join(&r.name);
            self.jrnl(full.as_str(), || Record::Symlink {
                parent: r.parent_ino,
                name: r.name.clone(),
                ino,
                target: target.to_string(),
                uid: creds.uid,
                gid: creds.gid,
                tick: now,
            });
            self.bump_gen(r.parent_ino);
            break full;
        };
        self.notify.emit(EventKind::Create, &full, full.file_name());
        Ok(())
    }

    /// `readlink(2)`.
    pub fn readlink(&self, path: &str, creds: &Credentials) -> VfsResult<String> {
        self.charge(OpKind::Readlink, path, creds)?;
        let vp = VPath::new(path);
        loop {
            let ino = self.lookup_live(&vp, creds, false)?;
            match self.tables.with_inode(ino, |node| match &node.kind {
                NodeKind::Symlink(t) => Ok(t.clone()),
                _ => Err(VfsError::new(Errno::EINVAL, path)),
            }) {
                Ok(r) => return r,
                Err(_) => continue,
            }
        }
    }

    /// `link(2)`: hard link (regular files only, as on Linux).
    pub fn link(&self, existing: &str, newpath: &str, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Link, newpath, creds)?;
        let vp_old = VPath::new(existing);
        let vp_new = VPath::new(newpath);
        self.validate_mutation(&vp_new)?;
        let full = loop {
            let src = self.lookup_live(&vp_old, creds, true)?;
            // Source-kind checks precede resolution of the new path (error
            // priority: linking a directory reports EPERM even when the new
            // path is bad).
            let probe = self
                .tables
                .with_inode(src, |n| (matches!(n.kind, NodeKind::File(_)), n.nlink));
            let (is_file, nlink) = match probe {
                Ok(v) => v,
                Err(_) => continue,
            };
            if !is_file {
                return err(Errno::EPERM, existing);
            }
            if nlink >= LINK_MAX {
                return err(Errno::EMLINK, existing);
            }
            let r = self.resolve_live(&vp_new, creds, false)?;
            if r.name.is_empty() || !valid_name(&r.name) {
                return err(Errno::EINVAL, vp_new.as_str());
            }
            if r.target.is_some() {
                return err(Errno::EEXIST, vp_new.as_str());
            }
            let mut set = self
                .tables
                .lock(&[LockKey::Ino(src), LockKey::Ino(r.parent_ino)]);
            if !set.entry_is(r.parent_ino, &r.name, None) {
                drop(set);
                continue;
            }
            let src_ok = match set.inode(src) {
                Ok(node) => {
                    if !matches!(node.kind, NodeKind::File(_)) {
                        return err(Errno::EPERM, existing);
                    }
                    if node.nlink >= LINK_MAX {
                        return err(Errno::EMLINK, existing);
                    }
                    true
                }
                Err(_) => false, // source vanished: retry (may now be ENOENT)
            };
            if !src_ok {
                drop(set);
                continue;
            }
            if !Self::may_access_set(&set, r.parent_ino, creds, Access::Write) {
                return err(Errno::EACCES, r.parent_path.as_str());
            }
            let now = self.clock.tick();
            {
                let node = set.inode_mut(src)?;
                node.nlink += 1;
                node.ctime = now;
            }
            let parent = set.inode_mut(r.parent_ino)?;
            parent.dir_entries_mut()?.insert(r.name.clone(), src);
            parent.mtime = now;
            let full = r.parent_path.join(&r.name);
            self.jrnl(full.as_str(), || Record::Link {
                parent: r.parent_ino,
                name: r.name.clone(),
                ino: src,
                tick: now,
            });
            self.bump_gen(r.parent_ino);
            break full;
        };
        self.notify.emit(EventKind::Create, &full, full.file_name());
        Ok(())
    }

    // ----------------------------------------------------------------
    // File create / unlink / rename
    // ----------------------------------------------------------------

    /// `unlink(2)`.
    pub fn unlink(&self, path: &str, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Unlink, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        let events = loop {
            let mut events: Vec<PendingEvent> = Vec::new();
            let r = self.resolve_live(&vp, creds, false)?;
            let ino = r
                .target
                .ok_or_else(|| VfsError::new(Errno::ENOENT, vp.as_str()))?;
            let mut set = self
                .tables
                .lock(&[LockKey::Ino(r.parent_ino), LockKey::Ino(ino)]);
            if !set.entry_is(r.parent_ino, &r.name, Some(ino)) {
                drop(set);
                continue;
            }
            if matches!(set.inode(ino)?.kind, NodeKind::Dir { .. }) {
                return err(Errno::EISDIR, vp.as_str());
            }
            if !Self::may_access_set(&set, r.parent_ino, creds, Access::Write) {
                return err(Errno::EACCES, r.parent_path.as_str());
            }
            if !Self::sticky_ok_set(&set, r.parent_ino, ino, creds) {
                return err(Errno::EPERM, vp.as_str());
            }
            let now = self.clock.tick();
            let parent = set.inode_mut(r.parent_ino)?;
            parent.dir_entries_mut()?.remove(&r.name);
            parent.mtime = now;
            let full = r.parent_path.join(&r.name);
            let node = set.inode_mut(ino)?;
            node.nlink -= 1;
            node.ctime = now;
            let gone = node.nlink == 0 && node.open_count == 0;
            if gone {
                set.remove_inode(ino);
                events.push((EventKind::DeleteSelf, full.clone(), None));
            }
            self.jrnl(full.as_str(), || Record::Unlink {
                parent: r.parent_ino,
                name: r.name.clone(),
                tick: now,
            });
            self.bump_gen(r.parent_ino);
            events.push((EventKind::Delete, full.clone(), Some(r.name.clone())));
            break events;
        };
        self.emit_all(events);
        Ok(())
    }

    /// `rename(2)`, with POSIX replace semantics: an existing target is
    /// atomically replaced when types are compatible (file→file,
    /// dir→empty dir); a directory cannot be moved into its own subtree.
    pub fn rename(&self, from: &str, to: &str, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Rename, from, creds)?;
        let vf = VPath::new(from);
        let vt = VPath::new(to);
        self.validate_mutation(&vf)?;
        self.validate_mutation(&vt)?;
        let events = loop {
            let mut events: Vec<PendingEvent> = Vec::new();
            let rf = self.resolve_live(&vf, creds, false)?;
            let src = rf
                .target
                .ok_or_else(|| VfsError::new(Errno::ENOENT, vf.as_str()))?;
            if rf.name.is_empty() {
                return err(Errno::EINVAL, vf.as_str());
            }
            let rt = self.resolve_live(&vt, creds, false)?;
            if rt.name.is_empty() || !valid_name(&rt.name) {
                return err(Errno::EINVAL, vt.as_str());
            }
            let src_is_dir = match self
                .tables
                .with_inode(src, |n| matches!(n.kind, NodeKind::Dir { .. }))
            {
                Ok(b) => b,
                Err(_) => continue, // source vanished; retry resolves ENOENT
            };
            // Directory renames serialize on a dedicated mutex (the
            // in-process `s_vfs_rename_mutex`): the path-prefix cycle check
            // below is computed from two independent resolutions, and two
            // concurrent cross-directory renames could each pass it while
            // jointly detaching a cycle. Under the mutex, an inode-based
            // ancestry walk is race-free: no other directory can be
            // reparented while we hold it.
            let _rename_guard = if src_is_dir {
                Some(self.rename_lock.lock())
            } else {
                None
            };
            let mut cycle = false;
            if src_is_dir {
                let mut anc = rt.parent_ino;
                let mut hops = 0usize;
                loop {
                    if anc == src {
                        cycle = true;
                        break;
                    }
                    if anc == ROOT_INO || hops > PATH_MAX {
                        break;
                    }
                    anc = match self.tables.with_inode(anc, |n| match &n.kind {
                        NodeKind::Dir { parent, .. } => Some(*parent),
                        _ => None,
                    }) {
                        Ok(Some(p)) => p,
                        _ => break, // vanished: the entry verify below retries
                    };
                    hops += 1;
                }
            }
            let mut keys = vec![
                LockKey::Ino(rf.parent_ino),
                LockKey::Ino(rt.parent_ino),
                LockKey::Ino(src),
            ];
            if let Some(dst) = rt.target {
                keys.push(LockKey::Ino(dst));
            }
            let mut set = self.tables.lock(&keys);
            if !set.entry_is(rf.parent_ino, &rf.name, Some(src))
                || !set.entry_is(rt.parent_ino, &rt.name, rt.target)
            {
                drop(set);
                continue;
            }
            if !Self::may_access_set(&set, rf.parent_ino, creds, Access::Write) {
                return err(Errno::EACCES, rf.parent_path.as_str());
            }
            if !Self::may_access_set(&set, rt.parent_ino, creds, Access::Write) {
                return err(Errno::EACCES, rt.parent_path.as_str());
            }
            if !Self::sticky_ok_set(&set, rf.parent_ino, src, creds) {
                return err(Errno::EPERM, vf.as_str());
            }
            let src_full = rf.parent_path.join(&rf.name);
            let dst_full = rt.parent_path.join(&rt.name);
            if src_full == dst_full {
                return Ok(()); // no-op rename to self
            }
            if src_is_dir && (dst_full.starts_with(&src_full) || cycle) {
                return err(Errno::EINVAL, vt.as_str());
            }

            // Handle an existing destination.
            if let Some(dst) = rt.target {
                if dst == src {
                    return Ok(()); // hard links to the same inode: no-op
                }
                let dst_is_dir = matches!(set.inode(dst)?.kind, NodeKind::Dir { .. });
                match (src_is_dir, dst_is_dir) {
                    (true, false) => return err(Errno::ENOTDIR, vt.as_str()),
                    (false, true) => return err(Errno::EISDIR, vt.as_str()),
                    (true, true) => {
                        if !set.inode(dst)?.dir_entries()?.is_empty() {
                            return err(Errno::ENOTEMPTY, vt.as_str());
                        }
                        set.inode_mut(rt.parent_ino)?.nlink -= 1;
                        set.remove_inode(dst);
                    }
                    (false, false) => {
                        let node = set.inode_mut(dst)?;
                        node.nlink -= 1;
                        if node.nlink == 0 && node.open_count == 0 {
                            set.remove_inode(dst);
                        }
                    }
                }
                events.push((EventKind::Delete, dst_full.clone(), Some(rt.name.clone())));
            }

            let now = self.clock.tick();
            {
                let pf = set.inode_mut(rf.parent_ino)?;
                pf.dir_entries_mut()?.remove(&rf.name);
                pf.mtime = now;
            }
            {
                let pt = set.inode_mut(rt.parent_ino)?;
                pt.dir_entries_mut()?.insert(rt.name.clone(), src);
                pt.mtime = now;
            }
            if src_is_dir && rf.parent_ino != rt.parent_ino {
                // Fix `..` and parent link counts.
                set.inode_mut(rf.parent_ino)?.nlink -= 1;
                set.inode_mut(rt.parent_ino)?.nlink += 1;
                if let NodeKind::Dir { parent, .. } = &mut set.inode_mut(src)?.kind {
                    *parent = rt.parent_ino;
                }
            }
            set.inode_mut(src)?.ctime = now;
            self.jrnl(src_full.as_str(), || Record::Rename {
                from_parent: rf.parent_ino,
                from_name: rf.name.clone(),
                to_parent: rt.parent_ino,
                to_name: rt.name.clone(),
                tick: now,
            });
            // Both parents changed their entry sets; a replaced directory
            // additionally loses its own (negative) dentries. Entries keyed
            // under the *moved* inode stay warm on purpose — its
            // `(ino, component)` mappings are unaffected by the move.
            self.bump_gen(rf.parent_ino);
            self.bump_gen(rt.parent_ino);
            if let Some(dst) = rt.target {
                self.bump_gen(dst);
            }
            events.push((EventKind::MovedFrom, src_full, Some(rf.name.clone())));
            events.push((EventKind::MovedTo, dst_full, Some(rt.name.clone())));
            break events;
        };
        self.emit_all(events);
        Ok(())
    }

    // ----------------------------------------------------------------
    // Open-file I/O
    // ----------------------------------------------------------------

    /// `open(2)`.
    pub fn open(&self, path: &str, flags: OpenFlags, creds: &Credentials) -> VfsResult<Fd> {
        self.pre_access(path);
        self.charge(OpKind::Open, path, creds)?;
        self.open_common(None, path, flags, creds, DirMode::Forbid)
    }

    /// Open a *directory* descriptor (`O_DIRECTORY`): the anchor for the
    /// descriptor-relative calls ([`Self::openat`], [`Self::mkdirat`],
    /// [`Self::readdir_fd`], [`Self::write_batch_at`]). Requires read
    /// permission on the directory; `ENOTDIR` if `path` is not one. The
    /// descriptor tracks the *inode*: renaming the directory does not
    /// invalidate it.
    pub fn open_dir(&self, path: &str, creds: &Credentials) -> VfsResult<Fd> {
        self.pre_access(path);
        self.charge(OpKind::Open, path, creds)?;
        self.open_common(None, path, OpenFlags::read_only(), creds, DirMode::Require)
    }

    /// `openat(2)`: open `rel` (a relative path; `EINVAL` if absolute)
    /// resolved from the directory descriptor `dir`. Only the relative
    /// components pay resolution hops — the prefix was resolved once at
    /// [`Self::open_dir`]. Flags behave exactly as in [`Self::open`].
    pub fn openat(
        &self,
        dir: Fd,
        rel: &str,
        flags: OpenFlags,
        creds: &Credentials,
    ) -> VfsResult<Fd> {
        let dpath = match self.tables.with_handle(dir.0, |h| h.path.clone()) {
            Some(p) => p,
            None => return err(Errno::EBADF, rel),
        };
        let full = dpath.join_path(rel);
        self.pre_access(full.as_str());
        self.charge(OpKind::Openat, full.as_str(), creds)?;
        self.open_common(Some(dir), rel, flags, creds, DirMode::Forbid)
    }

    /// [`Self::openat`] for a subdirectory: returns a new directory
    /// descriptor (`ENOTDIR` if `rel` is not a directory).
    pub fn openat_dir(&self, dir: Fd, rel: &str, creds: &Credentials) -> VfsResult<Fd> {
        let dpath = match self.tables.with_handle(dir.0, |h| h.path.clone()) {
            Some(p) => p,
            None => return err(Errno::EBADF, rel),
        };
        let full = dpath.join_path(rel);
        self.pre_access(full.as_str());
        self.charge(OpKind::Openat, full.as_str(), creds)?;
        self.open_common(
            Some(dir),
            rel,
            OpenFlags::read_only(),
            creds,
            DirMode::Require,
        )
    }

    /// Shared body of the path- and descriptor-relative opens. `at` set:
    /// `path` is relative and resolution starts at that descriptor's
    /// inode. The caller has already charged the syscall.
    fn open_common(
        &self,
        at: Option<Fd>,
        path: &str,
        flags: OpenFlags,
        creds: &Credentials,
        dir_mode: DirMode,
    ) -> VfsResult<Fd> {
        let vp = match at {
            None => VPath::new(path),
            Some(d) => {
                if path.starts_with('/') {
                    return err(Errno::EINVAL, path);
                }
                match self.tables.with_handle(d.0, |h| h.path.clone()) {
                    Some(dp) => dp.join_path(path),
                    None => return err(Errno::EBADF, path),
                }
            }
        };
        if flags.write || flags.create || flags.truncate || flags.append {
            self.validate_mutation(&vp)?;
        }
        // One slot in the global handle table, reserved up front (`ENFILE`)
        // and released by Drop on every error path below.
        let mut slot = HandleSlot::reserve(&self.tables, self.limits.max_open_files, vp.as_str())?;
        let (fd, created_path, modified) = 'attempt: loop {
            let r = match at {
                None => self.resolve_live(&vp, creds, true)?,
                Some(d) => self.resolve_at(d, path, creds, true)?,
            };
            let full = if r.name.is_empty() {
                r.parent_path.clone()
            } else {
                r.parent_path.join(&r.name)
            };
            let id = self.tables.alloc_fd();

            enum Plan {
                Existing {
                    ino: Ino,
                    /// The create path re-resolves after running hooks; a
                    /// target that raced into existence there is opened
                    /// without truncation (mirroring the original re-resolve
                    /// branch, which never truncated).
                    truncate_ok: bool,
                },
                Create {
                    parent: Ino,
                    parent_path: VPath,
                    name: String,
                    full: VPath,
                },
            }
            let plan = match r.target {
                Some(i) => {
                    if flags.create && flags.excl {
                        return err(Errno::EEXIST, vp.as_str());
                    }
                    Plan::Existing {
                        ino: i,
                        truncate_ok: true,
                    }
                }
                None => {
                    if !flags.create {
                        return err(Errno::ENOENT, vp.as_str());
                    }
                    if !valid_name(&r.name) {
                        return err(Errno::EINVAL, vp.as_str());
                    }
                    // validate_create hooks may read (or create!) the file;
                    // no locks are held here, so they may re-enter freely.
                    self.validate_with_hooks(|h| h.validate_create(self, &full))?;
                    let r2 = match at {
                        None => self.resolve_live(&vp, creds, true)?,
                        Some(d) => self.resolve_at(d, path, creds, true)?,
                    };
                    match r2.target {
                        Some(i) => {
                            if flags.excl {
                                return err(Errno::EEXIST, vp.as_str());
                            }
                            Plan::Existing {
                                ino: i,
                                truncate_ok: false,
                            }
                        }
                        None => Plan::Create {
                            parent: r2.parent_ino,
                            parent_path: r2.parent_path.clone(),
                            name: r2.name.clone(),
                            full: r2.parent_path.join(&r2.name),
                        },
                    }
                }
            };

            match plan {
                Plan::Existing { ino, truncate_ok } => {
                    let mut modified = false;
                    let mut set = self.tables.lock(&[LockKey::Ino(ino), LockKey::Fd(id)]);
                    let is_dir = match set.inode(ino) {
                        Ok(n) => matches!(n.kind, NodeKind::Dir { .. }),
                        Err(_) => {
                            drop(set);
                            continue 'attempt;
                        }
                    };
                    match (is_dir, dir_mode) {
                        (true, DirMode::Forbid) => return err(Errno::EISDIR, vp.as_str()),
                        (false, DirMode::Require) => return err(Errno::ENOTDIR, vp.as_str()),
                        _ => {}
                    }
                    if flags.read && !Self::may_access_set(&set, ino, creds, Access::Read) {
                        return err(Errno::EACCES, vp.as_str());
                    }
                    if flags.write && !Self::may_access_set(&set, ino, creds, Access::Write) {
                        return err(Errno::EACCES, vp.as_str());
                    }
                    if flags.truncate && flags.write && truncate_ok {
                        let now = self.clock.tick();
                        let node = set.inode_mut(ino)?;
                        if let NodeKind::File(d) = &mut node.kind {
                            if !d.is_empty() {
                                d.clear();
                                node.mtime = now;
                                modified = true;
                            }
                        }
                        if modified {
                            self.jrnl(vp.as_str(), || Record::Truncate {
                                ino,
                                len: 0,
                                tick: now,
                            });
                        }
                    }
                    // Per-uid handle budget, charged at the last fallible
                    // point so a failed open never leaks a slot.
                    self.rctl.charge_open(creds.uid.0, vp.as_str())?;
                    set.inode_mut(ino)?.open_count += 1;
                    let hpath = full.as_str().to_owned();
                    set.insert_handle_reserved(
                        id,
                        OpenFile {
                            ino,
                            flags,
                            offset: 0,
                            path: full,
                            wrote: false,
                            owner: creds.uid,
                        },
                    );
                    self.readpath
                        .publish_handle(id, ino, creds.uid, flags, hpath);
                    slot.commit();
                    break (Fd(id), None, modified);
                }
                Plan::Create {
                    parent,
                    parent_path,
                    name,
                    full: created,
                } => {
                    let ino = self.tables.alloc_ino();
                    let mut set = self.tables.lock(&[
                        LockKey::Ino(parent),
                        LockKey::Ino(ino),
                        LockKey::Fd(id),
                    ]);
                    if !set.entry_is(parent, &name, None) {
                        drop(set);
                        continue 'attempt;
                    }
                    if !Self::may_access_set(&set, parent, creds, Access::Write) {
                        return err(Errno::EACCES, parent_path.as_str());
                    }
                    if set.inode(parent)?.dir_entries()?.len() >= self.limits.max_dir_entries {
                        return err(Errno::EDQUOT, parent_path.as_str());
                    }
                    let now = self.clock.tick();
                    set.insert_inode(
                        ino,
                        Inode {
                            kind: NodeKind::File(Vec::new()),
                            mode: Mode::FILE_DEFAULT,
                            uid: creds.uid,
                            gid: creds.gid,
                            nlink: 1,
                            mtime: now,
                            ctime: now,
                            xattrs: BTreeMap::new(),
                            acl: None,
                            open_count: 0,
                        },
                    );
                    {
                        let p = set.inode_mut(parent)?;
                        p.dir_entries_mut()?.insert(name.clone(), ino);
                        p.mtime = now;
                    }
                    self.jrnl(created.as_str(), || Record::Create {
                        parent,
                        name: name.clone(),
                        ino,
                        uid: creds.uid,
                        gid: creds.gid,
                        data: Vec::new(),
                        tick: now,
                    });
                    self.bump_gen(parent);
                    self.rctl.charge_open(creds.uid.0, vp.as_str())?;
                    set.inode_mut(ino)?.open_count += 1;
                    let hpath = full.as_str().to_owned();
                    set.insert_handle_reserved(
                        id,
                        OpenFile {
                            ino,
                            flags,
                            offset: 0,
                            path: full,
                            wrote: false,
                            owner: creds.uid,
                        },
                    );
                    self.readpath
                        .publish_handle(id, ino, creds.uid, flags, hpath);
                    slot.commit();
                    break (Fd(id), Some(created), false);
                }
            }
        };
        if let Some(p) = &created_path {
            self.notify.emit(EventKind::Create, p, p.file_name());
            self.run_hooks(vec![PendingHook::Create(p.clone())], creds);
        }
        if modified {
            self.notify.emit(EventKind::Modify, &vp, None);
        }
        Ok(fd)
    }

    /// `read(2)`: up to `len` bytes from the handle's offset.
    pub fn read(&self, fd: Fd, len: usize) -> VfsResult<Vec<u8>> {
        // Warm path: one lock-free handle-block read replaces both
        // with_handle snapshots; the offset-advancing copy below keeps its
        // write locks (it mutates).
        let meta = match self.readpath.read_handle(fd.0) {
            HandleRead::Open(m) => Some(m),
            HandleRead::Fallback => None,
        };
        let (howner, hpath) = match &meta {
            Some(m) => (m.owner, m.path.clone()),
            None => self
                .tables
                .with_handle(fd.0, |h| (h.owner, h.path.as_str().to_owned()))
                .unwrap_or((Uid(0), String::new())),
        };
        self.charge_uid(OpKind::Read, &hpath, howner)?;
        let (ino, readable) = match &meta {
            Some(m) => (m.ino, m.flags.read),
            None => match self.tables.with_handle(fd.0, |h| (h.ino, h.flags.read)) {
                Some(v) => v,
                None => return err(Errno::EBADF, "fd"),
            },
        };
        if !readable {
            return err(Errno::EBADF, hpath);
        }
        // A handle's target inode never changes, so the fd→ino snapshot
        // above stays valid; only offset/data need the locks.
        let mut set = self.tables.lock(&[LockKey::Fd(fd.0), LockKey::Ino(ino)]);
        let off = match set.handle(fd.0) {
            Some(h) => h.offset,
            None => return err(Errno::EBADF, "fd"), // closed concurrently
        };
        let data = match &set.inode(ino)?.kind {
            NodeKind::File(d) => {
                let start = (off as usize).min(d.len());
                let end = (start + len).min(d.len());
                d[start..end].to_vec()
            }
            _ => return err(Errno::EINVAL, "fd"),
        };
        let n = data.len() as u64;
        if let Some(h) = set.handle_mut(fd.0) {
            h.offset += n;
        }
        Ok(data)
    }

    /// `write(2)` at the handle's offset (end of file with `append`).
    pub fn write(&self, fd: Fd, data: &[u8]) -> VfsResult<usize> {
        let meta = match self.readpath.read_handle(fd.0) {
            HandleRead::Open(m) => Some(m),
            HandleRead::Fallback => None,
        };
        let (howner, hpath) = match &meta {
            Some(m) => (m.owner, m.path.clone()),
            None => self
                .tables
                .with_handle(fd.0, |h| (h.owner, h.path.as_str().to_owned()))
                .unwrap_or((Uid(0), String::new())),
        };
        self.charge_uid(OpKind::Write, &hpath, howner)?;
        let (ino, writable, append) = match &meta {
            Some(m) => (m.ino, m.flags.write, m.flags.append),
            None => match self
                .tables
                .with_handle(fd.0, |h| (h.ino, h.flags.write, h.flags.append))
            {
                Some(v) => v,
                None => return err(Errno::EBADF, "fd"),
            },
        };
        if !writable {
            return err(Errno::EBADF, hpath);
        }
        let path;
        {
            let mut set = self.tables.lock(&[LockKey::Fd(fd.0), LockKey::Ino(ino)]);
            let h_off = match set.handle(fd.0) {
                Some(h) => h.offset,
                None => return err(Errno::EBADF, "fd"),
            };
            let off = if append {
                match &set.inode(ino)?.kind {
                    NodeKind::File(d) => d.len() as u64,
                    _ => return err(Errno::EINVAL, "fd"),
                }
            } else {
                h_off
            };
            let end = off as usize + data.len();
            if end as u64 > self.limits.max_file_size {
                return err(Errno::ENOSPC, "fd");
            }
            let now = self.clock.tick();
            let node = set.inode_mut(ino)?;
            match &mut node.kind {
                NodeKind::File(d) => {
                    if d.len() < end {
                        d.resize(end, 0);
                    }
                    d[off as usize..end].copy_from_slice(data);
                    node.mtime = now;
                }
                _ => return err(Errno::EINVAL, "fd"),
            }
            let h = set.handle_mut(fd.0).expect("handle verified above");
            h.offset = end as u64;
            h.wrote = true;
            path = h.path.clone();
            self.jrnl(path.as_str(), || Record::Write {
                ino,
                offset: off,
                data: data.to_vec(),
                tick: now,
            });
        }
        self.notify.emit(EventKind::Modify, &path, None);
        Ok(data.len())
    }

    /// `lseek(2)` (absolute positioning only; returns the new offset).
    pub fn seek(&self, fd: Fd, offset: u64) -> VfsResult<u64> {
        let mut set = self.tables.lock(&[LockKey::Fd(fd.0)]);
        let h = set
            .handle_mut(fd.0)
            .ok_or_else(|| VfsError::new(Errno::EBADF, "fd"))?;
        h.offset = offset;
        Ok(offset)
    }

    /// `close(2)`. Emits `CloseWrite` (and fires `post_close_write` hooks)
    /// when the handle performed writes.
    pub fn close(&self, fd: Fd, creds: &Credentials) -> VfsResult<()> {
        let hpath = self
            .tables
            .with_handle(fd.0, |h| h.path.as_str().to_owned());
        self.count(OpKind::Close, hpath.as_deref().unwrap_or(""));
        let ino = match self.tables.with_handle(fd.0, |h| h.ino) {
            Some(i) => i,
            None => return err(Errno::EBADF, "fd"),
        };
        let (wrote, path);
        {
            let mut set = self.tables.lock(&[LockKey::Fd(fd.0), LockKey::Ino(ino)]);
            let h = match set.remove_handle(fd.0) {
                Some(h) => h,
                None => return err(Errno::EBADF, "fd"), // double close race
            };
            self.readpath.close_handle(fd.0);
            self.rctl.release_open(h.owner.0);
            wrote = h.wrote;
            path = h.path.clone();
            // The inode may already be gone: rmdir removes an open
            // directory's inode outright (directories have no orphan
            // keep-alive). Closing such a descriptor is not an error.
            if let Ok(node) = set.inode_mut(h.ino) {
                node.open_count -= 1;
                if node.nlink == 0 && node.open_count == 0 {
                    set.remove_inode(h.ino);
                }
            }
        }
        if wrote {
            self.notify
                .emit(EventKind::CloseWrite, &path, path.file_name());
            self.run_hooks(vec![PendingHook::CloseWrite(path)], creds);
        }
        Ok(())
    }

    // ----------------------------------------------------------------
    // Descriptor-relative I/O (the fd fast path)
    // ----------------------------------------------------------------

    /// `pread(2)`: up to `len` bytes at `offset`, without moving the
    /// handle's offset. One charged `read` syscall.
    pub fn pread(&self, fd: Fd, offset: u64, len: usize) -> VfsResult<Vec<u8>> {
        // The fd→identity hop is lock-free when the handle block is warm;
        // only the data copy below still takes its shard read lock.
        let info = match self.readpath.read_handle(fd.0) {
            HandleRead::Open(m) => Some((m.owner, m.path, m.ino, m.flags.read)),
            HandleRead::Fallback => self.tables.with_handle(fd.0, |h| {
                (h.owner, h.path.as_str().to_owned(), h.ino, h.flags.read)
            }),
        };
        let (howner, hpath, ino, readable) = match info {
            Some(v) => v,
            None => return err(Errno::EBADF, "fd"),
        };
        self.charge_uid(OpKind::Read, &hpath, howner)?;
        if !readable {
            return err(Errno::EBADF, hpath);
        }
        match self.tables.with_inode(ino, |node| match &node.kind {
            NodeKind::File(d) => {
                let start = (offset as usize).min(d.len());
                let end = (start + len).min(d.len());
                Ok(d[start..end].to_vec())
            }
            _ => Err(VfsError::new(Errno::EISDIR, hpath.clone())),
        }) {
            Ok(r) => r,
            Err(_) => err(Errno::EBADF, "fd"),
        }
    }

    /// `pwrite(2)`: write `data` at `offset`, without moving the handle's
    /// offset. One charged `write` syscall.
    pub fn pwrite(&self, fd: Fd, offset: u64, data: &[u8]) -> VfsResult<usize> {
        let info = match self.readpath.read_handle(fd.0) {
            HandleRead::Open(m) => Some((m.owner, m.path, m.ino, m.flags.write)),
            HandleRead::Fallback => self.tables.with_handle(fd.0, |h| {
                (h.owner, h.path.as_str().to_owned(), h.ino, h.flags.write)
            }),
        };
        let (howner, hpath, ino, writable) = match info {
            Some(v) => v,
            None => return err(Errno::EBADF, "fd"),
        };
        self.charge_uid(OpKind::Write, &hpath, howner)?;
        if !writable {
            return err(Errno::EBADF, hpath);
        }
        let end = offset as usize + data.len();
        if end as u64 > self.limits.max_file_size {
            return err(Errno::ENOSPC, "fd");
        }
        let path;
        {
            let mut set = self.tables.lock(&[LockKey::Fd(fd.0), LockKey::Ino(ino)]);
            if set.handle(fd.0).is_none() {
                return err(Errno::EBADF, "fd");
            }
            let now = self.clock.tick();
            let node = set.inode_mut(ino)?;
            match &mut node.kind {
                NodeKind::File(d) => {
                    if d.len() < end {
                        d.resize(end, 0);
                    }
                    d[offset as usize..end].copy_from_slice(data);
                    node.mtime = now;
                }
                _ => return err(Errno::EISDIR, "fd"),
            }
            let h = set.handle_mut(fd.0).expect("handle verified above");
            h.wrote = true;
            path = h.path.clone();
            self.jrnl(path.as_str(), || Record::Write {
                ino,
                offset,
                data: data.to_vec(),
                tick: now,
            });
        }
        self.notify.emit(EventKind::Modify, &path, None);
        Ok(data.len())
    }

    /// `readv(2)`: scatter a sequential read from the handle's offset into
    /// segments of the requested sizes. One charged `read` syscall however
    /// many segments; the offset advances by the total bytes read. Short
    /// reads truncate the tail segments.
    pub fn readv(&self, fd: Fd, lens: &[usize]) -> VfsResult<Vec<Vec<u8>>> {
        let total: usize = lens.iter().sum();
        let data = self.read(fd, total)?;
        // read() charged one OpKind::Read; undo nothing — one syscall total.
        let mut out = Vec::with_capacity(lens.len());
        let mut at = 0usize;
        for &l in lens {
            let end = (at + l).min(data.len());
            out.push(data[at.min(data.len())..end].to_vec());
            at = end;
        }
        Ok(out)
    }

    /// `writev(2)`: gather-write the buffers at the handle's offset. One
    /// charged `write` syscall however many buffers.
    pub fn writev(&self, fd: Fd, bufs: &[&[u8]]) -> VfsResult<usize> {
        let flat: Vec<u8> = bufs.concat();
        self.write(fd, &flat)
    }

    /// `fstat(2)`: stat through a descriptor — no path resolution at all.
    /// One charged `fstat` syscall.
    pub fn fstat(&self, fd: Fd) -> VfsResult<FileStat> {
        // A descriptor's identity (ino/owner/path) is immutable, so a warm
        // fstat is fully lock-free: handle block + attribute block.
        let (howner, hpath, ino) = match self.readpath.read_handle(fd.0) {
            HandleRead::Open(m) => (m.owner, m.path, m.ino),
            HandleRead::Fallback => {
                match self
                    .tables
                    .with_handle(fd.0, |h| (h.owner, h.path.as_str().to_owned(), h.ino))
                {
                    Some(v) => v,
                    None => return err(Errno::EBADF, "fd"),
                }
            }
        };
        self.charge_uid(OpKind::Fstat, &hpath, howner)?;
        if let AttrRead::Hit(st) = self.readpath.read_attr(&self.tables, ino) {
            return Ok(st);
        }
        self.stat_locked_and_fill(ino)
            .map_err(|_| VfsError::new(Errno::EBADF, hpath))
    }

    /// `fsync(2)` as yanc's *commit without close*: if the handle has
    /// written since open (or since the last fsync), fire the `CloseWrite`
    /// event and `post_close_write` hooks now, keeping the descriptor open
    /// for further writes. This is what lets a long-lived flow descriptor
    /// commit many updates without re-paying open/close.
    pub fn fsync(&self, fd: Fd, creds: &Credentials) -> VfsResult<()> {
        let info = match self.readpath.read_handle(fd.0) {
            HandleRead::Open(m) => Some((m.owner, m.path, m.ino)),
            HandleRead::Fallback => self
                .tables
                .with_handle(fd.0, |h| (h.owner, h.path.as_str().to_owned(), h.ino)),
        };
        let (howner, hpath, ino) = match info {
            Some(v) => v,
            None => return err(Errno::EBADF, "fd"),
        };
        self.charge_uid(OpKind::Fsync, &hpath, howner)?;
        let (wrote, path);
        {
            let mut set = self.tables.lock(&[LockKey::Fd(fd.0), LockKey::Ino(ino)]);
            let h = match set.handle_mut(fd.0) {
                Some(h) => h,
                None => return err(Errno::EBADF, "fd"),
            };
            wrote = h.wrote;
            h.wrote = false;
            path = h.path.clone();
        }
        if wrote {
            self.notify
                .emit(EventKind::CloseWrite, &path, path.file_name());
            self.run_hooks(vec![PendingHook::CloseWrite(path)], creds);
        }
        Ok(())
    }

    /// `readdir` through a directory descriptor: no path resolution. One
    /// charged `readdir` syscall. Listing permission was checked when the
    /// descriptor was opened, as POSIX does.
    pub fn readdir_fd(&self, fd: Fd) -> VfsResult<Vec<DirEntry>> {
        let info = match self.readpath.read_handle(fd.0) {
            HandleRead::Open(m) => Some((m.owner, m.path, m.ino)),
            HandleRead::Fallback => self
                .tables
                .with_handle(fd.0, |h| (h.owner, h.path.as_str().to_owned(), h.ino)),
        };
        let (howner, hpath, ino) = match info {
            Some(v) => v,
            None => return err(Errno::EBADF, "fd"),
        };
        self.charge_uid(OpKind::Readdir, &hpath, howner)?;
        let entries: Vec<(String, Ino)> = match self.tables.with_inode(ino, |node| {
            node.dir_entries()
                .map(|e| e.iter().map(|(n, i)| (n.clone(), *i)).collect())
                .map_err(|_| VfsError::new(Errno::ENOTDIR, hpath.clone()))
        }) {
            Ok(r) => r?,
            Err(_) => return err(Errno::ENOENT, hpath),
        };
        Ok(entries
            .into_iter()
            .map(|(name, i)| {
                // An inode's kind is immutable for the lifetime of its
                // number, so any completed attribute fill answers it even
                // when the block's stamp is stale — a warm listing costs
                // one lock for the entries snapshot and zero per entry.
                // A miss pays the locked read and fills the block.
                let ft = self.readpath.kind_of(i).unwrap_or_else(|| {
                    self.tables
                        .with_inode_at(i, |n, seq| {
                            let st = Self::stat_of(n, i);
                            self.readpath.publish_attr(seq, &st, n.acl.is_some());
                            st.file_type
                        })
                        .unwrap_or(FileType::Regular)
                });
                DirEntry {
                    name,
                    ino: i,
                    file_type: ft,
                }
            })
            .collect())
    }

    /// Vectored descriptor-relative write: **one** charged `write` syscall
    /// submits a whole batch of file writes relative to an open directory
    /// descriptor — the vectored-I/O principle applied at directory
    /// granularity (cf. io_uring submission batching). Each entry is
    /// created or replaced wholesale and committed, as if written by
    /// `open(write_create)` + `write` + `close`, emitting `Create` (for
    /// new files) and `CloseWrite`; entry names may be relative
    /// multi-component paths. Entries apply *in order* and the batch is
    /// not transactional: on error, earlier entries remain applied (their
    /// events already fired) and the error names the failing entry.
    ///
    /// This is the syscall-count lever of experiment E21: a flow install
    /// that costs ~28 path-addressed syscalls costs `mkdirat` +
    /// `write_batch_at` = 2 through a flows-directory descriptor, while
    /// staying fully introspectable as files (unlike the libyanc ring,
    /// which bypasses the fs entirely).
    pub fn write_batch_at(
        &self,
        dir: Fd,
        entries: &[(&str, &[u8])],
        creds: &Credentials,
    ) -> VfsResult<usize> {
        let dpath = match self.tables.with_handle(dir.0, |h| h.path.clone()) {
            Some(p) => p,
            None => return err(Errno::EBADF, "fd"),
        };
        self.charge(OpKind::Write, dpath.as_str(), creds)?;
        let mut events: Vec<PendingEvent> = Vec::new();
        let mut hooks: Vec<PendingHook> = Vec::new();
        let mut res = Ok(());
        let mut done = 0usize;
        for (rel, data) in entries {
            if let Err(e) = self.batch_write_one(dir, rel, data, creds, &mut events, &mut hooks) {
                res = Err(e);
                break;
            }
            done += 1;
        }
        self.emit_all(events);
        self.run_hooks(hooks, creds);
        res.map(|()| done)
    }

    /// One entry of [`Self::write_batch_at`]; gathers events/hooks for the
    /// caller to emit as a batch. Not charged.
    fn batch_write_one(
        &self,
        dir: Fd,
        rel: &str,
        data: &[u8],
        creds: &Credentials,
        events: &mut Vec<PendingEvent>,
        hooks: &mut Vec<PendingHook>,
    ) -> VfsResult<()> {
        if data.len() as u64 > self.limits.max_file_size {
            return err(Errno::ENOSPC, rel);
        }
        loop {
            let r = self.resolve_at(dir, rel, creds, true)?;
            if r.name.is_empty() {
                return err(Errno::EISDIR, rel);
            }
            let full = r.parent_path.join(&r.name);
            self.validate_mutation(&full)?;
            match r.target {
                Some(ino) => {
                    let mut set = self.tables.lock(&[LockKey::Ino(ino)]);
                    match set.inode(ino) {
                        Err(_) => {
                            drop(set);
                            continue; // vanished: re-resolve
                        }
                        Ok(n) if !matches!(n.kind, NodeKind::File(_)) => {
                            return err(Errno::EISDIR, full.as_str());
                        }
                        Ok(_) => {}
                    }
                    if !Self::may_access_set(&set, ino, creds, Access::Write) {
                        return err(Errno::EACCES, full.as_str());
                    }
                    let now = self.clock.tick();
                    let node = set.inode_mut(ino)?;
                    if let NodeKind::File(d) = &mut node.kind {
                        *d = data.to_vec();
                        node.mtime = now;
                    }
                    self.jrnl(full.as_str(), || Record::SetContent {
                        ino,
                        data: data.to_vec(),
                        tick: now,
                    });
                    drop(set);
                    events.push((EventKind::Modify, full.clone(), None));
                    events.push((
                        EventKind::CloseWrite,
                        full.clone(),
                        full.file_name().map(str::to_string),
                    ));
                    hooks.push(PendingHook::CloseWrite(full));
                    return Ok(());
                }
                None => {
                    if !valid_name(&r.name) {
                        return err(Errno::EINVAL, rel);
                    }
                    self.validate_with_hooks(|h| h.validate_create(self, &full))?;
                    let ino = self.tables.alloc_ino();
                    let mut set = self
                        .tables
                        .lock(&[LockKey::Ino(r.parent_ino), LockKey::Ino(ino)]);
                    if !set.entry_is(r.parent_ino, &r.name, None) {
                        drop(set);
                        continue;
                    }
                    if !Self::may_access_set(&set, r.parent_ino, creds, Access::Write) {
                        return err(Errno::EACCES, r.parent_path.as_str());
                    }
                    if set.inode(r.parent_ino)?.dir_entries()?.len() >= self.limits.max_dir_entries
                    {
                        return err(Errno::EDQUOT, r.parent_path.as_str());
                    }
                    let now = self.clock.tick();
                    set.insert_inode(
                        ino,
                        Inode {
                            kind: NodeKind::File(data.to_vec()),
                            mode: Mode::FILE_DEFAULT,
                            uid: creds.uid,
                            gid: creds.gid,
                            nlink: 1,
                            mtime: now,
                            ctime: now,
                            xattrs: BTreeMap::new(),
                            acl: None,
                            open_count: 0,
                        },
                    );
                    let p = set.inode_mut(r.parent_ino)?;
                    p.dir_entries_mut()?.insert(r.name.clone(), ino);
                    p.mtime = now;
                    self.jrnl(full.as_str(), || Record::Create {
                        parent: r.parent_ino,
                        name: r.name.clone(),
                        ino,
                        uid: creds.uid,
                        gid: creds.gid,
                        data: data.to_vec(),
                        tick: now,
                    });
                    self.bump_gen(r.parent_ino);
                    drop(set);
                    let name = full.file_name().map(str::to_string);
                    events.push((EventKind::Create, full.clone(), name.clone()));
                    events.push((EventKind::CloseWrite, full.clone(), name));
                    hooks.push(PendingHook::Create(full.clone()));
                    hooks.push(PendingHook::CloseWrite(full));
                    return Ok(());
                }
            }
        }
    }

    /// `truncate(2)` by path.
    pub fn truncate(&self, path: &str, len: u64, creds: &Credentials) -> VfsResult<()> {
        self.charge(OpKind::Truncate, path, creds)?;
        let vp = VPath::new(path);
        self.validate_mutation(&vp)?;
        loop {
            let ino = self.lookup_live(&vp, creds, true)?;
            let mut set = self.tables.lock(&[LockKey::Ino(ino)]);
            if set.inode(ino).is_err() {
                drop(set);
                continue;
            }
            if !Self::may_access_set(&set, ino, creds, Access::Write) {
                return err(Errno::EACCES, vp.as_str());
            }
            if len > self.limits.max_file_size {
                return err(Errno::ENOSPC, vp.as_str());
            }
            let now = self.clock.tick();
            let node = set.inode_mut(ino)?;
            match &mut node.kind {
                NodeKind::File(d) => {
                    d.resize(len as usize, 0);
                    node.mtime = now;
                }
                NodeKind::Dir { .. } => return err(Errno::EISDIR, vp.as_str()),
                NodeKind::Symlink(_) => return err(Errno::EINVAL, vp.as_str()),
            }
            self.jrnl(vp.as_str(), || Record::Truncate {
                ino,
                len,
                tick: now,
            });
            break;
        }
        self.notify.emit(EventKind::Modify, &vp, None);
        Ok(())
    }

    // ----------------------------------------------------------------
    // Whole-file convenience (each layer counts its constituent syscalls,
    // like a real open/write/close sequence would)
    // ----------------------------------------------------------------

    /// Read a whole file. The read is sized by a preceding `stat`, so
    /// bytes appended concurrently between the two calls are not observed
    /// (matching the common `stat`+`read` user-space pattern).
    pub fn read_file(&self, path: &str, creds: &Credentials) -> VfsResult<Vec<u8>> {
        let fd = self.open(path, OpenFlags::read_only(), creds)?;
        let size = {
            // One read sized by stat, one close: 3 "syscalls" total with the
            // open — the realistic small-file sequence.
            let st = self.stat(path, creds)?;
            st.size as usize
        };
        let out = self.read(fd, size.max(1));
        let _ = self.close(fd, creds);
        out
    }

    /// Read a whole file as UTF-8 (lossy).
    pub fn read_to_string(&self, path: &str, creds: &Credentials) -> VfsResult<String> {
        Ok(String::from_utf8_lossy(&self.read_file(path, creds)?).into_owned())
    }

    /// Create/truncate `path` and write `data` — the `echo x > file` shape.
    pub fn write_file(&self, path: &str, data: &[u8], creds: &Credentials) -> VfsResult<()> {
        let fd = self.open(path, OpenFlags::write_create(), creds)?;
        let r = self.write(fd, data);
        let c = self.close(fd, creds);
        r?;
        c
    }

    /// Append `data` to `path`, creating it if needed (`echo x >> file`).
    pub fn append_file(&self, path: &str, data: &[u8], creds: &Credentials) -> VfsResult<()> {
        let fd = self.open(path, OpenFlags::append_create(), creds)?;
        let r = self.write(fd, data);
        let c = self.close(fd, creds);
        r?;
        c
    }

    // ----------------------------------------------------------------
    // Structural audit
    // ----------------------------------------------------------------

    /// Audit the whole tree under a global lock: link counts, reachability,
    /// `..` parent pointers, and open-handle accounting. Returns a summary
    /// when every law holds, or a description of the first violation. The
    /// concurrency suites call this after racing mutations to assert that no
    /// interleaving can corrupt the tree.
    pub fn check_invariants(&self) -> Result<FsCheckReport, String> {
        let set = self.tables.lock_all();
        let all = set.all_inos();

        // Walk the tree from the root, counting directory-entry references
        // and subdirectories, and checking `..` pointers.
        let mut entry_refs: HashMap<u64, u32> = HashMap::new();
        let mut subdirs: HashMap<u64, u32> = HashMap::new();
        let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
        seen.insert(ROOT_INO.0);
        let mut stack = vec![ROOT_INO];
        while let Some(d) = stack.pop() {
            let entries: Vec<(String, Ino)> = match set.inode(d) {
                Ok(node) => match node.dir_entries() {
                    Ok(e) => e.iter().map(|(n, i)| (n.clone(), *i)).collect(),
                    Err(_) => return Err(format!("non-directory inode {} on the dir walk", d.0)),
                },
                Err(_) => return Err(format!("directory inode {} vanished mid-walk", d.0)),
            };
            for (name, child) in entries {
                *entry_refs.entry(child.0).or_insert(0) += 1;
                let cnode = set.inode(child).map_err(|_| {
                    format!(
                        "entry '{name}' in dir {} points at missing inode {}",
                        d.0, child.0
                    )
                })?;
                if let NodeKind::Dir { parent, .. } = &cnode.kind {
                    *subdirs.entry(d.0).or_insert(0) += 1;
                    if parent.0 != d.0 {
                        return Err(format!(
                            "dir {} has parent pointer {} but lives in {}",
                            child.0, parent.0, d.0
                        ));
                    }
                    if !seen.insert(child.0) {
                        return Err(format!("dir {} reachable via two paths", child.0));
                    }
                    stack.push(child);
                } else {
                    seen.insert(child.0);
                }
            }
        }

        // Per-inode open-handle tallies from the handle table.
        let mut open_by_ino: HashMap<u64, u32> = HashMap::new();
        for ino in set.handle_targets() {
            *open_by_ino.entry(ino.0).or_insert(0) += 1;
        }

        let (mut dirs, mut files, mut symlinks, mut orphans) = (0usize, 0usize, 0usize, 0usize);
        for raw in &all {
            let ino = Ino(*raw);
            let node = set
                .inode(ino)
                .map_err(|_| format!("inode {raw} vanished mid-audit"))?;
            let refs = entry_refs.get(raw).copied().unwrap_or(0);
            let opens = open_by_ino.get(raw).copied().unwrap_or(0);
            if node.open_count != opens {
                return Err(format!(
                    "inode {raw}: open_count {} but {} live handles target it",
                    node.open_count, opens
                ));
            }
            match &node.kind {
                NodeKind::Dir { .. } => {
                    dirs += 1;
                    if !seen.contains(raw) {
                        return Err(format!("directory {raw} unreachable from the root"));
                    }
                    let expect = 2 + subdirs.get(raw).copied().unwrap_or(0);
                    if node.nlink != expect {
                        return Err(format!(
                            "dir {raw}: nlink {} but expected {} (2 + subdirs)",
                            node.nlink, expect
                        ));
                    }
                    if *raw != ROOT_INO.0 && refs != 1 {
                        return Err(format!("dir {raw} referenced by {refs} entries"));
                    }
                }
                NodeKind::File(_) => {
                    if refs == 0 {
                        if node.nlink != 0 || node.open_count == 0 {
                            return Err(format!(
                                "file {raw} unreachable with nlink {} open_count {}",
                                node.nlink, node.open_count
                            ));
                        }
                        orphans += 1;
                    } else {
                        files += 1;
                        if node.nlink != refs {
                            return Err(format!(
                                "file {raw}: nlink {} but {refs} directory entries",
                                node.nlink
                            ));
                        }
                    }
                }
                NodeKind::Symlink(_) => {
                    symlinks += 1;
                    if refs != 1 || node.nlink != 1 {
                        return Err(format!(
                            "symlink {raw}: {refs} entry refs, nlink {}",
                            node.nlink
                        ));
                    }
                }
            }
        }
        let handles = set.total_handles();
        if handles != self.tables.handle_count() {
            return Err(format!(
                "handle table holds {handles} entries but the counter says {}",
                self.tables.handle_count()
            ));
        }
        Ok(FsCheckReport {
            inodes: all.len(),
            directories: dirs,
            files,
            symlinks,
            orphans_held_open: orphans,
            handles,
        })
    }
}

/// Fluent construction of a notify watch; see [`Filesystem::watch`].
///
/// Defaults: direct-children scope, [`EventMask::ALL`], unowned (no budget
/// check, not reclaimed with any uid). `.as_creds`/`.as_uid` charge the
/// watch to a uid, enforcing its `max_watches` budget on `register`.
pub struct WatchBuilder<'fs> {
    fs: &'fs Filesystem,
    path: VPath,
    subtree: bool,
    mask: EventMask,
    creds: Option<Credentials>,
}

impl WatchBuilder<'_> {
    /// Watch the whole subtree (fanotify-style) instead of the path and
    /// its direct children.
    pub fn subtree(mut self) -> Self {
        self.subtree = true;
        self
    }

    /// Restrict the event kinds delivered.
    pub fn mask(mut self, mask: EventMask) -> Self {
        self.mask = mask;
        self
    }

    /// Charge the watch descriptor to `creds.uid` (budgeted, reclaimable).
    pub fn as_creds(mut self, creds: &Credentials) -> Self {
        self.creds = Some(creds.clone());
        self
    }

    /// Charge the watch descriptor to `uid` (budgeted, reclaimable).
    pub fn as_uid(self, uid: u32) -> Self {
        self.as_creds(&Credentials::user(uid, uid))
    }

    /// Register the watch. `EMFILE` when an owning uid is at its
    /// `max_watches` budget. The returned guard unwatches on drop.
    pub fn register(self) -> VfsResult<WatchGuard> {
        let (id, rx) = match &self.creds {
            Some(creds) => {
                self.fs.check_watch_budget(creds, self.path.as_str())?;
                if self.subtree {
                    self.fs
                        .notify
                        .watch_subtree_owned(&self.path, self.mask, creds.uid.0)
                } else {
                    self.fs
                        .notify
                        .watch_path_owned(&self.path, self.mask, creds.uid.0)
                }
            }
            None => {
                if self.subtree {
                    self.fs.notify.watch_subtree(&self.path, self.mask)
                } else {
                    self.fs.notify.watch_path(&self.path, self.mask)
                }
            }
        };
        Ok(WatchGuard {
            hub: self.fs.notify.clone(),
            id,
            rx,
            armed: true,
        })
    }
}

/// A registered watch that unwatches itself on drop.
///
/// Obtained from [`WatchBuilder::register`]. The receiver is borrowed with
/// [`WatchGuard::receiver`] (clone it to feed a
/// [`PollSet`](crate::poll::PollSet)); [`WatchGuard::forget`] detaches the
/// raw `(WatchId, Receiver)` pair for code that manages lifetime manually.
pub struct WatchGuard {
    hub: Arc<NotifyHub>,
    id: WatchId,
    rx: Receiver<Event>,
    /// Cleared by [`WatchGuard::forget`]: drop no longer unwatches.
    armed: bool,
}

impl WatchGuard {
    /// The watch descriptor.
    pub fn id(&self) -> WatchId {
        self.id
    }

    /// The event channel. Clone it to register with a poll set; the watch
    /// itself stays tied to this guard's lifetime.
    pub fn receiver(&self) -> &Receiver<Event> {
        &self.rx
    }

    /// Whether events are queued (level-triggered readiness).
    pub fn ready(&self) -> bool {
        !self.rx.is_empty()
    }

    /// Detach: cancel the drop-unwatch and hand back the raw parts.
    pub fn forget(self) -> (WatchId, Receiver<Event>) {
        let mut this = self;
        this.armed = false;
        (this.id, this.rx.clone())
    }
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        if self.armed {
            self.hub.unwatch(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> Filesystem {
        Filesystem::new()
    }

    fn root() -> Credentials {
        Credentials::root()
    }

    #[test]
    fn root_exists_and_stats() {
        let f = fs();
        let st = f.stat("/", &root()).unwrap();
        assert!(st.is_dir());
        assert_eq!(st.ino, ROOT_INO);
        assert_eq!(st.nlink, 2);
    }

    #[test]
    fn mkdir_and_readdir() {
        let f = fs();
        f.mkdir("/net", Mode::DIR_DEFAULT, &root()).unwrap();
        f.mkdir("/net/switches", Mode::DIR_DEFAULT, &root())
            .unwrap();
        let names: Vec<String> = f
            .readdir("/net", &root())
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["switches"]);
        assert!(f.stat("/net/switches", &root()).unwrap().is_dir());
    }

    #[test]
    fn mkdir_errors() {
        let f = fs();
        f.mkdir("/a", Mode::DIR_DEFAULT, &root()).unwrap();
        assert_eq!(
            f.mkdir("/a", Mode::DIR_DEFAULT, &root()).unwrap_err().errno,
            Errno::EEXIST
        );
        assert_eq!(
            f.mkdir("/missing/x", Mode::DIR_DEFAULT, &root())
                .unwrap_err()
                .errno,
            Errno::ENOENT
        );
        f.write_file("/a/f", b"x", &root()).unwrap();
        assert_eq!(
            f.mkdir("/a/f/sub", Mode::DIR_DEFAULT, &root())
                .unwrap_err()
                .errno,
            Errno::ENOTDIR
        );
    }

    #[test]
    fn mkdir_all_idempotent() {
        let f = fs();
        f.mkdir_all("/net/switches/sw1/flows", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.mkdir_all("/net/switches/sw1/flows", Mode::DIR_DEFAULT, &root())
            .unwrap();
        assert!(f.stat("/net/switches/sw1/flows", &root()).unwrap().is_dir());
        f.write_file("/net/file", b"", &root()).unwrap();
        assert!(f
            .mkdir_all("/net/file/x", Mode::DIR_DEFAULT, &root())
            .is_err());
    }

    #[test]
    fn file_write_read_roundtrip() {
        let f = fs();
        f.write_file("/hello", b"world", &root()).unwrap();
        assert_eq!(f.read_file("/hello", &root()).unwrap(), b"world");
        assert_eq!(f.read_to_string("/hello", &root()).unwrap(), "world");
        let st = f.stat("/hello", &root()).unwrap();
        assert!(st.is_file());
        assert_eq!(st.size, 5);
    }

    #[test]
    fn append_and_truncate() {
        let f = fs();
        f.write_file("/log", b"a", &root()).unwrap();
        f.append_file("/log", b"b", &root()).unwrap();
        assert_eq!(f.read_file("/log", &root()).unwrap(), b"ab");
        f.truncate("/log", 1, &root()).unwrap();
        assert_eq!(f.read_file("/log", &root()).unwrap(), b"a");
        f.truncate("/log", 3, &root()).unwrap();
        assert_eq!(f.read_file("/log", &root()).unwrap(), b"a\0\0");
    }

    #[test]
    fn open_flags_semantics() {
        let f = fs();
        f.write_file("/f", b"data", &root()).unwrap();
        // excl on existing file
        let mut fl = OpenFlags::write_create();
        fl.excl = true;
        assert_eq!(f.open("/f", fl, &root()).unwrap_err().errno, Errno::EEXIST);
        // read on missing file
        assert_eq!(
            f.open("/missing", OpenFlags::read_only(), &root())
                .unwrap_err()
                .errno,
            Errno::ENOENT
        );
        // writing via read-only handle
        let fd = f.open("/f", OpenFlags::read_only(), &root()).unwrap();
        assert_eq!(f.write(fd, b"x").unwrap_err().errno, Errno::EBADF);
        f.close(fd, &root()).unwrap();
        // reading via write-only handle
        let fd = f.open("/f", OpenFlags::write_create(), &root()).unwrap();
        assert_eq!(f.read(fd, 1).unwrap_err().errno, Errno::EBADF);
        f.close(fd, &root()).unwrap();
        // double close
        assert_eq!(f.close(fd, &root()).unwrap_err().errno, Errno::EBADF);
    }

    #[test]
    fn partial_reads_and_seek() {
        let f = fs();
        f.write_file("/f", b"abcdef", &root()).unwrap();
        let fd = f.open("/f", OpenFlags::read_only(), &root()).unwrap();
        assert_eq!(f.read(fd, 2).unwrap(), b"ab");
        assert_eq!(f.read(fd, 2).unwrap(), b"cd");
        f.seek(fd, 1).unwrap();
        assert_eq!(f.read(fd, 100).unwrap(), b"bcdef");
        assert_eq!(f.read(fd, 10).unwrap(), b"");
        f.close(fd, &root()).unwrap();
    }

    #[test]
    fn unlink_semantics() {
        let f = fs();
        f.write_file("/f", b"x", &root()).unwrap();
        f.unlink("/f", &root()).unwrap();
        assert!(!f.exists("/f", &root()));
        assert_eq!(f.unlink("/f", &root()).unwrap_err().errno, Errno::ENOENT);
        f.mkdir("/d", Mode::DIR_DEFAULT, &root()).unwrap();
        assert_eq!(f.unlink("/d", &root()).unwrap_err().errno, Errno::EISDIR);
    }

    #[test]
    fn unlink_while_open_keeps_content_until_close() {
        let f = fs();
        f.write_file("/f", b"keep", &root()).unwrap();
        let fd = f.open("/f", OpenFlags::read_only(), &root()).unwrap();
        f.unlink("/f", &root()).unwrap();
        assert!(!f.exists("/f", &root()));
        assert_eq!(f.read(fd, 10).unwrap(), b"keep");
        f.close(fd, &root()).unwrap();
    }

    #[test]
    fn rmdir_requires_empty_without_hook() {
        let f = fs();
        f.mkdir_all("/d/sub", Mode::DIR_DEFAULT, &root()).unwrap();
        assert_eq!(f.rmdir("/d", &root()).unwrap_err().errno, Errno::ENOTEMPTY);
        f.rmdir("/d/sub", &root()).unwrap();
        f.rmdir("/d", &root()).unwrap();
        assert!(!f.exists("/d", &root()));
        assert_eq!(f.rmdir("/", &root()).unwrap_err().errno, Errno::EINVAL);
    }

    struct RecursiveSwitches;
    impl SemanticHook for RecursiveSwitches {
        fn rmdir_recursive(&self, path: &VPath) -> bool {
            path.as_str().starts_with("/switches/")
        }
    }

    #[test]
    fn hook_makes_rmdir_recursive() {
        let f = fs();
        f.add_hook(Arc::new(RecursiveSwitches));
        f.mkdir_all("/switches/sw1/flows/f1", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.write_file("/switches/sw1/flows/f1/version", b"1", &root())
            .unwrap();
        f.rmdir("/switches/sw1", &root()).unwrap();
        assert!(!f.exists("/switches/sw1", &root()));
        // Non-hooked dirs keep POSIX semantics.
        f.mkdir_all("/other/sub", Mode::DIR_DEFAULT, &root())
            .unwrap();
        assert_eq!(
            f.rmdir("/other", &root()).unwrap_err().errno,
            Errno::ENOTEMPTY
        );
    }

    #[test]
    fn symlink_readlink_and_follow() {
        let f = fs();
        f.mkdir_all("/a/b", Mode::DIR_DEFAULT, &root()).unwrap();
        f.write_file("/a/b/file", b"via-link", &root()).unwrap();
        f.symlink("/a/b", "/lnk", &root()).unwrap();
        assert_eq!(f.readlink("/lnk", &root()).unwrap(), "/a/b");
        assert_eq!(f.read_file("/lnk/file", &root()).unwrap(), b"via-link");
        let st = f.lstat("/lnk", &root()).unwrap();
        assert!(st.is_symlink());
        let st2 = f.stat("/lnk", &root()).unwrap();
        assert!(st2.is_dir());
        assert_eq!(
            f.readlink("/a/b/file", &root()).unwrap_err().errno,
            Errno::EINVAL
        );
    }

    #[test]
    fn dangling_symlink_and_loop() {
        let f = fs();
        f.symlink("/nowhere", "/dangling", &root()).unwrap();
        assert_eq!(
            f.stat("/dangling", &root()).unwrap_err().errno,
            Errno::ENOENT
        );
        assert!(f.lstat("/dangling", &root()).is_ok());
        f.symlink("/loop2", "/loop1", &root()).unwrap();
        f.symlink("/loop1", "/loop2", &root()).unwrap();
        assert_eq!(f.stat("/loop1", &root()).unwrap_err().errno, Errno::ELOOP);
    }

    #[test]
    fn symlink_chain_resolves_at_exactly_max_hops_and_eloops_one_past() {
        let f = fs();
        f.write_file("/target", b"end", &root()).unwrap();
        f.symlink("/target", "/s1", &root()).unwrap();
        for i in 2..=(MAX_SYMLINK_HOPS + 1) {
            f.symlink(&format!("/s{}", i - 1), &format!("/s{i}"), &root())
                .unwrap();
        }
        // Resolving /sN traverses exactly N links: the bound is inclusive.
        assert_eq!(
            f.read_file(&format!("/s{MAX_SYMLINK_HOPS}"), &root())
                .unwrap(),
            b"end"
        );
        assert_eq!(
            f.stat(&format!("/s{}", MAX_SYMLINK_HOPS + 1), &root())
                .unwrap_err()
                .errno,
            Errno::ELOOP
        );
    }

    #[test]
    fn relative_symlink_resolution() {
        let f = fs();
        f.mkdir_all("/net/switches/sw1/ports/p1", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.mkdir_all("/net/switches/sw2/ports/p2", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.write_file("/net/switches/sw2/ports/p2/status", b"up", &root())
            .unwrap();
        // peer -> ../../../sw2/ports/p2, relative to p1 (the dir holding the
        // link): p1 -> ports -> sw1 -> switches, then down into sw2.
        f.symlink(
            "../../../sw2/ports/p2",
            "/net/switches/sw1/ports/p1/peer",
            &root(),
        )
        .unwrap();
        assert_eq!(
            f.read_file("/net/switches/sw1/ports/p1/peer/status", &root())
                .unwrap(),
            b"up"
        );
        assert_eq!(
            f.canonicalize("/net/switches/sw1/ports/p1/peer", &root())
                .unwrap()
                .as_str(),
            "/net/switches/sw2/ports/p2"
        );
    }

    struct PortsOnly;
    impl SemanticHook for PortsOnly {
        fn validate_symlink(&self, _fs: &Filesystem, path: &VPath, target: &str) -> VfsResult<()> {
            if path.file_name() == Some("peer") && !target.contains("/ports/") {
                return err(Errno::EINVAL, path.as_str());
            }
            Ok(())
        }
    }

    #[test]
    fn hook_vetoes_bad_symlink() {
        let f = fs();
        f.add_hook(Arc::new(PortsOnly));
        f.mkdir_all("/sw/ports/p1", Mode::DIR_DEFAULT, &root())
            .unwrap();
        assert_eq!(
            f.symlink("/sw", "/sw/ports/p1/peer", &root())
                .unwrap_err()
                .errno,
            Errno::EINVAL
        );
        f.symlink("/sw/ports/p2", "/sw/ports/p1/peer", &root())
            .unwrap();
    }

    #[test]
    fn hard_links_share_content() {
        let f = fs();
        f.write_file("/f", b"one", &root()).unwrap();
        f.link("/f", "/g", &root()).unwrap();
        assert_eq!(f.stat("/f", &root()).unwrap().nlink, 2);
        f.write_file("/g", b"two", &root()).unwrap();
        assert_eq!(f.read_file("/f", &root()).unwrap(), b"two");
        f.unlink("/f", &root()).unwrap();
        assert_eq!(f.read_file("/g", &root()).unwrap(), b"two");
        assert_eq!(f.stat("/g", &root()).unwrap().nlink, 1);
        f.mkdir("/d", Mode::DIR_DEFAULT, &root()).unwrap();
        assert_eq!(
            f.link("/d", "/d2", &root()).unwrap_err().errno,
            Errno::EPERM
        );
    }

    #[test]
    fn rename_file_basic_and_replace() {
        let f = fs();
        f.write_file("/a", b"a", &root()).unwrap();
        f.rename("/a", "/b", &root()).unwrap();
        assert!(!f.exists("/a", &root()));
        assert_eq!(f.read_file("/b", &root()).unwrap(), b"a");
        f.write_file("/c", b"c", &root()).unwrap();
        f.rename("/c", "/b", &root()).unwrap();
        assert_eq!(f.read_file("/b", &root()).unwrap(), b"c");
    }

    #[test]
    fn rename_dir_rules() {
        let f = fs();
        f.mkdir_all("/d/sub", Mode::DIR_DEFAULT, &root()).unwrap();
        // Cannot move a directory into its own subtree.
        assert_eq!(
            f.rename("/d", "/d/sub/d2", &root()).unwrap_err().errno,
            Errno::EINVAL
        );
        // dir onto non-empty dir fails
        f.mkdir_all("/e/x", Mode::DIR_DEFAULT, &root()).unwrap();
        assert_eq!(
            f.rename("/d", "/e", &root()).unwrap_err().errno,
            Errno::ENOTEMPTY
        );
        // dir onto empty dir replaces
        f.mkdir("/empty", Mode::DIR_DEFAULT, &root()).unwrap();
        f.rename("/d", "/empty", &root()).unwrap();
        assert!(f.exists("/empty/sub", &root()));
        // file onto dir / dir onto file mismatches
        f.write_file("/file", b"", &root()).unwrap();
        assert_eq!(
            f.rename("/file", "/empty", &root()).unwrap_err().errno,
            Errno::EISDIR
        );
        assert_eq!(
            f.rename("/empty", "/file", &root()).unwrap_err().errno,
            Errno::ENOTDIR
        );
    }

    #[test]
    fn rename_dir_across_parents_fixes_dotdot() {
        let f = fs();
        f.mkdir_all("/p1/d/inner", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.mkdir("/p2", Mode::DIR_DEFAULT, &root()).unwrap();
        f.rename("/p1/d", "/p2/d", &root()).unwrap();
        f.write_file("/p2/marker", b"m", &root()).unwrap();
        // `..` from the moved directory must now reach /p2.
        assert_eq!(f.read_file("/p2/d/../marker", &root()).unwrap(), b"m");
    }

    #[test]
    fn permissions_enforced_for_non_root() {
        let f = fs();
        let alice = Credentials::user(1000, 1000);
        let bob = Credentials::user(1001, 1001);
        f.mkdir("/shared", Mode(0o777), &root()).unwrap();
        f.write_file("/shared/secret", b"s", &root()).unwrap();
        f.chown("/shared/secret", Some(Uid(1000)), Some(Gid(1000)), &root())
            .unwrap();
        f.chmod("/shared/secret", Mode(0o600), &root()).unwrap();
        assert_eq!(f.read_file("/shared/secret", &alice).unwrap(), b"s");
        assert_eq!(
            f.read_file("/shared/secret", &bob).unwrap_err().errno,
            Errno::EACCES
        );
        assert_eq!(
            f.write_file("/shared/secret", b"x", &bob)
                .unwrap_err()
                .errno,
            Errno::EACCES
        );
        // Directory exec required for traversal.
        f.mkdir("/locked", Mode(0o700), &root()).unwrap();
        f.write_file("/locked/f", b"", &root()).unwrap();
        assert_eq!(f.stat("/locked/f", &bob).unwrap_err().errno, Errno::EACCES);
        // Directory write required for create.
        f.mkdir("/ro", Mode(0o755), &root()).unwrap();
        assert_eq!(
            f.write_file("/ro/new", b"", &bob).unwrap_err().errno,
            Errno::EACCES
        );
    }

    #[test]
    fn chmod_chown_authorization() {
        let f = fs();
        let alice = Credentials::user(1000, 1000);
        let bob = Credentials::user(1001, 1001);
        f.write_file("/f", b"", &root()).unwrap();
        f.chown("/f", Some(Uid(1000)), Some(Gid(1000)), &root())
            .unwrap();
        f.chmod("/f", Mode(0o644), &alice).unwrap(); // owner may chmod
        assert_eq!(
            f.chmod("/f", Mode(0o777), &bob).unwrap_err().errno,
            Errno::EPERM
        );
        assert_eq!(
            f.chown("/f", Some(Uid(1001)), None, &bob)
                .unwrap_err()
                .errno,
            Errno::EPERM
        );
        // Owner may change group only to a group they belong to.
        let mut alice2 = alice.clone();
        alice2.groups.push(Gid(50));
        f.chown("/f", None, Some(Gid(50)), &alice2).unwrap();
        assert_eq!(
            f.chown("/f", None, Some(Gid(51)), &alice2)
                .unwrap_err()
                .errno,
            Errno::EPERM
        );
    }

    #[test]
    fn acl_grants_beyond_mode() {
        let f = fs();
        let app = Credentials::user(2000, 2000);
        f.write_file("/flow", b"v", &root()).unwrap();
        f.chmod("/flow", Mode(0o600), &root()).unwrap();
        assert_eq!(f.read_file("/flow", &app).unwrap_err().errno, Errno::EACCES);
        let mut acl = Acl::new();
        acl.set_user(Uid(2000), 0o4);
        f.set_acl("/flow", Some(acl), &root()).unwrap();
        assert_eq!(f.read_file("/flow", &app).unwrap(), b"v");
        assert_eq!(
            f.write_file("/flow", b"w", &app).unwrap_err().errno,
            Errno::EACCES
        );
        assert!(f.get_acl("/flow", &root()).unwrap().is_some());
        f.set_acl("/flow", None, &root()).unwrap();
        assert_eq!(f.read_file("/flow", &app).unwrap_err().errno, Errno::EACCES);
    }

    #[test]
    fn sticky_directory_restricts_deletion() {
        let f = fs();
        let alice = Credentials::user(1000, 1000);
        let bob = Credentials::user(1001, 1001);
        f.mkdir("/tmp", Mode(0o1777), &root()).unwrap();
        f.write_file("/tmp/af", b"", &alice).unwrap();
        assert_eq!(f.unlink("/tmp/af", &bob).unwrap_err().errno, Errno::EPERM);
        f.unlink("/tmp/af", &alice).unwrap();
    }

    #[test]
    fn xattr_roundtrip() {
        let f = fs();
        f.write_file("/f", b"", &root()).unwrap();
        f.set_xattr("/f", "user.consistency", b"eventual", &root())
            .unwrap();
        assert_eq!(
            f.get_xattr("/f", "user.consistency", &root()).unwrap(),
            b"eventual"
        );
        assert_eq!(
            f.list_xattr("/f", &root()).unwrap(),
            vec!["user.consistency"]
        );
        f.remove_xattr("/f", "user.consistency", &root()).unwrap();
        assert_eq!(
            f.get_xattr("/f", "user.consistency", &root())
                .unwrap_err()
                .errno,
            Errno::ENODATA
        );
        assert_eq!(
            f.remove_xattr("/f", "user.consistency", &root())
                .unwrap_err()
                .errno,
            Errno::ENODATA
        );
    }

    #[test]
    fn notify_create_modify_closewrite_delete() {
        let f = fs();
        f.mkdir_all("/net/flows", Mode::DIR_DEFAULT, &root())
            .unwrap();
        let w = f.watch("/net/flows").register().unwrap();
        f.write_file("/net/flows/f1", b"v", &root()).unwrap();
        f.unlink("/net/flows/f1", &root()).unwrap();
        let kinds: Vec<EventKind> = w.receiver().try_iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Create));
        assert!(kinds.contains(&EventKind::Modify));
        assert!(kinds.contains(&EventKind::CloseWrite));
        assert!(kinds.contains(&EventKind::Delete));
    }

    #[test]
    fn notify_rename_events() {
        let f = fs();
        f.mkdir("/d", Mode::DIR_DEFAULT, &root()).unwrap();
        f.write_file("/d/a", b"", &root()).unwrap();
        let w = f.watch("/d").register().unwrap();
        f.rename("/d/a", "/d/b", &root()).unwrap();
        let kinds: Vec<(EventKind, Option<String>)> =
            w.receiver().try_iter().map(|e| (e.kind, e.name)).collect();
        assert!(kinds.contains(&(EventKind::MovedFrom, Some("a".into()))));
        assert!(kinds.contains(&(EventKind::MovedTo, Some("b".into()))));
    }

    #[test]
    fn syscall_counting() {
        let f = fs();
        let before = f.counters().snapshot();
        f.write_file("/f", b"x", &root()).unwrap(); // open+write+close
        let d = f.counters().snapshot().since(&before);
        assert_eq!(d.get(OpKind::Open), 1);
        assert_eq!(d.get(OpKind::Write), 1);
        assert_eq!(d.get(OpKind::Close), 1);
        assert_eq!(d.total(), 3);
    }

    #[test]
    fn limits_enforced() {
        let f = Filesystem::builder()
            .limits(Limits {
                max_file_size: 4,
                max_dir_entries: 2,
                max_open_files: 1,
            })
            .build();
        let r = root();
        assert_eq!(
            f.write_file("/big", b"12345", &r).unwrap_err().errno,
            Errno::ENOSPC
        );
        // The failed write still created the (empty) file — POSIX O_CREAT
        // succeeded before the write hit the size limit. Remove it so the
        // directory-entry quota test starts clean.
        f.unlink("/big", &r).unwrap();
        f.write_file("/a", b"1", &r).unwrap();
        f.write_file("/b", b"1", &r).unwrap();
        assert_eq!(
            f.write_file("/c", b"1", &r).unwrap_err().errno,
            Errno::EDQUOT
        );
        let fd = f.open("/a", OpenFlags::read_only(), &r).unwrap();
        assert_eq!(
            f.open("/b", OpenFlags::read_only(), &r).unwrap_err().errno,
            Errno::ENFILE
        );
        f.close(fd, &r).unwrap();
    }

    struct AutoPopulate;
    impl SemanticHook for AutoPopulate {
        fn post_mkdir(&self, fs: &Filesystem, path: &VPath, creds: &Credentials) {
            if path.parent().as_str() == "/views" {
                for sub in ["hosts", "switches", "views"] {
                    let _ = fs.mkdir(path.join(sub).as_str(), Mode::DIR_DEFAULT, creds);
                }
            }
        }
    }

    #[test]
    fn post_mkdir_hook_autopopulates_without_recursing() {
        let f = fs();
        f.add_hook(Arc::new(AutoPopulate));
        f.mkdir("/views", Mode::DIR_DEFAULT, &root()).unwrap();
        f.mkdir("/views/v1", Mode::DIR_DEFAULT, &root()).unwrap();
        assert!(f.stat("/views/v1/hosts", &root()).unwrap().is_dir());
        assert!(f.stat("/views/v1/switches", &root()).unwrap().is_dir());
        assert!(f.stat("/views/v1/views", &root()).unwrap().is_dir());
        // The hook's own mkdirs didn't re-trigger (no /views/v1/views/hosts).
        assert!(!f.exists("/views/v1/views/hosts", &root()));
    }

    #[test]
    fn dotdot_resolution() {
        let f = fs();
        f.mkdir_all("/a/b/c", Mode::DIR_DEFAULT, &root()).unwrap();
        f.write_file("/a/marker", b"m", &root()).unwrap();
        assert_eq!(f.read_file("/a/b/c/../../marker", &root()).unwrap(), b"m");
        assert_eq!(f.read_file("/../../a/marker", &root()).unwrap(), b"m");
    }

    #[test]
    fn canonicalize_resolves_chains() {
        let f = fs();
        f.mkdir_all("/real/dir", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.symlink("/real", "/l1", &root()).unwrap();
        f.symlink("/l1/dir", "/l2", &root()).unwrap();
        assert_eq!(
            f.canonicalize("/l2", &root()).unwrap().as_str(),
            "/real/dir"
        );
        assert!(f.canonicalize("/nope", &root()).is_err());
    }

    #[test]
    fn proc_total_matches_counters_exactly() {
        let f = fs();
        f.mount_proc("/net/.proc").unwrap();
        f.mkdir_all("/net/switches/sw1", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.write_file("/net/switches/sw1/hello", b"x", &root())
            .unwrap();
        let expect = f.counters().total();
        assert!(expect > 0);
        let got = f
            .read_to_string("/net/.proc/vfs/syscalls/total", &root())
            .unwrap();
        assert_eq!(got.trim().parse::<u64>().unwrap(), expect);
        // Reading the counter did not disturb it.
        assert_eq!(f.counters().total(), expect);
        // And re-reading reflects new activity but never the reads themselves.
        f.write_file("/net/switches/sw1/hello", b"y", &root())
            .unwrap();
        let expect2 = f.counters().total();
        assert!(expect2 > expect);
        let got2 = f
            .read_to_string("/net/.proc/vfs/syscalls/total", &root())
            .unwrap();
        assert_eq!(got2.trim().parse::<u64>().unwrap(), expect2);
    }

    #[test]
    fn dcache_counters_pin_exactly_via_proc() {
        let f = fs();
        f.mount_proc("/net/.proc").unwrap();
        f.mkdir_all("/d1/d2", Mode::DIR_DEFAULT, &root()).unwrap();
        f.write_file("/d1/d2/f", b"x", &root()).unwrap();
        let read = |name: &str| {
            f.read_to_string(&format!("/net/.proc/vfs/dcache/{name}"), &root())
                .unwrap()
                .trim()
                .parse::<u64>()
                .unwrap()
        };
        // Warm every hop of the path once.
        f.stat("/d1/d2/f", &root()).unwrap();
        let (h0, m0, i0) = (read("hits"), read("misses"), read("invalidates"));
        // Ten fully-warm stats: three hits each (d1, d2, f), zero misses.
        for _ in 0..10 {
            f.stat("/d1/d2/f", &root()).unwrap();
        }
        assert_eq!(read("hits"), h0 + 30);
        assert_eq!(read("misses"), m0);
        // Reading the proc files themselves never disturbs the counters:
        // proc-covered resolution bypasses the cache.
        assert_eq!(read("hits"), h0 + 30);
        // An unlink bumps the parent's generation exactly once…
        f.unlink("/d1/d2/f", &root()).unwrap();
        assert_eq!(read("invalidates"), i0 + 1);
        // …so the next probe hits on d1/d2 but misses on the final
        // component and caches the ENOENT…
        let (m1, n0) = (read("misses"), read("negative"));
        assert_eq!(
            f.stat("/d1/d2/f", &root()).unwrap_err().errno,
            Errno::ENOENT
        );
        assert_eq!(read("misses"), m1 + 1);
        // …and the repeat probe is answered by the negative entry.
        assert_eq!(
            f.stat("/d1/d2/f", &root()).unwrap_err().errno,
            Errno::ENOENT
        );
        assert_eq!(read("negative"), n0 + 1);
        assert!(read("entries") > 0);
        assert_eq!(read("enabled"), 1);
    }

    #[test]
    fn dcache_hits_revalidate_permissions_per_caller() {
        let f = fs();
        let bob = Credentials::user(1001, 1001);
        f.mkdir("/locked", Mode(0o700), &root()).unwrap();
        f.write_file("/locked/f", b"secret", &root()).unwrap();
        // Root's walk warms the (locked, f) entry…
        f.stat("/locked/f", &root()).unwrap();
        // …but a hit can never widen access: bob is re-checked and denied.
        assert_eq!(f.stat("/locked/f", &bob).unwrap_err().errno, Errno::EACCES);
        // chmod bumps the generation, so the relaxed bits are seen at once…
        f.chmod("/locked", Mode(0o755), &root()).unwrap();
        f.stat("/locked/f", &bob).unwrap();
        f.stat("/locked/f", &root()).unwrap();
        // …and re-tightening is honoured on still-warm entries too.
        f.chmod("/locked", Mode(0o700), &root()).unwrap();
        assert_eq!(f.stat("/locked/f", &bob).unwrap_err().errno, Errno::EACCES);
        assert!(f.stat("/locked/f", &root()).is_ok());
    }

    #[test]
    fn dcache_disabled_filesystem_resolves_identically() {
        let on = Filesystem::new();
        let off = Filesystem::builder().dcache(false).build();
        assert!(on.dcache_enabled());
        assert!(!off.dcache_enabled());
        for f in [&on, &off] {
            f.mkdir_all("/a/b", Mode::DIR_DEFAULT, &root()).unwrap();
            f.write_file("/a/b/f", b"v", &root()).unwrap();
            f.stat("/a/b/f", &root()).unwrap();
            f.stat("/a/b/f", &root()).unwrap();
            assert_eq!(
                f.stat("/a/b/nope", &root()).unwrap_err().errno,
                Errno::ENOENT
            );
            f.rename("/a/b/f", "/a/b/g", &root()).unwrap();
            assert_eq!(f.stat("/a/b/f", &root()).unwrap_err().errno, Errno::ENOENT);
            assert_eq!(f.read_file("/a/b/g", &root()).unwrap(), b"v");
        }
        // The disabled cache stayed completely inert.
        assert_eq!(off.dcache_stats(), DcacheStats::default());
        assert_eq!(off.dcache_entries(), 0);
        assert!(on.dcache_stats().hits > 0);
    }

    #[test]
    fn dcache_rename_keeps_moved_subtree_warm_but_retires_old_entry() {
        let f = fs();
        f.mkdir_all("/top/sub", Mode::DIR_DEFAULT, &root()).unwrap();
        f.write_file("/top/sub/f", b"v", &root()).unwrap();
        f.stat("/top/sub/f", &root()).unwrap(); // warm
        f.rename("/top", "/newtop", &root()).unwrap();
        assert_eq!(
            f.stat("/top/sub/f", &root()).unwrap_err().errno,
            Errno::ENOENT
        );
        let before = f.dcache_stats();
        // The (top→sub) and (sub→f) hops are keyed by inode, not path:
        // they survive the rename of their ancestor.
        assert_eq!(f.read_file("/newtop/sub/f", &root()).unwrap(), b"v");
        let after = f.dcache_stats();
        assert!(after.hits >= before.hits + 2, "moved subtree went cold");
    }

    #[test]
    fn proc_limits_expose_resolution_bounds() {
        let f = fs();
        f.mount_proc("/net/.proc").unwrap();
        let read = |name: &str| {
            f.read_to_string(&format!("/net/.proc/vfs/limits/{name}"), &root())
                .unwrap()
                .trim()
                .parse::<u64>()
                .unwrap()
        };
        assert_eq!(read("max_symlink_hops"), u64::from(MAX_SYMLINK_HOPS));
        assert_eq!(read("path_max"), PATH_MAX as u64);
        assert_eq!(read("name_max"), NAME_MAX as u64);
        assert_eq!(read("link_max"), u64::from(LINK_MAX));
        assert_eq!(
            read("max_open_files"),
            Limits::default().max_open_files as u64
        );
    }

    #[test]
    fn proc_mount_is_read_only() {
        let f = fs();
        f.mount_proc("/net/.proc").unwrap();
        for e in [
            f.write_file("/net/.proc/vfs/syscalls/total", b"0", &root())
                .unwrap_err(),
            f.mkdir("/net/.proc/mine", Mode::DIR_DEFAULT, &root())
                .unwrap_err(),
            f.unlink("/net/.proc/vfs/syscalls/total", &root())
                .unwrap_err(),
            f.truncate("/net/.proc/vfs/syscalls/total", 0, &root())
                .unwrap_err(),
            f.rename("/net/.proc/vfs", "/net/.proc/ufs", &root())
                .unwrap_err(),
        ] {
            assert_eq!(e.errno, Errno::EROFS);
        }
        // Reads still work.
        assert!(f
            .read_to_string("/net/.proc/vfs/syscalls/total", &root())
            .is_ok());
    }

    #[test]
    fn proc_refresh_is_silent_for_watchers() {
        let f = fs();
        f.mount_proc("/net/.proc").unwrap();
        let w = f.watch("/net").subtree().register().unwrap();
        let _ = f
            .read_to_string("/net/.proc/vfs/syscalls/total", &root())
            .unwrap();
        assert_eq!(w.receiver().try_iter().count(), 0);
    }

    #[test]
    fn proc_latency_files_summarise_histograms() {
        let f = fs();
        f.mount_proc("/net/.proc").unwrap();
        f.write_file("/data", b"x", &root()).unwrap();
        let s = f
            .read_to_string("/net/.proc/vfs/latency/write", &root())
            .unwrap();
        assert!(s.contains("count=1"), "got: {s}");
        assert!(s.contains("p50="), "got: {s}");
    }

    #[test]
    fn metrics_scope_appears_in_proc() {
        let f = fs();
        let scope = f.add_metrics_scope("net", "/net");
        f.mount_proc("/net/.proc").unwrap();
        f.mkdir_all("/net/switches", Mode::DIR_DEFAULT, &root())
            .unwrap();
        f.mkdir_all("/other", Mode::DIR_DEFAULT, &root()).unwrap();
        assert_eq!(scope.get(OpKind::Mkdir), 2); // /net/switches only
        let s = f
            .read_to_string("/net/.proc/scopes/net/total", &root())
            .unwrap();
        assert_eq!(s.trim().parse::<u64>().unwrap(), scope.total());
    }

    // ---- descriptor-relative I/O ----

    #[test]
    fn openat_resolves_relative_to_dir_descriptor() {
        let f = fs();
        f.mkdir_all("/net/switches/sw1/flows", Mode::DIR_DEFAULT, &root())
            .unwrap();
        let d = f.open_dir("/net/switches/sw1/flows", &root()).unwrap();
        let fd = f
            .openat(d, "f1", OpenFlags::write_create(), &root())
            .unwrap();
        f.write(fd, b"match=*").unwrap();
        f.close(fd, &root()).unwrap();
        assert_eq!(
            f.read_to_string("/net/switches/sw1/flows/f1", &root())
                .unwrap(),
            "match=*"
        );
        // Multi-component relative paths work too.
        f.mkdirat(d, "sub", Mode::DIR_DEFAULT, &root()).unwrap();
        let fd2 = f
            .openat(d, "sub/f2", OpenFlags::write_create(), &root())
            .unwrap();
        f.close(fd2, &root()).unwrap();
        assert!(f
            .stat("/net/switches/sw1/flows/sub/f2", &root())
            .unwrap()
            .is_file());
        f.close(d, &root()).unwrap();
    }

    #[test]
    fn openat_rejects_absolute_rel_and_bad_fd() {
        let f = fs();
        f.mkdir("/d", Mode::DIR_DEFAULT, &root()).unwrap();
        let d = f.open_dir("/d", &root()).unwrap();
        assert_eq!(
            f.openat(d, "/abs", OpenFlags::read_only(), &root())
                .unwrap_err()
                .errno,
            Errno::EINVAL
        );
        assert_eq!(
            f.openat(Fd(999_999), "x", OpenFlags::read_only(), &root())
                .unwrap_err()
                .errno,
            Errno::EBADF
        );
        // open_dir on a file / open on a dir keep their errnos.
        f.write_file("/d/f", b"x", &root()).unwrap();
        assert_eq!(
            f.open_dir("/d/f", &root()).unwrap_err().errno,
            Errno::ENOTDIR
        );
        assert_eq!(
            f.open("/d", OpenFlags::read_only(), &root())
                .unwrap_err()
                .errno,
            Errno::EISDIR
        );
    }

    #[test]
    fn pread_pwrite_leave_offset_alone() {
        let f = fs();
        f.write_file("/f", b"abcdef", &root()).unwrap();
        let fd = f
            .open(
                "/f",
                OpenFlags {
                    read: true,
                    write: true,
                    ..OpenFlags::read_only()
                },
                &root(),
            )
            .unwrap();
        assert_eq!(f.pread(fd, 2, 3).unwrap(), b"cde");
        f.pwrite(fd, 4, b"XY").unwrap();
        // Sequential read still starts at offset 0.
        assert_eq!(f.read(fd, 6).unwrap(), b"abcdXY");
        // pread past EOF is a short read, not an error.
        assert_eq!(f.pread(fd, 100, 4).unwrap(), b"");
        f.close(fd, &root()).unwrap();
    }

    #[test]
    fn readv_writev_charge_one_syscall_each() {
        let f = fs();
        let fd = f.open("/f", OpenFlags::write_create(), &root()).unwrap();
        let before = f.counters().snapshot();
        f.writev(fd, &[b"ab", b"cd", b"ef"]).unwrap();
        let after = f.counters().snapshot();
        assert_eq!(after.since(&before).get(OpKind::Write), 1);
        assert_eq!(after.since(&before).total(), 1);
        f.close(fd, &root()).unwrap();

        let fd = f.open("/f", OpenFlags::read_only(), &root()).unwrap();
        let before = f.counters().snapshot();
        let segs = f.readv(fd, &[2, 2, 4]).unwrap();
        let after = f.counters().snapshot();
        assert_eq!(after.since(&before).get(OpKind::Read), 1);
        assert_eq!(after.since(&before).total(), 1);
        assert_eq!(segs, vec![b"ab".to_vec(), b"cd".to_vec(), b"ef".to_vec()]);
        f.close(fd, &root()).unwrap();
    }

    #[test]
    fn fstat_follows_the_inode() {
        let f = fs();
        f.write_file("/f", b"abc", &root()).unwrap();
        let fd = f.open("/f", OpenFlags::read_only(), &root()).unwrap();
        let st = f.fstat(fd).unwrap();
        assert!(st.is_file());
        assert_eq!(st.size, 3);
        // Rename does not disturb the descriptor.
        f.rename("/f", "/g", &root()).unwrap();
        assert_eq!(f.fstat(fd).unwrap().ino, st.ino);
        f.close(fd, &root()).unwrap();
        assert_eq!(f.fstat(fd).unwrap_err().errno, Errno::EBADF);
    }

    #[test]
    fn fsync_commits_without_close() {
        let f = fs();
        let w = f
            .watch("/")
            .subtree()
            .mask(EventMask::ALL)
            .register()
            .unwrap();
        let fd = f.open("/f", OpenFlags::write_create(), &root()).unwrap();
        f.write(fd, b"v1").unwrap();
        let _ = w.receiver().try_iter().count();
        f.fsync(fd, &root()).unwrap();
        let kinds: Vec<EventKind> = w.receiver().try_iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::CloseWrite), "got {kinds:?}");
        // A second fsync with no intervening write is silent...
        f.fsync(fd, &root()).unwrap();
        assert_eq!(w.receiver().try_iter().count(), 0);
        // ...and close after fsync does not re-fire CloseWrite.
        f.close(fd, &root()).unwrap();
        let kinds: Vec<EventKind> = w.receiver().try_iter().map(|e| e.kind).collect();
        assert!(!kinds.contains(&EventKind::CloseWrite), "got {kinds:?}");
    }

    #[test]
    fn readdir_fd_and_dirfd_survive_sibling_churn() {
        let f = fs();
        f.mkdir_all("/d/sub", Mode::DIR_DEFAULT, &root()).unwrap();
        f.write_file("/d/a", b"", &root()).unwrap();
        let d = f.open_dir("/d", &root()).unwrap();
        let names: Vec<String> = f
            .readdir_fd(d)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["a", "sub"]);
        f.write_file("/d/b", b"", &root()).unwrap();
        assert_eq!(f.readdir_fd(d).unwrap().len(), 3);
        f.close(d, &root()).unwrap();
    }

    #[test]
    fn readdir_fd_ordering_is_deterministic_regardless_of_insert_order() {
        let f = fs();
        f.mkdir("/d", Mode::DIR_DEFAULT, &root()).unwrap();
        // Insert in scrambled order; listings must come back sorted.
        for name in ["zeta", "alpha", "mike", "bravo", "yankee", "charlie"] {
            f.write_file(&format!("/d/{name}"), b"", &root()).unwrap();
        }
        let d = f.open_dir("/d", &root()).unwrap();
        let names: Vec<String> = f
            .readdir_fd(d)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(
            names,
            vec!["alpha", "bravo", "charlie", "mike", "yankee", "zeta"]
        );
        // Re-reading the same fd is stable.
        let again: Vec<String> = f
            .readdir_fd(d)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, again);
        f.close(d, &root()).unwrap();
    }

    #[test]
    fn readdir_fd_reflects_create_and_unlink_churn_between_reads() {
        let f = fs();
        f.mkdir("/d", Mode::DIR_DEFAULT, &root()).unwrap();
        for name in ["a", "b", "c"] {
            f.write_file(&format!("/d/{name}"), b"", &root()).unwrap();
        }
        let d = f.open_dir("/d", &root()).unwrap();
        let list = |fd| -> Vec<String> {
            f.readdir_fd(fd)
                .unwrap()
                .into_iter()
                .map(|e| e.name)
                .collect()
        };
        assert_eq!(list(d), vec!["a", "b", "c"]);
        // Churn between reads on the same open fd: listings are live.
        f.unlink("/d/b", &root()).unwrap();
        f.write_file("/d/d", b"", &root()).unwrap();
        assert_eq!(list(d), vec!["a", "c", "d"]);
        f.unlink("/d/a", &root()).unwrap();
        f.unlink("/d/c", &root()).unwrap();
        f.unlink("/d/d", &root()).unwrap();
        assert_eq!(list(d), Vec::<String>::new());
        // The fd itself is still a valid handle after its last entry went.
        f.write_file("/d/e", b"", &root()).unwrap();
        assert_eq!(list(d), vec!["e"]);
        f.close(d, &root()).unwrap();
    }

    #[test]
    fn rmdir_then_dir_descriptor_ops_fail_cleanly() {
        let f = fs();
        f.mkdir("/d", Mode::DIR_DEFAULT, &root()).unwrap();
        let d = f.open_dir("/d", &root()).unwrap();
        f.rmdir("/d", &root()).unwrap();
        assert_eq!(
            f.openat(d, "x", OpenFlags::write_create(), &root())
                .unwrap_err()
                .errno,
            Errno::ENOENT
        );
        assert_eq!(f.readdir_fd(d).unwrap_err().errno, Errno::ENOENT);
        f.close(d, &root()).unwrap(); // closing the dangling descriptor is fine
    }

    #[test]
    fn write_batch_at_is_one_syscall_and_commits_each_entry() {
        let f = fs();
        f.mkdir_all("/flows", Mode::DIR_DEFAULT, &root()).unwrap();
        let d = f.open_dir("/flows", &root()).unwrap();
        let w = f
            .watch("/flows")
            .subtree()
            .mask(EventMask::ALL)
            .register()
            .unwrap();
        let before = f.counters().snapshot();
        let n = f
            .write_batch_at(
                d,
                &[("f1", b"p=1".as_slice()), ("f2", b"p=2"), ("f1", b"p=9")],
                &root(),
            )
            .unwrap();
        let diff = f.counters().snapshot().since(&before);
        assert_eq!(n, 3);
        assert_eq!(diff.get(OpKind::Write), 1);
        assert_eq!(diff.total(), 1);
        assert_eq!(f.read_to_string("/flows/f1", &root()).unwrap(), "p=9");
        assert_eq!(f.read_to_string("/flows/f2", &root()).unwrap(), "p=2");
        let evs: Vec<(EventKind, String)> = w
            .receiver()
            .try_iter()
            .map(|e| (e.kind, e.path.as_str().to_owned()))
            .collect();
        // Every entry committed: two Creates and three CloseWrites.
        assert_eq!(
            evs.iter().filter(|(k, _)| *k == EventKind::Create).count(),
            2
        );
        assert_eq!(
            evs.iter()
                .filter(|(k, _)| *k == EventKind::CloseWrite)
                .count(),
            3
        );
        f.close(d, &root()).unwrap();
    }

    #[test]
    fn fd_table_reports_per_uid_descriptors() {
        let f = fs();
        f.mkdir("/d", Mode::DIR_DEFAULT, &root()).unwrap();
        f.chmod("/d", Mode(0o777), &root()).unwrap();
        let alice = Credentials::user(7, 7);
        f.write_file("/d/a", b"x", &root()).unwrap();
        f.chmod("/d/a", Mode(0o666), &root()).unwrap();
        let fd = f.open("/d/a", OpenFlags::read_only(), &alice).unwrap();
        let table = f.fd_table(Uid(7));
        assert_eq!(table.len(), 1);
        assert_eq!(table[0].fd, fd.0);
        assert_eq!(table[0].path, "/d/a");
        assert!(table[0].read && !table[0].write);
        assert!(f.fd_table(Uid(8)).is_empty());
        f.close(fd, &alice).unwrap();
        assert!(f.fd_table(Uid(7)).is_empty());
    }

    #[test]
    fn watch_guard_unwatches_on_drop_and_forget_detaches() {
        let f = fs();
        f.mkdir("/d", Mode::DIR_DEFAULT, &root()).unwrap();
        {
            let w = f.watch("/d").register().unwrap();
            f.write_file("/d/f", b"x", &root()).unwrap();
            assert!(w.ready());
        } // dropped: unwatched
        assert_eq!(f.notify().watch_count(), 0);
        let (id, rx) = f.watch("/d").register().unwrap().forget();
        f.write_file("/d/g", b"x", &root()).unwrap();
        assert!(rx.try_iter().count() > 0);
        f.notify().unwatch(id);
    }
}
