//! POSIX-style access control lists (paper §5.1).
//!
//! yanc uses the VFS permission machinery to give the network administrator
//! fine-grained control over network resources: an individual flow can be
//! protected for a specific process, and so can an entire switch (and thus
//! all its flows). Plain `rwx` triplets cover owner/group/other; ACLs extend
//! them with per-user and per-group entries, evaluated with the POSIX.1e
//! algorithm (owner entry, then named users, then groups masked by the mask
//! entry, then other).

use crate::types::{Access, Credentials, Gid, Mode, Uid};

/// One ACL entry: who it applies to plus an rwx permission triplet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AclEntry {
    /// Permissions for a specific user (`user:<uid>:rwx`).
    User(Uid, u8),
    /// Permissions for a specific group (`group:<gid>:rwx`).
    Group(Gid, u8),
    /// Upper bound applied to named users, named groups and the owning
    /// group (`mask::rwx`). Defaults to `rwx` when absent.
    Mask(u8),
}

/// An access control list attached to an inode.
///
/// The file's own `Mode` supplies the owner/group/other base entries; the
/// ACL holds only the extension entries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Acl {
    entries: Vec<AclEntry>,
}

impl Acl {
    /// An empty ACL (equivalent to plain mode bits).
    pub fn new() -> Self {
        Acl::default()
    }

    /// True when no extension entries are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over the entries.
    pub fn entries(&self) -> &[AclEntry] {
        &self.entries
    }

    /// Add or replace the entry for a user.
    pub fn set_user(&mut self, uid: Uid, perms: u8) {
        self.entries
            .retain(|e| !matches!(e, AclEntry::User(u, _) if *u == uid));
        self.entries.push(AclEntry::User(uid, perms & 0o7));
    }

    /// Add or replace the entry for a group.
    pub fn set_group(&mut self, gid: Gid, perms: u8) {
        self.entries
            .retain(|e| !matches!(e, AclEntry::Group(g, _) if *g == gid));
        self.entries.push(AclEntry::Group(gid, perms & 0o7));
    }

    /// Set the mask entry.
    pub fn set_mask(&mut self, perms: u8) {
        self.entries.retain(|e| !matches!(e, AclEntry::Mask(_)));
        self.entries.push(AclEntry::Mask(perms & 0o7));
    }

    /// Remove the entry for a user. Returns whether one was present.
    pub fn remove_user(&mut self, uid: Uid) -> bool {
        let n = self.entries.len();
        self.entries
            .retain(|e| !matches!(e, AclEntry::User(u, _) if *u == uid));
        self.entries.len() != n
    }

    /// Remove the entry for a group. Returns whether one was present.
    pub fn remove_group(&mut self, gid: Gid) -> bool {
        let n = self.entries.len();
        self.entries
            .retain(|e| !matches!(e, AclEntry::Group(g, _) if *g == gid));
        self.entries.len() != n
    }

    fn mask(&self) -> u8 {
        self.entries
            .iter()
            .find_map(|e| match e {
                AclEntry::Mask(m) => Some(*m),
                _ => None,
            })
            .unwrap_or(0o7)
    }

    fn named_user(&self, uid: Uid) -> Option<u8> {
        self.entries.iter().find_map(|e| match e {
            AclEntry::User(u, p) if *u == uid => Some(*p),
            _ => None,
        })
    }

    /// All group entries matching the credentials.
    fn matching_groups<'a>(&'a self, creds: &'a Credentials) -> impl Iterator<Item = u8> + 'a {
        self.entries.iter().filter_map(move |e| match e {
            AclEntry::Group(g, p) if creds.in_group(*g) => Some(*p),
            _ => None,
        })
    }

    /// Serialize in `getfacl`-like short text form, e.g.
    /// `user:1001:rw-,group:50:r--,mask::rw-`.
    pub fn to_text(&self) -> String {
        let trip = |p: u8| {
            let mut s = String::with_capacity(3);
            s.push(if p & 4 != 0 { 'r' } else { '-' });
            s.push(if p & 2 != 0 { 'w' } else { '-' });
            s.push(if p & 1 != 0 { 'x' } else { '-' });
            s
        };
        self.entries
            .iter()
            .map(|e| match e {
                AclEntry::User(u, p) => format!("user:{}:{}", u.0, trip(*p)),
                AclEntry::Group(g, p) => format!("group:{}:{}", g.0, trip(*p)),
                AclEntry::Mask(p) => format!("mask::{}", trip(*p)),
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Evaluate whether `creds` may perform `access` on an object owned by
/// `owner`/`group` with permission `mode` and optional `acl`.
///
/// Follows the POSIX.1e ordering: root short-circuits; then the owning user
/// uses the owner triplet; then a named-user ACL entry (masked); then the
/// owning group and named groups (masked), granting if *any* matching entry
/// grants; finally the other triplet.
pub fn check_access(
    creds: &Credentials,
    owner: Uid,
    group: Gid,
    mode: Mode,
    acl: Option<&Acl>,
    access: Access,
) -> bool {
    if creds.is_root() || creds.dac_override {
        return true;
    }
    let bit = access.bit();
    if creds.uid == owner {
        return mode.owner() & bit != 0;
    }
    if let Some(acl) = acl {
        if let Some(p) = acl.named_user(creds.uid) {
            return p & acl.mask() & bit != 0;
        }
        let mut any_group_matched = false;
        let mut granted = false;
        if creds.in_group(group) {
            any_group_matched = true;
            granted |= mode.group() & acl.mask() & bit != 0;
        }
        for p in acl.matching_groups(creds) {
            any_group_matched = true;
            granted |= p & acl.mask() & bit != 0;
        }
        if any_group_matched {
            return granted;
        }
    } else if creds.in_group(group) {
        return mode.group() & bit != 0;
    }
    mode.other() & bit != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn creds(uid: u32, gid: u32) -> Credentials {
        Credentials::user(uid, gid)
    }

    #[test]
    fn root_bypasses_everything() {
        assert!(check_access(
            &Credentials::root(),
            Uid(10),
            Gid(10),
            Mode(0o000),
            None,
            Access::Write
        ));
    }

    #[test]
    fn owner_uses_owner_triplet_even_if_other_is_wider() {
        // 0o077: owner has nothing, everyone else everything — POSIX says the
        // owner is *denied* (triplet selection is exclusive, not a union).
        assert!(!check_access(
            &creds(10, 10),
            Uid(10),
            Gid(10),
            Mode(0o077),
            None,
            Access::Read
        ));
        assert!(check_access(
            &creds(11, 11),
            Uid(10),
            Gid(10),
            Mode(0o077),
            None,
            Access::Read
        ));
    }

    #[test]
    fn dac_override_bypasses_checks_but_keeps_uid() {
        let c = Credentials::user(1000, 1000).with_dac_override();
        assert!(!c.is_root());
        assert!(check_access(
            &c,
            Uid(0),
            Gid(0),
            Mode(0o000),
            None,
            Access::Write
        ));
    }

    #[test]
    fn group_membership_selects_group_triplet() {
        let mode = Mode(0o640);
        assert!(check_access(
            &creds(11, 10),
            Uid(10),
            Gid(10),
            mode,
            None,
            Access::Read
        ));
        assert!(!check_access(
            &creds(11, 10),
            Uid(10),
            Gid(10),
            mode,
            None,
            Access::Write
        ));
        assert!(!check_access(
            &creds(11, 11),
            Uid(10),
            Gid(10),
            mode,
            None,
            Access::Read
        ));
    }

    #[test]
    fn supplementary_groups_count() {
        let mut c = creds(11, 11);
        c.groups.push(Gid(10));
        assert!(check_access(
            &c,
            Uid(10),
            Gid(10),
            Mode(0o640),
            None,
            Access::Read
        ));
    }

    #[test]
    fn named_user_entry_grants_and_mask_limits() {
        let mut acl = Acl::new();
        acl.set_user(Uid(42), 0o7);
        assert!(check_access(
            &creds(42, 1),
            Uid(10),
            Gid(10),
            Mode(0o600),
            Some(&acl),
            Access::Write
        ));
        acl.set_mask(0o4);
        assert!(!check_access(
            &creds(42, 1),
            Uid(10),
            Gid(10),
            Mode(0o600),
            Some(&acl),
            Access::Write
        ));
        assert!(check_access(
            &creds(42, 1),
            Uid(10),
            Gid(10),
            Mode(0o600),
            Some(&acl),
            Access::Read
        ));
    }

    #[test]
    fn named_group_entry() {
        let mut acl = Acl::new();
        acl.set_group(Gid(7), 0o6);
        let mut c = creds(99, 1);
        c.groups.push(Gid(7));
        assert!(check_access(
            &c,
            Uid(10),
            Gid(10),
            Mode(0o600),
            Some(&acl),
            Access::Write
        ));
        // Non-member falls through to other triplet.
        assert!(!check_access(
            &creds(99, 1),
            Uid(10),
            Gid(10),
            Mode(0o600),
            Some(&acl),
            Access::Write
        ));
    }

    #[test]
    fn group_class_any_grant_wins() {
        // Owning group denies write, but a named group grants it: POSIX.1e
        // grants if any matching group-class entry grants.
        let mut acl = Acl::new();
        acl.set_group(Gid(7), 0o2);
        let mut c = creds(99, 10); // in owning group 10 and named group 7
        c.groups.push(Gid(7));
        assert!(check_access(
            &c,
            Uid(10),
            Gid(10),
            Mode(0o640),
            Some(&acl),
            Access::Write
        ));
    }

    #[test]
    fn entries_replace_not_duplicate() {
        let mut acl = Acl::new();
        acl.set_user(Uid(1), 0o7);
        acl.set_user(Uid(1), 0o4);
        assert_eq!(acl.entries().len(), 1);
        assert!(acl.remove_user(Uid(1)));
        assert!(!acl.remove_user(Uid(1)));
        assert!(acl.is_empty());
    }

    #[test]
    fn text_form() {
        let mut acl = Acl::new();
        acl.set_user(Uid(1001), 0o6);
        acl.set_group(Gid(50), 0o4);
        acl.set_mask(0o6);
        assert_eq!(acl.to_text(), "user:1001:rw-,group:50:r--,mask::rw-");
    }
}
