//! `yanc_poll` — epoll-style readiness multiplexing.
//!
//! The paper's apps each own a handful of event sources: inotify-style
//! watch channels, packet-in buffer directories, and (since the libyanc
//! fastpath landed) shared-memory rings. Before this module every app
//! busy-polled each source from `run_once`, burning a scheduler tick — and
//! a syscall per source — to discover there was nothing to do. A
//! [`PollSet`] is the OS answer: register every source once, then issue
//! *one* level-triggered `wait` that reports which sources have data.
//!
//! Semantics:
//!
//! * **Level-triggered**: a source is reported as long as it has unread
//!   data. There is no edge state to lose; a woken app that drains only
//!   half its backlog is reported again on the next wait.
//! * **Fair round-robin**: each wait starts its readiness scan one source
//!   past where the previous wait started, so a flooding source cannot
//!   starve its neighbours of `max_events` slots.
//! * **Accounted**: each `wait` charges exactly one [`OpKind::Poll`]
//!   syscall to the owning uid (rctl token-bucket included). Readiness
//!   *checks* by the scheduler ([`PollSet::is_ready`]) are free, exactly
//!   as a kernel's run-queue inspection is free to the process.
//!
//! Sources are watch channels ([`crate::notify`] receivers), open file
//! descriptors (readable bytes past the handle offset; directory entry
//! count for directory fds), or opaque probes (used by libyanc to report
//! ring occupancy without this crate knowing what a ring is).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use crossbeam::channel::Receiver;
use parking_lot::{Mutex, RwLock};

use crate::counter::{OpKind, SyscallCounters};
use crate::error::{err, Errno, VfsResult};
use crate::hooks::HookDepth;
use crate::metrics::MetricsRegistry;
use crate::notify::Event;
use crate::rctl::RctlTable;
use crate::shard::{NodeKind, Tables};
use crate::types::{Fd, Uid};

/// What a source is polled for. Only readability exists today; the enum is
/// non-exhaustive so writability can be added without breaking callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Interest {
    /// Wake when the source has data to read/drain.
    Readable,
}

/// Identifies one registered source within its [`PollSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PollToken(pub u64);

/// One ready source, as reported by [`PollSet::wait`].
#[derive(Debug, Clone)]
pub struct PollEvent {
    /// The token returned when the source was added.
    pub token: PollToken,
    /// The label the source was registered under.
    pub label: String,
    /// How many items were observable at scan time (queued events, readable
    /// bytes, directory entries, ring occupancy). Level-triggered: > 0.
    pub ready: usize,
}

/// A source to register, for the unified [`PollSet::add`] entry point.
pub enum PollSource {
    /// An open file descriptor: readable bytes past the handle's offset
    /// (directory fds report their entry count).
    Fd(Fd),
    /// A notify watch channel: queued, undelivered events.
    Watch(Receiver<Event>),
}

enum SourceKind {
    Watch(Receiver<Event>),
    Fd(Fd),
    Probe(Box<dyn Fn() -> usize + Send + Sync>),
}

struct Source {
    token: u64,
    label: String,
    kind: SourceKind,
}

impl Source {
    fn readiness(&self, tables: &Tables) -> usize {
        match &self.kind {
            SourceKind::Watch(rx) => rx.len(),
            SourceKind::Probe(f) => f(),
            SourceKind::Fd(fd) => {
                let (ino, off) = match tables.with_handle(fd.0, |h| (h.ino, h.offset)) {
                    Some(v) => v,
                    None => return 0, // closed: never ready
                };
                tables
                    .with_inode(ino, |node| match &node.kind {
                        NodeKind::File(d) => d.len().saturating_sub(off as usize),
                        NodeKind::Dir { entries, .. } => entries.len(),
                        NodeKind::Symlink(_) => 0,
                    })
                    .unwrap_or(0)
            }
        }
    }
}

pub(crate) struct PollInner {
    id: u64,
    owner: Uid,
    tables: Arc<Tables>,
    counters: Arc<SyscallCounters>,
    metrics: Arc<MetricsRegistry>,
    rctl: Arc<RctlTable>,
    sources: Mutex<Vec<Source>>,
    next_token: AtomicU64,
    /// Rotates by one per wait: the fairness cursor.
    cursor: AtomicUsize,
    waits: AtomicU64,
    events: AtomicU64,
    dead: AtomicBool,
}

/// An epoll-style set of event sources; see the [module docs](self).
///
/// Created by [`crate::Filesystem::poll_create`], which also registers the
/// set for `/net/.proc/vfs/pollsets` introspection and ties its lifetime to
/// the owning uid's [`crate::Filesystem::reclaim`].
pub struct PollSet {
    inner: Arc<PollInner>,
}

impl PollSet {
    pub(crate) fn new(
        id: u64,
        owner: Uid,
        tables: Arc<Tables>,
        counters: Arc<SyscallCounters>,
        metrics: Arc<MetricsRegistry>,
        rctl: Arc<RctlTable>,
    ) -> Self {
        PollSet {
            inner: Arc::new(PollInner {
                id,
                owner,
                tables,
                counters,
                metrics,
                rctl,
                sources: Mutex::new(Vec::new()),
                next_token: AtomicU64::new(1),
                cursor: AtomicUsize::new(0),
                waits: AtomicU64::new(0),
                events: AtomicU64::new(0),
                dead: AtomicBool::new(false),
            }),
        }
    }

    pub(crate) fn inner(&self) -> &Arc<PollInner> {
        &self.inner
    }

    /// This set's id (as shown in `/net/.proc/vfs/pollsets`).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The uid the set is charged to.
    pub fn owner(&self) -> u32 {
        self.inner.owner.0
    }

    /// Register a source; the epoll-shaped entry point. Convenience
    /// wrappers: [`Self::add_fd`], [`Self::add_watch`], [`Self::add_probe`].
    pub fn add(&self, source: PollSource, _interest: Interest) -> PollToken {
        match source {
            PollSource::Fd(fd) => self.add_fd(fd),
            PollSource::Watch(rx) => self.add_watch("watch", rx),
        }
    }

    /// Register an open fd. Readiness: readable bytes past the handle's
    /// offset (directory fds: entry count). A closed fd is never ready.
    pub fn add_fd(&self, fd: Fd) -> PollToken {
        let label = self
            .inner
            .tables
            .with_handle(fd.0, |h| h.path.as_str().to_owned())
            .unwrap_or_else(|| "fd".to_owned());
        self.push(label, SourceKind::Fd(fd))
    }

    /// Register a notify watch channel. Readiness: queued events.
    pub fn add_watch(&self, label: &str, rx: Receiver<Event>) -> PollToken {
        self.push(label.to_owned(), SourceKind::Watch(rx))
    }

    /// Register an opaque readiness probe (returns "items available").
    /// This is how libyanc rings join a poll set without the vfs knowing
    /// about rings.
    pub fn add_probe(
        &self,
        label: &str,
        probe: impl Fn() -> usize + Send + Sync + 'static,
    ) -> PollToken {
        self.push(label.to_owned(), SourceKind::Probe(Box::new(probe)))
    }

    fn push(&self, label: String, kind: SourceKind) -> PollToken {
        let token = self.inner.next_token.fetch_add(1, Ordering::Relaxed);
        self.inner
            .sources
            .lock()
            .push(Source { token, label, kind });
        PollToken(token)
    }

    /// Deregister a source. Returns whether it was present.
    pub fn remove(&self, token: PollToken) -> bool {
        let mut sources = self.inner.sources.lock();
        let before = sources.len();
        sources.retain(|s| s.token != token.0);
        sources.len() != before
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.inner.sources.lock().len()
    }

    /// Whether the set has no sources.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scheduler-side readiness check: `true` when any source has data.
    /// Free — charges no syscall — exactly as a kernel consulting its run
    /// queue is free to the process being scheduled. A reclaimed set is
    /// never ready.
    pub fn is_ready(&self) -> bool {
        if self.inner.dead.load(Ordering::Acquire) {
            return false;
        }
        let sources = self.inner.sources.lock();
        sources.iter().any(|s| s.readiness(&self.inner.tables) > 0)
    }

    /// Scheduler-side scan: which sources are ready, up to `max_events`,
    /// rotating the fairness cursor exactly as [`PollSet::wait`] does.
    /// Free — charges no syscall — for the same reason [`PollSet::is_ready`]
    /// is: this is the kernel walking its own run queue, not a process
    /// making a call. An event-driven runtime uses it to dispatch only
    /// ready drivers; a *process* waiting on data still pays via `wait`.
    /// A reclaimed set reports nothing ready.
    pub fn poll_ready(&self, max_events: usize) -> Vec<PollEvent> {
        if self.inner.dead.load(Ordering::Acquire) {
            return Vec::new();
        }
        self.scan(max_events)
    }

    /// Wait for readiness: one charged [`OpKind::Poll`] syscall, however
    /// many sources fire. Level-triggered; returns up to `max_events`
    /// ready sources starting from the fairness cursor. With a zero
    /// `timeout` this is a pure non-blocking poll; otherwise the call
    /// yields until a source becomes ready or the deadline passes (an
    /// empty result is a timeout, not an error).
    ///
    /// `EBADF` once the owning uid has been reclaimed; `EAGAIN` when the
    /// owner's syscall token bucket is empty.
    pub fn wait(&self, max_events: usize, timeout: Duration) -> VfsResult<Vec<PollEvent>> {
        if self.inner.dead.load(Ordering::Acquire) {
            return err(Errno::EBADF, "pollset");
        }
        self.inner.counters.bump(OpKind::Poll);
        self.inner.metrics.record(OpKind::Poll, "/");
        self.inner.waits.fetch_add(1, Ordering::Relaxed);
        if self.inner.owner.0 != 0 && !HookDepth::active() {
            self.inner
                .rctl
                .charge_syscall(self.inner.owner.0, "pollset")?;
        }
        let deadline = Instant::now() + timeout;
        loop {
            let out = self.scan(max_events);
            if !out.is_empty()
                || timeout.is_zero()
                || Instant::now() >= deadline
                || self.inner.dead.load(Ordering::Acquire)
            {
                self.inner
                    .events
                    .fetch_add(out.len() as u64, Ordering::Relaxed);
                return Ok(out);
            }
            std::thread::yield_now();
        }
    }

    /// One level-triggered scan over the sources, rotating the start index
    /// so no source monopolises the `max_events` budget.
    fn scan(&self, max_events: usize) -> Vec<PollEvent> {
        let sources = self.inner.sources.lock();
        let n = sources.len();
        let mut out = Vec::new();
        if n == 0 || max_events == 0 {
            return out;
        }
        let start = self.inner.cursor.fetch_add(1, Ordering::Relaxed) % n;
        for i in 0..n {
            let s = &sources[(start + i) % n];
            let ready = s.readiness(&self.inner.tables);
            if ready > 0 {
                out.push(PollEvent {
                    token: PollToken(s.token),
                    label: s.label.clone(),
                    ready,
                });
                if out.len() == max_events {
                    break;
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for PollSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PollSet")
            .field("id", &self.inner.id)
            .field("owner", &self.inner.owner.0)
            .field("sources", &self.len())
            .finish()
    }
}

/// Registry of live poll sets, held by the [`crate::Filesystem`] for
/// introspection (`/net/.proc/vfs/pollsets`) and reclaim.
#[derive(Default)]
pub(crate) struct PollRegistry {
    next_id: AtomicU64,
    sets: RwLock<Vec<Weak<PollInner>>>,
}

impl PollRegistry {
    pub(crate) fn new() -> Self {
        PollRegistry {
            next_id: AtomicU64::new(1),
            sets: RwLock::new(Vec::new()),
        }
    }

    pub(crate) fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn register(&self, inner: &Arc<PollInner>) {
        let mut sets = self.sets.write();
        sets.retain(|w| w.strong_count() > 0);
        sets.push(Arc::downgrade(inner));
    }

    /// Mark every set owned by `uid` dead. Returns how many were killed.
    pub(crate) fn reclaim(&self, uid: u32) -> usize {
        let mut killed = 0;
        let mut sets = self.sets.write();
        sets.retain(|w| match w.upgrade() {
            Some(inner) => {
                if inner.owner.0 == uid && !inner.dead.swap(true, Ordering::AcqRel) {
                    killed += 1;
                }
                !inner.dead.load(Ordering::Acquire)
            }
            None => false,
        });
        killed
    }

    /// One line per live set, for the proc file.
    pub(crate) fn render(&self) -> String {
        let mut out = String::new();
        for w in self.sets.read().iter() {
            if let Some(inner) = w.upgrade() {
                if inner.dead.load(Ordering::Acquire) {
                    continue;
                }
                out.push_str(&format!(
                    "id={} owner={} sources={} waits={} events={}\n",
                    inner.id,
                    inner.owner.0,
                    inner.sources.lock().len(),
                    inner.waits.load(Ordering::Relaxed),
                    inner.events.load(Ordering::Relaxed),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notify::EventMask;
    use crate::types::{Credentials, Mode, OpenFlags};
    use crate::Filesystem;

    fn fs() -> Filesystem {
        Filesystem::new()
    }

    fn root() -> Credentials {
        Credentials::root()
    }

    #[test]
    fn watch_source_is_level_triggered() {
        let f = fs();
        f.mkdir("/d", Mode::DIR_DEFAULT, &root()).unwrap();
        let w = f
            .watch("/d")
            .subtree()
            .mask(EventMask::ALL)
            .register()
            .unwrap();
        let ps = f.poll_create(&root());
        let tok = ps.add(PollSource::Watch(w.receiver().clone()), Interest::Readable);
        assert!(!ps.is_ready());
        f.write_file("/d/f", b"x", &root()).unwrap();
        assert!(ps.is_ready());
        let evs = ps.wait(8, Duration::ZERO).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].token, tok);
        assert!(evs[0].ready > 0);
        // Level-triggered: still reported until drained.
        assert!(ps.is_ready());
        let _ = w.receiver().try_iter().count();
        assert!(!ps.is_ready());
        assert!(ps.wait(8, Duration::ZERO).unwrap().is_empty());
    }

    #[test]
    fn fd_source_counts_unread_bytes() {
        let f = fs();
        f.write_file("/f", b"hello", &root()).unwrap();
        let fd = f.open("/f", OpenFlags::read_only(), &root()).unwrap();
        let ps = f.poll_create(&root());
        ps.add_fd(fd);
        assert!(ps.is_ready());
        let evs = ps.wait(8, Duration::ZERO).unwrap();
        assert_eq!(evs[0].ready, 5);
        assert_eq!(evs[0].label, "/f");
        // Consuming the file advances the offset past EOF: not ready.
        f.read(fd, 5).unwrap();
        assert!(!ps.is_ready());
        // A closed fd is silently never ready, not an error.
        f.close(fd, &root()).unwrap();
        assert!(!ps.is_ready());
    }

    #[test]
    fn rotation_keeps_flooding_sources_from_starving_others() {
        let f = fs();
        let ps = f.poll_create(&root());
        let a = ps.add_probe("a", || 1_000_000); // floods
        let b = ps.add_probe("b", || 1);
        let c = ps.add_probe("c", || 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            let evs = ps.wait(1, Duration::ZERO).unwrap();
            seen.insert(evs[0].token);
        }
        // With max_events=1 and a rotating cursor, three waits surface all
        // three sources even though "a" is always ready.
        assert_eq!(seen.len(), 3, "got {seen:?}");
        for t in [a, b, c] {
            assert!(seen.contains(&t));
        }
    }

    #[test]
    fn wait_charges_exactly_one_poll_syscall() {
        let f = fs();
        let ps = f.poll_create(&root());
        ps.add_probe("p", || 1);
        ps.add_probe("q", || 1);
        let before = f.counters().snapshot();
        ps.wait(8, Duration::ZERO).unwrap();
        let diff = f.counters().snapshot().since(&before);
        assert_eq!(diff.get(OpKind::Poll), 1);
        assert_eq!(diff.total(), 1);
        // is_ready is free.
        let before = f.counters().snapshot();
        assert!(ps.is_ready());
        assert_eq!(f.counters().snapshot().since(&before).total(), 0);
    }

    #[test]
    fn reclaim_kills_owned_sets() {
        let f = fs();
        let alice = Credentials::user(7, 7);
        let ps = f.poll_create(&alice);
        ps.add_probe("p", || 1);
        assert!(ps.is_ready());
        let report = f.reclaim(Uid(7));
        assert_eq!(report.pollsets_closed, 1);
        assert!(!ps.is_ready());
        assert_eq!(ps.wait(8, Duration::ZERO).unwrap_err().errno, Errno::EBADF);
        // Other uids' sets are untouched; double reclaim is a no-op.
        assert_eq!(f.reclaim(Uid(7)).pollsets_closed, 0);
    }

    #[test]
    fn pollsets_appear_in_proc() {
        let f = fs();
        f.mount_proc("/net/.proc").unwrap();
        let ps = f.poll_create(&root());
        ps.add_probe("p", || 0);
        ps.wait(8, Duration::ZERO).unwrap();
        let s = f
            .read_to_string("/net/.proc/vfs/pollsets", &root())
            .unwrap();
        assert!(
            s.contains(&format!("id={} owner=0 sources=1 waits=1", ps.id())),
            "got: {s}"
        );
        drop(ps);
        // Dropped sets vanish from the report.
        let s = f
            .read_to_string("/net/.proc/vfs/pollsets", &root())
            .unwrap();
        assert!(!s.contains("id="), "got: {s}");
    }

    #[test]
    fn wait_blocks_until_deadline_without_events() {
        let f = fs();
        f.mount_proc("/net/.proc").unwrap();
        let ps = f.poll_create(&root());
        ps.add_probe("never", || 0);
        let evs = ps.wait(8, Duration::from_millis(5)).unwrap();
        assert!(evs.is_empty());
        // Deterministic evidence the wait really ran to its deadline (no
        // wall-clock reads, which flake under load): the set's own wait
        // counter ticked and no event was surfaced.
        let s = f
            .read_to_string("/net/.proc/vfs/pollsets", &root())
            .unwrap();
        assert!(
            s.contains(&format!(
                "id={} owner=0 sources=1 waits=1 events=0",
                ps.id()
            )),
            "got: {s}"
        );
    }

    #[test]
    fn remove_and_empty_sets() {
        let f = fs();
        let ps = f.poll_create(&root());
        assert!(ps.is_empty());
        assert!(ps.wait(8, Duration::ZERO).unwrap().is_empty());
        let t = ps.add_probe("p", || 1);
        assert_eq!(ps.len(), 1);
        assert!(ps.remove(t));
        assert!(!ps.remove(t));
        assert!(ps.is_empty());
    }
}
