//! Mount namespaces: per-application views of the file system (paper §5.3).
//!
//! Linux namespaces let yanc confine an application to a *view*: the slicer
//! creates `/net/views/http`, and the HTTP controller process is started in
//! a namespace where that subtree is bind-mounted over `/net`, so it cannot
//! even name the rest of the network. [`Namespace`] reproduces this with a
//! root prefix (chroot-like) plus longest-prefix bind mounts, any of which
//! may be read-only.
//!
//! A namespace is a *path translator* in front of a shared
//! [`Filesystem`]: operations translate the visible path and delegate, so
//! notification, hooks, permissions and syscall accounting all keep working
//! unchanged. As with real bind mounds, absolute symlink targets resolve in
//! the underlying file system.

use std::sync::Arc;

use crate::acl::Acl;
use crate::error::{err, Errno, VfsResult};
use crate::fs::Filesystem;
use crate::path::VPath;
use crate::types::{Credentials, DirEntry, Fd, FileStat, Gid, Mode, OpenFlags, Uid};

#[derive(Debug, Clone)]
struct Bind {
    at: VPath,
    target: VPath,
    readonly: bool,
}

/// A per-application mount namespace over a shared [`Filesystem`].
#[derive(Clone)]
pub struct Namespace {
    fs: Arc<Filesystem>,
    root: VPath,
    readonly_root: bool,
    binds: Vec<Bind>,
}

impl Namespace {
    /// The identity namespace: sees the whole filesystem read-write.
    pub fn new(fs: Arc<Filesystem>) -> Self {
        Namespace {
            fs,
            root: VPath::root(),
            readonly_root: false,
            binds: Vec::new(),
        }
    }

    /// A chroot-like namespace rooted at `root` (which should exist).
    pub fn chroot(fs: Arc<Filesystem>, root: &str) -> Self {
        Namespace {
            fs,
            root: VPath::new(root),
            readonly_root: false,
            binds: Vec::new(),
        }
    }

    /// Make everything not covered by a bind read-only.
    pub fn readonly(mut self) -> Self {
        self.readonly_root = true;
        self
    }

    /// Bind-mount `target` (a path in the underlying fs) at `at` (a path in
    /// this namespace). Later binds shadow earlier ones; the longest
    /// matching prefix wins at lookup.
    pub fn bind(mut self, at: &str, target: &str) -> Self {
        self.binds.push(Bind {
            at: VPath::new(at),
            target: VPath::new(target),
            readonly: false,
        });
        self
    }

    /// Like [`Namespace::bind`], but writes under `at` fail with `EROFS`.
    pub fn bind_ro(mut self, at: &str, target: &str) -> Self {
        self.binds.push(Bind {
            at: VPath::new(at),
            target: VPath::new(target),
            readonly: true,
        });
        self
    }

    /// The underlying filesystem.
    pub fn filesystem(&self) -> &Arc<Filesystem> {
        &self.fs
    }

    /// Translate a namespace-visible path into an underlying path plus its
    /// effective read-only flag.
    fn translate(&self, path: &str) -> (VPath, bool) {
        let vp = VPath::new(path);
        let mut best: Option<(&Bind, usize)> = None;
        for b in &self.binds {
            if vp.starts_with(&b.at) {
                let len = b.at.as_str().len();
                if best.map(|(_, l)| len >= l).unwrap_or(true) {
                    best = Some((b, len));
                }
            }
        }
        if let Some((b, _)) = best {
            let rebased = vp.rebase(&b.at, &b.target).expect("starts_with checked");
            return (rebased, b.readonly);
        }
        let under = if self.root.is_root() {
            vp
        } else {
            vp.rebase(&VPath::root(), &self.root)
                .expect("root prefix always matches")
        };
        (under, self.readonly_root)
    }

    fn translate_rw(&self, path: &str) -> VfsResult<VPath> {
        let (p, ro) = self.translate(path);
        if ro {
            return err(Errno::EROFS, path);
        }
        Ok(p)
    }

    // -- delegating operations -----------------------------------------

    /// See [`Filesystem::stat`].
    pub fn stat(&self, path: &str, creds: &Credentials) -> VfsResult<FileStat> {
        self.fs.stat(self.translate(path).0.as_str(), creds)
    }

    /// See [`Filesystem::lstat`].
    pub fn lstat(&self, path: &str, creds: &Credentials) -> VfsResult<FileStat> {
        self.fs.lstat(self.translate(path).0.as_str(), creds)
    }

    /// See [`Filesystem::exists`].
    pub fn exists(&self, path: &str, creds: &Credentials) -> bool {
        self.fs.exists(self.translate(path).0.as_str(), creds)
    }

    /// See [`Filesystem::readdir`].
    pub fn readdir(&self, path: &str, creds: &Credentials) -> VfsResult<Vec<DirEntry>> {
        self.fs.readdir(self.translate(path).0.as_str(), creds)
    }

    /// See [`Filesystem::read_file`].
    pub fn read_file(&self, path: &str, creds: &Credentials) -> VfsResult<Vec<u8>> {
        self.fs.read_file(self.translate(path).0.as_str(), creds)
    }

    /// See [`Filesystem::read_to_string`].
    pub fn read_to_string(&self, path: &str, creds: &Credentials) -> VfsResult<String> {
        self.fs
            .read_to_string(self.translate(path).0.as_str(), creds)
    }

    /// See [`Filesystem::readlink`].
    pub fn readlink(&self, path: &str, creds: &Credentials) -> VfsResult<String> {
        self.fs.readlink(self.translate(path).0.as_str(), creds)
    }

    /// See [`Filesystem::open`]. Write-opens fail on read-only binds.
    pub fn open(&self, path: &str, flags: OpenFlags, creds: &Credentials) -> VfsResult<Fd> {
        let (p, ro) = self.translate(path);
        if ro && (flags.write || flags.create || flags.truncate || flags.append) {
            return err(Errno::EROFS, path);
        }
        self.fs.open(p.as_str(), flags, creds)
    }

    /// See [`Filesystem::read`].
    pub fn read(&self, fd: Fd, len: usize) -> VfsResult<Vec<u8>> {
        self.fs.read(fd, len)
    }

    /// See [`Filesystem::write`].
    pub fn write(&self, fd: Fd, data: &[u8]) -> VfsResult<usize> {
        self.fs.write(fd, data)
    }

    /// See [`Filesystem::close`].
    pub fn close(&self, fd: Fd, creds: &Credentials) -> VfsResult<()> {
        self.fs.close(fd, creds)
    }

    /// See [`Filesystem::write_file`].
    pub fn write_file(&self, path: &str, data: &[u8], creds: &Credentials) -> VfsResult<()> {
        self.fs
            .write_file(self.translate_rw(path)?.as_str(), data, creds)
    }

    /// See [`Filesystem::append_file`].
    pub fn append_file(&self, path: &str, data: &[u8], creds: &Credentials) -> VfsResult<()> {
        self.fs
            .append_file(self.translate_rw(path)?.as_str(), data, creds)
    }

    /// See [`Filesystem::mkdir`].
    pub fn mkdir(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        self.fs
            .mkdir(self.translate_rw(path)?.as_str(), mode, creds)
    }

    /// See [`Filesystem::mkdir_all`].
    pub fn mkdir_all(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        self.fs
            .mkdir_all(self.translate_rw(path)?.as_str(), mode, creds)
    }

    /// See [`Filesystem::rmdir`].
    pub fn rmdir(&self, path: &str, creds: &Credentials) -> VfsResult<()> {
        self.fs.rmdir(self.translate_rw(path)?.as_str(), creds)
    }

    /// See [`Filesystem::unlink`].
    pub fn unlink(&self, path: &str, creds: &Credentials) -> VfsResult<()> {
        self.fs.unlink(self.translate_rw(path)?.as_str(), creds)
    }

    /// See [`Filesystem::rename`]. Both endpoints must be writable.
    pub fn rename(&self, from: &str, to: &str, creds: &Credentials) -> VfsResult<()> {
        let f = self.translate_rw(from)?;
        let t = self.translate_rw(to)?;
        self.fs.rename(f.as_str(), t.as_str(), creds)
    }

    /// See [`Filesystem::symlink`]. The target string is stored verbatim.
    pub fn symlink(&self, target: &str, linkpath: &str, creds: &Credentials) -> VfsResult<()> {
        self.fs
            .symlink(target, self.translate_rw(linkpath)?.as_str(), creds)
    }

    /// See [`Filesystem::truncate`].
    pub fn truncate(&self, path: &str, len: u64, creds: &Credentials) -> VfsResult<()> {
        self.fs
            .truncate(self.translate_rw(path)?.as_str(), len, creds)
    }

    /// See [`Filesystem::chmod`].
    pub fn chmod(&self, path: &str, mode: Mode, creds: &Credentials) -> VfsResult<()> {
        self.fs
            .chmod(self.translate_rw(path)?.as_str(), mode, creds)
    }

    /// See [`Filesystem::chown`].
    pub fn chown(
        &self,
        path: &str,
        uid: Option<Uid>,
        gid: Option<Gid>,
        creds: &Credentials,
    ) -> VfsResult<()> {
        self.fs
            .chown(self.translate_rw(path)?.as_str(), uid, gid, creds)
    }

    /// See [`Filesystem::set_acl`].
    pub fn set_acl(&self, path: &str, acl: Option<Acl>, creds: &Credentials) -> VfsResult<()> {
        self.fs
            .set_acl(self.translate_rw(path)?.as_str(), acl, creds)
    }

    /// See [`Filesystem::set_xattr`].
    pub fn set_xattr(
        &self,
        path: &str,
        name: &str,
        value: &[u8],
        creds: &Credentials,
    ) -> VfsResult<()> {
        self.fs
            .set_xattr(self.translate_rw(path)?.as_str(), name, value, creds)
    }

    /// See [`Filesystem::get_xattr`].
    pub fn get_xattr(&self, path: &str, name: &str, creds: &Credentials) -> VfsResult<Vec<u8>> {
        self.fs
            .get_xattr(self.translate(path).0.as_str(), name, creds)
    }

    /// Start building a watch on a namespace-visible path; see
    /// [`Filesystem::watch`]. Delivered events carry *underlying* paths.
    pub fn watch(&self, path: &str) -> crate::fs::WatchBuilder<'_> {
        self.fs.watch(self.translate(path).0.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Arc<Filesystem> {
        let fs = Arc::new(Filesystem::new());
        let r = Credentials::root();
        fs.mkdir_all("/net/views/http/switches", Mode::DIR_DEFAULT, &r)
            .unwrap();
        fs.mkdir_all("/net/switches/sw1", Mode::DIR_DEFAULT, &r)
            .unwrap();
        fs.write_file("/net/switches/sw1/id", b"1", &r).unwrap();
        fs.write_file("/net/views/http/switches/marker", b"view", &r)
            .unwrap();
        fs
    }

    #[test]
    fn chroot_confines_visibility() {
        let fs = setup();
        let r = Credentials::root();
        let ns = Namespace::chroot(fs.clone(), "/net/views/http");
        assert_eq!(ns.read_file("/switches/marker", &r).unwrap(), b"view");
        // The global /net is invisible from inside the view.
        assert!(ns.stat("/net/switches/sw1", &r).is_err());
        // Writes land inside the view.
        ns.write_file("/switches/new", b"x", &r).unwrap();
        assert!(fs.exists("/net/views/http/switches/new", &r));
    }

    #[test]
    fn bind_mount_maps_subtree() {
        let fs = setup();
        let r = Credentials::root();
        // An app that expects /net sees the view bound over it.
        let ns = Namespace::new(fs.clone()).bind("/net", "/net/views/http");
        assert_eq!(ns.read_file("/net/switches/marker", &r).unwrap(), b"view");
        // Longest prefix wins: a nested bind shadows.
        let ns2 = Namespace::new(fs.clone())
            .bind("/net", "/net/views/http")
            .bind("/net/real", "/net/switches");
        assert_eq!(ns2.read_file("/net/real/sw1/id", &r).unwrap(), b"1");
        assert_eq!(ns2.read_file("/net/switches/marker", &r).unwrap(), b"view");
    }

    #[test]
    fn readonly_bind_rejects_writes_but_allows_reads() {
        let fs = setup();
        let r = Credentials::root();
        let ns = Namespace::new(fs.clone()).bind_ro("/net", "/net");
        assert_eq!(ns.read_file("/net/switches/sw1/id", &r).unwrap(), b"1");
        assert_eq!(
            ns.write_file("/net/switches/sw1/id", b"2", &r)
                .unwrap_err()
                .errno,
            Errno::EROFS
        );
        assert_eq!(
            ns.mkdir("/net/x", Mode::DIR_DEFAULT, &r).unwrap_err().errno,
            Errno::EROFS
        );
        assert_eq!(
            ns.unlink("/net/switches/sw1/id", &r).unwrap_err().errno,
            Errno::EROFS
        );
        assert_eq!(
            ns.open("/net/switches/sw1/id", OpenFlags::write_create(), &r)
                .unwrap_err()
                .errno,
            Errno::EROFS
        );
        // Read-only open still works.
        let fd = ns
            .open("/net/switches/sw1/id", OpenFlags::read_only(), &r)
            .unwrap();
        assert_eq!(ns.read(fd, 8).unwrap(), b"1");
        ns.close(fd, &r).unwrap();
    }

    #[test]
    fn readonly_root_namespace() {
        let fs = setup();
        let r = Credentials::root();
        let ns = Namespace::chroot(fs, "/net").readonly();
        assert!(ns.exists("/switches/sw1", &r));
        assert_eq!(
            ns.write_file("/switches/sw1/id", b"2", &r)
                .unwrap_err()
                .errno,
            Errno::EROFS
        );
    }

    #[test]
    fn watches_through_namespace_fire_on_underlying_changes() {
        let fs = setup();
        let r = Credentials::root();
        let ns = Namespace::chroot(fs.clone(), "/net/views/http");
        let w = ns.watch("/switches").register().unwrap();
        // A write through the *global* fs is seen by the view's watcher.
        fs.write_file("/net/views/http/switches/flow", b"f", &r)
            .unwrap();
        assert!(w
            .receiver()
            .try_iter()
            .any(|e| e.name.as_deref() == Some("flow")));
    }

    #[test]
    fn rename_within_namespace() {
        let fs = setup();
        let r = Credentials::root();
        let ns = Namespace::chroot(fs.clone(), "/net/views/http");
        ns.rename("/switches/marker", "/switches/renamed", &r)
            .unwrap();
        assert!(fs.exists("/net/views/http/switches/renamed", &r));
    }
}
